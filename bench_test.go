package qint

// One benchmark per table and figure of the paper's §5 evaluation, wrapping
// the harnesses in internal/eval, plus ablation benchmarks for the design
// choices called out in DESIGN.md. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The per-experiment rows are printed once per benchmark via b.Logf (run
// with -v to see them), and cmd/qbench prints the same tables standalone.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"qint/internal/core"
	"qint/internal/datasets"
	"qint/internal/eval"
	"qint/internal/matcher"
	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

func BenchmarkFig6AlignmentTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Fig6 %-22s mean=%v", r.Strategy, r.MeanTime)
			}
		}
	}
}

func BenchmarkFig7AttrComparisons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Fig7 %-22s nofilter=%.1f overlap=%.1f", r.Strategy, r.NoFilter, r.WithFilter)
			}
		}
	}
}

func BenchmarkFig8Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Fig8 sources=%d ex=%.1f vb=%.1f pf=%.1f",
					r.Sources, r.Exhaustive, r.ViewBased, r.Preferential)
			}
		}
	}
}

func BenchmarkTable1MatcherQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Table1 Y=%d %-20s P=%.2f R=%.2f F=%.2f",
					r.Y, r.System, r.Precision, r.Recall, r.F1)
			}
		}
	}
}

func logCurves(b *testing.B, tag string, curves []eval.Curve) {
	b.Helper()
	for _, c := range curves {
		last := eval.PRPoint{}
		if len(c.Points) > 0 {
			last = c.Points[len(c.Points)-1]
		}
		p100, _ := c.MaxPrecisionAtRecall(100)
		b.Logf("%s %-24s points=%d final=(R=%.1f,P=%.1f) P@100=%.1f",
			tag, c.Name, len(c.Points), last.Recall, last.Precision, p100)
	}
}

func BenchmarkFig10Learning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := eval.RunFig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logCurves(b, "Fig10", curves)
		}
	}
}

func BenchmarkFig11FeedbackLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := eval.RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logCurves(b, "Fig11", curves)
		}
	}
}

func BenchmarkFig12EdgeCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			first, last := rows[0], rows[len(rows)-1]
			b.Logf("Fig12 step1 gold=%.3f nongold=%.3f | step%d gold=%.3f nongold=%.3f",
				first.GoldAvg, first.NonGoldAvg, last.Step, last.GoldAvg, last.NonGoldAvg)
		}
	}
}

func BenchmarkTable2FeedbackSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Table2 recall=%.1f steps=%d", r.RecallLevel, r.Steps)
			}
		}
	}
}

// BenchmarkAblationBinning compares binned confidence features against raw
// real-valued ones across the full 10×4 feedback run (DESIGN.md §6).
func BenchmarkAblationBinning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunAblationBinning()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Ablation %-20s gold=%.3f nongold=%.3f P@87.5=%.1f",
					r.Mode, r.GoldAvg, r.NonGoldAvg, r.PrecisionAtHighRecall)
			}
		}
	}
}

// --- Ablation and micro benchmarks -----------------------------------------

// benchGraph builds a moderately sized random search graph for Steiner
// ablations.
func benchGraph(n int) (*steiner.Graph, []steiner.NodeID) {
	g := steiner.NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 1; i < n; i++ {
		g.AddEdge(steiner.NodeID((i*7919)%i), steiner.NodeID(i), 0.5+float64(i%7)/7)
	}
	for i := 0; i < 2*n; i++ {
		u := steiner.NodeID((i * 104729) % n)
		v := steiner.NodeID((i*15485863 + 1) % n)
		if u != v {
			g.AddEdge(u, v, 0.5+float64(i%5)/5)
		}
	}
	terms := []steiner.NodeID{0, steiner.NodeID(n / 2), steiner.NodeID(n - 1)}
	return g, terms
}

// BenchmarkAblationSteinerExact and ...Approx compare the exact DPBF top-k
// algorithm against the BANKS-style approximation (DESIGN.md §5: the
// exact/approx crossover).
func BenchmarkAblationSteinerExact(b *testing.B) {
	g, terms := benchGraph(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trees := g.TopKSteiner(terms, 5); len(trees) == 0 {
			b.Fatal("no trees")
		}
	}
}

func BenchmarkAblationSteinerApprox(b *testing.B) {
	g, terms := benchGraph(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trees := g.ApproxTopKSteiner(terms, 5); len(trees) == 0 {
			b.Fatal("no trees")
		}
	}
}

// BenchmarkAblationMADIterations measures MAD propagation cost as the
// iteration budget grows (the paper runs 3 iterations).
func BenchmarkAblationMADIterations(b *testing.B) {
	corpus := datasets.InterProGO()
	cat := relstore.NewCatalog()
	for _, t := range corpus.Tables {
		if err := cat.AddTable(t); err != nil {
			b.Fatal(err)
		}
	}
	for _, iters := range []int{1, 3, 10} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mad.New()
				m.Params.Iterations = iters
				rels := cat.Relations()
				if got := m.Match(cat, rels[0], rels[1]); got == nil {
					b.Fatal("no alignments")
				}
			}
		})
	}
}

// BenchmarkKeywordQuery measures the end-to-end cost of one keyword query
// over the InterPro-GO graph with associations installed.
func BenchmarkKeywordQuery(b *testing.B) {
	corpus := datasets.InterProGO()
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	if err := q.AddTables(corpus.Tables...); err != nil {
		b.Fatal(err)
	}
	q.AlignAllPairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.Query(corpus.Queries[i%len(corpus.Queries)])
		if err != nil {
			b.Fatal(err)
		}
		q.DropView(v)
	}
}

// benchQueryAt builds a GBCO-backed Q at the given parallelism and runs the
// trial workload's keyword queries round-robin — the serial/parallel pair
// below shares it so the speedup row compares like with like.
func benchQueryAt(b *testing.B, parallelism int) {
	b.Helper()
	corpus := datasets.GBCO()
	opts := core.DefaultOptions()
	opts.Parallelism = parallelism
	q := core.New(opts)
	q.AddMatcher(meta.New())
	if err := q.AddTables(corpus.Tables...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.Query(corpus.Trials[i%len(corpus.Trials)].Keywords)
		if err != nil {
			b.Fatal(err)
		}
		q.DropView(v)
	}
}

// BenchmarkSerialQuery and BenchmarkParallelQuery measure the tentpole of the
// concurrent execution engine: the same GBCO keyword workload with the
// materialisation worker pool at 1 versus GOMAXPROCS. The equivalence suite
// (internal/core/parallel_test.go) proves the answers are byte-identical;
// this pair proves the speedup is real. cmd/qbench -exp parallel prints the
// same comparison standalone.
func BenchmarkSerialQuery(b *testing.B)   { benchQueryAt(b, 1) }
func BenchmarkParallelQuery(b *testing.B) { benchQueryAt(b, 0) } // 0 = GOMAXPROCS default

// slowMatcher wraps a matcher with a per-Match pause, standing in for the
// expensive matchers registrations run in practice (content indexes, large
// sources, remote services). The contended benchmark uses it so the cost
// of BLOCKING behind a registration is visible even on one core, where
// pure CPU work cannot overlap anyway.
type slowMatcher struct{ inner matcher.Matcher }

func (m slowMatcher) Name() string { return m.inner.Name() }
func (m slowMatcher) Match(cat *relstore.Catalog, a, b *relstore.Relation) []matcher.Alignment {
	time.Sleep(5 * time.Millisecond)
	return m.inner.Match(cat, a, b)
}

// benchContendedQuery times a keyword query issued at the moment a source
// registration starts. locked=true simulates the pre-snapshot design by
// putting the query behind the same RWMutex the registration write-holds
// (the server's old big lock), so the measured query waits out the whole
// registration; locked=false is the shipping copy-on-write design — the
// query takes no lock and answers from the last published snapshot while
// the registration runs alongside. Each iteration performs exactly one
// registration in BOTH variants (only the query is timed), so the two
// runs traverse identical state trajectories and the ratio isolates pure
// contention. This pair is the regression guard for the snapshot
// tentpole: if queries ever start blocking behind registrations again,
// SnapshotContendedQuery collapses to LockedContendedQuery. CI runs both
// once (-benchtime=1x) so a contention regression fails loudly.
func benchContendedQuery(b *testing.B, locked bool) {
	corpus := datasets.GBCO()
	q := core.New(core.DefaultOptions())
	q.AddMatcher(slowMatcher{inner: meta.New()})
	if err := q.AddTables(corpus.Tables...); err != nil {
		b.Fatal(err)
	}
	// One persistent view so each registration's refresh does real work.
	if _, err := q.Query(corpus.Trials[0].Keywords); err != nil {
		b.Fatal(err)
	}

	var mu sync.RWMutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rel := &relstore.Relation{Source: fmt.Sprintf("contend%d", i), Name: "data",
			Attributes: []relstore.Attribute{{Name: "pubmed_id"}, {Name: "label"}}}
		tb, err := relstore.NewTable(rel, [][]string{{"PUB00001", "x"}})
		if err != nil {
			b.Fatal(err)
		}
		regStarted := make(chan struct{})
		regDone := make(chan error, 1)
		go func() {
			if locked {
				mu.Lock()
				defer mu.Unlock()
			}
			close(regStarted)
			_, err := q.RegisterSource([]*relstore.Table{tb}, core.Preferential)
			regDone <- err
		}()
		<-regStarted
		b.StartTimer()
		if locked {
			mu.RLock()
		}
		v, err := q.Query(corpus.Trials[i%len(corpus.Trials)].Keywords)
		if locked {
			mu.RUnlock()
		}
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		q.DropView(v)
		if err := <-regDone; err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkLockedContendedQuery and BenchmarkSnapshotContendedQuery: the
// same query workload under a registration storm, behind the old-style
// big lock versus lock-free over snapshots. cmd/qbench -exp snapshot
// prints the same comparison standalone.
func BenchmarkLockedContendedQuery(b *testing.B)   { benchContendedQuery(b, true) }
func BenchmarkSnapshotContendedQuery(b *testing.B) { benchContendedQuery(b, false) }

// benchValueCatalog builds the large synthetic value catalog shared by the
// FindValues pair, with the inverted index pre-built so the index run
// measures lookups, not construction (the scan has no build cost; qbench
// -exp valueindex reports build time separately).
func benchValueCatalog(b *testing.B) (*relstore.Catalog, []string) {
	b.Helper()
	tables, keywords := datasets.SyntheticValueCorpus(120, 200, 42)
	cat := relstore.NewCatalog()
	for _, t := range tables {
		if err := cat.AddTable(t); err != nil {
			b.Fatal(err)
		}
	}
	cat.BuildValueIndex(runtime.GOMAXPROCS(0))
	return cat, keywords
}

// BenchmarkScanFindValues and BenchmarkIndexFindValues measure the value-
// index tentpole: the same keyword workload over a 120-table / 24k-row
// synthetic catalog through the reference full-catalog scan versus the
// trigram inverted index. The metamorphic suite
// (internal/relstore/valueindex_test.go) proves the answers byte-identical;
// this pair proves the speedup is real. CI runs both once per push so an
// index regression fails loudly; cmd/qbench -exp valueindex prints the same
// comparison standalone across catalog scales.
func BenchmarkScanFindValues(b *testing.B) {
	cat, keywords := benchValueCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.ScanFindValues(keywords[i%len(keywords)])
	}
}

func BenchmarkIndexFindValues(b *testing.B) {
	cat, keywords := benchValueCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.IndexFindValues(keywords[i%len(keywords)])
	}
}

// --- Sharded-catalog benchmarks ---------------------------------------------
//
// The sharding tentpole: the same catalog-wide work on the 120-table
// synthetic value catalog through a single-shard catalog (the pre-sharding
// serial path: one partition, so every per-shard fan-out degenerates to one
// worker) versus the default sharded catalog (GOMAXPROCS partitions, one
// worker per shard). The metamorphic suites (internal/relstore/shard_test.go,
// internal/core/shard_test.go) prove every answer byte-identical; these
// pairs prove the speedup is real on multi-core hardware (the fan-out is
// pure CPU work, so expect parity at GOMAXPROCS=1 and ≥2x from 4 cores up).
// CI runs all three pairs once per push; cmd/qbench -exp shard prints the
// same comparison standalone across shard counts.

// benchShardCatalog builds the 120-table synthetic value catalog at an
// explicit shard count (0 = default) with the index pre-built, so the timed
// sections measure steady-state work, not first-touch construction.
func benchShardCatalog(b *testing.B, shards int) (*relstore.Catalog, []string) {
	b.Helper()
	tables, keywords := datasets.SyntheticValueCorpus(120, 200, 42)
	cat := relstore.NewCatalogSharded(shards)
	cat.SetParallelism(runtime.GOMAXPROCS(0))
	for _, t := range tables {
		if err := cat.AddTable(t); err != nil {
			b.Fatal(err)
		}
	}
	cat.BuildValueIndex(runtime.GOMAXPROCS(0))
	return cat, keywords
}

func benchShardFindValues(b *testing.B, shards int) {
	cat, keywords := benchShardCatalog(b, shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.IndexFindValues(keywords[i%len(keywords)])
	}
}

func BenchmarkUnshardedFindValues(b *testing.B) { benchShardFindValues(b, 1) }
func BenchmarkShardedFindValues(b *testing.B)   { benchShardFindValues(b, 0) }

// benchShardRegister measures the catalog side of one source registration —
// Clone, AddTable for a 16-table source, and the incremental index build of
// exactly those tables — at the given shard count. Fresh tables every
// iteration, so no segment is ever reused across iterations.
func benchShardRegister(b *testing.B, shards int) {
	cat, _ := benchShardCatalog(b, shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		newTables := make([]*relstore.Table, 16)
		for ti := range newTables {
			rel := &relstore.Relation{Source: fmt.Sprintf("reg%d", i), Name: fmt.Sprintf("data%d", ti),
				Attributes: []relstore.Attribute{{Name: "acc"}, {Name: "name"}, {Name: "description"}}}
			rows := make([][]string, 200)
			for ri := range rows {
				rows[ri] = []string{
					fmt.Sprintf("REG%d:%07d", ti, ri*31%997),
					fmt.Sprintf("pro mem %d", ri%13),
					fmt.Sprintf("ter gly fer %d bra %d", ri%7, ri%29),
				}
			}
			t, err := relstore.NewTable(rel, rows)
			if err != nil {
				b.Fatal(err)
			}
			newTables[ti] = t
		}
		b.StartTimer()
		clone := cat.Clone()
		for _, t := range newTables {
			if err := clone.AddTable(t); err != nil {
				b.Fatal(err)
			}
		}
		// Builds ONLY the 16 new segments: the base segments are shared
		// frozen across the clone (the incremental-maintenance contract).
		clone.BuildValueIndex(runtime.GOMAXPROCS(0))
	}
}

func BenchmarkUnshardedRegister(b *testing.B) { benchShardRegister(b, 1) }
func BenchmarkShardedRegister(b *testing.B)   { benchShardRegister(b, 0) }

// benchShardQueryExec measures conjunctive-query branch execution fanned
// across the worker pool: one selection query per table of the synthetic
// catalog, executed as one batch per iteration. What varies between the
// pair is the WORKER count — ExecuteBatch fans per query, and Execute's
// reads are shard-agnostic — so this pair quantifies the branch-execution
// fan-out that rides on the sharded catalog's parallelism knob, not a
// per-shard partition of the executor itself.
func benchShardQueryExec(b *testing.B, shards, workers int) {
	cat, _ := benchShardCatalog(b, shards)
	var queries []*relstore.ConjunctiveQuery
	for _, qn := range cat.RelationNames() {
		queries = append(queries, &relstore.ConjunctiveQuery{
			Atoms:   []relstore.Atom{{Relation: qn, Alias: "t0"}},
			Selects: []relstore.SelCond{{Alias: "t0", Attr: "description", Op: relstore.OpContains, Value: "pro"}},
			Project: []relstore.ProjCol{{Alias: "t0", Attr: "acc", As: "acc"}, {Alias: "t0", Attr: "name", As: "name"}},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relstore.ExecuteBatch(cat, queries, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnshardedQueryExec(b *testing.B) { benchShardQueryExec(b, 1, 1) }
func BenchmarkShardedQueryExec(b *testing.B) {
	benchShardQueryExec(b, 0, runtime.GOMAXPROCS(0))
}

// --- Query-cache benchmarks --------------------------------------------------
//
// The serving-layer tentpole: repeated keyword traffic against an unchanged
// catalog is the shape of production load — few hot queries, many users — so
// the workload is a Zipfian stream over the GBCO trial queries. Cold runs
// with the epoch-keyed cache disabled (every query pays the full pipeline),
// Warm with the cache enabled and pre-warmed (the steady serving state), and
// Coalesced fires 8 concurrent identical queries at a freshly published
// epoch (the thundering-herd case: the singleflight layer computes once and
// shares). The metamorphic suite (internal/core/cache_test.go) proves every
// cached answer byte-identical to the cold engine at the same epoch; this
// trio proves the speedup is real. CI runs all three once per push;
// cmd/qbench -exp cache prints hit-rate/latency sweeps standalone.

// zipfQueryStream is a deterministic Zipfian stream over the distinct GBCO
// trial queries (exponent s, seed-fixed).
func zipfQueryStream(n int, s float64, seed int64, queries []string) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(queries)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = queries[z.Uint64()]
	}
	return out
}

// benchCacheSetup builds a GBCO-backed Q (cache on or off) plus the
// Zipfian workload shared by the cold/warm pair.
func benchCacheSetup(b *testing.B, disableCache bool) (*core.Q, []string) {
	b.Helper()
	corpus := datasets.GBCO()
	opts := core.DefaultOptions()
	opts.QueryCacheDisabled = disableCache
	q := core.New(opts)
	q.AddMatcher(meta.New())
	if err := q.AddTables(corpus.Tables...); err != nil {
		b.Fatal(err)
	}
	queries := make([]string, len(corpus.Trials))
	for i, tr := range corpus.Trials {
		queries[i] = tr.Keywords
	}
	return q, zipfQueryStream(256, 1.3, 42, queries)
}

func benchCacheStream(b *testing.B, q *core.Q, stream []string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		v, err := q.Query(stream[i%len(stream)])
		if err != nil {
			b.Fatal(err)
		}
		q.DropView(v)
	}
}

func BenchmarkColdQuery(b *testing.B) {
	q, stream := benchCacheSetup(b, true)
	b.ResetTimer()
	benchCacheStream(b, q, stream)
}

func BenchmarkWarmQuery(b *testing.B) {
	q, stream := benchCacheSetup(b, false)
	// Pre-warm: one pass over the distinct queries, so the timed loop
	// measures the steady serving state (hits), even at -benchtime=1x.
	seen := make(map[string]bool)
	for _, query := range stream {
		if seen[query] {
			continue
		}
		seen[query] = true
		v, err := q.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		q.DropView(v)
	}
	b.ResetTimer()
	benchCacheStream(b, q, stream)
}

// BenchmarkCoalescedQuery times a thundering herd: 8 goroutines issue the
// SAME query concurrently against a generation none of them has cached (a
// cheap no-op write publishes a fresh epoch before each burst, untimed).
// The singleflight layer must collapse the burst into ~one pipeline run;
// compare against 8x the cold per-query time.
func BenchmarkCoalescedQuery(b *testing.B) {
	q, stream := benchCacheSetup(b, false)
	const herd = 8
	par := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Toggling the published parallelism bumps the epoch without touching
		// any data, so the herd's key is cold every iteration.
		q.SetParallelism(par + 1 + i%2)
		b.StartTimer()
		var wg sync.WaitGroup
		errs := make(chan error, herd)
		for g := 0; g < herd; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := q.Query(stream[0])
				if err != nil {
					errs <- err
					return
				}
				q.DropView(v)
			}()
		}
		wg.Wait()
		b.StopTimer()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	if s := q.CacheStats(); b.N > 1 && s.Materialization.Coalesced == 0 {
		b.Fatal("no coalescing observed across herd bursts")
	}
}

// BenchmarkRegisterSource measures one new-source registration under each
// strategy against the GBCO corpus.
func BenchmarkRegisterSource(b *testing.B) {
	corpus := datasets.GBCO()
	newTable := func() *relstore.Table {
		rel := &relstore.Relation{Source: "bench", Name: "data",
			Attributes: []relstore.Attribute{{Name: "pubmed_id"}, {Name: "label"}}}
		t, err := relstore.NewTable(rel, [][]string{{"PUB00001", "x"}})
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	for _, strat := range []core.AlignStrategy{core.Exhaustive, core.ViewBased, core.Preferential} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				q := core.New(core.DefaultOptions())
				q.AddMatcher(meta.New())
				if err := q.AddTables(corpus.Tables...); err != nil {
					b.Fatal(err)
				}
				if _, err := q.Query(corpus.Trials[0].Keywords); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := q.RegisterSource([]*relstore.Table{newTable()}, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConjunctiveQueryExec measures the relational executor on a
// three-way join over GBCO.
func BenchmarkConjunctiveQueryExec(b *testing.B) {
	corpus := datasets.GBCO()
	cat := relstore.NewCatalog()
	for _, t := range corpus.Tables {
		if err := cat.AddTable(t); err != nil {
			b.Fatal(err)
		}
	}
	q := &relstore.ConjunctiveQuery{
		Atoms: []relstore.Atom{
			{Relation: "gene.gene", Alias: "g"},
			{Relation: "transcript.transcript", Alias: "t"},
			{Relation: "protein.protein", Alias: "p"},
		},
		Joins: []relstore.JoinCond{
			{LeftAlias: "g", LeftAttr: "gene_id", RightAlias: "t", RightAttr: "gene_id"},
			{LeftAlias: "t", LeftAttr: "transcript_id", RightAlias: "p", RightAttr: "transcript_id"},
		},
		Project: []relstore.ProjCol{
			{Alias: "g", Attr: "symbol", As: "symbol"},
			{Alias: "p", Attr: "uniprot_ac", As: "uniprot_ac"},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := relstore.Execute(cat, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkMADLargeGraph runs MAD propagation on a corpus scaled toward the
// paper's 87K-node propagation graph (§5.2.1 reports ≈4 s for 3 iterations
// on 2008 hardware).
func BenchmarkMADLargeGraph(b *testing.B) {
	corpus := datasets.InterProGOScaled(50)
	cat := relstore.NewCatalog()
	for _, t := range corpus.Tables {
		if err := cat.AddTable(t); err != nil {
			b.Fatal(err)
		}
	}
	attrs, vals := mad.GraphSize(cat)
	b.Logf("MAD graph: %d attribute nodes, %d value nodes", attrs, vals)
	rels := cat.Relations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mad.New()
		if got := m.Match(cat, rels[0], rels[1]); len(got) == 0 {
			b.Fatal("no alignments at scale")
		}
	}
}

// --- Streaming-executor benchmarks -------------------------------------------
//
// The streaming-execution tentpole: the same join-shaped branch batch on the
// 120-table synthetic catalog through the materialise-everything reference
// executor versus the streaming iterator pipeline. The metamorphic suite
// (internal/relstore/stream_test.go) and FuzzExecuteEquivalence prove the
// results byte-identical; this pair proves the allocation and peak-memory
// reduction is real (expect ≥2x on allocated bytes). Beyond -benchmem's
// allocated-bytes/op, each reports a peak-bytes metric sampled from
// HeapAlloc while the batch runs — the materialised path holds every
// intermediate relation live at once, the streaming path only the current
// row and surviving output. CI runs the pair once per push; cmd/qbench
// -exp stream prints the comparison standalone with the early-termination
// counters of the top-k-pruned union.

// benchExecWorkload is the join-shaped branch batch: an equi-join on name
// with a pushed-down Contains selection for every adjacent table pair (the
// shape two-atom Steiner trees materialise into), plus one selection branch
// per table.
func benchExecWorkload(cat *relstore.Catalog) []*relstore.ConjunctiveQuery {
	names := cat.RelationNames()
	var queries []*relstore.ConjunctiveQuery
	for i := 0; i+1 < len(names); i++ {
		queries = append(queries, &relstore.ConjunctiveQuery{
			Atoms: []relstore.Atom{{Relation: names[i], Alias: "t0"}, {Relation: names[i+1], Alias: "t1"}},
			Joins: []relstore.JoinCond{{LeftAlias: "t0", LeftAttr: "name", RightAlias: "t1", RightAttr: "name"}},
			Selects: []relstore.SelCond{
				{Alias: "t0", Attr: "description", Op: relstore.OpContains, Value: "pro"}},
			Project: []relstore.ProjCol{
				{Alias: "t0", Attr: "acc", As: "acc"}, {Alias: "t1", Attr: "acc", As: "acc2"}},
		})
	}
	for _, qn := range names {
		queries = append(queries, &relstore.ConjunctiveQuery{
			Atoms:   []relstore.Atom{{Relation: qn, Alias: "t0"}},
			Selects: []relstore.SelCond{{Alias: "t0", Attr: "description", Op: relstore.OpContains, Value: "mem"}},
			Project: []relstore.ProjCol{{Alias: "t0", Attr: "acc", As: "acc"}},
		})
	}
	return queries
}

// benchExecutorQueryExec times the batch under one executor and reports the
// peak HeapAlloc observed while it runs (sampled at 100µs, minus the
// baseline before the batch starts) as "peak-bytes".
func benchExecutorQueryExec(b *testing.B, materialised bool) {
	cat, _ := benchShardCatalog(b, 0)
	cat.UseMaterialisedExec(materialised)
	queries := benchExecWorkload(cat)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relstore.ExecuteBatch(cat, queries, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	var growth uint64
	if peak > base.HeapAlloc {
		growth = peak - base.HeapAlloc
	}
	b.ReportMetric(float64(growth), "peak-bytes")
}

func BenchmarkMaterialisedQueryExec(b *testing.B) { benchExecutorQueryExec(b, true) }
func BenchmarkStreamingQueryExec(b *testing.B)    { benchExecutorQueryExec(b, false) }

// BenchmarkTopKPrunedQueryExec times the same batch through the top-k
// streamed union (k=25, costs ascending with branch index), where later
// branches are provably unbeatable and are never executed at all.
func BenchmarkTopKPrunedQueryExec(b *testing.B) {
	cat, _ := benchShardCatalog(b, 0)
	queries := benchExecWorkload(cat)
	prov := make([]string, len(queries))
	for i, q := range queries {
		q.Cost = float64(i)
		prov[i] = q.Signature()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var skipped int
	for i := 0; i < b.N; i++ {
		_, stats, err := relstore.ExecuteTopKUnion(cat, queries, 25, prov)
		if err != nil {
			b.Fatal(err)
		}
		skipped = stats.BranchesSkipped
	}
	b.ReportMetric(float64(skipped), "branches-skipped")
}

// --- Join-planner benchmarks -------------------------------------------------
//
// The cost-based planner tentpole: the same branch batches on the 120-table
// synthetic catalog with the planner off (the naive first-connected join
// order — the executable spec) versus on (greedy order by estimated
// cardinality from the value-index segment statistics, plus the cross-branch
// subplan cache). The metamorphic suite (internal/relstore/planner_test.go)
// and FuzzPlanEquivalence prove the answers byte-identical; this pair proves
// the reorder is a real win on workloads where the naive order builds a large
// intermediate before reaching the selective atom. CI runs the pair and the
// CSE benchmark once per push; cmd/qbench -exp plan prints the comparison
// standalone with the planner counters.

// benchPlannerWorkload is the reorder-sensitive batch: three-atom chain joins
// on name whose ONLY selective condition (an exact accession match, ~1 row)
// sits on the LAST atom. The naive order materialises the full t0⨝t1
// intermediate first; the cost-based order starts at the selective atom.
func benchPlannerWorkload(cat *relstore.Catalog) []*relstore.ConjunctiveQuery {
	names := cat.RelationNames()
	var queries []*relstore.ConjunctiveQuery
	for i := 0; i+2 < len(names); i += 3 {
		last := cat.Table(names[i+2])
		sel := last.Rows[0][last.Relation.AttrIndex("acc")]
		queries = append(queries, &relstore.ConjunctiveQuery{
			Atoms: []relstore.Atom{
				{Relation: names[i], Alias: "t0"},
				{Relation: names[i+1], Alias: "t1"},
				{Relation: names[i+2], Alias: "t2"},
			},
			Joins: []relstore.JoinCond{
				{LeftAlias: "t0", LeftAttr: "name", RightAlias: "t1", RightAttr: "name"},
				{LeftAlias: "t1", LeftAttr: "name", RightAlias: "t2", RightAttr: "name"},
			},
			Selects: []relstore.SelCond{{Alias: "t2", Attr: "acc", Op: relstore.OpEq, Value: sel}},
			Project: []relstore.ProjCol{
				{Alias: "t0", Attr: "acc", As: "acc"}, {Alias: "t2", Attr: "name", As: "name"}},
		})
	}
	return queries
}

func benchPlannerQueryExec(b *testing.B, planned bool) {
	cat, _ := benchShardCatalog(b, 0)
	cat.UsePlanner(planned)
	queries := benchPlannerWorkload(cat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relstore.ExecuteBatch(cat, queries, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnplannedQueryExec(b *testing.B) { benchPlannerQueryExec(b, false) }
func BenchmarkPlannedQueryExec(b *testing.B)   { benchPlannerQueryExec(b, true) }

// BenchmarkCSEMaterialise times a batch shaped like one view materialisation
// with heavy branch overlap — three projection variants of every adjacent-pair
// join, so each two-atom join prefix is shared by three branches — through
// PlanBatch and its subplan cache, and reports how much sharing the cache
// found and served ("shared-subtrees", "cse-hits").
func BenchmarkCSEMaterialise(b *testing.B) {
	cat, _ := benchShardCatalog(b, 0)
	names := cat.RelationNames()
	var queries []*relstore.ConjunctiveQuery
	for i := 0; i+1 < len(names); i++ {
		shape := func(proj []relstore.ProjCol) *relstore.ConjunctiveQuery {
			return &relstore.ConjunctiveQuery{
				Atoms: []relstore.Atom{{Relation: names[i], Alias: "t0"}, {Relation: names[i+1], Alias: "t1"}},
				Joins: []relstore.JoinCond{{LeftAlias: "t0", LeftAttr: "name", RightAlias: "t1", RightAttr: "name"}},
				Selects: []relstore.SelCond{
					{Alias: "t0", Attr: "description", Op: relstore.OpContains, Value: "pro"}},
				Project: proj,
			}
		}
		queries = append(queries,
			shape([]relstore.ProjCol{{Alias: "t0", Attr: "acc", As: "acc"}}),
			shape([]relstore.ProjCol{{Alias: "t1", Attr: "acc", As: "acc"}}),
			shape([]relstore.ProjCol{
				{Alias: "t0", Attr: "name", As: "n0"}, {Alias: "t1", Attr: "name", As: "n1"}}),
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var st relstore.PlanStats
	for i := 0; i < b.N; i++ {
		bp, err := relstore.PlanBatch(cat, queries)
		if err != nil {
			b.Fatal(err)
		}
		for qi := 0; qi < bp.Len(); qi++ {
			if _, err := bp.Execute(qi); err != nil {
				b.Fatal(err)
			}
		}
		st = bp.Stats()
	}
	b.ReportMetric(float64(st.SharedSubtrees), "shared-subtrees")
	b.ReportMetric(float64(st.CSEHits), "cse-hits")
}

// BenchmarkColdStartRebuild vs BenchmarkColdStartMapReplay: the cost of
// bringing the 120-table synthetic catalog to a query-ready state, either
// by re-ingesting every table (tokenising rows, building every inverted
// value-index segment, growing the search graph) or by opening a durable
// generation snapshot, where the segments were written verbatim and load as
// a read plus slice re-pointing. The replay path is the point of the
// storage engine: it must be several times faster than the rebuild.

func BenchmarkColdStartRebuild(b *testing.B) {
	tables, _ := datasets.SyntheticValueCorpus(120, 200, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := core.New(core.DefaultOptions())
		if err := q.AddTables(tables...); err != nil {
			b.Fatal(err)
		}
		if q.Catalog.NumRelations() != 120 {
			b.Fatalf("rebuild produced %d relations", q.Catalog.NumRelations())
		}
	}
}

func BenchmarkColdStartMapReplay(b *testing.B) {
	tables, _ := datasets.SyntheticValueCorpus(120, 200, 42)
	opts := core.DefaultOptions()
	opts.DataDir = b.TempDir()
	opts.CheckpointWALBytes = -1
	seed, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.AddTables(tables...); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil { // final checkpoint: snapshot + empty WAL
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := core.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		if q.Catalog.NumRelations() != 120 {
			b.Fatalf("replay produced %d relations", q.Catalog.NumRelations())
		}
		b.StopTimer()
		if err := q.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
