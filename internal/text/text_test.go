package text

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"entry_ac", "entry ac"},
		{"Entry-AC", "entry ac"},
		{"  GO:0005134 ", "go 0005134"},
		{"plasma membrane", "plasma membrane"},
		{"___", ""},
		{"", ""},
		{"A", "a"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"entry_ac", []string{"entry", "ac"}},
		{"entryAc", []string{"entry", "ac"}},
		{"GO term name", []string{"go", "term", "name"}},
		{"", nil},
		{"!!!", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestIsNumeric(t *testing.T) {
	yes := []string{"123", "-4.5", "+10", "1e5", "3,000", "0.0"}
	no := []string{"", "abc", "GO:123", "12a", "e5", "-", "1-2"}
	for _, s := range yes {
		if !IsNumeric(s) {
			t.Errorf("IsNumeric(%q) = false, want true", s)
		}
	}
	for _, s := range no {
		if IsNumeric(s) {
			t.Errorf("IsNumeric(%q) = true, want false", s)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"abc", "abc", 0},
		{"pub", "publication", 8},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("edit distance not symmetric:", err)
	}
	identity := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("edit distance identity violated:", err)
	}
	triangle := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("triangle inequality violated:", err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("abc", "abc"); got != 1 {
		t.Errorf("identical strings: got %v, want 1", got)
	}
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("empty strings: got %v, want 1", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint same-length strings: got %v, want 0", got)
	}
	bounded := func(a, b string) bool {
		s := EditSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error("similarity out of [0,1]:", err)
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("ab", 2)
	// padded: #ab# -> #a, ab, b#
	want := map[string]int{"#a": 1, "ab": 1, "b#": 1}
	if len(g) != len(want) {
		t.Fatalf("NGrams = %v, want %v", g, want)
	}
	for k, v := range want {
		if g[k] != v {
			t.Errorf("gram %q: got %d, want %d", k, g[k], v)
		}
	}
	if NGrams("x", 0) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if got := TrigramSimilarity("entry", "entry"); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical: got %v, want 1", got)
	}
	sim := TrigramSimilarity("publication", "pub")
	if sim <= 0 || sim >= 1 {
		t.Errorf("prefix share should be in (0,1), got %v", sim)
	}
	if s := TrigramSimilarity("aaa", "zzz"); s != 0 {
		t.Errorf("disjoint: got %v, want 0", s)
	}
	symmetric := func(a, b string) bool {
		return math.Abs(TrigramSimilarity(a, b)-TrigramSimilarity(b, a)) < 1e-12
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("trigram similarity not symmetric:", err)
	}
}

func TestJaccard(t *testing.T) {
	set := func(ss ...string) map[string]struct{} {
		m := make(map[string]struct{})
		for _, s := range ss {
			m[s] = struct{}{}
		}
		return m
	}
	if got := Jaccard(set(), set()); got != 1 {
		t.Errorf("empty sets: got %v, want 1", got)
	}
	if got := Jaccard(set("a"), set()); got != 0 {
		t.Errorf("one empty: got %v, want 0", got)
	}
	if got := Jaccard(set("a", "b"), set("b", "c")); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("overlap: got %v, want 1/3", got)
	}
	if got := Jaccard(set("a", "b"), set("a", "b")); got != 1 {
		t.Errorf("identical: got %v, want 1", got)
	}
}

func TestContainmentSimilarity(t *testing.T) {
	// "pub" is a substring of "publication": the abbrevs association of Fig. 2.
	s := ContainmentSimilarity("pub", "publication")
	if s <= 0.2 {
		t.Errorf("pub/publication should score well, got %v", s)
	}
	if got := ContainmentSimilarity("entry_ac", "entry_ac"); got != 1 {
		t.Errorf("identical labels: got %v, want 1", got)
	}
	// token overlap without substring containment
	s2 := ContainmentSimilarity("go term", "term name")
	if s2 <= 0 {
		t.Errorf("shared token should score > 0, got %v", s2)
	}
	if got := ContainmentSimilarity("", "x"); got != 0 {
		t.Errorf("empty string: got %v, want 0", got)
	}
}

func TestCorpusScoreAndTopMatches(t *testing.T) {
	c := NewCorpus()
	c.Add("n1", "GO term")
	c.Add("n2", "term name")
	c.Add("n3", "publication title")
	c.Add("n4", "entry_ac")

	if s := c.Score("publication", "n3"); s <= 0 {
		t.Errorf("query should hit n3, got %v", s)
	}
	if s := c.Score("publication", "n4"); s != 0 {
		t.Errorf("query should miss n4, got %v", s)
	}
	m := c.TopMatches("term", 0.01, 0)
	if len(m) != 2 {
		t.Fatalf("TopMatches(term) = %v, want 2 hits", m)
	}
	for _, hit := range m {
		if hit.ID != "n1" && hit.ID != "n2" {
			t.Errorf("unexpected hit %v", hit)
		}
	}
	// idf should let rare term dominate: "go" only appears in n1.
	m = c.TopMatches("GO", 0.01, 1)
	if len(m) != 1 || m[0].ID != "n1" {
		t.Errorf("TopMatches(GO) = %v, want [n1]", m)
	}
}

func TestCorpusReAdd(t *testing.T) {
	c := NewCorpus()
	c.Add("a", "alpha beta")
	c.Add("a", "gamma")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after re-add", c.Len())
	}
	if s := c.Score("alpha", "a"); s != 0 {
		t.Errorf("old content should be gone, got %v", s)
	}
	if s := c.Score("gamma", "a"); s <= 0 {
		t.Errorf("new content should score, got %v", s)
	}
}

func TestCorpusScoreBounds(t *testing.T) {
	c := NewCorpus()
	docs := []string{"plasma membrane", "GO term", "entry pub", "abbrev term", "title"}
	for i, d := range docs {
		c.Add(string(rune('a'+i)), d)
	}
	queries := []string{"plasma", "membrane GO", "term", "nothing here", ""}
	for _, q := range queries {
		for i := range docs {
			s := c.Score(q, string(rune('a'+i)))
			if s < 0 || s > 1+1e-9 {
				t.Errorf("Score(%q,%c) = %v out of [0,1]", q, 'a'+i, s)
			}
		}
	}
	if s := c.Score("term", "unknown-id"); s != 0 {
		t.Errorf("unknown id should score 0, got %v", s)
	}
}

func TestCorpusDeterministicOrdering(t *testing.T) {
	c := NewCorpus()
	c.Add("b", "shared token")
	c.Add("a", "shared token")
	m := c.TopMatches("shared", 0, 0)
	if len(m) != 2 || m[0].ID != "a" || m[1].ID != "b" {
		t.Errorf("tie-break should order by id: %v", m)
	}
}

func TestTokenizeCamelCase(t *testing.T) {
	got := Tokenize("goTermName")
	want := []string{"go", "term", "name"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("camel tokenize: got %v, want %v", got, want)
	}
}
