// Package text provides the string-similarity and information-retrieval
// primitives used throughout Q: tokenisation and normalisation of schema
// labels and data values, edit distance, character n-gram overlap, Jaccard
// similarity, and a tf-idf vectoriser with cosine scoring.
//
// The keyword-to-node match scores s_i of the paper's query graph (Figure 3)
// come from this package, as do the name-similarity components of the
// metadata matcher.
package text

import (
	"strings"
	"unicode"
)

// Normalize lower-cases s and collapses runs of non-alphanumeric characters
// into single spaces. Schema labels such as "entry_ac", "entry-AC" and
// "Entry AC" all normalise to "entry ac".
func Normalize(s string) string {
	if isNormalized(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// isNormalized reports whether s is already in normal form — ASCII
// lower-case letters and digits separated by single interior spaces — so
// Normalize can return it without allocating. Data values on the executor
// hot path (selection push-down checks every scanned row) are usually
// already normal, and anything uncertain (uppercase, punctuation,
// non-ASCII) falls through to the general path.
func isNormalized(s string) bool {
	prevSpace := true // doubles as the no-leading-space check
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			prevSpace = false
		case c == ' ':
			if prevSpace {
				return false
			}
			prevSpace = true
		default:
			return false
		}
	}
	return !prevSpace || s == ""
}

// Tokenize splits s into normalised word tokens. CamelCase boundaries are
// treated as separators so that "entryAc" tokenises to ["entry", "ac"].
func Tokenize(s string) []string {
	// Insert spaces at lower->upper camel boundaries before normalising.
	var camel strings.Builder
	camel.Grow(len(s) + 4)
	runes := []rune(s)
	for i, r := range runes {
		if i > 0 && unicode.IsUpper(r) && unicode.IsLower(runes[i-1]) {
			camel.WriteByte(' ')
		}
		camel.WriteRune(r)
	}
	n := Normalize(camel.String())
	if n == "" {
		return nil
	}
	return strings.Fields(n)
}

// IsNumeric reports whether s consists only of digits, signs, decimal points
// and exponent markers — i.e. whether it looks like a number. The MAD graph
// builder prunes numeric values because they induce spurious associations
// between unrelated numeric columns (paper §5.2.1).
func IsNumeric(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	seenDigit := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			seenDigit = true
		case r == '+' || r == '-':
			if i != 0 {
				return false
			}
		case r == '.' || r == ',':
			// decimal or thousands separator
		case r == 'e' || r == 'E':
			if !seenDigit {
				return false
			}
		default:
			return false
		}
	}
	return seenDigit
}

// EditDistance returns the Levenshtein distance between a and b, operating on
// runes. It uses two rolling rows, O(min(len)) space.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity maps edit distance to a similarity in [0,1]:
// 1 - dist/max(len). Identical strings score 1; disjoint strings approach 0.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(EditDistance(a, b))/float64(m)
}

// NGrams returns the multiset (as a count map) of character n-grams of s,
// padded with (n-1) leading and trailing '#' markers so that prefixes and
// suffixes contribute distinct grams.
func NGrams(s string, n int) map[string]int {
	if n <= 0 {
		return nil
	}
	pad := strings.Repeat("#", n-1)
	p := pad + s + pad
	r := []rune(p)
	grams := make(map[string]int)
	for i := 0; i+n <= len(r); i++ {
		grams[string(r[i:i+n])]++
	}
	return grams
}

// TrigramSimilarity is the Dice coefficient over character trigram multisets:
// 2*|common| / (|A| + |B|).
func TrigramSimilarity(a, b string) float64 {
	return ngramSimilarity(a, b, 3)
}

func ngramSimilarity(a, b string, n int) float64 {
	ga, gb := NGrams(a, n), NGrams(b, n)
	ta, tb := 0, 0
	for _, c := range ga {
		ta += c
	}
	for _, c := range gb {
		tb += c
	}
	if ta+tb == 0 {
		return 0
	}
	common := 0
	for g, ca := range ga {
		if cb, ok := gb[g]; ok {
			if cb < ca {
				common += cb
			} else {
				common += ca
			}
		}
	}
	return 2 * float64(common) / float64(ta+tb)
}

// Jaccard returns |A∩B| / |A∪B| for two string sets. Empty∩empty is defined
// as 1 (identical).
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for v := range small {
		if _, ok := large[v]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ContainmentSimilarity scores how much the token sets of a and b overlap,
// favouring substring containment: it is the max of token Jaccard and a
// normalised longest-common-substring ratio. This approximates the
// "substring matcher" component the paper uses from COMA++.
func ContainmentSimilarity(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	j := tokenJaccard(na, nb)
	c := containmentRatio(na, nb)
	if c > j {
		return c
	}
	return j
}

func tokenJaccard(a, b string) float64 {
	sa := make(map[string]struct{})
	for _, t := range strings.Fields(a) {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{})
	for _, t := range strings.Fields(b) {
		sb[t] = struct{}{}
	}
	return Jaccard(sa, sb)
}

// containmentRatio gives len(shorter)/len(longer) when one normalised string
// contains the other as a substring (e.g. "pub" in "publication"), else 0.
func containmentRatio(a, b string) float64 {
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	if strings.Contains(strings.ReplaceAll(long, " ", ""), strings.ReplaceAll(short, " ", "")) {
		ls := len(strings.ReplaceAll(short, " ", ""))
		ll := len(strings.ReplaceAll(long, " ", ""))
		if ll == 0 {
			return 0
		}
		return float64(ls) / float64(ll)
	}
	return 0
}
