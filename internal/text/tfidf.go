package text

import (
	"math"
	"sort"
)

// Corpus is a tf-idf index over a collection of documents. Documents are
// short strings (schema labels, data values); Q uses one Corpus over all
// schema elements and indexed values to score keyword matches (paper §2.2:
// "by default tf-idf").
//
// The zero value is not usable; construct with NewCorpus and call Add before
// Score. Adding documents after the first Score call is permitted — idf is
// recomputed lazily.
type Corpus struct {
	docs    []document
	df      map[string]int // document frequency per term
	byID    map[string]int // external id -> index in docs
	dirty   bool
	idf     map[string]float64
	vectors []map[string]float64 // normalised tf-idf vectors, built lazily
}

type document struct {
	id     string
	tokens []string
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		df:   make(map[string]int),
		byID: make(map[string]int),
	}
}

// Add indexes a document under id. Re-adding an existing id replaces its
// content.
func (c *Corpus) Add(id, content string) {
	tokens := Tokenize(content)
	if idx, ok := c.byID[id]; ok {
		for _, t := range uniqueTokens(c.docs[idx].tokens) {
			c.df[t]--
			if c.df[t] <= 0 {
				delete(c.df, t)
			}
		}
		c.docs[idx].tokens = tokens
	} else {
		c.byID[id] = len(c.docs)
		c.docs = append(c.docs, document{id: id, tokens: tokens})
	}
	for _, t := range uniqueTokens(tokens) {
		c.df[t]++
	}
	c.dirty = true
}

// Len returns the number of indexed documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Flush rebuilds the idf table and document vectors if any Add happened
// since the last scoring. A flushed corpus serves Score and TopMatches as
// pure reads, which is what lets Q publish one corpus snapshot to many
// concurrent queries: the writer flushes before publishing, so no reader
// ever triggers the lazy rebuild.
func (c *Corpus) Flush() {
	if c.dirty {
		c.rebuild()
	}
}

// Clone returns a copy-on-write clone: the document slice, frequency table
// and id index are copied (token slices and built vectors are immutable and
// shared). Adding to the clone leaves the original untouched, so a
// published corpus snapshot stays frozen while a registration indexes new
// schema labels into the next generation.
func (c *Corpus) Clone() *Corpus {
	df := make(map[string]int, len(c.df))
	for k, v := range c.df {
		df[k] = v
	}
	byID := make(map[string]int, len(c.byID))
	for k, v := range c.byID {
		byID[k] = v
	}
	return &Corpus{
		docs:    append([]document(nil), c.docs...),
		df:      df,
		byID:    byID,
		dirty:   c.dirty,
		idf:     c.idf,
		vectors: append([]map[string]float64(nil), c.vectors...),
	}
}

func uniqueTokens(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	var out []string
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

func (c *Corpus) rebuild() {
	n := float64(len(c.docs))
	c.idf = make(map[string]float64, len(c.df))
	for t, df := range c.df {
		// Smoothed idf; always positive so single-document corpora still rank.
		c.idf[t] = math.Log(1+n/float64(df)) + 1e-9
	}
	c.vectors = make([]map[string]float64, len(c.docs))
	for i, d := range c.docs {
		c.vectors[i] = c.vectorize(d.tokens)
	}
	c.dirty = false
}

// vectorize builds an L2-normalised tf-idf vector for the given tokens.
func (c *Corpus) vectorize(tokens []string) map[string]float64 {
	if len(tokens) == 0 {
		return nil
	}
	tf := make(map[string]float64)
	for _, t := range tokens {
		tf[t]++
	}
	var norm float64
	for t := range tf {
		idf, ok := c.idf[t]
		if !ok {
			idf = math.Log(1 + float64(len(c.docs)))
		}
		tf[t] = tf[t] * idf
		norm += tf[t] * tf[t]
	}
	if norm == 0 {
		return nil
	}
	norm = math.Sqrt(norm)
	for t := range tf {
		tf[t] /= norm
	}
	return tf
}

// Score returns the cosine similarity in [0,1] between the query string and
// the document registered under id. Unknown ids score 0.
func (c *Corpus) Score(query, id string) float64 {
	if c.dirty {
		c.rebuild()
	}
	idx, ok := c.byID[id]
	if !ok {
		return 0
	}
	qv := c.vectorize(Tokenize(query))
	return dot(qv, c.vectors[idx])
}

// Match holds one ranked corpus hit for a query.
type Match struct {
	ID    string
	Score float64
}

// TopMatches returns the documents whose cosine similarity with query is at
// least minScore, ranked best-first, at most limit entries (limit <= 0 means
// no limit). Ties break on document id for determinism.
func (c *Corpus) TopMatches(query string, minScore float64, limit int) []Match {
	if c.dirty {
		c.rebuild()
	}
	qv := c.vectorize(Tokenize(query))
	if len(qv) == 0 {
		return nil
	}
	var out []Match
	for i, d := range c.docs {
		s := dot(qv, c.vectors[i])
		if s >= minScore && s > 0 {
			out = append(out, Match{ID: d.id, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// dot returns the inner product, quantised to 1e-9: map iteration order
// varies the low float bits run to run, and unquantised scores would flip
// ranking ties (and hence the contents of truncated match lists)
// nondeterministically.
func dot(a, b map[string]float64) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var s float64
	for t, va := range a {
		if vb, ok := b[t]; ok {
			s += va * vb
		}
	}
	return math.Round(s*1e9) / 1e9
}
