package text

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalize pins the invariants every index structure built over
// normalised text depends on (trigram postings, token postings, containment
// checks): Normalize is idempotent, its output alphabet is lowercase
// letters, digits and single interior spaces, and tokenisation of the
// output is stable. CI runs this as a short -fuzz smoke on every push; the
// checked-in corpus below seeds the interesting shapes.
func FuzzNormalize(f *testing.F) {
	for _, s := range []string{
		"", " ", "entry_ac", "entry-AC", "Entry AC", "GO:0005886",
		"plasma membrane", "café au lait", "Ångström", "βeta-catenin",
		"東京タワー", "İstanbul", "ǅungla", "ﬀ ligature", "á combining",
		"\x00\x01 control", "mixed\tWS\n\r chars", "ΣΊΣΥΦΟΣ", "ß sharp",
		"!!!", "--::--", "42", "3.14159", "� replacement", "𝔘𝔫𝔦𝔠𝔬𝔡𝔢",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if again := Normalize(n); again != n {
			t.Errorf("Normalize not idempotent: %q -> %q -> %q", s, n, again)
		}
		if n != strings.TrimSpace(n) {
			t.Errorf("Normalize(%q) = %q has leading/trailing space", s, n)
		}
		if strings.Contains(n, "  ") {
			t.Errorf("Normalize(%q) = %q has a run of spaces", s, n)
		}
		for _, r := range n {
			if r == ' ' {
				continue
			}
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				t.Errorf("Normalize(%q) = %q contains non-alphanumeric rune %q", s, n, r)
			}
			// Case-folding fixed point. (Not IsUpper: runes like '𝔘',
			// category Lu with no lowercase mapping, legitimately survive.)
			if unicode.ToLower(r) != r {
				t.Errorf("Normalize(%q) = %q contains non-lowered rune %q", s, n, r)
			}
		}
		// Fields of the output round-trip: joining them back IS the output.
		if joined := strings.Join(strings.Fields(n), " "); joined != n {
			t.Errorf("Normalize(%q) = %q is not field-stable (%q)", s, n, joined)
		}
	})
}
