package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The epoch WAL: every mutation committed after the current generation
// snapshot is appended as one self-delimiting record and fsync'd before
// the writer publishes the mutation to readers (log-then-publish). A
// record is:
//
//	u32  length of the rest of the record (epoch + kind + payload)
//	u32  CRC-32 (IEEE) of the rest of the record
//	u64  epoch this record commits
//	u8   kind (opaque to storage; the engine defines its record kinds)
//	...  payload
//
// all little-endian. Replay walks the records front to back, verifying
// each CRC; a record that is short (the file ends inside it) or fails its
// CRC is a torn tail — the crash interrupted the append before the fsync
// returned, so the mutation never committed. Recovery truncates the file
// back to the last good record and resumes from there: the store reopens
// at exactly the last committed epoch instead of refusing to start.

const walMagic = "QWALv1\n\n"

// walHeaderSize is the per-record framing overhead: length + CRC.
const walHeaderSize = 8

// Record is one committed WAL entry.
type Record struct {
	Epoch   uint64
	Kind    byte
	Payload []byte
}

// WAL is an append-only record log. Appends are serialised by the caller
// (the engine's single-writer lock); Replay happens once, at open.
type WAL struct {
	f    *os.File
	path string
	size int64
}

// CreateWAL creates a fresh, empty WAL file (failing if one already
// exists), writes its magic header and makes it durable.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create wal: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: create wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: create wal: %w", err)
	}
	return &WAL{f: f, path: path, size: int64(len(walMagic))}, nil
}

// OpenWAL opens an existing WAL, replays its committed records and
// truncates any torn tail so subsequent appends extend the last committed
// record. The returned records are the log's full committed contents.
func OpenWAL(path string) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open wal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if len(data) < len(walMagic) {
		// A WAL's magic is fsync'd at creation before the manifest ever
		// names the file, so a shorter-than-magic file can only be a torn
		// creation caught mid-write: recover it to a fresh empty WAL —
		// provided what IS there is a prefix of the magic; anything else is
		// not a WAL and refusing beats silently destroying it.
		if string(data) != walMagic[:len(data)] {
			f.Close()
			return nil, nil, fmt.Errorf("storage: %s is not a WAL file", path)
		}
		if err := rewriteWALHeader(f); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &WAL{f: f, path: path, size: int64(len(walMagic))}, nil, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, nil, fmt.Errorf("storage: %s is not a WAL file", path)
	}
	records, good := replayRecords(data[len(walMagic):])
	end := int64(len(walMagic)) + good
	if end < int64(len(data)) {
		// Torn tail: the crash interrupted the final append before its
		// fsync, so that mutation never committed. Truncate back to the
		// last committed record.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &WAL{f: f, path: path, size: end}, records, nil
}

// rewriteWALHeader completes a torn WAL creation: the full magic is
// rewritten from offset 0 and fsync'd, leaving a valid empty log.
func rewriteWALHeader(f *os.File) error {
	if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
		return fmt.Errorf("storage: repair wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: repair wal header: %w", err)
	}
	if _, err := f.Seek(int64(len(walMagic)), 0); err != nil {
		return fmt.Errorf("storage: repair wal header: %w", err)
	}
	return nil
}

// replayRecords decodes committed records from the body (post-magic) of a
// WAL, returning them and the byte length of the committed prefix. The
// first short or CRC-failing record ends the committed prefix.
func replayRecords(body []byte) ([]Record, int64) {
	var records []Record
	off := int64(0)
	for {
		rest := body[off:]
		if len(rest) < walHeaderSize {
			break
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length < 9 || int64(len(rest)) < walHeaderSize+int64(length) {
			break // torn: the record body never fully reached the disk
		}
		rec := rest[walHeaderSize : walHeaderSize+int64(length)]
		if crc32.ChecksumIEEE(rec) != crc {
			break // torn or corrupt: not a committed record
		}
		payload := make([]byte, len(rec)-9)
		copy(payload, rec[9:])
		records = append(records, Record{
			Epoch:   binary.LittleEndian.Uint64(rec[0:8]),
			Kind:    rec[8],
			Payload: payload,
		})
		off += walHeaderSize + int64(length)
	}
	return records, off
}

// Append commits one record: the framed bytes are written and fsync'd
// before Append returns, so a successful Append IS the commit point — a
// crash after it replays the record, a crash during it truncates it.
func (w *WAL) Append(rec Record) error {
	buf := make([]byte, walHeaderSize+9+len(rec.Payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(9+len(rec.Payload)))
	binary.LittleEndian.PutUint64(buf[8:16], rec.Epoch)
	buf[16] = rec.Kind
	copy(buf[17:], rec.Payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: wal append: sync: %w", err)
	}
	w.size += int64(len(buf))
	return nil
}

// Size returns the WAL's committed record bytes (the magic header
// excluded, so an empty log reports 0) — the checkpointer's fold trigger.
func (w *WAL) Size() int64 { return w.size - int64(len(walMagic)) }

// Path returns the WAL's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }
