// Package storage is Q's durable storage engine: crash-safe persistence
// for the immutable, epoch-stamped state generations the core engine
// already produces in memory.
//
// The on-disk unit is a directory holding three kinds of file:
//
//	MANIFEST          the single source of truth: which generation
//	                  snapshot is current, its epoch, and which WAL file
//	                  carries the mutations committed since. Written
//	                  atomically (write-temp → fsync → rename → dir
//	                  fsync), so a reader always sees one complete,
//	                  committed manifest — never a torn one.
//	gen-<epoch>.snap  one generation snapshot: a binary, offset-indexed
//	                  section container (see container.go) holding the
//	                  catalog, its built value-index segments, the search
//	                  graph and the view definitions as of <epoch>.
//	wal-<epoch>.log   the epoch write-ahead log: every mutation committed
//	                  after snapshot <epoch>, as length-prefixed,
//	                  CRC-checked, epoch-stamped records, fsync'd on
//	                  commit (see wal.go).
//
// Restart is therefore "map the newest published generation + replay the
// WAL tail": Open reads the manifest, loads the snapshot it names, and
// replays only the records committed since — seconds of decoding instead
// of a full re-index. A torn final WAL record (crash mid-append) is
// truncated, not fatal: recovery lands exactly on the last committed
// epoch.
//
// Publishing a new generation (folding the WAL into a fresh snapshot)
// follows the classic write-temp → fsync → atomic-rename protocol, and the
// manifest is only rewritten after the new snapshot and its fresh WAL are
// both durable — a crash at any intermediate step leaves the previous
// generation fully intact and current.
package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via the write-temp → fsync → atomic-rename
// protocol: write is handed a temporary file in the target's directory, and
// only after it returns successfully and the data is fsync'd is the
// temporary renamed over path. A crash at any point leaves either the old
// file (complete) or the new file (complete) — never a torn or truncated
// mix, and never a destroyed previous version. The containing directory is
// fsync'd after the rename so the new name itself is durable.
//
// All snapshot-to-a-path writes in this repository route through this
// helper (an in-place os.Create would destroy the previous snapshot the
// moment a crash interrupts the write).
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("storage: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("storage: atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("storage: atomic write %s: rename: %w", path, err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable. Errors from platforms that refuse directory fsync (some
// filesystems return EINVAL) are ignored — the rename itself is still
// atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// Best effort: directory fsync is advisory on platforms that
		// reject it; the atomic rename above already happened.
		return nil
	}
	return nil
}
