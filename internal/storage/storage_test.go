package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "generation-1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failed write leaves the previous file byte-identical and no temp
	// droppings behind.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half-written genera")
		return fmt.Errorf("simulated crash")
	}); err == nil {
		t.Fatal("expected error from failed write")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-1" {
		t.Fatalf("previous snapshot destroyed: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func buildContainer(t *testing.T, sections map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewContainerWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic order for the test.
	for _, name := range []string{"catalog", "graph", "views"} {
		body, ok := sections[name]
		if !ok {
			continue
		}
		if err := cw.Section(name, func(w io.Writer) error {
			_, err := io.WriteString(w, body)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	sections := map[string]string{"catalog": "CATDATA", "graph": "", "views": "[]"}
	data := buildContainer(t, sections)
	c, err := OpenContainer(data)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range sections {
		got, ok := c.Section(name)
		if !ok {
			t.Fatalf("section %q missing", name)
		}
		if string(got) != want {
			t.Errorf("section %q = %q, want %q", name, got, want)
		}
	}
	if _, ok := c.Section("absent"); ok {
		t.Error("absent section reported present")
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	data := buildContainer(t, map[string]string{"catalog": "CATDATA", "graph": "GRAPH"})
	// Every single-byte flip anywhere in the file must be detected: either
	// a magic/index failure or a section CRC mismatch.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := OpenContainer(mut); err == nil {
			t.Fatalf("byte flip at offset %d accepted", i)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := OpenContainer(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Epoch: 1, Kind: 1, Payload: []byte("alpha")},
		{Epoch: 2, Kind: 2, Payload: nil},
		{Epoch: 3, Kind: 7, Payload: bytes.Repeat([]byte{0, 255, 10}, 100)},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	w2, got, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i].Epoch != r.Epoch || got[i].Kind != r.Kind || !bytes.Equal(got[i].Payload, r.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], r)
		}
	}
}

// TestWALCrashInjection is the crash suite of the issue: the tail record is
// truncated at EVERY byte boundary, and separately corrupted at every byte
// offset, and recovery must land exactly on the last committed epoch —
// every earlier record intact, the torn record gone, and the log usable
// for further appends.
func TestWALCrashInjection(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	w, err := CreateWAL(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Epoch: 1, Kind: 1, Payload: []byte("committed-one")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Epoch: 2, Kind: 2, Payload: []byte("committed-two")}); err != nil {
		t.Fatal(err)
	}
	tailStart := int64(len(walMagic)) + w.Size() // Size excludes the magic; cuts are file offsets
	if err := w.Append(Record{Epoch: 3, Kind: 3, Payload: []byte("the-tail-record-that-may-tear")}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, name string, data []byte, wantRecords int, wantEpoch uint64) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		wal, recs, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		if len(recs) != wantRecords {
			t.Fatalf("recovered %d records, want %d", len(recs), wantRecords)
		}
		if wantRecords > 0 && recs[len(recs)-1].Epoch != wantEpoch {
			t.Fatalf("recovered to epoch %d, want %d", recs[len(recs)-1].Epoch, wantEpoch)
		}
		// The log must stay appendable after recovery, and the new record
		// must replay cleanly on a further reopen.
		if err := wal.Append(Record{Epoch: wantEpoch + 1, Kind: 9, Payload: []byte("post-crash")}); err != nil {
			t.Fatal(err)
		}
		wal.Close()
		_, recs2, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != wantRecords+1 || recs2[len(recs2)-1].Epoch != wantEpoch+1 {
			t.Fatalf("post-recovery append lost: %d records", len(recs2))
		}
		os.Remove(path)
	}

	// Truncation at every byte boundary inside the tail record: anything
	// short of the full record recovers 2 records at epoch 2; the full
	// file recovers all 3.
	for cut := tailStart; cut <= int64(len(full)); cut++ {
		want, epoch := 2, uint64(2)
		if cut == int64(len(full)) {
			want, epoch = 3, 3
		}
		check(t, fmt.Sprintf("trunc-%d.log", cut), full[:cut], want, epoch)
	}

	// Corruption at every byte offset inside the tail record: the CRC (or
	// the length bound) must reject it, recovering 2 records. A flip in
	// the length field can only make the record short/overlong — never a
	// valid different record.
	for off := tailStart; off < int64(len(full)); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		check(t, fmt.Sprintf("corrupt-%d.log", off), mut, 2, 2)
	}

	// Truncation inside the magic header itself: a torn CreateWAL caught
	// before its fsync (the manifest can still name the file — Publish
	// creates the WAL before committing the manifest). Recovery completes
	// the header, leaving an empty, appendable log; a non-prefix header
	// stays rejected.
	for cut := 0; cut < len(walMagic); cut++ {
		check(t, fmt.Sprintf("header-%d.log", cut), full[:cut], 0, 0)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.log"), []byte("not"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(filepath.Join(dir, "garbage.log")); err == nil {
		t.Fatal("a non-WAL file must be rejected, not repaired")
	}
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 0 || len(s.Records()) != 0 {
		t.Fatalf("fresh store: epoch=%d records=%d", s.Epoch(), len(s.Records()))
	}
	if _, ok, err := s.Snapshot(); err != nil || ok {
		t.Fatalf("fresh store has a snapshot? ok=%v err=%v", ok, err)
	}
	for i := 1; i <= 3; i++ {
		epoch, err := s.Append(1, []byte(fmt.Sprintf("mutation-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != uint64(i) {
			t.Fatalf("append %d stamped epoch %d", i, epoch)
		}
	}
	s.Close()

	// Reopen: the tail replays with the same epochs and payloads.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.Records()) != 3 || s2.Epoch() != 3 {
		t.Fatalf("reopen: %d records, epoch %d", len(s2.Records()), s2.Epoch())
	}
	for i, r := range s2.Records() {
		want := fmt.Sprintf("mutation-%d", i+1)
		if r.Epoch != uint64(i+1) || r.Kind != 1 || string(r.Payload) != want {
			t.Errorf("record %d = %+v, want epoch %d payload %q", i, r, i+1, want)
		}
	}
}

func TestStorePublish(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(1, []byte("pre-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(func(sa SectionAdder) error {
		return sa.Section("state", func(w io.Writer) error {
			_, err := io.WriteString(w, "folded-state-at-epoch-1")
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotEpoch() != 1 {
		t.Fatalf("snapshot epoch = %d, want 1", s.SnapshotEpoch())
	}
	if epoch, err := s.Append(2, []byte("post-checkpoint")); err != nil || epoch != 2 {
		t.Fatalf("post-publish append: epoch=%d err=%v", epoch, err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, ok, err := s2.Snapshot()
	if err != nil || !ok {
		t.Fatalf("snapshot after reopen: ok=%v err=%v", ok, err)
	}
	body, _ := c.Section("state")
	if string(body) != "folded-state-at-epoch-1" {
		t.Errorf("snapshot body = %q", body)
	}
	if len(s2.Records()) != 1 || s2.Records()[0].Epoch != 2 || s2.Epoch() != 2 {
		t.Fatalf("tail after reopen: %d records, epoch %d", len(s2.Records()), s2.Epoch())
	}
	// Exactly one generation's files remain (plus MANIFEST): the previous
	// WAL was removed at publish.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 3 {
		t.Errorf("directory holds %v, want MANIFEST + one snapshot + one wal", names)
	}
}

// TestStorePublishSameEpoch: publishing twice without an intervening append
// re-publishes at the same epoch — the snapshot is atomically replaced, the
// empty WAL is kept (no name collision), and a fresh store's first manifest
// learns the snapshot name. The engine hits this when a checkpoint persists
// snapshot-only state (view definitions) with nothing new in the log.
func TestStorePublishSameEpoch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	write := func(body string) func(SectionAdder) error {
		return func(sa SectionAdder) error {
			return sa.Section("state", func(w io.Writer) error {
				_, err := io.WriteString(w, body)
				return err
			})
		}
	}
	// Fresh store, epoch 0, no appends at all: both publishes must succeed
	// and the second body must win.
	if err := s.Publish(write("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(write("second")); err != nil {
		t.Fatalf("same-epoch re-publish: %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, ok, err := s2.Snapshot()
	if err != nil || !ok {
		t.Fatalf("snapshot after same-epoch publishes: ok=%v err=%v", ok, err)
	}
	if body, _ := c.Section("state"); string(body) != "second" {
		t.Errorf("snapshot body = %q, want the re-published state", body)
	}
	if s2.Epoch() != 0 || len(s2.Records()) != 0 {
		t.Fatalf("reopen: epoch=%d records=%d, want a clean epoch-0 generation",
			s2.Epoch(), len(s2.Records()))
	}
}

// TestStoreIgnoresStrayFiles pins the crash-between-publish-steps
// behaviour: files not named by the manifest (orphan snapshots or WALs
// from an interrupted publish) are ignored at open.
func TestStoreIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(1, []byte("real")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash that left a half-written snapshot and an orphan WAL.
	os.WriteFile(filepath.Join(dir, "gen-99.snap"), []byte("garbage"), 0o644)
	if w, err := CreateWAL(filepath.Join(dir, "wal-99.log")); err == nil {
		w.Close()
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.Records()) != 1 || s2.Epoch() != 1 {
		t.Fatalf("stray files changed recovery: %d records, epoch %d", len(s2.Records()), s2.Epoch())
	}
}
