package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// A generation snapshot file is a section container: a fixed magic header,
// the named binary sections laid out back to back, and a trailing offset
// index so a reader can locate (and CRC-verify) each section with one
// slice — no re-parsing, no re-indexing. The layout is mmap-friendly:
// every section is a contiguous byte range addressed by (offset, length),
// and loading is "read the file, verify, re-point slices".
//
//	+------------------+
//	| magic "QSNAPv1\n"|  8 bytes
//	| section 0 bytes  |
//	| section 1 bytes  |
//	| ...              |
//	| index (JSON)     |  [{name, off, len, crc}, ...]
//	| index CRC        |  4 bytes, little endian, CRC-32 of the index
//	| index length     |  4 bytes, little endian
//	| magic "QIDXv1\n\n"| 8 bytes
//	+------------------+

const (
	containerMagic = "QSNAPv1\n"
	indexMagic     = "QIDXv1\n\n"
)

// sectionMeta locates one section inside the container.
type sectionMeta struct {
	Name string `json:"name"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	CRC  uint32 `json:"crc"`
}

// ContainerWriter streams a section container to an underlying writer.
// Sections are written in call order; Finish appends the index. The writer
// never seeks, so it composes with WriteFileAtomic's temp file directly.
type ContainerWriter struct {
	w   io.Writer
	off int64
	idx []sectionMeta
}

// NewContainerWriter starts a container on w by writing the header.
func NewContainerWriter(w io.Writer) (*ContainerWriter, error) {
	if _, err := io.WriteString(w, containerMagic); err != nil {
		return nil, fmt.Errorf("storage: container header: %w", err)
	}
	return &ContainerWriter{w: w, off: int64(len(containerMagic))}, nil
}

// Section streams one named section: write receives a writer that counts
// and checksums the bytes on the way through. Section names must be unique
// within one container.
func (cw *ContainerWriter) Section(name string, write func(io.Writer) error) error {
	for _, m := range cw.idx {
		if m.Name == name {
			return fmt.Errorf("storage: duplicate container section %q", name)
		}
	}
	crc := crc32.NewIEEE()
	cnt := &countingWriter{w: io.MultiWriter(cw.w, crc)}
	if err := write(cnt); err != nil {
		return fmt.Errorf("storage: container section %q: %w", name, err)
	}
	cw.idx = append(cw.idx, sectionMeta{
		Name: name, Off: cw.off, Len: cnt.n, CRC: crc.Sum32(),
	})
	cw.off += cnt.n
	return nil
}

// Finish writes the trailing index. The container is not valid until
// Finish returns nil.
func (cw *ContainerWriter) Finish() error {
	idx, err := json.Marshal(cw.idx)
	if err != nil {
		return fmt.Errorf("storage: container index: %w", err)
	}
	if _, err := cw.w.Write(idx); err != nil {
		return fmt.Errorf("storage: container index: %w", err)
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[0:4], crc32.ChecksumIEEE(idx))
	binary.LittleEndian.PutUint32(trailer[4:8], uint32(len(idx)))
	if _, err := cw.w.Write(trailer[:]); err != nil {
		return fmt.Errorf("storage: container index: %w", err)
	}
	if _, err := io.WriteString(cw.w, indexMagic); err != nil {
		return fmt.Errorf("storage: container index: %w", err)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Container is a parsed, verified section container over one in-memory
// byte slice. Section returns sub-slices of that same backing array — the
// "slice re-point" load path: decoding a section may alias its bytes
// rather than copying them.
type Container struct {
	data     []byte
	sections map[string]sectionMeta
}

// OpenContainer parses and fully verifies a container: both magics, index
// bounds, and every section's CRC. A container that fails any check is
// rejected whole — the durability contract is that the manifest only ever
// names snapshots whose write completed, so a bad container is real
// corruption, reported loudly.
func OpenContainer(data []byte) (*Container, error) {
	if len(data) < len(containerMagic)+8+len(indexMagic) {
		return nil, fmt.Errorf("storage: container truncated (%d bytes)", len(data))
	}
	if string(data[:len(containerMagic)]) != containerMagic {
		return nil, fmt.Errorf("storage: bad container magic")
	}
	if string(data[len(data)-len(indexMagic):]) != indexMagic {
		return nil, fmt.Errorf("storage: bad container index magic")
	}
	lenOff := len(data) - len(indexMagic) - 4
	idxLen := int(binary.LittleEndian.Uint32(data[lenOff:]))
	crcOff := lenOff - 4
	idxOff := crcOff - idxLen
	if idxLen < 0 || idxOff < len(containerMagic) {
		return nil, fmt.Errorf("storage: container index out of bounds")
	}
	idxCRC := binary.LittleEndian.Uint32(data[crcOff:lenOff])
	if crc32.ChecksumIEEE(data[idxOff:crcOff]) != idxCRC {
		return nil, fmt.Errorf("storage: container index CRC mismatch")
	}
	var idx []sectionMeta
	if err := json.Unmarshal(data[idxOff:crcOff], &idx); err != nil {
		return nil, fmt.Errorf("storage: container index: %w", err)
	}
	c := &Container{data: data, sections: make(map[string]sectionMeta, len(idx))}
	for _, m := range idx {
		if m.Off < int64(len(containerMagic)) || m.Len < 0 || m.Off+m.Len > int64(idxOff) {
			return nil, fmt.Errorf("storage: container section %q out of bounds", m.Name)
		}
		if crc := crc32.ChecksumIEEE(data[m.Off : m.Off+m.Len]); crc != m.CRC {
			return nil, fmt.Errorf("storage: container section %q CRC mismatch", m.Name)
		}
		c.sections[m.Name] = m
	}
	return c, nil
}

// Section returns the named section's bytes (aliasing the container's
// backing slice) and whether it exists.
func (c *Container) Section(name string) ([]byte, bool) {
	m, ok := c.sections[name]
	if !ok {
		return nil, false
	}
	return c.data[m.Off : m.Off+m.Len], true
}

// SectionNames lists the container's sections (for diagnostics).
func (c *Container) SectionNames() []string {
	out := make([]string, 0, len(c.sections))
	for name := range c.sections {
		out = append(out, name)
	}
	return out
}
