package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// manifestName is the fixed name of the manifest file inside a data
// directory.
const manifestName = "MANIFEST"

const manifestVersion = 1

// manifest is the single source of truth for a data directory: which
// generation snapshot is current, the epoch it covers, and the WAL file
// carrying mutations committed since. It is only ever replaced via
// WriteFileAtomic, after everything it names is already durable.
type manifest struct {
	Version  int    `json:"version"`
	Epoch    uint64 `json:"epoch"`    // epoch covered by Snapshot ("" → 0)
	Snapshot string `json:"snapshot"` // gen-<epoch>.snap, or "" before any checkpoint
	WAL      string `json:"wal"`      // wal-<epoch>.log
}

// Store manages one durable data directory: the manifest, the current
// generation snapshot and the live WAL. It is storage-only — record kinds
// and snapshot sections are opaque; the engine (internal/core) defines
// them. Append/Publish must be serialised by the caller (they run under
// the engine's single-writer lock).
type Store struct {
	dir   string
	man   manifest
	wal   *WAL
	tail  []Record // committed records replayed at Open
	epoch uint64   // last committed epoch (manifest epoch + appended records)
}

// Open opens (or initialises) a data directory. On an empty directory it
// creates a fresh manifest with no snapshot and an empty WAL; on an
// existing one it loads the manifest, verifies the snapshot it names and
// replays the WAL tail, truncating a torn final record. The committed
// tail is available via Records; the snapshot bytes via Snapshot.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	manPath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manPath)
	switch {
	case os.IsNotExist(err):
		// Fresh directory: epoch 0, no snapshot, empty WAL, then commit
		// the manifest naming them. Ordering matters — the WAL exists
		// before any manifest names it.
		s.man = manifest{Version: manifestVersion, Epoch: 0, WAL: walName(0)}
		wal, err := CreateWAL(filepath.Join(dir, s.man.WAL))
		if err != nil {
			return nil, err
		}
		s.wal = wal
		if err := s.writeManifest(); err != nil {
			wal.Close()
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	default:
		if err := json.Unmarshal(raw, &s.man); err != nil {
			return nil, fmt.Errorf("storage: %s: %w", manPath, err)
		}
		if s.man.Version != manifestVersion {
			return nil, fmt.Errorf("storage: unsupported manifest version %d", s.man.Version)
		}
		wal, tail, err := OpenWAL(filepath.Join(dir, s.man.WAL))
		if err != nil {
			return nil, err
		}
		s.wal = wal
		s.tail = tail
	}
	s.epoch = s.man.Epoch + uint64(len(s.tail))
	return s, nil
}

// Snapshot returns the current generation snapshot as a verified
// container, or (nil, false) when no checkpoint has been published yet.
func (s *Store) Snapshot() (*Container, bool, error) {
	if s.man.Snapshot == "" {
		return nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, s.man.Snapshot))
	if err != nil {
		return nil, false, fmt.Errorf("storage: read snapshot: %w", err)
	}
	c, err := OpenContainer(data)
	if err != nil {
		return nil, false, fmt.Errorf("storage: snapshot %s: %w", s.man.Snapshot, err)
	}
	return c, true, nil
}

// Records returns the committed WAL tail replayed at Open — the mutations
// to apply on top of the snapshot.
func (s *Store) Records() []Record { return s.tail }

// Epoch returns the last committed epoch: the snapshot's epoch plus every
// record committed since.
func (s *Store) Epoch() uint64 { return s.epoch }

// SnapshotEpoch returns the epoch covered by the current snapshot.
func (s *Store) SnapshotEpoch() uint64 { return s.man.Epoch }

// WALSize returns the live WAL's byte size — the checkpoint trigger.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// WALPath returns the current WAL file's path (crash-injection tests
// truncate it to simulate torn writes).
func (s *Store) WALPath() string { return s.wal.Path() }

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Append commits one mutation record: it is stamped with the next epoch,
// framed, CRC'd, written and fsync'd. When Append returns nil the
// mutation is durable — the engine publishes it to readers only then
// (log-then-publish).
func (s *Store) Append(kind byte, payload []byte) (uint64, error) {
	epoch := s.epoch + 1
	if err := s.wal.Append(Record{Epoch: epoch, Kind: kind, Payload: payload}); err != nil {
		return 0, err
	}
	s.epoch = epoch
	return epoch, nil
}

// Publish folds the WAL into a new generation snapshot: write adds the
// snapshot's sections to a temp file, which is fsync'd and atomically
// renamed to gen-<epoch>.snap; a fresh empty WAL is created; and only then
// is the manifest atomically replaced to name both. A crash at any step
// leaves the previous (snapshot, WAL) pair complete and current. The old
// generation's files are removed last — a crash before the removal leaves
// stray files that are simply ignored.
func (s *Store) Publish(write func(SectionAdder) error) error {
	epoch := s.epoch
	snapName := fmt.Sprintf("gen-%d.snap", epoch)
	err := WriteFileAtomic(filepath.Join(s.dir, snapName), func(w io.Writer) error {
		cw, err := NewContainerWriter(w)
		if err != nil {
			return err
		}
		if err := write(cw.sectionWriter()); err != nil {
			return err
		}
		return cw.Finish()
	})
	if err != nil {
		return err
	}
	if s.man.Epoch == epoch && s.man.WAL == walName(epoch) {
		// Publish at an unchanged epoch (no records appended since the last
		// fold — e.g. a checkpoint persisting new view definitions, which
		// are snapshot-only state). The current WAL is empty and already
		// named by the manifest, so the atomically-replaced snapshot is the
		// whole change; the manifest needs rewriting only the first time (a
		// fresh store's manifest names no snapshot yet).
		if s.man.Snapshot != snapName {
			oldMan := s.man
			s.man.Snapshot = snapName
			if err := s.writeManifest(); err != nil {
				os.Remove(filepath.Join(s.dir, snapName))
				s.man = oldMan
				return err
			}
		}
		syncDir(s.dir)
		return nil
	}
	newWAL, err := CreateWAL(filepath.Join(s.dir, walName(epoch)))
	if err != nil {
		return err
	}
	oldMan, oldWAL := s.man, s.wal
	s.man = manifest{Version: manifestVersion, Epoch: epoch, Snapshot: snapName, WAL: walName(epoch)}
	if err := s.writeManifest(); err != nil {
		// The new snapshot and WAL are orphans; the old manifest still
		// names a complete generation. Roll back in memory.
		newWAL.Close()
		os.Remove(filepath.Join(s.dir, snapName))
		os.Remove(filepath.Join(s.dir, walName(epoch)))
		s.man = oldMan
		return err
	}
	s.wal = newWAL
	s.tail = nil
	oldWAL.Close()
	if oldMan.Snapshot != "" && oldMan.Snapshot != snapName {
		os.Remove(filepath.Join(s.dir, oldMan.Snapshot))
	}
	if oldMan.WAL != s.man.WAL {
		os.Remove(filepath.Join(s.dir, oldMan.WAL))
	}
	syncDir(s.dir)
	return nil
}

// Close closes the live WAL. The store must not be used afterwards.
func (s *Store) Close() error { return s.wal.Close() }

func (s *Store) writeManifest() error {
	return WriteFileAtomic(filepath.Join(s.dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(s.man)
	})
}

func walName(epoch uint64) string { return fmt.Sprintf("wal-%d.log", epoch) }

// SectionAdder is the narrow interface Publish hands to the engine's
// snapshot writer: add named sections, in order.
type SectionAdder interface {
	Section(name string, write func(io.Writer) error) error
}

// sectionWriter adapts ContainerWriter to SectionAdder (hiding Finish,
// which Publish calls itself).
func (cw *ContainerWriter) sectionWriter() SectionAdder { return addOnly{cw} }

type addOnly struct{ cw *ContainerWriter }

func (a addOnly) Section(name string, write func(io.Writer) error) error {
	return a.cw.Section(name, write)
}
