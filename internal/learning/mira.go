package learning

import "sort"

// TreeExample represents one query tree for learning: the sum of its edges'
// feature vectors (so that tree cost = w · Features) and the canonical keys
// of its edges (for the symmetric loss of Equation 2).
type TreeExample struct {
	Features Vector
	EdgeKeys []string
}

// NewTreeExample aggregates per-edge feature vectors and keys into an
// example. Fixed zero-cost edges should be passed with nil features; their
// keys still participate in the loss.
func NewTreeExample(edgeKeys []string, edgeFeatures []Vector) TreeExample {
	f := Vector{}
	for _, ef := range edgeFeatures {
		if ef != nil {
			f.AddScaled(ef, 1)
		}
	}
	keys := make([]string, len(edgeKeys))
	copy(keys, edgeKeys)
	sort.Strings(keys)
	return TreeExample{Features: f, EdgeKeys: keys}
}

// Cost returns the tree's cost under weights w.
func (t TreeExample) Cost(w Vector) float64 { return w.Dot(t.Features) }

// SymmetricLoss is Equation 2: |E(T)\E(T')| + |E(T')\E(T)|, computed over
// the canonical edge keys (which are sorted by construction).
func SymmetricLoss(a, b TreeExample) float64 {
	i, j, loss := 0, 0, 0
	for i < len(a.EdgeKeys) && j < len(b.EdgeKeys) {
		switch {
		case a.EdgeKeys[i] == b.EdgeKeys[j]:
			i++
			j++
		case a.EdgeKeys[i] < b.EdgeKeys[j]:
			loss++
			i++
		default:
			loss++
			j++
		}
	}
	loss += len(a.EdgeKeys) - i
	loss += len(b.EdgeKeys) - j
	return float64(loss)
}

// MIRA is the margin-infused relaxed update of Algorithm 4: after each
// feedback item it finds the minimal weight change under which the target
// tree beats every competing tree by a margin equal to the loss between
// them. The multi-constraint quadratic program is solved with Hildreth's
// iterative projection algorithm.
type MIRA struct {
	// MaxIters bounds Hildreth iterations per update.
	MaxIters int
	// Tolerance stops the projections once the largest dual adjustment in a
	// sweep falls below it.
	Tolerance float64
	// MaxAlpha caps each constraint's dual variable, i.e. the aggressiveness
	// of the update (the "C" of passive–aggressive algorithms; 0 = no cap).
	MaxAlpha float64
}

// NewMIRA returns a learner with standard settings. MaxAlpha is kept small:
// Q's feedback arrives as a replayed stream (the paper applies its 10-step
// log up to 4 times), so gentle per-step updates that converge over the
// stream beat aggressive single-step jumps, which drive individual edge
// weights far negative and force large global positivity offsets.
func NewMIRA() *MIRA {
	return &MIRA{MaxIters: 100, Tolerance: 1e-9, MaxAlpha: 0.25}
}

// Update returns new weights given the previous weights, the user-favoured
// target tree Tr and the current k-best competitor set B (which may include
// Tr itself; its constraint is trivially satisfied since the loss is zero).
// The previous weights are not mutated.
func (m *MIRA) Update(prev Vector, target TreeExample, competitors []TreeExample) Vector {
	return m.UpdateWithPositivity(prev, target, competitors, nil, 0)
}

// UpdateWithPositivity is Update plus Algorithm 4's edge-cost positivity
// constraints (line 11: w · f_ij > 0 for every learnable edge): each vector
// in edgeFeatures contributes the constraint w · f ≥ floor, solved jointly
// with the margin constraints. Solving positivity inside the QP — rather
// than offsetting weights afterwards — lets the solver redistribute mass
// instead of driving one edge's weight far negative and then inflating
// every other edge to compensate.
func (m *MIRA) UpdateWithPositivity(prev Vector, target TreeExample, competitors []TreeExample, edgeFeatures []Vector, floor float64) Vector {
	// Constraints: w · d_i ≥ b_i with d_i = F(T_i) - F(Tr), b_i = L(Tr,T_i).
	type constraint struct {
		d      Vector
		b      float64
		norm2  float64
		capped bool // margin constraints honour MaxAlpha; positivity must not
	}
	var cons []constraint
	for _, comp := range competitors {
		d := comp.Features.Sub(target.Features)
		b := SymmetricLoss(target, comp)
		n2 := d.Norm2()
		if n2 == 0 {
			continue // identical feature vectors: nothing to separate
		}
		cons = append(cons, constraint{d: d, b: b, norm2: n2, capped: true})
	}
	for _, f := range edgeFeatures {
		n2 := f.Norm2()
		if n2 == 0 {
			continue
		}
		cons = append(cons, constraint{d: f, b: floor, norm2: n2})
	}
	w := prev.Clone()
	if len(cons) == 0 {
		return w
	}

	maxIters := m.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	alphas := make([]float64, len(cons))
	for iter := 0; iter < maxIters; iter++ {
		maxAdj := 0.0
		for i, c := range cons {
			violation := c.b - w.Dot(c.d)
			delta := violation / c.norm2
			if delta < -alphas[i] {
				delta = -alphas[i] // duals stay non-negative
			}
			if c.capped && m.MaxAlpha > 0 && alphas[i]+delta > m.MaxAlpha {
				delta = m.MaxAlpha - alphas[i]
			}
			if delta != 0 {
				alphas[i] += delta
				w.AddScaled(c.d, delta)
			}
			if a := abs(delta); a > maxAdj {
				maxAdj = a
			}
		}
		if maxAdj < m.Tolerance {
			break
		}
	}
	return w
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// EnsurePositive enforces Algorithm 4's positivity constraint
// (w · f_ij > 0 for learnable edges) the way the paper describes: the
// "default" feature appears on every learnable edge with value 1, so raising
// its weight shifts every edge cost uniformly. minCost must return the
// minimum learnable edge cost under the supplied weights; floor is the
// desired minimum (> 0). The returned vector shares no state with w.
func EnsurePositive(w Vector, minCost func(Vector) float64, floor float64) Vector {
	out := w.Clone()
	mc := minCost(out)
	if mc >= floor {
		return out
	}
	out["default"] += floor - mc
	return out
}
