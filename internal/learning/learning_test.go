package learning

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	a := Vector{"x": 2, "y": 3}
	b := Vector{"y": 4, "z": 5}
	if got := a.Dot(b); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
	if got := a.Dot(Vector{}); got != 0 {
		t.Errorf("Dot with empty = %v", got)
	}
	if a.Dot(b) != b.Dot(a) {
		t.Error("Dot not symmetric")
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	a := Vector{"x": 1}
	b := a.Clone()
	b["x"] = 99
	if a["x"] != 1 {
		t.Error("Clone should not share storage")
	}
}

func TestVectorAddScaledRemovesZeros(t *testing.T) {
	a := Vector{"x": 1, "y": 2}
	a.AddScaled(Vector{"x": -1, "z": 3}, 1)
	if _, ok := a["x"]; ok {
		t.Error("zeroed entry should be deleted")
	}
	if a["z"] != 3 || a["y"] != 2 {
		t.Errorf("AddScaled result wrong: %v", a)
	}
}

func TestVectorSubAndNorm(t *testing.T) {
	a := Vector{"x": 3}
	b := Vector{"x": 1, "y": 2}
	d := a.Sub(b)
	if d["x"] != 2 || d["y"] != -2 {
		t.Errorf("Sub = %v", d)
	}
	if got := d.Norm2(); got != 8 {
		t.Errorf("Norm2 = %v, want 8", got)
	}
	if a["x"] != 3 {
		t.Error("Sub must not mutate receiver")
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{"b": 2, "a": 1}
	if v.String() != "{a=1 b=2}" {
		t.Errorf("String = %q", v.String())
	}
}

func TestBinner(t *testing.T) {
	b := DefaultBinner()
	if b.NumBins() != 5 {
		t.Fatalf("NumBins = %d", b.NumBins())
	}
	cases := []struct {
		x    float64
		want int
	}{{0, 0}, {0.1, 0}, {0.2, 1}, {0.45, 2}, {0.79, 3}, {0.8, 4}, {1.0, 4}}
	for _, c := range cases {
		if got := b.Bin(c.x); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if f := b.Feature("mad", 0.95); f != "matcher:mad:bin4" {
		t.Errorf("Feature = %q", f)
	}
	if f := b.Feature("meta", math.NaN()); f != "matcher:meta:bin0" {
		t.Errorf("NaN should land in bin0: %q", f)
	}
	monotone := func(x, y float64) bool {
		x, y = math.Abs(math.Mod(x, 1)), math.Abs(math.Mod(y, 1))
		if x > y {
			x, y = y, x
		}
		return b.Bin(x) <= b.Bin(y)
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Error("binning not monotone:", err)
	}
}

func TestNewTreeExampleAggregates(t *testing.T) {
	ex := NewTreeExample(
		[]string{"e2", "e1"},
		[]Vector{{"default": 1, "fk": 1}, nil, {"default": 1}},
	)
	if ex.Features["default"] != 2 || ex.Features["fk"] != 1 {
		t.Errorf("aggregated features = %v", ex.Features)
	}
	if ex.EdgeKeys[0] != "e1" || ex.EdgeKeys[1] != "e2" {
		t.Errorf("keys should be sorted: %v", ex.EdgeKeys)
	}
	w := Vector{"default": 0.5, "fk": 2}
	if got := ex.Cost(w); got != 3 {
		t.Errorf("Cost = %v, want 3", got)
	}
}

func TestSymmetricLoss(t *testing.T) {
	a := TreeExample{EdgeKeys: []string{"e1", "e2", "e3"}}
	b := TreeExample{EdgeKeys: []string{"e2", "e4"}}
	if got := SymmetricLoss(a, b); got != 3 { // e1,e3 vs e4
		t.Errorf("loss = %v, want 3", got)
	}
	if got := SymmetricLoss(a, a); got != 0 {
		t.Errorf("self loss = %v, want 0", got)
	}
	if SymmetricLoss(a, b) != SymmetricLoss(b, a) {
		t.Error("loss not symmetric")
	}
	empty := TreeExample{}
	if got := SymmetricLoss(a, empty); got != 3 {
		t.Errorf("loss vs empty = %v, want 3", got)
	}
}

func TestMIRAUpdateSeparatesTarget(t *testing.T) {
	// Target uses edge A (feature fa), competitor uses edge B (feature fb).
	// A single update moves toward the margin (MaxAlpha caps aggressiveness
	// per step — Q replays feedback, as the paper does); repeated updates
	// must reach a margin of at least the loss (2).
	target := TreeExample{Features: Vector{"fa": 1}, EdgeKeys: []string{"A"}}
	comp := TreeExample{Features: Vector{"fb": 1}, EdgeKeys: []string{"B"}}
	w := Vector{"fa": 1, "fb": 1}
	m := NewMIRA()
	w2 := m.Update(w, target, []TreeExample{comp})
	step1 := comp.Cost(w2) - target.Cost(w2)
	if step1 <= 0 {
		t.Errorf("first update should open a margin, got %v", step1)
	}
	for i := 0; i < 100; i++ {
		w2 = m.Update(w2, target, []TreeExample{comp})
	}
	margin := comp.Cost(w2) - target.Cost(w2)
	if margin < 2-1e-6 {
		t.Errorf("margin after replays = %v, want ≥ 2", margin)
	}
	// Original weights untouched.
	if w["fa"] != 1 || w["fb"] != 1 {
		t.Errorf("Update mutated input weights: %v", w)
	}
}

func TestMIRAUpdateIsMinimal(t *testing.T) {
	// If the target already beats all competitors by the margin, weights
	// must not change.
	target := TreeExample{Features: Vector{"fa": 1}, EdgeKeys: []string{"A"}}
	comp := TreeExample{Features: Vector{"fb": 1}, EdgeKeys: []string{"B"}}
	w := Vector{"fa": 0, "fb": 10}
	m := NewMIRA()
	w2 := m.Update(w, target, []TreeExample{comp})
	if d := w2.Sub(w).Norm2(); d > 1e-12 {
		t.Errorf("satisfied constraints should not move weights, moved %v", d)
	}
}

func TestMIRAUpdateTargetInCompetitorSet(t *testing.T) {
	// Tr ∈ B: its constraint is trivially satisfied (loss 0), no effect.
	target := TreeExample{Features: Vector{"fa": 1}, EdgeKeys: []string{"A"}}
	w := Vector{"fa": 1}
	m := NewMIRA()
	w2 := m.Update(w, target, []TreeExample{target})
	if d := w2.Sub(w).Norm2(); d > 1e-12 {
		t.Errorf("self-constraint should be no-op, moved %v", d)
	}
}

func TestMIRAUpdateMultipleConstraints(t *testing.T) {
	target := TreeExample{Features: Vector{"fa": 1}, EdgeKeys: []string{"A"}}
	comps := []TreeExample{
		{Features: Vector{"fb": 1}, EdgeKeys: []string{"B"}},
		{Features: Vector{"fc": 1}, EdgeKeys: []string{"C"}},
		{Features: Vector{"fb": 1, "fc": 1}, EdgeKeys: []string{"B", "C"}},
	}
	w := Vector{"fa": 5, "fb": 1, "fc": 1}
	m := NewMIRA()
	w2 := w
	for i := 0; i < 200; i++ { // replayed stream converges to all margins
		w2 = m.Update(w2, target, comps)
	}
	for i, c := range comps {
		margin := c.Cost(w2) - target.Cost(w2)
		loss := SymmetricLoss(target, c)
		if margin < loss-1e-6 {
			t.Errorf("constraint %d: margin %v < loss %v", i, margin, loss)
		}
	}
}

func TestMIRAPositivityConstraints(t *testing.T) {
	// An edge whose only feature is "fa" must keep w·f ≥ floor even while
	// the margin update pulls fa down.
	target := TreeExample{Features: Vector{"fa": 1}, EdgeKeys: []string{"A"}}
	comp := TreeExample{Features: Vector{"fb": 1}, EdgeKeys: []string{"B"}}
	edgeA := Vector{"fa": 1}
	w := Vector{"fa": 0.05, "fb": 0.05}
	m := NewMIRA()
	for i := 0; i < 100; i++ {
		w = m.UpdateWithPositivity(w, target, []TreeExample{comp}, []Vector{edgeA}, 0.01)
	}
	if cost := w.Dot(edgeA); cost < 0.01-1e-6 {
		t.Errorf("positivity constraint violated: edge cost %v", cost)
	}
	if margin := comp.Cost(w) - target.Cost(w); margin < 2-1e-6 {
		t.Errorf("margin %v should still be achievable via fb", margin)
	}
}

func TestMIRAMaxAlphaCapsAggressiveness(t *testing.T) {
	target := TreeExample{Features: Vector{"fa": 1}, EdgeKeys: []string{"A"}}
	comp := TreeExample{Features: Vector{"fb": 1}, EdgeKeys: []string{"B"}}
	w := Vector{"fa": 100, "fb": 0}
	capped := &MIRA{MaxIters: 100, Tolerance: 1e-9, MaxAlpha: 0.1}
	w2 := capped.Update(w, target, []TreeExample{comp})
	// With α ≤ 0.1 and ||d||² = 2, the weight change is at most 0.1·d.
	if diff := w2.Sub(w).Norm2(); diff > 0.1*0.1*2+1e-9 {
		t.Errorf("capped update moved too far: %v", diff)
	}
}

func TestEnsurePositive(t *testing.T) {
	w := Vector{"default": 1, "bonus": -5}
	minCost := func(w Vector) float64 {
		// One edge with features {default:1, bonus:1} -> cost w·f
		return w["default"] + w["bonus"]
	}
	out := EnsurePositive(w, minCost, 0.01)
	if got := minCost(out); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("min cost after EnsurePositive = %v, want 0.01", got)
	}
	if w["default"] != 1 {
		t.Error("input mutated")
	}
	// Already positive: unchanged.
	w2 := Vector{"default": 3}
	out2 := EnsurePositive(w2, func(w Vector) float64 { return w["default"] }, 0.01)
	if out2["default"] != 3 {
		t.Errorf("no-op case changed weights: %v", out2)
	}
}
