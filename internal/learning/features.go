// Package learning implements Q's association-cost learner: sparse feature
// vectors over search-graph edges, binning of real-valued matcher
// confidences into indicator features, and the MIRA online update
// (Algorithm 4 of the paper) that turns user feedback on query answers into
// new edge-cost weights.
package learning

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse feature (or weight) vector keyed by feature name.
// Feature names follow the conventions of paper §3.4:
//
//	"default"            shared by every learnable edge (value 1); its weight
//	                     is the uniform cost offset keeping edge costs positive
//	"matcher:<name>"     a schema matcher's confidence (real-valued, usually
//	                     replaced by bin indicators, see Binner)
//	"rel:<qualified>"    indicator for each relation an association touches;
//	                     its weight is -log(authoritativeness)
//	"edge:<key>"         indicator unique to one edge
//	"fk"                 indicator on key–foreign-key edges
//	"kw"                 indicator on keyword match edges
type Vector map[string]float64

// Dot returns v · w.
func (v Vector) Dot(w Vector) float64 {
	a, b := v, w
	if len(a) > len(b) {
		a, b = b, a
	}
	s := 0.0
	for k, va := range a {
		if vb, ok := b[k]; ok {
			s += va * vb
		}
	}
	return s
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// AddScaled sets v += scale * w in place.
func (v Vector) AddScaled(w Vector, scale float64) {
	for k, x := range w {
		v[k] += scale * x
		if v[k] == 0 {
			delete(v, k)
		}
	}
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	out := v.Clone()
	out.AddScaled(w, -1)
	return out
}

// Norm2 returns the squared L2 norm.
func (v Vector) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

// String renders the vector deterministically (sorted keys) for logs/tests.
func (v Vector) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.4g", k, v[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Binner converts a real-valued confidence in [0,1] into a one-hot indicator
// feature naming its bin. The paper (§4) bins real-valued features because
// mixing raw reals with binary indicators destabilises MIRA's margin
// updates.
type Binner struct {
	// Edges are the ascending upper bounds of each bin except the last,
	// which is implicit at +Inf. Empirically determined; the defaults carve
	// [0,1] into five bands.
	Edges []float64
}

// DefaultBinner carves confidence scores into five empirically-spaced bins.
func DefaultBinner() Binner { return Binner{Edges: []float64{0.2, 0.4, 0.6, 0.8}} }

// Bin returns the bin index for x.
func (b Binner) Bin(x float64) int {
	for i, e := range b.Edges {
		if x < e {
			return i
		}
	}
	return len(b.Edges)
}

// NumBins returns the total number of bins.
func (b Binner) NumBins() int { return len(b.Edges) + 1 }

// Feature returns the indicator feature name for a confidence produced by
// the named matcher, e.g. "matcher:mad:bin3".
func (b Binner) Feature(matcher string, confidence float64) string {
	if math.IsNaN(confidence) {
		confidence = 0
	}
	return fmt.Sprintf("matcher:%s:bin%d", matcher, b.Bin(confidence))
}
