package searchgraph

import (
	"encoding/json"
	"fmt"
	"io"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

// snapshot is the JSON wire form of a search graph. Node and edge order is
// preserved exactly so steiner ids remain stable across a save/load cycle
// (views serialised elsewhere can keep referring to them).
type snapshot struct {
	Version int                `json:"version"`
	Weights map[string]float64 `json:"weights"`
	Nodes   []snapNode         `json:"nodes"`
	Edges   []snapEdge         `json:"edges"`
}

type snapNode struct {
	Kind  int    `json:"kind"`
	Rel   string `json:"rel,omitempty"`
	Ref   string `json:"ref,omitempty"`
	Value string `json:"value,omitempty"`
}

type snapEdge struct {
	Kind     int                `json:"kind"`
	U        int                `json:"u"`
	V2       int                `json:"v"`
	Fixed    bool               `json:"fixed,omitempty"`
	Features map[string]float64 `json:"features,omitempty"`
	A        string             `json:"a,omitempty"`
	B        string             `json:"b,omitempty"`
}

const snapshotVersion = 1

// Save writes the graph (topology, features, weights) as JSON. Keyword
// activation state is not persisted: loaded graphs start with all keyword
// edges disabled, exactly like freshly created ones.
func (g *Graph) Save(w io.Writer) error {
	s := snapshot{Version: snapshotVersion, Weights: g.s.weights}
	for _, n := range g.s.nodes {
		sn := snapNode{Kind: int(n.Kind), Rel: n.Rel, Value: n.Value}
		if n.Ref != (relstore.AttrRef{}) {
			sn.Ref = n.Ref.String()
		}
		s.Nodes = append(s.Nodes, sn)
	}
	for _, e := range g.s.edges {
		ge := g.s.sg.Edge(e.ID)
		se := snapEdge{
			Kind:  int(e.Kind),
			U:     int(ge.U),
			V2:    int(ge.V),
			Fixed: e.Fixed,
		}
		if e.Features != nil {
			se.Features = e.Features
		}
		if e.A != (relstore.AttrRef{}) {
			se.A = e.A.String()
		}
		if e.B != (relstore.AttrRef{}) {
			se.B = e.B.String()
		}
		s.Edges = append(s.Edges, se)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load reconstructs a graph saved with Save. The returned graph has
// identical node/edge ids, features, weights and costs (keyword edges
// disabled until activated).
func Load(r io.Reader) (*Graph, error) {
	var s snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("searchgraph: load: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("searchgraph: unsupported snapshot version %d", s.Version)
	}
	g := New(learning.Vector(s.Weights))

	for i, sn := range s.Nodes {
		n := Node{Kind: NodeKind(sn.Kind), Rel: sn.Rel, Value: sn.Value}
		if sn.Ref != "" {
			ref, err := relstore.ParseAttrRef(sn.Ref)
			if err != nil {
				return nil, fmt.Errorf("searchgraph: load node %d: %w", i, err)
			}
			n.Ref = ref
		}
		id := g.addNode(n)
		switch n.Kind {
		case KindRelation:
			g.s.relNode[n.Rel] = id
		case KindAttribute:
			g.s.attrNode[n.Ref] = id
		case KindValue:
			g.s.valNode[valueKey{ref: n.Ref, value: n.Value}] = id
		case KindKeyword:
			g.s.kwNode[n.Value] = id
		}
	}

	for i, se := range s.Edges {
		if se.U < 0 || se.U >= len(s.Nodes) || se.V2 < 0 || se.V2 >= len(s.Nodes) {
			return nil, fmt.Errorf("searchgraph: load edge %d: endpoint out of range", i)
		}
		e := Edge{
			Kind:  EdgeKind(se.Kind),
			Fixed: se.Fixed,
		}
		if se.Features != nil {
			e.Features = learning.Vector(se.Features)
		}
		if se.A != "" {
			ref, err := relstore.ParseAttrRef(se.A)
			if err != nil {
				return nil, fmt.Errorf("searchgraph: load edge %d: %w", i, err)
			}
			e.A = ref
		}
		if se.B != "" {
			ref, err := relstore.ParseAttrRef(se.B)
			if err != nil {
				return nil, fmt.Errorf("searchgraph: load edge %d: %w", i, err)
			}
			e.B = ref
		}
		id := g.addEdge(steiner.NodeID(se.U), steiner.NodeID(se.V2), e)
		switch e.Kind {
		case EdgeAssociation:
			ka, kb := e.A.String(), e.B.String()
			if kb < ka {
				ka, kb = kb, ka
			}
			g.s.assocSeen[ka+"~"+kb] = id
		case EdgeKeyword:
			kw := steiner.NodeID(se.U)
			if g.s.nodes[kw].Kind != KindKeyword {
				kw = steiner.NodeID(se.V2)
			}
			g.s.kwEdgesOf[kw] = append(g.s.kwEdgesOf[kw], id)
			g.s.sg.SetCost(id, DisabledEdgeCost)
		}
	}
	return g, nil
}
