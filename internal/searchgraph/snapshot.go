package searchgraph

import (
	"math"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

// Snapshot is an immutable view of a search graph, published by the writer
// with Graph.Snapshot and shared by any number of concurrent readers. All
// methods are pure reads; per-query mutable state lives in an Overlay.
type Snapshot struct {
	s     *store
	epoch uint64
}

// Epoch identifies the graph state the snapshot froze. Two snapshots with
// equal epochs (from the same Graph) share identical storage.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Base returns the frozen steiner graph. Callers must treat it as
// read-only; extend it through an Overlay instead.
func (s *Snapshot) Base() *steiner.Graph { return s.s.sg }

// Node returns the node with the given id.
func (s *Snapshot) Node(id steiner.NodeID) Node { return s.s.nodes[id] }

// Edge returns the search-graph edge metadata for an edge id.
func (s *Snapshot) Edge(id steiner.EdgeID) Edge { return s.s.edges[id] }

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return len(s.s.nodes) }

// NumEdges returns the edge count.
func (s *Snapshot) NumEdges() int { return len(s.s.edges) }

// Cost returns the frozen cost of a base edge.
func (s *Snapshot) Cost(id steiner.EdgeID) float64 { return s.s.sg.Edge(id).Cost }

// Weights returns the frozen weight vector. Callers must not mutate it.
func (s *Snapshot) Weights() learning.Vector { return s.s.weights }

// EdgeCostFor computes what a base edge's cost would be under an arbitrary
// weight vector (see Graph.EdgeCostFor).
func (s *Snapshot) EdgeCostFor(id steiner.EdgeID, w learning.Vector) float64 {
	return s.s.edgeCostFor(id, w)
}

// LookupRelation returns the relation node id, or -1 if absent.
func (s *Snapshot) LookupRelation(qualified string) steiner.NodeID {
	if id, ok := s.s.relNode[qualified]; ok {
		return id
	}
	return -1
}

// LookupAttribute returns the attribute node id, or -1 if absent.
func (s *Snapshot) LookupAttribute(ref relstore.AttrRef) steiner.NodeID {
	if id, ok := s.s.attrNode[ref]; ok {
		return id
	}
	return -1
}

// AssociationList returns all association edges in id order.
func (s *Snapshot) AssociationList() []Association { return s.s.associationList() }

// Summary computes node/edge counts by kind.
func (s *Snapshot) Summary() Stats { return s.s.summary() }

// NewOverlay returns an empty per-query overlay over the snapshot.
func (s *Snapshot) NewOverlay() *Overlay {
	return &Overlay{
		snap:    s,
		so:      steiner.NewOverlay(s.s.sg),
		kwNode:  make(map[string]steiner.NodeID),
		valNode: make(map[valueKey]steiner.NodeID),
		kwSeen:  make(map[[2]steiner.NodeID]steiner.EdgeID),
	}
}

// Overlay is the query-private extension of a snapshot: the keyword nodes,
// keyword edges and lazily materialised value nodes of one query graph
// (paper §2.2), kept out of the shared base entirely. Node and edge ids
// continue the base id spaces, so Steiner trees computed over the overlay
// reference base edges by their stable ids. An overlay belongs to one query
// (or one view materialisation): it is not safe for concurrent mutation,
// and it dies when the materialisation it supported is replaced.
type Overlay struct {
	snap    *Snapshot
	so      *steiner.Overlay
	nodes   []Node // overlay nodes; id = snap.NumNodes()+i
	edges   []Edge // overlay edges; id = snap.NumEdges()+i
	kwNode  map[string]steiner.NodeID
	valNode map[valueKey]steiner.NodeID
	// kwSeen dedups (keyword, target) pairs: a keyword repeated in one query
	// must not produce parallel match edges (they would bloat the k-best
	// list with edge-set-distinct but equivalent trees).
	kwSeen map[[2]steiner.NodeID]steiner.EdgeID
}

// Snapshot returns the snapshot the overlay extends.
func (o *Overlay) Snapshot() *Snapshot { return o.snap }

// View returns the steiner view (base∪overlay) to run graph algorithms on.
func (o *Overlay) View() steiner.GraphView { return o.so }

// Node returns the node with the given id, base or overlay.
func (o *Overlay) Node(id steiner.NodeID) Node {
	if int(id) < o.snap.NumNodes() {
		return o.snap.Node(id)
	}
	return o.nodes[int(id)-o.snap.NumNodes()]
}

// Edge returns the edge metadata for an edge id, base or overlay.
func (o *Overlay) Edge(id steiner.EdgeID) Edge {
	if int(id) < o.snap.NumEdges() {
		return o.snap.Edge(id)
	}
	return o.edges[int(id)-o.snap.NumEdges()]
}

// Endpoints returns the two endpoint node ids of an edge.
func (o *Overlay) Endpoints(id steiner.EdgeID) (steiner.NodeID, steiner.NodeID) {
	e := o.so.Edge(id)
	return e.U, e.V
}

// Cost returns the current cost of an edge, base or overlay.
func (o *Overlay) Cost(id steiner.EdgeID) float64 { return o.so.Edge(id).Cost }

// KeywordEdges returns the overlay's keyword edges in creation order (the
// learnable per-query edges a feedback update must keep positive).
func (o *Overlay) KeywordEdges() []Edge {
	out := make([]Edge, 0, len(o.edges))
	for _, e := range o.edges {
		if e.Kind == EdgeKeyword {
			out = append(out, e)
		}
	}
	return out
}

// KeywordNode returns (and creates if needed) the overlay node for a query
// keyword. A keyword node present in the base (a graph loaded from old
// persisted form) is reused — its base edges stay disabled, the overlay
// adds live ones.
func (o *Overlay) KeywordNode(keyword string) steiner.NodeID {
	if id, ok := o.snap.s.kwNode[keyword]; ok {
		return id
	}
	if id, ok := o.kwNode[keyword]; ok {
		return id
	}
	id := o.so.AddNode()
	o.nodes = append(o.nodes, Node{ID: id, Kind: KindKeyword, Value: keyword})
	o.kwNode[keyword] = id
	return id
}

// ValueNode returns (and creates if needed) the overlay node for a data
// value, wiring the fixed zero-cost value↔attribute edge on creation
// (paper §2.1: "for efficiency reasons we will add tuple nodes as
// needed"). It returns -1 when the owning attribute is unknown to the
// snapshot (a catalog/graph mismatch the caller should skip).
func (o *Overlay) ValueNode(ref relstore.AttrRef, value string) steiner.NodeID {
	k := valueKey{ref: ref, value: value}
	if id, ok := o.snap.s.valNode[k]; ok {
		return id
	}
	if id, ok := o.valNode[k]; ok {
		return id
	}
	attr := o.snap.LookupAttribute(ref)
	if attr < 0 {
		return -1
	}
	id := o.so.AddNode()
	o.nodes = append(o.nodes, Node{ID: id, Kind: KindValue, Ref: ref, Value: value})
	o.valNode[k] = id
	eid := o.so.AddEdge(id, attr, 0)
	o.edges = append(o.edges, Edge{ID: eid, Kind: EdgeValueAttr, Fixed: true})
	return id
}

// AddKeywordEdge links a keyword node to a target node (either may be base
// or overlay) with a learnable keyword-match edge, exactly as the builder's
// AddKeywordEdge does — except the per-edge indicator weight is not written
// into the shared weight vector: when the snapshot's weights carry no
// learned value for it yet, KwEdgeBaseWeight enters the cost directly. A
// feedback update that touches the edge seeds the weight for real (see
// core's learner), so learned promotions and suppressions survive; until
// then every query prices the edge identically without writing anywhere.
func (o *Overlay) AddKeywordEdge(kw, target steiner.NodeID, sim float64) steiner.EdgeID {
	if id, ok := o.kwSeen[[2]steiner.NodeID{kw, target}]; ok {
		return id
	}
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	edgeFeat := "edge:kw:" + o.Node(kw).Value + "->" + o.Node(target).Label()
	f := learning.Vector{
		"mismatch": 1 - sim,
		edgeFeat:   1,
	}
	w := o.snap.s.weights
	c := w.Dot(f)
	if _, ok := w[edgeFeat]; !ok {
		c += KwEdgeBaseWeight
	}
	c = math.Round(c*1e9) / 1e9
	if c < MinEdgeCost {
		c = MinEdgeCost
	}
	eid := o.so.AddEdge(kw, target, c)
	o.edges = append(o.edges, Edge{ID: eid, Kind: EdgeKeyword, Features: f})
	o.kwSeen[[2]steiner.NodeID{kw, target}] = eid
	return eid
}
