package searchgraph

import (
	"testing"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

func ref(rel, attr string) relstore.AttrRef {
	return relstore.AttrRef{Relation: rel, Attr: attr}
}

func defaultWeights() learning.Vector {
	return learning.Vector{"default": 1, "fk": 0.5, "kw": 0.1, "mismatch": 1}
}

func TestNodeCreationIdempotent(t *testing.T) {
	g := New(defaultWeights())
	r1 := g.RelationNode("ip.entry")
	r2 := g.RelationNode("ip.entry")
	if r1 != r2 {
		t.Error("relation node should be created once")
	}
	a1 := g.AttributeNode(ref("ip.entry", "name"))
	a2 := g.AttributeNode(ref("ip.entry", "name"))
	if a1 != a2 {
		t.Error("attribute node should be created once")
	}
	v1 := g.ValueNode(ref("ip.entry", "name"), "Kringle")
	v2 := g.ValueNode(ref("ip.entry", "name"), "Kringle")
	if v1 != v2 {
		t.Error("value node should be created once")
	}
	k1 := g.KeywordNode("plasma")
	k2 := g.KeywordNode("plasma")
	if k1 != k2 {
		t.Error("keyword node should be created once")
	}
	// relation + attribute + value + keyword
	s := g.Summary()
	if s.Relations != 1 || s.Attributes != 1 || s.Values != 1 || s.Keywords != 1 {
		t.Errorf("summary = %+v", s)
	}
	// attr-rel and value-attr edges exist, both fixed zero cost
	if s.ByEdgeKind[EdgeAttrRel] != 1 || s.ByEdgeKind[EdgeValueAttr] != 1 {
		t.Errorf("structural edges missing: %+v", s.ByEdgeKind)
	}
}

func TestStructuralEdgesAreZeroCost(t *testing.T) {
	g := New(defaultWeights())
	g.ValueNode(ref("ip.entry", "name"), "v")
	for _, id := range g.EdgesOfKind(EdgeAttrRel) {
		if g.Cost(id) != 0 {
			t.Errorf("attr-rel edge cost = %v, want 0", g.Cost(id))
		}
	}
	for _, id := range g.EdgesOfKind(EdgeValueAttr) {
		if g.Cost(id) != 0 {
			t.Errorf("value-attr edge cost = %v, want 0", g.Cost(id))
		}
	}
}

func TestForeignKeyEdgeCost(t *testing.T) {
	g := New(defaultWeights())
	id := g.AddForeignKeyEdge(ref("ip.entry2pub", "pub_id"), ref("ip.pub", "pub_id"))
	// default(1) + fk(0.5); rel:* and edge:* features have no weight yet.
	if got := g.Cost(id); got != 1.5 {
		t.Errorf("fk cost = %v, want 1.5", got)
	}
	e := g.Edge(id)
	if e.Kind != EdgeForeignKey || e.Fixed {
		t.Errorf("edge meta wrong: %+v", e)
	}
	if e.Features["rel:ip.entry2pub"] != 1 || e.Features["rel:ip.pub"] != 1 {
		t.Errorf("relation features missing: %v", e.Features)
	}
	if e.A != ref("ip.entry2pub", "pub_id") || e.B != ref("ip.pub", "pub_id") {
		t.Errorf("FK attr pair not recorded: %+v", e)
	}
}

func TestAssociationEdgeMergesFeatures(t *testing.T) {
	g := New(defaultWeights())
	a, b := ref("go.term", "acc"), ref("ip.interpro2go", "go_id")
	id1 := g.AddAssociationEdge(a, b, learning.Vector{"matcher:mad:bin4": 1})
	if !g.HasAssociation(a, b) || !g.HasAssociation(b, a) {
		t.Error("HasAssociation should be symmetric")
	}
	// Same pair in flipped order merges rather than duplicating.
	id2 := g.AddAssociationEdge(b, a, learning.Vector{"matcher:meta:bin3": 1})
	if id1 != id2 {
		t.Errorf("association duplicated: %d vs %d", id1, id2)
	}
	e := g.Edge(id1)
	if e.Features["matcher:mad:bin4"] != 1 || e.Features["matcher:meta:bin3"] != 1 {
		t.Errorf("features not merged: %v", e.Features)
	}
	if len(g.AssociationList()) != 1 {
		t.Errorf("AssociationList = %v", g.AssociationList())
	}
}

func TestKeywordEdgeMismatchScaling(t *testing.T) {
	g := New(defaultWeights())
	kw := g.KeywordNode("membrane")
	attr := g.AttributeNode(ref("go.term", "name"))
	perfect := g.AddKeywordEdge(kw, attr, 1.0)
	poor := g.AddKeywordEdge(kw, attr, 0.2)
	// Keyword edges are disabled until their keyword is activated.
	if g.Cost(perfect) != DisabledEdgeCost {
		t.Errorf("inactive keyword edge cost = %v, want disabled", g.Cost(perfect))
	}
	g.ActivateKeywords([]steiner.NodeID{kw})
	if !g.KeywordActive(kw) {
		t.Error("keyword should be active")
	}
	if !(g.Cost(perfect) < g.Cost(poor)) {
		t.Errorf("perfect match should cost less: %v vs %v", g.Cost(perfect), g.Cost(poor))
	}
	// similarity clamped to [0,1]
	clamped := g.AddKeywordEdge(kw, attr, 7)
	if g.Cost(clamped) != g.Cost(perfect) {
		t.Errorf("clamp broken: %v vs %v", g.Cost(clamped), g.Cost(perfect))
	}
	// Deactivation disables again, and SetWeights must not resurrect.
	g.ActivateKeywords(nil)
	g.SetWeights(defaultWeights())
	if g.Cost(perfect) != DisabledEdgeCost {
		t.Errorf("deactivated keyword edge cost = %v, want disabled", g.Cost(perfect))
	}
}

func TestSetWeightsRecomputesCosts(t *testing.T) {
	g := New(defaultWeights())
	id := g.AddForeignKeyEdge(ref("a.r1", "x"), ref("a.r2", "y"))
	before := g.Cost(id)
	w := defaultWeights()
	w["fk"] = 5
	g.SetWeights(w)
	after := g.Cost(id)
	if after <= before {
		t.Errorf("cost should rise: %v -> %v", before, after)
	}
	// Negative dot products floor at MinEdgeCost, not negative.
	w["default"] = -100
	g.SetWeights(w)
	if got := g.Cost(id); got != MinEdgeCost {
		t.Errorf("floored cost = %v, want %v", got, MinEdgeCost)
	}
}

func TestEdgeCostForDoesNotMutate(t *testing.T) {
	g := New(defaultWeights())
	id := g.AddForeignKeyEdge(ref("a.r1", "x"), ref("a.r2", "y"))
	before := g.Cost(id)
	w := defaultWeights()
	w["fk"] = 99
	hyp := g.EdgeCostFor(id, w)
	if hyp <= before {
		t.Errorf("hypothetical cost should rise: %v", hyp)
	}
	if g.Cost(id) != before {
		t.Error("EdgeCostFor must not mutate the graph")
	}
}

func buildTestCatalog(t *testing.T) *relstore.Catalog {
	t.Helper()
	c := relstore.NewCatalog()
	add := func(rel *relstore.Relation, rows [][]string) {
		tb, err := relstore.NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	add(&relstore.Relation{Source: "go", Name: "term",
		Attributes: []relstore.Attribute{{Name: "acc"}, {Name: "name"}}}, nil)
	add(&relstore.Relation{Source: "ip", Name: "interpro2go",
		Attributes: []relstore.Attribute{{Name: "entry_ac"}, {Name: "go_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{FromAttr: "entry_ac", ToRelation: "ip.entry", ToAttr: "entry_ac"},
			{FromAttr: "go_id", ToRelation: "missing.rel", ToAttr: "x"}, // dangling
		}}, nil)
	add(&relstore.Relation{Source: "ip", Name: "entry",
		Attributes: []relstore.Attribute{{Name: "entry_ac"}, {Name: "name"}}}, nil)
	return c
}

func TestBuildFromCatalog(t *testing.T) {
	c := buildTestCatalog(t)
	g := Build(c, defaultWeights())
	s := g.Summary()
	if s.Relations != 3 {
		t.Errorf("relations = %d, want 3", s.Relations)
	}
	if s.Attributes != 6 {
		t.Errorf("attributes = %d, want 6", s.Attributes)
	}
	if s.ByEdgeKind[EdgeAttrRel] != 6 {
		t.Errorf("attr-rel edges = %d, want 6", s.ByEdgeKind[EdgeAttrRel])
	}
	// one FK resolves, the dangling one is skipped
	if s.ByEdgeKind[EdgeForeignKey] != 1 {
		t.Errorf("fk edges = %d, want 1", s.ByEdgeKind[EdgeForeignKey])
	}
	if g.LookupRelation("ip.entry") < 0 {
		t.Error("ip.entry node missing")
	}
	if g.LookupRelation("missing.rel") != -1 {
		t.Error("dangling FK target should not create a node via Build")
	}
	if g.LookupAttribute(ref("go.term", "acc")) < 0 {
		t.Error("go.term.acc node missing")
	}
	if g.LookupAttribute(ref("go.term", "ghost")) != -1 {
		t.Error("unknown attribute should be -1")
	}
}

func TestAddSourceIncremental(t *testing.T) {
	c := buildTestCatalog(t)
	g := New(defaultWeights())
	g.AddSource(c, "go")
	if g.Summary().Relations != 1 {
		t.Fatalf("only go.term expected, got %+v", g.Summary())
	}
	g.AddSource(c, "ip")
	s := g.Summary()
	if s.Relations != 3 || s.ByEdgeKind[EdgeForeignKey] != 1 {
		t.Errorf("after adding ip: %+v", s)
	}
}

func TestNodeLabels(t *testing.T) {
	g := New(nil)
	rid := g.RelationNode("ip.pub")
	if g.Node(rid).Label() != "ip.pub" {
		t.Errorf("relation label = %q", g.Node(rid).Label())
	}
	aid := g.AttributeNode(ref("ip.pub", "title"))
	if g.Node(aid).Label() != "ip.pub.title" {
		t.Errorf("attribute label = %q", g.Node(aid).Label())
	}
	vid := g.ValueNode(ref("ip.pub", "title"), "Paper")
	if g.Node(vid).Label() != "ip.pub.title=Paper" {
		t.Errorf("value label = %q", g.Node(vid).Label())
	}
	kid := g.KeywordNode("pub")
	if g.Node(kid).Label() != "kw:pub" {
		t.Errorf("keyword label = %q", g.Node(kid).Label())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[string]string{
		KindRelation.String():  "relation",
		KindAttribute.String(): "attribute",
		KindValue.String():     "value",
		KindKeyword.String():   "keyword",
	}
	for got, want := range kinds {
		if got != want {
			t.Errorf("kind string %q != %q", got, want)
		}
	}
	edgeKinds := []EdgeKind{EdgeAttrRel, EdgeForeignKey, EdgeAssociation, EdgeKeyword, EdgeValueAttr}
	seen := make(map[string]bool)
	for _, k := range edgeKinds {
		if seen[k.String()] {
			t.Errorf("duplicate edge kind string %q", k.String())
		}
		seen[k.String()] = true
	}
}
