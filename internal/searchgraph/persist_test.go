package searchgraph

import (
	"bytes"
	"strings"
	"testing"

	"qint/internal/learning"
	"qint/internal/steiner"
)

// buildRichGraph creates a graph exercising every node and edge kind.
func buildRichGraph() *Graph {
	g := New(learning.Vector{"default": 0.1, "fk": 0.9, "mismatch": 1})
	g.AddForeignKeyEdge(ref("ip.entry2pub", "entry_ac"), ref("ip.entry", "entry_ac"))
	g.AddAssociationEdge(ref("go.term", "acc"), ref("ip.interpro2go", "go_id"),
		learning.Vector{"matcher:mad:bin4": 1})
	vn := g.ValueNode(ref("go.term", "name"), "plasma membrane")
	kw := g.KeywordNode("membrane")
	g.AddKeywordEdge(kw, vn, 0.8)
	return g
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := buildRichGraph()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	// Node identities and lookups survive.
	for i := 0; i < g.NumNodes(); i++ {
		a, b := g.Node(steiner.NodeID(i)), g2.Node(steiner.NodeID(i))
		if a.Kind != b.Kind || a.Label() != b.Label() {
			t.Errorf("node %d: %v vs %v", i, a.Label(), b.Label())
		}
	}
	if g2.LookupRelation("ip.entry") < 0 {
		t.Error("relation lookup lost")
	}
	if g2.LookupAttribute(ref("go.term", "acc")) < 0 {
		t.Error("attribute lookup lost")
	}
	if !g2.HasAssociation(ref("go.term", "acc"), ref("ip.interpro2go", "go_id")) {
		t.Error("association registry lost")
	}
	// Costs match edge-for-edge (keyword edges disabled on both sides
	// until activated).
	for i := 0; i < g.NumEdges(); i++ {
		id := steiner.EdgeID(i)
		if g.Edge(id).Kind == EdgeKeyword {
			if g2.Cost(id) != DisabledEdgeCost {
				t.Errorf("keyword edge %d should load disabled", i)
			}
			continue
		}
		if g.Cost(id) != g2.Cost(id) {
			t.Errorf("edge %d cost %v vs %v", i, g.Cost(id), g2.Cost(id))
		}
	}
	// Keyword activation works after load.
	kw := g2.s.kwNode["membrane"]
	g2.ActivateKeywords([]steiner.NodeID{kw})
	for _, id := range g2.s.kwEdgesOf[kw] {
		if g2.Cost(id) >= DisabledEdgeCost {
			t.Errorf("keyword edge %d still disabled after activation", id)
		}
	}
	// Weights survive.
	if g2.Weights()["fk"] != 0.9 {
		t.Errorf("weights lost: %v", g2.Weights())
	}
}

func TestSaveLoadSecondGeneration(t *testing.T) {
	// Load → mutate → save → load again: ids must stay stable.
	g := buildRichGraph()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2.AddAssociationEdge(ref("ip.pub", "title"), ref("ip.entry", "name"),
		learning.Vector{"matcher:meta:bin2": 1})
	var buf2 bytes.Buffer
	if err := g2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	g3, err := Load(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge count drift: %d vs %d", g3.NumEdges(), g2.NumEdges())
	}
	if len(g3.AssociationList()) != 2 {
		t.Errorf("associations = %d, want 2", len(g3.AssociationList()))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99}`,
		`{"version":1,"nodes":[{"kind":0}],"edges":[{"kind":1,"u":0,"v":5}]}`,
		`{"version":1,"nodes":[{"kind":1,"ref":"malformed"}],"edges":[]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
