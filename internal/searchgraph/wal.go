package searchgraph

import (
	"sort"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

// This file is the search graph's interface to the epoch WAL
// (internal/storage, wired by internal/core): mutations are logged as
// EFFECTS, not operations. Replaying a source registration cannot re-run the
// schema matchers (they are code, re-registered only after the store opens),
// so the log instead carries each association edge's FINAL merged feature
// vector, and RestoreAssociationEdge installs it verbatim — no matcher
// invocation, no feature merging, no indicator synthesis. Feedback likewise
// logs the weight-vector delta it produced, not the preference that caused
// it. Replay is therefore exact and needs nothing beyond the graph itself.

// AssocRecord is one association edge as logged to (and replayed from) the
// WAL: its canonicalised endpoints and its final feature vector, indicators
// included.
type AssocRecord struct {
	A, B     relstore.AttrRef
	Features learning.Vector
}

// AssociationsSince returns the association edges with id >= n — the edges a
// registration created — with their final (post-merge) feature vectors, in
// id order. Callers capture n := g.NumEdges() before the mutation; every
// association edge a registration creates has an id beyond that point.
func (g *Graph) AssociationsSince(n int) []AssocRecord {
	var out []AssocRecord
	for id := n; id < len(g.s.edges); id++ {
		if e := g.s.edges[id]; e.Kind == EdgeAssociation {
			out = append(out, AssocRecord{A: e.A, B: e.B, Features: e.Features})
		}
	}
	return out
}

// AssociationRecord returns one association edge as a replayable record —
// used to log a single-edge mutation (a hand-coded association) whose edge
// id the mutator already holds, whether the edge is new or a merge into an
// existing pair.
func (g *Graph) AssociationRecord(id steiner.EdgeID) AssocRecord {
	e := g.s.edges[id]
	return AssocRecord{A: e.A, B: e.B, Features: e.Features}
}

// AssociationFeatures returns EVERY association edge as a replayable record,
// in id order. Used when a mutation may have merged features into
// pre-existing edges (the alignment fixpoint can endorse an old pair), where
// "edges since n" would miss the merge.
func (g *Graph) AssociationFeatures() []AssocRecord {
	return g.AssociationsSince(0)
}

// RestoreAssociationEdge installs an association edge with the given feature
// vector VERBATIM — the WAL replay path. Unlike AddAssociationEdge it never
// merges, clones into indicators, or invokes matcher-bin semantics: the
// features are the edge's complete final vector as logged. An existing edge
// for the pair has its features replaced (replaying a merge); a missing one
// is created. Endpoint attribute nodes (and their relation nodes and fixed
// edges) are created as needed.
func (g *Graph) RestoreAssociationEdge(a, b relstore.AttrRef, features learning.Vector) steiner.EdgeID {
	ka, kb := a.String(), b.String()
	if kb < ka {
		a, b = b, a
		ka, kb = kb, ka
	}
	pairKey := ka + "~" + kb
	if id, ok := g.s.assocSeen[pairKey]; ok {
		g.own()
		// Replace, never mutate: frozen snapshots share feature pointers.
		g.s.edges[id].Features = features.Clone()
		g.refreshCost(id)
		return id
	}
	g.own()
	u := g.AttributeNode(a)
	v := g.AttributeNode(b)
	id := g.addEdge(u, v, Edge{Kind: EdgeAssociation, Features: features.Clone(), A: a, B: b})
	g.s.assocSeen[pairKey] = id
	return id
}

// WeightDelta is the logged effect of one weight-vector mutation: the
// features whose weights changed (with their new values) and the features
// that were removed. Applying it to the pre-mutation vector reproduces the
// post-mutation vector exactly.
type WeightDelta struct {
	Set map[string]float64 `json:"set,omitempty"`
	Del []string           `json:"del,omitempty"`
}

// DiffWeights computes the delta from old to new. Deleted features are
// listed sorted for deterministic encodings.
func DiffWeights(old, new learning.Vector) WeightDelta {
	var d WeightDelta
	for k, v := range new {
		if ov, ok := old[k]; !ok || ov != v {
			if d.Set == nil {
				d.Set = make(map[string]float64)
			}
			d.Set[k] = v
		}
	}
	for k := range old {
		if _, ok := new[k]; !ok {
			d.Del = append(d.Del, k)
		}
	}
	sort.Strings(d.Del)
	return d
}

// Empty reports whether the delta changes nothing.
func (d WeightDelta) Empty() bool { return len(d.Set) == 0 && len(d.Del) == 0 }

// ApplyWeightDelta applies a logged delta to the graph's current weights and
// recomputes every learnable edge cost — the feedback replay path.
func (g *Graph) ApplyWeightDelta(d WeightDelta) {
	w := g.Weights().Clone()
	for k, v := range d.Set {
		w[k] = v
	}
	for _, k := range d.Del {
		delete(w, k)
	}
	g.SetWeights(w)
}
