// Package searchgraph implements Q's unified data model (paper §2.1, §3.1):
// a graph whose nodes are relations, attributes, data values and query
// keywords, and whose edges carry sparse feature vectors from which costs
// are derived as cost = w·f (Equation 1). Zero-cost structural edges
// (attribute↔relation, value↔attribute) are pinned; foreign-key and
// association edges are learnable; keyword edges are added per query.
package searchgraph

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

// NodeKind classifies search-graph nodes.
type NodeKind int

const (
	// KindRelation nodes represent tables (rounded rectangles in Fig. 2).
	KindRelation NodeKind = iota
	// KindAttribute nodes represent columns (ellipses in Fig. 2).
	KindAttribute
	// KindValue nodes represent individual data values, materialised lazily
	// during query-graph expansion.
	KindValue
	// KindKeyword nodes represent query keywords (bold italics in Fig. 3).
	KindKeyword
)

// String names the kind for logs.
func (k NodeKind) String() string {
	switch k {
	case KindRelation:
		return "relation"
	case KindAttribute:
		return "attribute"
	case KindValue:
		return "value"
	default:
		return "keyword"
	}
}

// EdgeKind classifies search-graph edges.
type EdgeKind int

const (
	// EdgeAttrRel links an attribute to its relation at fixed zero cost.
	EdgeAttrRel EdgeKind = iota
	// EdgeForeignKey links two relations joined by a declared foreign key,
	// initialised to the default foreign-key cost.
	EdgeForeignKey
	// EdgeAssociation links two attributes proposed as aligned by a schema
	// matcher (or hand-coded).
	EdgeAssociation
	// EdgeKeyword links a keyword node to a matching schema element or value.
	EdgeKeyword
	// EdgeValueAttr links a value node to its attribute at fixed zero cost.
	EdgeValueAttr
	// EdgeMapping links a mediated-schema attribute to a candidate source
	// attribute. Mapping edges carry learnable features like associations,
	// but they are never traversable by Steiner search (their graph cost is
	// pinned to DisabledEdgeCost): they rank mapping choices, they do not
	// join relations.
	EdgeMapping
)

// String names the edge kind for logs.
func (k EdgeKind) String() string {
	switch k {
	case EdgeAttrRel:
		return "attr-rel"
	case EdgeForeignKey:
		return "foreign-key"
	case EdgeAssociation:
		return "association"
	case EdgeKeyword:
		return "keyword"
	case EdgeMapping:
		return "mapping"
	default:
		return "value-attr"
	}
}

// Node is one search-graph node. Exactly one of the payload fields is
// meaningful depending on Kind.
type Node struct {
	ID    steiner.NodeID
	Kind  NodeKind
	Rel   string           // KindRelation: qualified relation name
	Ref   relstore.AttrRef // KindAttribute / KindValue: owning attribute
	Value string           // KindValue: the value; KindKeyword: the keyword
}

// Label returns a human-readable node label.
func (n Node) Label() string {
	switch n.Kind {
	case KindRelation:
		return n.Rel
	case KindAttribute:
		return n.Ref.String()
	case KindValue:
		return n.Ref.String() + "=" + n.Value
	default:
		return "kw:" + n.Value
	}
}

// Edge is one search-graph edge with its learnable feature vector.
type Edge struct {
	ID       steiner.EdgeID
	Kind     EdgeKind
	Features learning.Vector // nil for fixed zero-cost edges
	Fixed    bool            // pinned at zero cost (set A in Algorithm 4)
	// A and B carry the joined attribute pair for EdgeForeignKey and
	// EdgeAssociation edges; query generation turns them into equi-join
	// conditions.
	A, B relstore.AttrRef
}

// MinEdgeCost is the floor applied to learnable edge costs so Steiner-tree
// computation stays meaningful even if the learner drives a weight
// combination to (or below) zero mid-update.
const MinEdgeCost = 1e-6

// DisabledEdgeCost is the cost assigned to keyword edges whose keyword is
// not part of the query being evaluated. Keyword nodes persist across
// queries (views are long-lived), but a stale keyword node must never act
// as a cheap bridge inside another query's Steiner tree.
const DisabledEdgeCost = 1e12

// Graph is the search graph. It owns an underlying steiner.Graph whose edge
// costs it keeps synchronised with the current weight vector.
type Graph struct {
	G *steiner.Graph

	nodes []Node
	edges []Edge

	relNode  map[string]steiner.NodeID
	attrNode map[relstore.AttrRef]steiner.NodeID
	valNode  map[valueKey]steiner.NodeID
	kwNode   map[string]steiner.NodeID

	// assocSeen prevents duplicate association edges between the same
	// attribute pair from the same origin.
	assocSeen map[string]steiner.EdgeID

	// kwEdgesOf indexes keyword edges by their keyword node; activeKw holds
	// the keyword nodes whose edges are currently live (see
	// ActivateKeywords).
	kwEdgesOf map[steiner.NodeID][]steiner.EdgeID
	activeKw  map[steiner.NodeID]bool

	weights learning.Vector
}

type valueKey struct {
	ref   relstore.AttrRef
	value string
}

// New returns an empty search graph with the given initial weights. The
// weight vector is cloned; use SetWeights to replace it later.
func New(weights learning.Vector) *Graph {
	if weights == nil {
		weights = learning.Vector{}
	}
	return &Graph{
		G:         steiner.NewGraph(),
		relNode:   make(map[string]steiner.NodeID),
		attrNode:  make(map[relstore.AttrRef]steiner.NodeID),
		valNode:   make(map[valueKey]steiner.NodeID),
		kwNode:    make(map[string]steiner.NodeID),
		assocSeen: make(map[string]steiner.EdgeID),
		kwEdgesOf: make(map[steiner.NodeID][]steiner.EdgeID),
		activeKw:  make(map[steiner.NodeID]bool),
		weights:   weights.Clone(),
	}
}

// Weights returns the current weight vector (not a copy).
func (g *Graph) Weights() learning.Vector { return g.weights }

// SetWeights replaces the weight vector and recomputes every learnable edge
// cost.
func (g *Graph) SetWeights(w learning.Vector) {
	g.weights = w.Clone()
	for i := range g.edges {
		g.refreshCost(steiner.EdgeID(i))
	}
}

// Cost returns the current cost of an edge.
func (g *Graph) Cost(id steiner.EdgeID) float64 { return g.G.Edge(id).Cost }

// EdgeCostFor computes what an edge's cost would be under an arbitrary
// weight vector, without mutating the graph. Costs are quantised to 1e-9:
// the dot product sums a map in iteration order, so the low bits of the
// float result vary run to run, and unquantised costs would flip
// tie-breaks in top-k tree selection nondeterministically.
func (g *Graph) EdgeCostFor(id steiner.EdgeID, w learning.Vector) float64 {
	e := g.edges[id]
	if e.Fixed {
		return 0
	}
	c := math.Round(w.Dot(e.Features)*1e9) / 1e9
	if c < MinEdgeCost {
		c = MinEdgeCost
	}
	return c
}

func (g *Graph) refreshCost(id steiner.EdgeID) {
	if g.edges[id].Kind == EdgeMapping {
		g.G.SetCost(id, DisabledEdgeCost)
		return
	}
	if e := g.edges[id]; e.Kind == EdgeKeyword {
		se := g.G.Edge(id)
		kw := se.U
		if g.nodes[kw].Kind != KindKeyword {
			kw = se.V
		}
		if !g.activeKw[kw] {
			g.G.SetCost(id, DisabledEdgeCost)
			return
		}
	}
	g.G.SetCost(id, g.EdgeCostFor(id, g.weights))
}

// Node returns the node with the given id.
func (g *Graph) Node(id steiner.NodeID) Node { return g.nodes[id] }

// Edge returns the search-graph edge metadata for an edge id.
func (g *Graph) Edge(id steiner.EdgeID) Edge { return g.edges[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// addNode appends a node with a parallel steiner node.
func (g *Graph) addNode(n Node) steiner.NodeID {
	id := g.G.AddNode()
	n.ID = id
	g.nodes = append(g.nodes, n)
	return id
}

// addEdge appends an edge with a parallel steiner edge at the right cost.
func (g *Graph) addEdge(u, v steiner.NodeID, e Edge) steiner.EdgeID {
	var cost float64
	if !e.Fixed {
		cost = math.Round(g.weights.Dot(e.Features)*1e9) / 1e9
		if cost < MinEdgeCost {
			cost = MinEdgeCost
		}
	}
	id := g.G.AddEdge(u, v, cost)
	e.ID = id
	g.edges = append(g.edges, e)
	return id
}

// RelationNode returns (and creates if needed) the node for a relation.
func (g *Graph) RelationNode(qualified string) steiner.NodeID {
	if id, ok := g.relNode[qualified]; ok {
		return id
	}
	id := g.addNode(Node{Kind: KindRelation, Rel: qualified})
	g.relNode[qualified] = id
	return id
}

// LookupRelation returns the relation node id, or -1 if absent.
func (g *Graph) LookupRelation(qualified string) steiner.NodeID {
	if id, ok := g.relNode[qualified]; ok {
		return id
	}
	return -1
}

// AttributeNode returns (and creates if needed) the node for an attribute,
// wiring the fixed zero-cost attribute↔relation edge on creation.
func (g *Graph) AttributeNode(ref relstore.AttrRef) steiner.NodeID {
	if id, ok := g.attrNode[ref]; ok {
		return id
	}
	id := g.addNode(Node{Kind: KindAttribute, Ref: ref})
	g.attrNode[ref] = id
	rel := g.RelationNode(ref.Relation)
	g.addEdge(id, rel, Edge{Kind: EdgeAttrRel, Fixed: true})
	return id
}

// LookupAttribute returns the attribute node id, or -1 if absent.
func (g *Graph) LookupAttribute(ref relstore.AttrRef) steiner.NodeID {
	if id, ok := g.attrNode[ref]; ok {
		return id
	}
	return -1
}

// ValueNode returns (and creates if needed) the node for a data value,
// wiring the fixed zero-cost value↔attribute edge on creation. Value nodes
// are only materialised lazily for keyword matches (paper §2.1: "for
// efficiency reasons we will add tuple nodes as needed").
func (g *Graph) ValueNode(ref relstore.AttrRef, value string) steiner.NodeID {
	k := valueKey{ref: ref, value: value}
	if id, ok := g.valNode[k]; ok {
		return id
	}
	id := g.addNode(Node{Kind: KindValue, Ref: ref, Value: value})
	g.valNode[k] = id
	attr := g.AttributeNode(ref)
	g.addEdge(id, attr, Edge{Kind: EdgeValueAttr, Fixed: true})
	return id
}

// KeywordNode returns (and creates if needed) the node for a query keyword.
func (g *Graph) KeywordNode(keyword string) steiner.NodeID {
	if id, ok := g.kwNode[keyword]; ok {
		return id
	}
	id := g.addNode(Node{Kind: KindKeyword, Value: keyword})
	g.kwNode[keyword] = id
	return id
}

// AddForeignKeyEdge links two relation nodes with a learnable foreign-key
// edge carrying the standard feature set. from and to are the joined
// attribute pair declared by the foreign key.
func (g *Graph) AddForeignKeyEdge(from, to relstore.AttrRef) steiner.EdgeID {
	u := g.RelationNode(from.Relation)
	v := g.RelationNode(to.Relation)
	edgeKey := fmt.Sprintf("fk:%s->%s", from, to)
	f := learning.Vector{
		"default":              1,
		"fk":                   1,
		"rel:" + from.Relation: 1,
		"rel:" + to.Relation:   1,
		"edge:" + edgeKey:      1,
	}
	return g.addEdge(u, v, Edge{Kind: EdgeForeignKey, Features: f, A: from, B: to})
}

// AddAssociationEdge links two attribute nodes with a learnable association
// edge. The features argument carries matcher-confidence bins; the standard
// default/relation/edge indicators are added here. Adding the same pair
// again merges the new features into the existing edge (a second matcher
// endorsing the same alignment) and returns the existing id.
func (g *Graph) AddAssociationEdge(a, b relstore.AttrRef, features learning.Vector) steiner.EdgeID {
	ka, kb := a.String(), b.String()
	if kb < ka {
		a, b = b, a
		ka, kb = kb, ka
	}
	pairKey := ka + "~" + kb
	if id, ok := g.assocSeen[pairKey]; ok {
		e := &g.edges[id]
		mergeMatcherFeatures(e.Features, features)
		g.refreshCost(id)
		return id
	}
	features = features.Clone()
	mergeMatcherFeatures(features, nil)
	u := g.AttributeNode(a)
	v := g.AttributeNode(b)
	f := learning.Vector{
		"default":           1,
		"rel:" + a.Relation: 1,
		"rel:" + b.Relation: 1,
		"edge:" + pairKey:   1,
	}
	for k, x := range features {
		f[k] = x
	}
	id := g.addEdge(u, v, Edge{Kind: EdgeAssociation, Features: f, A: a, B: b})
	g.assocSeen[pairKey] = id
	return id
}

// mergeMatcherFeatures merges src into dst with matcher-endorsement
// semantics: a "matcher:<name>:binK" feature supersedes that matcher's
// ":absent" marker (an endorsement cancels the no-endorsement penalty), and
// when the same matcher endorses twice only the higher bin (more confident,
// cheaper under the standard weights) is kept. Other features overwrite
// key-wise. Passing nil src normalises dst in place under the same rules.
func mergeMatcherFeatures(dst, src learning.Vector) {
	for k, v := range src {
		dst[k] = v
	}
	type best struct {
		bin  int
		key  string
		seen bool
	}
	perMatcher := make(map[string]best)
	for k := range dst {
		name, bin, isBin := parseMatcherBin(k)
		if !isBin {
			continue
		}
		b := perMatcher[name]
		if !b.seen || bin > b.bin {
			if b.seen {
				delete(dst, b.key)
			}
			perMatcher[name] = best{bin: bin, key: k, seen: true}
		} else {
			delete(dst, k)
		}
	}
	for name := range perMatcher {
		delete(dst, "matcher:"+name+":absent")
	}
}

// parseMatcherBin recognises "matcher:<name>:bin<K>" feature keys.
func parseMatcherBin(key string) (name string, bin int, ok bool) {
	const prefix = "matcher:"
	if !strings.HasPrefix(key, prefix) {
		return "", 0, false
	}
	rest := key[len(prefix):]
	i := strings.LastIndex(rest, ":bin")
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[i+4:])
	if err != nil {
		return "", 0, false
	}
	return rest[:i], n, true
}

// AddMappingEdge links a mediated attribute to a candidate source attribute
// (see EdgeMapping). Re-adding the same pair merges features, as with
// associations. The returned edge's graph cost is always DisabledEdgeCost;
// rank mappings with EdgeCostFor instead.
func (g *Graph) AddMappingEdge(mediatedAttr, source relstore.AttrRef, features learning.Vector) steiner.EdgeID {
	pairKey := "map:" + mediatedAttr.String() + "~" + source.String()
	if id, ok := g.assocSeen[pairKey]; ok {
		e := &g.edges[id]
		mergeMatcherFeatures(e.Features, features)
		return id
	}
	features = features.Clone()
	mergeMatcherFeatures(features, nil)
	f := learning.Vector{
		"default":                1,
		"rel:" + source.Relation: 1,
		"edge:" + pairKey:        1,
	}
	for k, x := range features {
		f[k] = x
	}
	u := g.AttributeNode(mediatedAttr)
	v := g.AttributeNode(source)
	id := g.addEdge(u, v, Edge{Kind: EdgeMapping, Features: f, A: mediatedAttr, B: source})
	g.G.SetCost(id, DisabledEdgeCost)
	g.assocSeen[pairKey] = id
	return id
}

// HasAssociation reports whether an association edge already exists between
// the two attributes.
func (g *Graph) HasAssociation(a, b relstore.AttrRef) bool {
	ka, kb := a.String(), b.String()
	if kb < ka {
		ka, kb = kb, ka
	}
	_, ok := g.assocSeen[ka+"~"+kb]
	return ok
}

// KwEdgeBaseWeight is the initial weight of each keyword edge's own
// indicator feature — the starting value of the per-edge adjustable
// weights w_2, w_3, … of the paper's Figure 3.
const KwEdgeBaseWeight = 0.2

// AddKeywordEdge links a keyword node to a target node with a learnable
// keyword-match edge. sim is the keyword similarity score s_i (higher is
// better); it enters the cost as a mismatch feature (1 − sim), so closer
// matches cost less under a positive weight. Each keyword edge carries its
// own indicator feature — the per-edge adjustable weights w_2, w_3, … of
// Figure 3 — initialised to KwEdgeBaseWeight, so feedback can promote or
// suppress one keyword match without touching the others. Keyword edges
// deliberately do NOT share the global "default" feature: per-query match
// edges sharing a weight with every other edge would let the learner
// inflate all keyword costs at once, destroying the tight α radii that
// VIEWBASEDALIGNER's pruning relies on (§3.3).
func (g *Graph) AddKeywordEdge(kw steiner.NodeID, target steiner.NodeID, sim float64) steiner.EdgeID {
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	edgeFeat := "edge:kw:" + g.nodes[kw].Value + "->" + g.nodes[target].Label()
	if _, ok := g.weights[edgeFeat]; !ok {
		g.weights[edgeFeat] = KwEdgeBaseWeight
	}
	f := learning.Vector{
		"mismatch": 1 - sim,
		edgeFeat:   1,
	}
	id := g.addEdge(kw, target, Edge{Kind: EdgeKeyword, Features: f})
	g.kwEdgesOf[kw] = append(g.kwEdgesOf[kw], id)
	if !g.activeKw[kw] {
		g.G.SetCost(id, DisabledEdgeCost)
	}
	return id
}

// ActivateKeywords enables exactly the given keyword nodes' edges for the
// next Steiner computation, disabling every other keyword's edges. Call it
// before each query-graph evaluation; the active set persists until the
// next call.
func (g *Graph) ActivateKeywords(keywords []steiner.NodeID) {
	want := make(map[steiner.NodeID]bool, len(keywords))
	for _, k := range keywords {
		want[k] = true
	}
	// Disable edges of keywords leaving the active set.
	for k := range g.activeKw {
		if !want[k] {
			for _, id := range g.kwEdgesOf[k] {
				g.G.SetCost(id, DisabledEdgeCost)
			}
			delete(g.activeKw, k)
		}
	}
	// Enable (recompute) edges of keywords entering it. Mark active first:
	// refreshCost consults the active set.
	for k := range want {
		if !g.activeKw[k] {
			g.activeKw[k] = true
			for _, id := range g.kwEdgesOf[k] {
				g.refreshCost(id)
			}
		}
	}
}

// KeywordActive reports whether a keyword node's edges are currently live.
func (g *Graph) KeywordActive(kw steiner.NodeID) bool { return g.activeKw[kw] }

// Associations returns every association edge with its endpoints, sorted by
// edge id, for evaluation against gold standards.
type Association struct {
	ID   steiner.EdgeID
	A, B relstore.AttrRef
	Cost float64
}

// AssociationList returns all association edges in id order.
func (g *Graph) AssociationList() []Association {
	var out []Association
	for _, e := range g.edges {
		if e.Kind != EdgeAssociation {
			continue
		}
		se := g.G.Edge(e.ID)
		na, nb := g.nodes[se.U], g.nodes[se.V]
		out = append(out, Association{ID: e.ID, A: na.Ref, B: nb.Ref, Cost: se.Cost})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EdgesOfKind returns the ids of all edges of the given kind, ascending.
func (g *Graph) EdgesOfKind(kind EdgeKind) []steiner.EdgeID {
	var out []steiner.EdgeID
	for _, e := range g.edges {
		if e.Kind == kind {
			out = append(out, e.ID)
		}
	}
	return out
}

// Stats summarises the graph for logs and tests.
type Stats struct {
	Relations, Attributes, Values, Keywords int
	ByEdgeKind                              map[EdgeKind]int
}

// Summary computes node/edge counts by kind.
func (g *Graph) Summary() Stats {
	s := Stats{ByEdgeKind: make(map[EdgeKind]int)}
	for _, n := range g.nodes {
		switch n.Kind {
		case KindRelation:
			s.Relations++
		case KindAttribute:
			s.Attributes++
		case KindValue:
			s.Values++
		default:
			s.Keywords++
		}
	}
	for _, e := range g.edges {
		s.ByEdgeKind[e.Kind]++
	}
	return s
}

// Build constructs the initial search graph from catalog metadata: one
// relation node per table, one attribute node per column (with its fixed
// zero-cost edge), and one learnable foreign-key edge per declared foreign
// key (paper §2.1).
func Build(c *relstore.Catalog, weights learning.Vector) *Graph {
	g := New(weights)
	g.AddSource(c, "")
	return g
}

// AddSource incorporates every relation of the catalog belonging to source
// into the graph (all relations when source is empty). Used both at startup
// and when a new source registers (paper §3.1: "the first step is to
// incorporate each of its underlying tables into the search graph").
func (g *Graph) AddSource(c *relstore.Catalog, source string) {
	g.AddSources(c, []string{source})
}

// AddSources incorporates several sources at once, in two phases: every
// source's relation and attribute nodes first, then every declared foreign
// key. Batching matters when the new sources reference each other — adding
// them one AddSource call at a time would silently drop any foreign key
// whose target source had not been added yet, leaving the graph's edge set
// dependent on source order.
func (g *Graph) AddSources(c *relstore.Catalog, sources []string) {
	match := func(rel *relstore.Relation) bool {
		for _, s := range sources {
			if s == "" || rel.Source == s {
				return true
			}
		}
		return false
	}
	for _, rel := range c.Relations() {
		if !match(rel) {
			continue
		}
		qn := rel.QualifiedName()
		g.RelationNode(qn)
		for _, a := range rel.Attributes {
			g.AttributeNode(relstore.AttrRef{Relation: qn, Attr: a.Name})
		}
	}
	// Foreign keys second, so both endpoints exist.
	for _, rel := range c.Relations() {
		if !match(rel) {
			continue
		}
		qn := rel.QualifiedName()
		for _, fk := range rel.ForeignKeys {
			if c.Relation(fk.ToRelation) == nil {
				continue // dangling FK: target not registered at all
			}
			g.AddForeignKeyEdge(
				relstore.AttrRef{Relation: qn, Attr: fk.FromAttr},
				relstore.AttrRef{Relation: fk.ToRelation, Attr: fk.ToAttr},
			)
		}
	}
}
