// Package searchgraph implements Q's unified data model (paper §2.1, §3.1):
// a graph whose nodes are relations, attributes, data values and query
// keywords, and whose edges carry sparse feature vectors from which costs
// are derived as cost = w·f (Equation 1). Zero-cost structural edges
// (attribute↔relation, value↔attribute) are pinned; foreign-key and
// association edges are learnable; keyword edges are added per query.
//
// # Snapshots and overlays
//
// The graph is copy-on-write. A writer owns a *Graph (the builder) and
// mutates it freely; Snapshot returns an immutable view of the current
// state, sharing the underlying storage at zero copy cost. The first
// mutation after a snapshot clones the storage (O(V+E), paid once per write
// burst), so every published snapshot stays frozen forever and any number
// of readers can traverse it without locks. Each clone bumps an epoch
// counter, letting readers detect staleness cheaply.
//
// Per-query state — keyword nodes, keyword edges and lazily materialised
// value nodes — never enters the base graph at all. A query builds an
// Overlay on top of a Snapshot and runs Steiner search over the combined
// base∪overlay view; the overlay dies with the query. This is what lets
// independent queries run fully concurrently: they share the frozen base
// and each writes only to its own overlay.
package searchgraph

import (
	"fmt"
	"maps"
	"math"
	"sort"
	"strconv"
	"strings"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

// NodeKind classifies search-graph nodes.
type NodeKind int

const (
	// KindRelation nodes represent tables (rounded rectangles in Fig. 2).
	KindRelation NodeKind = iota
	// KindAttribute nodes represent columns (ellipses in Fig. 2).
	KindAttribute
	// KindValue nodes represent individual data values, materialised lazily
	// during query-graph expansion.
	KindValue
	// KindKeyword nodes represent query keywords (bold italics in Fig. 3).
	KindKeyword
)

// String names the kind for logs.
func (k NodeKind) String() string {
	switch k {
	case KindRelation:
		return "relation"
	case KindAttribute:
		return "attribute"
	case KindValue:
		return "value"
	default:
		return "keyword"
	}
}

// EdgeKind classifies search-graph edges.
type EdgeKind int

const (
	// EdgeAttrRel links an attribute to its relation at fixed zero cost.
	EdgeAttrRel EdgeKind = iota
	// EdgeForeignKey links two relations joined by a declared foreign key,
	// initialised to the default foreign-key cost.
	EdgeForeignKey
	// EdgeAssociation links two attributes proposed as aligned by a schema
	// matcher (or hand-coded).
	EdgeAssociation
	// EdgeKeyword links a keyword node to a matching schema element or value.
	EdgeKeyword
	// EdgeValueAttr links a value node to its attribute at fixed zero cost.
	EdgeValueAttr
	// EdgeMapping links a mediated-schema attribute to a candidate source
	// attribute. Mapping edges carry learnable features like associations,
	// but they are never traversable by Steiner search (their graph cost is
	// pinned to DisabledEdgeCost): they rank mapping choices, they do not
	// join relations.
	EdgeMapping
)

// String names the edge kind for logs.
func (k EdgeKind) String() string {
	switch k {
	case EdgeAttrRel:
		return "attr-rel"
	case EdgeForeignKey:
		return "foreign-key"
	case EdgeAssociation:
		return "association"
	case EdgeKeyword:
		return "keyword"
	case EdgeMapping:
		return "mapping"
	default:
		return "value-attr"
	}
}

// Node is one search-graph node. Exactly one of the payload fields is
// meaningful depending on Kind.
type Node struct {
	ID    steiner.NodeID
	Kind  NodeKind
	Rel   string           // KindRelation: qualified relation name
	Ref   relstore.AttrRef // KindAttribute / KindValue: owning attribute
	Value string           // KindValue: the value; KindKeyword: the keyword
}

// Label returns a human-readable node label.
func (n Node) Label() string {
	switch n.Kind {
	case KindRelation:
		return n.Rel
	case KindAttribute:
		return n.Ref.String()
	case KindValue:
		return n.Ref.String() + "=" + n.Value
	default:
		return "kw:" + n.Value
	}
}

// Edge is one search-graph edge with its learnable feature vector.
type Edge struct {
	ID       steiner.EdgeID
	Kind     EdgeKind
	Features learning.Vector // nil for fixed zero-cost edges
	Fixed    bool            // pinned at zero cost (set A in Algorithm 4)
	// A and B carry the joined attribute pair for EdgeForeignKey and
	// EdgeAssociation edges; query generation turns them into equi-join
	// conditions.
	A, B relstore.AttrRef
}

// MinEdgeCost is the floor applied to learnable edge costs so Steiner-tree
// computation stays meaningful even if the learner drives a weight
// combination to (or below) zero mid-update.
const MinEdgeCost = 1e-6

// DisabledEdgeCost is the cost assigned to keyword edges whose keyword is
// not part of the query being evaluated. Fresh queries carry their keyword
// edges in private overlays, but graphs loaded from old persisted form may
// still hold base keyword edges, and a stale keyword edge must never act as
// a cheap bridge inside another query's Steiner tree.
const DisabledEdgeCost = 1e12

// store is the copy-on-write storage shared between a builder Graph and the
// snapshots taken from it. A store referenced by any snapshot is frozen; the
// builder clones it before the next mutation.
type store struct {
	sg *steiner.Graph

	nodes []Node
	edges []Edge

	relNode  map[string]steiner.NodeID
	attrNode map[relstore.AttrRef]steiner.NodeID
	valNode  map[valueKey]steiner.NodeID
	kwNode   map[string]steiner.NodeID

	// assocSeen prevents duplicate association edges between the same
	// attribute pair from the same origin.
	assocSeen map[string]steiner.EdgeID

	// kwEdgesOf indexes keyword edges by their keyword node; activeKw holds
	// the keyword nodes whose edges are currently live (see
	// ActivateKeywords).
	kwEdgesOf map[steiner.NodeID][]steiner.EdgeID
	activeKw  map[steiner.NodeID]bool

	weights learning.Vector
}

// clone copies the store for copy-on-write. Slices of structs are copied
// (costs and feature pointers mutate element-wise); the inner slices of
// kwEdgesOf and the steiner adjacency lists are shared, which is safe
// because appends on the newest store only ever write beyond every frozen
// header's length. Feature maps are shared too: edge-feature merges replace
// the map rather than mutating it in place.
func (s *store) clone() *store {
	return &store{
		sg:        s.sg.Clone(),
		nodes:     append([]Node(nil), s.nodes...),
		edges:     append([]Edge(nil), s.edges...),
		relNode:   maps.Clone(s.relNode),
		attrNode:  maps.Clone(s.attrNode),
		valNode:   maps.Clone(s.valNode),
		kwNode:    maps.Clone(s.kwNode),
		assocSeen: maps.Clone(s.assocSeen),
		kwEdgesOf: maps.Clone(s.kwEdgesOf),
		activeKw:  maps.Clone(s.activeKw),
		weights:   s.weights.Clone(),
	}
}

// Graph is the search graph builder, owned by the single writer. It owns an
// underlying steiner.Graph whose edge costs it keeps synchronised with the
// current weight vector. Readers never touch a Graph: they take a Snapshot
// and, per query, an Overlay.
type Graph struct {
	s     *store
	owned bool      // s is not referenced by any snapshot
	snap  *Snapshot // cached snapshot of the current state
	epoch uint64    // bumped on every copy-on-write clone
}

type valueKey struct {
	ref   relstore.AttrRef
	value string
}

// New returns an empty search graph with the given initial weights. The
// weight vector is cloned; use SetWeights to replace it later.
func New(weights learning.Vector) *Graph {
	if weights == nil {
		weights = learning.Vector{}
	}
	return &Graph{
		s: &store{
			sg:        steiner.NewGraph(),
			relNode:   make(map[string]steiner.NodeID),
			attrNode:  make(map[relstore.AttrRef]steiner.NodeID),
			valNode:   make(map[valueKey]steiner.NodeID),
			kwNode:    make(map[string]steiner.NodeID),
			assocSeen: make(map[string]steiner.EdgeID),
			kwEdgesOf: make(map[steiner.NodeID][]steiner.EdgeID),
			activeKw:  make(map[steiner.NodeID]bool),
			weights:   weights.Clone(),
		},
		owned: true,
	}
}

// own makes the builder the sole owner of its storage, cloning it if any
// snapshot still references it. Every mutator calls it first.
func (g *Graph) own() {
	if g.owned {
		return
	}
	g.s = g.s.clone()
	g.owned = true
	g.snap = nil
	g.epoch++
}

// Snapshot returns an immutable view of the current graph state. Taking a
// snapshot is O(1): it freezes the current storage (the next mutation pays
// one O(V+E) clone) and is cached until the graph changes, so repeated
// publishes of an unchanged graph return the same pointer.
func (g *Graph) Snapshot() *Snapshot {
	if g.snap == nil {
		g.snap = &Snapshot{s: g.s, epoch: g.epoch}
	}
	g.owned = false
	return g.snap
}

// Epoch returns the builder's mutation epoch: it increments on the first
// mutation after each snapshot.
func (g *Graph) Epoch() uint64 { return g.epoch }

// G returns the underlying steiner graph of the builder. Mutating it
// directly bypasses copy-on-write; use it only for reads and tests.
func (g *Graph) G() *steiner.Graph { return g.s.sg }

// Weights returns the current weight vector (not a copy; do not mutate).
func (g *Graph) Weights() learning.Vector { return g.s.weights }

// SetWeights replaces the weight vector and recomputes every learnable edge
// cost.
func (g *Graph) SetWeights(w learning.Vector) {
	g.own()
	g.s.weights = w.Clone()
	for i := range g.s.edges {
		g.refreshCost(steiner.EdgeID(i))
	}
}

// EnsureWeight installs a default weight for a feature that has none yet
// (the per-edge keyword weights w_2, w_3, … of Figure 3 are seeded this way
// before a MIRA update touches them). It reports whether the default was
// installed.
func (g *Graph) EnsureWeight(feature string, def float64) bool {
	if _, ok := g.s.weights[feature]; ok {
		return false
	}
	g.own()
	g.s.weights[feature] = def
	return true
}

// Cost returns the current cost of an edge.
func (g *Graph) Cost(id steiner.EdgeID) float64 { return g.s.sg.Edge(id).Cost }

// EdgeCostFor computes what an edge's cost would be under an arbitrary
// weight vector, without mutating the graph. Costs are quantised to 1e-9:
// the dot product sums a map in iteration order, so the low bits of the
// float result vary run to run, and unquantised costs would flip
// tie-breaks in top-k tree selection nondeterministically.
func (g *Graph) EdgeCostFor(id steiner.EdgeID, w learning.Vector) float64 {
	return g.s.edgeCostFor(id, w)
}

func (s *store) edgeCostFor(id steiner.EdgeID, w learning.Vector) float64 {
	e := s.edges[id]
	if e.Fixed {
		return 0
	}
	c := math.Round(w.Dot(e.Features)*1e9) / 1e9
	if c < MinEdgeCost {
		c = MinEdgeCost
	}
	return c
}

// refreshCost recomputes one edge's steiner cost; callers hold ownership.
func (g *Graph) refreshCost(id steiner.EdgeID) {
	if g.s.edges[id].Kind == EdgeMapping {
		g.s.sg.SetCost(id, DisabledEdgeCost)
		return
	}
	if e := g.s.edges[id]; e.Kind == EdgeKeyword {
		se := g.s.sg.Edge(id)
		kw := se.U
		if g.s.nodes[kw].Kind != KindKeyword {
			kw = se.V
		}
		if !g.s.activeKw[kw] {
			g.s.sg.SetCost(id, DisabledEdgeCost)
			return
		}
	}
	g.s.sg.SetCost(id, g.s.edgeCostFor(id, g.s.weights))
}

// Node returns the node with the given id.
func (g *Graph) Node(id steiner.NodeID) Node { return g.s.nodes[id] }

// Edge returns the search-graph edge metadata for an edge id.
func (g *Graph) Edge(id steiner.EdgeID) Edge { return g.s.edges[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.s.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.s.edges) }

// addNode appends a node with a parallel steiner node; callers own storage.
func (g *Graph) addNode(n Node) steiner.NodeID {
	id := g.s.sg.AddNode()
	n.ID = id
	g.s.nodes = append(g.s.nodes, n)
	return id
}

// addEdge appends an edge with a parallel steiner edge at the right cost;
// callers own storage.
func (g *Graph) addEdge(u, v steiner.NodeID, e Edge) steiner.EdgeID {
	var cost float64
	if !e.Fixed {
		cost = math.Round(g.s.weights.Dot(e.Features)*1e9) / 1e9
		if cost < MinEdgeCost {
			cost = MinEdgeCost
		}
	}
	id := g.s.sg.AddEdge(u, v, cost)
	e.ID = id
	g.s.edges = append(g.s.edges, e)
	return id
}

// RelationNode returns (and creates if needed) the node for a relation.
func (g *Graph) RelationNode(qualified string) steiner.NodeID {
	if id, ok := g.s.relNode[qualified]; ok {
		return id
	}
	g.own()
	id := g.addNode(Node{Kind: KindRelation, Rel: qualified})
	g.s.relNode[qualified] = id
	return id
}

// LookupRelation returns the relation node id, or -1 if absent.
func (g *Graph) LookupRelation(qualified string) steiner.NodeID {
	if id, ok := g.s.relNode[qualified]; ok {
		return id
	}
	return -1
}

// AttributeNode returns (and creates if needed) the node for an attribute,
// wiring the fixed zero-cost attribute↔relation edge on creation.
func (g *Graph) AttributeNode(ref relstore.AttrRef) steiner.NodeID {
	if id, ok := g.s.attrNode[ref]; ok {
		return id
	}
	g.own()
	id := g.addNode(Node{Kind: KindAttribute, Ref: ref})
	g.s.attrNode[ref] = id
	rel := g.RelationNode(ref.Relation)
	g.addEdge(id, rel, Edge{Kind: EdgeAttrRel, Fixed: true})
	return id
}

// LookupAttribute returns the attribute node id, or -1 if absent.
func (g *Graph) LookupAttribute(ref relstore.AttrRef) steiner.NodeID {
	if id, ok := g.s.attrNode[ref]; ok {
		return id
	}
	return -1
}

// ValueNode returns (and creates if needed) the node for a data value,
// wiring the fixed zero-cost value↔attribute edge on creation. Query
// execution materialises value nodes in per-query overlays instead; this
// builder form remains for tests and persisted-graph compatibility.
func (g *Graph) ValueNode(ref relstore.AttrRef, value string) steiner.NodeID {
	k := valueKey{ref: ref, value: value}
	if id, ok := g.s.valNode[k]; ok {
		return id
	}
	g.own()
	id := g.addNode(Node{Kind: KindValue, Ref: ref, Value: value})
	g.s.valNode[k] = id
	attr := g.AttributeNode(ref)
	g.addEdge(id, attr, Edge{Kind: EdgeValueAttr, Fixed: true})
	return id
}

// KeywordNode returns (and creates if needed) the node for a query keyword.
// Query execution uses overlay keyword nodes instead; this builder form
// remains for tests and persisted-graph compatibility.
func (g *Graph) KeywordNode(keyword string) steiner.NodeID {
	if id, ok := g.s.kwNode[keyword]; ok {
		return id
	}
	g.own()
	id := g.addNode(Node{Kind: KindKeyword, Value: keyword})
	g.s.kwNode[keyword] = id
	return id
}

// AddForeignKeyEdge links two relation nodes with a learnable foreign-key
// edge carrying the standard feature set. from and to are the joined
// attribute pair declared by the foreign key.
func (g *Graph) AddForeignKeyEdge(from, to relstore.AttrRef) steiner.EdgeID {
	g.own()
	u := g.RelationNode(from.Relation)
	v := g.RelationNode(to.Relation)
	edgeKey := fmt.Sprintf("fk:%s->%s", from, to)
	f := learning.Vector{
		"default":              1,
		"fk":                   1,
		"rel:" + from.Relation: 1,
		"rel:" + to.Relation:   1,
		"edge:" + edgeKey:      1,
	}
	return g.addEdge(u, v, Edge{Kind: EdgeForeignKey, Features: f, A: from, B: to})
}

// AddAssociationEdge links two attribute nodes with a learnable association
// edge. The features argument carries matcher-confidence bins; the standard
// default/relation/edge indicators are added here. Adding the same pair
// again merges the new features into the existing edge (a second matcher
// endorsing the same alignment) and returns the existing id.
func (g *Graph) AddAssociationEdge(a, b relstore.AttrRef, features learning.Vector) steiner.EdgeID {
	ka, kb := a.String(), b.String()
	if kb < ka {
		a, b = b, a
		ka, kb = kb, ka
	}
	pairKey := ka + "~" + kb
	if id, ok := g.s.assocSeen[pairKey]; ok {
		g.own()
		// Replace the feature map rather than mutating it: frozen snapshots
		// share feature pointers with the builder.
		e := &g.s.edges[id]
		merged := e.Features.Clone()
		mergeMatcherFeatures(merged, features)
		e.Features = merged
		g.refreshCost(id)
		return id
	}
	g.own()
	features = features.Clone()
	mergeMatcherFeatures(features, nil)
	u := g.AttributeNode(a)
	v := g.AttributeNode(b)
	f := learning.Vector{
		"default":           1,
		"rel:" + a.Relation: 1,
		"rel:" + b.Relation: 1,
		"edge:" + pairKey:   1,
	}
	for k, x := range features {
		f[k] = x
	}
	id := g.addEdge(u, v, Edge{Kind: EdgeAssociation, Features: f, A: a, B: b})
	g.s.assocSeen[pairKey] = id
	return id
}

// mergeMatcherFeatures merges src into dst with matcher-endorsement
// semantics: a "matcher:<name>:binK" feature supersedes that matcher's
// ":absent" marker (an endorsement cancels the no-endorsement penalty), and
// when the same matcher endorses twice only the higher bin (more confident,
// cheaper under the standard weights) is kept. Other features overwrite
// key-wise. Passing nil src normalises dst in place under the same rules.
func mergeMatcherFeatures(dst, src learning.Vector) {
	for k, v := range src {
		dst[k] = v
	}
	type best struct {
		bin  int
		key  string
		seen bool
	}
	perMatcher := make(map[string]best)
	for k := range dst {
		name, bin, isBin := parseMatcherBin(k)
		if !isBin {
			continue
		}
		b := perMatcher[name]
		if !b.seen || bin > b.bin {
			if b.seen {
				delete(dst, b.key)
			}
			perMatcher[name] = best{bin: bin, key: k, seen: true}
		} else {
			delete(dst, k)
		}
	}
	for name := range perMatcher {
		delete(dst, "matcher:"+name+":absent")
	}
}

// parseMatcherBin recognises "matcher:<name>:bin<K>" feature keys.
func parseMatcherBin(key string) (name string, bin int, ok bool) {
	const prefix = "matcher:"
	if !strings.HasPrefix(key, prefix) {
		return "", 0, false
	}
	rest := key[len(prefix):]
	i := strings.LastIndex(rest, ":bin")
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[i+4:])
	if err != nil {
		return "", 0, false
	}
	return rest[:i], n, true
}

// AddMappingEdge links a mediated attribute to a candidate source attribute
// (see EdgeMapping). Re-adding the same pair merges features, as with
// associations. The returned edge's graph cost is always DisabledEdgeCost;
// rank mappings with EdgeCostFor instead.
func (g *Graph) AddMappingEdge(mediatedAttr, source relstore.AttrRef, features learning.Vector) steiner.EdgeID {
	pairKey := "map:" + mediatedAttr.String() + "~" + source.String()
	if id, ok := g.s.assocSeen[pairKey]; ok {
		g.own()
		e := &g.s.edges[id]
		merged := e.Features.Clone()
		mergeMatcherFeatures(merged, features)
		e.Features = merged
		return id
	}
	g.own()
	features = features.Clone()
	mergeMatcherFeatures(features, nil)
	f := learning.Vector{
		"default":                1,
		"rel:" + source.Relation: 1,
		"edge:" + pairKey:        1,
	}
	for k, x := range features {
		f[k] = x
	}
	u := g.AttributeNode(mediatedAttr)
	v := g.AttributeNode(source)
	id := g.addEdge(u, v, Edge{Kind: EdgeMapping, Features: f, A: mediatedAttr, B: source})
	g.s.sg.SetCost(id, DisabledEdgeCost)
	g.s.assocSeen[pairKey] = id
	return id
}

// HasAssociation reports whether an association edge already exists between
// the two attributes.
func (g *Graph) HasAssociation(a, b relstore.AttrRef) bool {
	ka, kb := a.String(), b.String()
	if kb < ka {
		ka, kb = kb, ka
	}
	_, ok := g.s.assocSeen[ka+"~"+kb]
	return ok
}

// KwEdgeBaseWeight is the initial weight of each keyword edge's own
// indicator feature — the starting value of the per-edge adjustable
// weights w_2, w_3, … of the paper's Figure 3.
const KwEdgeBaseWeight = 0.2

// AddKeywordEdge links a keyword node to a target node with a learnable
// keyword-match edge. sim is the keyword similarity score s_i (higher is
// better); it enters the cost as a mismatch feature (1 − sim), so closer
// matches cost less under a positive weight. Each keyword edge carries its
// own indicator feature — the per-edge adjustable weights w_2, w_3, … of
// Figure 3 — initialised to KwEdgeBaseWeight, so feedback can promote or
// suppress one keyword match without touching the others. Keyword edges
// deliberately do NOT share the global "default" feature: per-query match
// edges sharing a weight with every other edge would let the learner
// inflate all keyword costs at once, destroying the tight α radii that
// VIEWBASEDALIGNER's pruning relies on (§3.3).
//
// Query execution uses Overlay.AddKeywordEdge instead; this builder form
// remains for tests and persisted-graph compatibility.
func (g *Graph) AddKeywordEdge(kw steiner.NodeID, target steiner.NodeID, sim float64) steiner.EdgeID {
	g.own()
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	edgeFeat := "edge:kw:" + g.s.nodes[kw].Value + "->" + g.s.nodes[target].Label()
	if _, ok := g.s.weights[edgeFeat]; !ok {
		g.s.weights[edgeFeat] = KwEdgeBaseWeight
	}
	f := learning.Vector{
		"mismatch": 1 - sim,
		edgeFeat:   1,
	}
	id := g.addEdge(kw, target, Edge{Kind: EdgeKeyword, Features: f})
	g.s.kwEdgesOf[kw] = append(g.s.kwEdgesOf[kw], id)
	if !g.s.activeKw[kw] {
		g.s.sg.SetCost(id, DisabledEdgeCost)
	}
	return id
}

// ActivateKeywords enables exactly the given keyword nodes' edges for the
// next Steiner computation over the builder graph, disabling every other
// keyword's edges. Overlay-based queries do not need activation (an overlay
// holds only its own query's keyword edges, all live by construction); this
// remains for builder-graph Steiner runs in tests and tools.
func (g *Graph) ActivateKeywords(keywords []steiner.NodeID) {
	g.own()
	want := make(map[steiner.NodeID]bool, len(keywords))
	for _, k := range keywords {
		want[k] = true
	}
	// Disable edges of keywords leaving the active set.
	for k := range g.s.activeKw {
		if !want[k] {
			for _, id := range g.s.kwEdgesOf[k] {
				g.s.sg.SetCost(id, DisabledEdgeCost)
			}
			delete(g.s.activeKw, k)
		}
	}
	// Enable (recompute) edges of keywords entering it. Mark active first:
	// refreshCost consults the active set.
	for k := range want {
		if !g.s.activeKw[k] {
			g.s.activeKw[k] = true
			for _, id := range g.s.kwEdgesOf[k] {
				g.refreshCost(id)
			}
		}
	}
}

// KeywordActive reports whether a keyword node's edges are currently live.
func (g *Graph) KeywordActive(kw steiner.NodeID) bool { return g.s.activeKw[kw] }

// Associations returns every association edge with its endpoints, sorted by
// edge id, for evaluation against gold standards.
type Association struct {
	ID   steiner.EdgeID
	A, B relstore.AttrRef
	Cost float64
}

// AssociationList returns all association edges in id order.
func (g *Graph) AssociationList() []Association { return g.s.associationList() }

func (s *store) associationList() []Association {
	var out []Association
	for _, e := range s.edges {
		if e.Kind != EdgeAssociation {
			continue
		}
		se := s.sg.Edge(e.ID)
		na, nb := s.nodes[se.U], s.nodes[se.V]
		out = append(out, Association{ID: e.ID, A: na.Ref, B: nb.Ref, Cost: se.Cost})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EdgesOfKind returns the ids of all edges of the given kind, ascending.
func (g *Graph) EdgesOfKind(kind EdgeKind) []steiner.EdgeID {
	var out []steiner.EdgeID
	for _, e := range g.s.edges {
		if e.Kind == kind {
			out = append(out, e.ID)
		}
	}
	return out
}

// Stats summarises the graph for logs and tests.
type Stats struct {
	Relations, Attributes, Values, Keywords int
	ByEdgeKind                              map[EdgeKind]int
}

// Summary computes node/edge counts by kind.
func (g *Graph) Summary() Stats { return g.s.summary() }

func (s *store) summary() Stats {
	out := Stats{ByEdgeKind: make(map[EdgeKind]int)}
	for _, n := range s.nodes {
		switch n.Kind {
		case KindRelation:
			out.Relations++
		case KindAttribute:
			out.Attributes++
		case KindValue:
			out.Values++
		default:
			out.Keywords++
		}
	}
	for _, e := range s.edges {
		out.ByEdgeKind[e.Kind]++
	}
	return out
}

// Build constructs the initial search graph from catalog metadata: one
// relation node per table, one attribute node per column (with its fixed
// zero-cost edge), and one learnable foreign-key edge per declared foreign
// key (paper §2.1).
func Build(c *relstore.Catalog, weights learning.Vector) *Graph {
	g := New(weights)
	g.AddSource(c, "")
	return g
}

// AddSource incorporates every relation of the catalog belonging to source
// into the graph (all relations when source is empty). Used both at startup
// and when a new source registers (paper §3.1: "the first step is to
// incorporate each of its underlying tables into the search graph").
func (g *Graph) AddSource(c *relstore.Catalog, source string) {
	g.AddSources(c, []string{source})
}

// AddSources incorporates several sources at once, in two phases: every
// source's relation and attribute nodes first, then every declared foreign
// key. Batching matters when the new sources reference each other — adding
// them one AddSource call at a time would silently drop any foreign key
// whose target source had not been added yet, leaving the graph's edge set
// dependent on source order.
func (g *Graph) AddSources(c *relstore.Catalog, sources []string) {
	match := func(rel *relstore.Relation) bool {
		for _, s := range sources {
			if s == "" || rel.Source == s {
				return true
			}
		}
		return false
	}
	for _, rel := range c.Relations() {
		if !match(rel) {
			continue
		}
		qn := rel.QualifiedName()
		g.RelationNode(qn)
		for _, a := range rel.Attributes {
			g.AttributeNode(relstore.AttrRef{Relation: qn, Attr: a.Name})
		}
	}
	// Foreign keys second, so both endpoints exist.
	for _, rel := range c.Relations() {
		if !match(rel) {
			continue
		}
		qn := rel.QualifiedName()
		for _, fk := range rel.ForeignKeys {
			if c.Relation(fk.ToRelation) == nil {
				continue // dangling FK: target not registered at all
			}
			g.AddForeignKeyEdge(
				relstore.AttrRef{Relation: qn, Attr: fk.FromAttr},
				relstore.AttrRef{Relation: fk.ToRelation, Attr: fk.ToAttr},
			)
		}
	}
}
