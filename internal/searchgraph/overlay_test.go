package searchgraph

import (
	"bytes"
	"testing"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/steiner"
)

// overlayFixture builds a small two-source graph with an association
// bridging the sources, the shape every overlay test here works against.
func overlayFixture(t *testing.T) (*Graph, *relstore.Catalog) {
	t.Helper()
	cat := relstore.NewCatalog()
	mk := func(src, name string, attrs []string, rows [][]string, fks ...relstore.ForeignKey) {
		rel := &relstore.Relation{Source: src, Name: name, ForeignKeys: fks}
		for _, a := range attrs {
			rel.Attributes = append(rel.Attributes, relstore.Attribute{Name: a})
		}
		tb, err := relstore.NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	mk("go", "term", []string{"acc", "name"}, [][]string{{"GO:1", "membrane"}, {"GO:2", "nucleus"}})
	mk("ip", "entry", []string{"entry_ac", "go_id"}, [][]string{{"IPR1", "GO:1"}, {"IPR2", "GO:2"}})
	g := Build(cat, learning.Vector{"default": 0.1, "fk": 0.9, "mismatch": 1.0})
	g.AddAssociationEdge(
		relstore.AttrRef{Relation: "go.term", Attr: "acc"},
		relstore.AttrRef{Relation: "ip.entry", Attr: "go_id"},
		learning.Vector{"handcoded": 1})
	return g, cat
}

// runOverlayQuery simulates one keyword query against a snapshot: keyword
// nodes, value nodes, keyword edges, and a Steiner search over the
// combined view.
func runOverlayQuery(t *testing.T, snap *Snapshot, kw1, kw2 string) []steiner.Tree {
	t.Helper()
	ov := snap.NewOverlay()
	k1 := ov.KeywordNode(kw1)
	k2 := ov.KeywordNode(kw2)
	ov.AddKeywordEdge(k1, snap.LookupAttribute(relstore.AttrRef{Relation: "go.term", Attr: "name"}), 0.8)
	if vn := ov.ValueNode(relstore.AttrRef{Relation: "go.term", Attr: "name"}, kw1); vn >= 0 {
		ov.AddKeywordEdge(k1, vn, 1.0)
	}
	ov.AddKeywordEdge(k2, snap.LookupRelation("ip.entry"), 0.7)
	if vn := ov.ValueNode(relstore.AttrRef{Relation: "ip.entry", Attr: "entry_ac"}, kw2); vn >= 0 {
		ov.AddKeywordEdge(k2, vn, 0.9)
	}
	trees := steiner.TopKSteinerOn(ov.View(), []steiner.NodeID{k1, k2}, 3)
	if len(trees) == 0 {
		t.Fatal("overlay query found no trees")
	}
	return trees
}

// TestOverlayNeverLeaksIntoBase is the metamorphic persistence check: the
// base graph's persisted bytes are identical before and after a corpus of
// overlay queries — keyword nodes, keyword edges and lazily materialised
// value nodes live and die in the overlay, never touching the base.
func TestOverlayNeverLeaksIntoBase(t *testing.T) {
	g, _ := overlayFixture(t)
	var before bytes.Buffer
	if err := g.Save(&before); err != nil {
		t.Fatal(err)
	}
	epoch := g.Epoch()

	queries := [][2]string{
		{"membrane", "IPR1"},
		{"nucleus", "IPR2"},
		{"membrane", "IPR2"},
		{"nucleus", "IPR1"},
		{"membrane", "IPR1"}, // repeat: same expansion, fresh overlay
	}
	for _, kws := range queries {
		snap := g.Snapshot()
		runOverlayQuery(t, snap, kws[0], kws[1])
	}

	var after bytes.Buffer
	if err := g.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Errorf("overlay queries leaked into the base graph\nbefore: %s\nafter:  %s",
			before.String(), after.String())
	}
	if g.Epoch() != epoch {
		t.Errorf("overlay queries bumped the builder epoch %d -> %d", epoch, g.Epoch())
	}
	if sum := g.Summary(); sum.Keywords != 0 || sum.Values != 0 {
		t.Errorf("base graph grew %d keyword and %d value nodes", sum.Keywords, sum.Values)
	}
}

// TestSnapshotFrozenUnderWriter pins copy-on-write: a snapshot taken
// before a mutation keeps its exact node/edge counts and costs while the
// builder moves on, and the builder's epoch advances.
func TestSnapshotFrozenUnderWriter(t *testing.T) {
	g, _ := overlayFixture(t)
	snap := g.Snapshot()
	nodes, edges := snap.NumNodes(), snap.NumEdges()
	epoch := snap.Epoch()
	assocCost := snap.Cost(snap.AssociationList()[0].ID)

	// Writer mutations of every flavour.
	g.AddAssociationEdge(
		relstore.AttrRef{Relation: "go.term", Attr: "name"},
		relstore.AttrRef{Relation: "ip.entry", Attr: "entry_ac"},
		learning.Vector{"handcoded": 1})
	w := g.Weights().Clone()
	w["default"] += 5
	g.SetWeights(w)

	if snap.NumNodes() != nodes || snap.NumEdges() != edges {
		t.Errorf("snapshot grew under the writer: %d/%d -> %d/%d nodes/edges",
			nodes, edges, snap.NumNodes(), snap.NumEdges())
	}
	if got := snap.Cost(snap.AssociationList()[0].ID); got != assocCost {
		t.Errorf("snapshot edge cost changed under SetWeights: %v -> %v", assocCost, got)
	}
	if g.Epoch() == epoch {
		t.Error("builder epoch did not advance across a mutation")
	}
	if g.NumEdges() == edges {
		t.Error("builder did not gain the new edge")
	}
	// A fresh snapshot sees the new state.
	snap2 := g.Snapshot()
	if snap2.NumEdges() != edges+1 {
		t.Errorf("new snapshot has %d edges, want %d", snap2.NumEdges(), edges+1)
	}
	if snap2.Epoch() == epoch {
		t.Error("new snapshot should carry the advanced epoch")
	}
}

// TestOverlayKeywordEdgeCostMatchesBuilder pins overlay/builder cost
// parity: an overlay keyword edge must cost exactly what the builder's
// AddKeywordEdge would have charged — the KwEdgeBaseWeight default enters
// the overlay cost arithmetic without being written into shared weights,
// and a learned per-edge weight in the snapshot is honoured.
func TestOverlayKeywordEdgeCostMatchesBuilder(t *testing.T) {
	g, _ := overlayFixture(t)
	attr := relstore.AttrRef{Relation: "go.term", Attr: "name"}

	// Builder path (legacy): creates the node+edge in the base and seeds
	// the per-edge weight.
	kwB := g.KeywordNode("membrane")
	target := g.LookupAttribute(attr)
	eidB := g.AddKeywordEdge(kwB, target, 0.75)
	g.ActivateKeywords([]steiner.NodeID{kwB})
	builderCost := g.Cost(eidB)

	// Overlay path on a fresh identical graph: no weight seeded, default
	// applied in-place.
	g2, _ := overlayFixture(t)
	snap := g2.Snapshot()
	ov := snap.NewOverlay()
	kwO := ov.KeywordNode("membrane")
	eidO := ov.AddKeywordEdge(kwO, snap.LookupAttribute(attr), 0.75)
	if got := ov.Cost(eidO); got != builderCost {
		t.Errorf("overlay keyword edge cost %v, builder %v", got, builderCost)
	}
	if _, ok := snap.Weights()["edge:kw:membrane->go.term.name"]; ok {
		t.Error("overlay keyword edge wrote its weight into shared weights")
	}

	// A learned weight overrides the default in both paths.
	g2.EnsureWeight("edge:kw:membrane->go.term.name", 0.7)
	snap2 := g2.Snapshot()
	ov2 := snap2.NewOverlay()
	kw2 := ov2.KeywordNode("membrane")
	eid2 := ov2.AddKeywordEdge(kw2, snap2.LookupAttribute(attr), 0.75)
	if ov2.Cost(eid2) <= ov.Cost(eidO) {
		t.Errorf("learned heavier weight should raise the edge cost: %v vs %v",
			ov2.Cost(eid2), ov.Cost(eidO))
	}
}

// TestOverlayDedupsKeywordEdges: re-adding the same (keyword, target) match
// returns the existing edge instead of a parallel one.
func TestOverlayDedupsKeywordEdges(t *testing.T) {
	g, _ := overlayFixture(t)
	snap := g.Snapshot()
	ov := snap.NewOverlay()
	kw := ov.KeywordNode("membrane")
	target := snap.LookupAttribute(relstore.AttrRef{Relation: "go.term", Attr: "name"})
	e1 := ov.AddKeywordEdge(kw, target, 0.8)
	e2 := ov.AddKeywordEdge(kw, target, 0.8)
	if e1 != e2 {
		t.Errorf("duplicate keyword match created a parallel edge: %d vs %d", e1, e2)
	}
}
