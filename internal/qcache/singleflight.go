package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qint/internal/obs"
)

// Group collapses concurrent identical computations: when N goroutines Do
// the same Key while no result is cached yet, exactly one executes the
// function and the other N-1 block and share its result. Because keys
// carry the epoch, two generations' computations for the same logical key
// never collapse into each other.
//
// The zero Group is ready to use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[Key]*call[V]

	execs     atomic.Uint64
	coalesced atomic.Uint64
	waiting   atomic.Int64

	// Optional registry mirrors (Instrument): incremented alongside the
	// atomics so the zero Group stays ready to use while an instrumented
	// one surfaces its activity as metric families.
	execsC     *obs.Counter
	coalescedC *obs.Counter
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn under k, coalescing with any in-flight execution of the
// same key: the first caller runs fn, later callers block until it
// finishes and receive the same value and error. The result is handed to
// every caller of the flight but is NOT retained: a Do after the flight
// completes executes fn again (pair the group with a Cache for retention).
func (g *Group[V]) Do(k Key, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[Key]*call[V])
	}
	if c, ok := g.calls[k]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		g.coalescedC.Inc()
		g.waiting.Add(1)
		<-c.done
		g.waiting.Add(-1)
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[k] = c
	g.mu.Unlock()

	g.execs.Add(1)
	g.execsC.Inc()
	// Unregister and release waiters even if fn panics — a stuck call entry
	// would otherwise block every later Do of the same key forever. A panic
	// propagates in the leader (its server/recover layer attributes it); the
	// waiters must NOT see (zero value, nil error) as if the computation
	// succeeded, so they get an error naming the panic instead.
	normal := false
	defer func() {
		if !normal && c.err == nil {
			c.err = fmt.Errorf("qcache: singleflight leader for %q panicked: %v", k.K, recover())
			// Note: recover() here does not stop the panic — it is re-raised
			// below so the leader's caller still sees it.
			defer func() { panic(c.err) }()
		}
		g.mu.Lock()
		delete(g.calls, k)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err
}

// Instrument attaches registry-owned mirror counters for executions and
// coalesced waits. Writer-side setup: call it before the group sees
// concurrent Do calls. Nil arguments clear nothing (obs counters are
// nil-safe, so an un-instrumented group pays one nil check per event).
func (g *Group[V]) Instrument(execs, coalesced *obs.Counter) {
	g.execsC = execs
	g.coalescedC = coalesced
}

// Execs returns how many times Do actually executed a function (as opposed
// to coalescing onto another caller's flight).
func (g *Group[V]) Execs() uint64 { return g.execs.Load() }

// Coalesced returns how many Do calls were served by piggybacking on an
// in-flight execution instead of executing themselves.
func (g *Group[V]) Coalesced() uint64 { return g.coalesced.Load() }

// Waiting returns how many callers are currently blocked on an in-flight
// execution (test observability: a coalescing test can wait until all its
// goroutines are parked before releasing the leader).
func (g *Group[V]) Waiting() int { return int(g.waiting.Load()) }
