// Package qcache is the serving-layer cache between the HTTP server and the
// Q engine: a generic sharded LRU whose entries are keyed by
// (epoch, key) — one immutable published-state generation plus a
// caller-defined key within it — and a singleflight group that collapses
// concurrent identical misses into one computation.
//
// Epoch keying is what makes the cache correct without any invalidation
// protocol. Every published state generation of Q is immutable and carries
// a unique epoch (PRs 2–4): a cached result computed at epoch e is a pure
// function of (e, key), so it can never go stale — a registration or
// feedback write publishes a NEW epoch, under which every lookup simply
// misses, and the entries of dead epochs age out of the LRU (eviction
// prefers them, see Put). Nothing is ever invalidated, flushed or locked
// on the write path.
//
// The cache itself knows nothing about Q: core wires one Cache per
// memoised computation (keyword expansion, view materialisation) and the
// server reads the counters for /stats.
package qcache

import (
	"sync"
	"sync/atomic"

	"qint/internal/obs"
)

// Key identifies one cache entry: the published-state epoch the value was
// computed at plus a caller-defined key within that generation.
type Key struct {
	Epoch uint64
	K     string
}

// Counters is a point-in-time snapshot of a cache's activity counters.
// Hits and Misses count Get outcomes; Evictions counts entries dropped for
// capacity; Entries is the current resident count and LiveEpochs the
// number of distinct epochs those entries were computed at (1 on a
// quiesced instance — more means older generations haven't aged out yet).
type Counters struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Entries    int
	LiveEpochs int
}

// Cache is a sharded LRU over (epoch, key) entries with a fixed total
// capacity in entries. All methods are safe for concurrent use; each shard
// serialises on its own mutex, so unrelated keys rarely contend.
//
// Eviction prefers dead epochs: when a shard is full, Put scans a bounded
// window from the LRU tail for an entry whose epoch differs from the one
// last announced via SetLiveEpoch and evicts that first, falling back to
// the plain LRU tail. Entries from superseded generations therefore drain
// ahead of the current generation's working set.
type Cache[V any] struct {
	shards []*cshard[V]
	live   atomic.Uint64 // current published epoch (eviction preference)

	// Activity counters. New allocates private ones; Instrument swaps in
	// registry-owned counters so the cache's activity is a first-class
	// metric family and Counters() becomes a view over the registry.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// evictScan bounds how far from the LRU tail Put searches for a dead-epoch
// entry before falling back to the tail itself, keeping eviction O(1).
const evictScan = 8

// numShards is the fixed shard count for caches large enough to split.
const numShards = 16

type entry[V any] struct {
	key        Key
	val        V
	prev, next *entry[V] // LRU list; head = most recent
}

type cshard[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*entry[V]
	head    *entry[V]
	tail    *entry[V]
}

// New returns a cache holding at most capacity entries in total.
// capacity <= 0 returns nil: a nil *Cache is valid and behaves as a
// disabled cache (Get always misses without counting, Put is a no-op), so
// callers can wire the knob straight through.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	n := numShards
	if capacity < n {
		n = capacity
	}
	c := &Cache[V]{
		shards:    make([]*cshard[V], n),
		hits:      &obs.Counter{},
		misses:    &obs.Counter{},
		evictions: &obs.Counter{},
	}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i] = &cshard[V]{cap: per, entries: make(map[Key]*entry[V], per)}
	}
	return c
}

// Instrument replaces the cache's activity counters with registry-owned
// ones (typically obtained from an obs.Registry), so hits, misses and
// evictions surface as metric families without a second accounting.
// Writer-side setup: call it before the cache is shared with concurrent
// users — the counters are swapped, not merged, and prior counts stay in
// the old ones. Nil arguments and a nil cache are no-ops.
func (c *Cache[V]) Instrument(hits, misses, evictions *obs.Counter) {
	if c == nil {
		return
	}
	if hits != nil {
		c.hits = hits
	}
	if misses != nil {
		c.misses = misses
	}
	if evictions != nil {
		c.evictions = evictions
	}
}

// SetLiveEpoch announces the currently published generation; eviction
// prefers entries computed at any OTHER epoch. Callers invoke it on every
// publish (monotonic, but the cache does not require that).
func (c *Cache[V]) SetLiveEpoch(epoch uint64) {
	if c == nil {
		return
	}
	c.live.Store(epoch)
}

// shardOf picks the shard for a key: FNV-1a over the string key folded
// with the epoch, so one epoch's keys spread across all shards.
func (c *Cache[V]) shardOf(k Key) *cshard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.K); i++ {
		h ^= uint64(k.K[i])
		h *= prime64
	}
	h ^= k.Epoch
	h *= prime64
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached value for k, marking it most-recently-used.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardOf(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Inc()
		return zero, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Inc()
	return v, true
}

// Put inserts (or refreshes) the value for k, evicting if the shard is at
// capacity — preferring a dead-epoch entry near the LRU tail (see Cache).
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	live := c.live.Load()
	s := c.shardOf(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.val = v
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	evicted := int64(0)
	for len(s.entries) >= s.cap {
		s.remove(s.victim(live))
		evicted++
	}
	e := &entry[V]{key: k, val: v}
	s.entries[k] = e
	s.pushFront(e)
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// victim picks the entry to evict: the first dead-epoch entry within
// evictScan steps of the LRU tail, else the tail itself. Callers hold the
// shard lock and guarantee the shard is non-empty.
func (s *cshard[V]) victim(live uint64) *entry[V] {
	e := s.tail
	for i := 0; e != nil && i < evictScan; i++ {
		if e.key.Epoch != live {
			return e
		}
		e = e.prev
	}
	return s.tail
}

func (s *cshard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cshard[V]) remove(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	delete(s.entries, e.key)
}

func (s *cshard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}

// Len returns the current number of resident entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Counters snapshots the cache's activity counters (all zero on a nil,
// disabled cache). LiveEpochs walks the shards, so it is O(entries);
// intended for /stats and shells, not hot paths.
func (c *Cache[V]) Counters() Counters {
	if c == nil {
		return Counters{}
	}
	epochs := make(map[uint64]struct{})
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		for k := range s.entries {
			epochs[k.Epoch] = struct{}{}
		}
		s.mu.Unlock()
	}
	return Counters{
		Hits:       uint64(c.hits.Load()),
		Misses:     uint64(c.misses.Load()),
		Evictions:  uint64(c.evictions.Load()),
		Entries:    n,
		LiveEpochs: len(epochs),
	}
}
