package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutAndCounters(t *testing.T) {
	c := New[int](64)
	k := Key{Epoch: 1, K: "a"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 42)
	v, ok := c.Get(k)
	if !ok || v != 42 {
		t.Fatalf("got (%d,%v), want (42,true)", v, ok)
	}
	// Same string key at another epoch is a distinct entry.
	k2 := Key{Epoch: 2, K: "a"}
	if _, ok := c.Get(k2); ok {
		t.Fatal("epoch must partition the key space")
	}
	c.Put(k2, 43)
	if v, _ := c.Get(k); v != 42 {
		t.Fatal("epoch 1 entry clobbered by epoch 2 put")
	}
	ctr := c.Counters()
	if ctr.Hits != 2 || ctr.Misses != 2 || ctr.Entries != 2 || ctr.LiveEpochs != 2 {
		t.Fatalf("counters = %+v, want hits=2 misses=2 entries=2 liveEpochs=2", ctr)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache[string]
	if c := New[string](0); c != nil {
		t.Fatal("capacity 0 must return a nil (disabled) cache")
	}
	c.Put(Key{1, "x"}, "v") // must not panic
	if _, ok := c.Get(Key{1, "x"}); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.SetLiveEpoch(7)
	if got := c.Counters(); got != (Counters{}) {
		t.Fatalf("nil cache counters = %+v, want zero", got)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity below numShards collapses to capacity shards of 1 entry each;
	// use a single-shard cache so the LRU order is fully observable.
	c := New[int](1)
	if len(c.shards) != 1 || c.shards[0].cap != 1 {
		t.Fatalf("want 1 shard of cap 1, got %d shards cap %d", len(c.shards), c.shards[0].cap)
	}
	c.Put(Key{1, "a"}, 1)
	c.Put(Key{1, "b"}, 2) // evicts a
	if _, ok := c.Get(Key{1, "a"}); ok {
		t.Fatal("expected a evicted")
	}
	if v, ok := c.Get(Key{1, "b"}); !ok || v != 2 {
		t.Fatal("expected b resident")
	}
	if ev := c.Counters().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

// TestEvictionPrefersDeadEpochs pins the aging property that replaces
// invalidation: at capacity, entries from superseded generations go first
// even when they are more recently used than live-epoch entries.
func TestEvictionPrefersDeadEpochs(t *testing.T) {
	c := New[int](4)
	for i := 0; i < 3; i++ {
		c.Put(Key{Epoch: 1, K: fmt.Sprintf("old%d", i)}, i)
	}
	c.SetLiveEpoch(2)
	c.Put(Key{Epoch: 2, K: "new0"}, 100)
	// Touch the dead entries so plain LRU would evict new0's shard-mates
	// last; dead-epoch preference must still pick them.
	for i := 0; i < 3; i++ {
		c.Get(Key{Epoch: 1, K: fmt.Sprintf("old%d", i)})
	}
	// Fill well past capacity with live-epoch entries.
	for i := 1; i <= 8; i++ {
		c.Put(Key{Epoch: 2, K: fmt.Sprintf("new%d", i)}, 100+i)
	}
	ctr := c.Counters()
	if ctr.Entries > 4*2 { // per-shard rounding can leave a little slack
		t.Fatalf("entries = %d, want <= capacity (with shard rounding)", ctr.Entries)
	}
	// Every dead-epoch entry that shared a shard with enough live puts must
	// be gone; at minimum the dead population cannot still be complete AND
	// the cache over capacity. Count survivors per epoch.
	dead := 0
	for i := 0; i < 3; i++ {
		if _, ok := peek(c, Key{Epoch: 1, K: fmt.Sprintf("old%d", i)}); ok {
			dead++
		}
	}
	if ctr.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if dead == 3 {
		t.Fatalf("no dead-epoch entry evicted (dead=%d, counters=%+v)", dead, ctr)
	}
}

// peek looks an entry up without touching LRU order or counters.
func peek[V any](c *Cache[V], k Key) (V, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// TestDeadEpochPreferenceDirect drives one shard deterministically: a full
// shard holding one dead and one live entry, with the dead entry MORE
// recently used, must still evict the dead one (plain LRU would evict the
// live entry).
func TestDeadEpochPreferenceDirect(t *testing.T) {
	c := New[int](32) // 16 shards x cap 2
	target := c.shardOf(Key{Epoch: 1, K: "seed"})
	if target.cap != 2 {
		t.Fatalf("per-shard cap = %d, want 2", target.cap)
	}
	inShard := func(epoch uint64, hint string) Key {
		for i := 0; ; i++ {
			k := Key{Epoch: epoch, K: fmt.Sprintf("%s%d", hint, i)}
			if c.shardOf(k) == target {
				return k
			}
		}
	}
	deadK := inShard(1, "dead")
	liveK := inShard(2, "live")
	overflowK := inShard(2, "overflow")

	c.Put(deadK, 1)
	c.SetLiveEpoch(2)
	c.Put(liveK, 2)
	c.Get(deadK) // dead is now MRU, live is the LRU tail
	c.Put(overflowK, 3)

	if _, ok := peek(c, deadK); ok {
		t.Fatal("dead-epoch entry survived eviction despite being MRU")
	}
	if _, ok := peek(c, liveK); !ok {
		t.Fatal("live-epoch LRU entry was evicted ahead of the dead one")
	}
	if _, ok := peek(c, overflowK); !ok {
		t.Fatal("newly inserted entry missing")
	}
}

func TestConcurrentHammer(t *testing.T) {
	c := New[int](128)
	c.SetLiveEpoch(3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Epoch: uint64(1 + i%3), K: fmt.Sprintf("k%d", i%200)}
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
				if i%500 == 0 {
					c.Counters()
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	ctr := c.Counters()
	if ctr.Entries > 128+numShards { // shard rounding slack
		t.Fatalf("entries %d exceeds capacity", ctr.Entries)
	}
}

// TestSingleflightCoalesces proves N concurrent identical Do calls execute
// the function exactly once: the leader blocks until all other callers are
// parked on its flight, so none of them can have started a flight of its
// own.
func TestSingleflightCoalesces(t *testing.T) {
	var g Group[int]
	const n = 16
	release := make(chan struct{})
	var computed atomic.Int64

	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			v, err := g.Do(Key{Epoch: 1, K: "q"}, func() (int, error) {
				computed.Add(1)
				<-release
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	// Wait until the n-1 followers are parked on the leader's flight.
	deadline := time.Now().Add(10 * time.Second)
	for g.Waiting() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked", g.Waiting(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < n; i++ {
		if v := <-results; v != 7 {
			t.Fatalf("result = %d, want 7", v)
		}
	}
	if got := computed.Load(); got != 1 {
		t.Fatalf("function executed %d times, want 1", got)
	}
	if g.Execs() != 1 || g.Coalesced() != n-1 {
		t.Fatalf("execs=%d coalesced=%d, want 1 and %d", g.Execs(), g.Coalesced(), n-1)
	}
}

// TestSingleflightDistinctKeys proves different keys (including the same
// string at different epochs) do not coalesce.
func TestSingleflightDistinctKeys(t *testing.T) {
	var g Group[int]
	var wg sync.WaitGroup
	var computed atomic.Int64
	for e := uint64(1); e <= 4; e++ {
		wg.Add(1)
		go func(e uint64) {
			defer wg.Done()
			v, _ := g.Do(Key{Epoch: e, K: "same"}, func() (int, error) {
				computed.Add(1)
				return int(e), nil
			})
			if v != int(e) {
				t.Errorf("epoch %d got %d", e, v)
			}
		}(e)
	}
	wg.Wait()
	if computed.Load() != 4 {
		t.Fatalf("computed %d, want 4 (one per epoch)", computed.Load())
	}
}

// TestSingleflightLeaderPanic pins the panic contract: the leader's panic
// propagates in the leader, waiters get a NON-NIL error (never a zero
// value masquerading as success), and the key is usable again afterwards.
func TestSingleflightLeaderPanic(t *testing.T) {
	var g Group[int]
	k := Key{Epoch: 1, K: "boom"}
	release := make(chan struct{})

	waiterErr := make(chan error, 1)
	leaderPanicked := make(chan interface{}, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		g.Do(k, func() (int, error) {
			<-release
			panic("kaboom")
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for g.Execs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, err := g.Do(k, func() (int, error) { return 1, nil })
		waiterErr <- err
	}()
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	if pv := <-leaderPanicked; pv == nil {
		t.Fatal("leader's panic was swallowed")
	}
	if err := <-waiterErr; err == nil {
		t.Fatal("waiter saw nil error after the leader panicked")
	}
	// The key must not be wedged: a fresh Do executes normally.
	v, err := g.Do(k, func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("post-panic Do = (%d, %v), want (9, nil)", v, err)
	}
}

// TestSingleflightSequentialReexecutes pins that the group does not retain
// results: retention is the Cache's job.
func TestSingleflightSequentialReexecutes(t *testing.T) {
	var g Group[int]
	n := 0
	for i := 0; i < 3; i++ {
		g.Do(Key{1, "k"}, func() (int, error) { n++; return n, nil })
	}
	if n != 3 {
		t.Fatalf("executed %d times, want 3", n)
	}
}
