package core

import (
	"testing"

	"qint/internal/relstore"
)

// TestOutputColumnUnification exercises the §2.2 outer-union renaming: when
// two queries output attributes linked by a low-cost association edge, the
// second query's attribute is renamed into the first's column, so
// conceptually compatible values share a column in the unified view.
func TestOutputColumnUnification(t *testing.T) {
	q := newFixtureQ(t, false)
	// Hand-code a cheap association between go.term.name and ip.entry.name:
	// they are "conceptually compatible" output columns.
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "name"},
		relstore.AttrRef{Relation: "ip.entry", Attr: "name"})

	// Build two single-relation queries by hand and push them through the
	// unification path.
	outputSchema := make(map[string]bool)
	cq1 := &relstore.ConjunctiveQuery{
		Atoms:   []relstore.Atom{{Relation: "go.term", Alias: "t0"}},
		Project: []relstore.ProjCol{{Alias: "t0", Attr: "name", As: "name"}},
	}
	q.alignOutputColumns(q.state(), cq1, outputSchema)
	if cq1.Project[0].As != "name" {
		t.Fatalf("first query keeps its own label, got %q", cq1.Project[0].As)
	}

	cq2 := &relstore.ConjunctiveQuery{
		Atoms:   []relstore.Atom{{Relation: "ip.entry", Alias: "t0"}},
		Project: []relstore.ProjCol{{Alias: "t0", Attr: "name", As: "entry_name"}},
	}
	q.alignOutputColumns(q.state(), cq2, outputSchema)
	if cq2.Project[0].As != "name" {
		t.Errorf("compatible attribute should be renamed into the shared column, got %q",
			cq2.Project[0].As)
	}

	// A third query already outputting "name" must NOT have a second column
	// renamed into it.
	cq3 := &relstore.ConjunctiveQuery{
		Atoms: []relstore.Atom{
			{Relation: "go.term", Alias: "t0"},
			{Relation: "ip.entry", Alias: "t1"},
		},
		Project: []relstore.ProjCol{
			{Alias: "t0", Attr: "name", As: "name"},
			{Alias: "t1", Attr: "name", As: "entry_name"},
		},
	}
	q.alignOutputColumns(q.state(), cq3, outputSchema)
	if cq3.Project[1].As != "entry_name" {
		t.Errorf("query already outputs 'name'; second compatible column must keep its label, got %q",
			cq3.Project[1].As)
	}
}

// TestOutputColumnUnificationRespectsThreshold: an expensive association
// must not merge columns.
func TestOutputColumnUnificationRespectsThreshold(t *testing.T) {
	opts := DefaultOptions()
	opts.ColumnAlignThreshold = 0.05 // below any learnable edge's cost
	q := New(opts)
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "name"},
		relstore.AttrRef{Relation: "ip.entry", Attr: "name"})

	outputSchema := map[string]bool{"name": true}
	cq := &relstore.ConjunctiveQuery{
		Atoms:   []relstore.Atom{{Relation: "ip.entry", Alias: "t0"}},
		Project: []relstore.ProjCol{{Alias: "t0", Attr: "name", As: "entry_name"}},
	}
	q.alignOutputColumns(q.state(), cq, outputSchema)
	if cq.Project[0].As != "entry_name" {
		t.Errorf("over-threshold association must not merge columns, got %q", cq.Project[0].As)
	}
}

// TestUnifiedColumnsShareValuesEndToEnd drives the whole pipeline: a query
// whose two cheapest trees come from different relations with associated
// name attributes must land both in one output column.
func TestUnifiedColumnsShareValuesEndToEnd(t *testing.T) {
	q := newFixtureQ(t, true)
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "name"},
		relstore.AttrRef{Relation: "ip.entry", Attr: "name"})
	// "membrane" matches plasma membrane (go.term.name) and Membrane
	// protein (ip.entry.name): two single-relation trees.
	v, err := q.Query("membrane name")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Result().Rows) == 0 {
		t.Fatal("expected answers")
	}
	// Some column must contain values from both relations.
	colValues := make(map[int]map[string]bool)
	for _, row := range v.Result().Rows {
		for i, val := range row.Values {
			if val == "" {
				continue
			}
			if colValues[i] == nil {
				colValues[i] = make(map[string]bool)
			}
			colValues[i][val] = true
		}
	}
	shared := false
	for _, vals := range colValues {
		if vals["plasma membrane"] && vals["Membrane protein"] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("associated name columns should share one output column; columns: %v / rows %v",
			v.Result().Columns, len(v.Result().Rows))
	}
}
