package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// The property under test: Options.Shards is invisible to every answer Q
// produces. Queries (top-k trees, conjunctive queries, ranked rows, α),
// registration reports (targets, alignment scores, comparison counts) and
// post-registration answers must be byte-identical at every shard count —
// sharding only changes how catalog work is partitioned and fanned, never
// what it computes.

// shardCountBattery mirrors the relstore suite: the degenerate single
// shard, counts below and above the fixture's table count, and the default.
func shardCountBattery() []int {
	counts := []int{1, 2, 7}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 7 {
		counts = append(counts, g)
	}
	return counts
}

// fixtureQAtShards builds the fixture Q at an explicit shard count, with the
// value-overlap filter on so registration exercises the fanned
// OverlappingAttrPairs path.
func fixtureQAtShards(t *testing.T, shards int) *Q {
	t.Helper()
	opts := DefaultOptions()
	opts.Shards = shards
	opts.Parallelism = 4 // exercise the fan-out merge paths deterministically
	opts.ValueOverlapFilter = true
	q := New(opts)
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "acc"},
		relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	return q
}

// shardProbes are the keyword queries the equivalence runs compare.
var shardProbes = []string{
	"'plasma membrane' 'Kringle domain'",
	"entry 'PUB0001'",
	"term name",
	"'Zinc finger' publication",
}

// TestShardedQueryEquivalence: the same keyword workload at every shard
// count materialises byte-identical views, including while concurrent
// readers hammer the instance (run under -race: the per-shard fan-out and
// lazy index builds race real query traffic).
func TestShardedQueryEquivalence(t *testing.T) {
	want := make([]string, len(shardProbes))
	ref := fixtureQAtShards(t, 1)
	for i, probe := range shardProbes {
		v, err := ref.Query(probe)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprintView(v)
		ref.DropView(v)
	}
	for _, n := range shardCountBattery() {
		q := fixtureQAtShards(t, n)
		const readers = 6
		var wg sync.WaitGroup
		errc := make(chan error, readers)
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 2*len(shardProbes); i++ {
					k := (g + i) % len(shardProbes)
					v, err := q.Query(shardProbes[k])
					if err != nil {
						errc <- fmt.Errorf("shards=%d reader %d: %v", n, g, err)
						return
					}
					if fp := fingerprintView(v); fp != want[k] {
						errc <- fmt.Errorf("shards=%d reader %d: query %q diverged from the single-shard reference\ngot:\n%s\nwant:\n%s",
							n, g, shardProbes[k], fp, want[k])
						return
					}
					q.DropView(v)
				}
				errc <- nil
			}(g)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// fingerprintReport flattens the parts of a registration report that must
// be shard-invariant: the relations compared, every alignment's best
// confidence, and the comparison counters.
func fingerprintReport(rep *RegisterReport, stats *Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "source=%s new=%v targets=%v\n", rep.Source, rep.NewRelations, rep.TargetsCompared)
	pairs := make([]string, 0, len(rep.AlignmentsByPair))
	for k, conf := range rep.AlignmentsByPair {
		pairs = append(pairs, fmt.Sprintf("%s=%.12f", k, conf))
	}
	sort.Strings(pairs)
	fmt.Fprintf(&b, "alignments=%v\n", pairs)
	fmt.Fprintf(&b, "stats matcher=%d attr=%d unfiltered=%d\n",
		stats.BaseMatcherCalls(), stats.AttrComparisons(), stats.ColumnComparisonsUnfiltered())
	return b.String()
}

// TestShardedRegistrationEquivalence: registering the same source at every
// shard count produces identical alignment scores, identical value-overlap
// filter decisions (the comparison counters pin them), and identical
// post-registration answers.
func TestShardedRegistrationEquivalence(t *testing.T) {
	run := func(shards int) (string, string) {
		q := fixtureQAtShards(t, shards)
		if _, err := q.Query(shardProbes[1]); err != nil { // a persistent view for ViewBased targets
			t.Fatal(err)
		}
		rep, err := q.RegisterSource(jrnlTables(t), Exhaustive)
		if err != nil {
			t.Fatal(err)
		}
		v, err := q.Query("'Nature' 'PUB0001'")
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintReport(rep, &q.Stats), fingerprintView(v)
	}
	wantRep, wantView := run(1)
	for _, n := range shardCountBattery()[1:] {
		rep, view := run(n)
		if rep != wantRep {
			t.Errorf("shards=%d: registration diverged from the single-shard reference\ngot:\n%s\nwant:\n%s", n, rep, wantRep)
		}
		if view != wantView {
			t.Errorf("shards=%d: post-registration answer diverged\ngot:\n%s\nwant:\n%s", n, view, wantView)
		}
	}
}

// TestShardOptionPlumbing pins the knob itself: the catalog inherits
// Options.Shards, defaults to GOMAXPROCS, and survives SetParallelism.
func TestShardOptionPlumbing(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 5
	q := New(opts)
	if got := q.Catalog.ShardCount(); got != 5 {
		t.Errorf("ShardCount = %d, want 5", got)
	}
	q.SetParallelism(2)
	if got := q.CurrentCatalog().ShardCount(); got != 5 {
		t.Errorf("ShardCount after SetParallelism = %d, want 5", got)
	}
	if got := New(DefaultOptions()).Catalog.ShardCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default ShardCount = %d, want GOMAXPROCS", got)
	}
}
