package core

import (
	"fmt"
	"strings"
	"testing"

	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

func steinerEdgeID(i int) steiner.EdgeID { return steiner.EdgeID(i) }

// mkTable builds a table or fails the test.
func mkTable(t *testing.T, rel *relstore.Relation, rows [][]string) *relstore.Table {
	t.Helper()
	tb, err := relstore.NewTable(rel, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// fixtureTables builds a miniature GO + InterPro corpus:
//
//	go.term(acc, name)
//	ip.interpro2go(entry_ac, go_id)  FK→ip.entry
//	ip.entry(entry_ac, name)
//	ip.entry2pub(entry_ac, pub_id)   FK→ip.entry, FK→ip.pub
//	ip.pub(pub_id, title)
//
// go.term.acc ↔ ip.interpro2go.go_id have heavy value overlap but no FK —
// the alignment Q must discover.
func fixtureTables(t *testing.T) []*relstore.Table {
	t.Helper()
	var termRows, i2gRows, entryRows, e2pRows, pubRows [][]string
	names := []string{"plasma membrane", "nucleus", "cytoplasm", "ribosome",
		"mitochondrion", "golgi apparatus", "vacuole", "chloroplast",
		"lysosome", "endosome", "cytoskeleton", "cell wall"}
	for i, n := range names {
		acc := fmt.Sprintf("GO:%07d", i+1)
		termRows = append(termRows, []string{acc, n})
	}
	entryNames := []string{"Kringle domain", "Zinc finger", "Membrane protein",
		"Helicase", "Protein kinase", "Homeobox"}
	for i, n := range entryNames {
		ac := fmt.Sprintf("IPR%06d", i+1)
		entryRows = append(entryRows, []string{ac, n})
		i2gRows = append(i2gRows, []string{ac, fmt.Sprintf("GO:%07d", i+1)})
		pid := fmt.Sprintf("PUB%04d", i+1)
		e2pRows = append(e2pRows, []string{ac, pid})
		pubRows = append(pubRows, []string{pid, fmt.Sprintf("Paper about %s", n)})
	}
	return []*relstore.Table{
		mkTable(t, &relstore.Relation{Source: "go", Name: "term",
			Attributes: []relstore.Attribute{{Name: "acc"}, {Name: "name"}}}, termRows),
		mkTable(t, &relstore.Relation{Source: "ip", Name: "interpro2go",
			Attributes: []relstore.Attribute{{Name: "entry_ac"}, {Name: "go_id"}},
			ForeignKeys: []relstore.ForeignKey{
				{FromAttr: "entry_ac", ToRelation: "ip.entry", ToAttr: "entry_ac"}}}, i2gRows),
		mkTable(t, &relstore.Relation{Source: "ip", Name: "entry",
			Attributes: []relstore.Attribute{{Name: "entry_ac"}, {Name: "name"}}}, entryRows),
		mkTable(t, &relstore.Relation{Source: "ip", Name: "entry2pub",
			Attributes: []relstore.Attribute{{Name: "entry_ac"}, {Name: "pub_id"}},
			ForeignKeys: []relstore.ForeignKey{
				{FromAttr: "entry_ac", ToRelation: "ip.entry", ToAttr: "entry_ac"},
				{FromAttr: "pub_id", ToRelation: "ip.pub", ToAttr: "pub_id"}}}, e2pRows),
		mkTable(t, &relstore.Relation{Source: "ip", Name: "pub",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "title"}}}, pubRows),
	}
}

// newFixtureQ builds a Q over the fixture with the acc↔go_id association
// hand-coded (so querying across the two sources works before any matcher
// discovers it).
func newFixtureQ(t *testing.T, handCode bool) *Q {
	t.Helper()
	q := New(DefaultOptions())
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	if handCode {
		q.AddHandCodedAssociation(
			relstore.AttrRef{Relation: "go.term", Attr: "acc"},
			relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	}
	return q
}

func TestParseKeywords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"GO term name", []string{"GO", "term", "name"}},
		{"name 'plasma membrane' publication", []string{"name", "plasma membrane", "publication"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"'unclosed quote", []string{"unclosed quote"}},
		{"", nil},
	}
	for _, c := range cases {
		got := parseKeywords(c.in)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("parseKeywords(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQueryEmptyFails(t *testing.T) {
	q := newFixtureQ(t, false)
	if _, err := q.Query("   "); err == nil {
		t.Error("empty query should fail")
	}
}

func TestQuerySingleSource(t *testing.T) {
	q := newFixtureQ(t, false)
	v, err := q.Query("entry 'PUB0001'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Trees()) == 0 {
		t.Fatal("no trees found")
	}
	if v.Result() == nil || len(v.Result().Rows) == 0 {
		t.Fatal("no result rows")
	}
	if v.Alpha() <= 0 {
		t.Errorf("alpha = %v, want > 0", v.Alpha())
	}
}

func TestQueryJoinAcrossForeignKeys(t *testing.T) {
	q := newFixtureQ(t, false)
	// "Kringle" is an entry name; "PUB0001" is its pub. A tree joining
	// entry → entry2pub → pub answers both keywords.
	v, err := q.Query("'Kringle domain' 'PUB0001'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Result().Rows) == 0 {
		t.Fatal("expected joined answers")
	}
	found := false
	for _, row := range v.Result().Rows {
		joined := strings.Join(row.Values, "|")
		if strings.Contains(joined, "Kringle domain") && strings.Contains(joined, "PUB0001") {
			found = true
		}
	}
	if !found {
		t.Errorf("no row relates Kringle to PUB0001; rows: %v", v.Result().Rows)
	}
}

func TestQueryAcrossSourcesViaAssociation(t *testing.T) {
	q := newFixtureQ(t, true)
	// plasma membrane is a GO term; Kringle domain is the InterPro entry
	// mapped to GO:0000001 == plasma membrane's acc. Only the hand-coded
	// association bridges the sources.
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Result().Rows) == 0 {
		t.Fatal("association edge should enable the cross-source join")
	}
	row := strings.Join(v.Result().Rows[0].Values, "|")
	if !strings.Contains(row, "plasma membrane") || !strings.Contains(row, "Kringle domain") {
		t.Errorf("top row should relate the two keywords: %q", row)
	}
}

func TestViewRefreshAfterWeightChange(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	before := len(v.Result().Rows)
	// Raising the default weight raises all costs but should not break
	// rematerialisation.
	w := q.Graph.Weights().Clone()
	w["default"] += 1
	q.Graph.SetWeights(w)
	if err := q.Refresh(); err != nil {
		t.Fatal(err)
	}
	if len(v.Result().Rows) == 0 || before == 0 {
		t.Error("refresh lost the view contents")
	}
}

func TestTreeToQueryProducesValidSQL(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' publication")
	if err != nil {
		t.Fatal(err)
	}
	for _, cq := range v.Queries() {
		if err := cq.Validate(q.Catalog); err != nil {
			t.Errorf("invalid query: %v\nSQL: %s", err, cq.SQL())
		}
		sql := cq.SQL()
		if !strings.HasPrefix(sql, "SELECT") || !strings.Contains(sql, "_cost") {
			t.Errorf("SQL malformed: %s", sql)
		}
	}
}

func TestRegisterSourceExhaustive(t *testing.T) {
	q := newFixtureQ(t, false)
	if _, err := q.Query("term 'plasma membrane'"); err != nil {
		t.Fatal(err)
	}
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())

	// New source: a journal table whose pub identifiers overlap ip.pub.
	newTables := []*relstore.Table{mkTable(t,
		&relstore.Relation{Source: "jrnl", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
		[][]string{{"PUB0001", "Nature"}, {"PUB0002", "Science"}, {"PUB0003", "Cell"}})}

	rep, err := q.RegisterSource(newTables, Exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TargetsCompared) != 5 {
		t.Errorf("exhaustive should compare all 5 pre-existing relations, got %v", rep.TargetsCompared)
	}
	if rep.MatcherCalls != 10 { // 2 matchers × 5 targets × 1 new relation
		t.Errorf("matcher calls = %d, want 10", rep.MatcherCalls)
	}
	// pub_id ↔ ip.pub.pub_id must be among the discovered alignments.
	var found bool
	for pair := range rep.AlignmentsByPair {
		if strings.Contains(pair, "jrnl.journal.pub_id") && strings.Contains(pair, "ip.pub.pub_id") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected pub_id alignment, got %v", rep.AlignmentsByPair)
	}
}

func TestRegisterSourceValidation(t *testing.T) {
	q := newFixtureQ(t, false)
	if _, err := q.RegisterSource(nil, Exhaustive); err == nil {
		t.Error("empty registration should fail")
	}
	mixed := []*relstore.Table{
		mkTable(t, &relstore.Relation{Source: "a", Name: "r1",
			Attributes: []relstore.Attribute{{Name: "x"}}}, nil),
		mkTable(t, &relstore.Relation{Source: "b", Name: "r2",
			Attributes: []relstore.Attribute{{Name: "x"}}}, nil),
	}
	if _, err := q.RegisterSource(mixed, Exhaustive); err == nil {
		t.Error("mixed-source registration should fail")
	}
	dup := []*relstore.Table{mkTable(t, &relstore.Relation{Source: "go", Name: "other",
		Attributes: []relstore.Attribute{{Name: "x"}}}, nil)}
	if _, err := q.RegisterSource(dup, Exhaustive); err == nil {
		t.Error("re-registering an existing source should fail")
	}
}

func TestViewBasedAlignerPrunesTargets(t *testing.T) {
	// Pruning requires the view's k result slots to be full (otherwise any
	// new answer could enter and the radius is rightly unbounded), so use a
	// small k the fixture satisfies.
	opts := DefaultOptions()
	opts.K = 2
	q := New(opts)
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	// View over the publications corner of the graph.
	if v, err := q.Query("'PUB0001' title"); err != nil {
		t.Fatal(err)
	} else if len(v.Result().Rows) < v.K {
		t.Fatalf("fixture view must fill its %d slots, has %d rows", v.K, len(v.Result().Rows))
	}
	q.AddMatcher(meta.New())

	newTables := []*relstore.Table{mkTable(t,
		&relstore.Relation{Source: "jrnl", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
		[][]string{{"PUB0001", "Nature"}})}

	rep, err := q.RegisterSource(newTables, ViewBased)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TargetsCompared) == 0 {
		t.Fatal("neighbourhood should contain at least ip.pub")
	}
	if len(rep.TargetsCompared) >= 5 {
		t.Errorf("view-based should prune targets, compared %v", rep.TargetsCompared)
	}
	foundPub := false
	for _, r := range rep.TargetsCompared {
		if r == "ip.pub" {
			foundPub = true
		}
	}
	if !foundPub {
		t.Errorf("ip.pub must be in the α-neighbourhood, got %v", rep.TargetsCompared)
	}
}

func TestViewBasedMatchesExhaustiveOnViewResults(t *testing.T) {
	// The Algorithm 2 guarantee: same top-k view contents as EXHAUSTIVE.
	mkQ := func() *Q {
		q := newFixtureQ(t, false)
		q.AddMatcher(meta.New())
		return q
	}
	newTables := func() []*relstore.Table {
		return []*relstore.Table{mkTable(t,
			&relstore.Relation{Source: "jrnl", Name: "journal",
				Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
			[][]string{{"PUB0001", "Nature"}, {"PUB0002", "Science"}})}
	}

	qe := mkQ()
	ve, err := qe.Query("'PUB0001' title")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qe.RegisterSource(newTables(), Exhaustive); err != nil {
		t.Fatal(err)
	}

	qv := mkQ()
	vv, err := qv.Query("'PUB0001' title")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qv.RegisterSource(newTables(), ViewBased); err != nil {
		t.Fatal(err)
	}

	re := renderRows(ve)
	rv := renderRows(vv)
	if re != rv {
		t.Errorf("view contents diverge:\nEXHAUSTIVE:\n%s\nVIEWBASED:\n%s", re, rv)
	}
	if qv.Stats.AttrComparisons() > qe.Stats.AttrComparisons() {
		t.Errorf("view-based did more work: %d vs %d",
			qv.Stats.AttrComparisons(), qe.Stats.AttrComparisons())
	}
}

func renderRows(v *View) string {
	var b strings.Builder
	k := v.K
	if k > len(v.Result().Rows) {
		k = len(v.Result().Rows)
	}
	for _, r := range v.Result().Rows[:k] {
		fmt.Fprintf(&b, "%v\n", r.Values)
	}
	return b.String()
}

func TestPreferentialAlignerHonoursBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.PreferentialBudget = 2
	q := New(opts)
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	q.AddMatcher(meta.New())
	newTables := []*relstore.Table{mkTable(t,
		&relstore.Relation{Source: "jrnl", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}}}, nil)}
	rep, err := q.RegisterSource(newTables, Preferential)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TargetsCompared) != 2 {
		t.Errorf("budget 2 should compare 2 targets, got %v", rep.TargetsCompared)
	}
}

func TestValueOverlapFilterReducesComparisons(t *testing.T) {
	run := func(filter bool) int {
		opts := DefaultOptions()
		opts.ValueOverlapFilter = filter
		q := New(opts)
		if err := q.AddTables(fixtureTables(t)...); err != nil {
			t.Fatal(err)
		}
		q.AddMatcher(meta.New())
		newTables := []*relstore.Table{mkTable(t,
			&relstore.Relation{Source: "jrnl", Name: "journal",
				Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
			[][]string{{"PUB0001", "Nature"}})}
		if _, err := q.RegisterSource(newTables, Exhaustive); err != nil {
			t.Fatal(err)
		}
		return q.Stats.AttrComparisons()
	}
	unfiltered := run(false)
	filtered := run(true)
	if filtered >= unfiltered {
		t.Errorf("filter should cut comparisons: %d vs %d", filtered, unfiltered)
	}
	if filtered == 0 {
		t.Error("pub_id overlap should leave at least one comparison")
	}
}

func TestFeedbackFavorsTargetTree(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Trees()) < 2 {
		t.Skip("fixture produced fewer than 2 trees; nothing to separate")
	}
	// Favour the SECOND-ranked tree. A single online MIRA step only
	// separates the target from the CURRENT k-best set — new trees can
	// surface — so, exactly as the paper replays its feedback log (§5.2.2),
	// repeat the feedback until the ranking converges.
	target := v.Trees()[1]
	for i := 0; i < 10; i++ {
		if err := q.FeedbackFavorTree(v, target); err != nil {
			t.Fatal(err)
		}
		if len(v.Trees()) > 0 && v.Trees()[0].Key() == target.Key() {
			break
		}
	}
	if len(v.Trees()) == 0 {
		t.Fatal("view lost trees after feedback")
	}
	if v.Trees()[0].Key() != target.Key() {
		t.Errorf("target tree should rank first after repeated feedback; got %s want %s",
			v.Trees()[0].Key(), target.Key())
	}
}

func TestFeedbackKeepsEdgeCostsPositive(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Trees()) < 2 {
		t.Skip("need at least 2 trees")
	}
	for i := 0; i < 5; i++ { // repeated feedback (the paper replays logs)
		if err := q.FeedbackFavorTree(v, v.Trees()[len(v.Trees())-1]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < q.Graph.NumEdges(); i++ {
		e := q.Graph.Edge(steinerEdgeID(i))
		cost := q.Graph.Cost(steinerEdgeID(i))
		if e.Fixed {
			if cost != 0 {
				t.Errorf("fixed edge %d cost %v", i, cost)
			}
			continue
		}
		if cost <= 0 {
			t.Errorf("learnable edge %d cost %v, want > 0", i, cost)
		}
	}
}

func TestFeedbackRowValidAndInvalid(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Result().Rows) == 0 {
		t.Fatal("no rows to give feedback on")
	}
	if err := q.FeedbackRow(v, 0, FeedbackValid); err != nil {
		t.Fatal(err)
	}
	if err := q.FeedbackRow(v, 0, FeedbackInvalid); err != nil {
		t.Fatal(err)
	}
	if err := q.FeedbackRow(v, 10_000, FeedbackValid); err == nil {
		t.Error("out-of-range row should fail")
	}
}

func TestGoldEdgeGap(t *testing.T) {
	q := newFixtureQ(t, false)
	q.AddMatcher(meta.New())
	newTables := []*relstore.Table{mkTable(t,
		&relstore.Relation{Source: "jrnl", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "qqqq"}}},
		[][]string{{"PUB0001", "x"}})}
	if _, err := q.RegisterSource(newTables, Exhaustive); err != nil {
		t.Fatal(err)
	}
	gold := map[string]bool{
		CanonicalPair("jrnl.journal.pub_id", "ip.pub.pub_id"): true,
	}
	gAvg, ngAvg, gN, _ := q.GoldEdgeGap(gold)
	if gN != 1 {
		t.Fatalf("gold edge not found in graph (gN=%d)", gN)
	}
	if gAvg <= 0 {
		t.Errorf("gold avg cost = %v", gAvg)
	}
	_ = ngAvg // non-gold may be empty in this tiny setup
}

func TestCountTargetComparisons(t *testing.T) {
	opts := DefaultOptions()
	opts.K = 2
	q := New(opts)
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Query("'PUB0001' title"); err != nil {
		t.Fatal(err)
	}
	newRel := &relstore.Relation{Source: "x", Name: "r",
		Attributes: []relstore.Attribute{{Name: "a"}, {Name: "b"}}}
	ex := q.CountTargetComparisons([]*relstore.Relation{newRel}, Exhaustive)
	vb := q.CountTargetComparisons([]*relstore.Relation{newRel}, ViewBased)
	pf := q.CountTargetComparisons([]*relstore.Relation{newRel}, Preferential)
	if ex != 2*10 { // 5 relations × 2 attrs each × 2 new attrs
		t.Errorf("exhaustive comparisons = %d, want 20", ex)
	}
	if vb >= ex {
		t.Errorf("view-based (%d) should be below exhaustive (%d)", vb, ex)
	}
	if pf > ex {
		t.Errorf("preferential (%d) should not exceed exhaustive (%d)", pf, ex)
	}
}

func TestAssocCostThresholdPrunesTrees(t *testing.T) {
	opts := DefaultOptions()
	opts.AssocCostThreshold = 1e-9 // prune every association
	q := New(opts)
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "acc"},
		relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range v.Trees() {
		for _, eid := range tr.Edges {
			if v.Edge(eid).Kind == searchgraph.EdgeAssociation {
				t.Errorf("tree uses association edge despite threshold")
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o.K != d.K || o.TopY != d.TopY || o.MatchThreshold != d.MatchThreshold {
		t.Errorf("withDefaults: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{K: 9}.withDefaults()
	if o2.K != 9 {
		t.Errorf("explicit K overwritten: %+v", o2)
	}
}

func TestStrategyStrings(t *testing.T) {
	if Exhaustive.String() != "EXHAUSTIVE" ||
		ViewBased.String() != "VIEWBASEDALIGNER" ||
		Preferential.String() != "PREFERENTIALALIGNER" {
		t.Error("strategy names wrong")
	}
}
