package core

import (
	"fmt"

	"qint/internal/learning"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

// minLearnableCost is the floor Algorithm 4's positivity constraint aims
// for: after every update the cheapest learnable edge costs at least this.
const minLearnableCost = 0.01

// FeedbackKind classifies an annotation on one view answer (paper §4).
type FeedbackKind int

const (
	// FeedbackValid marks an answer as clearly correct: its originating
	// query is constrained to cost no more than the current top answer.
	FeedbackValid FeedbackKind = iota
	// FeedbackInvalid marks an answer as clearly implausible: every other
	// retained query is preferred over its originating query.
	FeedbackInvalid
)

// FeedbackRow applies feedback on the view answer at rowIdx of the view's
// current ranked result. Q generalises the tuple to the query tree that
// produced it via provenance, converts the annotation into MIRA margin
// constraints, updates the weight vector, re-enforces edge-cost positivity,
// and refreshes all views.
func (q *Q) FeedbackRow(v *View, rowIdx int, kind FeedbackKind) error {
	if v.Result == nil || rowIdx < 0 || rowIdx >= len(v.Result.Rows) {
		return fmt.Errorf("core: feedback row %d out of range", rowIdx)
	}
	branch := v.Result.Rows[rowIdx].Branch
	// Branch indexes v.Queries; recover the producing tree by matching the
	// query back to its tree position (queries and trees run in parallel,
	// minus signature-deduplicated trees).
	tree, err := q.treeForQuery(v, branch)
	if err != nil {
		return err
	}
	switch kind {
	case FeedbackValid:
		return q.FeedbackFavorTree(v, tree)
	default:
		// Prefer the best tree that is not the offending one.
		for _, t := range v.Trees {
			if t.Key() != tree.Key() {
				return q.FeedbackFavorTree(v, t)
			}
		}
		return nil // nothing else to promote
	}
}

func (q *Q) treeForQuery(v *View, branch int) (steiner.Tree, error) {
	if branch < 0 || branch >= len(v.Queries) {
		return steiner.Tree{}, fmt.Errorf("core: branch %d out of range", branch)
	}
	sig := v.Queries[branch].Signature()
	for _, t := range v.Trees {
		cq, err := q.treeToQuery(t)
		if err != nil {
			continue
		}
		if cq.Signature() == sig {
			return t, nil
		}
	}
	return steiner.Tree{}, fmt.Errorf("core: no tree for branch %d", branch)
}

// FeedbackFavorTree is the core of Algorithm 4 (ONLINELEARNER): the user's
// feedback names a target tree Tr for the view's keyword set Sr; the k-best
// list B is recomputed under current weights, MIRA finds the minimal weight
// change under which Tr beats every T ∈ B by margin L(Tr, T), the default
// weight is shifted to keep all learnable edge costs positive, and views are
// refreshed under the new costs.
func (q *Q) FeedbackFavorTree(v *View, target steiner.Tree) error {
	return q.FeedbackPreferTrees(v, target, q.KBestTrees(v, v.K))
}

// FeedbackPreferTrees applies ranking feedback (paper §4: "tuple t_x should
// be scored higher than t_y"): the target tree is constrained to cost less
// than each tree in worse, by the structural-loss margin. Callers that know
// several answers are correct (a user may mark more than one answer valid)
// pass only the genuinely-worse trees, so good alternatives are not pushed
// away while promoting the target.
func (q *Q) FeedbackPreferTrees(v *View, target steiner.Tree, worse []steiner.Tree) error {
	q.Graph.ActivateKeywords(v.terminals)
	competitors := make([]learning.TreeExample, 0, len(worse))
	for _, t := range worse {
		competitors = append(competitors, q.treeExample(t))
	}
	// Algorithm 4 line 11: every learnable edge's cost stays positive. The
	// constraints are solved inside the same QP as the margins, so the
	// solver redistributes weight instead of driving one edge far negative
	// (which would otherwise demand a global offset that inflates every
	// edge alike and destroys the α-neighbourhood pruning of §3.3).
	w := q.mira.UpdateWithPositivity(
		q.Graph.Weights(), q.treeExample(target), competitors,
		q.learnableEdgeFeatures(), minLearnableCost)
	q.Graph.SetWeights(w)
	return q.Refresh()
}

// KBestTrees computes the k lowest-cost trees for a view's keyword set
// under the CURRENT weights (the view's stored trees may be stale and are
// capped at the view's own k). Used by feedback simulators that inspect a
// deeper result page than the view retains.
func (q *Q) KBestTrees(v *View, k int) []steiner.Tree {
	q.Graph.ActivateKeywords(v.terminals)
	if q.opts.UseApproxSteiner {
		return q.Graph.G.ApproxTopKSteiner(v.terminals, k)
	}
	return q.Graph.G.TopKSteiner(v.terminals, k)
}

// treeExample converts a Steiner tree into a learning example: features are
// the sum over learnable edges; edge keys cover all edges (fixed ones too)
// so the symmetric loss reflects full structural difference.
func (q *Q) treeExample(t steiner.Tree) learning.TreeExample {
	keys := make([]string, 0, len(t.Edges))
	feats := make([]learning.Vector, 0, len(t.Edges))
	for _, eid := range t.Edges {
		e := q.Graph.Edge(eid)
		keys = append(keys, fmt.Sprintf("e%d", eid))
		if e.Fixed {
			feats = append(feats, nil)
		} else {
			feats = append(feats, e.Features)
		}
	}
	return learning.NewTreeExample(keys, feats)
}

// learnableEdgeFeatures collects every learnable edge's feature vector for
// the positivity constraints of Algorithm 4 (the fixed zero-cost edges are
// the exempt set A).
func (q *Q) learnableEdgeFeatures() []learning.Vector {
	out := make([]learning.Vector, 0, q.Graph.NumEdges())
	for i := 0; i < q.Graph.NumEdges(); i++ {
		e := q.Graph.Edge(steiner.EdgeID(i))
		if e.Fixed {
			continue
		}
		out = append(out, e.Features)
	}
	return out
}

// GoldEdgeGap reports the average current cost of association edges whose
// attribute pairs are in gold versus those that are not — the quantity
// plotted in Figure 12. Pairs are canonicalised by sorted string form.
func (q *Q) GoldEdgeGap(gold map[string]bool) (goldAvg, nonGoldAvg float64, goldN, nonGoldN int) {
	for _, a := range q.Graph.AssociationList() {
		key := canonicalPair(a.A.String(), a.B.String())
		c := q.Graph.Cost(a.ID)
		if gold[key] {
			goldAvg += c
			goldN++
		} else {
			nonGoldAvg += c
			nonGoldN++
		}
	}
	if goldN > 0 {
		goldAvg /= float64(goldN)
	}
	if nonGoldN > 0 {
		nonGoldAvg /= float64(nonGoldN)
	}
	return goldAvg, nonGoldAvg, goldN, nonGoldN
}

func canonicalPair(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "~" + b
}

// CanonicalPair exposes the canonical "a~b" form of an attribute pair for
// building gold-standard sets.
func CanonicalPair(a, b string) string { return canonicalPair(a, b) }

var _ = searchgraph.EdgeAssociation // kinds used above
