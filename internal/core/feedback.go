package core

import (
	"errors"
	"fmt"

	"qint/internal/learning"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

// ErrRowOutOfRange reports feedback naming a row the view's CURRENT
// materialisation does not have. This is not always a malformed request:
// a concurrent weight update rematerialises every view, so the index a
// client read moments ago can go stale — even a previously non-empty view
// can re-rank to fewer rows. Callers should re-read the view and resubmit
// against what it shows now (the HTTP layer maps this to 409 Conflict).
var ErrRowOutOfRange = errors.New("core: feedback row out of range")

// minLearnableCost is the floor Algorithm 4's positivity constraint aims
// for: after every update the cheapest learnable edge costs at least this.
const minLearnableCost = 0.01

// FeedbackKind classifies an annotation on one view answer (paper §4).
type FeedbackKind int

const (
	// FeedbackValid marks an answer as clearly correct: its originating
	// query is constrained to cost no more than the current top answer.
	FeedbackValid FeedbackKind = iota
	// FeedbackInvalid marks an answer as clearly implausible: every other
	// retained query is preferred over its originating query.
	FeedbackInvalid
)

// FeedbackRow applies feedback on the view answer at rowIdx of the view's
// current ranked result. Q generalises the tuple to the query tree that
// produced it via provenance, converts the annotation into MIRA margin
// constraints, updates the weight vector, re-enforces edge-cost positivity,
// and refreshes all views.
//
// Ordering semantics: the row index is interpreted against the view's
// CURRENT materialisation — the one whose rows the caller inspected. In
// normal operation every write refreshes every view, so the current
// materialisation always reflects the latest published state; a view
// created concurrently with a write may briefly trail by one generation,
// and its feedback is interpreted against what it actually shows (then the
// update's refresh brings it current).
func (q *Q) FeedbackRow(v *View, rowIdx int, kind FeedbackKind) error {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	mat := v.mat.Load()
	if mat == nil || mat.result == nil || rowIdx < 0 || rowIdx >= len(mat.result.Rows) {
		rows := 0
		if mat != nil && mat.result != nil {
			rows = len(mat.result.Rows)
		}
		return fmt.Errorf("%w: row %d, view currently has %d rows", ErrRowOutOfRange, rowIdx, rows)
	}
	branch := mat.result.Rows[rowIdx].Branch
	// Branch indexes mat.queries; recover the producing tree by matching
	// the query back to its tree position (queries and trees run in
	// parallel, minus signature-deduplicated trees).
	tree, err := treeForQuery(mat, branch)
	if err != nil {
		return err
	}
	switch kind {
	case FeedbackValid:
		return q.feedbackFavorLocked(mat, tree, v.K)
	default:
		// Prefer the best tree that is not the offending one.
		for _, t := range mat.trees {
			if t.Key() != tree.Key() {
				return q.feedbackFavorLocked(mat, t, v.K)
			}
		}
		return nil // nothing else to promote
	}
}

// treeForQuery resolves a branch index back to the Steiner tree whose
// translation produced it, by query signature.
func treeForQuery(mat *viewMat, branch int) (steiner.Tree, error) {
	if branch < 0 || branch >= len(mat.queries) {
		return steiner.Tree{}, fmt.Errorf("core: branch %d out of range", branch)
	}
	sig := mat.queries[branch].Signature()
	for _, t := range mat.trees {
		cq, err := treeToQuery(mat.st, mat.ov, t)
		if err != nil {
			continue
		}
		if cq.Signature() == sig {
			return t, nil
		}
	}
	return steiner.Tree{}, fmt.Errorf("core: no tree for branch %d", branch)
}

// FeedbackFavorTree is the core of Algorithm 4 (ONLINELEARNER): the user's
// feedback names a target tree Tr for the view's keyword set Sr; the k-best
// list B is recomputed under current weights, MIRA finds the minimal weight
// change under which Tr beats every T ∈ B by margin L(Tr, T), the default
// weight is shifted to keep all learnable edge costs positive, and views are
// refreshed under the new costs. The target tree must come from the view's
// current materialisation (Trees or KBestTrees).
func (q *Q) FeedbackFavorTree(v *View, target steiner.Tree) error {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	mat := v.mat.Load()
	if mat == nil {
		return fmt.Errorf("core: feedback on unmaterialised view")
	}
	return q.feedbackFavorLocked(mat, target, v.K)
}

func (q *Q) feedbackFavorLocked(mat *viewMat, target steiner.Tree, k int) error {
	return q.feedbackPreferLocked(mat, target, kBestOf(q.opts.UseApproxSteiner, mat, k))
}

// FeedbackPreferTrees applies ranking feedback (paper §4: "tuple t_x should
// be scored higher than t_y"): the target tree is constrained to cost less
// than each tree in worse, by the structural-loss margin. Callers that know
// several answers are correct (a user may mark more than one answer valid)
// pass only the genuinely-worse trees, so good alternatives are not pushed
// away while promoting the target. All trees must come from the view's
// current materialisation (Trees or KBestTrees): their node and edge ids
// are resolved against its overlay.
func (q *Q) FeedbackPreferTrees(v *View, target steiner.Tree, worse []steiner.Tree) error {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	mat := v.mat.Load()
	if mat == nil {
		return fmt.Errorf("core: feedback on unmaterialised view")
	}
	return q.feedbackPreferLocked(mat, target, worse)
}

func (q *Q) feedbackPreferLocked(mat *viewMat, target steiner.Tree, worse []steiner.Tree) error {
	// Captured BEFORE the keyword-weight seeding below: the WAL logs the
	// complete effect of this feedback step as one weight-vector delta
	// (seeding + MIRA update), so replaying it against the pre-feedback
	// vector reproduces the post-feedback vector exactly — without
	// re-running MIRA, which would need the overlays and result sets.
	var entryWeights learning.Vector
	if q.persist != nil {
		entryWeights = q.Graph.Weights().Clone()
	}
	competitors := make([]learning.TreeExample, 0, len(worse))
	for _, t := range worse {
		competitors = append(competitors, treeExample(mat.ov, t))
	}
	// The per-edge keyword weights (w_2, w_3, … of Figure 3) live in
	// overlays until learning touches them: seed every live view's
	// keyword-edge features at the base value before the update — matching
	// the pre-overlay design, where every expanded keyword edge installed
	// its weight at query time — so the margin features and the positivity
	// constraints below price keyword edges from the same starting point.
	mats := q.liveMatsLocked(mat)
	for _, m := range mats {
		for _, e := range m.ov.KeywordEdges() {
			for feat := range e.Features {
				if feat != "mismatch" {
					q.Graph.EnsureWeight(feat, searchgraph.KwEdgeBaseWeight)
				}
			}
		}
	}
	// Algorithm 4 line 11: every learnable edge's cost stays positive. The
	// constraints are solved inside the same QP as the margins, so the
	// solver redistributes weight instead of driving one edge far negative
	// (which would otherwise demand a global offset that inflates every
	// edge alike and destroys the α-neighbourhood pruning of §3.3).
	w := q.mira.UpdateWithPositivity(
		q.Graph.Weights(), treeExample(mat.ov, target), competitors,
		q.learnableEdgeFeatures(mats), minLearnableCost)
	// Log-then-publish: the delta is durable before SetWeights installs the
	// new vector and refreshLocked publishes the regraded generation.
	if q.persist != nil {
		if d := searchgraph.DiffWeights(entryWeights, w); !d.Empty() {
			if err := q.logMutationLocked(walKindWeights, d); err != nil {
				return err
			}
		}
	}
	q.Graph.SetWeights(w)
	return q.refreshLocked()
}

// liveMatsLocked collects the current materialisation of every persistent
// view (creation order), ensuring primary is included even if its view was
// dropped from the registry.
func (q *Q) liveMatsLocked(primary *viewMat) []*viewMat {
	var mats []*viewMat
	seen := false
	for _, v := range q.Views() {
		if m := v.mat.Load(); m != nil {
			mats = append(mats, m)
			if m == primary {
				seen = true
			}
		}
	}
	if !seen && primary != nil {
		mats = append(mats, primary)
	}
	return mats
}

// KBestTrees computes the k lowest-cost trees for a view's keyword set over
// its current materialisation (capped deeper than the view's own k if
// asked). Used by feedback simulators that inspect a deeper result page
// than the view retains; the returned trees resolve against the same
// overlay as the view's own trees, so they can be passed straight to
// FeedbackPreferTrees.
//
// The page is tie-inclusive: when several trees tie at the k-th cost, all
// of them are returned (the list may exceed k). The k-th rank is
// ill-defined under a cost tie — which tied tree the search enumerates
// first is arbitrary — so feedback judging "the top-k page" must see every
// answer tied at the boundary, or the learning trajectory would depend on
// enumeration order rather than on costs.
func (q *Q) KBestTrees(v *View, k int) []steiner.Tree {
	mat := v.mat.Load()
	if mat == nil {
		return nil
	}
	return kBestOf(q.opts.UseApproxSteiner, mat, k)
}

// kBestTieSlack is how many extra trees beyond k the tie-inclusive page
// fetches to discover boundary ties.
const kBestTieSlack = 8

func kBestOf(approx bool, mat *viewMat, k int) []steiner.Tree {
	if k <= 0 {
		return nil
	}
	fetch := func(n int) []steiner.Tree {
		if approx {
			return steiner.ApproxTopKSteinerOn(mat.ov.View(), mat.terminals, n)
		}
		return steiner.TopKSteinerOn(mat.ov.View(), mat.terminals, n)
	}
	trees := fetch(k + kBestTieSlack)
	if len(trees) <= k {
		return trees
	}
	kth := trees[k-1].Cost
	cut := k
	for cut < len(trees) && trees[cut].Cost <= kth+1e-9 {
		cut++
	}
	return trees[:cut]
}

// treeExample converts a Steiner tree into a learning example: features are
// the sum over learnable edges; edge keys cover all edges (fixed ones too)
// so the symmetric loss reflects full structural difference.
func treeExample(ov *searchgraph.Overlay, t steiner.Tree) learning.TreeExample {
	keys := make([]string, 0, len(t.Edges))
	feats := make([]learning.Vector, 0, len(t.Edges))
	for _, eid := range t.Edges {
		e := ov.Edge(eid)
		keys = append(keys, fmt.Sprintf("e%d", eid))
		if e.Fixed {
			feats = append(feats, nil)
		} else {
			feats = append(feats, e.Features)
		}
	}
	return learning.NewTreeExample(keys, feats)
}

// learnableEdgeFeatures collects every learnable edge's feature vector for
// the positivity constraints of Algorithm 4 (the fixed zero-cost edges are
// the exempt set A): the base graph's learnable edges plus every live
// view's overlay keyword edges — the same edge population the pre-overlay
// design kept in the one shared graph.
func (q *Q) learnableEdgeFeatures(mats []*viewMat) []learning.Vector {
	out := make([]learning.Vector, 0, q.Graph.NumEdges())
	for i := 0; i < q.Graph.NumEdges(); i++ {
		e := q.Graph.Edge(steiner.EdgeID(i))
		if e.Fixed {
			continue
		}
		out = append(out, e.Features)
	}
	seen := make(map[string]bool)
	for _, m := range mats {
		for _, e := range m.ov.KeywordEdges() {
			// One constraint per distinct keyword edge: views sharing a
			// keyword produce identical feature vectors for the same match.
			var key string
			for feat := range e.Features {
				if feat != "mismatch" {
					key = feat
					break
				}
			}
			if key != "" && seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, e.Features)
		}
	}
	return out
}

// GoldEdgeGap reports the average current cost of association edges whose
// attribute pairs are in gold versus those that are not — the quantity
// plotted in Figure 12. Pairs are canonicalised by sorted string form.
func (q *Q) GoldEdgeGap(gold map[string]bool) (goldAvg, nonGoldAvg float64, goldN, nonGoldN int) {
	for _, a := range q.Graph.AssociationList() {
		key := canonicalPair(a.A.String(), a.B.String())
		c := q.Graph.Cost(a.ID)
		if gold[key] {
			goldAvg += c
			goldN++
		} else {
			nonGoldAvg += c
			nonGoldN++
		}
	}
	if goldN > 0 {
		goldAvg /= float64(goldN)
	}
	if nonGoldN > 0 {
		nonGoldAvg /= float64(nonGoldN)
	}
	return goldAvg, nonGoldAvg, goldN, nonGoldN
}

func canonicalPair(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "~" + b
}

// CanonicalPair exposes the canonical "a~b" form of an attribute pair for
// building gold-standard sets.
func CanonicalPair(a, b string) string { return canonicalPair(a, b) }
