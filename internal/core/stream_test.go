package core

import (
	"reflect"
	"testing"

	"qint/internal/datasets"
	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
)

// This file pins the streaming tentpole at the pipeline level: whole views —
// trees, query signatures, unified columns, ranked rows with provenance, α —
// must be byte-identical whether branches execute through the streaming
// iterator pipeline (the default), the materialised reference executor
// (Options.MaterialisedExec), or the top-k-pruned streamed union
// (Options.TopKPrune, compared on the provably-identical top-k prefix).

// streamCorpus is one dataset of the executor-equivalence suite, with a
// builder parameterised over Options so the executor knobs can be set at
// construction time (they are wired into the catalog by New).
type streamCorpus struct {
	name    string
	build   func(t *testing.T, mutate func(*Options)) *Q
	queries []string
}

func streamCorpora() []streamCorpus {
	return []streamCorpus{
		{
			name: "gbco",
			build: func(t *testing.T, mutate func(*Options)) *Q {
				opts := DefaultOptions()
				mutate(&opts)
				q := New(opts)
				q.AddMatcher(meta.New())
				if err := q.AddTables(datasets.GBCO().Tables...); err != nil {
					t.Fatal(err)
				}
				return q
			},
			queries: func() []string {
				var out []string
				for _, trial := range datasets.GBCO().Trials {
					out = append(out, trial.Keywords)
				}
				return out
			}(),
		},
		{
			name: "synthetic",
			build: func(t *testing.T, mutate func(*Options)) *Q {
				opts := DefaultOptions()
				mutate(&opts)
				q := New(opts)
				q.AddMatcher(meta.New())
				q.AddMatcher(mad.New())
				if err := q.AddTables(syntheticCorpus(t)...); err != nil {
					t.Fatal(err)
				}
				q.AlignAllPairs()
				return q
			},
			queries: []string{"alice widget", "bob gadget", "springfield sprocket", "'C1' item"},
		},
	}
}

// TestMaterialisedExecEquivalence materialises every dataset query once on a
// default (streaming) instance and once with the reference materialised
// executor forced, and demands byte-identical views.
func TestMaterialisedExecEquivalence(t *testing.T) {
	for _, c := range streamCorpora() {
		t.Run(c.name, func(t *testing.T) {
			stream := c.build(t, func(o *Options) {})
			mat := c.build(t, func(o *Options) { o.MaterialisedExec = true })
			for _, kw := range c.queries {
				vs, err := stream.Query(kw)
				if err != nil {
					t.Fatalf("streaming query %q: %v", kw, err)
				}
				vm, err := mat.Query(kw)
				if err != nil {
					t.Fatalf("materialised query %q: %v", kw, err)
				}
				fs, fm := fingerprintView(vs), fingerprintView(vm)
				if fs != fm {
					t.Errorf("query %q: streaming and materialised views differ\nstreaming:\n%s\nmaterialised:\n%s", kw, fs, fm)
				}
				if len(vs.Trees()) == 0 {
					t.Errorf("query %q produced no trees; equivalence is vacuous", kw)
				}
			}
		})
	}
}

// TestPlannerOffEquivalence pins the cost-based planner at the pipeline
// level: whole views must be byte-identical between the default instance
// (planner on — greedy join order, cross-branch CSE) and one with
// Options.PlannerOff, and the default instance must accumulate PlanStats
// while the unplanned one stays at zero.
func TestPlannerOffEquivalence(t *testing.T) {
	for _, c := range streamCorpora() {
		t.Run(c.name, func(t *testing.T) {
			planned := c.build(t, func(o *Options) {})
			unplanned := c.build(t, func(o *Options) { o.PlannerOff = true })
			for _, kw := range c.queries {
				vp, err := planned.Query(kw)
				if err != nil {
					t.Fatalf("planned query %q: %v", kw, err)
				}
				vu, err := unplanned.Query(kw)
				if err != nil {
					t.Fatalf("unplanned query %q: %v", kw, err)
				}
				fp, fu := fingerprintView(vp), fingerprintView(vu)
				if fp != fu {
					t.Errorf("query %q: planned and unplanned views differ\nplanned:\n%s\nunplanned:\n%s", kw, fp, fu)
				}
				if len(vp.Trees()) == 0 {
					t.Errorf("query %q produced no trees; equivalence is vacuous", kw)
				}
			}
			if st := planned.PlanStats(); st.BranchesPlanned == 0 {
				t.Error("planned instance accumulated no PlanStats")
			}
			if st := unplanned.PlanStats(); st != (PlanStats{}) {
				t.Errorf("unplanned instance accumulated PlanStats %+v, want zero", st)
			}
		})
	}
}

// TestTopKPruneEquivalence compares a pruned instance against the default:
// everything except the untaken result tail must agree — trees, branch
// queries, columns, α, and the ranked rows up to k, which is exactly what
// pruning promises (the tail is never computed, by design).
func TestTopKPruneEquivalence(t *testing.T) {
	for _, c := range streamCorpora() {
		t.Run(c.name, func(t *testing.T) {
			full := c.build(t, func(o *Options) {})
			pruned := c.build(t, func(o *Options) { o.TopKPrune = true })
			anyRows := false
			for _, kw := range c.queries {
				vf, err := full.Query(kw)
				if err != nil {
					t.Fatalf("full query %q: %v", kw, err)
				}
				vp, err := pruned.Query(kw)
				if err != nil {
					t.Fatalf("pruned query %q: %v", kw, err)
				}
				mf, mp := vf.Current(), vp.Current()
				if mf.Alpha != mp.Alpha {
					t.Errorf("query %q: α diverged under pruning: %v vs %v", kw, mf.Alpha, mp.Alpha)
				}
				if len(mf.Trees) != len(mp.Trees) {
					t.Fatalf("query %q: tree count diverged: %d vs %d", kw, len(mf.Trees), len(mp.Trees))
				}
				for i := range mf.Trees {
					if mf.Trees[i].Key() != mp.Trees[i].Key() || mf.Trees[i].Cost != mp.Trees[i].Cost {
						t.Errorf("query %q: tree %d diverged", kw, i)
					}
				}
				if len(mf.Queries) != len(mp.Queries) {
					t.Fatalf("query %q: branch count diverged", kw)
				}
				for i := range mf.Queries {
					if mf.Queries[i].Signature() != mp.Queries[i].Signature() {
						t.Errorf("query %q: branch %d signature diverged", kw, i)
					}
				}
				if !reflect.DeepEqual(mf.Result.Columns, mp.Result.Columns) {
					t.Errorf("query %q: unified columns diverged: %v vs %v", kw, mf.Result.Columns, mp.Result.Columns)
				}
				want := mf.Result.TopK(vf.K)
				got := mp.Result.Rows
				if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("query %q: pruned rows are not the full result's top-%d prefix\ngot:  %v\nwant: %v",
						kw, vf.K, got, want)
				}
				if len(want) > 0 {
					anyRows = true
				}
			}
			if !anyRows {
				t.Error("no query produced rows; prefix equivalence is vacuous")
			}
		})
	}
}
