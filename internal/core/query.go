package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"qint/internal/obs"
	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

// View is a persistent keyword-search view (paper §2.3): the definition
// (keywords, k) plus the current materialisation (top-k query trees, their
// conjunctive queries and the ranked, unioned result). Views are refreshed
// whenever search-graph maintenance changes costs or topology.
//
// The materialisation is swapped atomically: readers (HTTP handlers, other
// goroutines) call Trees/Queries/Result/Alpha and get one coherent
// generation, while a concurrent Refresh builds the next generation aside
// and publishes it with a pointer store. Keywords and K are immutable after
// creation.
type View struct {
	Keywords []string
	K        int

	mat atomic.Pointer[viewMat]
}

// viewMat is one immutable materialisation of a view: everything computed
// from one published state generation. Its trees and queries reference node
// and edge ids of its own overlay (ov), which extends the generation's
// graph snapshot — so provenance stays resolvable for explain and feedback
// for as long as the materialisation is current.
type viewMat struct {
	epoch     uint64
	st        *qstate
	ov        *searchgraph.Overlay
	terminals []steiner.NodeID

	trees   []steiner.Tree
	queries []*relstore.ConjunctiveQuery
	result  *relstore.UnionResult
	alpha   float64
}

// Trees returns the view's current top-k Steiner trees (cost order).
func (v *View) Trees() []steiner.Tree {
	if m := v.mat.Load(); m != nil {
		return m.trees
	}
	return nil
}

// Queries returns the view's current conjunctive queries (tree-cost order,
// signature-deduplicated).
func (v *View) Queries() []*relstore.ConjunctiveQuery {
	if m := v.mat.Load(); m != nil {
		return m.queries
	}
	return nil
}

// Result returns the view's current ranked, unioned result.
func (v *View) Result() *relstore.UnionResult {
	if m := v.mat.Load(); m != nil {
		return m.result
	}
	return nil
}

// Alpha returns the cost of the k-th (worst) retained answer — the pruning
// radius of VIEWBASEDALIGNER.
func (v *View) Alpha() float64 {
	if m := v.mat.Load(); m != nil {
		return m.alpha
	}
	return 0
}

// Epoch returns the published-state generation the view's current
// materialisation was computed at.
func (v *View) Epoch() uint64 {
	if m := v.mat.Load(); m != nil {
		return m.epoch
	}
	return 0
}

// Materialization is one coherent, immutable materialisation of a view:
// everything the view computed from a single published state generation.
// Use Current when several fields must agree (e.g. rows with their α): the
// individual accessors each load the latest generation, so two calls that
// straddle a concurrent Refresh may come from different generations.
type Materialization struct {
	Epoch   uint64
	Trees   []steiner.Tree
	Queries []*relstore.ConjunctiveQuery
	Result  *relstore.UnionResult
	Alpha   float64

	m *viewMat
}

// Current returns the view's current materialisation as one coherent
// snapshot (a single atomic load). Its Node/Edge/EdgeCost methods resolve
// the ids of ITS trees against ITS overlay — under concurrent writers,
// prefer them over the View-level shortcuts, which re-load the latest
// generation on every call.
func (v *View) Current() Materialization {
	m := v.mat.Load()
	if m == nil {
		return Materialization{}
	}
	return Materialization{
		Epoch:   m.epoch,
		Trees:   m.trees,
		Queries: m.queries,
		Result:  m.result,
		Alpha:   m.alpha,
		m:       m,
	}
}

// Node resolves a node id of this materialisation's trees — base or
// overlay — to its search-graph metadata.
func (m Materialization) Node(id steiner.NodeID) searchgraph.Node {
	if m.m == nil {
		return searchgraph.Node{}
	}
	return m.m.ov.Node(id)
}

// Edge resolves an edge id of this materialisation's trees — base or
// overlay — to its search-graph metadata.
func (m Materialization) Edge(id steiner.EdgeID) searchgraph.Edge {
	if m.m == nil {
		return searchgraph.Edge{}
	}
	return m.m.ov.Edge(id)
}

// EdgeCost returns the cost (at materialisation time) of an edge of this
// materialisation's trees.
func (m Materialization) EdgeCost(id steiner.EdgeID) float64 {
	if m.m == nil {
		return 0
	}
	return m.m.ov.Cost(id)
}

// Node resolves a node id against the view's LATEST materialisation. The
// id must come from that same materialisation: callers holding trees
// across a possible concurrent Refresh should capture Current() once and
// use its resolvers instead.
func (v *View) Node(id steiner.NodeID) searchgraph.Node { return v.Current().Node(id) }

// Edge resolves an edge id against the view's LATEST materialisation (see
// Node for the coherence caveat).
func (v *View) Edge(id steiner.EdgeID) searchgraph.Edge { return v.Current().Edge(id) }

// EdgeCost returns an edge's cost in the view's LATEST materialisation
// (see Node for the coherence caveat).
func (v *View) EdgeCost(id steiner.EdgeID) float64 { return v.Current().EdgeCost(id) }

// Query parses a keyword query ('single quotes' group phrases), expands a
// private query-graph overlay over the current published snapshot, computes
// the top-k Steiner trees, generates and executes their conjunctive
// queries, and unions the answers into a ranked view. The view is
// persistent: it is retained for refresh on future search-graph
// maintenance.
//
// Query acquires no graph-wide lock: it works entirely against the state
// generation current at its start, so it runs concurrently with other
// queries AND with writers. A registration or feedback update committed
// after the query starts is not visible to it; the next Refresh (which
// every writer triggers or implies) brings the view up to date.
func (q *Q) Query(query string) (*View, error) { return q.QueryWith(query, 0) }

// QueryWith is Query with a per-call parallelism override (0 means the
// published default). The override sizes this call's own translation and
// execution fan-out; the global in-flight execution bound still applies.
// Answers are byte-identical at any setting.
//
// Repeated queries are served from the materialisation cache: two views
// with the same keyword sequence at the same published epoch share one
// immutable materialisation (and N concurrent identical cold queries
// compute it once — see cache.go), with answers byte-identical to an
// uncached run.
func (q *Q) QueryWith(query string, parallelism int) (*View, error) {
	keywords := parseKeywords(query)
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query %q", query)
	}
	return q.queryKeywords(keywords, 0, parallelism)
}

// QueryEphemeralWith is QueryWith for answers-only traffic: it computes
// the view materialisation (through the same epoch-keyed cache, so a hot
// keyword stream is still near-free) but does NOT register the view in the
// maintenance set. The returned View carries its answers, yet it never
// participates in refreshes or VIEWBASEDALIGNER neighbourhoods and holds
// no reference from Q — a storm of ephemeral queries leaves the engine's
// footprint bounded by the materialisation cache's LRU capacity. This is
// the serving path for load drivers and stateless read traffic
// (POST /query?ephemeral=1 in internal/server).
func (q *Q) QueryEphemeralWith(query string, parallelism int) (*View, error) {
	keywords := parseKeywords(query)
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query %q", query)
	}
	v, _, err := q.runQuery(keywords, 0, parallelism, true, nil)
	return v, err
}

// QueryTraced is QueryWith with per-stage tracing: the returned trace
// carries the query's id and stage breakdown (cache lookup, expansion,
// Steiner search, translation, planning, execution, materialisation) and
// its totals are folded into the qint_query_stage_* metric families.
// Tracing is per-call: untraced queries pay one nil check per stage and no
// clock reads.
func (q *Q) QueryTraced(query string, parallelism int) (*View, *obs.Trace, error) {
	keywords := parseKeywords(query)
	if len(keywords) == 0 {
		return nil, nil, fmt.Errorf("core: empty keyword query %q", query)
	}
	return q.runQuery(keywords, 0, parallelism, false, obs.NewTrace())
}

// QueryEphemeralTraced is QueryEphemeralWith with per-stage tracing (see
// QueryTraced) — the serving path's traced variant.
func (q *Q) QueryEphemeralTraced(query string, parallelism int) (*View, *obs.Trace, error) {
	keywords := parseKeywords(query)
	if len(keywords) == 0 {
		return nil, nil, fmt.Errorf("core: empty keyword query %q", query)
	}
	return q.runQuery(keywords, 0, parallelism, true, obs.NewTrace())
}

// QueryKeywords runs a keyword query from an already-split keyword list,
// bypassing the quote-aware string parser entirely — keywords containing
// quotes, spaces, or any other byte sequence (even ones parseKeywords could
// never produce) pass through verbatim. k bounds the view's answer count;
// k <= 0 uses the configured default. This is the restart path: persisted
// views are saved as (keywords, k) and must round-trip exactly, not through
// a lossy re-quoting of their keyword list.
func (q *Q) QueryKeywords(keywords []string, k int) (*View, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword list")
	}
	return q.queryKeywords(append([]string(nil), keywords...), k, 0)
}

// queryKeywords is the shared tail of QueryWith and QueryKeywords:
// materialise (through the cache) at the requested k and register the view.
func (q *Q) queryKeywords(keywords []string, k, parallelism int) (*View, error) {
	v, _, err := q.runQuery(keywords, k, parallelism, false, nil)
	return v, err
}

// runQuery is the single tail every query entry point funnels through:
// materialise through the cache at the requested k, register the view
// unless the call is ephemeral, and account the query (and its trace, when
// one is attached) in the engine metrics.
func (q *Q) runQuery(keywords []string, k, parallelism int, ephemeral bool, tr *obs.Trace) (*View, *obs.Trace, error) {
	if k <= 0 {
		k = q.opts.K
	}
	m := q.metrics
	m.queries.Inc()
	st := q.state()
	mat, err := q.materializeCached(st, keywords, k, parallelism, tr)
	if err != nil {
		m.queryErrors.Inc()
		q.observeTrace(tr)
		return nil, tr, err
	}
	v := &View{Keywords: keywords, K: k}
	v.mat.Store(mat)
	if !ephemeral {
		q.viewsMu.Lock()
		q.views = append(q.views, v)
		q.viewsMu.Unlock()
	}
	q.observeTrace(tr)
	return v, tr, nil
}

// expandKeyword adds one keyword's query-graph expansion to the overlay
// (paper §2.2): similarity edges to matching schema elements via tf-idf,
// and lazily-materialised value nodes for matching data values. The
// expansion is a pure function of the state generation — it writes only to
// the overlay, never to the shared graph.
func (q *Q) expandKeyword(st *qstate, ov *searchgraph.Overlay, kw string) steiner.NodeID {
	kwNode := ov.KeywordNode(kw)

	// Metadata matches: attributes and relations by tf-idf cosine.
	for _, m := range st.corpus.TopMatches(kw, q.opts.MatchThreshold, q.opts.MaxMatchesPerKeyword) {
		switch {
		case len(m.ID) > 5 && m.ID[:5] == "attr:":
			ref, err := relstore.ParseAttrRef(m.ID[5:])
			if err != nil {
				continue
			}
			nid := st.graph.LookupAttribute(ref)
			if nid < 0 {
				continue
			}
			ov.AddKeywordEdge(kwNode, nid, m.Score)
		case len(m.ID) > 4 && m.ID[:4] == "rel:":
			nid := st.graph.LookupRelation(m.ID[4:])
			if nid < 0 {
				continue
			}
			ov.AddKeywordEdge(kwNode, nid, m.Score)
		}
	}

	// Data-value matches: lazily create value nodes (paper §2.1/§2.2). The
	// scored, truncated match list comes from the expansion cache when this
	// is a published generation (computeValueExpansions in cache.go is the
	// uncached path — FindValues over the inverted value index, similarity
	// scoring, deterministic truncation); only the overlay wiring is
	// per-query work on a hit.
	for _, vm := range q.valueExpansions(st, kw) {
		vn := ov.ValueNode(vm.Ref, vm.Value)
		if vn < 0 {
			continue // attribute unknown to this graph generation
		}
		ov.AddKeywordEdge(kwNode, vn, vm.Sim)
	}
	return kwNode
}

// materializeAt computes a full materialisation of a keyword query against
// one state generation. It runs in two phases. The plan phase expands the
// keywords into a fresh overlay, computes the top-k trees and translates
// them into deduplicated, column-aligned conjunctive queries — all against
// private or frozen data, so no lock is needed. The execute phase fans the
// branch executions across the bounded worker pool; branches are collected
// by query index, so the DisjointUnion sees them in tree-cost order and the
// result is byte-identical at any parallelism.
//
// The returned viewMat is immutable (its overlay is never mutated after
// this function returns), so the materialisation cache can hand one result
// to any number of views and concurrent readers; callers go through
// materializeCached.
//
// tr, when non-nil, receives one span per pipeline stage (expand, steiner,
// translate, plan, execute, materialize); a nil trace costs one nil check
// per stage and no clock reads.
func (q *Q) materializeAt(st *qstate, keywords []string, k, parallelism int, tr *obs.Trace) (*viewMat, error) {
	workers := parallelism
	if workers <= 0 {
		workers = st.parallelism
	}
	ov := st.graph.NewOverlay()
	texp := tr.Now()
	terminals := make([]steiner.NodeID, 0, len(keywords))
	for _, kw := range keywords {
		terminals = append(terminals, q.expandKeyword(st, ov, kw))
	}
	tr.Record(obs.StageExpand, texp)
	trees, queries, err := q.planOverlay(st, ov, terminals, k, workers, tr)
	if err != nil {
		return nil, err
	}
	result, err := q.executeBranches(st, queries, k, workers, tr)
	if err != nil {
		return nil, err
	}
	tmat := tr.Now()
	// α is the cost of the k-th top-scoring RESULT (paper §3.3: "the cost
	// of the kth top-scoring result for the user view") — when the best
	// query yields many tuples, α stays at that query's cost, keeping the
	// VIEWBASEDALIGNER neighbourhood tight. Fall back to the worst retained
	// tree when the view yields fewer than k tuples.
	alpha := 0.0
	switch {
	case len(result.Rows) >= k && k > 0:
		alpha = result.Rows[k-1].Cost
	case len(result.Rows) > 0:
		alpha = result.Rows[len(result.Rows)-1].Cost
		if len(trees) > 0 && trees[len(trees)-1].Cost > alpha {
			alpha = trees[len(trees)-1].Cost
		}
	case len(trees) > 0:
		alpha = trees[len(trees)-1].Cost
	}
	m := &viewMat{
		epoch:     st.epoch,
		st:        st,
		ov:        ov,
		terminals: terminals,
		trees:     trees,
		queries:   queries,
		result:    result,
		alpha:     alpha,
	}
	tr.Record(obs.StageMaterialize, tmat)
	return m, nil
}

// executeBranches is the execute phase of materialisation: the branch
// queries (tree-cost order) stream their projected rows into the ranked
// disjoint union. On the default path the batch is planned as a unit
// (relstore.PlanBatch): each branch's joins are ordered by estimated
// cardinality, join subtrees shared across branches execute once through the
// per-materialisation subplan cache, and each branch compiles into a
// streaming iterator pipeline (no intermediate relation is materialised
// beyond the shared subplans). Branches fan across the bounded worker pool,
// collected by query index so the union sees them in tree-cost order.
// Options.PlannerOff reverts to per-branch execution in the naive spec join
// order; Options.MaterialisedExec forces the reference
// materialise-everything executor — all byte-identically. With
// Options.TopKPrune the scorer additionally pulls branches serially in cost
// order and stops — skipping a branch's execution entirely — once the
// running top-k bound is provably unbeatable for it; the result then holds
// exactly the top-k rows (see the knob's doc for the contract).
func (q *Q) executeBranches(st *qstate, queries []*relstore.ConjunctiveQuery, k, workers int, tr *obs.Trace) (*relstore.UnionResult, error) {
	prov := make([]string, len(queries))
	for i, cq := range queries {
		prov[i] = cq.Signature()
	}
	if q.opts.TopKPrune && !q.opts.MaterialisedExec {
		// Serial by design: whether branch i can be skipped depends on the
		// rows branches 0..i-1 produced. One execSem slot covers the run.
		// Planning is interleaved with execution here (branches are planned
		// lazily, skipped ones never), so the whole run traces as execute.
		texec := tr.Now()
		st.execSem <- struct{}{}
		defer func() { <-st.execSem }()
		result, tkStats, err := relstore.ExecuteTopKUnion(st.cat, queries, k, prov)
		tr.Record(obs.StageExecute, texec)
		if err != nil {
			return nil, err
		}
		q.addPlanStats(tkStats.Plan)
		q.countTopK(tkStats)
		return result, nil
	}
	results := make([]*relstore.ResultSet, len(queries))
	texec := tr.Now()
	if !q.opts.PlannerOff && !q.opts.MaterialisedExec {
		// Plan the batch as a unit: join orders are chosen per branch by
		// estimated cardinality, and join subtrees shared across branches
		// execute once through the per-materialisation subplan cache —
		// concurrent branches coalesce on the cached subplan.
		tplan := tr.Now()
		bp, err := relstore.PlanBatch(st.cat, queries)
		tr.Record(obs.StagePlan, tplan)
		if err != nil {
			return nil, err
		}
		texec = tr.Now()
		err = runIndexed(len(queries), workers, func(i int) error {
			st.execSem <- struct{}{}
			defer func() { <-st.execSem }()
			rs, err := bp.Execute(i)
			if err != nil {
				return err
			}
			results[i] = rs
			return nil
		})
		if err != nil {
			return nil, err
		}
		q.addPlanStats(bp.Stats())
	} else {
		err := runIndexed(len(queries), workers, func(i int) error {
			st.execSem <- struct{}{}
			defer func() { <-st.execSem }()
			rs, err := relstore.Execute(st.cat, queries[i])
			if err != nil {
				return err
			}
			results[i] = rs
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	branches := make([]relstore.Branch, len(queries))
	for i, cq := range queries {
		branches[i] = relstore.Branch{
			Result:     results[i],
			Cost:       cq.Cost,
			Provenance: prov[i],
		}
	}
	res := relstore.DisjointUnion(branches)
	tr.Record(obs.StageExecute, texec)
	return res, nil
}

// planOverlay is the plan phase of materialisation: top-k Steiner trees
// over the base∪overlay view, pruning, concurrent tree→query translation
// (results collected by tree index), and the two order-sensitive
// post-passes run serially in tree-cost order — signature deduplication and
// the §2.2 output-schema alignment — so the produced query list is
// deterministic regardless of parallelism.
func (q *Q) planOverlay(st *qstate, ov *searchgraph.Overlay, terminals []steiner.NodeID, k, workers int, tr *obs.Trace) ([]steiner.Tree, []*relstore.ConjunctiveQuery, error) {
	tsteiner := tr.Now()
	var trees []steiner.Tree
	if q.opts.UseApproxSteiner {
		trees = steiner.ApproxTopKSteinerOn(ov.View(), terminals, k)
	} else {
		trees = steiner.TopKSteinerOn(ov.View(), terminals, k)
	}
	// Trees whose only way to connect the keywords runs through a disabled
	// edge (a mapping edge, or a legacy persisted keyword edge) are not
	// real answers.
	{
		kept := trees[:0]
		for _, t := range trees {
			if t.Cost < searchgraph.DisabledEdgeCost {
				kept = append(kept, t)
			}
		}
		trees = kept
	}
	// Prune trees using over-threshold association edges, if configured.
	if q.opts.AssocCostThreshold > 0 {
		kept := trees[:0]
		for _, t := range trees {
			if !q.treeUsesExpensiveAssoc(ov, t) {
				kept = append(kept, t)
			}
		}
		trees = kept
	}
	tr.Record(obs.StageSteiner, tsteiner)

	// Translate every tree concurrently; cqs is indexed by tree.
	ttrans := tr.Now()
	cqs := make([]*relstore.ConjunctiveQuery, len(trees))
	err := runIndexed(len(trees), workers, func(i int) error {
		cq, err := treeToQuery(st, ov, trees[i])
		if err != nil {
			return err
		}
		cqs[i] = cq
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Deterministic post-passes, in tree-cost order.
	var queries []*relstore.ConjunctiveQuery
	sigs := make(map[string]bool)
	for _, cq := range cqs {
		if sigs[cq.Signature()] {
			continue // equivalent query from a different tree
		}
		sigs[cq.Signature()] = true
		queries = append(queries, cq)
	}
	outputSchema := make(map[string]bool) // QA of §2.2
	for _, cq := range queries {
		q.alignOutputColumns(st, cq, outputSchema)
	}
	tr.Record(obs.StageTranslate, ttrans)
	return trees, queries, nil
}

func (q *Q) treeUsesExpensiveAssoc(ov *searchgraph.Overlay, t steiner.Tree) bool {
	for _, eid := range t.Edges {
		e := ov.Edge(eid)
		if e.Kind == searchgraph.EdgeAssociation && ov.Cost(eid) > q.opts.AssocCostThreshold {
			return true
		}
	}
	return false
}

// Refresh rematerialises every persistent view against the current builder
// state (after weight updates or new alignments). It is a writer
// operation: the state is published first, then the views rematerialise
// across the bounded worker pool, each against its own fresh overlay of
// the new generation, and each swaps its materialisation in atomically.
// Views are independent, so the fan-out leaves every view byte-identical
// to a serial refresh.
func (q *Q) Refresh() error {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	return q.refreshLocked()
}

func (q *Q) refreshLocked() error {
	st := q.publishLocked()
	views := q.Views()
	// Each view rematerialises through the cache: views sharing a keyword
	// sequence share one materialisation of the new generation (the refresh
	// fan-out coalesces on the in-flight compute), and a query racing the
	// refresh at the same epoch reuses it too.
	return runIndexed(len(views), st.parallelism, func(i int) error {
		mat, err := q.materializeCached(st, views[i].Keywords, views[i].K, 0, nil)
		if err != nil {
			return err
		}
		views[i].mat.Store(mat)
		return nil
	})
}

// TreeQuery converts a Steiner tree over the builder search graph into a
// conjunctive query. It is the exported form of the view pipeline's
// tree-to-query translation, used by the mediated-schema adapter and by
// tools that want to inspect or execute a tree directly. Writer-side: the
// tree must reference builder-graph ids (not a query overlay's).
func (q *Q) TreeQuery(t steiner.Tree) (*relstore.ConjunctiveQuery, error) {
	snap := q.Graph.Snapshot()
	st := &qstate{graph: snap, cat: q.Catalog, corpus: q.corpus}
	return treeToQuery(st, snap.NewOverlay(), t)
}

// treeToQuery converts a Steiner tree over the query overlay into a
// conjunctive query (paper §2.2): relation nodes (and relations reached by
// zero-cost edges from attribute/value nodes) become atoms; foreign-key and
// association edges become join conditions; keyword→value edges become
// selection conditions; attribute and value nodes drive the projection.
func treeToQuery(st *qstate, ov *searchgraph.Overlay, t steiner.Tree) (*relstore.ConjunctiveQuery, error) {
	cq := &relstore.ConjunctiveQuery{Cost: t.Cost}
	alias := make(map[string]string) // relation -> alias

	ensureAtom := func(rel string) string {
		if a, ok := alias[rel]; ok {
			return a
		}
		a := fmt.Sprintf("t%d", len(alias))
		alias[rel] = a
		cq.Atoms = append(cq.Atoms, relstore.Atom{Relation: rel, Alias: a})
		return a
	}

	// Atoms from every non-keyword node in the tree.
	for _, nid := range t.Nodes {
		n := ov.Node(nid)
		switch n.Kind {
		case searchgraph.KindRelation:
			ensureAtom(n.Rel)
		case searchgraph.KindAttribute, searchgraph.KindValue:
			ensureAtom(n.Ref.Relation)
		}
	}

	// Conditions from edges.
	for _, eid := range t.Edges {
		e := ov.Edge(eid)
		switch e.Kind {
		case searchgraph.EdgeForeignKey, searchgraph.EdgeAssociation:
			la := ensureAtom(e.A.Relation)
			ra := ensureAtom(e.B.Relation)
			cq.Joins = append(cq.Joins, relstore.JoinCond{
				LeftAlias: la, LeftAttr: e.A.Attr,
				RightAlias: ra, RightAttr: e.B.Attr,
			})
		case searchgraph.EdgeKeyword:
			u, vEnd := ov.Endpoints(eid)
			target := ov.Node(u)
			if target.Kind == searchgraph.KindKeyword {
				target = ov.Node(vEnd)
			}
			if target.Kind == searchgraph.KindValue {
				a := ensureAtom(target.Ref.Relation)
				cq.Selects = append(cq.Selects, relstore.SelCond{
					Alias: a, Attr: target.Ref.Attr, Op: relstore.OpEq, Value: target.Value,
				})
			}
			// Keyword→attribute/relation matches add no condition; the
			// matched element already anchors the atom set.
		}
	}
	if len(cq.Atoms) == 0 {
		return nil, fmt.Errorf("core: tree %s touches no relations", t.Key())
	}
	// Project every attribute of every atom (full tuples, as the paper's
	// example outputs show). Output labels must be unique within one query;
	// when a second relation carries an already-used attribute name, it
	// gets a relation-qualified label, which the outer union may later
	// merge with compatible columns.
	nameUsed := make(map[string]bool)
	for _, atom := range cq.Atoms {
		rel := st.cat.Relation(atom.Relation)
		if rel == nil {
			continue
		}
		for _, a := range rel.Attributes {
			as := a.Name
			if nameUsed[as] {
				as = relationShortName(atom.Relation) + "_" + a.Name
			}
			for nameUsed[as] {
				as = "_" + as
			}
			nameUsed[as] = true
			cq.Project = append(cq.Project, relstore.ProjCol{Alias: atom.Alias, Attr: a.Name, As: as})
		}
	}
	// Deterministic condition order.
	sort.Slice(cq.Joins, func(i, j int) bool {
		a, b := cq.Joins[i], cq.Joins[j]
		return a.LeftAlias+a.LeftAttr+a.RightAlias+a.RightAttr < b.LeftAlias+b.LeftAttr+b.RightAlias+b.RightAttr
	})
	sort.Slice(cq.Selects, func(i, j int) bool {
		a, b := cq.Selects[i], cq.Selects[j]
		return a.Alias+a.Attr+a.Value < b.Alias+b.Attr+b.Value
	})
	return cq, nil
}

// relationShortName strips the source qualifier: "ip.entry" -> "entry".
func relationShortName(qualified string) string {
	if i := strings.Index(qualified, "."); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

// alignOutputColumns implements the output-schema unification of §2.2: for
// each projected attribute a of this query, if a low-cost association edge
// links a's node to an attribute whose label already appears in the unified
// output schema QA, rename a to that label (unless this query already
// outputs it); otherwise a joins QA under its own name. Associations are
// base edges, so the lookup reads the frozen snapshot directly.
func (q *Q) alignOutputColumns(st *qstate, cq *relstore.ConjunctiveQuery, outputSchema map[string]bool) {
	aliasRel := make(map[string]string, len(cq.Atoms))
	for _, a := range cq.Atoms {
		aliasRel[a.Alias] = a.Relation
	}
	current := make(map[string]bool, len(cq.Project))
	for _, p := range cq.Project {
		current[p.As] = true
	}
	for i, p := range cq.Project {
		if outputSchema[p.As] {
			continue // already unified under its own name
		}
		ref := relstore.AttrRef{Relation: aliasRel[p.Alias], Attr: p.Attr}
		if label, ok := q.compatibleOutputLabel(st, ref, outputSchema); ok && !current[label] {
			delete(current, p.As)
			cq.Project[i].As = label
			current[label] = true
		}
	}
	for _, p := range cq.Project {
		outputSchema[p.As] = true
	}
}

// compatibleOutputLabel finds an attribute a' connected to ref by an
// association edge of cost below the column-alignment threshold whose label
// (attribute name) is already in the output schema.
func (q *Q) compatibleOutputLabel(st *qstate, ref relstore.AttrRef, outputSchema map[string]bool) (string, bool) {
	nid := st.graph.LookupAttribute(ref)
	if nid < 0 {
		return "", false
	}
	for _, eid := range st.graph.Base().Incident(nid) {
		e := st.graph.Edge(eid)
		if e.Kind != searchgraph.EdgeAssociation {
			continue
		}
		if st.graph.Cost(eid) > q.opts.ColumnAlignThreshold {
			continue
		}
		other := e.A
		if other == ref {
			other = e.B
		}
		if outputSchema[other.Attr] {
			return other.Attr, true
		}
	}
	return "", false
}
