package core

import (
	"fmt"
	"sort"
	"strings"

	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
	"qint/internal/text"
)

// View is a persistent keyword-search view (paper §2.3): the definition
// (keywords, k) plus the current materialisation (top-k query trees, their
// conjunctive queries and the ranked, unioned result). Views are refreshed
// whenever search-graph maintenance changes costs or topology.
type View struct {
	Keywords []string
	K        int

	// Alpha is the cost of the k-th (worst) retained query tree — the
	// pruning radius of VIEWBASEDALIGNER.
	Alpha float64

	Trees   []steiner.Tree
	Queries []*relstore.ConjunctiveQuery
	Result  *relstore.UnionResult

	terminals []steiner.NodeID
}

// Query parses a keyword query ('single quotes' group phrases), expands the
// search graph into a query graph, computes the top-k Steiner trees,
// generates and executes their conjunctive queries, and unions the answers
// into a ranked view. The view is persistent: it is retained for refresh on
// future search-graph maintenance.
func (q *Q) Query(query string) (*View, error) {
	keywords := parseKeywords(query)
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query %q", query)
	}
	v := &View{Keywords: keywords, K: q.opts.K}
	for _, kw := range keywords {
		v.terminals = append(v.terminals, q.expandKeyword(kw))
	}
	if err := q.materialize(v); err != nil {
		return nil, err
	}
	q.views = append(q.views, v)
	return v, nil
}

// expandKeyword adds (or extends) the query-graph expansion for one keyword
// (paper §2.2): similarity edges to matching schema elements via tf-idf,
// and lazily-materialised value nodes for matching data values. Re-invoked
// after registrations, it only adds edges to targets not already linked.
func (q *Q) expandKeyword(kw string) steiner.NodeID {
	kwNode := q.Graph.KeywordNode(kw)
	seen := q.expanded[kw]
	if seen == nil {
		seen = make(map[string]bool)
		q.expanded[kw] = seen
	}

	// Metadata matches: attributes and relations by tf-idf cosine.
	for _, m := range q.corpus.TopMatches(kw, q.opts.MatchThreshold, q.opts.MaxMatchesPerKeyword) {
		if seen[m.ID] {
			continue
		}
		seen[m.ID] = true
		switch {
		case len(m.ID) > 5 && m.ID[:5] == "attr:":
			ref, err := relstore.ParseAttrRef(m.ID[5:])
			if err != nil {
				continue
			}
			q.Graph.AddKeywordEdge(kwNode, q.Graph.AttributeNode(ref), m.Score)
		case len(m.ID) > 4 && m.ID[:4] == "rel:":
			q.Graph.AddKeywordEdge(kwNode, q.Graph.RelationNode(m.ID[4:]), m.Score)
		}
	}

	// Data-value matches: lazily create value nodes (paper §2.1/§2.2).
	hits := q.Catalog.FindValues(kw)
	if len(hits) > q.opts.MaxMatchesPerKeyword {
		// Prefer exact-normalised matches, then fewer-row (more selective)
		// values, for determinism under truncation.
		nkw := text.Normalize(kw)
		sort.SliceStable(hits, func(i, j int) bool {
			ei := text.Normalize(hits[i].Value) == nkw
			ej := text.Normalize(hits[j].Value) == nkw
			if ei != ej {
				return ei
			}
			return hits[i].Rows < hits[j].Rows
		})
		hits = hits[:q.opts.MaxMatchesPerKeyword]
	}
	for _, h := range hits {
		key := "val:" + h.Ref.String() + "=" + h.Value
		if seen[key] {
			continue
		}
		seen[key] = true
		sim := text.ContainmentSimilarity(kw, h.Value)
		if sim < q.opts.MatchThreshold {
			continue
		}
		vn := q.Graph.ValueNode(h.Ref, h.Value)
		q.Graph.AddKeywordEdge(kwNode, vn, sim)
	}
	return kwNode
}

// materialize (re)computes a view's trees, queries and result under the
// current search graph. It runs in two phases. The plan phase (planView,
// serialised on graphMu) computes the top-k trees and translates them into
// deduplicated, column-aligned conjunctive queries. The execute phase fans
// the branch executions across the bounded worker pool; branches are
// collected by query index, so the DisjointUnion sees them in tree-cost
// order and the result is byte-identical at any Options.Parallelism.
func (q *Q) materialize(v *View) error {
	queries, err := q.planView(v)
	if err != nil {
		return err
	}
	results := make([]*relstore.ResultSet, len(queries))
	err = runIndexed(len(queries), q.opts.Parallelism, func(i int) error {
		q.execSem <- struct{}{}
		defer func() { <-q.execSem }()
		rs, err := relstore.Execute(q.Catalog, queries[i])
		if err != nil {
			return err
		}
		results[i] = rs
		return nil
	})
	if err != nil {
		return err
	}
	v.Queries = append(v.Queries[:0], queries...)
	branches := make([]relstore.Branch, len(queries))
	for i, cq := range queries {
		branches[i] = relstore.Branch{
			Result:     results[i],
			Cost:       cq.Cost,
			Provenance: cq.Signature(),
		}
	}
	v.Result = relstore.DisjointUnion(branches)
	// α is the cost of the k-th top-scoring RESULT (paper §3.3: "the cost
	// of the kth top-scoring result for the user view") — when the best
	// query yields many tuples, α stays at that query's cost, keeping the
	// VIEWBASEDALIGNER neighbourhood tight. Fall back to the worst retained
	// tree when the view yields fewer than k tuples.
	v.Alpha = 0
	trees := v.Trees
	switch {
	case len(v.Result.Rows) >= v.K && v.K > 0:
		v.Alpha = v.Result.Rows[v.K-1].Cost
	case len(v.Result.Rows) > 0:
		v.Alpha = v.Result.Rows[len(v.Result.Rows)-1].Cost
		if len(trees) > 0 && trees[len(trees)-1].Cost > v.Alpha {
			v.Alpha = trees[len(trees)-1].Cost
		}
	case len(trees) > 0:
		v.Alpha = trees[len(trees)-1].Cost
	}
	return nil
}

// planView is the graph phase of materialisation: under graphMu it
// activates the view's keywords, computes and prunes the top-k Steiner
// trees, fans the tree→query translation across the worker pool (results
// collected by tree index), and then runs the two order-sensitive
// post-passes serially in tree-cost order — signature deduplication and
// the §2.2 output-schema alignment — so the produced query list is
// deterministic regardless of parallelism. The lock matters during a
// parallel Refresh: activation rewrites keyword-edge costs, and both
// translation and alignment read graph state that another view's
// activation would otherwise be mutating.
func (q *Q) planView(v *View) ([]*relstore.ConjunctiveQuery, error) {
	q.graphMu.Lock()
	defer q.graphMu.Unlock()

	q.Graph.ActivateKeywords(v.terminals)
	var trees []steiner.Tree
	if q.opts.UseApproxSteiner {
		trees = q.Graph.G.ApproxTopKSteiner(v.terminals, v.K)
	} else {
		trees = q.Graph.G.TopKSteiner(v.terminals, v.K)
	}
	// Trees whose only way to connect the keywords runs through a disabled
	// edge are not real answers.
	{
		kept := trees[:0]
		for _, t := range trees {
			if t.Cost < searchgraph.DisabledEdgeCost {
				kept = append(kept, t)
			}
		}
		trees = kept
	}
	// Prune trees using over-threshold association edges, if configured.
	if q.opts.AssocCostThreshold > 0 {
		kept := trees[:0]
		for _, t := range trees {
			if !q.treeUsesExpensiveAssoc(t) {
				kept = append(kept, t)
			}
		}
		trees = kept
	}
	v.Trees = trees

	// Translate every tree concurrently; cqs is indexed by tree.
	cqs := make([]*relstore.ConjunctiveQuery, len(trees))
	err := runIndexed(len(trees), q.opts.Parallelism, func(i int) error {
		cq, err := q.treeToQuery(trees[i])
		if err != nil {
			return err
		}
		cqs[i] = cq
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic post-passes, in tree-cost order.
	var queries []*relstore.ConjunctiveQuery
	sigs := make(map[string]bool)
	for _, cq := range cqs {
		if sigs[cq.Signature()] {
			continue // equivalent query from a different tree
		}
		sigs[cq.Signature()] = true
		queries = append(queries, cq)
	}
	outputSchema := make(map[string]bool) // QA of §2.2
	for _, cq := range queries {
		q.alignOutputColumns(cq, outputSchema)
	}
	return queries, nil
}

func (q *Q) treeUsesExpensiveAssoc(t steiner.Tree) bool {
	for _, eid := range t.Edges {
		e := q.Graph.Edge(eid)
		if e.Kind == searchgraph.EdgeAssociation && q.Graph.Cost(eid) > q.opts.AssocCostThreshold {
			return true
		}
	}
	return false
}

// Refresh rematerialises every persistent view (after weight updates or new
// alignments). Keyword expansions are extended first — serially, since they
// grow the search graph — so new sources' matches participate; the views
// then rematerialise across the bounded worker pool. Each view's graph
// phase serialises on graphMu while branch executions overlap, and views
// are independent (each owns its trees/queries/result), so the fan-out
// leaves every view byte-identical to a serial refresh.
func (q *Q) Refresh() error {
	for _, v := range q.views {
		for _, kw := range v.Keywords {
			q.expandKeyword(kw)
		}
	}
	views := q.views
	return runIndexed(len(views), q.opts.Parallelism, func(i int) error {
		return q.materialize(views[i])
	})
}

// TreeQuery converts a Steiner tree over the search graph into a
// conjunctive query. It is the exported form of the view pipeline's
// tree-to-query translation, used by the mediated-schema adapter and by
// tools that want to inspect or execute a tree directly.
func (q *Q) TreeQuery(t steiner.Tree) (*relstore.ConjunctiveQuery, error) {
	return q.treeToQuery(t)
}

// treeToQuery converts a Steiner tree over the search graph into a
// conjunctive query (paper §2.2): relation nodes (and relations reached by
// zero-cost edges from attribute/value nodes) become atoms; foreign-key and
// association edges become join conditions; keyword→value edges become
// selection conditions; attribute and value nodes drive the projection.
func (q *Q) treeToQuery(t steiner.Tree) (*relstore.ConjunctiveQuery, error) {
	cq := &relstore.ConjunctiveQuery{Cost: t.Cost}
	alias := make(map[string]string) // relation -> alias

	ensureAtom := func(rel string) string {
		if a, ok := alias[rel]; ok {
			return a
		}
		a := fmt.Sprintf("t%d", len(alias))
		alias[rel] = a
		cq.Atoms = append(cq.Atoms, relstore.Atom{Relation: rel, Alias: a})
		return a
	}

	// Atoms from every non-keyword node in the tree.
	for _, nid := range t.Nodes {
		n := q.Graph.Node(nid)
		switch n.Kind {
		case searchgraph.KindRelation:
			ensureAtom(n.Rel)
		case searchgraph.KindAttribute, searchgraph.KindValue:
			ensureAtom(n.Ref.Relation)
		}
	}

	// Conditions from edges.
	for _, eid := range t.Edges {
		e := q.Graph.Edge(eid)
		switch e.Kind {
		case searchgraph.EdgeForeignKey, searchgraph.EdgeAssociation:
			la := ensureAtom(e.A.Relation)
			ra := ensureAtom(e.B.Relation)
			cq.Joins = append(cq.Joins, relstore.JoinCond{
				LeftAlias: la, LeftAttr: e.A.Attr,
				RightAlias: ra, RightAttr: e.B.Attr,
			})
		case searchgraph.EdgeKeyword:
			se := q.Graph.G.Edge(eid)
			target := q.Graph.Node(se.U)
			if target.Kind == searchgraph.KindKeyword {
				target = q.Graph.Node(se.V)
			}
			if target.Kind == searchgraph.KindValue {
				a := ensureAtom(target.Ref.Relation)
				cq.Selects = append(cq.Selects, relstore.SelCond{
					Alias: a, Attr: target.Ref.Attr, Op: relstore.OpEq, Value: target.Value,
				})
			}
			// Keyword→attribute/relation matches add no condition; the
			// matched element already anchors the atom set.
		}
	}
	if len(cq.Atoms) == 0 {
		return nil, fmt.Errorf("core: tree %s touches no relations", t.Key())
	}
	// Project every attribute of every atom (full tuples, as the paper's
	// example outputs show). Output labels must be unique within one query;
	// when a second relation carries an already-used attribute name, it
	// gets a relation-qualified label, which the outer union may later
	// merge with compatible columns.
	nameUsed := make(map[string]bool)
	for _, atom := range cq.Atoms {
		rel := q.Catalog.Relation(atom.Relation)
		if rel == nil {
			continue
		}
		for _, a := range rel.Attributes {
			as := a.Name
			if nameUsed[as] {
				as = relationShortName(atom.Relation) + "_" + a.Name
			}
			for nameUsed[as] {
				as = "_" + as
			}
			nameUsed[as] = true
			cq.Project = append(cq.Project, relstore.ProjCol{Alias: atom.Alias, Attr: a.Name, As: as})
		}
	}
	// Deterministic condition order.
	sort.Slice(cq.Joins, func(i, j int) bool {
		a, b := cq.Joins[i], cq.Joins[j]
		return a.LeftAlias+a.LeftAttr+a.RightAlias+a.RightAttr < b.LeftAlias+b.LeftAttr+b.RightAlias+b.RightAttr
	})
	sort.Slice(cq.Selects, func(i, j int) bool {
		a, b := cq.Selects[i], cq.Selects[j]
		return a.Alias+a.Attr+a.Value < b.Alias+b.Attr+b.Value
	})
	return cq, nil
}

// relationShortName strips the source qualifier: "ip.entry" -> "entry".
func relationShortName(qualified string) string {
	if i := strings.Index(qualified, "."); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

// alignOutputColumns implements the output-schema unification of §2.2: for
// each projected attribute a of this query, if a low-cost association edge
// links a's node to an attribute whose label already appears in the unified
// output schema QA, rename a to that label (unless this query already
// outputs it); otherwise a joins QA under its own name.
func (q *Q) alignOutputColumns(cq *relstore.ConjunctiveQuery, outputSchema map[string]bool) {
	aliasRel := make(map[string]string, len(cq.Atoms))
	for _, a := range cq.Atoms {
		aliasRel[a.Alias] = a.Relation
	}
	current := make(map[string]bool, len(cq.Project))
	for _, p := range cq.Project {
		current[p.As] = true
	}
	for i, p := range cq.Project {
		if outputSchema[p.As] {
			continue // already unified under its own name
		}
		ref := relstore.AttrRef{Relation: aliasRel[p.Alias], Attr: p.Attr}
		if label, ok := q.compatibleOutputLabel(ref, outputSchema); ok && !current[label] {
			delete(current, p.As)
			cq.Project[i].As = label
			current[label] = true
		}
	}
	for _, p := range cq.Project {
		outputSchema[p.As] = true
	}
}

// compatibleOutputLabel finds an attribute a' connected to ref by an
// association edge of cost below the column-alignment threshold whose label
// (attribute name) is already in the output schema.
func (q *Q) compatibleOutputLabel(ref relstore.AttrRef, outputSchema map[string]bool) (string, bool) {
	nid := q.Graph.LookupAttribute(ref)
	if nid < 0 {
		return "", false
	}
	for _, eid := range q.Graph.G.Incident(nid) {
		e := q.Graph.Edge(eid)
		if e.Kind != searchgraph.EdgeAssociation {
			continue
		}
		if q.Graph.Cost(eid) > q.opts.ColumnAlignThreshold {
			continue
		}
		other := e.A
		if other == ref {
			other = e.B
		}
		if outputSchema[other.Attr] {
			return other.Attr, true
		}
	}
	return "", false
}
