package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// randomCatalog builds nRel relations with overlapping key domains: each
// relation gets an id column drawing from a shared entity pool (so value
// overlap exists for matchers and joins), one or two FK columns into
// earlier relations, and a label column with recognisable words.
func randomCatalog(r *rand.Rand, nRel int) []*relstore.Table {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"kappa", "lambda", "sigma", "omega"}
	var tables []*relstore.Table
	pools := make([][]string, nRel)
	for i := 0; i < nRel; i++ {
		pool := make([]string, 12)
		for j := range pool {
			pool[j] = fmt.Sprintf("K%02d_%03d", i, j)
		}
		pools[i] = pool

		rel := &relstore.Relation{
			Source: fmt.Sprintf("s%d", i),
			Name:   fmt.Sprintf("r%d", i),
			Attributes: []relstore.Attribute{
				{Name: fmt.Sprintf("id%d", i)},
				{Name: "label"},
			},
		}
		fkTargets := []int{}
		if i > 0 {
			t1 := r.Intn(i)
			rel.Attributes = append(rel.Attributes,
				relstore.Attribute{Name: fmt.Sprintf("ref%d", t1)})
			rel.ForeignKeys = append(rel.ForeignKeys, relstore.ForeignKey{
				FromAttr:   fmt.Sprintf("ref%d", t1),
				ToRelation: fmt.Sprintf("s%d.r%d", t1, t1),
				ToAttr:     fmt.Sprintf("id%d", t1),
			})
			fkTargets = append(fkTargets, t1)
		}
		nRows := 12 + r.Intn(12)
		rows := make([][]string, nRows)
		for j := 0; j < nRows; j++ {
			row := make([]string, len(rel.Attributes))
			row[0] = pool[j%len(pool)]
			row[1] = words[r.Intn(len(words))] + fmt.Sprintf(" item %d", j)
			for k, tgt := range fkTargets {
				row[2+k] = pools[tgt][r.Intn(len(pools[tgt]))]
			}
			rows[j] = row
		}
		t, err := relstore.NewTable(rel, rows)
		if err != nil {
			panic(err)
		}
		tables = append(tables, t)
	}
	return tables
}

// canonicalRows renders a view's determined top-k answers independent of
// unified column order (the outer-union layout depends on branch order,
// which can legitimately differ between runs with different edge ids) and
// of tie-breaking at the k-th slot: rows costing exactly the k-th cost are
// summarised by their cost alone (which member of a tie enters the top-k is
// unspecified), while strictly-cheaper rows are compared in full, each as
// its sorted non-empty values.
func canonicalRows(v *View) string {
	k := v.K
	if k > len(v.Result().Rows) {
		k = len(v.Result().Rows)
	}
	if k == 0 {
		return ""
	}
	// The ambiguity boundary is the cost of the last RETAINED TREE, not the
	// k-th row: when several trees tie at the k-th tree slot, which of them
	// is retained (and hence which equal-cost rows exist at all) is
	// unspecified — and the two strategies legitimately have different
	// equal-cost trees available.
	kth := v.Result().Rows[k-1].Cost
	if len(v.Trees()) > 0 {
		if c := v.Trees()[len(v.Trees())-1].Cost; c < kth {
			kth = c
		}
	}
	rows := make([]string, 0, k)
	for _, r := range v.Result().Rows[:k] {
		if r.Cost >= kth-1e-9 {
			rows = append(rows, fmt.Sprintf("%.4f|<tied>", r.Cost))
			continue
		}
		var vals []string
		for _, x := range r.Values {
			if x != "" {
				vals = append(vals, x)
			}
		}
		sort.Strings(vals)
		rows = append(rows, fmt.Sprintf("%.4f|%s", r.Cost, strings.Join(vals, "|")))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestViewBasedEqualsExhaustiveRandomized is the Algorithm 2 guarantee as a
// randomized property: for random catalogs, random keyword views and a
// random new source, VIEWBASEDALIGNER must leave every view with exactly
// the same top-k contents as EXHAUSTIVE, while never doing more work.
func TestViewBasedEqualsExhaustiveRandomized(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		tables := randomCatalog(r, 5+r.Intn(3))

		newTable := func() *relstore.Table {
			rel := &relstore.Relation{
				Source: "fresh", Name: "data",
				Attributes: []relstore.Attribute{
					{Name: fmt.Sprintf("id%d", r.Intn(3))}, // name-similar to some id
					{Name: "label"},
				},
			}
			rows := [][]string{
				{tables[0].Rows[0][0], "alpha mention"},
				{tables[1].Rows[0][0], "beta mention"},
			}
			tb, err := relstore.NewTable(rel, rows)
			if err != nil {
				t.Fatal(err)
			}
			return tb
		}

		// Two keyword queries per trial, built from data the catalog holds.
		queries := []string{
			fmt.Sprintf("'%s' label", tables[0].Rows[0][0]),
			fmt.Sprintf("'%s' %s", tables[1].Rows[1][0], "alpha"),
		}

		build := func(strategy AlignStrategy) (*Q, []string, int) {
			q := New(DefaultOptions())
			q.AddMatcher(meta.New())
			if err := q.AddTables(tables...); err != nil {
				t.Fatal(err)
			}
			var rendered []string
			for _, qs := range queries {
				v, err := q.Query(qs)
				if err != nil {
					t.Fatalf("trial %d query %q: %v", trial, qs, err)
				}
				_ = v
			}
			if _, err := q.RegisterSource([]*relstore.Table{newTable()}, strategy); err != nil {
				t.Fatalf("trial %d register: %v", trial, err)
			}
			for _, v := range q.Views() {
				rendered = append(rendered, canonicalRows(v))
			}
			return q, rendered, q.Stats.AttrComparisons()
		}

		_, exRows, exWork := build(Exhaustive)
		_, vbRows, vbWork := build(ViewBased)

		for i := range exRows {
			if exRows[i] != vbRows[i] {
				t.Errorf("trial %d view %d: contents diverge\nEXHAUSTIVE:\n%s\nVIEWBASED:\n%s",
					trial, i, exRows[i], vbRows[i])
			}
		}
		if vbWork > exWork {
			t.Errorf("trial %d: view-based did more work (%d > %d)", trial, vbWork, exWork)
		}
	}
}
