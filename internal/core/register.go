package core

import (
	"fmt"
	"math"
	"sort"

	"qint/internal/learning"
	"qint/internal/matcher"
	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

// AlignStrategy selects how a newly registered source is aligned against
// the existing search graph (paper §3.3).
type AlignStrategy int

const (
	// Exhaustive compares the new source against every existing relation.
	Exhaustive AlignStrategy = iota
	// ViewBased (Algorithm 2, VIEWBASEDALIGNER) compares only against
	// relations inside the α-cost neighbourhood of some view's keywords —
	// guaranteed to produce the same top-k view updates as Exhaustive.
	ViewBased
	// Preferential (Algorithm 3, PREFERENTIALALIGNER) compares against
	// relations in order of a vertex-cost prior (authoritativeness), up to
	// Options.PreferentialBudget relations. Cheaper still, but without the
	// same-answers guarantee.
	Preferential
)

// String names the strategy.
func (s AlignStrategy) String() string {
	switch s {
	case Exhaustive:
		return "EXHAUSTIVE"
	case ViewBased:
		return "VIEWBASEDALIGNER"
	default:
		return "PREFERENTIALALIGNER"
	}
}

// RegisterReport summarises one source registration.
type RegisterReport struct {
	Source           string
	NewRelations     []string
	TargetsCompared  []string
	MatcherCalls     int
	AttrComparisons  int
	AlignmentsAdded  int
	AlignmentsByPair map[string]float64 // "a~b" -> best confidence
}

// RegisterSource is Q's registration service (paper §3): the new source's
// tables enter the catalog and search graph, the chosen aligner strategy
// selects which existing relations to match against, every registered
// matcher proposes alignments, and the top-Y per attribute become weighted
// association edges. Views are refreshed afterwards so new results surface.
//
// All tables must share one source name, which must be new to the catalog.
//
// The whole registration is one atomic write: it builds the next state
// generation aside (catalog, corpus and graph are copy-on-write) and
// publishes it in a single pointer swap at the end, so a concurrent query
// sees either the complete pre-registration world or the complete
// post-registration world — never a source whose tables exist but whose
// alignments do not.
func (q *Q) RegisterSource(tables []*relstore.Table, strategy AlignStrategy) (*RegisterReport, error) {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()

	if len(tables) == 0 {
		return nil, fmt.Errorf("core: RegisterSource with no tables")
	}
	source := tables[0].Relation.Source
	for _, t := range tables {
		if t.Relation.Source != source {
			return nil, fmt.Errorf("core: RegisterSource mixes sources %q and %q", source, t.Relation.Source)
		}
	}
	for _, s := range q.Catalog.Sources() {
		if s == source {
			return nil, fmt.Errorf("core: source %q already registered", source)
		}
	}

	// Existing relations BEFORE this source joins. preEdges bounds the WAL
	// record: every association edge this registration creates has an id
	// beyond it (the A-side of each alignment is always in the new source,
	// so no pre-existing pair can be endorsed and merged into).
	existing := q.Catalog.Relations()
	preEdges := q.Graph.NumEdges()

	if err := q.addTablesLocked(tables...); err != nil {
		return nil, err
	}

	report := &RegisterReport{Source: source, AlignmentsByPair: make(map[string]float64)}
	for _, t := range tables {
		report.NewRelations = append(report.NewRelations, t.Relation.QualifiedName())
	}

	// Target selection and the alignment fixpoint run against the
	// UNPUBLISHED next generation: keyword matches against the new source
	// must exist before target selection (a keyword hitting new data opens
	// paths from the view's terminals into — and through — the new source,
	// enlarging the true candidate neighbourhood), but concurrent queries
	// must not see the half-registered source. unpublishedStateLocked gives
	// the aligners a coherent snapshot of the work in progress without
	// publishing it.
	targets := q.selectTargetsLocked(existing, strategy)
	for _, rel := range targets {
		report.TargetsCompared = append(report.TargetsCompared, rel.QualifiedName())
	}

	// Align, re-checking the neighbourhood after each round: a new
	// association edge can shorten keyword distances and pull additional
	// relations inside the α radius (a tree may use several new alignments
	// chained through the new source), so VIEWBASEDALIGNER iterates to a
	// fixpoint. EXHAUSTIVE and PREFERENTIAL pick their targets once.
	alignedTargets := make(map[string]bool)
	for round := 0; ; round++ {
		var fresh []*relstore.Relation
		for _, rel := range targets {
			if !alignedTargets[rel.QualifiedName()] {
				alignedTargets[rel.QualifiedName()] = true
				fresh = append(fresh, rel)
			}
		}
		if len(fresh) == 0 {
			break
		}
		// The top-Y budget is applied PER RELATION PAIR here, so the edges
		// installed for a given (new relation, target) pair are a pure
		// function of that pair. This pool-independence is what makes
		// VIEWBASEDALIGNER's same-top-k guarantee exact: aligning a subset
		// of targets installs exactly the corresponding subset of the
		// edges EXHAUSTIVE would install.
		for _, m := range q.matchers {
			for _, newTable := range tables {
				for _, target := range fresh {
					cands := matcher.TopYPerAttribute(
						q.matchPair(m, newTable.Relation, target, report), q.opts.TopY)
					q.installEdges(m, cands, report)
				}
			}
		}
		if strategy != ViewBased {
			break
		}
		targets = q.selectTargetsLocked(existing, strategy)
	}
	report.TargetsCompared = report.TargetsCompared[:0]
	for _, rel := range existing {
		if alignedTargets[rel.QualifiedName()] {
			report.TargetsCompared = append(report.TargetsCompared, rel.QualifiedName())
		}
	}

	// Log-then-publish: the registration's full effect — the new tables and
	// every association edge the alignment fixpoint created, with final
	// merged features — must be durable before refreshLocked publishes it.
	// Replay installs the edges verbatim; it never re-runs the matchers.
	if err := q.logMutationLocked(walKindRegister, walRegister{
		Tables: wireTables(tables),
		Assocs: wireAssocs(q.Graph.AssociationsSince(preEdges)),
	}); err != nil {
		return nil, err
	}

	// Commit: one atomic publish, then bring every view up to date.
	if err := q.refreshLocked(); err != nil {
		return nil, err
	}
	return report, nil
}

// selectTargetsLocked applies the alignment-search strategy to the
// pre-existing relations, against the current (possibly unpublished)
// builder state.
func (q *Q) selectTargetsLocked(existing []*relstore.Relation, strategy AlignStrategy) []*relstore.Relation {
	switch strategy {
	case ViewBased:
		return q.viewBasedTargetsLocked(existing)
	case Preferential:
		return q.preferentialTargets(existing)
	default:
		return existing
	}
}

// viewBasedTargetsLocked implements GETCOSTNEIGHBORHOOD over all persistent
// views (Algorithm 2): a relation is a target iff its node — or one of its
// attributes' nodes — lies within cost α of every view keyword, where α is
// the view's k-th best result cost. A view that has NOT yet filled its k
// result slots cannot prune at all (any new result would enter the top-k),
// so its radius is unbounded. Each view's keywords are re-expanded into a
// fresh overlay over the in-progress state, so keyword matches into the new
// source participate in the distances.
func (q *Q) viewBasedTargetsLocked(existing []*relstore.Relation) []*relstore.Relation {
	st := q.unpublishedStateLocked()
	inNeighborhood := make(map[string]bool)
	for _, v := range q.Views() {
		mat := v.mat.Load()
		alpha := 0.0
		if mat != nil {
			alpha = mat.alpha
		}
		if mat == nil || mat.result == nil || len(mat.result.Rows) < v.K {
			alpha = math.Inf(1)
		}
		ov := st.graph.NewOverlay()
		terminals := make([]steiner.NodeID, 0, len(v.Keywords))
		for _, kw := range v.Keywords {
			terminals = append(terminals, q.expandKeyword(st, ov, kw))
		}
		nb := steiner.NeighborhoodIntersectOn(ov.View(), terminals, alpha)
		for nid := range nb {
			n := ov.Node(nid)
			switch n.Kind {
			case searchgraph.KindRelation:
				inNeighborhood[n.Rel] = true
			case searchgraph.KindAttribute, searchgraph.KindValue:
				inNeighborhood[n.Ref.Relation] = true
			}
		}
	}
	var out []*relstore.Relation
	for _, rel := range existing {
		if inNeighborhood[rel.QualifiedName()] {
			out = append(out, rel)
		}
	}
	return out
}

// preferentialTargets implements Algorithm 3: existing relations are ranked
// by a vertex-cost prior — here the learned relation-authoritativeness
// weights ("rel:<name>" features; lower weight = preferred, mirroring the
// paper's estimation of P from feedback-learned feature weights) — and only
// the best PreferentialBudget relations are compared.
func (q *Q) preferentialTargets(existing []*relstore.Relation) []*relstore.Relation {
	w := q.Graph.Weights()
	// Quantise the prior: learned weights carry float noise in their low
	// bits (map-ordered summation in the updates), and unrounded values
	// would break ranking ties nondeterministically.
	prior := func(rel *relstore.Relation) float64 {
		return math.Round(w["rel:"+rel.QualifiedName()]*1e9) / 1e9
	}
	ranked := make([]*relstore.Relation, len(existing))
	copy(ranked, existing)
	sort.SliceStable(ranked, func(i, j int) bool {
		wi, wj := prior(ranked[i]), prior(ranked[j])
		if wi != wj {
			return wi < wj
		}
		return ranked[i].QualifiedName() < ranked[j].QualifiedName()
	})
	if len(ranked) > q.opts.PreferentialBudget {
		ranked = ranked[:q.opts.PreferentialBudget]
	}
	return ranked
}

// matchPair runs one matcher on one (new relation, existing relation)
// pair, applies the value-overlap filter if configured, and returns the
// surviving candidate alignments (best-first). Work counters accumulate in
// Stats and the report.
func (q *Q) matchPair(m matcher.Matcher, newRel, target *relstore.Relation, report *RegisterReport) []matcher.Alignment {
	nAttrs := len(newRel.Attributes) * len(target.Attributes)
	q.Stats.columnComparisonsUnfiltered.Add(int64(nAttrs))

	allowed := func(relstore.AttrRef, relstore.AttrRef) bool { return true }
	if q.opts.ValueOverlapFilter {
		pairs := q.overlappingPairs(newRel, target)
		q.Stats.attrComparisons.Add(int64(len(pairs)))
		allowed = func(a, b relstore.AttrRef) bool {
			return pairs[[2]relstore.AttrRef{a, b}] || pairs[[2]relstore.AttrRef{b, a}]
		}
	} else {
		q.Stats.attrComparisons.Add(int64(nAttrs))
	}

	q.Stats.baseMatcherCalls.Add(1)
	report.MatcherCalls++
	var filtered []matcher.Alignment
	for _, al := range m.Match(q.Catalog, newRel, target) {
		if allowed(al.A, al.B) {
			filtered = append(filtered, al)
		}
	}
	report.AttrComparisons = q.Stats.AttrComparisons()
	return filtered
}

// installAlignments keeps the top-Y candidates per attribute and installs
// them as weighted association edges. With mirror set, each alignment also
// counts against its B-side attribute's budget (the per-node accounting of
// Table 1, used for whole-catalog alignment); without it only the A side —
// the new source's attributes during registration — is budgeted. The
// endorsing matcher contributes its confidence bin; every other registered
// matcher contributes an absent marker, which a later endorsement by that
// matcher supersedes on merge.
func (q *Q) installAlignments(m matcher.Matcher, candidates []matcher.Alignment, report *RegisterReport, mirror bool) {
	mirrored := candidates
	if mirror {
		mirrored = make([]matcher.Alignment, 0, 2*len(candidates))
		mirrored = append(mirrored, candidates...)
		for _, al := range candidates {
			mirrored = append(mirrored, matcher.Alignment{A: al.B, B: al.A, Confidence: al.Confidence})
		}
	}
	q.installEdges(m, matcher.TopYPerAttribute(mirrored, q.opts.TopY), report)
}

// installEdges turns already-budgeted alignments into association edges.
func (q *Q) installEdges(m matcher.Matcher, aligns []matcher.Alignment, report *RegisterReport) {
	for _, al := range aligns {
		var feat learning.Vector
		if q.opts.RawConfidences {
			// Ablation mode: the matcher's real-valued mismatch enters the
			// cost directly under a single shared weight.
			feat = learning.Vector{"matcher:" + m.Name() + ":rawmismatch": 1 - al.Confidence}
		} else {
			feat = learning.Vector{q.binner.Feature(m.Name(), al.Confidence): 1}
		}
		for _, other := range q.matchers {
			if other.Name() != m.Name() {
				feat["matcher:"+other.Name()+":absent"] = 1
			}
		}
		q.Graph.AddAssociationEdge(al.A, al.B, feat)
		key := CanonicalPair(al.A.String(), al.B.String())
		if al.Confidence > report.AlignmentsByPair[key] {
			report.AlignmentsByPair[key] = al.Confidence
		}
	}
	report.AlignmentsAdded = len(report.AlignmentsByPair)
}

// overlappingPairs returns the attribute pairs between the two relations
// that share at least one distinct value (the content-index filter). The
// per-attribute overlap checks fan out across the catalog's per-shard
// parallelism bound — each check derives its value sets from the owning
// shard's cache — with the result map merged deterministically, so the
// filter's decisions are identical at any shard count or parallelism.
func (q *Q) overlappingPairs(a, b *relstore.Relation) map[[2]relstore.AttrRef]bool {
	return q.Catalog.OverlappingAttrPairs(a, b)
}

// AlignAllPairs runs every registered matcher over every unordered pair of
// relations currently in the catalog, installing the top-Y association
// edges per attribute (globally, as in Table 1's "top-Y edges per node").
// This is the initial association-generation step of the §5.2 experiments,
// where the search graph starts with bare tables and the matchers must
// propose all alignments.
func (q *Q) AlignAllPairs() *RegisterReport {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	report := &RegisterReport{AlignmentsByPair: make(map[string]float64)}
	rels := q.Catalog.Relations()
	for _, m := range q.matchers {
		var candidates []matcher.Alignment
		for i := 0; i < len(rels); i++ {
			for j := i + 1; j < len(rels); j++ {
				candidates = append(candidates, q.matchPair(m, rels[i], rels[j], report)...)
			}
		}
		q.installAlignments(m, candidates, report, true)
	}
	if q.persist != nil {
		// Whole-catalog alignment can merge features into PRE-EXISTING
		// edges, so "edges since n" would miss merges: log the complete
		// association list (replay replaces verbatim, so it is idempotent).
		// The signature predates persistence and returns no error; a log
		// failure surfaces at the next Checkpoint/Close.
		q.logMutationVoidLocked(walKindAssocBulk, walAssocBulk{
			Assocs: wireAssocs(q.Graph.AssociationFeatures()),
		})
	}
	q.publishLocked()
	return report
}

// CountTargetComparisons reports, without running any matcher, how many
// pairwise column comparisons each strategy would perform to align a
// hypothetical new source with the given relations against the current
// graph. Used by the Figure 8 scaling experiment, where the synthetic
// relations carry unrealistic labels that are not worth matching for real.
func (q *Q) CountTargetComparisons(newRels []*relstore.Relation, strategy AlignStrategy) int {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	existing := q.Catalog.Relations()
	// Exclude the new relations themselves if they are already registered.
	newSet := make(map[string]bool, len(newRels))
	for _, r := range newRels {
		newSet[r.QualifiedName()] = true
	}
	var pre []*relstore.Relation
	for _, r := range existing {
		if !newSet[r.QualifiedName()] {
			pre = append(pre, r)
		}
	}
	targets := q.selectTargetsLocked(pre, strategy)
	total := 0
	for _, nr := range newRels {
		for _, t := range targets {
			total += len(nr.Attributes) * len(t.Attributes)
		}
	}
	return total
}

// NeighborhoodRelations exposes the α-cost neighbourhood relation set of a
// view (for tests and the qshell explain command), computed against the
// view's current materialisation.
func (q *Q) NeighborhoodRelations(v *View) []string {
	mat := v.mat.Load()
	if mat == nil {
		return nil
	}
	nb := steiner.NeighborhoodIntersectOn(mat.ov.View(), mat.terminals, mat.alpha)
	set := make(map[string]bool)
	for nid := range nb {
		n := mat.ov.Node(nid)
		switch n.Kind {
		case searchgraph.KindRelation:
			set[n.Rel] = true
		case searchgraph.KindAttribute, searchgraph.KindValue:
			set[n.Ref.Relation] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
