package core

import (
	"sync"
	"sync/atomic"
)

// runIndexed runs fn(0), …, fn(n-1) across at most workers goroutines and
// returns the error of the lowest failing index, matching the error a
// serial loop would surface. Every index runs to completion at every
// worker count — including workers <= 1 — so both the collected results
// and fn's side effects (e.g. which views a failing Refresh rematerialised)
// are identical at any parallelism, not just on the success path.
//
// Callers pass a closure that writes its result into a pre-sized slice at
// position i, which is race-free because each index is claimed exactly once.
func runIndexed(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
