package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// The metamorphic property of the serving-layer cache: an engine with the
// epoch-keyed query cache enabled must produce answers BYTE-IDENTICAL to a
// cold engine at the same epoch — for every query, at every point of a
// randomised stream of queries, registrations and feedback. The cache is
// pure memoisation over immutable generations; if any answer ever
// diverges, the epoch-keying argument (no invalidation needed) is broken.

// cachePair builds two identically constructed engines over the fixture
// corpus: one with the default (enabled) cache, one cold.
func cachePair(t *testing.T) (cached, cold *Q) {
	t.Helper()
	build := func(disable bool) *Q {
		opts := DefaultOptions()
		opts.QueryCacheDisabled = disable
		q := New(opts)
		q.AddMatcher(meta.New())
		if err := q.AddTables(fixtureTables(t)...); err != nil {
			t.Fatal(err)
		}
		q.AddHandCodedAssociation(
			relstore.AttrRef{Relation: "go.term", Attr: "acc"},
			relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
		return q
	}
	return build(false), build(true)
}

// cacheQueryPool is the randomised stream's query vocabulary: a small hot
// set (the shape of production traffic), so repeats — and therefore cache
// hits — are guaranteed.
var cacheQueryPool = []string{
	"'plasma membrane' term",
	"term 'plasma membrane'", // reversed order: must key separately
	"'Kringle domain' entry",
	"name 'nucleus'",
	"'IPR000001' 'GO:0000001'",
	"entry pub title",
	"'Zinc finger' pub_id",
}

// cacheRegSource builds the step'th synthetic registration source, with
// pub_id overlap into the fixture so alignment finds real targets.
func cacheRegSource(t *testing.T, step int) []*relstore.Table {
	t.Helper()
	rel := &relstore.Relation{Source: fmt.Sprintf("reg%d", step), Name: "data",
		Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "label"}}}
	return []*relstore.Table{mkTable(t, rel, [][]string{
		{fmt.Sprintf("PUB%04d", 1+step%6), fmt.Sprintf("label %d", step)},
		{"PUB0002", "shared"},
	})}
}

// TestCachedVsUncachedMetamorphic drives both engines through the same
// randomised operation stream in lockstep and asserts, after every single
// operation, that epochs agree and every live view is byte-identical
// between the cached and the cold engine.
func TestCachedVsUncachedMetamorphic(t *testing.T) {
	cached, cold := cachePair(t)
	rng := rand.New(rand.NewSource(7))

	compareAllViews := func(step int) {
		t.Helper()
		if ce, ke := cached.Epoch(), cold.Epoch(); ce != ke {
			t.Fatalf("step %d: epochs diverged: cached=%d cold=%d", step, ce, ke)
		}
		cv, kv := cached.Views(), cold.Views()
		if len(cv) != len(kv) {
			t.Fatalf("step %d: view registries diverged: %d vs %d", step, len(cv), len(kv))
		}
		for i := range cv {
			if got, want := fingerprintView(cv[i]), fingerprintView(kv[i]); got != want {
				t.Fatalf("step %d: view %d diverged at epoch %d:\ncached:\n%s\ncold:\n%s",
					step, i, cached.Epoch(), got, want)
			}
		}
	}

	strategies := []AlignStrategy{Exhaustive, ViewBased, Preferential}
	for step := 0; step < 48; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // query (hot pool, repeats likely)
			query := cacheQueryPool[rng.Intn(len(cacheQueryPool))]
			v1, err1 := cached.Query(query)
			v2, err2 := cold.Query(query)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d: query %q error mismatch: cached=%v cold=%v", step, query, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if v1.Epoch() != v2.Epoch() {
				t.Fatalf("step %d: query %q epoch mismatch: %d vs %d", step, query, v1.Epoch(), v2.Epoch())
			}
			if got, want := fingerprintView(v1), fingerprintView(v2); got != want {
				t.Fatalf("step %d: query %q diverged at epoch %d:\ncached:\n%s\ncold:\n%s",
					step, query, v1.Epoch(), got, want)
			}
		case op < 8: // registration (new epoch; old cache entries must go cold)
			strat := strategies[rng.Intn(len(strategies))]
			src := cacheRegSource(t, step)
			if _, err := cached.RegisterSource(src, strat); err != nil {
				t.Fatalf("step %d: cached register: %v", step, err)
			}
			if _, err := cold.RegisterSource(cacheRegSource(t, step), strat); err != nil {
				t.Fatalf("step %d: cold register: %v", step, err)
			}
			compareAllViews(step)
		default: // feedback (weight update; every view refreshes)
			views := cold.Views()
			if len(views) == 0 {
				continue
			}
			vi := rng.Intn(len(views))
			rows := views[vi].Current().Result
			if rows == nil || len(rows.Rows) == 0 {
				continue
			}
			row := rng.Intn(len(rows.Rows))
			kind := FeedbackValid
			if rng.Intn(2) == 1 {
				kind = FeedbackInvalid
			}
			if err := cached.FeedbackRow(cached.Views()[vi], row, kind); err != nil {
				t.Fatalf("step %d: cached feedback: %v", step, err)
			}
			if err := cold.FeedbackRow(views[vi], row, kind); err != nil {
				t.Fatalf("step %d: cold feedback: %v", step, err)
			}
			compareAllViews(step)
		}
	}

	// Sanity: the equivalence above must actually have exercised the cache.
	cs := cached.CacheStats()
	if !cs.Enabled || cs.Materialization.Hits == 0 || cs.Expansion.Hits == 0 {
		t.Fatalf("cache barely exercised: %+v", cs)
	}
	if zero := cold.CacheStats(); zero.Enabled {
		t.Fatal("cold engine unexpectedly has a cache")
	}
}

// TestCachedQueriesUnderConcurrentWrites is the -race half: queriers
// hammer both engines while a writer registers sources in lockstep.
// Answers are recorded keyed by (query, epoch) — the same op sequence
// produces the same generation content at every epoch in both engines, so
// any (query, epoch) observed by both must be byte-identical, and any
// (query, epoch) observed twice within one engine (hit vs compute, or a
// racing recompute) must be identical too.
func TestCachedQueriesUnderConcurrentWrites(t *testing.T) {
	cached, cold := cachePair(t)
	engines := []*Q{cached, cold}

	type record struct {
		mu  sync.Mutex
		fps map[string]string // "epoch|query" -> fingerprint
	}
	recs := [2]*record{{fps: map[string]string{}}, {fps: map[string]string{}}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for ei, q := range engines {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(ei, g int, q *Q) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100*ei + g)))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					query := cacheQueryPool[rng.Intn(len(cacheQueryPool))]
					v, err := q.Query(query)
					if err != nil {
						t.Errorf("engine %d: query %q: %v", ei, query, err)
						return
					}
					key := fmt.Sprintf("%d|%s", v.Epoch(), query)
					fp := fingerprintView(v)
					q.DropView(v) // keep the refresh fan-out bounded
					r := recs[ei]
					r.mu.Lock()
					if prev, ok := r.fps[key]; ok && prev != fp {
						r.mu.Unlock()
						t.Errorf("engine %d: %s answered two different results at one epoch", ei, key)
						return
					}
					r.fps[key] = fp
					r.mu.Unlock()
				}
			}(ei, g, q)
		}
	}

	// Lockstep writer: same registrations, same order, on both engines.
	// Exhaustive keeps registration independent of the (racy) view registry.
	for step := 0; step < 5; step++ {
		for _, q := range engines {
			if _, err := q.RegisterSource(cacheRegSource(t, step), Exhaustive); err != nil {
				t.Fatalf("step %d: register: %v", step, err)
			}
		}
		time.Sleep(20 * time.Millisecond) // let queriers straddle epochs
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Cross-engine: every (epoch, query) both engines observed must match.
	overlap := 0
	for key, fp := range recs[0].fps {
		if other, ok := recs[1].fps[key]; ok {
			overlap++
			if other != fp {
				t.Errorf("cached and cold diverged at %s:\ncached:\n%s\ncold:\n%s", key, fp, other)
			}
		}
	}
	if overlap == 0 {
		t.Fatal("no (epoch, query) observed by both engines — the comparison never engaged")
	}

	// Quiesced final sweep: both engines at the same final epoch must agree
	// on the whole pool.
	for _, query := range cacheQueryPool {
		v1, err1 := cached.Query(query)
		v2, err2 := cold.Query(query)
		if err1 != nil || err2 != nil {
			t.Fatalf("final sweep %q: %v / %v", query, err1, err2)
		}
		if fingerprintView(v1) != fingerprintView(v2) {
			t.Errorf("final sweep %q diverged", query)
		}
	}
}

// TestConcurrentIdenticalQueriesComputeOnce pins request coalescing: N
// concurrent identical cold queries run the materialisation pipeline
// exactly once. The leader is parked inside the singleflight'd compute
// until all other callers are provably waiting on its flight, so none of
// them can have computed on its own.
func TestConcurrentIdenticalQueriesComputeOnce(t *testing.T) {
	q := newFixtureQ(t, true)
	const n = 8
	release := make(chan struct{})
	q.matComputeHook = func() { <-release }

	fps := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			v, err := q.Query("'plasma membrane' term")
			if err != nil {
				t.Error(err)
				fps <- ""
				return
			}
			fps <- fingerprintView(v)
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.qc.matG.Waiting() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers coalesced onto the flight", q.qc.matG.Waiting(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	first := <-fps
	for i := 1; i < n; i++ {
		if fp := <-fps; fp != first {
			t.Fatal("coalesced queries returned different answers")
		}
	}
	if execs := q.qc.matG.Execs(); execs != 1 {
		t.Fatalf("pipeline executed %d times for %d concurrent identical queries, want 1", execs, n)
	}
	if co := q.qc.matG.Coalesced(); co != n-1 {
		t.Fatalf("coalesced = %d, want %d", co, n-1)
	}
	// All n views share ONE materialisation object.
	views := q.Views()
	matSet := make(map[*viewMat]bool)
	for _, v := range views {
		matSet[v.mat.Load()] = true
	}
	if len(matSet) != 1 {
		t.Fatalf("%d distinct materialisations across %d coalesced views, want 1", len(matSet), len(views))
	}
}

// TestStatsAndCacheStatsRaceHammer samples every exported counter surface
// concurrently with queries, a registration and feedback. The race
// detector is the oracle: Query has been lock-free since the snapshot
// redesign, so any non-atomic counter on a hot path fails this test under
// -race.
func TestStatsAndCacheStatsRaceHammer(t *testing.T) {
	q, _ := cachePair(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 2; g++ { // queriers
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := q.Query(cacheQueryPool[rng.Intn(len(cacheQueryPool))])
				if err == nil {
					q.DropView(v)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // counter readers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = q.CacheStats()
			_ = q.Stats.BaseMatcherCalls()
			_ = q.Stats.AttrComparisons()
			_ = q.Stats.ColumnComparisonsUnfiltered()
			_ = q.Epoch()
		}
	}()

	// Writers: registrations bump Stats counters while readers sample them.
	for step := 0; step < 3; step++ {
		if _, err := q.RegisterSource(cacheRegSource(t, step), Exhaustive); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := q.Query(cacheQueryPool[0]); err == nil {
		if m := v.Current(); m.Result != nil && len(m.Result.Rows) > 0 {
			if err := q.FeedbackRow(v, 0, FeedbackValid); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
