package core

import (
	"fmt"
	"strings"
	"testing"

	"qint/internal/obs"
)

// viewFingerprint renders everything a client can observe about a view's
// answer — tree count, alpha, and every result row in order — so two views
// can be compared byte-for-byte.
func viewFingerprint(v *View) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trees=%d alpha=%.9f k=%d\n", len(v.Trees()), v.Alpha(), v.K)
	res := v.Result()
	if res == nil {
		sb.WriteString("nil result")
		return sb.String()
	}
	for _, row := range res.Rows {
		fmt.Fprintf(&sb, "%.9f|%d|%s\n", row.Cost, row.Branch, strings.Join(row.Values, "|"))
	}
	return sb.String()
}

// TestTracingMetamorphic is the tracing-changes-nothing check: the same
// query against identical fresh engines must produce byte-identical view
// fingerprints whether or not a trace rides along, and the trace itself
// must be internally consistent (spans for the pipeline stages, stage sum
// bounded by wall).
func TestTracingMetamorphic(t *testing.T) {
	for _, query := range []string{
		"entry 'PUB0001'",
		"'Kringle domain' 'PUB0001'",
		"'plasma membrane' 'IPR000001'",
	} {
		plain := newFixtureQ(t, true)
		traced := newFixtureQ(t, true)

		pv, err := plain.Query(query)
		if err != nil {
			t.Fatalf("Query(%q): %v", query, err)
		}
		tv, tr, err := traced.QueryTraced(query, 0)
		if err != nil {
			t.Fatalf("QueryTraced(%q): %v", query, err)
		}
		if got, want := viewFingerprint(tv), viewFingerprint(pv); got != want {
			t.Errorf("query %q: traced view differs from untraced:\n--- traced ---\n%s--- untraced ---\n%s", query, got, want)
		}

		if tr == nil || tr.ID() == "" {
			t.Fatalf("query %q: no trace returned", query)
		}
		totals := tr.StageTotals()
		for _, st := range []obs.Stage{obs.StageCacheLookup, obs.StageExpand, obs.StageSteiner, obs.StageMaterialize} {
			if _, ok := totals[st]; !ok {
				t.Errorf("query %q: trace missing stage %s; have %v", query, st, totals)
			}
		}
		if sum, wall := tr.StageSum(), tr.Wall(); sum <= 0 || sum > wall {
			t.Errorf("query %q: stage sum %v outside (0, wall=%v]", query, sum, wall)
		}
	}
}

// TestUntracedQueryReturnsNilTrace pins the disabled fast path: the plain
// entry points must not fabricate a trace.
func TestUntracedQueryReturnsNilTrace(t *testing.T) {
	q := newFixtureQ(t, false)
	if _, err := q.Query("entry 'PUB0001'"); err != nil {
		t.Fatal(err)
	}
	if q.metrics.queryDur.Count() != 0 {
		t.Errorf("untraced query recorded a duration sample")
	}
}

// TestEngineMetricsAccounting runs traced queries and checks the registry
// view agrees with the legacy accessors and with what actually happened:
// query totals, stage time, cache hit on the repeat, and a valid /metrics
// exposition covering the engine families.
func TestEngineMetricsAccounting(t *testing.T) {
	q := newFixtureQ(t, true)
	if _, _, err := q.QueryTraced("entry 'PUB0001'", 0); err != nil {
		t.Fatal(err)
	}
	// Identical ephemeral query: served from the materialisation cache.
	if _, _, err := q.QueryEphemeralTraced("entry 'PUB0001'", 0); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := q.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exp, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("engine exposition is invalid: %v", err)
	}
	if missing := exp.MissingFamilies([]string{
		"qint_queries_total", "qint_query_errors_total", "qint_query_duration_seconds",
		"qint_query_stage_seconds_total", "qint_query_stage_ops_total",
		"qint_align_base_matcher_calls_total", "qint_plan_branches_planned_total",
		"qint_exec_branches_total", "qint_cache_hits_total", "qint_epoch", "qint_views",
	}); len(missing) != 0 {
		t.Errorf("engine exposition missing families: %v", missing)
	}

	if v, _ := exp.Value("qint_queries_total"); v != 2 {
		t.Errorf("qint_queries_total = %v, want 2", v)
	}
	if v, _ := exp.Value("qint_query_duration_seconds_count"); v != 2 {
		t.Errorf("duration summary count = %v, want 2", v)
	}
	if v, _ := exp.Value(`qint_cache_hits_total{cache="materialization"}`); v != 1 {
		t.Errorf("materialization cache hits = %v, want 1", v)
	}
	if v, _ := exp.Value(`qint_query_stage_seconds_total{stage="expand"}`); v <= 0 {
		t.Errorf("expand stage seconds = %v, want > 0", v)
	}
	if v, _ := exp.Value(`qint_query_stage_ops_total{stage="cache_lookup"}`); v != 2 {
		t.Errorf("cache_lookup ops = %v, want 2", v)
	}

	// The legacy views read the same counters the registry exposes.
	cs := q.CacheStats()
	if got, _ := exp.Value(`qint_cache_hits_total{cache="materialization"}`); uint64(got) != cs.Materialization.Hits {
		t.Errorf("CacheStats materialization hits %d != exposed %v", cs.Materialization.Hits, got)
	}
	if got, _ := exp.Value("qint_exec_branches_total"); got <= 0 {
		t.Errorf("qint_exec_branches_total = %v, want > 0", got)
	}
	if got, _ := exp.Value("qint_align_base_matcher_calls_total"); int(got) != q.Stats.BaseMatcherCalls() {
		t.Errorf("Stats.BaseMatcherCalls %d != exposed %v", q.Stats.BaseMatcherCalls(), got)
	}
	if v, _ := exp.Value("qint_epoch"); v != float64(q.Epoch()) {
		t.Errorf("qint_epoch = %v, want %d", v, q.Epoch())
	}
	if q.EpochTime().IsZero() {
		t.Errorf("EpochTime is zero after publish")
	}
}
