package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"qint/internal/learning"
	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/storage"
)

// This file wires Q's single-writer mutation path into the durable storage
// engine (internal/storage). With Options.DataDir set, Open maps the newest
// published generation snapshot (catalog + built value-index segments +
// graph + view definitions) and replays the epoch WAL tail, and every
// subsequent mutation follows log-then-publish: the mutation's record is
// fsync'd into the WAL BEFORE the new state generation is published to
// readers, so any state a query could ever observe is already durable.
//
// The WAL logs mutation EFFECTS, not operations. Replaying a source
// registration cannot re-run the schema matchers — they are code,
// re-registered by the caller after Open — so a registration record carries
// the new tables plus every association edge the registration created, with
// its FINAL merged feature vector; replay installs them verbatim
// (searchgraph.RestoreAssociationEdge). Feedback records carry the weight
// delta the MIRA update produced, not the preference that caused it. Replay
// therefore needs no matchers, no MIRA, and no result sets, and reproduces
// the builder state exactly (restart_test.go pins restart ≡ rebuild).
//
// What is deliberately NOT logged:
//   - AddMatcher: matchers are code; re-registering installs only weights
//     that are still missing, so it converges with replayed feedback.
//   - Queries and views: Query is the lock-free read path and must not
//     fsync. View definitions persist via checkpoint snapshots instead
//     (Close checkpoints, so a clean shutdown loses nothing; a crash loses
//     only views created since the last checkpoint — their answers were
//     pure reads).
//   - SetParallelism / cache knobs: per-process tuning, not state.

// WAL record kinds (the storage layer treats them as opaque).
const (
	walKindAddTables byte = 1 // payload walRegister (Assocs empty)
	walKindRegister  byte = 2 // payload walRegister
	walKindWeights   byte = 3 // payload searchgraph.WeightDelta
	walKindHandAssoc byte = 4 // payload walAssoc
	walKindAssocBulk byte = 5 // payload walAssocBulk
)

// walTable is one table on the wire: the schema plus all rows.
type walTable struct {
	Source      string                `json:"source"`
	Name        string                `json:"name"`
	Attributes  []relstore.Attribute  `json:"attributes"`
	ForeignKeys []relstore.ForeignKey `json:"foreign_keys,omitempty"`
	Rows        [][]string            `json:"rows"`
}

// walAssoc is one association edge on the wire: canonical endpoints and the
// final feature vector, installed verbatim on replay.
type walAssoc struct {
	A        relstore.AttrRef `json:"a"`
	B        relstore.AttrRef `json:"b"`
	Features learning.Vector  `json:"features"`
}

// walRegister is the effect of AddTables (Assocs empty) or RegisterSource:
// the tables that entered the catalog and the association edges the
// registration's alignment fixpoint created.
type walRegister struct {
	Tables []walTable `json:"tables"`
	Assocs []walAssoc `json:"assocs,omitempty"`
}

// walAssocBulk is the effect of AlignAllPairs: the COMPLETE association
// list (whole-catalog alignment can merge features into pre-existing
// edges, so "edges created since" would miss merges).
type walAssocBulk struct {
	Assocs []walAssoc `json:"assocs"`
}

// snapMeta is the snapshot container's "meta" section: versioning plus the
// persistent view definitions (contents are a function of the graph).
type snapMeta struct {
	Version int        `json:"version"`
	Views   []viewSnap `json:"views"`
}

const snapMetaVersion = 1

// persistence is Q's attachment to a storage.Store: the checkpoint
// threshold and the background checkpointer folding the WAL into fresh
// generation snapshots. All store calls run under writerMu.
type persistence struct {
	store *storage.Store
	limit int64 // WAL bytes that trigger a background checkpoint; <0 = manual only

	kick chan struct{} // nudges the checkpointer (non-blocking sends)
	stop chan struct{}
	wg   sync.WaitGroup

	// lastErr records a persistence failure from a void-returning mutator
	// (AddHandCodedAssociation, AlignAllPairs) or the background
	// checkpointer; the next Checkpoint or Close surfaces it. Guarded by
	// writerMu.
	lastErr error

	// snapViewsSig fingerprints the view definitions the current snapshot
	// carries (they are the only snapshot-only state): a checkpoint with an
	// empty WAL and unchanged views has nothing to fold and is skipped, so
	// Close on an untouched instance does not rewrite the snapshot. Guarded
	// by writerMu.
	snapViewsSig string
	hasSnapshot  bool
}

// defaultCheckpointWALBytes is the WAL size at which the background
// checkpointer folds the log into a new generation snapshot.
const defaultCheckpointWALBytes = 1 << 20

// Open opens (or initialises) the durable store at opts.DataDir and
// reconstructs Q from it: the newest published generation snapshot is
// loaded — catalog decoded from its binary sections, built value-index
// segments installed verbatim without rebuilding, graph with learned
// weights — then the WAL tail replays the mutations committed since, and
// the persistent views rematerialise. Matchers are code, not state:
// re-register them after Open, exactly as with Load.
//
// The returned Q logs every mutation to the WAL before publishing it and
// checkpoints in the background once the WAL passes
// Options.CheckpointWALBytes. Call Close for a clean shutdown (it takes a
// final checkpoint, making the next Open a pure snapshot load).
func Open(opts Options) (*Q, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("core: Open requires Options.DataDir")
	}
	st, err := storage.Open(opts.DataDir)
	if err != nil {
		return nil, err
	}
	q, err := openFrom(st, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	return q, nil
}

func openFrom(st *storage.Store, opts Options) (*Q, error) {
	q := New(opts)
	var views []viewSnap
	snapLoaded := false

	if snap, ok, err := st.Snapshot(); err != nil {
		return nil, err
	} else if ok {
		snapLoaded = true
		catSec, okCat := snap.Section("catalog")
		graphSec, okGraph := snap.Section("graph")
		metaSec, okMeta := snap.Section("meta")
		if !okCat || !okGraph || !okMeta {
			return nil, fmt.Errorf("core: snapshot missing sections (have %v)", snap.SectionNames())
		}
		var meta snapMeta
		if err := json.Unmarshal(metaSec, &meta); err != nil {
			return nil, fmt.Errorf("core: snapshot meta: %w", err)
		}
		if meta.Version != snapMetaVersion {
			return nil, fmt.Errorf("core: unsupported snapshot meta version %d", meta.Version)
		}
		views = meta.Views
		cat, err := relstore.LoadCatalogBinary(catSec, q.opts.Shards)
		if err != nil {
			return nil, err
		}
		if segSec, ok := snap.Section("segments"); ok {
			if err := cat.LoadSegments(segSec); err != nil {
				return nil, err
			}
		}
		cat.UseScanFindValues(q.opts.ScanFindValues)
		cat.UseMaterialisedExec(q.opts.MaterialisedExec)
		cat.UsePlanner(!q.opts.PlannerOff)
		cat.SetParallelism(q.opts.Parallelism)
		cat.InstrumentExec(&q.metrics.exec) // the loaded catalog replaces the instrumented one
		graph, err := searchgraph.Load(bytes.NewReader(graphSec))
		if err != nil {
			return nil, err
		}
		q.Catalog = cat
		q.Graph = graph
		for _, rel := range cat.Relations() {
			q.indexRelation(rel) // the keyword corpus is derived state
		}
	}

	// Replay the WAL tail: each record's effect, applied without re-logging.
	for _, rec := range st.Records() {
		if err := q.replayRecord(rec); err != nil {
			return nil, fmt.Errorf("core: replay epoch %d: %w", rec.Epoch, err)
		}
	}

	q.writerMu.Lock()
	q.publishLocked()
	q.writerMu.Unlock()

	for _, vs := range views {
		if _, err := q.QueryKeywords(vs.Keywords, vs.K); err != nil {
			return nil, fmt.Errorf("core: restore view %v: %w", vs.Keywords, err)
		}
	}

	limit := q.opts.CheckpointWALBytes
	if limit == 0 {
		limit = defaultCheckpointWALBytes
	}
	p := &persistence{store: st, limit: limit, kick: make(chan struct{}, 1), stop: make(chan struct{})}
	p.hasSnapshot = snapLoaded
	p.snapViewsSig = q.viewsSigLocked()
	q.persist = p
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.stop:
				return
			case <-p.kick:
				q.writerMu.Lock()
				if err := q.checkpointLocked(); err != nil && p.lastErr == nil {
					p.lastErr = err
				}
				q.writerMu.Unlock()
			}
		}
	}()
	return q, nil
}

// replayRecord applies one committed WAL record to the builder state.
// Mutations here never re-log; publishing happens once, after the whole
// tail replays.
func (q *Q) replayRecord(rec storage.Record) error {
	switch rec.Kind {
	case walKindAddTables, walKindRegister:
		var p walRegister
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		tables := make([]*relstore.Table, len(p.Tables))
		for i, wt := range p.Tables {
			t, err := relstore.NewTable(&relstore.Relation{
				Source:      wt.Source,
				Name:        wt.Name,
				Attributes:  wt.Attributes,
				ForeignKeys: wt.ForeignKeys,
			}, wt.Rows)
			if err != nil {
				return err
			}
			tables[i] = t
		}
		q.writerMu.Lock()
		defer q.writerMu.Unlock()
		if err := q.addTablesLocked(tables...); err != nil {
			return err
		}
		for _, a := range p.Assocs {
			q.Graph.RestoreAssociationEdge(a.A, a.B, a.Features)
		}
		return nil
	case walKindWeights:
		var d searchgraph.WeightDelta
		if err := json.Unmarshal(rec.Payload, &d); err != nil {
			return err
		}
		q.writerMu.Lock()
		defer q.writerMu.Unlock()
		q.Graph.ApplyWeightDelta(d)
		return nil
	case walKindHandAssoc:
		var a walAssoc
		if err := json.Unmarshal(rec.Payload, &a); err != nil {
			return err
		}
		q.writerMu.Lock()
		defer q.writerMu.Unlock()
		q.Graph.RestoreAssociationEdge(a.A, a.B, a.Features)
		return nil
	case walKindAssocBulk:
		var p walAssocBulk
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		q.writerMu.Lock()
		defer q.writerMu.Unlock()
		for _, a := range p.Assocs {
			q.Graph.RestoreAssociationEdge(a.A, a.B, a.Features)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown WAL record kind %d", rec.Kind)
	}
}

// logMutationLocked commits one mutation record to the WAL — the
// log-then-publish step. When it returns nil the record is fsync'd; only
// then may the caller publish the new generation. Callers hold writerMu. A
// nil persistence (no DataDir) is a no-op.
func (q *Q) logMutationLocked(kind byte, payload any) error {
	if q.persist == nil {
		return nil
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: encode WAL record: %w", err)
	}
	if _, err := q.persist.store.Append(kind, data); err != nil {
		return err
	}
	if q.persist.limit >= 0 && q.persist.store.WALSize() >= q.persist.limit {
		select {
		case q.persist.kick <- struct{}{}:
		default: // a checkpoint is already pending
		}
	}
	return nil
}

// logMutationVoidLocked is logMutationLocked for mutators whose signatures
// predate persistence and return nothing: a failure is recorded and
// surfaced by the next Checkpoint or Close.
func (q *Q) logMutationVoidLocked(kind byte, payload any) {
	if err := q.logMutationLocked(kind, payload); err != nil && q.persist.lastErr == nil {
		q.persist.lastErr = err
	}
}

func wireTables(tables []*relstore.Table) []walTable {
	out := make([]walTable, len(tables))
	for i, t := range tables {
		out[i] = walTable{
			Source:      t.Relation.Source,
			Name:        t.Relation.Name,
			Attributes:  t.Relation.Attributes,
			ForeignKeys: t.Relation.ForeignKeys,
			Rows:        t.Rows,
		}
	}
	return out
}

func wireAssocs(recs []searchgraph.AssocRecord) []walAssoc {
	out := make([]walAssoc, len(recs))
	for i, r := range recs {
		out[i] = walAssoc{A: r.A, B: r.B, Features: r.Features}
	}
	return out
}

// Checkpoint folds the WAL into a fresh generation snapshot now (the
// background checkpointer calls the same path once the WAL passes the
// configured threshold). A no-op without a DataDir.
func (q *Q) Checkpoint() error {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	return q.checkpointLocked()
}

func (q *Q) checkpointLocked() error {
	if q.persist == nil {
		return nil
	}
	if err := q.persist.lastErr; err != nil {
		q.persist.lastErr = nil
		return err
	}
	// Nothing to fold: the WAL is empty and the snapshot already carries
	// the current view definitions (the only snapshot-only state), so the
	// existing generation is exact. Keeps a cold open → close cycle from
	// rewriting a large snapshot it only just read.
	if q.persist.hasSnapshot && q.persist.store.WALSize() == 0 &&
		q.viewsSigLocked() == q.persist.snapViewsSig {
		return nil
	}
	if err := q.persist.store.Publish(func(sa storage.SectionAdder) error {
		return q.writeSnapshotSections(sa)
	}); err != nil {
		return err
	}
	q.persist.hasSnapshot = true
	q.persist.snapViewsSig = q.viewsSigLocked()
	return nil
}

// viewsSigLocked fingerprints the persistent view definitions (keywords
// and k) for the checkpoint-skip test above.
func (q *Q) viewsSigLocked() string {
	var b bytes.Buffer
	for _, v := range q.Views() {
		fmt.Fprintf(&b, "%q:%d;", v.Keywords, v.K)
	}
	return b.String()
}

// writeSnapshotSections streams the builder state into a generation
// snapshot container. Section order is fixed; every encoder is
// deterministic, so identical states produce identical snapshot bytes.
func (q *Q) writeSnapshotSections(sa storage.SectionAdder) error {
	meta := snapMeta{Version: snapMetaVersion}
	for _, v := range q.Views() {
		meta.Views = append(meta.Views, viewSnap{Keywords: v.Keywords, K: v.K})
	}
	if err := sa.Section("meta", func(w io.Writer) error {
		return json.NewEncoder(w).Encode(meta)
	}); err != nil {
		return err
	}
	if err := sa.Section("catalog", q.Catalog.SaveBinary); err != nil {
		return err
	}
	if err := sa.Section("segments", q.Catalog.SaveSegments); err != nil {
		return err
	}
	return sa.Section("graph", q.Graph.Save)
}

// WALEpoch returns the storage engine's last committed epoch (0 without a
// DataDir) — for tests and ops visibility.
func (q *Q) WALEpoch() uint64 {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	if q.persist == nil {
		return 0
	}
	return q.persist.store.Epoch()
}

// Close shuts persistence down cleanly: the background checkpointer stops,
// a final checkpoint folds the WAL (so the next Open is a pure snapshot
// load and no view definitions are lost), and the store closes. A Q without
// a DataDir closes trivially. The Q must not be used after Close.
func (q *Q) Close() error {
	q.writerMu.Lock()
	p := q.persist
	q.writerMu.Unlock()
	if p == nil {
		return nil
	}
	close(p.stop)
	p.wg.Wait()
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	err := q.checkpointLocked()
	if cerr := p.store.Close(); err == nil {
		err = cerr
	}
	q.persist = nil
	return err
}
