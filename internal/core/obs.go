package core

import (
	"time"

	"qint/internal/obs"
	"qint/internal/relstore"
)

// engineMetrics is one Q instance's metric set: every counter the engine
// maintains, registered up front in a single obs.Registry so the whole
// engine exports through one /metrics exposition. The legacy stat surfaces
// (Stats, PlanStats, CacheStats) remain as views over these counters — no
// number is accounted twice.
//
// All instruments are registered at New time; the hot path only ever does
// atomic adds on pre-resolved pointers. Per-stage counters accumulate
// nanoseconds internally and expose seconds (ScaledCounter 1e-9), so the
// record path never touches a float.
type engineMetrics struct {
	reg *obs.Registry

	// Query pipeline.
	queries     *obs.Counter               // qint_queries_total
	queryErrors *obs.Counter               // qint_query_errors_total
	queryDur    *obs.Histogram             // qint_query_duration_seconds (traced queries)
	stageTime   map[obs.Stage]*obs.Counter // qint_query_stage_seconds_total{stage=}
	stageOps    map[obs.Stage]*obs.Counter // qint_query_stage_ops_total{stage=}

	// Registration-time alignment work (the Stats view).
	baseMatcherCalls            *obs.Counter
	attrComparisons             *obs.Counter
	columnComparisonsUnfiltered *obs.Counter

	// Cost-based join planner (the PlanStats view).
	planBranchesPlanned   *obs.Counter
	planBranchesReordered *obs.Counter
	planSharedSubtrees    *obs.Counter
	planSubplansComputed  *obs.Counter
	planCSEHits           *obs.Counter
	explainErrors         *obs.Counter // qint_plan_explain_errors_total

	// Top-k early termination.
	topkBranchesSkipped *obs.Counter

	// Branch executor totals, attached to the catalog (Clone propagates).
	exec relstore.ExecCounters

	// Serving-cache activity, labelled by cache. The qcache instances and
	// singleflight groups write these directly (Instrument), so CacheStats
	// reads and /metrics report the same numbers.
	expHits, expMisses, expEvictions *obs.Counter
	expComputes, expCoalesced        *obs.Counter
	matHits, matMisses, matEvictions *obs.Counter
	matComputes, matCoalesced        *obs.Counter
}

// newEngineMetrics registers every engine instrument in a fresh registry.
func newEngineMetrics() *engineMetrics {
	r := obs.NewRegistry()
	m := &engineMetrics{
		reg:         r,
		queries:     r.Counter("qint_queries_total", "Keyword queries materialised (persistent, ephemeral and traced paths)."),
		queryErrors: r.Counter("qint_query_errors_total", "Keyword queries that failed during materialisation."),
		queryDur:    r.Histogram("qint_query_duration_seconds", "Wall-clock latency of traced keyword queries."),
		stageTime:   make(map[obs.Stage]*obs.Counter),
		stageOps:    make(map[obs.Stage]*obs.Counter),

		baseMatcherCalls:            r.Counter("qint_align_base_matcher_calls_total", "Relation-pair matcher invocations during source registration (BASEMATCHER calls of Algorithms 2-3)."),
		attrComparisons:             r.Counter("qint_align_attr_comparisons_total", "Pairwise attribute comparisons performed, honouring the value-overlap filter when enabled."),
		columnComparisonsUnfiltered: r.Counter("qint_align_attr_comparisons_unfiltered_total", "Attribute comparisons as if no filter were available (Figure 7 accounting)."),

		planBranchesPlanned:   r.Counter("qint_plan_branches_planned_total", "Branch queries planned by the cost-based join planner."),
		planBranchesReordered: r.Counter("qint_plan_branches_reordered_total", "Planned branches whose join order differs from the naive spec order."),
		planSharedSubtrees:    r.Counter("qint_plan_shared_subtrees_total", "Distinct join prefixes shared by at least two branches of one batch."),
		planSubplansComputed:  r.Counter("qint_plan_subplans_total", "Shared join prefixes actually materialised as subplans."),
		planCSEHits:           r.Counter("qint_plan_cse_hits_total", "Branch executions served from an already-computed shared subplan."),
		explainErrors:         r.Counter("qint_plan_explain_errors_total", "Explain requests whose plan rendering failed."),

		topkBranchesSkipped: r.Counter("qint_topk_branches_skipped_total", "Branches never executed because k collected rows provably outranked them."),
	}
	for _, st := range obs.Stages() {
		l := obs.Label{Name: "stage", Value: string(st)}
		m.stageTime[st] = r.ScaledCounter("qint_query_stage_seconds_total", "Time spent per query-pipeline stage across traced queries.", 1e-9, l)
		m.stageOps[st] = r.Counter("qint_query_stage_ops_total", "Recorded spans per query-pipeline stage across traced queries.", l)
	}
	m.exec = relstore.ExecCounters{
		Branches: r.Counter("qint_exec_branches_total", "Completed branch-query executions across every execution path."),
		Rows:     r.Counter("qint_exec_rows_total", "Rows produced by branch executions (union input, before top-k truncation)."),
	}
	cacheCounter := func(name, help, cache string) *obs.Counter {
		return r.Counter(name, help, obs.Label{Name: "cache", Value: cache})
	}
	m.expHits = cacheCounter("qint_cache_hits_total", "Serving-cache lookup hits.", "expansion")
	m.matHits = cacheCounter("qint_cache_hits_total", "Serving-cache lookup hits.", "materialization")
	m.expMisses = cacheCounter("qint_cache_misses_total", "Serving-cache lookup misses.", "expansion")
	m.matMisses = cacheCounter("qint_cache_misses_total", "Serving-cache lookup misses.", "materialization")
	m.expEvictions = cacheCounter("qint_cache_evictions_total", "Serving-cache entries evicted for capacity.", "expansion")
	m.matEvictions = cacheCounter("qint_cache_evictions_total", "Serving-cache entries evicted for capacity.", "materialization")
	m.expComputes = cacheCounter("qint_cache_computes_total", "Cache-miss computations that actually executed.", "expansion")
	m.matComputes = cacheCounter("qint_cache_computes_total", "Cache-miss computations that actually executed.", "materialization")
	m.expCoalesced = cacheCounter("qint_cache_coalesced_total", "Cache misses served by piggybacking on an in-flight computation.", "expansion")
	m.matCoalesced = cacheCounter("qint_cache_coalesced_total", "Cache misses served by piggybacking on an in-flight computation.", "materialization")
	return m
}

// instrumentEngine attaches the metric set to the engine's subsystems and
// registers the callback gauges that read live state. Called from New
// before the Q is shared, so every swap happens writer-side.
func (q *Q) instrumentEngine(m *engineMetrics) {
	q.metrics = m
	q.Stats = Stats{
		baseMatcherCalls:            m.baseMatcherCalls,
		attrComparisons:             m.attrComparisons,
		columnComparisonsUnfiltered: m.columnComparisonsUnfiltered,
	}
	q.Catalog.InstrumentExec(&m.exec)
	if qc := q.qc; qc != nil {
		qc.exp.Instrument(m.expHits, m.expMisses, m.expEvictions)
		qc.expG.Instrument(m.expComputes, m.expCoalesced)
		qc.mat.Instrument(m.matHits, m.matMisses, m.matEvictions)
		qc.matG.Instrument(m.matComputes, m.matCoalesced)
	}
	m.reg.GaugeFunc("qint_epoch", "Current published state generation.", func() float64 {
		return float64(q.Epoch())
	})
	m.reg.GaugeFunc("qint_epoch_age_seconds", "Age of the current published state generation.", func() float64 {
		at := q.state().publishedAt
		if at.IsZero() {
			return 0
		}
		return time.Since(at).Seconds()
	})
	m.reg.GaugeFunc("qint_views", "Persistent views in the maintenance set.", func() float64 {
		q.viewsMu.Lock()
		n := len(q.views)
		q.viewsMu.Unlock()
		return float64(n)
	})
}

// Metrics returns the engine's metric registry — the server mounts its
// /metrics exposition over it and layers its own serving families on top.
func (q *Q) Metrics() *obs.Registry { return q.metrics.reg }

// observeTrace finishes a traced query and folds its breakdown into the
// registry: wall time into the duration summary, per-stage totals into the
// stage families. No-op on a nil trace, so the untraced path pays one nil
// check and no clock read.
func (q *Q) observeTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	m := q.metrics
	m.queryDur.Record(tr.Wall())
	for stage, d := range tr.StageTotals() {
		m.stageTime[stage].Add(int64(d))
		m.stageOps[stage].Inc()
	}
}

// countTopK folds one top-k pruned union's counters into the registry
// (executed branches and pulled rows are already counted by the executor's
// own ExecCounters).
func (q *Q) countTopK(s relstore.TopKUnionStats) {
	q.metrics.topkBranchesSkipped.Add(int64(s.BranchesSkipped))
}
