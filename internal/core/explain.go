package core

import (
	"fmt"
	"strings"

	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

// Explanation is the provenance of one view answer (paper §2.2: answers are
// "annotated with provenance information about their originating queries"):
// the Steiner tree that produced it, the generated SQL, and the association
// and foreign-key edges the join relied on — the alignments a user is
// implicitly judging when marking the answer good or bad.
type Explanation struct {
	// Tree is the originating query tree.
	Tree steiner.Tree
	// SQL is the conjunctive query's SQL rendering.
	SQL string
	// Cost is the answer's ranking cost.
	Cost float64
	// Joins describes each join edge used: "a ~ b (association, cost c)".
	Joins []string
	// Keywords describes each keyword match used.
	Keywords []string
}

// Explain returns the provenance of the view answer at rowIdx.
func (q *Q) Explain(v *View, rowIdx int) (*Explanation, error) {
	if v.Result == nil || rowIdx < 0 || rowIdx >= len(v.Result.Rows) {
		return nil, fmt.Errorf("core: explain row %d out of range", rowIdx)
	}
	row := v.Result.Rows[rowIdx]
	tree, err := q.treeForQuery(v, row.Branch)
	if err != nil {
		return nil, err
	}
	cq, err := q.treeToQuery(tree)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Tree: tree, SQL: cq.SQL(), Cost: row.Cost}
	for _, eid := range tree.Edges {
		e := q.Graph.Edge(eid)
		switch e.Kind {
		case searchgraph.EdgeAssociation, searchgraph.EdgeForeignKey:
			ex.Joins = append(ex.Joins, fmt.Sprintf("%s ~ %s (%s, cost %.3f)",
				e.A, e.B, e.Kind, q.Graph.Cost(eid)))
		case searchgraph.EdgeKeyword:
			se := q.Graph.G.Edge(eid)
			kwNode, target := q.Graph.Node(se.U), q.Graph.Node(se.V)
			if kwNode.Kind != searchgraph.KindKeyword {
				kwNode, target = target, kwNode
			}
			ex.Keywords = append(ex.Keywords, fmt.Sprintf("%q matched %s (cost %.3f)",
				kwNode.Value, target.Label(), q.Graph.Cost(eid)))
		}
	}
	return ex, nil
}

// String renders the explanation for terminals and logs.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost %.3f, tree %s\n", e.Cost, e.Tree.Key())
	for _, k := range e.Keywords {
		fmt.Fprintf(&b, "  keyword: %s\n", k)
	}
	for _, j := range e.Joins {
		fmt.Fprintf(&b, "  join:    %s\n", j)
	}
	fmt.Fprintf(&b, "  sql:     %s", e.SQL)
	return b.String()
}
