package core

import (
	"fmt"
	"strings"

	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/steiner"
)

// Explanation is the provenance of one view answer (paper §2.2: answers are
// "annotated with provenance information about their originating queries"):
// the Steiner tree that produced it, the generated SQL, and the association
// and foreign-key edges the join relied on — the alignments a user is
// implicitly judging when marking the answer good or bad.
type Explanation struct {
	// Tree is the originating query tree.
	Tree steiner.Tree
	// SQL is the conjunctive query's SQL rendering.
	SQL string
	// Cost is the answer's ranking cost.
	Cost float64
	// Joins describes each join edge used: "a ~ b (association, cost c)".
	Joins []string
	// Keywords describes each keyword match used.
	Keywords []string
	// Plan describes the execution plan of the originating branch query,
	// one line per atom in join order — the operator (scan, hash join,
	// nested loop), pushed-down condition counts, and the estimated
	// intermediate cardinality when the cost-based planner is on (the
	// default). The first line names the ordering mode.
	Plan []string
}

// Explain returns the provenance of the view answer at rowIdx, resolved
// against the view's current materialisation. It is a pure read: safe to
// call concurrently with queries and writers.
func (q *Q) Explain(v *View, rowIdx int) (*Explanation, error) {
	mat := v.mat.Load()
	if mat == nil || mat.result == nil || rowIdx < 0 || rowIdx >= len(mat.result.Rows) {
		return nil, fmt.Errorf("core: explain row %d out of range", rowIdx)
	}
	row := mat.result.Rows[rowIdx]
	tree, err := treeForQuery(mat, row.Branch)
	if err != nil {
		return nil, err
	}
	cq, err := treeToQuery(mat.st, mat.ov, tree)
	if err != nil {
		return nil, err
	}
	ov := mat.ov
	ex := &Explanation{Tree: tree, SQL: cq.SQL(), Cost: row.Cost}
	// A plan rendering failure must not silently vanish from the
	// explanation (it used to): count it and surface the error in place of
	// the plan lines — the rest of the provenance is still valid.
	if plan, perr := relstore.ExplainPlan(mat.st.cat, cq); perr != nil {
		q.metrics.explainErrors.Inc()
		ex.Plan = []string{fmt.Sprintf("plan: %v", perr)}
	} else {
		ex.Plan = plan
	}
	for _, eid := range tree.Edges {
		e := ov.Edge(eid)
		switch e.Kind {
		case searchgraph.EdgeAssociation, searchgraph.EdgeForeignKey:
			ex.Joins = append(ex.Joins, fmt.Sprintf("%s ~ %s (%s, cost %.3f)",
				e.A, e.B, e.Kind, ov.Cost(eid)))
		case searchgraph.EdgeKeyword:
			u, vEnd := ov.Endpoints(eid)
			kwNode, target := ov.Node(u), ov.Node(vEnd)
			if kwNode.Kind != searchgraph.KindKeyword {
				kwNode, target = target, kwNode
			}
			ex.Keywords = append(ex.Keywords, fmt.Sprintf("%q matched %s (cost %.3f)",
				kwNode.Value, target.Label(), ov.Cost(eid)))
		}
	}
	return ex, nil
}

// String renders the explanation for terminals and logs.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost %.3f, tree %s\n", e.Cost, e.Tree.Key())
	for _, k := range e.Keywords {
		fmt.Fprintf(&b, "  keyword: %s\n", k)
	}
	for _, j := range e.Joins {
		fmt.Fprintf(&b, "  join:    %s\n", j)
	}
	for _, p := range e.Plan {
		fmt.Fprintf(&b, "  plan:    %s\n", p)
	}
	fmt.Fprintf(&b, "  sql:     %s", e.SQL)
	return b.String()
}
