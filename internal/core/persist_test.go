package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	// Learn something so the snapshot carries non-default weights.
	if len(v.Trees()) >= 2 {
		if err := q.FeedbackFavorTree(v, v.Trees()[1]); err != nil {
			t.Fatal(err)
		}
	}
	beforeRows := renderRows(v)
	beforeWeights := q.Graph.Weights().Clone()

	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if q2.Catalog.NumRelations() != q.Catalog.NumRelations() {
		t.Errorf("relations: %d vs %d", q2.Catalog.NumRelations(), q.Catalog.NumRelations())
	}
	if q2.Graph.NumEdges() != q.Graph.NumEdges() {
		t.Errorf("edges: %d vs %d (duplicated keyword edges on load?)",
			q2.Graph.NumEdges(), q.Graph.NumEdges())
	}
	for k, w := range beforeWeights {
		if q2.Graph.Weights()[k] != w {
			t.Errorf("weight %s: %v vs %v", k, q2.Graph.Weights()[k], w)
		}
	}
	views := q2.Views()
	if len(views) != 1 {
		t.Fatalf("views = %d, want 1", len(views))
	}
	if got := renderRows(views[0]); got != beforeRows {
		t.Errorf("view contents changed across save/load:\nbefore:\n%s\nafter:\n%s",
			beforeRows, got)
	}
}

func TestSaveLoadEmptyInstance(t *testing.T) {
	q := New(DefaultOptions())
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q2.Catalog.NumRelations() != 0 || len(q2.Views()) != 0 {
		t.Error("empty instance should load empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for i, s := range []string{"", "{", `{"version": 42}`} {
		if _, err := Load(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestSaveLoadHostileKeywords pins the two round-trip bugs the keyword
// list used to hit: views were recreated by re-joining keywords as 'kw'
// (so a quote inside a keyword ended the phrase early and an empty keyword
// vanished), and were rematerialised at the loaded Options.K instead of
// the k each view was saved with. QueryKeywords takes the list and k
// verbatim, so every view — whatever its keywords contain — must come back
// byte-identical.
func TestSaveLoadHostileKeywords(t *testing.T) {
	q := newFixtureQ(t, true)
	hostile := [][]string{
		{"o'brien", "plasma membrane"},     // embedded quote
		{"'nucleus'", "entry"},             // fully quoted keyword
		{"", "nucleus"},                    // empty keyword survives verbatim
		{"zoë", "plasma membrane"},         // non-ASCII
		{"nul\x00byte", "entry"},           // NUL inside a keyword
		{"plasma membrane", "", "o'brien"}, // several at once
	}
	const savedK = 3 // differs from DefaultOptions().K=5 to catch the K bug
	var before []string
	for _, kws := range hostile {
		v, err := q.QueryKeywords(kws, savedK)
		if err != nil {
			t.Fatalf("QueryKeywords(%q): %v", kws, err)
		}
		before = append(before, fingerprintView(v))
	}

	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	views := q2.Views()
	if len(views) != len(hostile) {
		t.Fatalf("views = %d, want %d", len(views), len(hostile))
	}
	for i, v := range views {
		if v.K != savedK {
			t.Errorf("view %d: K = %d, want the saved %d (not Options.K)", i, v.K, savedK)
		}
		if got := fingerprintView(v); got != before[i] {
			t.Errorf("view %d (%q) changed across save/load:\nbefore:\n%s\nafter:\n%s",
				i, hostile[i], before[i], got)
		}
	}
}

// TestQueryKeywordsValidation: the list-based entry point rejects an empty
// list (no keywords means no terminals) but accepts any keyword contents.
func TestQueryKeywordsValidation(t *testing.T) {
	q := newFixtureQ(t, false)
	if _, err := q.QueryKeywords(nil, 0); err == nil {
		t.Error("empty keyword list should fail")
	}
	if _, err := q.QueryKeywords([]string{"nucleus", "entry"}, 0); err != nil {
		t.Errorf("k<=0 should fall back to Options.K: %v", err)
	}
}

func TestLoadedInstanceKeepsWorking(t *testing.T) {
	q := newFixtureQ(t, true)
	if _, err := q.Query("'plasma membrane' 'Kringle domain'"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// New query on the loaded instance.
	v, err := q2.Query("'nucleus' entry")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Trees()) == 0 {
		t.Error("loaded instance should answer new queries")
	}
	// Feedback still works.
	if len(v.Result().Rows) > 0 {
		if err := q2.FeedbackRow(v, 0, FeedbackValid); err != nil {
			t.Errorf("feedback on loaded instance: %v", err)
		}
	}
}
