// Package core is Q itself — the keyword search-based data integration
// system of Talukdar, Ives & Pereira (SIGMOD 2010). It wires the substrates
// together: the relational catalog, the search graph, the pluggable schema
// matchers, the Steiner-tree view constructor, the source-registration
// aligners (EXHAUSTIVE, VIEWBASEDALIGNER, PREFERENTIALALIGNER) and the
// MIRA-based association-cost learner driven by feedback on query answers.
//
// Lifecycle (Figure 1 of the paper):
//
//	q := core.New(core.DefaultOptions())
//	q.AddMatcher(meta.New())
//	q.AddMatcher(mad.New())
//	q.AddTables(tables...)          // initial sources
//	view, _ := q.Query("GO term name 'plasma membrane' publication titles")
//	...
//	q.RegisterSource(newTables, core.ViewBased)   // search graph maintenance
//	q.FeedbackFavor(view, goodAnswerRow)          // association cost learning
package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qint/internal/learning"
	"qint/internal/matcher"
	"qint/internal/obs"
	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/text"
)

// Options tune Q's behaviour. Zero values fall back to DefaultOptions.
type Options struct {
	// K is the number of top-scoring queries kept per view.
	K int
	// TopY is how many candidate alignments per attribute each matcher
	// contributes to the search graph (paper §3.2.3, typically 2 or 3).
	TopY int
	// MatchThreshold is the minimum keyword similarity for a keyword edge.
	MatchThreshold float64
	// MaxMatchesPerKeyword bounds how many nodes one keyword links to.
	MaxMatchesPerKeyword int
	// ColumnAlignThreshold is the cost threshold t under which an
	// association edge merges two output columns in the unioned view
	// (paper §2.2).
	ColumnAlignThreshold float64
	// AssocCostThreshold prunes association edges from query answering when
	// their cost exceeds it (the pruning threshold swept in Figure 10).
	// Zero means no pruning.
	AssocCostThreshold float64
	// UseApproxSteiner switches view construction to the BANKS-style
	// approximation (for large graphs).
	UseApproxSteiner bool
	// PreferentialBudget is how many top-prior relations the
	// PREFERENTIALALIGNER strategy compares a new source against.
	PreferentialBudget int
	// ValueOverlapFilter restricts attribute comparisons to pairs with at
	// least one shared value (the content-index variant of Figure 7).
	ValueOverlapFilter bool
	// ScanFindValues routes keyword→value matching through the reference
	// full-catalog scan instead of the inverted value index. The scan is the
	// executable specification the index is verified against (both return
	// byte-identical hits); keep it off outside of debugging and the
	// equivalence harnesses — the index is the fast path.
	ScanFindValues bool
	// MaterialisedExec routes branch execution through the reference
	// materialise-everything executor (relstore.ExecuteMaterialised) instead
	// of the streaming iterator pipeline. The materialised executor is the
	// executable specification the streaming path is verified against (both
	// return byte-identical ResultSets — the metamorphic suites in
	// internal/relstore/stream_test.go and internal/core/stream_test.go pin
	// it); keep it off outside of debugging and the equivalence harnesses —
	// streaming is the fast, allocation-free path.
	MaterialisedExec bool
	// TopKPrune streams each view's branch queries into the ranked union
	// with top-k early termination: branches are executed in tree-cost
	// order, and once k collected rows provably outrank everything a later
	// branch could produce (all of a branch's rows carry its cost and lose
	// ties to earlier branches), that branch is never executed at all. The
	// view's result then holds exactly the provably-top-k rows — its TopK(k)
	// prefix and α are byte-identical to the full path's, but the tail
	// beyond k is not computed. Off by default because feedback and the eval
	// harnesses inspect full result sets; turn it on for serving workloads
	// that only ever read the top k. Ignored when MaterialisedExec forces
	// the reference path.
	TopKPrune bool
	// PlannerOff disables the cost-based join planner and the cross-branch
	// common-subexpression elimination of branch execution
	// (relstore.UsePlanner(false)): every branch query then joins in the
	// naive first-connected order and no subplan is shared across a view's
	// branches — the unplanned executable spec the planner is verified
	// against. The planner is ON by default (hence the inverted name: the
	// zero value keeps it on — the knob the issue tracker calls
	// Options.Planner). Join order and subplan reuse are byte-invisible in
	// every view (internal/core/stream_test.go pins it); keep this off
	// outside of debugging, the equivalence harnesses and A/B measurement.
	// Like MaterialisedExec, the setting is part of the query-cache options
	// fingerprint.
	PlannerOff bool
	// RawConfidences disables the confidence binning of §4 and feeds each
	// matcher's real-valued confidence directly into the edge features (as
	// a mismatch value, 1 − confidence). The paper warns this destabilises
	// MIRA ("using real-valued features directly in the algorithm can
	// cause poor learning"); the ablation benchmark quantifies it.
	RawConfidences bool
	// Parallelism bounds the worker pool used by view materialisation: the
	// tree→query translations and conjunctive-query executions of one view
	// fan out across at most this many workers, and Refresh rematerialises
	// up to this many views concurrently. 1 means fully serial execution;
	// any value produces byte-identical views (the pipeline collects
	// branches by tree index and runs the signature-dedup and output-schema
	// alignment as deterministic post-passes in tree-cost order). Defaults
	// to runtime.GOMAXPROCS(0).
	Parallelism int
	// Shards is the number of hash partitions the catalog divides its
	// tables into. Catalog-wide work — keyword→value lookups (FindValues),
	// value-index segment builds, and the value-overlap pair generation of
	// registration-time alignment — fans out one worker per shard (bounded
	// by Parallelism) and merges with deterministic post-passes, and a
	// registration's catalog writes touch only the shards its new tables
	// hash into. Any shard count produces byte-identical answers (the
	// metamorphic suites in internal/relstore/shard_test.go and
	// internal/core/shard_test.go pin this); the knob trades parallel
	// fan-out and write locality against per-shard overhead. Defaults to
	// runtime.GOMAXPROCS(0). Fixed at construction: changing it requires a
	// new Q (or a persist round-trip with different Options).
	Shards int
	// QueryCacheDisabled turns the serving-layer query cache off entirely
	// (internal/qcache: the epoch-keyed keyword-expansion and view-
	// materialisation caches plus their request-coalescing singleflight).
	// The cache is on by default — cached answers are byte-identical to
	// uncached ones at every epoch (cache_test.go pins it), so disabling it
	// is only useful for measurement (BenchmarkColdQuery) and debugging.
	QueryCacheDisabled bool
	// ExpansionCacheEntries is the capacity, in entries, of the
	// keyword-expansion cache (one entry per (epoch, normalised keyword):
	// the scored, truncated value matches of that keyword). 0 means the
	// default; negative disables just this cache.
	ExpansionCacheEntries int
	// MaterializationCacheEntries is the capacity, in entries, of the view-
	// materialisation cache (one entry per (epoch, keyword sequence, k):
	// the complete immutable materialisation — trees, queries, ranked
	// result, α). Entries pin their state generation in memory, so this
	// knob trades memory for repeated-query latency. 0 means the default;
	// negative disables just this cache.
	MaterializationCacheEntries int
	// DataDir, when set, makes the instance durable: core.Open maps the
	// newest generation snapshot in the directory and replays the epoch WAL
	// tail, and every subsequent mutation is fsync'd to the WAL before its
	// state generation is published (log-then-publish). Empty means fully
	// in-memory (core.New semantics). See internal/storage for the on-disk
	// layout and doc.go for the durability contract.
	DataDir string
	// CheckpointWALBytes is the WAL size at which the background
	// checkpointer folds the log into a fresh generation snapshot
	// (write-temp → fsync → rename, then a new empty WAL). 0 means the
	// default (1 MiB); negative disables background checkpointing entirely —
	// only explicit Checkpoint/Close calls fold the log. Ignored without
	// DataDir.
	CheckpointWALBytes int64
}

// DefaultOptions returns the settings used throughout the paper's
// experiments: k=5, Y=2.
func DefaultOptions() Options {
	return Options{
		K:                           5,
		TopY:                        2,
		MatchThreshold:              0.30,
		MaxMatchesPerKeyword:        8,
		ColumnAlignThreshold:        2.0,
		AssocCostThreshold:          0,
		PreferentialBudget:          3,
		Parallelism:                 runtime.GOMAXPROCS(0),
		Shards:                      runtime.GOMAXPROCS(0),
		ExpansionCacheEntries:       4096,
		MaterializationCacheEntries: 256,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.K <= 0 {
		o.K = d.K
	}
	if o.TopY <= 0 {
		o.TopY = d.TopY
	}
	if o.MatchThreshold <= 0 {
		o.MatchThreshold = d.MatchThreshold
	}
	if o.MaxMatchesPerKeyword <= 0 {
		o.MaxMatchesPerKeyword = d.MaxMatchesPerKeyword
	}
	if o.ColumnAlignThreshold <= 0 {
		o.ColumnAlignThreshold = d.ColumnAlignThreshold
	}
	if o.PreferentialBudget <= 0 {
		o.PreferentialBudget = d.PreferentialBudget
	}
	if o.Parallelism <= 0 {
		o.Parallelism = d.Parallelism
	}
	if o.Shards <= 0 {
		o.Shards = d.Shards
	}
	if o.ExpansionCacheEntries == 0 {
		o.ExpansionCacheEntries = d.ExpansionCacheEntries
	}
	if o.MaterializationCacheEntries == 0 {
		o.MaterializationCacheEntries = d.MaterializationCacheEntries
	}
	return o
}

// Stats counts the alignment work done during source registration; the
// Figure 6–8 experiments read these counters.
//
// The counters are registry-owned (see internal/obs): New wires each field
// to the engine's qint_align_* metric families, so this struct is a typed
// view over the registry rather than a second accounting. obs counters are
// atomic, so readers (shells, monitoring, tests) can sample them
// concurrently with an in-flight registration without a data race — Query
// has been lock-free since the snapshot redesign, so nothing on any hot
// path may bump a plain int; the hammer in cache_test.go pins concurrent
// reads under -race.
type Stats struct {
	baseMatcherCalls            *obs.Counter
	attrComparisons             *obs.Counter
	columnComparisonsUnfiltered *obs.Counter
}

// BaseMatcherCalls counts relation-pair matcher invocations (the
// BASEMATCHER calls of Algorithms 2–3).
func (s *Stats) BaseMatcherCalls() int { return int(s.baseMatcherCalls.Load()) }

// AttrComparisons counts pairwise attribute comparisons performed,
// honouring the value-overlap filter when enabled.
func (s *Stats) AttrComparisons() int { return int(s.attrComparisons.Load()) }

// ColumnComparisonsUnfiltered counts comparisons as if no filter were
// available (the "No Additional Filter" accounting of Figure 7).
func (s *Stats) ColumnComparisonsUnfiltered() int {
	return int(s.columnComparisonsUnfiltered.Load())
}

// Reset zeroes the counters. (The registry sees the reset too — the
// /metrics families and this view are the same counters; Prometheus-style
// consumers treat a decrease as an ordinary counter reset.)
func (s *Stats) Reset() {
	s.baseMatcherCalls.Store(0)
	s.attrComparisons.Store(0)
	s.columnComparisonsUnfiltered.Store(0)
}

// qstate is one published generation of Q's shared read state. Writers
// build the next generation under writerMu and swap it in atomically;
// queries load it once and work against it for their whole lifetime, so a
// query sees either entirely the pre-write world or entirely the post-write
// world — never a torn mix (snapshot isolation).
type qstate struct {
	graph  *searchgraph.Snapshot
	cat    *relstore.Catalog
	corpus *text.Corpus
	// parallelism and execSem size the materialisation worker pools:
	// parallelism bounds per-view fan-out, execSem bounds concurrently
	// running branch executions across ALL in-flight materialisations so
	// overlapping queries cannot multiply the pool bound.
	parallelism int
	execSem     chan struct{}
	// epoch counts publishes that changed anything; a view materialisation
	// records the epoch it was computed at so staleness is one comparison.
	epoch uint64
	// publishedAt is when this generation was published (zero on interim
	// unpublished states) — the qint_epoch_age_seconds gauge and the /stats
	// epoch-age field read it.
	publishedAt time.Time
	// published marks a real, committed generation — the only kind the
	// query caches may key on. Registration builds interim qstates over the
	// half-built next generation (unpublishedStateLocked) that reuse the
	// previous epoch number; caching anything computed against one would
	// poison the cache for that epoch.
	published bool
}

// Q is the integration system.
//
// Concurrency model: Q is single-writer, many-query. The mutating
// operations — AddMatcher, AddTables, RegisterSource, feedback, Refresh,
// SetParallelism, AlignAllPairs — serialise on an internal writer mutex,
// mutate the builder structures (Catalog, Graph, corpus) copy-on-write,
// and publish the result as an immutable qstate via one atomic pointer
// swap. Query takes NO lock at all: it loads the current qstate, expands
// its keywords into a private search-graph overlay, and runs Steiner
// search, translation and execution entirely against that frozen
// generation. Independent queries therefore run fully concurrently with
// each other AND with an in-flight registration or feedback update; a
// query observes a write only by starting after its publish.
//
// The exported Catalog and Graph fields are the writer-side builders. They
// are safe to use from single-threaded tools (eval harnesses, qshell, the
// mediated adapter) but must not be touched while queries are in flight on
// other goroutines — concurrent readers go through the published snapshot.
type Q struct {
	Catalog *relstore.Catalog
	Graph   *searchgraph.Graph
	Stats   Stats

	opts     Options
	matchers []matcher.Matcher
	binner   learning.Binner
	mira     *learning.MIRA
	corpus   *text.Corpus

	// invalidators are called when the catalog grows (matcher caches).
	// Accessed under writerMu only.
	invalidators []func()

	// writerMu serialises all mutating operations.
	writerMu sync.Mutex
	// st is the published read state; never nil after New.
	st atomic.Pointer[qstate]
	// epoch counts state publishes that changed something.
	epoch uint64

	// viewsMu guards the views registry only (not view contents, which are
	// swapped atomically per view).
	viewsMu sync.Mutex
	views   []*View

	// qc is the serving-layer query cache (nil when disabled). Its entries
	// are keyed by published epoch, so it needs no invalidation: writers
	// just publish a new epoch and old entries age out.
	qc *queryCaches

	// matComputeHook, when set (tests only, before concurrency starts), is
	// called inside the singleflight'd materialisation compute — the
	// coalescing test parks the leader here while counting waiters.
	matComputeHook func()

	// persist is the durable-storage attachment (nil for in-memory
	// instances). Set once by Open before the Q is shared; its store is
	// accessed under writerMu thereafter. See durable.go.
	persist *persistence

	// metrics is the engine's metric set — every counter above and below
	// registers into its obs.Registry (obs.go). Set once by New, never nil
	// on a constructed Q.
	metrics *engineMetrics
}

// PlanStats is one snapshot of the planner's counters — an alias of the
// relstore type so servers need not import the storage layer directly.
type PlanStats = relstore.PlanStats

// PlanStats returns the accumulated planner counters across every view
// materialisation this instance executed: branches planned and reordered by
// the cost-based join planner, shared subtrees detected, subplans
// materialised, and branch executions served from the cross-branch subplan
// cache (CSE hits). All zero when Options.PlannerOff is set. Safe for
// concurrent use.
func (q *Q) PlanStats() PlanStats {
	m := q.metrics
	return PlanStats{
		BranchesPlanned:   m.planBranchesPlanned.Load(),
		BranchesReordered: m.planBranchesReordered.Load(),
		SharedSubtrees:    m.planSharedSubtrees.Load(),
		SubplansComputed:  m.planSubplansComputed.Load(),
		CSEHits:           m.planCSEHits.Load(),
	}
}

// addPlanStats folds one materialisation's planner counters into the
// registry (PlanStats reads them back as a snapshot view).
func (q *Q) addPlanStats(s relstore.PlanStats) {
	if s == (relstore.PlanStats{}) {
		return
	}
	m := q.metrics
	m.planBranchesPlanned.Add(s.BranchesPlanned)
	m.planBranchesReordered.Add(s.BranchesReordered)
	m.planSharedSubtrees.Add(s.SharedSubtrees)
	m.planSubplansComputed.Add(s.SubplansComputed)
	m.planCSEHits.Add(s.CSEHits)
}

// New constructs an empty Q system with the given options and the default
// initial weight vector.
func New(opts Options) *Q {
	o := opts.withDefaults()
	q := &Q{
		Catalog: relstore.NewCatalogSharded(o.Shards),
		Graph:   searchgraph.New(DefaultWeights()),
		opts:    o,
		binner:  learning.DefaultBinner(),
		mira:    learning.NewMIRA(),
		corpus:  text.NewCorpus(),
		qc:      newQueryCaches(o),
	}
	q.Catalog.UseScanFindValues(o.ScanFindValues)
	q.Catalog.UseMaterialisedExec(o.MaterialisedExec)
	q.Catalog.UsePlanner(!o.PlannerOff)
	q.Catalog.SetParallelism(o.Parallelism)
	q.instrumentEngine(newEngineMetrics())
	q.publishLocked()
	return q
}

// Options returns the effective options. Writer-side: do not call
// concurrently with SetParallelism.
func (q *Q) Options() Options { return q.opts }

// state loads the current published read state.
func (q *Q) state() *qstate { return q.st.Load() }

// CurrentCatalog returns the published catalog snapshot — the read-side
// counterpart of the writer-owned Catalog field, safe to use concurrently
// with writers.
func (q *Q) CurrentCatalog() *relstore.Catalog { return q.state().cat }

// CurrentGraph returns the published search-graph snapshot — the read-side
// counterpart of the writer-owned Graph field, safe to use concurrently
// with writers.
func (q *Q) CurrentGraph() *searchgraph.Snapshot { return q.state().graph }

// Epoch returns the published state generation (for tests and staleness
// checks).
func (q *Q) Epoch() uint64 { return q.state().epoch }

// EpochTime returns when the current state generation was published —
// /stats reports the age alongside the epoch number.
func (q *Q) EpochTime() time.Time { return q.state().publishedAt }

// publishLocked publishes the builder state as the next read generation.
// Callers hold writerMu (or are inside New, before any concurrency). When
// nothing changed since the last publish the previous generation is
// returned unchanged, so idempotent writers do not churn epochs.
func (q *Q) publishLocked() *qstate {
	q.corpus.Flush()
	snap := q.Graph.Snapshot()
	prev := q.st.Load()
	if prev != nil && prev.graph == snap && prev.cat == q.Catalog &&
		prev.corpus == q.corpus && prev.parallelism == q.opts.Parallelism {
		return prev
	}
	sem := make(chan struct{}, q.opts.Parallelism)
	if prev != nil && cap(prev.execSem) == q.opts.Parallelism {
		sem = prev.execSem // keep the global execution bound continuous
	}
	q.epoch++
	st := &qstate{
		graph:       snap,
		cat:         q.Catalog,
		corpus:      q.corpus,
		parallelism: q.opts.Parallelism,
		execSem:     sem,
		epoch:       q.epoch,
		publishedAt: time.Now(),
		published:   true,
	}
	q.st.Store(st)
	// Announce the new generation to the query caches: entries of older
	// epochs are now dead and evict first.
	q.qc.setLiveEpoch(st.epoch)
	return st
}

// unpublishedStateLocked builds a qstate over the CURRENT builder contents
// without publishing it. Registration uses it mid-flight: target selection
// and alignment need Steiner searches over the half-built next generation,
// but concurrent queries must keep seeing the previous one until the write
// commits atomically at the end.
func (q *Q) unpublishedStateLocked() *qstate {
	q.corpus.Flush()
	prev := q.st.Load()
	return &qstate{
		graph:       q.Graph.Snapshot(),
		cat:         q.Catalog,
		corpus:      q.corpus,
		parallelism: q.opts.Parallelism,
		execSem:     prev.execSem,
		epoch:       prev.epoch, // not a published generation
	}
}

// ownStorageLocked detaches the builder catalog and corpus from the
// published generation before mutating them (copy-on-write). The graph
// handles its own COW internally.
func (q *Q) ownStorageLocked() {
	st := q.st.Load()
	if st == nil {
		return
	}
	if st.cat == q.Catalog {
		q.Catalog = q.Catalog.Clone()
	}
	if st.corpus == q.corpus {
		q.corpus = q.corpus.Clone()
	}
}

// SetParallelism resizes the materialisation worker pool. n <= 0 restores
// the default (runtime.GOMAXPROCS(0)). It is a writer operation: queries
// already in flight keep their generation's pool; new queries see the new
// size.
func (q *Q) SetParallelism(n int) {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q.opts.Parallelism = n
	// The catalog's internal per-shard fan-outs follow the same bound. Its
	// parallelism field is read by lock-free readers, so detach the builder
	// from the published generation before touching it (copy-on-write, like
	// any other catalog mutation).
	q.ownStorageLocked()
	q.Catalog.SetParallelism(n)
	q.publishLocked()
}

// DefaultWeights is the initial weight vector: every learnable edge pays a
// small default cost; foreign keys carry the default FK cost c_d; keyword
// edges pay a base cost plus a mismatch penalty scaled by (1 − similarity);
// matcher-confidence bins are installed by AddMatcher.
func DefaultWeights() learning.Vector {
	return learning.Vector{
		"default":  0.10,
		"fk":       0.90,
		"kw":       0.20,
		"mismatch": 1.00,
	}
}

// AddMatcher registers a schema matcher and installs default weights for
// its confidence-bin features and its "absent" marker. Higher-confidence
// bins cost less, and an edge a matcher did NOT endorse pays the absent
// penalty — so agreement between matchers lowers an association's initial
// cost rather than stacking endorsement costs. Register all matchers
// before running alignments so absent markers are complete. An invalidate
// function, if the matcher exposes one, is called when the catalog grows.
func (q *Q) AddMatcher(m matcher.Matcher) {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	q.matchers = append(q.matchers, m)
	w := q.Graph.Weights().Clone()
	for bin := 0; bin < q.binner.NumBins(); bin++ {
		feat := fmt.Sprintf("matcher:%s:bin%d", m.Name(), bin)
		if _, ok := w[feat]; !ok {
			// bin0 (confidence <0.2) → 1.2 down to bin4 (≥0.8) → 0.2
			w[feat] = 1.2 - 0.25*float64(bin)
		}
	}
	if absent := "matcher:" + m.Name() + ":absent"; w[absent] == 0 {
		w[absent] = 0.85
	}
	if raw := "matcher:" + m.Name() + ":rawmismatch"; w[raw] == 0 {
		w[raw] = 1.0 // only used in RawConfidences ablation mode
	}
	q.Graph.SetWeights(w)
	if inv, ok := m.(interface{ Invalidate() }); ok {
		q.invalidators = append(q.invalidators, inv.Invalidate)
	}
	q.publishLocked()
}

// Matchers returns the registered matchers in registration order.
func (q *Q) Matchers() []matcher.Matcher { return q.matchers }

// AddTables registers the initial data sources (before any maintenance):
// tables enter the catalog, the search graph grows relation/attribute/FK
// nodes and edges, and schema labels are indexed for keyword matching. No
// alignment runs — initial sources are assumed interlinked by declared
// foreign keys (paper §2.1).
func (q *Q) AddTables(tables ...*relstore.Table) error {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	if err := q.addTablesLocked(tables...); err != nil {
		return err
	}
	// Log-then-publish: the record must be durable before any query can
	// observe the new tables.
	if err := q.logMutationLocked(walKindAddTables, walRegister{Tables: wireTables(tables)}); err != nil {
		return err
	}
	q.publishLocked()
	return nil
}

func (q *Q) addTablesLocked(tables ...*relstore.Table) error {
	q.ownStorageLocked()
	for _, t := range tables {
		if err := q.Catalog.AddTable(t); err != nil {
			return err
		}
	}
	// Sorted source order keeps graph node IDs deterministic across
	// identically-built instances (the parallel-equivalence harness compares
	// tree fingerprints; map iteration order is not deterministic), and the
	// batched AddSources call keeps foreign keys BETWEEN the new sources
	// intact regardless of that order.
	seen := make(map[string]bool)
	var sources []string
	for _, t := range tables {
		if !seen[t.Relation.Source] {
			seen[t.Relation.Source] = true
			sources = append(sources, t.Relation.Source)
		}
	}
	sort.Strings(sources)
	q.Graph.AddSources(q.Catalog, sources)
	for _, t := range tables {
		q.indexRelation(t.Relation)
	}
	// Incremental value-index maintenance: build the inverted-index segment
	// of each NEW table (segments are per-table and immutable, so nothing
	// global rebuilds), sharded by table across the worker pool. Skipped in
	// reference-scan mode, and also harmless to skip: the read path builds
	// missing segments lazily on first use.
	if !q.opts.ScanFindValues {
		cat := q.Catalog
		err := runIndexed(len(tables), q.opts.Parallelism, func(i int) error {
			cat.EnsureIndexed(tables[i].Relation.QualifiedName())
			return nil
		})
		if err != nil {
			return err
		}
	}
	for _, inv := range q.invalidators {
		inv()
	}
	return nil
}

// indexRelation adds a relation's schema labels to the keyword corpus.
// Callers hold writerMu and have detached the corpus via ownStorageLocked.
func (q *Q) indexRelation(rel *relstore.Relation) {
	qn := rel.QualifiedName()
	q.corpus.Add("rel:"+qn, rel.Name)
	for _, a := range rel.Attributes {
		ref := relstore.AttrRef{Relation: qn, Attr: a.Name}
		q.corpus.Add("attr:"+ref.String(), a.Name)
	}
}

// Views returns the persistent views in creation order.
func (q *Q) Views() []*View {
	q.viewsMu.Lock()
	defer q.viewsMu.Unlock()
	return append([]*View(nil), q.views...)
}

// DropView removes a view from the maintenance set; the view keeps its
// last materialisation but no longer participates in refreshes or
// VIEWBASEDALIGNER neighbourhoods.
func (q *Q) DropView(v *View) {
	q.viewsMu.Lock()
	defer q.viewsMu.Unlock()
	for i, x := range q.views {
		if x == v {
			q.views = append(q.views[:i], q.views[i+1:]...)
			return
		}
	}
}

// AddHandCodedAssociation inserts an association edge supplied by a human
// (or a bootstrap script) rather than a matcher, at high confidence — the
// "hand-coded schema alignments" of paper §2.1.
func (q *Q) AddHandCodedAssociation(a, b relstore.AttrRef) {
	q.writerMu.Lock()
	defer q.writerMu.Unlock()
	id := q.Graph.AddAssociationEdge(a, b, learning.Vector{"handcoded": 1})
	if q.persist != nil {
		// Log the edge's FINAL features (the add may have merged into an
		// existing pair). The signature predates persistence and returns
		// nothing; a log failure surfaces at the next Checkpoint/Close.
		r := q.Graph.AssociationRecord(id)
		q.logMutationVoidLocked(walKindHandAssoc, walAssoc{A: r.A, B: r.B, Features: r.Features})
	}
	q.publishLocked()
}

// parseKeywords splits a query string into keywords, honouring single
// quotes for multi-word phrases ('plasma membrane').
func parseKeywords(query string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range query {
		switch {
		case r == '\'':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case r == ' ' || r == '\t' || r == '\n':
			if inQuote {
				cur.WriteRune(r)
			} else {
				flush()
			}
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
