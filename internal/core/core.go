// Package core is Q itself — the keyword search-based data integration
// system of Talukdar, Ives & Pereira (SIGMOD 2010). It wires the substrates
// together: the relational catalog, the search graph, the pluggable schema
// matchers, the Steiner-tree view constructor, the source-registration
// aligners (EXHAUSTIVE, VIEWBASEDALIGNER, PREFERENTIALALIGNER) and the
// MIRA-based association-cost learner driven by feedback on query answers.
//
// Lifecycle (Figure 1 of the paper):
//
//	q := core.New(core.DefaultOptions())
//	q.AddMatcher(meta.New())
//	q.AddMatcher(mad.New())
//	q.AddTables(tables...)          // initial sources
//	view, _ := q.Query("GO term name 'plasma membrane' publication titles")
//	...
//	q.RegisterSource(newTables, core.ViewBased)   // search graph maintenance
//	q.FeedbackFavor(view, goodAnswerRow)          // association cost learning
package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"qint/internal/learning"
	"qint/internal/matcher"
	"qint/internal/relstore"
	"qint/internal/searchgraph"
	"qint/internal/text"
)

// Options tune Q's behaviour. Zero values fall back to DefaultOptions.
type Options struct {
	// K is the number of top-scoring queries kept per view.
	K int
	// TopY is how many candidate alignments per attribute each matcher
	// contributes to the search graph (paper §3.2.3, typically 2 or 3).
	TopY int
	// MatchThreshold is the minimum keyword similarity for a keyword edge.
	MatchThreshold float64
	// MaxMatchesPerKeyword bounds how many nodes one keyword links to.
	MaxMatchesPerKeyword int
	// ColumnAlignThreshold is the cost threshold t under which an
	// association edge merges two output columns in the unioned view
	// (paper §2.2).
	ColumnAlignThreshold float64
	// AssocCostThreshold prunes association edges from query answering when
	// their cost exceeds it (the pruning threshold swept in Figure 10).
	// Zero means no pruning.
	AssocCostThreshold float64
	// UseApproxSteiner switches view construction to the BANKS-style
	// approximation (for large graphs).
	UseApproxSteiner bool
	// PreferentialBudget is how many top-prior relations the
	// PREFERENTIALALIGNER strategy compares a new source against.
	PreferentialBudget int
	// ValueOverlapFilter restricts attribute comparisons to pairs with at
	// least one shared value (the content-index variant of Figure 7).
	ValueOverlapFilter bool
	// RawConfidences disables the confidence binning of §4 and feeds each
	// matcher's real-valued confidence directly into the edge features (as
	// a mismatch value, 1 − confidence). The paper warns this destabilises
	// MIRA ("using real-valued features directly in the algorithm can
	// cause poor learning"); the ablation benchmark quantifies it.
	RawConfidences bool
	// Parallelism bounds the worker pool used by view materialisation: the
	// tree→query translations and conjunctive-query executions of one view
	// fan out across at most this many workers, and Refresh rematerialises
	// up to this many views concurrently. 1 means fully serial execution;
	// any value produces byte-identical views (the pipeline collects
	// branches by tree index and runs the signature-dedup and output-schema
	// alignment as deterministic post-passes in tree-cost order). Defaults
	// to runtime.GOMAXPROCS(0).
	Parallelism int
}

// DefaultOptions returns the settings used throughout the paper's
// experiments: k=5, Y=2.
func DefaultOptions() Options {
	return Options{
		K:                    5,
		TopY:                 2,
		MatchThreshold:       0.30,
		MaxMatchesPerKeyword: 8,
		ColumnAlignThreshold: 2.0,
		AssocCostThreshold:   0,
		PreferentialBudget:   3,
		Parallelism:          runtime.GOMAXPROCS(0),
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.K <= 0 {
		o.K = d.K
	}
	if o.TopY <= 0 {
		o.TopY = d.TopY
	}
	if o.MatchThreshold <= 0 {
		o.MatchThreshold = d.MatchThreshold
	}
	if o.MaxMatchesPerKeyword <= 0 {
		o.MaxMatchesPerKeyword = d.MaxMatchesPerKeyword
	}
	if o.ColumnAlignThreshold <= 0 {
		o.ColumnAlignThreshold = d.ColumnAlignThreshold
	}
	if o.PreferentialBudget <= 0 {
		o.PreferentialBudget = d.PreferentialBudget
	}
	if o.Parallelism <= 0 {
		o.Parallelism = d.Parallelism
	}
	return o
}

// Stats counts the alignment work done during source registration; the
// Figure 6–8 experiments read these counters.
type Stats struct {
	// BaseMatcherCalls counts relation-pair matcher invocations (the
	// BASEMATCHER calls of Algorithms 2–3).
	BaseMatcherCalls int
	// AttrComparisons counts pairwise attribute comparisons performed,
	// honouring the value-overlap filter when enabled.
	AttrComparisons int
	// ColumnComparisonsUnfiltered counts comparisons as if no filter were
	// available (the "No Additional Filter" accounting of Figure 7).
	ColumnComparisonsUnfiltered int
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

// Q is the integration system. It follows a single-writer model: callers
// serialise queries, registrations and feedback (as the single-user-view
// model of the paper assumes). Internally, however, one call may fan work
// across a bounded pool of Options.Parallelism workers — a view's
// tree→query translations and branch executions run concurrently, and
// Refresh rematerialises views concurrently. graphMu serialises the
// graph-mutating phase of materialisation (keyword activation, Steiner
// search, translation and column alignment all read volatile graph state)
// while branch execution, which only reads the immutable catalog, overlaps
// freely across views.
type Q struct {
	Catalog *relstore.Catalog
	Graph   *searchgraph.Graph
	Stats   Stats

	opts     Options
	matchers []matcher.Matcher
	binner   learning.Binner
	mira     *learning.MIRA
	corpus   *text.Corpus

	views []*View

	// expanded tracks, per keyword, which target nodes already have a
	// keyword edge, so re-expansion after registration only adds new links.
	expanded map[string]map[string]bool

	// invalidators are called when the catalog grows (matcher caches).
	invalidators []func()

	// graphMu serialises the graph phase of materialize across the views a
	// parallel Refresh is rematerialising.
	graphMu sync.Mutex

	// execSem bounds concurrently running branch executions across ALL
	// in-flight materialisations to Options.Parallelism, so a parallel
	// Refresh of many views cannot multiply the two pool bounds.
	execSem chan struct{}
}

// New constructs an empty Q system with the given options and the default
// initial weight vector.
func New(opts Options) *Q {
	o := opts.withDefaults()
	return &Q{
		Catalog:  relstore.NewCatalog(),
		Graph:    searchgraph.New(DefaultWeights()),
		opts:     o,
		binner:   learning.DefaultBinner(),
		mira:     learning.NewMIRA(),
		corpus:   text.NewCorpus(),
		expanded: make(map[string]map[string]bool),
		execSem:  make(chan struct{}, o.Parallelism),
	}
}

// Options returns the effective options.
func (q *Q) Options() Options { return q.opts }

// SetParallelism resizes the materialisation worker pool. n <= 0 restores
// the default (runtime.GOMAXPROCS(0)). Like every other mutation, it is a
// single-writer operation: do not call it while queries are in flight.
func (q *Q) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q.opts.Parallelism = n
	q.execSem = make(chan struct{}, n)
}

// DefaultWeights is the initial weight vector: every learnable edge pays a
// small default cost; foreign keys carry the default FK cost c_d; keyword
// edges pay a base cost plus a mismatch penalty scaled by (1 − similarity);
// matcher-confidence bins are installed by AddMatcher.
func DefaultWeights() learning.Vector {
	return learning.Vector{
		"default":  0.10,
		"fk":       0.90,
		"kw":       0.20,
		"mismatch": 1.00,
	}
}

// AddMatcher registers a schema matcher and installs default weights for
// its confidence-bin features and its "absent" marker. Higher-confidence
// bins cost less, and an edge a matcher did NOT endorse pays the absent
// penalty — so agreement between matchers lowers an association's initial
// cost rather than stacking endorsement costs. Register all matchers
// before running alignments so absent markers are complete. An invalidate
// function, if the matcher exposes one, is called when the catalog grows.
func (q *Q) AddMatcher(m matcher.Matcher) {
	q.matchers = append(q.matchers, m)
	w := q.Graph.Weights().Clone()
	for bin := 0; bin < q.binner.NumBins(); bin++ {
		feat := fmt.Sprintf("matcher:%s:bin%d", m.Name(), bin)
		if _, ok := w[feat]; !ok {
			// bin0 (confidence <0.2) → 1.2 down to bin4 (≥0.8) → 0.2
			w[feat] = 1.2 - 0.25*float64(bin)
		}
	}
	if absent := "matcher:" + m.Name() + ":absent"; w[absent] == 0 {
		w[absent] = 0.85
	}
	if raw := "matcher:" + m.Name() + ":rawmismatch"; w[raw] == 0 {
		w[raw] = 1.0 // only used in RawConfidences ablation mode
	}
	q.Graph.SetWeights(w)
	if inv, ok := m.(interface{ Invalidate() }); ok {
		q.invalidators = append(q.invalidators, inv.Invalidate)
	}
}

// Matchers returns the registered matchers in registration order.
func (q *Q) Matchers() []matcher.Matcher { return q.matchers }

// AddTables registers the initial data sources (before any maintenance):
// tables enter the catalog, the search graph grows relation/attribute/FK
// nodes and edges, and schema labels are indexed for keyword matching. No
// alignment runs — initial sources are assumed interlinked by declared
// foreign keys (paper §2.1).
func (q *Q) AddTables(tables ...*relstore.Table) error {
	for _, t := range tables {
		if err := q.Catalog.AddTable(t); err != nil {
			return err
		}
	}
	// Sorted source order keeps graph node IDs deterministic across
	// identically-built instances (the parallel-equivalence harness compares
	// tree fingerprints; map iteration order is not deterministic), and the
	// batched AddSources call keeps foreign keys BETWEEN the new sources
	// intact regardless of that order.
	seen := make(map[string]bool)
	var sources []string
	for _, t := range tables {
		if !seen[t.Relation.Source] {
			seen[t.Relation.Source] = true
			sources = append(sources, t.Relation.Source)
		}
	}
	sort.Strings(sources)
	q.Graph.AddSources(q.Catalog, sources)
	for _, t := range tables {
		q.indexRelation(t.Relation)
	}
	for _, inv := range q.invalidators {
		inv()
	}
	return nil
}

// indexRelation adds a relation's schema labels to the keyword corpus.
func (q *Q) indexRelation(rel *relstore.Relation) {
	qn := rel.QualifiedName()
	q.corpus.Add("rel:"+qn, rel.Name)
	for _, a := range rel.Attributes {
		ref := relstore.AttrRef{Relation: qn, Attr: a.Name}
		q.corpus.Add("attr:"+ref.String(), a.Name)
	}
}

// Views returns the persistent views in creation order.
func (q *Q) Views() []*View { return q.views }

// DropView removes a view from the maintenance set; its keyword and value
// nodes remain in the search graph (topology is append-only) but the view no
// longer participates in refreshes or VIEWBASEDALIGNER neighbourhoods.
func (q *Q) DropView(v *View) {
	for i, x := range q.views {
		if x == v {
			q.views = append(q.views[:i], q.views[i+1:]...)
			return
		}
	}
}

// AddHandCodedAssociation inserts an association edge supplied by a human
// (or a bootstrap script) rather than a matcher, at high confidence — the
// "hand-coded schema alignments" of paper §2.1.
func (q *Q) AddHandCodedAssociation(a, b relstore.AttrRef) {
	q.Graph.AddAssociationEdge(a, b, learning.Vector{"handcoded": 1})
}

// parseKeywords splits a query string into keywords, honouring single
// quotes for multi-word phrases ('plasma membrane').
func parseKeywords(query string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range query {
		switch {
		case r == '\'':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case r == ' ' || r == '\t' || r == '\n':
			if inQuote {
				cur.WriteRune(r)
			} else {
				flush()
			}
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
