package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"qint/internal/datasets"
	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// The metamorphic property under test: a view materialised with a parallel
// worker pool must be byte-identical — trees, query signatures and SQL,
// unified columns, ranked rows with provenance, and α — to the same view
// materialised serially. fingerprintView captures everything a view exposes
// into one comparable string.
func fingerprintView(v *View) string {
	// One coherent materialisation: the individual accessors could straddle
	// a concurrent refresh and mix generations.
	m := v.Current()
	var b strings.Builder
	fmt.Fprintf(&b, "keywords=%v k=%d alpha=%.12f\n", v.Keywords, v.K, m.Alpha)
	for _, t := range m.Trees {
		fmt.Fprintf(&b, "tree %s cost=%.12f\n", t.Key(), t.Cost)
	}
	for _, cq := range m.Queries {
		fmt.Fprintf(&b, "query sig=%s\nquery sql=%s\n", cq.Signature(), cq.SQL())
	}
	fmt.Fprintf(&b, "cols=%s\n", strings.Join(m.Result.Columns, "|"))
	for _, r := range m.Result.Rows {
		fmt.Fprintf(&b, "row %q cost=%.12f branch=%d prov=%s\n",
			r.Values, r.Cost, r.Branch, r.Provenance)
	}
	return b.String()
}

// equivCorpus is one dataset of the equivalence suite: a builder that loads
// a fresh Q at the given parallelism, the keyword queries to ask, and a new
// source whose registration (and the Refresh it triggers) must also be
// order-independent.
type equivCorpus struct {
	name     string
	build    func(t *testing.T, parallelism int) *Q
	queries  []string
	newTable func(t *testing.T) *relstore.Table
}

func equivCorpora() []equivCorpus {
	return []equivCorpus{
		{
			name: "interpro",
			build: func(t *testing.T, parallelism int) *Q {
				opts := DefaultOptions()
				opts.Parallelism = parallelism
				q := New(opts)
				q.AddMatcher(meta.New())
				q.AddMatcher(mad.New())
				corpus := datasets.InterProGO()
				if err := q.AddTables(corpus.Tables...); err != nil {
					t.Fatal(err)
				}
				q.AlignAllPairs()
				return q
			},
			queries: datasets.InterProGO().Queries,
			newTable: func(t *testing.T) *relstore.Table {
				rel := &relstore.Relation{Source: "ext", Name: "citations",
					Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "cited_by"}}}
				tb, err := relstore.NewTable(rel, [][]string{
					{"PUB00001", "PUB00002"}, {"PUB00003", "PUB00001"}})
				if err != nil {
					t.Fatal(err)
				}
				return tb
			},
		},
		{
			name: "gbco",
			build: func(t *testing.T, parallelism int) *Q {
				opts := DefaultOptions()
				opts.Parallelism = parallelism
				q := New(opts)
				q.AddMatcher(meta.New())
				corpus := datasets.GBCO()
				if err := q.AddTables(corpus.Tables...); err != nil {
					t.Fatal(err)
				}
				return q
			},
			queries: func() []string {
				var out []string
				for _, trial := range datasets.GBCO().Trials {
					out = append(out, trial.Keywords)
				}
				return out
			}(),
			newTable: func(t *testing.T) *relstore.Table {
				rel := &relstore.Relation{Source: "ext", Name: "annotations",
					Attributes: []relstore.Attribute{{Name: "pubmed_id"}, {Name: "label"}}}
				tb, err := relstore.NewTable(rel, [][]string{
					{"PUB00001", "curated"}, {"PUB00004", "automatic"}})
				if err != nil {
					t.Fatal(err)
				}
				return tb
			},
		},
		{
			name: "synthetic",
			build: func(t *testing.T, parallelism int) *Q {
				opts := DefaultOptions()
				opts.Parallelism = parallelism
				q := New(opts)
				q.AddMatcher(meta.New())
				q.AddMatcher(mad.New())
				if err := q.AddTables(syntheticCorpus(t)...); err != nil {
					t.Fatal(err)
				}
				q.AlignAllPairs()
				return q
			},
			queries: []string{
				"alice widget",
				"bob gadget",
				"springfield sprocket",
				"'C1' item",
				"carol city",
			},
			newTable: func(t *testing.T) *relstore.Table {
				rel := &relstore.Relation{Source: "ext", Name: "reviews",
					Attributes: []relstore.Attribute{{Name: "customer_id"}, {Name: "stars"}}}
				tb, err := relstore.NewTable(rel, [][]string{
					{"C1", "5"}, {"C3", "2"}})
				if err != nil {
					t.Fatal(err)
				}
				return tb
			},
		},
	}
}

// syntheticCorpus is a small deterministic two-source schema with
// overlapping join values, so the matchers must discover the customer_id
// association and queries union rows from several Steiner trees.
func syntheticCorpus(t *testing.T) []*relstore.Table {
	t.Helper()
	mk := func(rel *relstore.Relation, rows [][]string) *relstore.Table {
		tb, err := relstore.NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	customers := &relstore.Relation{Source: "crm", Name: "customers",
		Attributes: []relstore.Attribute{{Name: "customer_id"}, {Name: "name"}, {Name: "city"}}}
	orders := &relstore.Relation{Source: "sales", Name: "orders",
		Attributes: []relstore.Attribute{{Name: "order_id"}, {Name: "customer_id"}, {Name: "item"}}}
	shipments := &relstore.Relation{Source: "sales", Name: "shipments",
		Attributes: []relstore.Attribute{{Name: "order_id"}, {Name: "carrier"}},
		ForeignKeys: []relstore.ForeignKey{
			{FromAttr: "order_id", ToRelation: "sales.orders", ToAttr: "order_id"}}}
	return []*relstore.Table{
		mk(customers, [][]string{
			{"C1", "alice", "springfield"},
			{"C2", "bob", "shelbyville"},
			{"C3", "carol", "springfield"},
		}),
		mk(orders, [][]string{
			{"O1", "C1", "widget"},
			{"O2", "C2", "gadget"},
			{"O3", "C1", "sprocket"},
			{"O4", "C3", "widget"},
		}),
		mk(shipments, [][]string{
			{"O1", "postal"},
			{"O2", "courier"},
			{"O4", "postal"},
		}),
	}
}

// TestParallelQueryEquivalence materialises every dataset query on a serial
// instance (Parallelism=1) and a parallel one (Parallelism=8) and demands
// byte-identical views.
func TestParallelQueryEquivalence(t *testing.T) {
	for _, c := range equivCorpora() {
		t.Run(c.name, func(t *testing.T) {
			serial := c.build(t, 1)
			parallel := c.build(t, 8)
			if got := parallel.Options().Parallelism; got != 8 {
				t.Fatalf("Parallelism = %d, want 8", got)
			}
			for _, kw := range c.queries {
				vs, err := serial.Query(kw)
				if err != nil {
					t.Fatalf("serial query %q: %v", kw, err)
				}
				vp, err := parallel.Query(kw)
				if err != nil {
					t.Fatalf("parallel query %q: %v", kw, err)
				}
				fs, fp := fingerprintView(vs), fingerprintView(vp)
				if fs != fp {
					t.Errorf("query %q: serial and parallel views differ\nserial:\n%s\nparallel:\n%s", kw, fs, fp)
				}
				if len(vs.Trees()) == 0 {
					t.Errorf("query %q produced no trees; equivalence is vacuous", kw)
				}
			}
		})
	}
}

// TestParallelRefreshEquivalence registers a new source on both instances
// (registration triggers a Refresh of every persistent view) and then runs
// one more explicit Refresh, checking that all views remain byte-identical.
func TestParallelRefreshEquivalence(t *testing.T) {
	for _, c := range equivCorpora() {
		t.Run(c.name, func(t *testing.T) {
			serial := c.build(t, 1)
			parallel := c.build(t, 8)
			for _, kw := range c.queries {
				if _, err := serial.Query(kw); err != nil {
					t.Fatalf("serial query %q: %v", kw, err)
				}
				if _, err := parallel.Query(kw); err != nil {
					t.Fatalf("parallel query %q: %v", kw, err)
				}
			}
			if _, err := serial.RegisterSource([]*relstore.Table{c.newTable(t)}, ViewBased); err != nil {
				t.Fatalf("serial register: %v", err)
			}
			if _, err := parallel.RegisterSource([]*relstore.Table{c.newTable(t)}, ViewBased); err != nil {
				t.Fatalf("parallel register: %v", err)
			}
			if err := serial.Refresh(); err != nil {
				t.Fatalf("serial refresh: %v", err)
			}
			if err := parallel.Refresh(); err != nil {
				t.Fatalf("parallel refresh: %v", err)
			}
			sv, pv := serial.Views(), parallel.Views()
			if len(sv) != len(pv) {
				t.Fatalf("view counts differ: %d vs %d", len(sv), len(pv))
			}
			for i := range sv {
				fs, fp := fingerprintView(sv[i]), fingerprintView(pv[i])
				if fs != fp {
					t.Errorf("view %d diverged after refresh\nserial:\n%s\nparallel:\n%s", i, fs, fp)
				}
			}
		})
	}
}

// TestSetParallelism checks the knob the server plumbs through.
func TestSetParallelism(t *testing.T) {
	q := New(Options{Parallelism: 3})
	if got := q.Options().Parallelism; got != 3 {
		t.Fatalf("Parallelism = %d, want 3", got)
	}
	q.SetParallelism(5)
	if got := q.Options().Parallelism; got != 5 {
		t.Fatalf("after SetParallelism(5): %d", got)
	}
	q.SetParallelism(0) // restores the GOMAXPROCS default
	if got := q.Options().Parallelism; got < 1 {
		t.Fatalf("after SetParallelism(0): %d", got)
	}
}

// TestRunIndexed pins the pool helper's contract: full coverage of indexes,
// bounded workers, and lowest-index error selection (serial semantics).
func TestRunIndexed(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		done := make([]bool, 50)
		if err := runIndexed(len(done), workers, func(i int) error {
			done[i] = true
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, ok := range done {
			if !ok {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}

	errLow, errHigh := errors.New("low"), errors.New("high")
	err := runIndexed(20, 8, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 15:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("error = %v, want lowest-index error %v", err, errLow)
	}

	if err := runIndexed(0, 4, func(i int) error { return errLow }); err != nil {
		t.Fatalf("n=0: %v", err)
	}

	// Side effects must not depend on the worker count: even serially, an
	// early error must not stop later indexes from running (a failing
	// parallel Refresh rematerialises every view; serial must match).
	for _, workers := range []int{1, 4} {
		ran := make([]bool, 10)
		err := runIndexed(len(ran), workers, func(i int) error {
			ran[i] = true
			if i == 2 {
				return errLow
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: error = %v, want %v", workers, err, errLow)
		}
		for i, ok := range ran {
			if !ok {
				t.Fatalf("workers=%d: index %d skipped after error", workers, i)
			}
		}
	}
}
