package core

import (
	"fmt"
	"sort"
	"strings"

	"qint/internal/obs"
	"qint/internal/qcache"
	"qint/internal/relstore"
	"qint/internal/text"
)

// The serving-layer query cache. Repeated keyword traffic is the shape of
// production load — few hot queries, many users — and against an unchanged
// source catalog the work is identical every time. Because every published
// state generation is immutable and epoch-stamped (the PR 2–4 machinery),
// a result computed at epoch e is a pure function of (e, key): cache
// entries keyed by epoch NEVER need invalidation — a registration or
// feedback write publishes a new epoch, under which every lookup misses,
// and dead-epoch entries age out of the LRU.
//
// Two computations are memoised, both strictly above the engine and both
// byte-identical to the uncached path (pinned by the metamorphic suite in
// cache_test.go):
//
//   - keyword expansion: the keyword→value matches of one keyword
//     (FindValues + similarity scoring + deterministic truncation), keyed
//     by (epoch, normalised keyword). Valid because FindValues and
//     ContainmentSimilarity both normalise their keyword first, so the
//     expansion is a pure function of the normalised form.
//   - view materialisation: the complete materialisation of one keyword
//     query (trees, conjunctive queries, ranked result, α, overlay), keyed
//     by (epoch, keyword sequence, k, options fingerprint). A cached
//     *viewMat is immutable after construction — overlays are only ever
//     mutated during expansion — so any number of views and readers share
//     one safely.
//
// A singleflight group in front of each cache collapses N concurrent
// identical misses into one computation (request coalescing): a thundering
// herd on a cold key costs one pipeline run, not N.
//
// Caching is gated on PUBLISHED generations only (qstate.published):
// registration runs keyword expansion against an unpublished interim state
// that reuses the previous epoch number, and caching those results would
// poison the cache for real queries at that epoch.

// valueMatch is one cached keyword→value expansion hit: everything
// expandKeyword needs to wire the overlay edge, with the similarity
// already scored and the threshold and truncation already applied.
type valueMatch struct {
	Ref   relstore.AttrRef
	Value string
	Sim   float64
}

// queryCaches bundles Q's per-instance serving caches. Nil when the whole
// layer is disabled; the individual caches are nil when their capacity
// knob disables just them (qcache treats a nil *Cache as a miss-always
// no-op, so the wiring reads straight through).
type queryCaches struct {
	exp  *qcache.Cache[[]valueMatch]
	expG qcache.Group[[]valueMatch]
	mat  *qcache.Cache[*viewMat]
	matG qcache.Group[*viewMat]

	// fingerprint folds every Options field that shapes a query answer into
	// the materialisation key, so instances persisted under one option set
	// and reloaded under another can never alias entries.
	fingerprint string
}

// newQueryCaches wires the serving caches for one Q instance, or returns
// nil when Options disable the layer.
func newQueryCaches(o Options) *queryCaches {
	if o.QueryCacheDisabled {
		return nil
	}
	exp := qcache.New[[]valueMatch](o.ExpansionCacheEntries)
	mat := qcache.New[*viewMat](o.MaterializationCacheEntries)
	if exp == nil && mat == nil {
		return nil
	}
	return &queryCaches{exp: exp, mat: mat, fingerprint: optionsFingerprint(o)}
}

// setLiveEpoch announces a newly published generation to both caches so
// eviction prefers entries of superseded epochs.
func (qc *queryCaches) setLiveEpoch(epoch uint64) {
	if qc == nil {
		return
	}
	qc.exp.SetLiveEpoch(epoch)
	qc.mat.SetLiveEpoch(epoch)
}

// optionsFingerprint captures the options that shape query answers (the
// per-view k is part of the materialisation key itself; Parallelism and
// Shards are excluded because answers are byte-identical at any setting).
func optionsFingerprint(o Options) string {
	return fmt.Sprintf("mt=%g;mm=%d;cat=%g;act=%g;approx=%t;scan=%t;mat=%t;topk=%t;plan=%t",
		o.MatchThreshold, o.MaxMatchesPerKeyword, o.ColumnAlignThreshold,
		o.AssocCostThreshold, o.UseApproxSteiner, o.ScanFindValues,
		o.MaterialisedExec, o.TopKPrune, o.PlannerOff)
}

// matCacheKey canonicalises a keyword query for the materialisation cache:
// the keyword sequence exactly as parsed (length-prefixed, so no keyword
// content can collide with the separators) plus k and the options
// fingerprint. Two query strings differing only in whitespace or quoting
// collapse to one entry; keyword ORDER is preserved — it feeds terminal
// order into the Steiner search, and the cached path must stay
// byte-identical to the uncached one, not merely equivalent.
func matCacheKey(keywords []string, k int, fingerprint string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|", k, fingerprint)
	for _, kw := range keywords {
		fmt.Fprintf(&b, "%d:%s", len(kw), kw)
	}
	return b.String()
}

// materializeCached is materializeAt behind the materialisation cache and
// its singleflight group: a hit returns the shared immutable viewMat, a
// miss computes once per in-flight key and caches the result. Unpublished
// interim states and disabled caches read straight through.
//
// A trace records the lookup as cache_lookup; a caller that coalesces onto
// another flight's compute records its blocked time as coalesced_wait
// (the pipeline spans land in the LEADER's trace — this caller did not run
// the pipeline), while the leader's own trace carries the stage spans the
// compute recorded into it.
func (q *Q) materializeCached(st *qstate, keywords []string, k, parallelism int, tr *obs.Trace) (*viewMat, error) {
	qc := q.qc
	if qc == nil || qc.mat == nil || !st.published {
		return q.materializeAt(st, keywords, k, parallelism, tr)
	}
	key := qcache.Key{Epoch: st.epoch, K: matCacheKey(keywords, k, qc.fingerprint)}
	tlook := tr.Now()
	m, ok := qc.mat.Get(key)
	tr.Record(obs.StageCacheLookup, tlook)
	if ok {
		return m, nil
	}
	// Between the miss above and the flight below another flight may have
	// completed and cached the key; the recompute is rare and benign (same
	// epoch, byte-identical result, idempotent Put).
	computed := false
	twait := tr.Now()
	m, err := qc.matG.Do(key, func() (*viewMat, error) {
		computed = true
		if h := q.matComputeHook; h != nil {
			h()
		}
		m, err := q.materializeAt(st, keywords, k, parallelism, tr)
		if err != nil {
			return nil, err
		}
		qc.mat.Put(key, m)
		return m, nil
	})
	if !computed {
		tr.Record(obs.StageCoalescedWait, twait)
	}
	return m, err
}

// valueExpansions returns one keyword's value-match expansion — scored,
// thresholded and deterministically truncated — from the expansion cache
// when possible. The result is shared and must be treated as immutable.
func (q *Q) valueExpansions(st *qstate, kw string) []valueMatch {
	qc := q.qc
	if qc == nil || qc.exp == nil || !st.published {
		return q.computeValueExpansions(st, kw)
	}
	key := qcache.Key{Epoch: st.epoch, K: text.Normalize(kw)}
	if v, ok := qc.exp.Get(key); ok {
		return v
	}
	v, err := qc.expG.Do(key, func() ([]valueMatch, error) {
		v := q.computeValueExpansions(st, kw)
		qc.exp.Put(key, v)
		return v, nil
	})
	if err != nil {
		// Only possible when a coalesced leader panicked; don't silently
		// drop this keyword's value matches — compute them here (any panic
		// then surfaces in, and is attributed to, this goroutine).
		return q.computeValueExpansions(st, kw)
	}
	return v
}

// computeValueExpansions is the uncached expansion: the data-value half of
// expandKeyword (paper §2.1/§2.2). FindValues answers from the catalog's
// inverted value index (trigram + whole-token postings, per-table segments
// shared across copy-on-write generations); Options.ScanFindValues routes
// it through the reference scan, with byte-identical hits either way.
func (q *Q) computeValueExpansions(st *qstate, kw string) []valueMatch {
	hits := st.cat.FindValues(kw)
	if len(hits) > q.opts.MaxMatchesPerKeyword {
		// Prefer exact-normalised matches, then fewer-row (more selective)
		// values, for determinism under truncation.
		nkw := text.Normalize(kw)
		sort.SliceStable(hits, func(i, j int) bool {
			ei := text.Normalize(hits[i].Value) == nkw
			ej := text.Normalize(hits[j].Value) == nkw
			if ei != ej {
				return ei
			}
			return hits[i].Rows < hits[j].Rows
		})
		hits = hits[:q.opts.MaxMatchesPerKeyword]
	}
	out := make([]valueMatch, 0, len(hits))
	for _, h := range hits {
		sim := text.ContainmentSimilarity(kw, h.Value)
		if sim < q.opts.MatchThreshold {
			continue
		}
		out = append(out, valueMatch{Ref: h.Ref, Value: h.Value, Sim: sim})
	}
	return out
}

// CacheCounters is one serving cache's activity counters. Hits and Misses
// count lookups; Computes counts pipeline executions that actually ran and
// Coalesced the concurrent identical misses that piggybacked on one
// (Misses ≈ Computes + Coalesced, modulo benign races); Evictions,
// Entries and LiveEpochs describe residency.
type CacheCounters struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Computes   uint64 `json:"computes"`
	Coalesced  uint64 `json:"coalesced"`
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	LiveEpochs int    `json:"live_epochs"`
}

// CacheStats is a point-in-time snapshot of the serving-layer cache
// counters (all zero when the layer is disabled). Safe to call from any
// goroutine, concurrently with queries and writers.
type CacheStats struct {
	Enabled         bool          `json:"enabled"`
	Expansion       CacheCounters `json:"expansion"`
	Materialization CacheCounters `json:"materialization"`
}

// CacheStats snapshots the query-cache counters.
func (q *Q) CacheStats() CacheStats {
	qc := q.qc
	if qc == nil {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:         true,
		Expansion:       countersOf(qc.exp.Counters(), &qc.expG),
		Materialization: countersOf(qc.mat.Counters(), &qc.matG),
	}
}

func countersOf[V any](c qcache.Counters, g *qcache.Group[V]) CacheCounters {
	return CacheCounters{
		Hits:       c.Hits,
		Misses:     c.Misses,
		Computes:   g.Execs(),
		Coalesced:  g.Coalesced(),
		Evictions:  c.Evictions,
		Entries:    c.Entries,
		LiveEpochs: c.LiveEpochs,
	}
}
