package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"qint/internal/relstore"
	"qint/internal/searchgraph"
)

// qSnapshot bundles the catalog, the search graph (including learned
// weights) and the persistent views' definitions. Views are saved as
// (keywords, k) and rematerialised on load — their contents are a function
// of the graph, which is saved exactly.
type qSnapshot struct {
	Version int             `json:"version"`
	Options Options         `json:"options"`
	Catalog json.RawMessage `json:"catalog"`
	Graph   json.RawMessage `json:"graph"`
	Views   []viewSnap      `json:"views"`
}

type viewSnap struct {
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
}

const qSnapshotVersion = 1

// Save writes the entire Q state (catalog, graph with learned weights,
// view definitions) as JSON. Matchers are code, not state — re-register
// them after loading.
func (q *Q) Save(w io.Writer) error {
	var catBuf, graphBuf bytes.Buffer
	if err := q.Catalog.Save(&catBuf); err != nil {
		return fmt.Errorf("core: save catalog: %w", err)
	}
	if err := q.Graph.Save(&graphBuf); err != nil {
		return fmt.Errorf("core: save graph: %w", err)
	}
	s := qSnapshot{
		Version: qSnapshotVersion,
		Options: q.opts,
		Catalog: json.RawMessage(catBuf.Bytes()),
		Graph:   json.RawMessage(graphBuf.Bytes()),
	}
	for _, v := range q.Views() {
		s.Views = append(s.Views, viewSnap{Keywords: v.Keywords, K: v.K})
	}
	return json.NewEncoder(w).Encode(s)
}

// Load reconstructs a Q instance saved with Save and rematerialises its
// views under the loaded (learned) weights. Matchers must be re-registered
// by the caller before any new alignment work; loading does not require
// them.
func Load(r io.Reader) (*Q, error) {
	var s qSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if s.Version != qSnapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", s.Version)
	}
	graph, err := searchgraph.Load(bytes.NewReader(s.Graph))
	if err != nil {
		return nil, err
	}
	q := New(s.Options)
	// Reload the catalog at the effective shard count (the wire form is
	// shard-agnostic) and restore the knobs New applied to the catalog it is
	// replacing; index segments rebuild lazily on first use.
	cat, err := relstore.LoadCatalogSharded(bytes.NewReader(s.Catalog), q.opts.Shards)
	if err != nil {
		return nil, err
	}
	cat.UseScanFindValues(q.opts.ScanFindValues)
	cat.UseMaterialisedExec(q.opts.MaterialisedExec)
	cat.UsePlanner(!q.opts.PlannerOff)
	cat.SetParallelism(q.opts.Parallelism)
	cat.InstrumentExec(&q.metrics.exec) // the loaded catalog replaces the instrumented one
	q.Catalog = cat
	q.Graph = graph
	// Rebuild the keyword corpus from the catalog (it is derived state).
	for _, rel := range cat.Relations() {
		q.indexRelation(rel)
	}
	// Publish the loaded state so queries (which read the published
	// snapshot, never the builder) see it. Legacy persisted graphs may
	// carry keyword and value nodes from the pre-overlay design; overlays
	// reuse such nodes where present and their stale edges stay disabled.
	q.writerMu.Lock()
	q.publishLocked()
	q.writerMu.Unlock()
	// Recreate views: each expands its saved keyword list into a fresh
	// overlay over the loaded graph and materialises at its saved k.
	// QueryKeywords takes the list verbatim — re-joining keywords into a
	// query string would corrupt any keyword containing a quote (the quote
	// would end the phrase early) and silently drop empty keywords, and
	// materialising at the k the view was saved with (not the loaded
	// Options.K) is what makes the round-trip exact.
	for _, vs := range s.Views {
		if _, err := q.QueryKeywords(vs.Keywords, vs.K); err != nil {
			return nil, fmt.Errorf("core: load view %v: %w", vs.Keywords, err)
		}
	}
	return q, nil
}
