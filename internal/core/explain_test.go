package core

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	q := newFixtureQ(t, true)
	v, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Result().Rows) == 0 {
		t.Fatal("no rows to explain")
	}
	ex, err := q.Explain(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Cost != v.Result().Rows[0].Cost {
		t.Errorf("cost = %v, want %v", ex.Cost, v.Result().Rows[0].Cost)
	}
	if len(ex.Keywords) == 0 {
		t.Error("explanation should list keyword matches")
	}
	if !strings.HasPrefix(ex.SQL, "SELECT") {
		t.Errorf("SQL missing: %q", ex.SQL)
	}
	if len(ex.Plan) < 2 || !strings.Contains(ex.Plan[0], "cost-based") {
		t.Errorf("plan lines missing or unplanned under default options: %q", ex.Plan)
	}
	if !strings.Contains(ex.Plan[1], "scan ") {
		t.Errorf("plan step 1 = %q, want a scan operator line", ex.Plan)
	}
	s := ex.String()
	for _, want := range []string{"cost", "keyword:", "plan:", "sql:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	// The cross-source answer must surface the hand-coded association in
	// its join provenance.
	foundJoin := false
	for i := range v.Result().Rows {
		e, err := q.Explain(v, i)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range e.Joins {
			if strings.Contains(j, "go.term.acc") && strings.Contains(j, "association") {
				foundJoin = true
			}
		}
	}
	if !foundJoin {
		t.Error("no explanation surfaced the cross-source association join")
	}
	if _, err := q.Explain(v, 99_999); err == nil {
		t.Error("out-of-range row should fail")
	}
}
