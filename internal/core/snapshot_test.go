package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// The properties under test: Q's copy-on-write snapshots give every query
// SNAPSHOT ISOLATION. A query runs entirely against the state generation
// published when it started, so (1) a query concurrent with a registration
// or feedback update returns results byte-identical to EITHER a quiesced
// pre-mutation run or a quiesced post-mutation run — never a torn mix;
// (2) a query issued after a registration returns sees the new source; and
// (3) queries are stateless — a query's answer is a pure function of the
// published state, unaffected by whatever other queries ran before it.

// jrnlTables is the new source the isolation tests register mid-query: its
// pub identifiers overlap ip.pub, so alignment work (and new answers for
// pub-related keywords) actually happens.
func jrnlTables(t *testing.T) []*relstore.Table {
	t.Helper()
	return []*relstore.Table{mkTable(t,
		&relstore.Relation{Source: "jrnl", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
		[][]string{{"PUB0001", "Nature"}, {"PUB0002", "Science"}, {"PUB0003", "Cell"}})}
}

// TestSnapshotIsolationUnderRegistration hammers one instance with
// concurrent queries while a writer registers a new source, and demands
// every concurrent answer be byte-identical to a quiesced pre-registration
// or post-registration run. Run under -race this also proves the read path
// shares no mutable state with the writer.
func TestSnapshotIsolationUnderRegistration(t *testing.T) {
	const probe = "entry 'PUB0001'"

	q := newFixtureQ(t, true)
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())

	// Quiesced pre-mutation fingerprint.
	v, err := q.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	preFP := fingerprintView(v)
	q.DropView(v)

	const readers = 8
	const perReader = 6
	fps := make([][]string, readers)
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup
	start := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < perReader; i++ {
				qv, err := q.Query(probe)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				fps[r] = append(fps[r], fingerprintView(qv))
				q.DropView(qv)
			}
			errc <- nil
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, err := q.RegisterSource(jrnlTables(t), Exhaustive); err != nil {
			errc <- fmt.Errorf("writer: %v", err)
			return
		}
		errc <- nil
	}()
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced post-mutation fingerprint.
	v2, err := q.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	postFP := fingerprintView(v2)
	q.DropView(v2)

	pre, post := 0, 0
	for r := range fps {
		for i, fp := range fps[r] {
			switch fp {
			case preFP:
				pre++
			case postFP:
				post++
			default:
				t.Fatalf("reader %d query %d: answer matches neither the quiesced pre-registration run nor the post-registration run\ngot:\n%s\npre:\n%s\npost:\n%s",
					r, i, fp, preFP, postFP)
			}
		}
	}
	t.Logf("concurrent queries: %d saw the pre-registration snapshot, %d the post-registration snapshot", pre, post)
	if pre+post != readers*perReader {
		t.Fatalf("accounted for %d of %d queries", pre+post, readers*perReader)
	}
}

// TestIndexSnapshotIsolationUnderRegistration extends the snapshot suite to
// the inverted value index: keyword→value lookups issued through the
// published catalog while a registration is committing must answer from
// either the complete pre-registration index or the complete
// post-registration index — never a torn posting list (e.g. the new
// source's tables visible but unindexed, or half a segment). The probe
// keyword hits BOTH the fixture (ip.pub, ip.entry2pub) and the registering
// source (jrnl.journal), so a torn index would change the hit set.
func TestIndexSnapshotIsolationUnderRegistration(t *testing.T) {
	const probe = "PUB0001"

	q := newFixtureQ(t, true)
	q.AddMatcher(meta.New())

	fingerprint := func(hits []relstore.ValueHit) string { return fmt.Sprintf("%v", hits) }

	// Quiesced pre-registration answer, cross-checked against the reference
	// scan so the fingerprints pin index content, not just stability.
	pre := q.CurrentCatalog().FindValues(probe)
	preFP := fingerprint(pre)
	if scanFP := fingerprint(q.CurrentCatalog().ScanFindValues(probe)); preFP != scanFP {
		t.Fatalf("pre-registration index diverges from scan\nindex: %s\nscan:  %s", preFP, scanFP)
	}
	if len(pre) == 0 {
		t.Fatal("probe keyword must hit the fixture catalog")
	}

	const readers = 8
	fps := make([][]string, readers)
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup
	var warmed sync.WaitGroup // one pre-registration lookup per reader
	warmed.Add(readers)
	start := make(chan struct{})
	committed := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			fps[r] = append(fps[r], fingerprint(q.CurrentCatalog().FindValues(probe)))
			warmed.Done()
			for {
				// Load the catalog fresh each round: rounds straddle the
				// registration commit.
				fps[r] = append(fps[r], fingerprint(q.CurrentCatalog().FindValues(probe)))
				select {
				case <-committed:
					// One lookup strictly after the commit, so every reader
					// exercises the post-registration index too.
					fps[r] = append(fps[r], fingerprint(q.CurrentCatalog().FindValues(probe)))
					errc <- nil
					return
				default:
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(committed)
		<-start
		warmed.Wait() // every reader sees the pre-registration index first
		if _, err := q.RegisterSource(jrnlTables(t), Exhaustive); err != nil {
			errc <- fmt.Errorf("writer: %v", err)
			return
		}
		errc <- nil
	}()
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced post-registration answer, again pinned to the scan.
	post := q.CurrentCatalog().FindValues(probe)
	postFP := fingerprint(post)
	if scanFP := fingerprint(q.CurrentCatalog().ScanFindValues(probe)); postFP != scanFP {
		t.Fatalf("post-registration index diverges from scan\nindex: %s\nscan:  %s", postFP, scanFP)
	}
	if len(post) <= len(pre) {
		t.Fatalf("post-registration index must include the new source's hit: pre=%d post=%d", len(pre), len(post))
	}

	preN, postN := 0, 0
	for r := range fps {
		for i, fp := range fps[r] {
			switch fp {
			case preFP:
				preN++
			case postFP:
				postN++
			default:
				t.Fatalf("reader %d lookup %d: torn index state\ngot:  %s\npre:  %s\npost: %s",
					r, i, fp, preFP, postFP)
			}
		}
	}
	t.Logf("concurrent lookups: %d saw the pre-registration index, %d the post-registration index", preN, postN)
	if preN < readers || postN < readers {
		t.Fatalf("every reader must observe both sides of the commit: pre=%d post=%d", preN, postN)
	}
}

// TestShardedRegistrationSnapshotIsolation extends the snapshot suite to
// the SHARDED catalog write path: a registration whose tables hash into
// several different shards commits copy-on-write per shard, and a lookup
// concurrent with the commit must see either the complete pre-registration
// world or the complete post-registration world across ALL shards — never a
// subset of the new source's tables (which is exactly what a torn
// multi-shard publish would look like). The registering source carries the
// probe value in three tables so a torn state is observable.
func TestShardedRegistrationSnapshotIsolation(t *testing.T) {
	const probe = "PUB0001"

	q := fixtureQAtShards(t, 7)

	// Three tables, one source, all matching the probe; their qualified
	// names spread across the 7 shards.
	newTables := []*relstore.Table{
		mkTable(t, &relstore.Relation{Source: "jx", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
			[][]string{{"PUB0001", "Nature"}, {"PUB0002", "Science"}}),
		mkTable(t, &relstore.Relation{Source: "jx", Name: "article",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "headline"}}},
			[][]string{{"PUB0001", "On Kringle domains"}}),
		mkTable(t, &relstore.Relation{Source: "jx", Name: "review",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "verdict"}}},
			[][]string{{"PUB0001", "accept"}, {"PUB0003", "revise"}}),
	}
	// The multi-shard claim only means anything if the new tables actually
	// land in more than one of the 7 shards, per the catalog's own
	// partitioner.
	shardsTouched := make(map[int]bool)
	for _, tb := range newTables {
		shardsTouched[q.CurrentCatalog().ShardOf(tb.Relation.QualifiedName())] = true
	}
	if len(shardsTouched) < 2 {
		t.Fatalf("fixture regression: new tables all hash to one shard %v", shardsTouched)
	}

	fingerprint := func(hits []relstore.ValueHit) string { return fmt.Sprintf("%v", hits) }
	pre := q.CurrentCatalog().FindValues(probe)
	preFP := fingerprint(pre)
	if len(pre) == 0 {
		t.Fatal("probe keyword must hit the fixture catalog")
	}

	const readers = 8
	fps := make([][]string, readers)
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup
	var warmed sync.WaitGroup
	warmed.Add(readers)
	start := make(chan struct{})
	committed := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			fps[r] = append(fps[r], fingerprint(q.CurrentCatalog().FindValues(probe)))
			warmed.Done()
			for {
				fps[r] = append(fps[r], fingerprint(q.CurrentCatalog().FindValues(probe)))
				select {
				case <-committed:
					fps[r] = append(fps[r], fingerprint(q.CurrentCatalog().FindValues(probe)))
					errc <- nil
					return
				default:
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(committed)
		<-start
		warmed.Wait()
		if _, err := q.RegisterSource(newTables, Exhaustive); err != nil {
			errc <- fmt.Errorf("writer: %v", err)
			return
		}
		errc <- nil
	}()
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	post := q.CurrentCatalog().FindValues(probe)
	postFP := fingerprint(post)
	if scanFP := fingerprint(q.CurrentCatalog().ScanFindValues(probe)); postFP != scanFP {
		t.Fatalf("post-registration index diverges from scan\nindex: %s\nscan:  %s", postFP, scanFP)
	}
	newHits := 0
	for _, h := range post {
		if strings.HasPrefix(h.Ref.Relation, "jx.") {
			newHits++
		}
	}
	if newHits != len(newTables) {
		t.Fatalf("post-registration world must include all %d new tables' hits, got %d: %v",
			len(newTables), newHits, post)
	}

	preN, postN := 0, 0
	for r := range fps {
		for i, fp := range fps[r] {
			switch fp {
			case preFP:
				preN++
			case postFP:
				postN++
			default:
				t.Fatalf("reader %d lookup %d: torn multi-shard state — neither the complete pre- nor post-registration world\ngot:  %s\npre:  %s\npost: %s",
					r, i, fp, preFP, postFP)
			}
		}
	}
	t.Logf("concurrent lookups across %d touched shards: %d pre, %d post", len(shardsTouched), preN, postN)
	if preN < readers || postN < readers {
		t.Fatalf("every reader must observe both sides of the commit: pre=%d post=%d", preN, postN)
	}
}

// TestQueriesSeeNewSourceAfterRegistration pins the visibility half of the
// snapshot contract: a query issued after RegisterSource returns must
// answer from the new source.
func TestQueriesSeeNewSourceAfterRegistration(t *testing.T) {
	q := newFixtureQ(t, true)
	q.AddMatcher(meta.New())

	// "Nature" exists only in the jrnl source; "PUB0001" ties it to ip.pub.
	const probe = "'Nature' 'PUB0001'"
	mentionsNature := func(v *View) bool {
		for _, row := range v.Result().Rows {
			for _, val := range row.Values {
				if val == "Nature" {
					return true
				}
			}
		}
		return false
	}
	before, err := q.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if mentionsNature(before) {
		t.Fatal("probe answer mentions the new source before registration")
	}
	if _, err := q.RegisterSource(jrnlTables(t), Exhaustive); err != nil {
		t.Fatal(err)
	}
	after, err := q.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !mentionsNature(after) {
		t.Fatal("query after registration does not see the new source")
	}
	// The pre-registration view was refreshed by the registration commit,
	// so it now sees the new source too.
	if !mentionsNature(before) {
		t.Error("persistent view was not refreshed onto the new snapshot")
	}
}

// TestWriterHammer runs queries against a storm of writers — repeated
// registrations and feedback — under -race. Every answer must still match
// one of the quiesced per-generation fingerprints implied by snapshot
// isolation; here we only demand queries never error and never observe an
// empty torn state, plus the race detector's word that no memory is shared
// unsynchronised.
func TestWriterHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	q := newFixtureQ(t, true)
	q.AddMatcher(meta.New())

	fv, err := q.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probes := []string{"entry 'PUB0001'", "'plasma membrane' acc", "term name", "'Kringle domain' publication"}
			i := 0
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				qv, err := q.Query(probes[(r+i)%len(probes)])
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if qv.Result() == nil {
					errc <- fmt.Errorf("reader %d: torn view with nil result", r)
					return
				}
				q.DropView(qv)
				i++
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		// Writers: a run of registrations interleaved with feedback.
		for i := 0; i < 4; i++ {
			src := fmt.Sprintf("hammer%d", i)
			tb := mkTable(t, &relstore.Relation{Source: src, Name: "data",
				Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "note"}}},
				[][]string{{"PUB0001", fmt.Sprintf("note %d", i)}})
			if _, err := q.RegisterSource([]*relstore.Table{tb}, ViewBased); err != nil {
				errc <- fmt.Errorf("writer register %d: %v", i, err)
				return
			}
			if trees := fv.Trees(); len(trees) > 1 {
				if err := q.FeedbackFavorTree(fv, trees[1]); err != nil {
					errc <- fmt.Errorf("writer feedback %d: %v", i, err)
					return
				}
			}
		}
		errc <- nil
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryStateless pins the ordering semantics the overlay design fixes:
// a query's answer is a pure function of the published state. Before
// per-query overlays, core.Query grew the shared graph (keyword nodes,
// value nodes, per-edge weights), so the SAME keyword query materialised
// differently — different tree ids, different tie-breaks — depending on
// which queries ran before it, and feedback interleaved between two
// identical queries compounded the drift. Now: byte-identical, in both
// directions.
func TestQueryStateless(t *testing.T) {
	const probe = "'plasma membrane' 'Kringle domain'"

	// Same instance: repeating a query with unrelated queries in between
	// must be byte-identical (no residue from other queries).
	q := newFixtureQ(t, true)
	v1, err := q.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := fingerprintView(v1)
	for _, other := range []string{"entry 'PUB0001'", "term name", "publication title"} {
		if _, err := q.Query(other); err != nil {
			t.Fatal(err)
		}
	}
	v2, err := q.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := fingerprintView(v2); fp2 != fp1 {
		t.Errorf("same query diverged after unrelated queries ran\nfirst:\n%s\nsecond:\n%s", fp1, fp2)
	}

	// Two instances, different query order: the probe's answer must not
	// depend on what was asked before it.
	qa := newFixtureQ(t, true)
	qb := newFixtureQ(t, true)
	if _, err := qa.Query("entry 'PUB0001'"); err != nil { // qa asks something else first
		t.Fatal(err)
	}
	va, err := qa.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := qb.Query(probe) // qb asks the probe first
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintView(va) != fingerprintView(vb) {
		t.Error("query answer depends on which queries ran before it")
	}

	// Feedback interleaved between identical queries on two identical
	// instances must leave them in identical states: the post-feedback
	// probe answers are byte-identical across instances (reproducible
	// ordering semantics), even though feedback legitimately changes the
	// answer within each instance.
	q1 := newFixtureQ(t, true)
	q2 := newFixtureQ(t, true)
	run := func(q *Q) string {
		v, err := q.Query(probe)
		if err != nil {
			t.Fatal(err)
		}
		trees := v.Trees()
		if len(trees) > 1 {
			if err := q.FeedbackFavorTree(v, trees[1]); err != nil {
				t.Fatal(err)
			}
		}
		v2, err := q.Query(probe)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintView(v2)
	}
	if a, b := run(q1), run(q2); a != b {
		t.Errorf("identical feedback histories produced different states\nq1:\n%s\nq2:\n%s", a, b)
	}
}

// TestBaseGraphBytesStableAcrossQueries is the core-level metamorphic
// overlay check (the searchgraph-level one lives in that package): the
// persisted base-graph encoding must be byte-identical before and after a
// batch of queries — overlays never leak keyword or value state into the
// shared graph.
func TestBaseGraphBytesStableAcrossQueries(t *testing.T) {
	q := newFixtureQ(t, true)
	var before, after bytesBuffer
	if err := q.Graph.Save(&before); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{
		"'plasma membrane' 'Kringle domain'", "entry 'PUB0001'",
		"term name", "publication title", "'nucleus' acc",
	} {
		if _, err := q.Query(probe); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Graph.Save(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Errorf("base graph bytes changed across queries\nbefore:\n%s\nafter:\n%s", before.String(), after.String())
	}
}

// bytesBuffer is a minimal strings.Builder-compatible io.Writer, avoiding
// an extra import cycle of bytes in this test file's imports.
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *bytesBuffer) String() string              { return string(w.b) }
