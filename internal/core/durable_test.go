package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// durableOpts returns options rooted in a fresh temp dir with background
// checkpointing disabled, so tests control exactly when the WAL folds.
func durableOpts(t *testing.T) Options {
	t.Helper()
	opts := DefaultOptions()
	opts.DataDir = t.TempDir()
	opts.CheckpointWALBytes = -1
	return opts
}

// fingerprintQ renders everything restart equivalence cares about: the
// catalog, the graph's weights and edges, and every view's materialisation.
func fingerprintQ(q *Q) string {
	var b strings.Builder
	b.WriteString("relations:")
	for _, r := range q.Catalog.Relations() {
		b.WriteString(" " + r.QualifiedName())
	}
	b.WriteString("\nassociations:")
	for _, a := range q.Graph.AssociationList() {
		fmt.Fprintf(&b, " %s~%s=%.12f", a.A, a.B, a.Cost)
	}
	b.WriteString("\n")
	for _, v := range q.Views() {
		b.WriteString(fingerprintView(v))
	}
	return b.String()
}

// driveMutations applies the same mutation sequence to any Q: initial
// tables, a hand-coded association, a view, a registration through the
// matchers, and feedback. The durable tests replay this against in-memory
// and durable instances and require identical outcomes.
func driveMutations(t *testing.T, q *Q) {
	t.Helper()
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "acc"},
		relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	v, err := q.QueryKeywords([]string{"plasma membrane", "Kringle domain"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	newTables := []*relstore.Table{mkTable(t,
		&relstore.Relation{Source: "jrnl", Name: "journal",
			Attributes: []relstore.Attribute{{Name: "pub_id"}, {Name: "journal_name"}}},
		[][]string{{"PUB0001", "Nature"}, {"PUB0002", "Science"}, {"PUB0003", "Cell"}})}
	if _, err := q.RegisterSource(newTables, Exhaustive); err != nil {
		t.Fatal(err)
	}
	if len(v.Trees()) >= 2 {
		if err := q.FeedbackFavorTree(v, v.Trees()[1]); err != nil {
			t.Fatal(err)
		}
	}
}

// reopen closes nothing (crash semantics are exercised elsewhere) — it just
// Opens the directory again and re-registers the matchers, the documented
// restart protocol.
func reopen(t *testing.T, opts Options) *Q {
	t.Helper()
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	return q
}

// TestRestartEquivalence is the acceptance gate: an instance restarted via
// storage.Open — whether from a pure WAL tail, a pure snapshot, or a
// snapshot plus tail — is byte-identical to one rebuilt from scratch by
// replaying the same mutations in memory.
func TestRestartEquivalence(t *testing.T) {
	// Reference: the same mutations applied to a plain in-memory Q.
	ref := New(DefaultOptions())
	ref.AddMatcher(meta.New())
	ref.AddMatcher(mad.New())
	driveMutations(t, ref)
	want := fingerprintQ(ref)

	opts := durableOpts(t)
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	driveMutations(t, q)
	if got := fingerprintQ(q); got != want {
		t.Fatalf("durable instance diverged from in-memory before any restart:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Restart 1: everything is still in the WAL tail (no checkpoint ran).
	// View DEFINITIONS persist via checkpoints, not the WAL (queries are
	// pure reads and must not fsync), so a crash-restart loses the view —
	// but recreating it over the replayed graph must reproduce it exactly.
	if err := q.persist.store.Close(); err != nil { // simulate a crash: no final checkpoint
		t.Fatal(err)
	}
	q2 := reopen(t, opts)
	if _, err := q2.QueryKeywords([]string{"plasma membrane", "Kringle domain"}, 4); err != nil {
		t.Fatal(err)
	}
	if got := fingerprintQ(q2); got != want {
		t.Fatalf("restart from WAL tail diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Restart 2: fold the WAL into a snapshot, then restart — a pure
	// snapshot load, no replay.
	if err := q2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := q2.persist.store.Close(); err != nil {
		t.Fatal(err)
	}
	q3 := reopen(t, opts)
	if got := fingerprintQ(q3); got != want {
		t.Fatalf("restart from snapshot diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Restart 3: snapshot + a fresh tail (feedback after the checkpoint).
	v := q3.Views()[0]
	if len(v.Trees()) >= 2 {
		if err := q3.FeedbackFavorTree(v, v.Trees()[1]); err != nil {
			t.Fatal(err)
		}
	}
	want3 := fingerprintQ(q3)
	if err := q3.persist.store.Close(); err != nil {
		t.Fatal(err)
	}
	q4 := reopen(t, opts)
	if got := fingerprintQ(q4); got != want3 {
		t.Fatalf("restart from snapshot+tail diverged:\nwant:\n%s\ngot:\n%s", want3, got)
	}
}

// TestDurableCleanShutdown: Close checkpoints, so the next Open is a pure
// snapshot load (empty WAL) and view definitions survive.
func TestDurableCleanShutdown(t *testing.T) {
	opts := durableOpts(t)
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	driveMutations(t, q)
	want := fingerprintQ(q)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := reopen(t, opts)
	if q2.persist.store.WALSize() != 0 {
		t.Errorf("WAL not empty after clean shutdown + reopen: %d bytes", q2.persist.store.WALSize())
	}
	if got := fingerprintQ(q2); got != want {
		t.Fatalf("clean restart diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// The reopened instance keeps working durably.
	if _, err := q2.QueryKeywords([]string{"nucleus", "entry"}, 2); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCrashInjection truncates the store's WAL at EVERY byte length
// between a committed prefix and the full log, reopening each time: Open
// must never fail, and must recover a prefix of the mutation history — the
// tables either absent or fully present, never torn.
func TestDurableCrashInjection(t *testing.T) {
	opts := durableOpts(t)
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	fullRelations := q.Catalog.NumRelations()
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "acc"},
		relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	walPath := q.persist.store.WALPath()
	if err := q.persist.store.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= len(logBytes); n++ {
		dir := t.TempDir()
		// Clone the store directory with the WAL cut at n bytes.
		entries, err := os.ReadDir(opts.DataDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(opts.DataDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if filepath.Join(opts.DataDir, e.Name()) == walPath {
				data = data[:n]
			}
			if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		o := opts
		o.DataDir = dir
		qc, err := Open(o)
		if err != nil {
			t.Fatalf("truncated at %d/%d bytes: Open failed: %v", n, len(logBytes), err)
		}
		got := qc.Catalog.NumRelations()
		if got != 0 && got != fullRelations {
			t.Fatalf("truncated at %d bytes: %d relations — a torn AddTables surfaced (want 0 or %d)",
				n, got, fullRelations)
		}
		// Whatever prefix was recovered, the instance stays writable.
		if got == 0 {
			if err := qc.AddTables(fixtureTables(t)...); err != nil {
				t.Fatalf("truncated at %d bytes: recovered store not writable: %v", n, err)
			}
		}
		if err := qc.Close(); err != nil {
			t.Fatalf("truncated at %d bytes: close: %v", n, err)
		}
	}
}

// TestDurableCheckpointFold: after a checkpoint the WAL is empty, the
// snapshot carries the whole state, and mutations keep appending to the new
// log.
func TestDurableCheckpointFold(t *testing.T) {
	opts := durableOpts(t)
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	if q.persist.store.WALSize() == 0 {
		t.Fatal("AddTables should have appended to the WAL")
	}
	preEpoch := q.WALEpoch()
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := q.persist.store.WALSize(); got != 0 {
		t.Errorf("WAL size after checkpoint = %d, want 0", got)
	}
	if got := q.WALEpoch(); got != preEpoch {
		t.Errorf("checkpoint must not advance the epoch: %d -> %d", preEpoch, got)
	}
	q.AddHandCodedAssociation(
		relstore.AttrRef{Relation: "go.term", Attr: "acc"},
		relstore.AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	if q.persist.store.WALSize() == 0 {
		t.Error("post-checkpoint mutation should append to the fresh WAL")
	}
	if got := q.WALEpoch(); got != preEpoch+1 {
		t.Errorf("epoch after one post-checkpoint mutation = %d, want %d", got, preEpoch+1)
	}
}

// TestOpenRequiresDataDir and the in-memory no-ops.
func TestOpenRequiresDataDir(t *testing.T) {
	if _, err := Open(DefaultOptions()); err == nil {
		t.Error("Open without DataDir should fail")
	}
	q := New(DefaultOptions())
	if err := q.Checkpoint(); err != nil {
		t.Errorf("in-memory Checkpoint should be a no-op: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Errorf("in-memory Close should be a no-op: %v", err)
	}
	if got := q.WALEpoch(); got != 0 {
		t.Errorf("in-memory WALEpoch = %d, want 0", got)
	}
}

// TestDurableBackgroundCheckpoint: with a tiny threshold, the background
// checkpointer folds the WAL without any explicit Checkpoint call.
func TestDurableBackgroundCheckpoint(t *testing.T) {
	opts := durableOpts(t)
	opts.CheckpointWALBytes = 1 // every mutation crosses the threshold
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.AddTables(fixtureTables(t)...); err != nil {
		t.Fatal(err)
	}
	// Close stops the checkpointer and takes a final checkpoint; whatever
	// interleaving happened, the directory must reopen to the same state.
	want := fingerprintQ(q)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q2 := reopen(t, opts)
	if got := fingerprintQ(q2); got != want {
		t.Fatalf("background-checkpointed store diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
}
