package core

import (
	"testing"

	"qint/internal/relstore"
	"qint/internal/steiner"
)

// TestApproxSteinerMode runs the full query pipeline with the BANKS-style
// approximation enabled (the paper's large-scale configuration) and checks
// the results stay sane and comparable to the exact mode.
func TestApproxSteinerMode(t *testing.T) {
	build := func(approx bool) *Q {
		opts := DefaultOptions()
		opts.UseApproxSteiner = approx
		q := New(opts)
		if err := q.AddTables(fixtureTables(t)...); err != nil {
			t.Fatal(err)
		}
		q.AddHandCodedAssociation(
			ref2("go.term", "acc"), ref2("ip.interpro2go", "go_id"))
		return q
	}

	exact := build(false)
	approx := build(true)
	ve, err := exact.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	va, err := approx.Query("'plasma membrane' 'Kringle domain'")
	if err != nil {
		t.Fatal(err)
	}
	if len(va.Trees()) == 0 || len(va.Result().Rows) == 0 {
		t.Fatal("approximate mode should produce answers")
	}
	// The approximation never undercuts the exact optimum.
	if va.Trees()[0].Cost < ve.Trees()[0].Cost-1e-9 {
		t.Errorf("approx best (%v) beats exact best (%v)", va.Trees()[0].Cost, ve.Trees()[0].Cost)
	}
	// Feedback works in approximate mode too.
	if len(va.Trees()) >= 2 {
		if err := approx.FeedbackFavorTree(va, va.Trees()[1]); err != nil {
			t.Fatal(err)
		}
	}
	// KBestTrees honours the approximate setting.
	if trees := approx.KBestTrees(va, 3); len(trees) == 0 {
		t.Error("KBestTrees empty in approx mode")
	}
}

func ref2(rel, attr string) relstore.AttrRef {
	return relstore.AttrRef{Relation: rel, Attr: attr}
}

var _ = steiner.NodeID(0)
