package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qint/internal/obs"
)

// TestScrapeMetrics runs the scraper against a real registry served over
// HTTP and checks the report fold-in: shape counts, missing-family
// detection, and per-family totals (labelled series summed, summaries
// reported by count).
func TestScrapeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("qint_queries_total", "q").Add(11)
	reg.Counter("qint_cache_hits_total", "h", obs.Label{Name: "cache", Value: "expansion"}).Add(2)
	reg.Counter("qint_cache_hits_total", "h", obs.Label{Name: "cache", Value: "materialization"}).Add(3)
	reg.Histogram("qint_query_duration_seconds", "d").Record(1)

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		reg.WritePrometheus(w)
	}))
	defer srv.Close()

	exp, err := ScrapeMetrics(srv.Client(), srv.URL+"/")
	if err != nil {
		t.Fatalf("ScrapeMetrics: %v", err)
	}
	var rep Report
	rep.AttachMetrics(exp, []string{
		"qint_queries_total", "qint_cache_hits_total",
		"qint_query_duration_seconds", "qint_epoch",
	})
	if !rep.MetricsScraped || rep.MetricFamilies != 3 {
		t.Errorf("scraped=%v families=%d, want true/3", rep.MetricsScraped, rep.MetricFamilies)
	}
	if len(rep.MissingMetricFamilies) != 1 || rep.MissingMetricFamilies[0] != "qint_epoch" {
		t.Errorf("missing = %v, want [qint_epoch]", rep.MissingMetricFamilies)
	}
	if got := rep.MetricTotals["qint_queries_total"]; got != 11 {
		t.Errorf("queries total = %v, want 11", got)
	}
	if got := rep.MetricTotals["qint_cache_hits_total"]; got != 5 {
		t.Errorf("cache hits total = %v, want 5 (summed across labels)", got)
	}
	if got := rep.MetricTotals["qint_query_duration_seconds"]; got != 1 {
		t.Errorf("duration total = %v, want 1 (summary count)", got)
	}
	if tbl := rep.Table(); !strings.Contains(tbl, "MISSING: qint_epoch") {
		t.Errorf("table does not flag the missing family:\n%s", tbl)
	}
}

// TestScrapeMetricsRejects checks the failure modes the CI gate relies
// on: non-200 statuses and non-exposition bodies are scrape errors.
func TestScrapeMetricsRejects(t *testing.T) {
	for name, h := range map[string]http.HandlerFunc{
		"status": func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusServiceUnavailable) },
		"body":   func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("<html>not metrics</html>")) },
	} {
		srv := httptest.NewServer(h)
		if _, err := ScrapeMetrics(srv.Client(), srv.URL); err == nil {
			t.Errorf("%s: ScrapeMetrics accepted a broken endpoint", name)
		}
		srv.Close()
	}
}
