package loadgen

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"qint/internal/obs"
)

// RequiredFamilies is the set of metric families a healthy qserver always
// exposes, spanning the four subsystems the exposition must cover: the
// query pipeline, the serving caches, the join planner, and the HTTP
// serving layer. qload's -fail-metrics gate and the CI smoke both check
// this list, so adding a family here makes its absence a build failure.
func RequiredFamilies() []string {
	return []string{
		"qint_queries_total",
		"qint_query_stage_seconds_total",
		"qint_exec_branches_total",
		"qint_cache_hits_total",
		"qint_cache_misses_total",
		"qint_plan_branches_planned_total",
		"qint_serving_served_queries_total",
		"qint_serving_inflight_queries",
		"qint_epoch",
		"qint_uptime_seconds",
		"qint_build_info",
	}
}

// ScrapeMetrics fetches and parses baseURL's /metrics endpoint. It fails
// on a non-200 status, a wrong method of exposition (parse error), or a
// transport error — exactly the conditions a Prometheus server would
// treat as a failed scrape.
func ScrapeMetrics(client *http.Client, baseURL string) (*obs.Exposition, error) {
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /metrics returned status %d", resp.StatusCode)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: /metrics is not valid exposition: %w", err)
	}
	return exp, nil
}

// AttachMetrics folds a post-run /metrics scrape into the report: scrape
// shape (family/sample counts), which required families were absent, and
// the per-family totals for the required set so BENCH_qload.json carries
// the server-side view of the run next to the client-side latencies.
func (r *Report) AttachMetrics(exp *obs.Exposition, required []string) {
	r.MetricsScraped = true
	r.MetricFamilies = len(exp.Types)
	r.MetricSamples = len(exp.Samples)
	r.MissingMetricFamilies = exp.MissingFamilies(required)
	r.MetricTotals = make(map[string]float64, len(required))
	for _, name := range required {
		if v, ok := familyTotal(exp, name); ok {
			r.MetricTotals[name] = v
		}
	}
}

// familyTotal sums every sample of a family across its label sets; for
// summary families the _count sample is the meaningful total (summing
// quantile estimates would be nonsense).
func familyTotal(exp *obs.Exposition, name string) (float64, bool) {
	if exp.Types[name] == "summary" {
		v, ok := exp.Samples[name+"_count"]
		return v, ok
	}
	total, found := 0.0, false
	for series, v := range exp.Samples {
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name {
			total += v
			found = true
		}
	}
	return total, found
}

// metricsTable renders the scrape section of the human summary.
func (r *Report) metricsTable(sb *strings.Builder) {
	if !r.MetricsScraped {
		return
	}
	fmt.Fprintf(sb, "metrics: %d families, %d samples", r.MetricFamilies, r.MetricSamples)
	if len(r.MissingMetricFamilies) > 0 {
		fmt.Fprintf(sb, "  MISSING: %s", strings.Join(r.MissingMetricFamilies, ", "))
	}
	fmt.Fprintln(sb)
	names := make([]string, 0, len(r.MetricTotals))
	for n := range r.MetricTotals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(sb, "  %-42s %14.6g\n", n, r.MetricTotals[n])
	}
}
