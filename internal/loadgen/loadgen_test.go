package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestOpenLoopChargesQueueDelay pins coordinated-omission safety with a
// deliberately stalling fake server: one worker, a schedule faster than
// the server, so later requests queue behind earlier ones. Their latency
// must be charged from the SCHEDULED time — the final request's latency
// has to reflect the whole backlog, far above the per-request service
// time.
func TestOpenLoopChargesQueueDelay(t *testing.T) {
	const service = 30 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(service)
		w.Header().Set("X-Q-Epoch", "1")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	// 10 ops at 100 qps on one worker: scheduled over 100ms, served over
	// ~300ms — the last op waits ~200ms beyond its slot.
	rep, err := Run(Config{
		BaseURL:  srv.URL,
		QPS:      100,
		Duration: 100 * time.Millisecond,
		Workers:  1,
		Queries:  []string{"'a'"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != rep.Scheduled || rep.Scheduled != 10 {
		t.Fatalf("served %d of %d scheduled", rep.Served, rep.Scheduled)
	}
	// A closed-loop (coordinated-omission-blind) driver would report every
	// latency ~= service time. Open-loop, the tail must carry the backlog.
	if rep.Max < 5*service {
		t.Errorf("Max = %v: backlog not charged to latency (service time %v)", rep.Max, service)
	}
	if rep.P50 < service {
		t.Errorf("P50 = %v below service time %v", rep.P50, service)
	}
}

// TestRunAgainstFakeServerCounts checks the outcome taxonomy: a fake
// server that sheds every other request with 429 (+ epoch churn on the
// rest) must yield matching served/shed/epoch counters and a consistent
// volume accounting.
func TestRunAgainstFakeServerCounts(t *testing.T) {
	var n, epoch int64 = 0, 41
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		shed := n%2 == 0
		if n%5 == 0 {
			epoch++
		}
		e := epoch
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed"}`))
			return
		}
		w.Header().Set("X-Q-Epoch", strconv.FormatInt(e, 10))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	rep, err := Run(Config{
		BaseURL:  srv.URL,
		QPS:      400,
		Duration: 100 * time.Millisecond,
		Workers:  4,
		Queries:  []string{"'a'", "'b'", "'c'"},
		Skew:     1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Scheduled {
		t.Fatalf("completed %d != scheduled %d", rep.Completed, rep.Scheduled)
	}
	if rep.Served+rep.Shed429 != rep.Completed {
		t.Fatalf("served %d + shed %d != completed %d", rep.Served, rep.Shed429, rep.Completed)
	}
	if rep.Served == 0 || rep.Shed429 == 0 {
		t.Fatalf("want both served and shed traffic: %+v", rep)
	}
	if rep.Err5xx != 0 || rep.NetErrors != 0 {
		t.Fatalf("unexpected errors: %+v", rep)
	}
	if rep.EpochsSeen < 2 || rep.EpochTransitions < 1 {
		t.Errorf("epoch churn not tracked: seen %d transitions %d",
			rep.EpochsSeen, rep.EpochTransitions)
	}
	if rep.Table() == "" {
		t.Error("empty table rendering")
	}
}
