package loadgen

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestBucketLayoutContiguous pins the log-linear index scheme: every value
// maps into a valid bucket, indexes are monotone in the value, and the
// upper edge of a value's bucket is never below the value and never more
// than 1/64 above it (the histogram's advertised relative error).
func TestBucketLayoutContiguous(t *testing.T) {
	prev := -1
	for _, v := range []int64{1, 2, 63, 64, 127, 128, 129, 255, 256, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1, 1 << 62} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("value %d: bucket %d below previous %d (not monotone)", v, i, prev)
		}
		prev = i
		upper := bucketUpperEdge(i)
		if upper < v {
			t.Errorf("value %d: upper edge %d below value", v, upper)
		}
		if float64(upper) > float64(v)*(1+1.0/64)+1 {
			t.Errorf("value %d: upper edge %d exceeds 1/64 relative error", v, upper)
		}
	}

	// Exhaustive contiguity over the first few exponents: consecutive
	// values never skip backwards and every bucket's upper edge bounds
	// its members.
	last := 0
	for v := int64(1); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, last)
		}
		last = i
		if e := bucketUpperEdge(i); e < v {
			t.Fatalf("upper edge %d < member %d (bucket %d)", e, v, i)
		}
	}
}

// TestHistogramQuantiles drives the histogram with a known distribution
// and checks every reported quantile against the exact sorted answer
// within the 1/64 relative-error bound, with Max exact.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Mixed magnitudes: microseconds to seconds.
		v := int64(rng.ExpFloat64() * float64(time.Duration(1+rng.Intn(500))*time.Millisecond))
		if v < 1 {
			v = 1
		}
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if got, want := int64(h.Max()), sorted[n-1]; got != want {
		t.Errorf("Max = %d, want exact %d", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		idx := int(q*float64(n)+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		exact := sorted[idx]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("Quantile(%g) = %d understates exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/64)+1 {
			t.Errorf("Quantile(%g) = %d exceeds error bound over exact %d", q, got, exact)
		}
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines (the
// production access pattern) — run under -race in CI — and checks the
// total survives.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != time.Duration((workers-1)*1000+per-1) {
		t.Fatalf("Max = %v", h.Max())
	}
}

// TestOpenLoopChargesQueueDelay pins coordinated-omission safety with a
// deliberately stalling fake server: one worker, a schedule faster than
// the server, so later requests queue behind earlier ones. Their latency
// must be charged from the SCHEDULED time — the final request's latency
// has to reflect the whole backlog, far above the per-request service
// time.
func TestOpenLoopChargesQueueDelay(t *testing.T) {
	const service = 30 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(service)
		w.Header().Set("X-Q-Epoch", "1")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	// 10 ops at 100 qps on one worker: scheduled over 100ms, served over
	// ~300ms — the last op waits ~200ms beyond its slot.
	rep, err := Run(Config{
		BaseURL:  srv.URL,
		QPS:      100,
		Duration: 100 * time.Millisecond,
		Workers:  1,
		Queries:  []string{"'a'"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != rep.Scheduled || rep.Scheduled != 10 {
		t.Fatalf("served %d of %d scheduled", rep.Served, rep.Scheduled)
	}
	// A closed-loop (coordinated-omission-blind) driver would report every
	// latency ~= service time. Open-loop, the tail must carry the backlog.
	if rep.Max < 5*service {
		t.Errorf("Max = %v: backlog not charged to latency (service time %v)", rep.Max, service)
	}
	if rep.P50 < service {
		t.Errorf("P50 = %v below service time %v", rep.P50, service)
	}
}

// TestRunAgainstFakeServerCounts checks the outcome taxonomy: a fake
// server that sheds every other request with 429 (+ epoch churn on the
// rest) must yield matching served/shed/epoch counters and a consistent
// volume accounting.
func TestRunAgainstFakeServerCounts(t *testing.T) {
	var n, epoch int64 = 0, 41
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		shed := n%2 == 0
		if n%5 == 0 {
			epoch++
		}
		e := epoch
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed"}`))
			return
		}
		w.Header().Set("X-Q-Epoch", strconv.FormatInt(e, 10))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	rep, err := Run(Config{
		BaseURL:  srv.URL,
		QPS:      400,
		Duration: 100 * time.Millisecond,
		Workers:  4,
		Queries:  []string{"'a'", "'b'", "'c'"},
		Skew:     1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Scheduled {
		t.Fatalf("completed %d != scheduled %d", rep.Completed, rep.Scheduled)
	}
	if rep.Served+rep.Shed429 != rep.Completed {
		t.Fatalf("served %d + shed %d != completed %d", rep.Served, rep.Shed429, rep.Completed)
	}
	if rep.Served == 0 || rep.Shed429 == 0 {
		t.Fatalf("want both served and shed traffic: %+v", rep)
	}
	if rep.Err5xx != 0 || rep.NetErrors != 0 {
		t.Fatalf("unexpected errors: %+v", rep)
	}
	if rep.EpochsSeen < 2 || rep.EpochTransitions < 1 {
		t.Errorf("epoch churn not tracked: seen %d transitions %d",
			rep.EpochsSeen, rep.EpochTransitions)
	}
	if rep.Table() == "" {
		t.Error("empty table rendering")
	}
}
