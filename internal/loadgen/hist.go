package loadgen

import "qint/internal/obs"

// Histogram is the HdrHistogram-style log-linear latency recorder. It
// originated here and moved to internal/obs when the metrics registry
// grew latency summaries; the alias keeps loadgen's public surface (and
// its callers) unchanged. See obs.Histogram for the layout and the
// relative-error contract.
type Histogram = obs.Histogram
