// Package loadgen is an open-loop HTTP load driver for the qserver
// serving path: it fires a Zipfian-skewed stream of keyword queries (with
// an optional mix of source registrations and feedback writes) at a target
// QPS and reports coordinated-omission-safe latency percentiles.
//
// Open-loop means the arrival schedule is fixed up front — operation i is
// due at start + i/QPS — and latency is measured from that SCHEDULED send
// time, not from when a worker actually got around to writing the request.
// A server that stalls therefore shows the stall in every queued request's
// latency (the coordinated-omission correction HdrHistogram's designers
// argue for), instead of the closed-loop lie where a stalled client simply
// stops issuing requests and the stall vanishes from the numbers.
//
// Latencies land in an HdrHistogram-style log-linear histogram (~1.6%
// relative error, lock-free recording); the Report separates served (2xx)
// latency from shed traffic (429 admission, 503 backpressure) and counts
// X-Q-Epoch churn so a run shows how many state generations it spanned.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op kinds in the generated mix.
const (
	opQuery = iota
	opRegister
	opFeedback
)

// Config parameterises one load run.
type Config struct {
	// BaseURL is the qserver root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the target arrival rate of the open-loop schedule.
	QPS float64
	// Duration is the span of the schedule; Scheduled = QPS × Duration.
	Duration time.Duration
	// Workers is the number of concurrent senders draining the schedule
	// (default 64). Workers bound in-flight requests, not the schedule:
	// when all are busy, due operations queue and their wait is charged
	// to latency.
	Workers int
	// Queries is the keyword-query vocabulary; drawn Zipfian by rank.
	Queries []string
	// Skew is the Zipf exponent s over Queries (s>1; <=1 means uniform).
	Skew float64
	// RegisterFraction and FeedbackFraction divert that share of
	// operations to POST /sources (a tiny unique table each) and POST
	// /views/{id}/feedback (against a view created at startup).
	RegisterFraction, FeedbackFraction float64
	// Ephemeral sends queries with ?ephemeral=1 so the run does not grow
	// the server's view registry. Default true (Run flips a zero Config
	// to ephemeral; set NoEphemeral to force persistent queries).
	NoEphemeral bool
	// Parallel, if >0, adds ?parallel=N to query requests.
	Parallel int
	// Timeout caps one HTTP exchange (default 10s).
	Timeout time.Duration
	// Seed fixes the op-mix and Zipf draw (default 1).
	Seed int64
}

// Report is the outcome of one run, both the machine-readable
// BENCH_qload.json artifact and the source of the human table.
type Report struct {
	// Echo of the run parameters.
	BaseURL   string  `json:"base_url"`
	TargetQPS float64 `json:"target_qps"`
	Skew      float64 `json:"skew"`
	Workers   int     `json:"workers"`
	Ephemeral bool    `json:"ephemeral"`

	// Volume. Scheduled counts every planned arrival; Completed is the
	// subset whose HTTP exchange finished (any status); achieved QPS is
	// Completed over the wall-clock span.
	Scheduled   int64         `json:"scheduled"`
	Completed   int64         `json:"completed"`
	WallClock   time.Duration `json:"wall_clock_ns"`
	AchievedQPS float64       `json:"achieved_qps"`

	// Outcomes. Served = 2xx. Shed429/Shed503 are the admission-control
	// refusals; Err4xx counts other client errors, Err5xx server errors,
	// NetErrors transport failures/timeouts.
	Served    int64            `json:"served"`
	Shed429   int64            `json:"shed_429"`
	Shed503   int64            `json:"shed_503"`
	Err4xx    int64            `json:"err_4xx"`
	Err5xx    int64            `json:"err_5xx"`
	NetErrors int64            `json:"net_errors"`
	ByStatus  map[string]int64 `json:"by_status"`

	// Served-request latency from the scheduled send time
	// (coordinated-omission-safe).
	P50  time.Duration `json:"served_p50_ns"`
	P90  time.Duration `json:"served_p90_ns"`
	P99  time.Duration `json:"served_p99_ns"`
	P999 time.Duration `json:"served_p999_ns"`
	Max  time.Duration `json:"served_max_ns"`
	Mean time.Duration `json:"served_mean_ns"`

	// All-completed latency (includes shed responses, which should be
	// fast — a shed path slower than the served path is a server bug).
	AllP50 time.Duration `json:"all_p50_ns"`
	AllP99 time.Duration `json:"all_p99_ns"`

	// X-Q-Epoch churn: distinct published generations observed, the
	// first/last epoch, and how many times the observed epoch changed.
	EpochsSeen       int    `json:"epochs_seen"`
	FirstEpoch       uint64 `json:"first_epoch"`
	LastEpoch        uint64 `json:"last_epoch"`
	EpochTransitions int64  `json:"epoch_transitions"`

	// Post-run /metrics scrape (AttachMetrics): scrape shape, required
	// families that were absent, and per-family totals — the server-side
	// view of the run, stored next to the client-side latencies.
	MetricsScraped        bool               `json:"metrics_scraped"`
	MetricFamilies        int                `json:"metric_families,omitempty"`
	MetricSamples         int                `json:"metric_samples,omitempty"`
	MissingMetricFamilies []string           `json:"missing_metric_families,omitempty"`
	MetricTotals          map[string]float64 `json:"metric_totals,omitempty"`
}

// op is one precomputed schedule entry.
type op struct {
	kind  uint8
	query int32 // index into Config.Queries for opQuery
}

// epochTracker folds X-Q-Epoch headers into churn statistics.
type epochTracker struct {
	mu          sync.Mutex
	seen        map[uint64]struct{}
	last        uint64
	haveLast    bool
	first       uint64
	transitions int64
}

func (e *epochTracker) observe(raw string) {
	if raw == "" {
		return
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seen == nil {
		e.seen = make(map[uint64]struct{})
	}
	e.seen[v] = struct{}{}
	if !e.haveLast {
		e.first, e.last, e.haveLast = v, v, true
		return
	}
	if v != e.last {
		e.transitions++
		e.last = v
	}
}

// Run executes the configured load against a live server and returns the
// report. The schedule is drawn up front from Seed, so two runs with the
// same Config offer byte-identical traffic.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: QPS and Duration must be positive")
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty query vocabulary")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	base := strings.TrimRight(cfg.BaseURL, "/")

	total := int(cfg.QPS * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.QPS)

	// Precompute the op mix and query ranks: one rng, deterministic.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Skew > 1 && len(cfg.Queries) > 1 {
		zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(len(cfg.Queries)-1))
	}
	ops := make([]op, total)
	for i := range ops {
		r := rng.Float64()
		switch {
		case r < cfg.RegisterFraction:
			ops[i] = op{kind: opRegister}
		case r < cfg.RegisterFraction+cfg.FeedbackFraction:
			ops[i] = op{kind: opFeedback}
		default:
			qi := int32(0)
			if zipf != nil {
				qi = int32(zipf.Uint64())
			} else if len(cfg.Queries) > 1 {
				qi = int32(rng.Intn(len(cfg.Queries)))
			}
			ops[i] = op{kind: opQuery, query: qi}
		}
	}

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
		},
	}
	defer client.CloseIdleConnections()

	// Feedback needs a persistent target view; create it before the clock
	// starts. Row 0 of the hottest query's answers is the target.
	feedbackPath := ""
	if cfg.FeedbackFraction > 0 {
		id, err := createFeedbackView(client, base, cfg.Queries[0])
		if err != nil {
			return nil, fmt.Errorf("loadgen: creating feedback target view: %w", err)
		}
		feedbackPath = "/views/" + id + "/feedback"
	}

	queryPath := "/query"
	params := make([]string, 0, 2)
	if !cfg.NoEphemeral {
		params = append(params, "ephemeral=1")
	}
	if cfg.Parallel > 0 {
		params = append(params, "parallel="+strconv.Itoa(cfg.Parallel))
	}
	if len(params) > 0 {
		queryPath += "?" + strings.Join(params, "&")
	}

	var (
		servedHist, allHist Histogram
		served, completed   atomic.Int64
		shed429, shed503    atomic.Int64
		err4xx, err5xx      atomic.Int64
		netErrors           atomic.Int64
		regSeq              atomic.Int64
		epochs              epochTracker
		statusMu            sync.Mutex
		byStatus            = make(map[string]int64)
	)
	countStatus := func(code int) {
		statusMu.Lock()
		byStatus[strconv.Itoa(code)]++
		statusMu.Unlock()
	}

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				due := start.Add(time.Duration(i) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				o := ops[i]
				var (
					path string
					body []byte
				)
				switch o.kind {
				case opRegister:
					path = "/sources"
					body = registerBody(cfg.Seed, regSeq.Add(1))
				case opFeedback:
					path = feedbackPath
					body = []byte(`{"row":0,"kind":"valid"}`)
				default:
					path = queryPath
					b, _ := json.Marshal(map[string]string{"q": cfg.Queries[o.query]})
					body = b
				}
				resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
				// Latency from the SCHEDULED send time: a backlogged or
				// stalled server is charged for every queued request.
				lat := time.Since(due)
				if err != nil {
					netErrors.Add(1)
					completed.Add(1)
					allHist.Record(lat)
					continue
				}
				drain(resp)
				completed.Add(1)
				allHist.Record(lat)
				countStatus(resp.StatusCode)
				epochs.observe(resp.Header.Get("X-Q-Epoch"))
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					served.Add(1)
					servedHist.Record(lat)
				case resp.StatusCode == http.StatusTooManyRequests:
					shed429.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					shed503.Add(1)
				case resp.StatusCode >= 500:
					err5xx.Add(1)
				default:
					err4xx.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &Report{
		BaseURL:   cfg.BaseURL,
		TargetQPS: cfg.QPS,
		Skew:      cfg.Skew,
		Workers:   cfg.Workers,
		Ephemeral: !cfg.NoEphemeral,

		Scheduled:   int64(total),
		Completed:   completed.Load(),
		WallClock:   wall,
		AchievedQPS: float64(completed.Load()) / wall.Seconds(),

		Served:    served.Load(),
		Shed429:   shed429.Load(),
		Shed503:   shed503.Load(),
		Err4xx:    err4xx.Load(),
		Err5xx:    err5xx.Load(),
		NetErrors: netErrors.Load(),
		ByStatus:  byStatus,

		P50:  servedHist.Quantile(0.50),
		P90:  servedHist.Quantile(0.90),
		P99:  servedHist.Quantile(0.99),
		P999: servedHist.Quantile(0.999),
		Max:  servedHist.Max(),
		Mean: servedHist.Mean(),

		AllP50: allHist.Quantile(0.50),
		AllP99: allHist.Quantile(0.99),

		EpochsSeen:       len(epochs.seen),
		FirstEpoch:       epochs.first,
		LastEpoch:        epochs.last,
		EpochTransitions: epochs.transitions,
	}
	return rep, nil
}

// createFeedbackView creates one persistent view to aim feedback writes at
// and returns its wire id.
func createFeedbackView(client *http.Client, base, query string) (string, error) {
	b, _ := json.Marshal(map[string]string{"q": query})
	resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /query: status %d", resp.StatusCode)
	}
	var out struct {
		ID   string            `json:"id"`
		Rows []json.RawMessage `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if len(out.Rows) == 0 {
		return "", fmt.Errorf("feedback target query %q returned no rows", query)
	}
	return out.ID, nil
}

// registerBody builds a tiny unique single-table registration so repeated
// register ops never collide on source name.
func registerBody(seed, seq int64) []byte {
	src := fmt.Sprintf("load_%d_%d", seed, seq)
	b, _ := json.Marshal(map[string]any{
		"source": src,
		"tables": []map[string]any{{
			"name":       "probe",
			"attributes": []string{"probe_id", "label"},
			"rows":       [][]string{{fmt.Sprintf("LP%08d", seq), "load probe"}},
		}},
		"strategy": "preferential",
	})
	return b
}

// drain consumes and closes a response body so connections are reused.
func drain(resp *http.Response) {
	const limit = 1 << 20
	buf := make([]byte, 4096)
	var n int64
	for n < limit {
		m, err := resp.Body.Read(buf)
		n += int64(m)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
}

// WriteFile writes the report as indented JSON (the BENCH_qload.json
// artifact) via a plain create-then-write — the artifact is not a durable
// store, CI uploads it immediately.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Table renders the human-readable run summary.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "qload: %s  target %.0f qps  achieved %.1f qps  wall %v\n",
		r.BaseURL, r.TargetQPS, r.AchievedQPS, r.WallClock.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %10s %10s %10s\n",
		"", "count", "p50", "p90", "p99", "p999", "max")
	fmt.Fprintf(&sb, "%-12s %10d %10v %10v %10v %10v %10v\n",
		"served", r.Served,
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.P999.Round(time.Microsecond),
		r.Max.Round(time.Microsecond))
	fmt.Fprintf(&sb, "%-12s %10d %10v %10s %10v\n",
		"all", r.Completed,
		r.AllP50.Round(time.Microsecond), "", r.AllP99.Round(time.Microsecond))
	fmt.Fprintf(&sb, "shed: %d x 429, %d x 503   errors: %d x 4xx, %d x 5xx, %d transport\n",
		r.Shed429, r.Shed503, r.Err4xx, r.Err5xx, r.NetErrors)
	if len(r.ByStatus) > 0 {
		codes := make([]string, 0, len(r.ByStatus))
		for c := range r.ByStatus {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		fmt.Fprintf(&sb, "status:")
		for _, c := range codes {
			fmt.Fprintf(&sb, " %s=%d", c, r.ByStatus[c])
		}
		fmt.Fprintln(&sb)
	}
	fmt.Fprintf(&sb, "epochs: %d seen (%d -> %d), %d transitions\n",
		r.EpochsSeen, r.FirstEpoch, r.LastEpoch, r.EpochTransitions)
	r.metricsTable(&sb)
	return sb.String()
}
