package relstore

import (
	"strings"
	"testing"
)

// testCatalog builds a tiny GO/InterPro-flavoured catalog used across tests:
//
//	go.term(acc, name)
//	ip.interpro2go(entry_ac, go_id)   FK entry_ac -> ip.entry.entry_ac
//	ip.entry(entry_ac, name)
func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	add := func(rel *Relation, rows [][]string) {
		tb, err := NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	add(&Relation{
		Source: "go", Name: "term",
		Attributes: []Attribute{{Name: "acc"}, {Name: "name"}},
	}, [][]string{
		{"GO:0005886", "plasma membrane"},
		{"GO:0005634", "nucleus"},
		{"GO:0005737", "cytoplasm"},
	})
	add(&Relation{
		Source: "ip", Name: "interpro2go",
		Attributes: []Attribute{{Name: "entry_ac"}, {Name: "go_id"}},
		ForeignKeys: []ForeignKey{
			{FromAttr: "entry_ac", ToRelation: "ip.entry", ToAttr: "entry_ac"},
		},
	}, [][]string{
		{"IPR000001", "GO:0005886"},
		{"IPR000002", "GO:0005634"},
		{"IPR000003", "GO:0005886"},
	})
	add(&Relation{
		Source: "ip", Name: "entry",
		Attributes: []Attribute{{Name: "entry_ac"}, {Name: "name"}},
	}, [][]string{
		{"IPR000001", "Kringle domain"},
		{"IPR000002", "Zinc finger"},
		{"IPR000003", "Membrane protein"},
	})
	return c
}

func TestRelationValidate(t *testing.T) {
	bad := []*Relation{
		{Source: "", Name: "x", Attributes: []Attribute{{Name: "a"}}},
		{Source: "s", Name: "", Attributes: []Attribute{{Name: "a"}}},
		{Source: "s", Name: "x", Attributes: []Attribute{{Name: ""}}},
		{Source: "s", Name: "x", Attributes: []Attribute{{Name: "a"}, {Name: "a"}}},
		{Source: "s", Name: "x", Attributes: []Attribute{{Name: "a"}},
			ForeignKeys: []ForeignKey{{FromAttr: "missing", ToRelation: "s.y", ToAttr: "b"}}},
		{Source: "s", Name: "x", Attributes: []Attribute{{Name: "a"}},
			ForeignKeys: []ForeignKey{{FromAttr: "a", ToRelation: "", ToAttr: "b"}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, r)
		}
	}
	good := &Relation{Source: "s", Name: "x", Attributes: []Attribute{{Name: "a"}, {Name: "b"}},
		ForeignKeys: []ForeignKey{{FromAttr: "a", ToRelation: "s.y", ToAttr: "c"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAttrRefRoundTrip(t *testing.T) {
	ref := AttrRef{Relation: "ip.entry", Attr: "entry_ac"}
	s := ref.String()
	back, err := ParseAttrRef(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != ref {
		t.Errorf("round trip: got %v, want %v", back, ref)
	}
	for _, bad := range []string{"", "noqualifier", "a.b", ".x.y", "x.y."} {
		if _, err := ParseAttrRef(bad); err == nil {
			t.Errorf("ParseAttrRef(%q): expected error", bad)
		}
	}
}

func TestNewTableRowWidth(t *testing.T) {
	rel := &Relation{Source: "s", Name: "r", Attributes: []Attribute{{Name: "a"}, {Name: "b"}}}
	if _, err := NewTable(rel, [][]string{{"only-one"}}); err == nil {
		t.Error("expected row-width error")
	}
	if _, err := NewTable(rel, [][]string{{"x", "y"}}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCatalogBasics(t *testing.T) {
	c := testCatalog(t)
	if c.NumRelations() != 3 {
		t.Errorf("NumRelations = %d, want 3", c.NumRelations())
	}
	if c.NumAttributes() != 6 {
		t.Errorf("NumAttributes = %d, want 6", c.NumAttributes())
	}
	srcs := c.Sources()
	if len(srcs) != 2 || srcs[0] != "go" || srcs[1] != "ip" {
		t.Errorf("Sources = %v", srcs)
	}
	if len(c.SourceRelations("ip")) != 2 {
		t.Errorf("ip should have 2 relations")
	}
	if c.Relation("go.term") == nil || c.Relation("nope.x") != nil {
		t.Error("Relation lookup broken")
	}
	if len(c.AttrRefs()) != 6 {
		t.Errorf("AttrRefs = %d, want 6", len(c.AttrRefs()))
	}
	// duplicate registration rejected
	tb, _ := NewTable(&Relation{Source: "go", Name: "term", Attributes: []Attribute{{Name: "acc"}}}, nil)
	if err := c.AddTable(tb); err == nil {
		t.Error("duplicate AddTable should fail")
	}
}

func TestValueSetAndOverlap(t *testing.T) {
	c := testCatalog(t)
	goAcc := AttrRef{Relation: "go.term", Attr: "acc"}
	goID := AttrRef{Relation: "ip.interpro2go", Attr: "go_id"}
	vs := c.ValueSet(goAcc)
	if len(vs) != 3 {
		t.Errorf("ValueSet(go.term.acc) = %d distinct, want 3", len(vs))
	}
	// go_id has GO:0005886 (x2 -> 1 distinct) and GO:0005634; both in acc.
	if got := c.ValueOverlap(goAcc, goID); got != 2 {
		t.Errorf("ValueOverlap = %d, want 2", got)
	}
	if got := c.ValueOverlap(goAcc, AttrRef{Relation: "ip.entry", Attr: "name"}); got != 0 {
		t.Errorf("disjoint overlap = %d, want 0", got)
	}
	j := c.ValueJaccard(goAcc, goID)
	if j <= 0 || j > 1 {
		t.Errorf("ValueJaccard = %v, want (0,1]", j)
	}
	if c.ValueSet(AttrRef{Relation: "missing.rel", Attr: "a"}) != nil {
		t.Error("missing relation should give nil value set")
	}
}

func TestFindValues(t *testing.T) {
	// The contract must hold identically through the inverted value index
	// (the default) and the reference scan.
	for _, mode := range []struct {
		name string
		scan bool
	}{{"index", false}, {"scan", true}} {
		t.Run(mode.name, func(t *testing.T) {
			c := testCatalog(t)
			c.UseScanFindValues(mode.scan)
			hits := c.FindValues("membrane")
			// "plasma membrane" in go.term.name and "Membrane protein" in ip.entry.name
			if len(hits) != 2 {
				t.Fatalf("FindValues(membrane) = %v, want 2 hits", hits)
			}
			if hits[0].Ref.Relation != "go.term" || hits[1].Ref.Relation != "ip.entry" {
				t.Errorf("hit order/content wrong: %v", hits)
			}
			if hits := c.FindValues(""); hits != nil {
				t.Errorf("empty keyword should match nothing, got %v", hits)
			}
			// Value appearing in multiple rows reports row count.
			hits = c.FindValues("GO:0005886")
			var found bool
			for _, h := range hits {
				if h.Ref.Relation == "ip.interpro2go" && h.Rows != 2 {
					t.Errorf("GO:0005886 appears in 2 rows of interpro2go, got %d", h.Rows)
				}
				if h.Ref.Relation == "ip.interpro2go" {
					found = true
				}
			}
			if !found {
				t.Error("expected a hit in ip.interpro2go")
			}
		})
	}
}

func TestExecuteSingleAtomSelection(t *testing.T) {
	c := testCatalog(t)
	q := &ConjunctiveQuery{
		Atoms:   []Atom{{Relation: "go.term", Alias: "t"}},
		Selects: []SelCond{{Alias: "t", Attr: "name", Op: OpContains, Value: "membrane"}},
		Project: []ProjCol{{Alias: "t", Attr: "acc", As: "acc"}, {Alias: "t", Attr: "name", As: "name"}},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "GO:0005886" {
		t.Errorf("rows = %v, want plasma membrane row", rs.Rows)
	}
}

func TestExecuteJoin(t *testing.T) {
	c := testCatalog(t)
	q := &ConjunctiveQuery{
		Atoms: []Atom{
			{Relation: "go.term", Alias: "t"},
			{Relation: "ip.interpro2go", Alias: "x"},
			{Relation: "ip.entry", Alias: "e"},
		},
		Joins: []JoinCond{
			{LeftAlias: "t", LeftAttr: "acc", RightAlias: "x", RightAttr: "go_id"},
			{LeftAlias: "x", LeftAttr: "entry_ac", RightAlias: "e", RightAttr: "entry_ac"},
		},
		Selects: []SelCond{{Alias: "t", Attr: "name", Op: OpEq, Value: "plasma membrane"}},
		Project: []ProjCol{
			{Alias: "t", Attr: "name", As: "term"},
			{Alias: "e", Attr: "name", As: "entry"},
		},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v, want 2 (IPR000001, IPR000003)", rs.Rows)
	}
	entries := []string{rs.Rows[0][1], rs.Rows[1][1]}
	want := map[string]bool{"Kringle domain": true, "Membrane protein": true}
	for _, e := range entries {
		if !want[e] {
			t.Errorf("unexpected entry %q", e)
		}
	}
}

func TestExecuteCrossProductForDisconnectedAtoms(t *testing.T) {
	c := testCatalog(t)
	q := &ConjunctiveQuery{
		Atoms: []Atom{
			{Relation: "go.term", Alias: "t"},
			{Relation: "ip.entry", Alias: "e"},
		},
		Project: []ProjCol{
			{Alias: "t", Attr: "acc", As: "acc"},
			{Alias: "e", Attr: "entry_ac", As: "entry_ac"},
		},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 9 {
		t.Errorf("cross product rows = %d, want 9", len(rs.Rows))
	}
}

func TestExecuteProjectionDeduplicates(t *testing.T) {
	c := testCatalog(t)
	// Project only go_id from interpro2go: GO:0005886 appears twice in data
	// but set semantics deduplicate.
	q := &ConjunctiveQuery{
		Atoms:   []Atom{{Relation: "ip.interpro2go", Alias: "x"}},
		Project: []ProjCol{{Alias: "x", Attr: "go_id", As: "go_id"}},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("distinct go_ids = %d, want 2", len(rs.Rows))
	}
}

func TestExecuteValidationErrors(t *testing.T) {
	c := testCatalog(t)
	cases := []*ConjunctiveQuery{
		{}, // no atoms
		{Atoms: []Atom{{Relation: "missing.rel", Alias: "m"}}},
		{Atoms: []Atom{{Relation: "go.term", Alias: ""}}},
		{Atoms: []Atom{{Relation: "go.term", Alias: "t"}, {Relation: "go.term", Alias: "t"}}},
		{Atoms: []Atom{{Relation: "go.term", Alias: "t"}},
			Selects: []SelCond{{Alias: "t", Attr: "nope", Value: "x"}}},
		{Atoms: []Atom{{Relation: "go.term", Alias: "t"}},
			Joins: []JoinCond{{LeftAlias: "t", LeftAttr: "acc", RightAlias: "ghost", RightAttr: "x"}}},
		{Atoms: []Atom{{Relation: "go.term", Alias: "t"}},
			Project: []ProjCol{{Alias: "t", Attr: "ghost", As: "g"}}},
	}
	for i, q := range cases {
		if _, err := Execute(c, q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSQLRendering(t *testing.T) {
	q := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "go.term", Alias: "t"}},
		Selects: []SelCond{
			{Alias: "t", Attr: "name", Op: OpContains, Value: "o'brien"},
			{Alias: "t", Attr: "acc", Op: OpEq, Value: "GO:1"},
		},
		Project: []ProjCol{{Alias: "t", Attr: "name", As: "term"}},
		Cost:    1.25,
	}
	sql := q.SQL()
	for _, want := range []string{"SELECT", `t.name AS "term"`, "_cost", "LIKE '%o''brien%'", "t.acc = 'GO:1'", `"go.term" t`} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
}

func TestSignatureAliasInvariance(t *testing.T) {
	q1 := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "go.term", Alias: "a"}, {Relation: "ip.entry", Alias: "b"}},
		Joins: []JoinCond{{LeftAlias: "a", LeftAttr: "acc", RightAlias: "b", RightAttr: "entry_ac"}},
	}
	q2 := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "ip.entry", Alias: "x"}, {Relation: "go.term", Alias: "y"}},
		Joins: []JoinCond{{LeftAlias: "x", LeftAttr: "entry_ac", RightAlias: "y", RightAttr: "acc"}},
	}
	if q1.Signature() != q2.Signature() {
		t.Errorf("signatures differ:\n%s\n%s", q1.Signature(), q2.Signature())
	}
	q3 := &ConjunctiveQuery{Atoms: q1.Atoms} // no join: different structure
	if q1.Signature() == q3.Signature() {
		t.Error("different structures should have different signatures")
	}
}

func TestDisjointUnion(t *testing.T) {
	b1 := Branch{
		Result: &ResultSet{Columns: []string{"term", "title"},
			Rows: [][]string{{"plasma membrane", "Paper A"}}},
		Cost: 2.0, Provenance: "q1",
	}
	b2 := Branch{
		Result: &ResultSet{Columns: []string{"term", "abbrev"},
			Rows: [][]string{{"nucleus", "nuc"}, {"cytoplasm", "cyt"}}},
		Cost: 1.0, Provenance: "q2",
	}
	u := DisjointUnion([]Branch{b1, b2})
	if len(u.Columns) != 3 {
		t.Fatalf("columns = %v, want [term title abbrev]", u.Columns)
	}
	if u.Columns[0] != "term" || u.Columns[1] != "title" || u.Columns[2] != "abbrev" {
		t.Errorf("column order = %v", u.Columns)
	}
	if len(u.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(u.Rows))
	}
	// Cheaper branch (b2) ranks first.
	if u.Rows[0].Cost != 1.0 || u.Rows[0].Provenance != "q2" {
		t.Errorf("first row should come from q2: %+v", u.Rows[0])
	}
	// b1's row has empty abbrev column.
	last := u.Rows[2]
	if last.Provenance != "q1" || last.Values[2] != "" || last.Values[1] != "Paper A" {
		t.Errorf("q1 row misaligned: %+v", last)
	}
	// Shared column lands in the same slot for both branches.
	if u.Rows[0].Values[0] != "nucleus" {
		t.Errorf("shared column misaligned: %+v", u.Rows[0])
	}
	if got := u.TopK(2); len(got) != 2 {
		t.Errorf("TopK(2) = %d rows", len(got))
	}
	if got := u.TopK(0); len(got) != 3 {
		t.Errorf("TopK(0) should return all rows, got %d", len(got))
	}
}

func TestTableColumn(t *testing.T) {
	c := testCatalog(t)
	tb := c.Table("go.term")
	col := tb.Column("name")
	if len(col) != 3 || col[0] != "plasma membrane" {
		t.Errorf("Column(name) = %v", col)
	}
	if tb.Column("ghost") != nil {
		t.Error("unknown column should be nil")
	}
}
