package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is one relation occurrence in a conjunctive query, bound to an alias.
type Atom struct {
	Relation string // qualified name
	Alias    string
}

// JoinOp is the comparison operator of a join condition.
type JoinOp int

const (
	// JoinEq is the ordinary equi-join.
	JoinEq JoinOp = iota
	// JoinSimilar joins tuples whose values' trigram similarity reaches the
	// condition's Threshold — the similarity joins the paper lists as
	// ongoing work ("we are incorporating similarity joins and other
	// operations that vary in cost from one tuple to the next", §2.2).
	JoinSimilar
)

// JoinCond relates two aliased attributes. The zero value of Op is an
// equi-join; JoinSimilar additionally uses Threshold ∈ (0,1].
type JoinCond struct {
	LeftAlias  string
	LeftAttr   string
	RightAlias string
	RightAttr  string
	Op         JoinOp
	Threshold  float64
}

// SelOp is the comparison operator of a selection condition.
type SelOp int

const (
	// OpEq selects rows whose attribute equals the literal exactly.
	OpEq SelOp = iota
	// OpContains selects rows whose normalised attribute value contains the
	// normalised literal — the value-similarity predicate used when matching
	// keywords to data (paper §2.2).
	OpContains
)

// SelCond restricts an aliased attribute against a literal.
type SelCond struct {
	Alias string
	Attr  string
	Op    SelOp
	Value string
}

// ProjCol names one output column: the aliased attribute to project and the
// output label it appears under (after the paper's outer-union renaming).
type ProjCol struct {
	Alias string
	Attr  string
	As    string
}

// ConjunctiveQuery is one select-project-join query generated from a Steiner
// tree. Cost is the tree cost; it ranks this query's tuples in the unioned
// view output.
type ConjunctiveQuery struct {
	Atoms   []Atom
	Joins   []JoinCond
	Selects []SelCond
	Project []ProjCol
	Cost    float64
}

// Validate checks that aliases are unique, conditions refer to declared
// aliases and attributes, and every atom's relation exists in the catalog.
func (q *ConjunctiveQuery) Validate(c *Catalog) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("relstore: query has no atoms")
	}
	byAlias := make(map[string]*Relation, len(q.Atoms))
	for _, a := range q.Atoms {
		if a.Alias == "" {
			return fmt.Errorf("relstore: atom %q has empty alias", a.Relation)
		}
		if _, dup := byAlias[a.Alias]; dup {
			return fmt.Errorf("relstore: duplicate alias %q", a.Alias)
		}
		rel := c.Relation(a.Relation)
		if rel == nil {
			return fmt.Errorf("relstore: unknown relation %q", a.Relation)
		}
		byAlias[a.Alias] = rel
	}
	check := func(alias, attr string) error {
		rel, ok := byAlias[alias]
		if !ok {
			return fmt.Errorf("relstore: condition refers to unknown alias %q", alias)
		}
		if !rel.HasAttr(attr) {
			return fmt.Errorf("relstore: relation %s has no attribute %q", rel.QualifiedName(), attr)
		}
		return nil
	}
	for _, j := range q.Joins {
		if err := check(j.LeftAlias, j.LeftAttr); err != nil {
			return err
		}
		if err := check(j.RightAlias, j.RightAttr); err != nil {
			return err
		}
	}
	for _, s := range q.Selects {
		if err := check(s.Alias, s.Attr); err != nil {
			return err
		}
	}
	for _, p := range q.Project {
		if err := check(p.Alias, p.Attr); err != nil {
			return err
		}
	}
	return nil
}

// SQL renders the query as a SQL SELECT statement with the cost emitted as a
// constant column, matching the paper's per-branch "e term" (§2.2). The
// output is deterministic and intended for logging, provenance display and
// tests; execution happens natively via Execute.
func (q *ConjunctiveQuery) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Project) == 0 {
		b.WriteString("*")
	} else {
		for i, p := range q.Project {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s.%s AS %q", p.Alias, p.Attr, p.As)
		}
	}
	fmt.Fprintf(&b, ", %.4f AS _cost FROM ", q.Cost)
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q %s", a.Relation, a.Alias)
	}
	var conds []string
	for _, j := range q.Joins {
		switch j.Op {
		case JoinSimilar:
			conds = append(conds, fmt.Sprintf("similarity(%s.%s, %s.%s) >= %.2f",
				j.LeftAlias, j.LeftAttr, j.RightAlias, j.RightAttr, j.Threshold))
		default:
			conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", j.LeftAlias, j.LeftAttr, j.RightAlias, j.RightAttr))
		}
	}
	for _, s := range q.Selects {
		switch s.Op {
		case OpContains:
			conds = append(conds, fmt.Sprintf("%s.%s LIKE '%%%s%%'", s.Alias, s.Attr, escapeSQL(s.Value)))
		default:
			conds = append(conds, fmt.Sprintf("%s.%s = '%s'", s.Alias, s.Attr, escapeSQL(s.Value)))
		}
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	return b.String()
}

func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }

// Signature returns a canonical string identifying the query's structure
// (atoms, joins, selections) independent of alias naming order. Views use it
// to deduplicate queries produced by distinct but equivalent Steiner trees.
func (q *ConjunctiveQuery) Signature() string {
	rels := make([]string, len(q.Atoms))
	aliasRel := make(map[string]string, len(q.Atoms))
	for i, a := range q.Atoms {
		rels[i] = a.Relation
		aliasRel[a.Alias] = a.Relation
	}
	sort.Strings(rels)
	joins := make([]string, 0, len(q.Joins))
	for _, j := range q.Joins {
		l := aliasRel[j.LeftAlias] + "." + j.LeftAttr
		r := aliasRel[j.RightAlias] + "." + j.RightAttr
		if r < l {
			l, r = r, l
		}
		joins = append(joins, l+"="+r)
	}
	sort.Strings(joins)
	sels := make([]string, 0, len(q.Selects))
	for _, s := range q.Selects {
		sels = append(sels, fmt.Sprintf("%s.%s~%d~%s", aliasRel[s.Alias], s.Attr, s.Op, s.Value))
	}
	sort.Strings(sels)
	return strings.Join(rels, "|") + "//" + strings.Join(joins, "|") + "//" + strings.Join(sels, "|")
}
