package relstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"qint/internal/text"
)

// This file is the streaming branch executor: the Volcano-style iterator
// pipeline that replaced the materialise-everything evaluation of exec.go as
// the default execution path. A conjunctive query compiles into a small
// chain of pull-based operators — table scan with pushed-down selections →
// hash-join probe (build side pre-sized, built from the joined-in atom's
// filtered rows) or nested-loop for similarity/cross joins → projection with
// set-semantics deduplication — and rows flow through ONE shared row buffer,
// so no intermediate relation is ever allocated: the only per-row
// allocations are the projected output tuples that survive deduplication.
//
// Execute dispatches here by default; ExecuteMaterialised (exec.go) survives
// as the executable specification, and the metamorphic suite in
// stream_test.go pins the two byte-identical on randomised catalogs, join
// shapes and shard counts. Tuple identity is collision-proof in both paths:
// the materialised executor keys joins and dedup by the length-prefixed
// encoding below (which values containing NUL bytes, embedded spaces or
// empty strings cannot forge — the exec.go row-identity bugs this refactor
// fixed), and the streaming operators go one step further, bucketing by
// value hash and verifying every bucket hit against the values themselves,
// so no identity ever rides on an encoding at all.

// appendLenPrefixed appends a length-prefixed encoding of vals to dst and
// returns the extended slice. Each value is encoded as uvarint(len) ‖ bytes,
// which is prefix-free per field: no choice of values can make two distinct
// tuples encode identically, unlike separator-based encodings (a "\x00"
// separator collides on values containing NUL; fmt.Sprint collides on
// embedded spaces). This is the row-identity encoding used by BOTH executors
// for hash-join keys and projection-dedup keys.
func appendLenPrefixed(dst []byte, vals ...string) []byte {
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// rowKey returns the length-prefixed identity key of a full tuple.
func rowKey(vals []string) string { return string(appendLenPrefixed(nil, vals...)) }

// The streaming operators avoid even the length-prefixed key allocations:
// they bucket by a 64-bit FNV-1a hash of the length-delimited values and
// verify every bucket hit by comparing the actual values, so tuple identity
// never depends on an encoding at all — a hash collision costs one string
// comparison, never a wrong answer.

const (
	fnvOffset64 = 14695981039433928325
	fnvPrime64  = 1099511628211
)

// valHash extends a running FNV-1a hash with one length-delimited value.
func valHash(h uint64, v string) uint64 {
	n := len(v)
	for n > 0 {
		h ^= uint64(n & 0xff)
		h *= fnvPrime64
		n >>= 8
	}
	h ^= 0xff // length terminator
	h *= fnvPrime64
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= fnvPrime64
	}
	return h
}

// boundSel is a selection condition with its attribute index resolved once
// at plan time — the per-row AttrIndex lookups of the old executor hoisted
// out of the row loop.
type boundSel struct {
	attrIdx int
	op      SelOp
	value   string
	norm    string // normalised literal, precomputed for OpContains
}

func (s boundSel) matches(row []string) bool {
	switch s.op {
	case OpContains:
		return strings.Contains(text.Normalize(row[s.attrIdx]), s.norm)
	default:
		return row[s.attrIdx] == s.value
	}
}

// bindSels resolves a relation's selection conditions to attribute indexes,
// returning a proper error (not an index-out-of-range panic) when an
// attribute is missing.
func bindSels(rel *Relation, sels []SelCond) ([]boundSel, error) {
	if len(sels) == 0 {
		return nil, nil
	}
	out := make([]boundSel, len(sels))
	for i, s := range sels {
		ai := rel.AttrIndex(s.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("relstore: relation %s has no attribute %q", rel.QualifiedName(), s.Attr)
		}
		out[i] = boundSel{attrIdx: ai, op: s.Op, value: s.Value}
		if s.Op == OpContains {
			out[i].norm = text.Normalize(s.Value)
		}
	}
	return out, nil
}

// rowIter is the streaming operator interface. Next advances the pipeline by
// one row, writing this operator's columns into its segment of the plan's
// shared row buffer, and reports whether a row was produced. Iteration is
// infallible: every fallible step (attribute resolution, validation) runs at
// plan time in BuildStream.
type rowIter interface {
	Next() bool
}

// scanIter streams one atom's table with its pushed-down selections and
// self-filters applied, writing surviving rows into its buffer segment. It
// is the pipeline source: no filtered copy of the table is ever
// materialised.
type scanIter struct {
	rows    [][]string
	sels    []boundSel
	selfs   []selfFilter
	buf     []string // this atom's segment of the shared row buffer
	pos     int
	scanned *int64 // plan-wide count of base rows pulled
}

func (it *scanIter) Next() bool {
	for it.pos < len(it.rows) {
		row := it.rows[it.pos]
		it.pos++
		*it.scanned++
		if rowAdmits(row, it.sels, it.selfs) {
			copy(it.buf, row)
			return true
		}
	}
	return false
}

// prefixIter is the pipeline source of a branch whose leading join prefix
// was materialised by the subplan cache (plan.go): it replays the cached
// full-width prefix rows into the shared buffer, in the same deterministic
// order the branch's own prefix pipeline would have produced them, and the
// remaining atoms join on top.
type prefixIter struct {
	rows [][]string
	buf  []string // the prefix atoms' segments of the shared row buffer
	pos  int
}

func (it *prefixIter) Next() bool {
	if it.pos >= len(it.rows) {
		return false
	}
	copy(it.buf, it.rows[it.pos])
	it.pos++
	return true
}

func matchesBound(row []string, sels []boundSel) bool {
	for _, s := range sels {
		if !s.matches(row) {
			return false
		}
	}
	return true
}

// hashJoinIter joins one atom into the rows streaming from its left input:
// the atom's filtered rows form a pre-sized build table bucketed by the hash
// of the equi-join values, and each left row probes it. Build rows are
// stored by reference (slices into the immutable table) and no key bytes
// are ever materialised — bucket hits are verified by comparing the join
// values themselves. Similarity conditions filter the verified matches;
// matching rows are written into the atom's buffer segment.
type hashJoinIter struct {
	left     rowIter
	build    hashJoinBuild
	pairs    []joinPair    // leftCol indexes the shared buffer; rightAttrIdx the build row
	simPairs []simJoinPair // ditto
	buf      []string      // full shared buffer (probes read left columns)
	seg      []string      // this atom's segment of buf
	match    int32         // current chain position in build (0 = exhausted)
}

// hashJoinBuild is the build side of a streaming hash join: the atom's
// filtered rows (by reference), hash-chained through two flat arrays —
// head maps a join-value hash to its bucket's first row (1-based), next
// links the rest. Three allocations total, regardless of bucket shape.
type hashJoinBuild struct {
	rows [][]string
	head map[uint64]int32
	next []int32
}

// newHashJoinBuild builds the chained hash table over the atom's filtered
// rows. Selections and self-filters are applied while building, so the probe
// side never sees a row the push-down would have dropped.
func newHashJoinBuild(rows [][]string, sels []boundSel, selfs []selfFilter, pairs []joinPair, scanned *int64) hashJoinBuild {
	b := hashJoinBuild{
		head: make(map[uint64]int32, len(rows)),
		rows: make([][]string, 0, len(rows)),
		next: make([]int32, 0, len(rows)),
	}
	for _, row := range rows {
		*scanned++
		if !rowAdmits(row, sels, selfs) {
			continue
		}
		h := uint64(fnvOffset64)
		for _, p := range pairs {
			h = valHash(h, row[p.rightAttrIdx])
		}
		b.rows = append(b.rows, row)
		b.next = append(b.next, b.head[h])
		b.head[h] = int32(len(b.rows)) // 1-based
	}
	return b
}

// pairsEqual verifies a hash-bucket candidate: every equi-join pair must
// match on the actual values.
func pairsEqual(buf, row []string, pairs []joinPair) bool {
	for _, p := range pairs {
		if buf[p.leftCol] != row[p.rightAttrIdx] {
			return false
		}
	}
	return true
}

func (it *hashJoinIter) Next() bool {
	for {
		for it.match != 0 {
			m := it.build.rows[it.match-1]
			it.match = it.build.next[it.match-1]
			if pairsEqual(it.buf, m, it.pairs) && simPairsOK(it.buf, m, it.simPairs) {
				copy(it.seg, m)
				return true
			}
		}
		if !it.left.Next() {
			return false
		}
		h := uint64(fnvOffset64)
		for _, p := range it.pairs {
			h = valHash(h, it.buf[p.leftCol])
		}
		it.match = it.build.head[h]
	}
}

// nestedLoopIter joins an atom with no equi-join condition: a pure
// similarity join, or the cross product SQL semantics require for a
// disconnected atom. The atom's filtered rows are collected once (by
// reference); each left row streams across them.
type nestedLoopIter struct {
	left     rowIter
	rows     [][]string // filtered right rows, by reference
	simPairs []simJoinPair
	buf      []string
	seg      []string
	ri       int
	started  bool
}

func (it *nestedLoopIter) Next() bool {
	for {
		if !it.started {
			if !it.left.Next() {
				return false
			}
			it.started = true
			it.ri = 0
		}
		for it.ri < len(it.rows) {
			m := it.rows[it.ri]
			it.ri++
			if simPairsOK(it.buf, m, it.simPairs) {
				copy(it.seg, m)
				return true
			}
		}
		it.started = false
	}
}

func simPairsOK(buf, row []string, simPairs []simJoinPair) bool {
	for _, p := range simPairs {
		if text.TrigramSimilarity(
			text.Normalize(buf[p.leftCol]),
			text.Normalize(row[p.rightAttrIdx])) < p.threshold {
			return false
		}
	}
	return true
}

// StreamStats counts the work one stream performed, for the early-termination
// accounting of the top-k union (rows pulled vs rows a full materialisation
// would touch) and for qbench -exp stream.
type StreamStats struct {
	// RowsScanned is the number of base-table rows pulled by scans and
	// hash-join builds.
	RowsScanned int64
	// RowsPulled is the number of joined rows the projection pulled from the
	// pipeline (pre-deduplication).
	RowsPulled int64
	// RowsEmitted is the number of deduplicated projected rows emitted.
	RowsEmitted int64
}

// Stream is a compiled conjunctive query: a pull-based pipeline yielding the
// query's deduplicated projected rows one at a time. Rows stream in pipeline
// order (NOT the canonical sorted order of a ResultSet — Drain sorts); each
// returned slice is freshly allocated and owned by the caller. A Stream is
// single-use and not safe for concurrent use.
type Stream struct {
	cols []string
	root rowIter
	buf  []string
	proj []int // shared-buffer column index per output column
	// Set-semantics dedup without key allocation: emitted rows bucketed by
	// value hash (seen maps a hash to its bucket's most recent row, 1-based;
	// dupNext chains the older ones), bucket hits verified by comparing the
	// projected values.
	seen    map[uint64]int32
	dupNext []int32
	emitted [][]string
	stats   StreamStats
}

// Columns returns the output column labels (the query's projection list).
func (s *Stream) Columns() []string { return s.cols }

// Stats returns the work counters accumulated so far.
func (s *Stream) Stats() StreamStats { return s.stats }

// Next returns the next deduplicated projected row, or ok=false at end of
// stream.
func (s *Stream) Next() ([]string, bool) {
	for s.root.Next() {
		s.stats.RowsPulled++
		h := uint64(fnvOffset64)
		for _, ci := range s.proj {
			h = valHash(h, s.buf[ci])
		}
		if s.dupAt(h) {
			continue
		}
		proj := make([]string, len(s.proj))
		for i, ci := range s.proj {
			proj[i] = s.buf[ci]
		}
		s.dupNext = append(s.dupNext, s.seen[h])
		s.emitted = append(s.emitted, proj)
		s.seen[h] = int32(len(s.emitted)) // 1-based
		s.stats.RowsEmitted++
		return proj, true
	}
	return nil, false
}

// dupAt reports whether the projected values currently in the shared buffer
// equal an already-emitted row in hash bucket h.
func (s *Stream) dupAt(h uint64) bool {
	for at := s.seen[h]; at != 0; at = s.dupNext[at-1] {
		prev := s.emitted[at-1]
		same := true
		for i, ci := range s.proj {
			if prev[i] != s.buf[ci] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// Drain pulls the stream to exhaustion and returns the canonical ResultSet
// (rows in sorted order, set semantics) — byte-identical to
// ExecuteMaterialised on the same query.
func (s *Stream) Drain() *ResultSet {
	out := &ResultSet{Columns: s.cols}
	for {
		row, ok := s.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, row)
	}
	sortRows(out.Rows)
	return out
}

// BuildStream validates and compiles a conjunctive query into a streaming
// pipeline over the catalog. All attribute resolution happens here, so a
// malformed query is an error at plan time, never a panic mid-iteration.
// Join order follows the catalog's planner knob: the cost-based greedy order
// by default, the naive first-connected spec order under UsePlanner(false) —
// byte-identical ResultSets either way.
func BuildStream(c *Catalog, q *ConjunctiveQuery) (*Stream, error) {
	p, err := planQuery(c, q)
	if err != nil {
		return nil, err
	}
	return compileStream(p, nil)
}

// compilePipeline assembles the operator chain over the plan's first `upto`
// atoms in join order: a selection-filtered scan of the first atom — or a
// replay of cached prefix rows when pre is non-nil — then one hash-join or
// nested-loop operator per remaining atom, all sharing one row buffer. A
// join condition is applied when its later-ordered endpoint joins in;
// conditions reaching atoms beyond `upto` are left for the continuation
// (they bind nothing here), and self-filter conditions are pushed down into
// the scans and build sides rather than bound as join pairs — binding them
// as joins is impossible (the alias binds only after its own join step),
// which is exactly how the old executors silently dropped them.
func compilePipeline(p *queryPlan, upto int, pre *subplanEntry, stats *StreamStats) (rowIter, []string, map[string]int) {
	colOf := make(map[string]int)
	width := 0
	segOf := make([]int, len(p.atoms)) // atom index -> buffer offset
	for _, oi := range p.order[:upto] {
		a := &p.atoms[oi]
		segOf[oi] = width
		for _, attr := range a.rel.Attributes {
			colOf[a.alias+"."+attr.Name] = width
			width++
		}
	}
	buf := make([]string, width)

	var root rowIter
	start := 1
	if pre != nil {
		pw := 0
		for _, oi := range p.order[:pre.n] {
			pw += len(p.atoms[oi].rel.Attributes)
		}
		root = &prefixIter{rows: pre.rows, buf: buf[:pw]}
		start = pre.n
	} else {
		first := &p.atoms[p.order[0]]
		root = &scanIter{
			rows:    first.rows,
			sels:    first.sels,
			selfs:   first.selfs,
			buf:     buf[:len(first.rel.Attributes)],
			scanned: &stats.RowsScanned,
		}
	}

	for _, oi := range p.order[start:upto] {
		a := &p.atoms[oi]
		var pairs []joinPair
		var simPairs []simJoinPair
		for _, j := range p.q.Joins {
			if j.LeftAlias == j.RightAlias {
				continue // self-filter: pushed down, never a join pair
			}
			var lc, ri int
			var ok bool
			if j.LeftAlias == a.alias {
				lc, ok = colOf[j.RightAlias+"."+j.RightAttr]
				ri = a.rel.AttrIndex(j.LeftAttr)
			} else if j.RightAlias == a.alias {
				lc, ok = colOf[j.LeftAlias+"."+j.LeftAttr]
				ri = a.rel.AttrIndex(j.RightAttr)
			} else {
				continue
			}
			// The other endpoint is bound later in join order (or beyond this
			// prefix): the condition applies when THAT atom joins in.
			if !ok || lc >= segOf[oi] {
				continue
			}
			if j.Op == JoinSimilar {
				simPairs = append(simPairs, simJoinPair{
					joinPair:  joinPair{leftCol: lc, rightAttrIdx: ri},
					threshold: j.Threshold,
				})
			} else {
				pairs = append(pairs, joinPair{leftCol: lc, rightAttrIdx: ri})
			}
		}
		seg := buf[segOf[oi] : segOf[oi]+len(a.rel.Attributes)]
		if len(pairs) > 0 {
			root = &hashJoinIter{
				left:     root,
				build:    newHashJoinBuild(a.rows, a.sels, a.selfs, pairs, &stats.RowsScanned),
				pairs:    pairs,
				simPairs: simPairs,
				buf:      buf,
				seg:      seg,
			}
		} else {
			var kept [][]string
			for _, row := range a.rows {
				stats.RowsScanned++
				if rowAdmits(row, a.sels, a.selfs) {
					kept = append(kept, row)
				}
			}
			root = &nestedLoopIter{
				left:     root,
				rows:     kept,
				simPairs: simPairs,
				buf:      buf,
				seg:      seg,
			}
		}
	}
	return root, buf, colOf
}

// compileStream wraps the plan's full pipeline in a Stream with projection
// and set-semantics dedup. pre, when non-nil, sources the plan's leading
// join prefix from the subplan cache instead of re-executing it.
func compileStream(p *queryPlan, pre *subplanEntry) (*Stream, error) {
	st := &Stream{}
	root, buf, colOf := compilePipeline(p, len(p.atoms), pre, &st.stats)
	cols := make([]string, len(p.q.Project))
	proj := make([]int, len(p.q.Project))
	for i, pc := range p.q.Project {
		cols[i] = pc.As
		ci, ok := colOf[pc.Alias+"."+pc.Attr]
		if !ok {
			return nil, fmt.Errorf("relstore: projection %s.%s not bound", pc.Alias, pc.Attr)
		}
		proj[i] = ci
	}
	st.buf = buf
	st.cols = cols
	st.root = root
	st.proj = proj
	st.seen = make(map[uint64]int32)
	return st, nil
}

// drainPrefix executes the plan's first n atoms as a standalone pipeline and
// materialises the joined full-width rows, in pipeline order — the subplan
// cache's compute step. The returned stats carry the prefix's scan work; it
// is charged to the branch that triggered the computation.
func drainPrefix(p *queryPlan, n int) ([][]string, StreamStats) {
	var stats StreamStats
	root, buf, _ := compilePipeline(p, n, nil, &stats)
	var rows [][]string
	for root.Next() {
		row := make([]string, len(buf))
		copy(row, buf)
		rows = append(rows, row)
	}
	return rows, stats
}

// ExecuteStream evaluates a conjunctive query through the streaming iterator
// pipeline and returns the canonical ResultSet — byte-identical to
// ExecuteMaterialised (the metamorphic suite in stream_test.go and the
// FuzzExecuteEquivalence target pin this).
func ExecuteStream(c *Catalog, q *ConjunctiveQuery) (*ResultSet, error) {
	st, err := BuildStream(c, q)
	if err != nil {
		return nil, err
	}
	return st.Drain(), nil
}

// TopKUnionStats counts the work of one ExecuteTopKUnion call, making the
// early termination observable: RowsPulled < the rows a full
// materialisation of every branch would pull whenever branches were skipped.
type TopKUnionStats struct {
	// BranchesExecuted and BranchesSkipped partition the batch: a branch is
	// skipped when k already-collected rows provably outrank every row it
	// could produce (rank is (cost asc, branch asc), and all of one branch's
	// rows share its cost).
	BranchesExecuted int
	BranchesSkipped  int
	// RowsScanned / RowsPulled / RowsEmitted aggregate the executed
	// branches' StreamStats.
	RowsScanned int64
	RowsPulled  int64
	RowsEmitted int64
	// Plan carries the batch's planner counters (join reordering, shared
	// subtrees, CSE hits) when the catalog's planner is on; zero otherwise.
	Plan PlanStats
}

// ExecuteTopKUnion executes a view's branch queries — in the caller's order,
// which core produces ascending by tree cost — streaming each branch's rows
// into the ranked disjoint union, and STOPS pulling a branch entirely once
// the running top-k bound is provably unbeatable for it: every row of branch
// i carries cost queries[i].Cost and loses ties to earlier branches, so once
// k rows with cost ≤ that bound exist, branch i cannot contribute and is
// never executed. The returned union holds exactly the top k rows (fewer if
// the branches yield fewer) and is byte-identical to
// DisjointUnion(all branches).TopK(k); the unified column list still spans
// every branch's projection (skipped branches' columns are known from their
// queries without executing them).
//
// Branch provenance labels follow queries' signatures, matching what core
// records on a full materialisation.
func ExecuteTopKUnion(c *Catalog, queries []*ConjunctiveQuery, k int, provenance []string) (*UnionResult, TopKUnionStats, error) {
	var stats TopKUnionStats
	// Every branch is validated up front — including branches the top-k
	// bound will skip. The spec this path must match byte-for-byte is
	// DisjointUnion(execute ALL branches).TopK(k), where a malformed branch
	// fails the whole call; skipping used to let it silently succeed. With
	// the planner on, PlanBatch does the validating (index order, first
	// error wins — identical semantics) and provides the shared-subtree
	// subplan cache the executed branches stream from.
	var bp *BatchPlan
	if !c.noPlan {
		var err error
		bp, err = PlanBatch(c, queries)
		if err != nil {
			return nil, stats, err
		}
	} else {
		for _, q := range queries {
			if err := q.Validate(c); err != nil {
				return nil, stats, err
			}
		}
	}
	out := &UnionResult{}
	colIdx := make(map[string]int)
	for _, q := range queries {
		for _, p := range q.Project {
			if _, ok := colIdx[p.As]; !ok {
				colIdx[p.As] = len(out.Columns)
				out.Columns = append(out.Columns, p.As)
			}
		}
	}

	// rows collected so far, each branch's slice pre-sorted and truncated to
	// k (rows beyond the k-th of one branch can never be in the union's top
	// k: they tie on (cost, branch) and lose on row order).
	var rows []UnionRow
	atOrBelow := func(cost float64) int {
		n := 0
		for _, r := range rows {
			if r.Cost <= cost {
				n++
			}
		}
		return n
	}
	for bi, q := range queries {
		if k > 0 && atOrBelow(q.Cost) >= k {
			stats.BranchesSkipped++
			continue
		}
		var st *Stream
		var err error
		if bp != nil {
			st, err = bp.Stream(bi)
		} else {
			st, err = BuildStream(c, q)
		}
		if err != nil {
			return nil, stats, err
		}
		rs := st.Drain()
		ss := st.Stats()
		stats.BranchesExecuted++
		stats.RowsScanned += ss.RowsScanned
		stats.RowsPulled += ss.RowsPulled
		stats.RowsEmitted += ss.RowsEmitted

		mapping := make([]int, len(rs.Columns))
		for i, col := range rs.Columns {
			mapping[i] = colIdx[col]
		}
		prov := ""
		if bi < len(provenance) {
			prov = provenance[bi]
		}
		branchRows := rs.Rows
		if k > 0 && len(branchRows) > k {
			branchRows = branchRows[:k]
		}
		for _, row := range branchRows {
			u := UnionRow{
				Values:     make([]string, len(out.Columns)),
				Cost:       q.Cost,
				Branch:     bi,
				Provenance: prov,
			}
			for i, v := range row {
				u.Values[mapping[i]] = v
			}
			rows = append(rows, u)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Cost != rows[j].Cost {
			return rows[i].Cost < rows[j].Cost
		}
		return rows[i].Branch < rows[j].Branch
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	out.Rows = rows
	if bp != nil {
		stats.Plan = bp.Stats()
	}
	if ec := c.execObs; ec != nil {
		ec.Branches.Add(int64(stats.BranchesExecuted))
		ec.Rows.Add(stats.RowsPulled)
	}
	return out, stats, nil
}
