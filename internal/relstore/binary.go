package relstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// This file is the binary persistence codec behind the durable storage
// engine (internal/storage): the catalog's tables and its built value-index
// segments encode to compact length-prefixed binary sections, and decode by
// re-pointing rather than re-deriving — a loaded segment is installed
// verbatim into the owning shard's segment cache, so a restart skips
// normalisation and trigram extraction entirely (the dominant cold-start
// cost). Strings decode as substrings of one backing string per section, so
// loading allocates O(tables + segments) backing arrays, not O(values).
//
// Both encoders are deterministic: tables serialise in registration order,
// segment entries are already sorted by (attribute, value), and posting maps
// serialise under sorted keys with delta-encoded ascending id lists. The
// same catalog therefore always produces the same bytes — which the storage
// layer's restart-equivalence tests rely on.

const (
	catalogBinMagic  = "QCATb1\n\n"
	segmentsBinMagic = "QSEGb1\n\n"
)

// ---------------------------------------------------------------------------
// encoding primitives

type binWriter struct {
	w       *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func newBinWriter(w io.Writer) *binWriter { return &binWriter{w: bufio.NewWriter(w)} }

func (b *binWriter) uvarint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.scratch[:], v)
	_, b.err = b.w.Write(b.scratch[:n])
}

func (b *binWriter) str(s string) {
	b.uvarint(uint64(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

func (b *binWriter) flush() error {
	if b.err != nil {
		return b.err
	}
	return b.w.Flush()
}

// binReader decodes from an in-memory section. The whole input converts to
// ONE string up front; str returns substrings of it, aliasing that single
// backing array instead of allocating per value.
type binReader struct {
	s   string
	off int
	err error
}

func newBinReader(data []byte, magic string) *binReader {
	r := &binReader{s: string(data)}
	if len(r.s) < len(magic) || r.s[:len(magic)] != magic {
		r.err = fmt.Errorf("relstore: bad binary section magic")
		return r
	}
	r.off = len(magic)
	return r
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("relstore: binary decode: truncated %s at offset %d", what, r.off)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint([]byte(r.s[r.off:min(r.off+binary.MaxVarintLen64, len(r.s))]))
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint that will be used as an allocation size, bounding it
// by the bytes remaining so corrupt input cannot force a huge allocation.
func (r *binReader) count(what string) int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.s)-r.off) {
		r.err = fmt.Errorf("relstore: binary decode: %s count %d exceeds input", what, v)
		return 0
	}
	return int(v)
}

func (r *binReader) str() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.s) {
		r.fail("string")
		return ""
	}
	s := r.s[r.off : r.off+n]
	r.off += n
	return s
}

// ---------------------------------------------------------------------------
// catalog tables

// SaveBinary encodes the catalog's schemas and rows — the ground truth the
// engine re-registers on restart — in registration order.
func (c *Catalog) SaveBinary(w io.Writer) error {
	b := newBinWriter(w)
	if _, err := b.w.WriteString(catalogBinMagic); err != nil {
		return err
	}
	b.uvarint(uint64(len(c.order)))
	for _, qn := range c.order {
		t := c.lookup(qn)
		rel := t.Relation
		b.str(rel.Source)
		b.str(rel.Name)
		b.uvarint(uint64(len(rel.Attributes)))
		for _, a := range rel.Attributes {
			b.str(a.Name)
			b.uvarint(uint64(a.Type))
		}
		b.uvarint(uint64(len(rel.ForeignKeys)))
		for _, fk := range rel.ForeignKeys {
			b.str(fk.FromAttr)
			b.str(fk.ToRelation)
			b.str(fk.ToAttr)
		}
		b.uvarint(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				b.str(v)
			}
		}
	}
	if err := b.flush(); err != nil {
		return fmt.Errorf("relstore: save catalog: %w", err)
	}
	return nil
}

// LoadCatalogBinary decodes a SaveBinary section into a fresh catalog at the
// given shard count (<= 0 selects the default). Row and schema strings alias
// one backing string for the whole section.
func LoadCatalogBinary(data []byte, shards int) (*Catalog, error) {
	r := newBinReader(data, catalogBinMagic)
	c := NewCatalogSharded(shards)
	nTables := r.count("table")
	for ti := 0; ti < nTables && r.err == nil; ti++ {
		rel := &Relation{Source: r.str(), Name: r.str()}
		nAttr := r.count("attribute")
		rel.Attributes = make([]Attribute, nAttr)
		for i := range rel.Attributes {
			rel.Attributes[i] = Attribute{Name: r.str(), Type: Type(r.uvarint())}
		}
		nFK := r.count("foreign key")
		if nFK > 0 {
			rel.ForeignKeys = make([]ForeignKey, nFK)
			for i := range rel.ForeignKeys {
				rel.ForeignKeys[i] = ForeignKey{FromAttr: r.str(), ToRelation: r.str(), ToAttr: r.str()}
			}
		}
		nRows := r.count("row")
		rows := make([][]string, nRows)
		if nAttr > 0 {
			flat := make([]string, nRows*nAttr)
			for i := range rows {
				row := flat[i*nAttr : (i+1)*nAttr]
				for j := range row {
					row[j] = r.str()
				}
				rows[i] = row
			}
		} else {
			for i := range rows {
				rows[i] = []string{}
			}
		}
		if r.err != nil {
			break
		}
		t, err := NewTable(rel, rows)
		if err != nil {
			return nil, fmt.Errorf("relstore: load catalog: %w", err)
		}
		if err := c.AddTable(t); err != nil {
			return nil, fmt.Errorf("relstore: load catalog: %w", err)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// value-index segments

// SaveSegments encodes every ALREADY BUILT value-index segment (segments are
// built lazily; unbuilt tables simply rebuild lazily after a restart too).
// Deterministic: segments serialise in registration order, posting maps
// under sorted keys, id lists delta-encoded.
func (c *Catalog) SaveSegments(w io.Writer) error {
	b := newBinWriter(w)
	if _, err := b.w.WriteString(segmentsBinMagic); err != nil {
		return err
	}
	var segs []*segment
	for _, qn := range c.order {
		sh := c.shardFor(qn)
		if s := sh.index.built(sh.tables[qn]); s != nil {
			segs = append(segs, s)
		}
	}
	b.uvarint(uint64(len(segs)))
	for _, s := range segs {
		b.str(s.rel)
		b.uvarint(uint64(len(s.attrs)))
		for _, a := range s.attrs {
			b.str(a)
		}
		for _, off := range s.attrStart {
			b.uvarint(uint64(off))
		}
		b.uvarint(uint64(len(s.entries)))
		for _, e := range s.entries {
			b.str(e.val)
			b.str(e.norm)
			b.uvarint(uint64(e.rows))
		}
		writePostings(b, s.grams)
		writePostings(b, s.tokens)
	}
	if err := b.flush(); err != nil {
		return fmt.Errorf("relstore: save segments: %w", err)
	}
	return nil
}

func writePostings(b *binWriter, m map[string][]int32) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.uvarint(uint64(len(keys)))
	for _, k := range keys {
		b.str(k)
		ids := m[k]
		b.uvarint(uint64(len(ids)))
		prev := int32(0)
		for _, id := range ids {
			b.uvarint(uint64(id - prev)) // ascending ids: deltas are non-negative
			prev = id
		}
	}
}

func readPostings(r *binReader, nEntries int) map[string][]int32 {
	n := r.count("posting key")
	m := make(map[string][]int32, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		ln := r.count("posting id")
		ids := make([]int32, ln)
		prev := int32(0)
		for j := range ids {
			prev += int32(r.uvarint())
			ids[j] = prev
		}
		if r.err == nil && ln > 0 && int(prev) >= nEntries {
			r.err = fmt.Errorf("relstore: binary decode: posting id %d out of range", prev)
			return nil
		}
		m[k] = ids
	}
	return m
}

// LoadSegments decodes a SaveSegments section and installs each segment
// verbatim into the owning shard's segment cache — the re-point load path:
// no normalisation, no trigram extraction, no row scans. Segments naming
// relations absent from the catalog are an error (the snapshot's catalog and
// segment sections are written together and must agree).
func (c *Catalog) LoadSegments(data []byte) error {
	r := newBinReader(data, segmentsBinMagic)
	nSegs := r.count("segment")
	for si := 0; si < nSegs && r.err == nil; si++ {
		s := &segment{rel: r.str()}
		nAttr := r.count("attribute")
		s.attrs = make([]string, nAttr)
		for i := range s.attrs {
			s.attrs[i] = r.str()
		}
		s.attrStart = make([]int, nAttr+1)
		for i := range s.attrStart {
			s.attrStart[i] = int(r.uvarint())
		}
		nEntries := r.count("entry")
		if r.err == nil {
			ok := s.attrStart[0] == 0 && s.attrStart[nAttr] == nEntries
			for i := 0; ok && i < nAttr; i++ {
				ok = s.attrStart[i] <= s.attrStart[i+1]
			}
			if !ok {
				r.err = fmt.Errorf("relstore: binary decode: segment %s attribute spans disagree with %d entries", s.rel, nEntries)
				break
			}
		}
		s.entries = make([]indexEntry, nEntries)
		ai := 0
		for i := range s.entries {
			for ai < nAttr && i >= s.attrStart[ai+1] {
				ai++
			}
			s.entries[i] = indexEntry{
				attr: ai,
				val:  r.str(),
				norm: r.str(),
				rows: int(r.uvarint()),
			}
		}
		s.grams = readPostings(r, nEntries)
		s.tokens = readPostings(r, nEntries)
		if r.err != nil {
			break
		}
		sh := c.shardFor(s.rel)
		t := sh.tables[s.rel]
		if t == nil {
			return fmt.Errorf("relstore: load segments: segment for unknown relation %s", s.rel)
		}
		sh.index.mu.Lock()
		sh.index.segs[t] = s
		sh.index.mu.Unlock()
	}
	return r.err
}
