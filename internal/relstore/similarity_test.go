package relstore

import (
	"strings"
	"testing"
)

// simCatalog has two tables whose name columns overlap fuzzily, not exactly.
func simCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	add := func(rel *Relation, rows [][]string) {
		tb, err := NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	add(&Relation{Source: "a", Name: "genes",
		Attributes: []Attribute{{Name: "id"}, {Name: "name"}}},
		[][]string{
			{"G1", "insulin receptor"},
			{"G2", "glucagon"},
			{"G3", "somatostatin"},
		})
	add(&Relation{Source: "b", Name: "mentions",
		Attributes: []Attribute{{Name: "doc"}, {Name: "gene_name"}}},
		[][]string{
			{"D1", "Insulin Receptor"}, // case/format variant
			{"D2", "insulin recptor"},  // typo
			{"D3", "glucagon precursor"},
			{"D4", "unrelated protein"},
		})
	return c
}

func TestSimilarityJoin(t *testing.T) {
	c := simCatalog(t)
	q := &ConjunctiveQuery{
		Atoms: []Atom{
			{Relation: "a.genes", Alias: "g"},
			{Relation: "b.mentions", Alias: "m"},
		},
		Joins: []JoinCond{{
			LeftAlias: "g", LeftAttr: "name",
			RightAlias: "m", RightAttr: "gene_name",
			Op: JoinSimilar, Threshold: 0.7,
		}},
		Project: []ProjCol{
			{Alias: "g", Attr: "id", As: "id"},
			{Alias: "m", Attr: "doc", As: "doc"},
		},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, r := range rs.Rows {
		got[r[0]+"-"+r[1]] = true
	}
	// Case variant and typo both join to G1; "unrelated protein" joins to
	// nothing.
	for _, want := range []string{"G1-D1", "G1-D2"} {
		if !got[want] {
			t.Errorf("missing fuzzy match %s; got %v", want, got)
		}
	}
	for pair := range got {
		if strings.HasSuffix(pair, "-D4") {
			t.Errorf("D4 should not fuzzy-join: %v", got)
		}
	}
}

func TestSimilarityJoinThresholdOne(t *testing.T) {
	c := simCatalog(t)
	q := &ConjunctiveQuery{
		Atoms: []Atom{
			{Relation: "a.genes", Alias: "g"},
			{Relation: "b.mentions", Alias: "m"},
		},
		Joins: []JoinCond{{
			LeftAlias: "g", LeftAttr: "name",
			RightAlias: "m", RightAttr: "gene_name",
			Op: JoinSimilar, Threshold: 1.0,
		}},
		Project: []ProjCol{{Alias: "g", Attr: "id", As: "id"}, {Alias: "m", Attr: "doc", As: "doc"}},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 1 over normalised text: only the exact (case-insensitive)
	// variant joins.
	if len(rs.Rows) != 1 || rs.Rows[0][1] != "D1" {
		t.Errorf("threshold 1.0 rows = %v, want only G1-D1", rs.Rows)
	}
}

func TestSimilarityJoinMixedWithEquiJoin(t *testing.T) {
	c := simCatalog(t)
	// Add a link table joining genes by id AND mentions fuzzily.
	tb, err := NewTable(&Relation{Source: "a", Name: "aliases",
		Attributes: []Attribute{{Name: "gene_id"}, {Name: "alias"}}},
		[][]string{{"G1", "insulin receptor isoform"}, {"G2", "glucagon"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	q := &ConjunctiveQuery{
		Atoms: []Atom{
			{Relation: "a.genes", Alias: "g"},
			{Relation: "a.aliases", Alias: "al"},
		},
		Joins: []JoinCond{
			{LeftAlias: "g", LeftAttr: "id", RightAlias: "al", RightAttr: "gene_id"}, // equi
			{LeftAlias: "g", LeftAttr: "name", RightAlias: "al", RightAttr: "alias",
				Op: JoinSimilar, Threshold: 0.6}, // fuzzy filter on top
		},
		Project: []ProjCol{{Alias: "g", Attr: "id", As: "id"}},
	}
	rs, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, r := range rs.Rows {
		got[r[0]] = true
	}
	if !got["G2"] { // exact alias
		t.Errorf("G2 should survive both joins: %v", rs.Rows)
	}
}

func TestSimilarityJoinSQLRendering(t *testing.T) {
	q := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "a.genes", Alias: "g"}, {Relation: "b.mentions", Alias: "m"}},
		Joins: []JoinCond{{LeftAlias: "g", LeftAttr: "name",
			RightAlias: "m", RightAttr: "gene_name", Op: JoinSimilar, Threshold: 0.8}},
		Project: []ProjCol{{Alias: "g", Attr: "id", As: "id"}},
	}
	sql := q.SQL()
	if !strings.Contains(sql, "similarity(g.name, m.gene_name) >= 0.80") {
		t.Errorf("similarity join not rendered: %s", sql)
	}
}
