package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// This file pins the cost-based join planner and the cross-branch CSE layer
// against the unplanned executable spec, exactly like the streaming executor
// is pinned against ExecuteMaterialised: over randomised catalogs, every join
// shape (self-filters included), shard counts {1,2,7} and both executors, the
// planner must not change a single result byte — only the order work happens
// in. It also carries the join-binding regression tests the planner work
// surfaced: self-filter conditions (`t.a = t.b`) were silently dropped by both
// executors, and ExecuteTopKUnion never validated branches its bound skipped.

// plannerVariant is one (planner, executor) configuration of a catalog.
type plannerVariant struct {
	name string
	cat  *Catalog
}

// plannerVariants clones a catalog into the four (planner × executor)
// configurations. The planner-off materialised variant is the executable
// spec the other three are compared against.
func plannerVariants(c *Catalog) []plannerVariant {
	onMat := c.Clone()
	onMat.UseMaterialisedExec(true)
	offStream := c.Clone()
	offStream.UsePlanner(false)
	offMat := offStream.Clone()
	offMat.UseMaterialisedExec(true)
	return []plannerVariant{
		{"planned/streaming", c},
		{"planned/materialised", onMat},
		{"unplanned/streaming", offStream},
		{"unplanned/materialised", offMat},
	}
}

// maybeSelfJoin sometimes appends a same-alias join condition (`t.a = t.b`,
// occasionally similarity) — the shape the old join-binding loops dropped.
func maybeSelfJoin(r *rand.Rand, c *Catalog, q *ConjunctiveQuery) {
	if r.Intn(3) != 0 {
		return
	}
	a := q.Atoms[r.Intn(len(q.Atoms))]
	rel := c.Relation(a.Relation)
	cond := JoinCond{
		LeftAlias:  a.Alias,
		LeftAttr:   rel.Attributes[r.Intn(len(rel.Attributes))].Name,
		RightAlias: a.Alias,
		RightAttr:  rel.Attributes[r.Intn(len(rel.Attributes))].Name,
	}
	if r.Intn(3) == 0 {
		cond.Op = JoinSimilar
		cond.Threshold = 0.3 + 0.4*r.Float64()
	}
	q.Joins = append(q.Joins, cond)
}

// TestPlannedVsUnplannedEquivalence is the metamorphic gate of the planner:
// over randomised catalogs (tricky values, self-filters injected), shard
// counts {1,2,7} and both executors, the cost-based order must return a
// ResultSet deep-equal to the naive spec order's — content, order, nil-ness.
func TestPlannedVsUnplannedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(4000 + shards)))
			for trial := 0; trial < 40; trial++ {
				c := randomExecCatalog(r, shards, 2+r.Intn(3))
				c.BuildValueIndex(2) // planner statistics source
				vars := plannerVariants(c)
				spec := vars[3].cat // unplanned materialised
				for qi := 0; qi < 6; qi++ {
					q := randomExecQuery(r, c)
					maybeSelfJoin(r, c, q)
					want, errW := Execute(spec, q)
					for _, v := range vars[:3] {
						got, err := Execute(v.cat, q)
						if (errW == nil) != (err == nil) {
							t.Fatalf("trial %d query %d %s: error divergence: spec=%v got=%v\nquery: %s",
								trial, qi, v.name, errW, err, q.SQL())
						}
						if errW != nil {
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d query %d %s: result divergence\nquery: %s\ngot:  %v\nspec: %v",
								trial, qi, v.name, q.SQL(), got, want)
						}
					}
				}
			}
		})
	}
}

// TestPlannedBatchAndTopKEquivalence extends the metamorphic gate to the two
// batch entry points the CSE cache feeds: ExecuteBatch and ExecuteTopKUnion
// must be byte-identical between the planner (shared subtrees reused) and the
// unplanned spec (every branch executed standalone), at several k.
func TestPlannedBatchAndTopKEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		c := randomExecCatalog(r, 1+r.Intn(3), 2+r.Intn(3))
		c.BuildValueIndex(2)
		off := c.Clone()
		off.UsePlanner(false)
		var queries []*ConjunctiveQuery
		for len(queries) < 2+r.Intn(5) {
			q := randomExecQuery(r, c)
			maybeSelfJoin(r, c, q)
			if _, err := Execute(off, q); err != nil {
				continue
			}
			queries = append(queries, q)
		}
		// Duplicate a branch sometimes: identical queries are the easiest
		// shared subtree, and the union must still be byte-identical.
		if r.Intn(2) == 0 {
			dup := *queries[0]
			queries = append(queries, &dup)
		}
		for i, q := range queries {
			q.Cost = float64(i/2) * 0.5
		}
		prov := make([]string, len(queries))
		for i, q := range queries {
			prov[i] = fmt.Sprintf("b%d:%s", i, q.Signature())
		}
		want, err := ExecuteBatch(off, queries, 1+r.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteBatch(c, queries, 1+r.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batch divergence between planned and unplanned", trial)
		}
		for _, k := range []int{1, 3, 100} {
			wantU, _, err := ExecuteTopKUnion(off, queries, k, prov)
			if err != nil {
				t.Fatal(err)
			}
			gotU, stats, err := ExecuteTopKUnion(c, queries, k, prov)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotU, wantU) {
				t.Fatalf("trial %d k=%d: top-k union divergence\ngot:  %v\nwant: %v", trial, k, gotU, wantU)
			}
			if stats.Plan.BranchesPlanned != int64(len(queries)) {
				t.Fatalf("trial %d k=%d: branches planned = %d, want %d",
					trial, k, stats.Plan.BranchesPlanned, len(queries))
			}
		}
	}
}

// TestSelfFilterJoinApplied is the regression test for the dropped same-alias
// join condition: both executors bound join conditions by looking the other
// endpoint up among PREVIOUSLY-joined aliases, so `t.a = t.b` — whose other
// endpoint is the atom itself — never bound to anything and rows violating it
// leaked into the result. It fails against that code.
func TestSelfFilterJoinApplied(t *testing.T) {
	mk := func(source string, attrs []string, rows [][]string) *Table {
		as := make([]Attribute, len(attrs))
		for i, a := range attrs {
			as[i] = Attribute{Name: a}
		}
		tb, err := NewTable(&Relation{Source: source, Name: "r", Attributes: as}, rows)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(mk("s", []string{"x", "y"}, [][]string{
		{"1", "1"}, {"1", "2"}, {"3", "3"},
	})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(mk("u", []string{"x", "y", "z"}, [][]string{
		{"1", "a", "a"}, {"1", "a", "b"}, {"3", "c", "c"},
	})); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		q    *ConjunctiveQuery
		want [][]string
	}{
		{
			// First (and only) atom: the filter applies at the scan.
			name: "first-atom equi",
			q: &ConjunctiveQuery{
				Atoms: []Atom{{Relation: "s.r", Alias: "t0"}},
				Joins: []JoinCond{{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t0", RightAttr: "y"}},
				Project: []ProjCol{
					{Alias: "t0", Attr: "x", As: "x"}, {Alias: "t0", Attr: "y", As: "y"},
				},
			},
			want: [][]string{{"1", "1"}, {"3", "3"}},
		},
		{
			// Later atom: the filter applies inside the join's build/probe.
			name: "later-atom equi",
			q: &ConjunctiveQuery{
				Atoms: []Atom{{Relation: "s.r", Alias: "t0"}, {Relation: "u.r", Alias: "t1"}},
				Joins: []JoinCond{
					{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"},
					{LeftAlias: "t1", LeftAttr: "y", RightAlias: "t1", RightAttr: "z"},
				},
				Project: []ProjCol{
					{Alias: "t0", Attr: "x", As: "x"}, {Alias: "t1", Attr: "y", As: "y"},
					{Alias: "t1", Attr: "z", As: "z"},
				},
			},
			want: [][]string{{"1", "a", "a"}, {"3", "c", "c"}},
		},
		{
			// Similarity self-filter: "alpha beta"~"alpha beta" passes 0.5,
			// "alpha"~"zulu" does not.
			name: "similarity",
			q: &ConjunctiveQuery{
				Atoms: []Atom{{Relation: "v.r", Alias: "t0"}},
				Joins: []JoinCond{{
					LeftAlias: "t0", LeftAttr: "x", RightAlias: "t0", RightAttr: "y",
					Op: JoinSimilar, Threshold: 0.5,
				}},
				Project: []ProjCol{
					{Alias: "t0", Attr: "x", As: "x"}, {Alias: "t0", Attr: "y", As: "y"},
				},
			},
			want: [][]string{{"alpha beta", "alpha beta"}},
		},
	}
	if err := c.AddTable(mk("v", []string{"x", "y"}, [][]string{
		{"alpha beta", "alpha beta"}, {"alpha", "zulu"},
	})); err != nil {
		t.Fatal(err)
	}

	for _, tc := range cases {
		for _, v := range plannerVariants(c) {
			rs, err := Execute(v.cat, tc.q)
			if err != nil {
				t.Fatalf("%s %s: %v", tc.name, v.name, err)
			}
			if !reflect.DeepEqual(rs.Rows, tc.want) {
				t.Errorf("%s %s: self-filter not applied\ngot:  %q\nwant: %q", tc.name, v.name, rs.Rows, tc.want)
			}
		}
	}
}

// TestUnknownAliasAndAttrRejected pins Validate's rejection surface across
// every condition kind, in both executors and both planner modes: a query
// naming an alias or attribute that does not exist is a returned error, never
// a silently-ignored condition or a panic.
func TestUnknownAliasAndAttrRejected(t *testing.T) {
	rel := &Relation{Source: "s", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
	tb, err := NewTable(rel, [][]string{{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	base := func() *ConjunctiveQuery {
		return &ConjunctiveQuery{
			Atoms:   []Atom{{Relation: "s.r", Alias: "t0"}, {Relation: "s.r", Alias: "t1"}},
			Joins:   []JoinCond{{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"}},
			Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
		}
	}
	cases := []struct {
		name   string
		mutate func(q *ConjunctiveQuery)
	}{
		{"join left alias unknown", func(q *ConjunctiveQuery) {
			q.Joins = append(q.Joins, JoinCond{LeftAlias: "ghost", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"})
		}},
		{"join right alias unknown", func(q *ConjunctiveQuery) {
			q.Joins = append(q.Joins, JoinCond{LeftAlias: "t0", LeftAttr: "x", RightAlias: "ghost", RightAttr: "x"})
		}},
		{"join attr unknown", func(q *ConjunctiveQuery) {
			q.Joins = append(q.Joins, JoinCond{LeftAlias: "t0", LeftAttr: "nope", RightAlias: "t1", RightAttr: "x"})
		}},
		{"self-join attr unknown", func(q *ConjunctiveQuery) {
			q.Joins = append(q.Joins, JoinCond{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t0", RightAttr: "nope"})
		}},
		{"select alias unknown", func(q *ConjunctiveQuery) {
			q.Selects = append(q.Selects, SelCond{Alias: "ghost", Attr: "x", Value: "a"})
		}},
		{"select attr unknown", func(q *ConjunctiveQuery) {
			q.Selects = append(q.Selects, SelCond{Alias: "t0", Attr: "nope", Value: "a"})
		}},
		{"project alias unknown", func(q *ConjunctiveQuery) {
			q.Project = append(q.Project, ProjCol{Alias: "ghost", Attr: "x", As: "g"})
		}},
		{"project attr unknown", func(q *ConjunctiveQuery) {
			q.Project = append(q.Project, ProjCol{Alias: "t0", Attr: "nope", As: "g"})
		}},
	}
	for _, tc := range cases {
		q := base()
		tc.mutate(q)
		for _, v := range plannerVariants(c) {
			if _, err := Execute(v.cat, q); err == nil {
				t.Errorf("%s (%s): want error, got nil", tc.name, v.name)
			}
		}
		if _, err := ExecuteBatch(c, []*ConjunctiveQuery{base(), q}, 2); err == nil {
			t.Errorf("%s (batch): want error, got nil", tc.name)
		}
	}
}

// TestTopKUnionValidatesSkippedBranches is the regression test for the
// skipped-branch validation hole: ExecuteTopKUnion only validated a branch
// when it built its stream, so a malformed branch behind an unbeatable cost
// bound silently succeeded where the serial spec (execute every branch,
// lowest-index error wins) errors. The batch must fail loudly regardless of
// which branches the bound would skip, in both planner modes.
func TestTopKUnionValidatesSkippedBranches(t *testing.T) {
	rel := &Relation{Source: "s", Name: "big", Attributes: []Attribute{{Name: "x"}}}
	rows := make([][]string, 20)
	for i := range rows {
		rows[i] = []string{fmt.Sprintf("v%02d", i)}
	}
	tb, err := NewTable(rel, rows)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	good := &ConjunctiveQuery{
		Atoms:   []Atom{{Relation: "s.big", Alias: "t0"}},
		Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
		Cost:    1.0,
	}
	bad := &ConjunctiveQuery{
		Atoms:   []Atom{{Relation: "s.big", Alias: "t0"}},
		Selects: []SelCond{{Alias: "t0", Attr: "missing", Value: "v"}},
		Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
		Cost:    9.0, // unbeatable after the first branch fills k
	}
	queries := []*ConjunctiveQuery{good, bad}
	for _, v := range plannerVariants(c) {
		_, _, err := ExecuteTopKUnion(v.cat, queries, 5, []string{"b0", "b1"})
		if err == nil || !strings.Contains(err.Error(), "missing") {
			t.Errorf("%s: skipped malformed branch must error like the serial spec, got %v", v.name, err)
		}
	}
}

// TestBatchPlanCSECounters pins the subplan cache's behaviour on a
// constructed shared subtree: two branches over the same atoms and join (only
// projections differ) must plan one shared subtree, materialise it once,
// serve the second branch from the cache — and return exactly what standalone
// execution returns.
func TestBatchPlanCSECounters(t *testing.T) {
	mk := func(source string, rows [][]string) *Table {
		rel := &Relation{Source: source, Name: "r", Attributes: []Attribute{{Name: "a"}, {Name: "b"}}}
		tb, err := NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	c := NewCatalogSharded(2)
	if err := c.AddTable(mk("l", [][]string{{"k1", "p"}, {"k2", "q"}, {"k3", "r"}})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(mk("m", [][]string{{"k1", "u"}, {"k2", "v"}, {"k9", "w"}})); err != nil {
		t.Fatal(err)
	}
	c.BuildValueIndex(1)
	shape := func(proj []ProjCol) *ConjunctiveQuery {
		return &ConjunctiveQuery{
			Atoms:   []Atom{{Relation: "l.r", Alias: "t0"}, {Relation: "m.r", Alias: "t1"}},
			Joins:   []JoinCond{{LeftAlias: "t0", LeftAttr: "a", RightAlias: "t1", RightAttr: "a"}},
			Project: proj,
		}
	}
	qa := shape([]ProjCol{{Alias: "t0", Attr: "b", As: "lb"}})
	qb := shape([]ProjCol{{Alias: "t1", Attr: "b", As: "rb"}})
	bp, err := PlanBatch(c, []*ConjunctiveQuery{qa, qb})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range []*ConjunctiveQuery{qa, qb} {
		got, err := bp.Execute(i)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Execute(c, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("branch %d: CSE result differs from standalone execution\ngot:  %v\nwant: %v", i, got, want)
		}
	}
	st := bp.Stats()
	if st.BranchesPlanned != 2 || st.SharedSubtrees != 1 {
		t.Errorf("planned=%d shared=%d, want 2 planned, 1 shared subtree", st.BranchesPlanned, st.SharedSubtrees)
	}
	if st.SubplansComputed != 1 || st.CSEHits != 1 {
		t.Errorf("computed=%d hits=%d, want the shared prefix computed once and reused once",
			st.SubplansComputed, st.CSEHits)
	}
}

// TestPlannedOrderPrefersSelectiveAtom pins the cost model end-to-end through
// ExplainPlan: with segment statistics available, a highly selective later
// atom must be scanned first (naive order starts at atom 0), the plan must
// read as a hash join, and the reorder must show up in the batch counters.
// With the planner off the explain output must name the naive order.
func TestPlannedOrderPrefersSelectiveAtom(t *testing.T) {
	rel := &Relation{Source: "s", Name: "big", Attributes: []Attribute{{Name: "x"}}}
	rows := make([][]string, 100)
	for i := range rows {
		rows[i] = []string{fmt.Sprintf("v%02d", i)}
	}
	tb, err := NewTable(rel, rows)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	c.BuildValueIndex(1)
	q := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "s.big", Alias: "t0"}, {Relation: "s.big", Alias: "t1"}},
		Joins: []JoinCond{{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"}},
		Selects: []SelCond{
			{Alias: "t1", Attr: "x", Op: OpEq, Value: "v07"}, // est 1 row from the segment
		},
		Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
	}
	lines, err := ExplainPlan(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || !strings.Contains(lines[0], "cost-based") {
		t.Fatalf("explain = %q, want cost-based header + 2 steps", lines)
	}
	if !strings.HasPrefix(lines[1], "scan t1=") {
		t.Errorf("first step = %q, want the selective atom t1 scanned first", lines[1])
	}
	if !strings.HasPrefix(lines[2], "hash join t0=") {
		t.Errorf("second step = %q, want t0 joined in by hash join", lines[2])
	}
	bp, err := PlanBatch(c, []*ConjunctiveQuery{q})
	if err != nil {
		t.Fatal(err)
	}
	if st := bp.Stats(); st.BranchesReordered != 1 {
		t.Errorf("branches reordered = %d, want 1 (planned order differs from naive)", st.BranchesReordered)
	}

	off := c.Clone()
	off.UsePlanner(false)
	lines, err = ExplainPlan(off, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines[0], "planner off") {
		t.Errorf("unplanned header = %q, want the naive order named", lines[0])
	}
	if !strings.HasPrefix(lines[1], "scan t0=") {
		t.Errorf("unplanned first step = %q, want the spec's atom-0-first order", lines[1])
	}
}
