package relstore

import "sort"

// Branch is one arm of a disjoint union: a result set plus the cost of the
// query that produced it and an opaque provenance label (typically the SQL
// text or tree id of the originating query).
type Branch struct {
	Result     *ResultSet
	Cost       float64
	Provenance string
}

// UnionRow is one ranked output tuple of a view: its values under the
// unified schema (empty string for columns the branch does not produce),
// the branch cost, and which branch it came from.
type UnionRow struct {
	Values     []string
	Cost       float64
	Branch     int
	Provenance string
}

// UnionResult is the ranked disjoint ("outer") union of several branches
// under a single unified output schema (paper §2.2).
type UnionResult struct {
	Columns []string
	Rows    []UnionRow
}

// DisjointUnion merges branches, building the unified column list in branch
// order: the first branch's columns seed the schema, and each later branch's
// columns are appended unless an identically-named column already exists
// (column-name unification is the caller's job — Q renames compatible
// attributes before calling, per §2.2). Rows are ranked by ascending cost,
// ties broken by branch order then row order, so output is deterministic.
func DisjointUnion(branches []Branch) *UnionResult {
	out := &UnionResult{}
	colIdx := make(map[string]int)
	for _, br := range branches {
		for _, col := range br.Result.Columns {
			if _, ok := colIdx[col]; !ok {
				colIdx[col] = len(out.Columns)
				out.Columns = append(out.Columns, col)
			}
		}
	}
	for bi, br := range branches {
		// Map branch columns into the unified schema.
		mapping := make([]int, len(br.Result.Columns))
		for i, col := range br.Result.Columns {
			mapping[i] = colIdx[col]
		}
		for _, row := range br.Result.Rows {
			u := UnionRow{
				Values:     make([]string, len(out.Columns)),
				Cost:       br.Cost,
				Branch:     bi,
				Provenance: br.Provenance,
			}
			for i, v := range row {
				u.Values[mapping[i]] = v
			}
			out.Rows = append(out.Rows, u)
		}
	}
	sort.SliceStable(out.Rows, func(i, j int) bool {
		if out.Rows[i].Cost != out.Rows[j].Cost {
			return out.Rows[i].Cost < out.Rows[j].Cost
		}
		return out.Rows[i].Branch < out.Rows[j].Branch
	})
	return out
}

// TopK returns the first k rows of the union (or all rows if fewer).
func (u *UnionResult) TopK(k int) []UnionRow {
	if k <= 0 || k >= len(u.Rows) {
		return u.Rows
	}
	return u.Rows[:k]
}
