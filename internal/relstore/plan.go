package relstore

import (
	"sync"
	"sync/atomic"
)

// This file is the cross-branch common-subexpression elimination layer on
// top of the planner: one BatchPlan per view materialisation plans every
// branch query, detects join prefixes shared across branches by canonical
// signature (planner.go prefixSignature), and pins each shared prefix's
// joined rows in a per-materialisation subplan cache so the common subtree
// executes ONCE no matter how many branches contain it. Both batch entry
// points feed from it: ExecuteBatch (shard.go) and ExecuteTopKUnion
// (stream.go) route through PlanBatch whenever the catalog's planner is on.
//
// Correctness is structural: a cached prefix holds exactly the rows the
// reusing branch's own pipeline would have produced for those atoms (same
// relations, same bound conditions, same intra-prefix joins, same immutable
// tables — that is what signature equality means), streamed into the
// continuation in the same deterministic order. The CSE scope is one
// BatchPlan — one materialisation — so cached rows never outlive the
// catalog generation they were computed from; caching across
// materialisations is the query cache's job (epoch-keyed qcache, which the
// planner knob joins via the options fingerprint).

// PlanStats counts one BatchPlan's planning and sharing work — surfaced as
// TopKUnionStats.Plan, accumulated per instance by core, and served on
// /stats.
type PlanStats struct {
	// BranchesPlanned is the number of branch queries planned.
	BranchesPlanned int64 `json:"branches_planned"`
	// BranchesReordered counts planned branches whose cost-based join order
	// differs from the naive spec order.
	BranchesReordered int64 `json:"branches_reordered"`
	// SharedSubtrees is the number of distinct join prefixes shared by at
	// least two branches of one batch (each backs one subplan cache entry).
	SharedSubtrees int64 `json:"shared_subtrees"`
	// SubplansComputed counts shared prefixes actually materialised — at
	// most once each; prefixes of branches the top-k union skipped are
	// never computed at all.
	SubplansComputed int64 `json:"subplans_computed"`
	// CSEHits counts branch executions served from an already-computed
	// subplan instead of re-executing the shared subtree.
	CSEHits int64 `json:"cse_hits"`
}

// Add accumulates another snapshot into s.
func (s *PlanStats) Add(o PlanStats) {
	s.BranchesPlanned += o.BranchesPlanned
	s.BranchesReordered += o.BranchesReordered
	s.SharedSubtrees += o.SharedSubtrees
	s.SubplansComputed += o.SubplansComputed
	s.CSEHits += o.CSEHits
}

// subplanRowCap bounds the estimated cardinality of a prefix the cache will
// materialise: CSE trades the memory of one joined intermediate for the work
// of re-executing it per branch, and above this bound the memory side of the
// trade loses. Estimates only — never correctness.
const subplanRowCap = 1 << 20

// subplanEntry is one shared join prefix: its length in atoms and, once the
// first branch needing it runs, the prefix pipeline's joined rows
// (full-width, in deterministic pipeline order). Concurrent branches
// coalesce on the sync.Once, so the prefix executes exactly once per
// materialisation.
type subplanEntry struct {
	n     int
	once  sync.Once
	rows  [][]string
	stats StreamStats
}

// BatchPlan is the planned form of one branch-query batch: per-query plans
// plus the shared-prefix subplan cache. Stream and Execute are safe for
// concurrent use across different (or equal) indexes — core's branch workers
// call them in parallel.
type BatchPlan struct {
	cat    *Catalog
	plans  []*queryPlan
	prefix []*subplanEntry // per query; nil = no shared prefix

	branchesPlanned   int64
	branchesReordered int64
	sharedSubtrees    int64
	subplansComputed  atomic.Int64
	cseHits           atomic.Int64
}

// PlanBatch validates and plans every query of one materialisation batch and
// wires up the shared-subtree cache. Queries are validated in index order
// and the first failure is returned — the same error the serial spec path
// (execute every branch, lowest-index error wins) would produce, so even a
// branch a later top-k bound would skip still fails loudly rather than
// silently succeeding.
func PlanBatch(c *Catalog, queries []*ConjunctiveQuery) (*BatchPlan, error) {
	bp := &BatchPlan{
		cat:    c,
		plans:  make([]*queryPlan, len(queries)),
		prefix: make([]*subplanEntry, len(queries)),
	}
	type sigRef struct {
		sig string
		n   int
	}
	sigs := make([][]sigRef, len(queries))
	count := make(map[string]int)
	for i, q := range queries {
		p, err := planQuery(c, q)
		if err != nil {
			return nil, err
		}
		bp.plans[i] = p
		bp.branchesPlanned++
		if p.reordered {
			bp.branchesReordered++
		}
		for n := 1; n <= len(p.atoms); n++ {
			if !cseEligible(p, n) {
				continue
			}
			sig := p.prefixSignature(n)
			sigs[i] = append(sigs[i], sigRef{sig: sig, n: n})
			count[sig]++
		}
	}
	entries := make(map[string]*subplanEntry)
	for i := range queries {
		// Longest prefix shared with at least one other branch wins: the
		// more of the pipeline the cache replaces, the less re-execution.
		for j := len(sigs[i]) - 1; j >= 0; j-- {
			sr := sigs[i][j]
			if count[sr.sig] < 2 {
				continue
			}
			e := entries[sr.sig]
			if e == nil {
				e = &subplanEntry{n: sr.n}
				entries[sr.sig] = e
			}
			bp.prefix[i] = e
			break
		}
	}
	bp.sharedSubtrees = int64(len(entries))
	return bp, nil
}

// cseEligible reports whether the plan's first n atoms are worth caching: a
// single unfiltered scan is cheaper to repeat than to copy, and a prefix
// whose estimated cardinality blows past subplanRowCap would trade too much
// memory for the saved work.
func cseEligible(p *queryPlan, n int) bool {
	if n == 1 {
		a := &p.atoms[p.order[0]]
		if len(a.sels) == 0 && len(a.selfs) == 0 {
			return false
		}
	}
	if p.est != nil && p.est[n-1] > subplanRowCap {
		return false
	}
	return true
}

// Len returns the number of planned queries.
func (bp *BatchPlan) Len() int { return len(bp.plans) }

// Stream compiles branch i's pipeline, sourcing its shared join prefix (if
// any) from the subplan cache — computing the prefix on first use, reusing
// the pinned rows afterwards.
func (bp *BatchPlan) Stream(i int) (*Stream, error) {
	p := bp.plans[i]
	e := bp.prefix[i]
	if e == nil {
		return compileStream(p, nil)
	}
	computed := false
	e.once.Do(func() {
		computed = true
		e.rows, e.stats = drainPrefix(p, e.n)
	})
	if computed {
		bp.subplansComputed.Add(1)
	} else {
		bp.cseHits.Add(1)
	}
	st, err := compileStream(p, e)
	if err != nil {
		return nil, err
	}
	if computed {
		// The computing branch carries the prefix's scan work in its stats;
		// reusing branches scanned nothing — that asymmetry IS the saving.
		st.stats.RowsScanned += e.stats.RowsScanned
	}
	return st, nil
}

// Execute drains branch i into its canonical ResultSet — byte-identical to
// Execute(c, queries[i]) with or without the planner (planner_test.go and
// FuzzPlanEquivalence pin this).
func (bp *BatchPlan) Execute(i int) (*ResultSet, error) {
	st, err := bp.Stream(i)
	if err != nil {
		return nil, err
	}
	rs := st.Drain()
	bp.cat.countExec(len(rs.Rows))
	return rs, nil
}

// Stats snapshots the batch's planning counters.
func (bp *BatchPlan) Stats() PlanStats {
	return PlanStats{
		BranchesPlanned:   bp.branchesPlanned,
		BranchesReordered: bp.branchesReordered,
		SharedSubtrees:    bp.sharedSubtrees,
		SubplansComputed:  bp.subplansComputed.Load(),
		CSEHits:           bp.cseHits.Load(),
	}
}
