package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qint/internal/text"
)

// Table couples a relation schema with its tuples. Row values are strings;
// numeric attributes hold decimal representations.
type Table struct {
	Relation *Relation
	Rows     [][]string
}

// NewTable constructs a table after validating the schema and row widths.
func NewTable(rel *Relation, rows [][]string) (*Table, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	for i, row := range rows {
		if len(row) != len(rel.Attributes) {
			return nil, fmt.Errorf("relstore: table %s row %d has %d values, want %d",
				rel.QualifiedName(), i, len(row), len(rel.Attributes))
		}
	}
	return &Table{Relation: rel, Rows: rows}, nil
}

// Column returns the values (with duplicates) of the named attribute.
func (t *Table) Column(attr string) []string {
	i := t.Relation.AttrIndex(attr)
	if i < 0 {
		return nil
	}
	col := make([]string, len(t.Rows))
	for j, row := range t.Rows {
		col[j] = row[i]
	}
	return col
}

// Catalog is the set of registered sources and their tables, internally
// hash-partitioned into shards (see shard.go): each shard owns the tables
// whose qualified names hash to it, its own lazily built distinct-value
// cache and its own immutable value-index segments. Catalog-wide reads fan
// out per shard and merge deterministically, so the shard count never
// changes a single byte of any answer — it only controls parallelism and
// write locality.
//
// Concurrency contract: the catalog is single-writer, many-reader. AddTable
// (the only mutation of tables/order — tables themselves are immutable once
// added) must be serialised against ALL other calls on the SAME Catalog
// value, as must Clone, SetParallelism and UseScanFindValues. Q publishes
// catalogs copy-on-write: a writer Clones the catalog, mutates the clone,
// and atomically swaps it into the published snapshot, so concurrent
// queries keep reading the frozen original. Every read method may be called
// from any number of goroutines concurrently — Q's parallel branch executor
// depends on this. The read paths that mutate internal state — the lazily
// built per-shard ValueSet caches and value-index segment caches — are
// shared across clones (tables are immutable, so an attribute's value set
// and a table's segment never change) and guarded by their own per-shard
// mutexes, so concurrent readers stay race-free.
type Catalog struct {
	shards []*catShard // hash partitions; fixed count for the catalog's lifetime
	owned  []bool      // writer-side: shard i's table map is private to this clone
	order  []string    // global insertion order of qualified names

	// par bounds the catalog's internal per-shard fan-outs (SetParallelism).
	par int

	// scanFind routes FindValues through the reference full-scan
	// implementation instead of the inverted index. Writer-side: set it
	// before the catalog is shared with concurrent readers; Clone copies it.
	scanFind bool

	// matExec routes Execute through the reference materialise-everything
	// executor instead of the streaming iterator pipeline. Writer-side: set
	// it before the catalog is shared with concurrent readers; Clone copies
	// it.
	matExec bool

	// noPlan disables the cost-based join planner and the cross-branch
	// subplan cache, routing every query through the naive first-connected
	// join order — the unplanned executable spec the planner is verified
	// against (planner_test.go). Inverted so the zero value keeps the
	// planner ON. Writer-side: set it before the catalog is shared with
	// concurrent readers; Clone copies it.
	noPlan bool

	// execObs, when attached (InstrumentExec), counts completed branch
	// executions and their produced rows across every execution path.
	// Writer-side: set before sharing; Clone copies the pointer so all
	// generations of one engine report into the same counters.
	execObs *ExecCounters
}

// valueCache holds one shard's lazily built per-attribute distinct-value
// sets. It is shared between a catalog and its clones: sets are keyed by
// AttrRef and tables are immutable once added, so a cached set stays correct
// in every catalog generation that contains the attribute.
type valueCache struct {
	mu   sync.RWMutex
	sets map[AttrRef]map[string]struct{}
}

// NewCatalog returns an empty catalog at the default shard count
// (runtime.GOMAXPROCS(0); see NewCatalogSharded).
func NewCatalog() *Catalog { return NewCatalogSharded(0) }

// Clone returns a copy-on-write clone. Only the shard-pointer slice and the
// global order are copied: each shard's table map stays physically shared
// until the first AddTable that hashes into it (which then copies just that
// shard — see ownShard), and the per-shard value-set and value-index caches
// are shared outright, since cached sets and segments are per-table and
// immutable. A registration that clones the catalog and adds tables
// therefore touches only the shards those tables hash into, while every
// published copy-on-write generation keeps reading the same frozen shards.
// Mutating either the clone or the original with AddTable leaves the other
// untouched. Writer-side: Clone must be serialised with other mutations.
func (c *Catalog) Clone() *Catalog {
	// Both sides now share every shard: the parent too must copy-on-write
	// before its next AddTable. Readers never touch the owned flags.
	for i := range c.owned {
		c.owned[i] = false
	}
	return &Catalog{
		shards:   append([]*catShard(nil), c.shards...),
		owned:    make([]bool, len(c.shards)),
		order:    append([]string(nil), c.order...),
		par:      c.par,
		scanFind: c.scanFind,
		matExec:  c.matExec,
		noPlan:   c.noPlan,
		execObs:  c.execObs,
	}
}

// UseScanFindValues switches FindValues between the inverted value index
// (the default) and the reference full-scan implementation. Writer-side:
// call it before sharing the catalog with concurrent readers.
func (c *Catalog) UseScanFindValues(scan bool) { c.scanFind = scan }

// UseMaterialisedExec switches Execute between the streaming iterator
// pipeline (the default) and the reference materialise-everything executor
// (ExecuteMaterialised), which is kept as the executable specification the
// streaming path is verified against. Writer-side: call it before sharing
// the catalog with concurrent readers.
func (c *Catalog) UseMaterialisedExec(mat bool) { c.matExec = mat }

// UsePlanner switches query execution between the cost-based join planner
// with cross-branch common-subexpression elimination (the default — see
// planner.go and plan.go) and the naive first-connected join order, which is
// kept as the unplanned executable specification the planner is verified
// against — the same pattern as UseScanFindValues and UseMaterialisedExec.
// Join order and subplan reuse cannot change a byte of any result (outputs
// are sorted and deduplicated under one total order); the knob trades
// planning time against join work. Writer-side: call it before sharing the
// catalog with concurrent readers.
func (c *Catalog) UsePlanner(on bool) { c.noPlan = !on }

// statsSegment returns the relation's value-index segment — the planner's
// statistics source (per-attribute distinct-value entries with row counts) —
// building it on first use, or nil for an unknown relation. Safe for
// concurrent use (segmentFor resolves racing builds by adoption).
func (c *Catalog) statsSegment(qualified string) *segment {
	sh := c.shardFor(qualified)
	t := sh.tables[qualified]
	if t == nil {
		return nil
	}
	return sh.index.segmentFor(t)
}

// AddTable registers a table. Registering a second table under the same
// qualified relation name is an error: sources are immutable once added.
// The write touches only the shard the table hashes into.
func (c *Catalog) AddTable(t *Table) error {
	qn := t.Relation.QualifiedName()
	si := c.shardOf(qn)
	if _, exists := c.shards[si].tables[qn]; exists {
		return fmt.Errorf("relstore: relation %s already registered", qn)
	}
	sh := c.ownShard(si)
	sh.tables[qn] = t
	sh.order = append(sh.order, qn)
	c.order = append(c.order, qn)
	return nil
}

// Table returns the table registered under the qualified name, or nil.
func (c *Catalog) Table(qualified string) *Table { return c.lookup(qualified) }

// Relation returns the schema registered under the qualified name, or nil.
func (c *Catalog) Relation(qualified string) *Relation {
	if t := c.lookup(qualified); t != nil {
		return t.Relation
	}
	return nil
}

// Relations returns all relation schemas in registration order.
func (c *Catalog) Relations() []*Relation {
	out := make([]*Relation, 0, len(c.order))
	for _, qn := range c.order {
		out = append(out, c.lookup(qn).Relation)
	}
	return out
}

// RelationNames returns all qualified relation names in registration order.
func (c *Catalog) RelationNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Sources returns the distinct source names, sorted.
func (c *Catalog) Sources() []string {
	set := make(map[string]struct{})
	for _, qn := range c.order {
		set[c.lookup(qn).Relation.Source] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SourceRelations returns the relations belonging to one source, in
// registration order.
func (c *Catalog) SourceRelations(source string) []*Relation {
	var out []*Relation
	for _, qn := range c.order {
		if r := c.lookup(qn).Relation; r.Source == source {
			out = append(out, r)
		}
	}
	return out
}

// NumRelations returns the number of registered relations.
func (c *Catalog) NumRelations() int { return len(c.order) }

// NumAttributes returns the total attribute count across all relations.
func (c *Catalog) NumAttributes() int {
	n := 0
	for _, qn := range c.order {
		n += len(c.lookup(qn).Relation.Attributes)
	}
	return n
}

// ValueSet returns the distinct values of the referenced attribute. The set
// is computed once and cached in the owning shard; callers must not mutate
// it. Safe for concurrent use: losers of a racing first computation adopt
// the winner's cached set, so all callers observe one canonical map per
// attribute. When the attribute's table already has a value-index segment,
// the set derives from the segment's distinct entries instead of
// re-scanning rows.
func (c *Catalog) ValueSet(ref AttrRef) map[string]struct{} {
	sh := c.shardFor(ref.Relation)
	sh.values.mu.RLock()
	vs, ok := sh.values.sets[ref]
	sh.values.mu.RUnlock()
	if ok {
		return vs
	}
	t := sh.tables[ref.Relation]
	if t == nil {
		return nil
	}
	i := t.Relation.AttrIndex(ref.Attr)
	if i < 0 {
		return nil
	}
	if seg := sh.index.built(t); seg != nil {
		vs = seg.valueSet(i)
	} else {
		vs = make(map[string]struct{})
		for _, row := range t.Rows {
			if v := row[i]; v != "" {
				vs[v] = struct{}{}
			}
		}
	}
	sh.values.mu.Lock()
	if won, ok := sh.values.sets[ref]; ok {
		vs = won
	} else {
		sh.values.sets[ref] = vs
	}
	sh.values.mu.Unlock()
	return vs
}

// ValueOverlap returns the number of distinct values shared by two
// attributes. This powers the Value Overlap Filter of Figure 7: attribute
// pairs with zero overlap cannot join and need not be compared.
func (c *Catalog) ValueOverlap(a, b AttrRef) int {
	sa, sb := c.ValueSet(a), c.ValueSet(b)
	if len(sa) > len(sb) {
		sa, sb = sb, sa
	}
	n := 0
	for v := range sa {
		if _, ok := sb[v]; ok {
			n++
		}
	}
	return n
}

// ValueJaccard returns the Jaccard similarity of two attributes' distinct
// value sets.
func (c *Catalog) ValueJaccard(a, b AttrRef) float64 {
	return text.Jaccard(c.ValueSet(a), c.ValueSet(b))
}

// ValueHit is one tuple-level keyword match: the attribute whose value
// matched and the matching value itself.
type ValueHit struct {
	Ref   AttrRef
	Value string
	Rows  int // number of tuples carrying this value
}

// FindValues returns the distinct values that contain the keyword
// (case-insensitive substring over normalised text). Q's query-graph
// expansion uses this to lazily materialise value nodes for each keyword
// (paper §2.2). Results are deterministic: sorted by attribute then value.
//
// By default it answers from the inverted value index (valueindex.go),
// fanning one worker per shard; UseScanFindValues(true) routes it through
// the reference full scan instead. Both implementations — and every shard
// count — return byte-identical results.
func (c *Catalog) FindValues(keyword string) []ValueHit {
	if c.scanFind {
		return c.ScanFindValues(keyword)
	}
	return c.IndexFindValues(keyword)
}

// ScanFindValues is the reference FindValues implementation: a full scan of
// every row of every table, normalising each value per keyword. It is kept
// as the executable specification the index is verified against (the
// metamorphic suites in valueindex_test.go and shard_test.go) and as the
// implementation behind UseScanFindValues.
func (c *Catalog) ScanFindValues(keyword string) []ValueHit {
	kw := text.Normalize(keyword)
	if kw == "" {
		return nil
	}
	var hits []ValueHit
	for _, qn := range c.order {
		t := c.lookup(qn)
		for ai, attr := range t.Relation.Attributes {
			counts := make(map[string]int)
			for _, row := range t.Rows {
				v := row[ai]
				if v == "" {
					continue
				}
				if strings.Contains(text.Normalize(v), kw) {
					counts[v]++
				}
			}
			for v, n := range counts {
				hits = append(hits, ValueHit{
					Ref:   AttrRef{Relation: qn, Attr: attr.Name},
					Value: v,
					Rows:  n,
				})
			}
		}
	}
	sortHits(hits)
	return hits
}

// AttrRefs returns every attribute reference in the catalog, in registration
// then declaration order.
func (c *Catalog) AttrRefs() []AttrRef {
	var out []AttrRef
	for _, qn := range c.order {
		for _, a := range c.lookup(qn).Relation.Attributes {
			out = append(out, AttrRef{Relation: qn, Attr: a.Name})
		}
	}
	return out
}
