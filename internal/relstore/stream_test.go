package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// This file pins the streaming-executor tentpole: the composed iterator
// pipeline (stream.go) must be byte-identical to the materialise-everything
// reference executor (exec.go) on randomised catalogs, every join shape and
// every shard count, and the top-k streamed union must equal the full
// union's top-k prefix while provably skipping unbeatable branches. It also
// carries the row-identity regression tests: the old fmt.Sprint projection
// dedup key and the "\x00"-separator join keys silently merged distinct
// rows, and these tests fail against those encodings.

// trickyValues is the value pool of the randomised catalogs: embedded
// spaces, NUL bytes, empty strings and unicode — exactly the shapes that
// collided under the old separator-based row-identity encodings.
var trickyValues = []string{
	"", " ", "a", "b", "c", "a b", "b c", "a b c",
	"a\x00", "\x00b", "a\x00b", "x\x00", "\x00",
	"é", "東京", "pro", "mem", "pro mem", "PRO",
}

// randomExecTable builds a small table with values drawn from trickyValues.
func randomExecTable(r *rand.Rand, source string, nAttrs, nRows int) *Table {
	attrs := make([]Attribute, nAttrs)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("a%d", i)}
	}
	rel := &Relation{Source: source, Name: "data", Attributes: attrs}
	rows := make([][]string, nRows)
	for i := range rows {
		row := make([]string, nAttrs)
		for j := range row {
			row[j] = trickyValues[r.Intn(len(trickyValues))]
		}
		rows[i] = row
	}
	t, err := NewTable(rel, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// randomExecCatalog builds a catalog of small tricky-valued tables at the
// given shard count.
func randomExecCatalog(r *rand.Rand, shards, nTables int) *Catalog {
	c := NewCatalogSharded(shards)
	for i := 0; i < nTables; i++ {
		nAttrs := 2 + r.Intn(3)
		nRows := r.Intn(25)
		if err := c.AddTable(randomExecTable(r, fmt.Sprintf("s%d", i), nAttrs, nRows)); err != nil {
			panic(err)
		}
	}
	return c
}

// randomExecQuery builds a random conjunctive query over the catalog: 1–3
// atoms, equi/similarity joins between consecutive atoms (or none — a cross
// product), random selections and a random projection.
func randomExecQuery(r *rand.Rand, c *Catalog) *ConjunctiveQuery {
	names := c.RelationNames()
	nAtoms := 1 + r.Intn(3)
	q := &ConjunctiveQuery{Cost: float64(r.Intn(8)) / 2}
	for i := 0; i < nAtoms; i++ {
		q.Atoms = append(q.Atoms, Atom{
			Relation: names[r.Intn(len(names))],
			Alias:    fmt.Sprintf("t%d", i),
		})
	}
	attrOf := func(ai int) (string, string) {
		a := q.Atoms[ai]
		rel := c.Relation(a.Relation)
		return a.Alias, rel.Attributes[r.Intn(len(rel.Attributes))].Name
	}
	for i := 1; i < nAtoms; i++ {
		nConds := r.Intn(3) // 0 = cross product
		for jc := 0; jc < nConds; jc++ {
			la, lattr := attrOf(r.Intn(i))
			ra, rattr := attrOf(i)
			cond := JoinCond{LeftAlias: la, LeftAttr: lattr, RightAlias: ra, RightAttr: rattr}
			if r.Intn(4) == 0 {
				cond.Op = JoinSimilar
				cond.Threshold = 0.3 + 0.4*r.Float64()
			}
			q.Joins = append(q.Joins, cond)
		}
	}
	for s := 0; s < r.Intn(3); s++ {
		al, attr := attrOf(r.Intn(nAtoms))
		cond := SelCond{Alias: al, Attr: attr, Value: trickyValues[r.Intn(len(trickyValues))]}
		if r.Intn(2) == 0 {
			cond.Op = OpContains
		}
		q.Selects = append(q.Selects, cond)
	}
	nProj := 1 + r.Intn(4)
	for p := 0; p < nProj; p++ {
		al, attr := attrOf(r.Intn(nAtoms))
		q.Project = append(q.Project, ProjCol{Alias: al, Attr: attr, As: fmt.Sprintf("c%d", p)})
	}
	return q
}

// TestStreamingVsMaterialisedEquivalence is the metamorphic gate of the
// streaming refactor: over randomised catalogs (tricky values included),
// randomised queries of every join shape, and shard counts {1,2,7}, the
// streaming pipeline must return a ResultSet deep-equal to the materialised
// reference executor's — content, order and nil-ness.
func TestStreamingVsMaterialisedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + shards)))
			for trial := 0; trial < 60; trial++ {
				c := randomExecCatalog(r, shards, 2+r.Intn(3))
				for qi := 0; qi < 6; qi++ {
					q := randomExecQuery(r, c)
					want, errM := ExecuteMaterialised(c, q)
					got, errS := ExecuteStream(c, q)
					if (errM == nil) != (errS == nil) {
						t.Fatalf("trial %d query %d: error divergence: materialised=%v streaming=%v\nquery: %s",
							trial, qi, errM, errS, q.SQL())
					}
					if errM != nil {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d query %d: result divergence\nquery: %s\nstreaming:    %v\nmaterialised: %v",
							trial, qi, q.SQL(), got, want)
					}
				}
			}
		})
	}
}

// TestExecuteDispatch pins the Execute dispatcher: streaming by default,
// the materialised reference under UseMaterialisedExec, byte-identical
// results either way, and Clone carries the knob.
func TestExecuteDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := randomExecCatalog(r, 2, 3)
	q := randomExecQuery(r, c)
	def, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	c.UseMaterialisedExec(true)
	mat, err := Execute(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, mat) {
		t.Fatalf("dispatch divergence:\nstreaming:    %v\nmaterialised: %v", def, mat)
	}
	clone := c.Clone()
	cl, err := Execute(clone, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cl, mat) {
		t.Fatal("clone did not inherit the materialised-exec knob's result")
	}
}

// TestProjectionDedupEmbeddedSpaces is the regression test for the
// fmt.Sprint projection-dedup key: the rows ["a b","c"] and ["a","b c"]
// rendered identically ("[a b c]") and one was silently dropped. Both must
// survive, under both executors, along with empty-string rows that
// previously collided with single-space rows.
func TestProjectionDedupEmbeddedSpaces(t *testing.T) {
	rel := &Relation{Source: "s", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
	tb, err := NewTable(rel, [][]string{
		{"a b", "c"},
		{"a", "b c"},
		{"", " "},
		{" ", ""},
		{"", ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	q := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "s.r", Alias: "t0"}},
		Project: []ProjCol{
			{Alias: "t0", Attr: "x", As: "x"},
			{Alias: "t0", Attr: "y", As: "y"},
		},
	}
	for name, exec := range map[string]func(*Catalog, *ConjunctiveQuery) (*ResultSet, error){
		"materialised": ExecuteMaterialised,
		"streaming":    ExecuteStream,
	} {
		rs, err := exec(c, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 5 {
			t.Errorf("%s: got %d rows, want all 5 distinct rows preserved: %q", name, len(rs.Rows), rs.Rows)
		}
	}
}

// TestJoinKeyNulRegression is the regression test for the "\x00"-separator
// hash-join key: the tuples ("a\x00","b") and ("a","\x00b") encoded to the
// same key, so a two-column equi-join matched rows whose values differ. The
// join must produce no match for them — and must still match genuinely
// equal tuples, including ones containing NUL.
func TestJoinKeyNulRegression(t *testing.T) {
	mk := func(source string, rows [][]string) *Table {
		rel := &Relation{Source: source, Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
		tb, err := NewTable(rel, rows)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(mk("l", [][]string{
		{"a\x00", "b"},     // collides with r's ("a","\x00b") under the old key
		{"q\x00q", "\x00"}, // genuine match present on both sides
	})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(mk("r", [][]string{
		{"a", "\x00b"},
		{"q\x00q", "\x00"},
	})); err != nil {
		t.Fatal(err)
	}
	q := &ConjunctiveQuery{
		Atoms: []Atom{{Relation: "l.r", Alias: "t0"}, {Relation: "r.r", Alias: "t1"}},
		Joins: []JoinCond{
			{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"},
			{LeftAlias: "t0", LeftAttr: "y", RightAlias: "t1", RightAttr: "y"},
		},
		Project: []ProjCol{
			{Alias: "t0", Attr: "x", As: "lx"},
			{Alias: "t1", Attr: "x", As: "rx"},
		},
	}
	for name, exec := range map[string]func(*Catalog, *ConjunctiveQuery) (*ResultSet, error){
		"materialised": ExecuteMaterialised,
		"streaming":    ExecuteStream,
	} {
		rs, err := exec(c, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 {
			t.Fatalf("%s: got %d join rows %q, want exactly the genuine q\\x00q match", name, len(rs.Rows), rs.Rows)
		}
		if rs.Rows[0][0] != "q\x00q" {
			t.Errorf("%s: wrong row matched: %q", name, rs.Rows[0])
		}
	}
}

// TestSelectionUnknownAttributeErrors pins the plan-time error contract: a
// selection naming a missing attribute is a returned error (from Validate
// or plan binding), never an index-out-of-range panic mid-row-loop.
func TestSelectionUnknownAttributeErrors(t *testing.T) {
	rel := &Relation{Source: "s", Name: "r", Attributes: []Attribute{{Name: "x"}}}
	tb, err := NewTable(rel, [][]string{{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	q := &ConjunctiveQuery{
		Atoms:   []Atom{{Relation: "s.r", Alias: "t0"}},
		Selects: []SelCond{{Alias: "t0", Attr: "missing", Op: OpEq, Value: "v"}},
		Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
	}
	for name, exec := range map[string]func(*Catalog, *ConjunctiveQuery) (*ResultSet, error){
		"materialised": ExecuteMaterialised,
		"streaming":    ExecuteStream,
	} {
		if _, err := exec(c, q); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Errorf("%s: want attribute error, got %v", name, err)
		}
	}
	// bindSels itself must also error rather than panic when handed a
	// condition Validate never saw (defence in depth for future callers).
	if _, err := bindSels(rel, []SelCond{{Attr: "nope"}}); err == nil {
		t.Error("bindSels: want error for unknown attribute, got nil")
	}
}

// TestTopKUnionEquivalence pins the streamed top-k union against the
// executable spec: for randomised branch batches (shared costs, ties,
// unordered costs), ExecuteTopKUnion's result must be deep-equal to
// executing every branch in full, DisjointUnion-ing, and truncating to k.
func TestTopKUnionEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		c := randomExecCatalog(r, 1+r.Intn(3), 2+r.Intn(3))
		nBranches := 1 + r.Intn(5)
		queries := make([]*ConjunctiveQuery, 0, nBranches)
		for len(queries) < nBranches {
			q := randomExecQuery(r, c)
			if _, err := ExecuteMaterialised(c, q); err != nil {
				continue
			}
			queries = append(queries, q)
		}
		// Mostly ascending costs (core's tree-cost order), with ties.
		for i, q := range queries {
			q.Cost = float64(i/2) * 0.5
		}
		prov := make([]string, len(queries))
		branches := make([]Branch, len(queries))
		for i, q := range queries {
			prov[i] = q.Signature()
			rs, err := ExecuteMaterialised(c, q)
			if err != nil {
				t.Fatal(err)
			}
			branches[i] = Branch{Result: rs, Cost: q.Cost, Provenance: prov[i]}
		}
		full := DisjointUnion(branches)
		for _, k := range []int{1, 2, 5, 100} {
			got, _, err := ExecuteTopKUnion(c, queries, k, prov)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Columns, full.Columns) {
				t.Fatalf("trial %d k=%d: column divergence: %v vs %v", trial, k, got.Columns, full.Columns)
			}
			want := full.TopK(k)
			if len(got.Rows) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got.Rows, want)) {
				t.Fatalf("trial %d k=%d: row divergence\ngot:  %v\nwant: %v", trial, k, got.Rows, want)
			}
		}
	}
}

// TestTopKUnionEarlyTermination pins the early-termination bound itself:
// once k rows at or below a later branch's cost exist, that branch is never
// executed — observable as skipped branches and as rows pulled strictly
// below what full materialisation pulls.
func TestTopKUnionEarlyTermination(t *testing.T) {
	rel := &Relation{Source: "s", Name: "big", Attributes: []Attribute{{Name: "x"}}}
	rows := make([][]string, 50)
	for i := range rows {
		rows[i] = []string{fmt.Sprintf("v%02d", i)}
	}
	tb, err := NewTable(rel, rows)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	branch := func(cost float64) *ConjunctiveQuery {
		return &ConjunctiveQuery{
			Atoms:   []Atom{{Relation: "s.big", Alias: "t0"}},
			Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
			Cost:    cost,
		}
	}
	queries := []*ConjunctiveQuery{branch(1.0), branch(2.0), branch(3.0)}
	got, stats, err := ExecuteTopKUnion(c, queries, 5, []string{"b0", "b1", "b2"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BranchesExecuted != 1 || stats.BranchesSkipped != 2 {
		t.Errorf("executed=%d skipped=%d, want 1 executed / 2 skipped", stats.BranchesExecuted, stats.BranchesSkipped)
	}
	if stats.RowsPulled >= 150 {
		t.Errorf("rows pulled %d, want < the 150 a full materialisation touches", stats.RowsPulled)
	}
	if len(got.Rows) != 5 || got.Rows[0].Cost != 1.0 {
		t.Errorf("unexpected top-k rows: %v", got.Rows)
	}
	// The tie case: a later branch at the SAME cost as the k-th collected
	// row is also unbeatable (ties lose to earlier branches).
	_, stats, err = ExecuteTopKUnion(c, []*ConjunctiveQuery{branch(1.0), branch(1.0)}, 5, []string{"b0", "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BranchesSkipped != 1 {
		t.Errorf("tie case: skipped=%d, want the equal-cost later branch skipped", stats.BranchesSkipped)
	}
}

// TestStreamStatsAccounting pins the observability counters the qbench
// stream experiment reports: scanned counts base rows pulled, pulled counts
// pre-dedup joined rows, emitted counts surviving projections.
func TestStreamStatsAccounting(t *testing.T) {
	rel := &Relation{Source: "s", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
	tb, err := NewTable(rel, [][]string{
		{"a", "1"}, {"a", "2"}, {"b", "3"}, {"b", "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalogSharded(1)
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	q := &ConjunctiveQuery{
		Atoms:   []Atom{{Relation: "s.r", Alias: "t0"}},
		Project: []ProjCol{{Alias: "t0", Attr: "x", As: "x"}},
	}
	st, err := BuildStream(c, q)
	if err != nil {
		t.Fatal(err)
	}
	rs := st.Drain()
	stats := st.Stats()
	if stats.RowsScanned != 4 || stats.RowsPulled != 4 || stats.RowsEmitted != 2 {
		t.Errorf("stats = %+v, want scanned=4 pulled=4 emitted=2 (dedup on x)", stats)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("rows = %q, want the 2 distinct x values", rs.Rows)
	}
}

// TestExecuteBatchStreamingEquivalence extends the PR 4 batch gate across
// the executor dispatch: the batch API must be byte-identical between the
// streaming default and the materialised reference at several worker counts.
func TestExecuteBatchStreamingEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	c := randomExecCatalog(r, 3, 4)
	matC := c.Clone()
	matC.UseMaterialisedExec(true)
	var queries []*ConjunctiveQuery
	for len(queries) < 8 {
		q := randomExecQuery(r, c)
		if _, err := ExecuteMaterialised(c, q); err == nil {
			queries = append(queries, q)
		}
	}
	for _, workers := range []int{1, 3, 8} {
		want, err := ExecuteBatch(matC, queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteBatch(c, queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch divergence between streaming and materialised", workers)
		}
	}
}
