// Package relstore is the relational substrate underneath Q: an in-memory
// catalog of data sources, each holding relations with typed attributes,
// declared key–foreign-key relationships, and tuple data. It provides the
// conjunctive-query executor, the disjoint ("outer") union used to merge
// per-query result schemas, an inverted keyword index over data values, and
// per-attribute distinct-value indexes used by the value-overlap filter and
// by the MAD matcher's column-value graph.
//
// The paper runs over JDBC-accessible relational sources; relstore is the
// in-process equivalent, exercising the same query shapes (select-project-
// join plus ranked outer union) without an external DBMS.
package relstore

import (
	"fmt"
	"strings"
)

// Type classifies attribute values. Values are stored as strings; Type
// records the inferred or declared domain, which matchers use for
// compatibility checks.
type Type int

const (
	// TypeString is the default attribute type.
	TypeString Type = iota
	// TypeInt marks integer-valued attributes.
	TypeInt
	// TypeFloat marks real-valued attributes.
	TypeFloat
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	default:
		return "TEXT"
	}
}

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Type Type
}

// ForeignKey declares that FromAttr of the owning relation references
// ToAttr of relation ToRelation (a qualified "source.relation" name).
// Foreign keys seed the initial search graph with default-cost join edges
// (paper §2.1).
type ForeignKey struct {
	FromAttr   string
	ToRelation string
	ToAttr     string
}

// Relation is the schema of one table within a source.
type Relation struct {
	Source      string
	Name        string
	Attributes  []Attribute
	ForeignKeys []ForeignKey
}

// QualifiedName returns "source.name", the catalog-wide identifier.
func (r *Relation) QualifiedName() string {
	return r.Source + "." + r.Name
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attributes {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the relation has an attribute with the given name.
func (r *Relation) HasAttr(name string) bool { return r.AttrIndex(name) >= 0 }

// AttrNames returns the attribute names in declaration order.
func (r *Relation) AttrNames() []string {
	names := make([]string, len(r.Attributes))
	for i, a := range r.Attributes {
		names[i] = a.Name
	}
	return names
}

// Validate checks structural well-formedness: non-empty names, no duplicate
// attributes, and foreign keys referring to declared attributes.
func (r *Relation) Validate() error {
	if r.Source == "" || r.Name == "" {
		return fmt.Errorf("relstore: relation %q.%q: empty source or name", r.Source, r.Name)
	}
	seen := make(map[string]struct{}, len(r.Attributes))
	for _, a := range r.Attributes {
		if a.Name == "" {
			return fmt.Errorf("relstore: relation %s: empty attribute name", r.QualifiedName())
		}
		if _, dup := seen[a.Name]; dup {
			return fmt.Errorf("relstore: relation %s: duplicate attribute %q", r.QualifiedName(), a.Name)
		}
		seen[a.Name] = struct{}{}
	}
	for _, fk := range r.ForeignKeys {
		if !r.HasAttr(fk.FromAttr) {
			return fmt.Errorf("relstore: relation %s: foreign key from unknown attribute %q", r.QualifiedName(), fk.FromAttr)
		}
		if fk.ToRelation == "" || fk.ToAttr == "" {
			return fmt.Errorf("relstore: relation %s: incomplete foreign key from %q", r.QualifiedName(), fk.FromAttr)
		}
	}
	return nil
}

// AttrRef identifies one attribute of one relation, catalog-wide.
type AttrRef struct {
	Relation string // qualified "source.relation"
	Attr     string
}

// String returns "source.relation.attr".
func (a AttrRef) String() string { return a.Relation + "." + a.Attr }

// ParseAttrRef parses "source.relation.attr" back into an AttrRef. The
// relation part may itself contain no dots beyond the source separator.
func ParseAttrRef(s string) (AttrRef, error) {
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return AttrRef{}, fmt.Errorf("relstore: malformed attribute reference %q", s)
	}
	rel, attr := s[:i], s[i+1:]
	j := strings.Index(rel, ".")
	if j <= 0 || j == len(rel)-1 {
		return AttrRef{}, fmt.Errorf("relstore: attribute reference %q lacks a source qualifier", s)
	}
	return AttrRef{Relation: rel, Attr: attr}, nil
}
