package relstore

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// FuzzFindValuesEquivalence fuzzes the keyword side of the FindValues
// contract: for an ARBITRARY utf-8 (or invalid-utf-8) keyword, the
// reference full scan, the single-shard inverted index and the multi-shard
// inverted index must return deep-equal hits — content, row counts, order
// and nil-ness. The catalogs are fixed (built once, read-only), so the fuzz
// workers exercise the concurrent read paths too. CI runs this as a short
// -fuzz smoke on every push.

var (
	fuzzOnce sync.Once
	fuzzScan *Catalog // answers via ScanFindValues (1 shard)
	fuzzIdx1 *Catalog // single-shard index
	fuzzIdx7 *Catalog // multi-shard index, parallel fan
)

func fuzzCatalogs() (*Catalog, *Catalog, *Catalog) {
	fuzzOnce.Do(func() {
		tables := randomIndexTables(rand.New(rand.NewSource(2024)), 16)
		build := func(shards int) *Catalog {
			c := NewCatalogSharded(shards)
			c.SetParallelism(4)
			for _, tb := range tables {
				if err := c.AddTable(tb); err != nil {
					panic(err)
				}
			}
			c.BuildValueIndex(4)
			return c
		}
		fuzzScan = build(1)
		fuzzIdx1 = build(1)
		fuzzIdx7 = build(7)
	})
	return fuzzScan, fuzzIdx1, fuzzIdx7
}

func FuzzFindValuesEquivalence(f *testing.F) {
	for _, kw := range []string{
		"", " ", "membrane", "MEMBRANE", "plasma membrane", "GO:0005886",
		"ab", "é", "東京", "βeta", "ngström", "005886", "kringle domain",
		"no-such-keyword-zzqqx", "a b c", "\x00", "\xff\xfe invalid",
		"𝔘nicode", "É̃ composed",
	} {
		f.Add(kw)
	}
	f.Fuzz(func(t *testing.T, kw string) {
		scanCat, idx1, idx7 := fuzzCatalogs()
		want := scanCat.ScanFindValues(kw)
		if got := idx1.IndexFindValues(kw); !reflect.DeepEqual(got, want) {
			t.Errorf("single-shard index diverged from scan on %q\nindex: %v\nscan:  %v", kw, got, want)
		}
		if got := idx7.IndexFindValues(kw); !reflect.DeepEqual(got, want) {
			t.Errorf("sharded index diverged from scan on %q\nindex: %v\nscan:  %v", kw, got, want)
		}
	})
}

// FuzzExecuteEquivalence fuzzes the executor-equivalence contract on the
// value side: for ARBITRARY row values (NUL bytes, spaces, empty strings,
// invalid utf-8 — whatever the fuzzer invents), the streaming pipeline must
// stay deep-equal to the materialised reference executor on a two-table
// equi-join + projection-dedup query, and ExecuteTopKUnion must equal the
// full union's top-k prefix. This is the fuzz arm of the row-identity
// regression tests: the old fmt.Sprint dedup key and "\x00"-separator join
// keys are exactly the kind of encoding this target finds. CI runs it as a
// short -fuzz smoke on every push.
// FuzzPlanEquivalence fuzzes the planner-equivalence contract: for ARBITRARY
// row values, the cost-based join order (with its self-filter pushdown and
// cross-branch subplan cache) must return exactly what the unplanned spec
// order returns — standalone, through PlanBatch, and through the top-k union.
// The query shapes cover what the planner actually decides: a reorderable
// two-atom equi-join with a selective selection, a self-filter condition, and
// a duplicated branch (the easiest shared subtree). CI runs it as a short
// -fuzz smoke on every push.
func FuzzPlanEquivalence(f *testing.F) {
	f.Add("a\x00", "b", "a")
	f.Add("a b", "c", "a")
	f.Add("", " ", "")
	f.Add("x", "\x00x", "x\x00")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		lrel := &Relation{Source: "l", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
		lt, err := NewTable(lrel, [][]string{{a, b}, {b, c}, {c, c}, {a, a}})
		if err != nil {
			t.Fatal(err)
		}
		rrel := &Relation{Source: "r", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
		rt, err := NewTable(rrel, [][]string{{a, "\x00" + b}, {b, c}, {c + "\x00", c}})
		if err != nil {
			t.Fatal(err)
		}
		cat := NewCatalogSharded(2)
		if err := cat.AddTable(lt); err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(rt); err != nil {
			t.Fatal(err)
		}
		cat.BuildValueIndex(1)
		off := cat.Clone()
		off.UsePlanner(false)
		join := &ConjunctiveQuery{
			Atoms: []Atom{{Relation: "l.r", Alias: "t0"}, {Relation: "r.r", Alias: "t1"}},
			Joins: []JoinCond{
				{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"},
				{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t0", RightAttr: "y"}, // self-filter
			},
			Selects: []SelCond{{Alias: "t1", Attr: "y", Op: OpEq, Value: c}},
			Project: []ProjCol{{Alias: "t0", Attr: "x", As: "v"}, {Alias: "t1", Attr: "y", As: "w"}},
			Cost:    1,
		}
		sel := &ConjunctiveQuery{
			Atoms:   []Atom{{Relation: "l.r", Alias: "t0"}},
			Selects: []SelCond{{Alias: "t0", Attr: "x", Op: OpContains, Value: a}},
			Project: []ProjCol{{Alias: "t0", Attr: "x", As: "v"}, {Alias: "t0", Attr: "y", As: "w"}},
			Cost:    2,
		}
		dup := *join
		queries := []*ConjunctiveQuery{join, sel, &dup}
		prov := []string{"b0", "b1", "b2"}
		bp, err := PlanBatch(cat, queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			want, err := Execute(off, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Execute(cat, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("planner divergence on %q/%q/%q query %d\nplanned:   %v\nunplanned: %v",
					a, b, c, i, got, want)
			}
			batched, err := bp.Execute(i)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batched, want) {
				t.Errorf("CSE divergence on %q/%q/%q query %d\nbatched:   %v\nunplanned: %v",
					a, b, c, i, batched, want)
			}
		}
		for _, k := range []int{1, 3, 50} {
			want, _, err := ExecuteTopKUnion(off, queries, k, prov)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ExecuteTopKUnion(cat, queries, k, prov)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("top-k planner divergence on %q/%q/%q k=%d", a, b, c, k)
			}
		}
	})
}

func FuzzExecuteEquivalence(f *testing.F) {
	f.Add("a\x00", "b", "a")
	f.Add("a b", "c", "a")
	f.Add("", " ", "")
	f.Add("x", "\x00x", "x\x00")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		lrel := &Relation{Source: "l", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
		lt, err := NewTable(lrel, [][]string{{a, b}, {b, c}, {a + "\x00", "\x00" + b}, {c, c}})
		if err != nil {
			t.Fatal(err)
		}
		rrel := &Relation{Source: "r", Name: "r", Attributes: []Attribute{{Name: "x"}, {Name: "y"}}}
		rt, err := NewTable(rrel, [][]string{{a, "\x00" + b}, {b, c}, {a + " ", b}, {c + "\x00", c}})
		if err != nil {
			t.Fatal(err)
		}
		cat := NewCatalogSharded(2)
		if err := cat.AddTable(lt); err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(rt); err != nil {
			t.Fatal(err)
		}
		join := &ConjunctiveQuery{
			Atoms: []Atom{{Relation: "l.r", Alias: "t0"}, {Relation: "r.r", Alias: "t1"}},
			Joins: []JoinCond{
				{LeftAlias: "t0", LeftAttr: "x", RightAlias: "t1", RightAttr: "x"},
				{LeftAlias: "t0", LeftAttr: "y", RightAlias: "t1", RightAttr: "y"},
			},
			Project: []ProjCol{{Alias: "t0", Attr: "x", As: "v"}, {Alias: "t1", Attr: "y", As: "w"}},
			Cost:    1,
		}
		proj := &ConjunctiveQuery{
			Atoms:   []Atom{{Relation: "l.r", Alias: "t0"}},
			Project: []ProjCol{{Alias: "t0", Attr: "x", As: "v"}, {Alias: "t0", Attr: "y", As: "w"}},
			Cost:    2,
		}
		queries := []*ConjunctiveQuery{join, proj}
		prov := []string{"b0", "b1"}
		branches := make([]Branch, len(queries))
		for i, q := range queries {
			want, err := ExecuteMaterialised(cat, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ExecuteStream(cat, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("executor divergence on %q/%q/%q query %d\nstreaming:    %v\nmaterialised: %v",
					a, b, c, i, got, want)
			}
			branches[i] = Branch{Result: want, Cost: q.Cost, Provenance: prov[i]}
		}
		full := DisjointUnion(branches)
		for _, k := range []int{1, 3, 50} {
			got, _, err := ExecuteTopKUnion(cat, queries, k, prov)
			if err != nil {
				t.Fatal(err)
			}
			want := full.TopK(k)
			if len(got.Rows) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got.Rows, want)) {
				t.Errorf("top-k union divergence on %q/%q/%q k=%d", a, b, c, k)
			}
		}
	})
}
