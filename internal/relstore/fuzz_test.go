package relstore

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// FuzzFindValuesEquivalence fuzzes the keyword side of the FindValues
// contract: for an ARBITRARY utf-8 (or invalid-utf-8) keyword, the
// reference full scan, the single-shard inverted index and the multi-shard
// inverted index must return deep-equal hits — content, row counts, order
// and nil-ness. The catalogs are fixed (built once, read-only), so the fuzz
// workers exercise the concurrent read paths too. CI runs this as a short
// -fuzz smoke on every push.

var (
	fuzzOnce sync.Once
	fuzzScan *Catalog // answers via ScanFindValues (1 shard)
	fuzzIdx1 *Catalog // single-shard index
	fuzzIdx7 *Catalog // multi-shard index, parallel fan
)

func fuzzCatalogs() (*Catalog, *Catalog, *Catalog) {
	fuzzOnce.Do(func() {
		tables := randomIndexTables(rand.New(rand.NewSource(2024)), 16)
		build := func(shards int) *Catalog {
			c := NewCatalogSharded(shards)
			c.SetParallelism(4)
			for _, tb := range tables {
				if err := c.AddTable(tb); err != nil {
					panic(err)
				}
			}
			c.BuildValueIndex(4)
			return c
		}
		fuzzScan = build(1)
		fuzzIdx1 = build(1)
		fuzzIdx7 = build(7)
	})
	return fuzzScan, fuzzIdx1, fuzzIdx7
}

func FuzzFindValuesEquivalence(f *testing.F) {
	for _, kw := range []string{
		"", " ", "membrane", "MEMBRANE", "plasma membrane", "GO:0005886",
		"ab", "é", "東京", "βeta", "ngström", "005886", "kringle domain",
		"no-such-keyword-zzqqx", "a b c", "\x00", "\xff\xfe invalid",
		"𝔘nicode", "É̃ composed",
	} {
		f.Add(kw)
	}
	f.Fuzz(func(t *testing.T, kw string) {
		scanCat, idx1, idx7 := fuzzCatalogs()
		want := scanCat.ScanFindValues(kw)
		if got := idx1.IndexFindValues(kw); !reflect.DeepEqual(got, want) {
			t.Errorf("single-shard index diverged from scan on %q\nindex: %v\nscan:  %v", kw, got, want)
		}
		if got := idx7.IndexFindValues(kw); !reflect.DeepEqual(got, want) {
			t.Errorf("sharded index diverged from scan on %q\nindex: %v\nscan:  %v", kw, got, want)
		}
	})
}
