package relstore

import (
	"bytes"
	"reflect"
	"testing"
)

func binaryFixtureCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalogSharded(4)
	rels := []*Relation{
		{
			Source: "dblp",
			Name:   "pubs",
			Attributes: []Attribute{
				{Name: "id", Type: TypeInt},
				{Name: "title", Type: TypeString},
				{Name: "score", Type: TypeFloat},
			},
		},
		{
			Source: "dblp",
			Name:   "authors",
			Attributes: []Attribute{
				{Name: "pub", Type: TypeInt},
				{Name: "name", Type: TypeString},
			},
			ForeignKeys: []ForeignKey{{FromAttr: "pub", ToRelation: "dblp.pubs", ToAttr: "id"}},
		},
		{
			Source:     "geo",
			Name:       "sites",
			Attributes: []Attribute{{Name: "place", Type: TypeString}},
		},
	}
	rows := [][][]string{
		{{"1", "Sensor Fusion in Plants", "0.9"}, {"2", "Protein Signaling", "0.5"}, {"3", "", "1.25"}},
		{{"1", "O'Brien"}, {"2", "Zoë Müller"}, {"2", "O'Brien"}},
		{{"Cañon City"}, {"\"quoted\" place"}, {""}},
	}
	for i, rel := range rels {
		tab, err := NewTable(rel, rows[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCatalogBinaryRoundTrip(t *testing.T) {
	c := binaryFixtureCatalog(t)
	var buf bytes.Buffer
	if err := c.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCatalogBinary(buf.Bytes(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.RelationNames(), c2.RelationNames()) {
		t.Fatalf("relation names differ: %v vs %v", c.RelationNames(), c2.RelationNames())
	}
	for _, qn := range c.RelationNames() {
		a, b := c.Table(qn), c2.Table(qn)
		if !reflect.DeepEqual(a.Relation, b.Relation) {
			t.Errorf("%s: schema differs: %+v vs %+v", qn, a.Relation, b.Relation)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row count differs", qn)
		}
		for i := range a.Rows {
			if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
				t.Errorf("%s row %d: %v vs %v", qn, i, a.Rows[i], b.Rows[i])
			}
		}
	}
	// A different shard count must load the same logical catalog.
	c3, err := LoadCatalogBinary(buf.Bytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.RelationNames(), c3.RelationNames()) {
		t.Error("shard count changed decoded catalog")
	}
}

func TestCatalogBinaryDeterministic(t *testing.T) {
	c := binaryFixtureCatalog(t)
	var a, b bytes.Buffer
	if err := c.SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	c.BuildValueIndex(2)
	if err := c.SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("catalog encoding not deterministic")
	}
	var sa, sb bytes.Buffer
	if err := c.SaveSegments(&sa); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSegments(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Error("segment encoding not deterministic")
	}
}

// TestSegmentsRoundTrip pins the re-point load path: segments decoded by
// LoadSegments must answer every keyword exactly like freshly built ones,
// and must count as built (no lazy rebuild on first use).
func TestSegmentsRoundTrip(t *testing.T) {
	c := binaryFixtureCatalog(t)
	c.BuildValueIndex(2)
	var catBuf, segBuf bytes.Buffer
	if err := c.SaveBinary(&catBuf); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSegments(&segBuf); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCatalogBinary(catBuf.Bytes(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadSegments(segBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got, want := c2.IndexedRelations(), c.NumRelations(); got != want {
		t.Fatalf("loaded catalog has %d built segments, want %d", got, want)
	}
	for _, kw := range []string{"brien", "o'brien", "plant", "zoë", "cañon", "QUOTED", "sign", "x", "", "1.25"} {
		want := c.FindValues(kw)
		got := c2.FindValues(kw)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("FindValues(%q): %v vs %v", kw, want, got)
		}
		// And against the reference scan, closing the loop.
		if scan := c2.ScanFindValues(kw); !reflect.DeepEqual(scan, got) {
			t.Errorf("FindValues(%q) disagrees with scan: %v vs %v", kw, got, scan)
		}
	}
}

// TestSegmentsPartialSave: only built segments persist; the rest rebuild
// lazily after load with identical answers.
func TestSegmentsPartialSave(t *testing.T) {
	c := binaryFixtureCatalog(t)
	c.EnsureIndexed("dblp.pubs")
	var catBuf, segBuf bytes.Buffer
	if err := c.SaveBinary(&catBuf); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSegments(&segBuf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCatalogBinary(catBuf.Bytes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadSegments(segBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got := c2.IndexedRelations(); got != 1 {
		t.Fatalf("loaded %d segments, want 1", got)
	}
	if want, got := c.FindValues("brien"), c2.FindValues("brien"); !reflect.DeepEqual(want, got) {
		t.Errorf("lazy rebuild after partial load diverged: %v vs %v", want, got)
	}
}

func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	c := binaryFixtureCatalog(t)
	c.BuildValueIndex(1)
	var catBuf, segBuf bytes.Buffer
	if err := c.SaveBinary(&catBuf); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSegments(&segBuf); err != nil {
		t.Fatal(err)
	}
	// Truncations at any point must error, never panic. (Bit flips are the
	// storage container's CRC's job; the codec only owes structural safety.)
	for cut := 0; cut < catBuf.Len(); cut += 7 {
		if _, err := LoadCatalogBinary(catBuf.Bytes()[:cut], 2); err == nil {
			// A cut landing exactly after a whole table count of 0 tables
			// can be valid; only the empty prefix of the magic must fail.
			if cut < 8 {
				t.Errorf("catalog truncated to %d bytes accepted", cut)
			}
		}
	}
	for cut := 0; cut < segBuf.Len(); cut += 7 {
		c2, err := LoadCatalogBinary(catBuf.Bytes(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.LoadSegments(segBuf.Bytes()[:cut]); err == nil && cut < 8 {
			t.Errorf("segments truncated to %d bytes accepted", cut)
		}
	}
	if _, err := LoadCatalogBinary([]byte("garbage-not-a-catalog"), 2); err == nil {
		t.Error("garbage accepted as catalog")
	}
}
