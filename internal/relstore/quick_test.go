package relstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDisjointUnionProperties checks union invariants over randomized
// branch sets: total row count is the sum of branch rows, output costs are
// non-decreasing, every branch's columns appear in the unified schema, and
// values land under their own column names.
func TestDisjointUnionProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nBranches := 1 + r.Intn(4)
		branches := make([]Branch, nBranches)
		totalRows := 0
		for b := range branches {
			nCols := 1 + r.Intn(3)
			cols := make([]string, nCols)
			for c := range cols {
				cols[c] = fmt.Sprintf("col%d", r.Intn(5)) // overlapping names
			}
			// Column names must be unique within one branch.
			seen := map[string]bool{}
			for c := range cols {
				for seen[cols[c]] {
					cols[c] += "x"
				}
				seen[cols[c]] = true
			}
			nRows := r.Intn(4)
			rows := make([][]string, nRows)
			for i := range rows {
				row := make([]string, nCols)
				for c := range row {
					row[c] = fmt.Sprintf("v%d-%d-%d", b, i, c)
				}
				rows[i] = row
			}
			totalRows += nRows
			branches[b] = Branch{
				Result:     &ResultSet{Columns: cols, Rows: rows},
				Cost:       float64(r.Intn(10)) / 2,
				Provenance: fmt.Sprintf("q%d", b),
			}
		}
		u := DisjointUnion(branches)
		if len(u.Rows) != totalRows {
			return false
		}
		colIdx := make(map[string]int, len(u.Columns))
		for i, c := range u.Columns {
			if _, dup := colIdx[c]; dup {
				return false // unified schema must not duplicate columns
			}
			colIdx[c] = i
		}
		for i := 1; i < len(u.Rows); i++ {
			if u.Rows[i].Cost < u.Rows[i-1].Cost {
				return false // ranking must be non-decreasing
			}
		}
		// Every branch value must appear under its own column.
		for b, br := range branches {
			for ri, row := range br.Result.Rows {
				found := false
				for _, ur := range u.Rows {
					if ur.Branch != b {
						continue
					}
					match := true
					for c, col := range br.Result.Columns {
						if ur.Values[colIdx[col]] != row[c] {
							match = false
							break
						}
					}
					if match {
						found = true
						break
					}
				}
				if !found {
					t.Logf("branch %d row %d lost", b, ri)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExecuteJoinOrderInvariance: permuting atoms and flipping join sides
// must not change the result set.
func TestExecuteJoinOrderInvariance(t *testing.T) {
	c := testCatalog(t)
	base := &ConjunctiveQuery{
		Atoms: []Atom{
			{Relation: "go.term", Alias: "t"},
			{Relation: "ip.interpro2go", Alias: "x"},
			{Relation: "ip.entry", Alias: "e"},
		},
		Joins: []JoinCond{
			{LeftAlias: "t", LeftAttr: "acc", RightAlias: "x", RightAttr: "go_id"},
			{LeftAlias: "x", LeftAttr: "entry_ac", RightAlias: "e", RightAttr: "entry_ac"},
		},
		Project: []ProjCol{
			{Alias: "t", Attr: "name", As: "term"},
			{Alias: "e", Attr: "name", As: "entry"},
		},
	}
	want, err := Execute(c, base)
	if err != nil {
		t.Fatal(err)
	}

	variants := []*ConjunctiveQuery{
		{ // atoms reversed
			Atoms: []Atom{base.Atoms[2], base.Atoms[1], base.Atoms[0]},
			Joins: base.Joins, Project: base.Project,
		},
		{ // join sides flipped
			Atoms: base.Atoms,
			Joins: []JoinCond{
				{LeftAlias: "x", LeftAttr: "go_id", RightAlias: "t", RightAttr: "acc"},
				{LeftAlias: "e", LeftAttr: "entry_ac", RightAlias: "x", RightAttr: "entry_ac"},
			},
			Project: base.Project,
		},
		{ // joins reordered
			Atoms:   base.Atoms,
			Joins:   []JoinCond{base.Joins[1], base.Joins[0]},
			Project: base.Project,
		},
	}
	for i, v := range variants {
		got, err := Execute(c, v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Errorf("variant %d differs:\nwant %v\ngot  %v", i, want.Rows, got.Rows)
		}
	}
}

// TestSignatureQuickProperties: signatures are alias-invariant and
// join-side-invariant over random structures.
func TestSignatureQuickProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel1 := fmt.Sprintf("s%d.r%d", r.Intn(3), r.Intn(3))
		rel2 := fmt.Sprintf("s%d.r%d", r.Intn(3), r.Intn(3))
		a := &ConjunctiveQuery{
			Atoms: []Atom{{Relation: rel1, Alias: "a1"}, {Relation: rel2, Alias: "a2"}},
			Joins: []JoinCond{{LeftAlias: "a1", LeftAttr: "x", RightAlias: "a2", RightAttr: "y"}},
		}
		b := &ConjunctiveQuery{
			Atoms: []Atom{{Relation: rel2, Alias: "zz"}, {Relation: rel1, Alias: "qq"}},
			Joins: []JoinCond{{LeftAlias: "zz", LeftAttr: "y", RightAlias: "qq", RightAttr: "x"}},
		}
		return a.Signature() == b.Signature()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
