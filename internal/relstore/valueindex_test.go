package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"qint/internal/text"
)

// The property under test: IndexFindValues is observationally identical to
// ScanFindValues — same hits, same row counts, same order, same nil-ness —
// for ANY catalog and ANY keyword. The scan is the executable
// specification; the index is an optimisation that must never change a
// single byte of the answer.

// indexVocab mixes the value shapes the normaliser and the trigram index
// have to agree on: plain words, multi-word phrases, identifiers with
// punctuation, unicode (accents, greek, CJK), digits, strings that
// normalise to nothing, and near-collisions sharing trigrams.
var indexVocab = []string{
	"plasma membrane", "membrane", "Membrane protein", "nucleus", "nucleolus",
	"GO:0005886", "GO:0005634", "IPR000001", "IPR000002",
	"zinc finger", "Zinc Finger Domain", "kringle", "Kringle domain",
	"café au lait", "naïve", "Ångström", "βeta-catenin", "東京タワー", "protéine",
	"!!!", "@#$%", "  ", "--::--", "42", "3.14159", "0005886",
	"a", "ab", "abc", "abcd", "membranes and proteins",
	"transmembrane transport", "the membrane-bound organelle",
	"PUB0001", "pub0001x", "xPUB0001", "entry_ac", "entry ac",
}

// randomIndexTables builds random tables whose values are drawn from
// indexVocab (sometimes empty, sometimes random composites), so keyword
// hits land across tables and attributes. It panics on construction errors
// (test-only code; the fuzz targets reuse it without a testing.T). minTables
// lets the shard suite force catalogs wide enough to span many shards.
func randomIndexTables(r *rand.Rand, minTables int) []*Table {
	var out []*Table
	nTables := minTables + r.Intn(4)
	if nTables < 1 {
		nTables = 1
	}
	for ti := 0; ti < nTables; ti++ {
		nAttr := 1 + r.Intn(4)
		attrs := make([]Attribute, nAttr)
		for ai := range attrs {
			attrs[ai] = Attribute{Name: fmt.Sprintf("attr%d", ai)}
		}
		rel := &Relation{
			Source:     fmt.Sprintf("src%d", ti%3),
			Name:       fmt.Sprintf("tab%d", ti),
			Attributes: attrs,
		}
		rows := make([][]string, r.Intn(30))
		for i := range rows {
			row := make([]string, nAttr)
			for ai := range row {
				switch r.Intn(10) {
				case 0:
					row[ai] = "" // empty values are skipped by both impls
				case 1:
					// Composite phrase: stresses multi-token and space grams.
					row[ai] = indexVocab[r.Intn(len(indexVocab))] + " " +
						indexVocab[r.Intn(len(indexVocab))]
				default:
					row[ai] = indexVocab[r.Intn(len(indexVocab))]
				}
			}
			rows[i] = row
		}
		tb, err := NewTable(rel, rows)
		if err != nil {
			panic(err)
		}
		out = append(out, tb)
	}
	return out
}

// randomIndexCatalog builds a catalog over randomIndexTables at the default
// shard count.
func randomIndexCatalog(t *testing.T, r *rand.Rand) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, tb := range randomIndexTables(r, 1) {
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// indexKeywords is the keyword battery every random catalog is probed with:
// present and absent terms, unicode, empty, whitespace- and punctuation-only
// (both normalise to nothing), single- and two-rune keywords (below the
// trigram width), exact tokens, substrings of tokens, multi-token phrases,
// and whole values.
func indexKeywords(r *rand.Rand, c *Catalog) []string {
	kws := []string{
		"", " ", "\t\n", "!?;", "€∞", // normalise to ""
		"a", "é", "京", "ab", "GO", "aβ", // shorter than a trigram
		"membrane", "MEMBRANE", "Membrane Protein", "plasma membrane",
		"mbran", "embr", "005886", "GO:0005886", "kringle domain",
		"no-such-keyword-zzqqx", "zzz zzz zzz",
		"café", "βeta", "東京", "ngström",
	}
	// A few keywords carved from actual catalog values: whole value, one
	// token, and an inner substring of a token (rune-safe).
	for _, qn := range c.RelationNames() {
		tb := c.Table(qn)
		for _, row := range tb.Rows {
			for _, v := range row {
				if v == "" || r.Intn(6) != 0 {
					continue
				}
				kws = append(kws, v)
				norm := text.Normalize(v)
				toks := text.Tokenize(v)
				if len(toks) > 0 {
					kws = append(kws, toks[r.Intn(len(toks))])
				}
				if rn := []rune(norm); len(rn) > 2 {
					lo := r.Intn(len(rn) - 2)
					hi := lo + 2 + r.Intn(len(rn)-lo-2+1)
					kws = append(kws, string(rn[lo:hi]))
				}
			}
		}
	}
	return kws
}

// TestFindValuesScanIndexEquivalence is the metamorphic suite: across
// randomised catalogs and the full keyword battery, the index answer must
// be deep-equal to the reference scan — content, counts, order and nil-ness.
func TestFindValuesScanIndexEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			c := randomIndexCatalog(t, r)
			for _, kw := range indexKeywords(r, c) {
				scan := c.ScanFindValues(kw)
				idx := c.IndexFindValues(kw)
				if !reflect.DeepEqual(scan, idx) {
					t.Fatalf("FindValues(%q) diverged\nscan:  %v\nindex: %v", kw, scan, idx)
				}
			}
		})
	}
}

// TestFindValuesModeDispatch pins the FindValues switch: index mode by
// default, reference scan behind UseScanFindValues, identical answers, and
// the mode surviving Clone.
func TestFindValuesModeDispatch(t *testing.T) {
	c := testCatalog(t)
	idx := c.FindValues("membrane")
	c.UseScanFindValues(true)
	scan := c.FindValues("membrane")
	if !reflect.DeepEqual(idx, scan) {
		t.Fatalf("mode dispatch diverged\nindex: %v\nscan:  %v", idx, scan)
	}
	if len(idx) != 2 {
		t.Fatalf("FindValues(membrane) = %v, want 2 hits", idx)
	}
	clone := c.Clone()
	if !reflect.DeepEqual(clone.FindValues("membrane"), scan) {
		t.Error("clone did not inherit scan mode")
	}
	c.UseScanFindValues(false)
	if !reflect.DeepEqual(c.FindValues("membrane"), idx) {
		t.Error("switching back to index mode changed the answer")
	}
}

// TestIndexFindValuesConcurrent hammers IndexFindValues from many
// goroutines against a catalog whose segments have NOT been pre-built, so
// lazy segment construction races with itself and with reads. Run under
// -race; every answer must equal the quiesced reference scan.
func TestIndexFindValuesConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	c := randomIndexCatalog(t, r)
	kws := []string{"membrane", "GO:0005886", "ab", "é", "plasma membrane", "005886", "zzqqx", ""}
	want := make([][]ValueHit, len(kws))
	ref := randomIndexCatalog(t, rand.New(rand.NewSource(99))) // identical build
	for i, kw := range kws {
		want[i] = ref.ScanFindValues(kw)
	}

	const readers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g + i) % len(kws)
				if got := c.IndexFindValues(kws[k]); !reflect.DeepEqual(got, want[k]) {
					errc <- fmt.Errorf("reader %d: FindValues(%q) = %v, want %v", g, kws[k], got, want[k])
					return
				}
			}
			errc <- nil
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestIndexIncrementalAcrossClones pins the copy-on-write contract: cloning
// shares built segments, AddTable on the clone indexes ONLY the new table,
// and the original catalog's answers never change — concurrent readers of
// the original race the clone's writer under -race.
func TestIndexIncrementalAcrossClones(t *testing.T) {
	c := testCatalog(t)
	c.BuildValueIndex(4)
	if got := c.IndexedRelations(); got != c.NumRelations() {
		t.Fatalf("IndexedRelations = %d, want %d", got, c.NumRelations())
	}
	wantOrig := c.IndexFindValues("membrane")

	clone := c.Clone()
	if got := clone.IndexedRelations(); got != clone.NumRelations() {
		t.Fatalf("clone should inherit built segments: %d of %d", got, clone.NumRelations())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := c.IndexFindValues("membrane"); !reflect.DeepEqual(got, wantOrig) {
					t.Errorf("original catalog's answer changed under a clone writer: %v", got)
					return
				}
			}
		}()
	}

	// Writer: grow the clone with a table that also matches "membrane".
	rel := &Relation{Source: "new", Name: "notes",
		Attributes: []Attribute{{Name: "body"}}}
	tb, err := NewTable(rel, [][]string{{"membrane transport"}, {"unrelated"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	clone.EnsureIndexed("new.notes")
	close(stop)
	wg.Wait()

	// Incremental: exactly one segment was added, no rebuilds.
	if got := clone.IndexedRelations(); got != clone.NumRelations() {
		t.Fatalf("clone IndexedRelations = %d, want %d", got, clone.NumRelations())
	}
	got := clone.IndexFindValues("membrane")
	want := clone.ScanFindValues("membrane")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clone index diverged from scan after AddTable\nindex: %v\nscan:  %v", got, want)
	}
	if len(got) != len(wantOrig)+1 {
		t.Fatalf("clone should see the new table's hit: %v", got)
	}
	if !reflect.DeepEqual(c.IndexFindValues("membrane"), wantOrig) {
		t.Fatal("original catalog sees the clone's table")
	}
}

// TestValueSetFromIndexSegments pins the ValueSet derivation: with segments
// built, ValueSet comes from index entries and must equal the row-scan set
// for every attribute, and ValueJaccard must be bit-identical between an
// indexed catalog and an unindexed twin.
func TestValueSetFromIndexSegments(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	indexed := randomIndexCatalog(t, r)
	indexed.BuildValueIndex(4)
	plain := randomIndexCatalog(t, rand.New(rand.NewSource(7))) // identical twin, no index

	refs := indexed.AttrRefs()
	if !reflect.DeepEqual(refs, plain.AttrRefs()) {
		t.Fatal("twin catalogs differ")
	}
	for _, ref := range refs {
		a, b := indexed.ValueSet(ref), plain.ValueSet(ref)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ValueSet(%v) diverged\nindex-derived: %v\nrow-scan:      %v", ref, a, b)
		}
	}
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			ji := indexed.ValueJaccard(refs[i], refs[j])
			jp := plain.ValueJaccard(refs[i], refs[j])
			if ji != jp {
				t.Fatalf("ValueJaccard(%v, %v): index-derived %v != row-scan %v",
					refs[i], refs[j], ji, jp)
			}
			if oi, op := indexed.ValueOverlap(refs[i], refs[j]), plain.ValueOverlap(refs[i], refs[j]); oi != op {
				t.Fatalf("ValueOverlap(%v, %v): %d != %d", refs[i], refs[j], oi, op)
			}
		}
	}
	// Unknown relation/attribute still answer nil through the index path.
	if indexed.ValueSet(AttrRef{Relation: "missing.rel", Attr: "a"}) != nil {
		t.Error("missing relation should give nil value set")
	}
	if indexed.ValueSet(AttrRef{Relation: refs[0].Relation, Attr: "ghost"}) != nil {
		t.Error("missing attribute should give nil value set")
	}
}

// TestFindValuesShortKeywords pins the below-trigram-width edge: empty and
// normalise-to-empty keywords return nil, and one- and two-rune keywords
// take the deterministic fallback with answers identical to the scan.
func TestFindValuesShortKeywords(t *testing.T) {
	c := NewCatalog()
	rel := &Relation{Source: "s", Name: "t",
		Attributes: []Attribute{{Name: "v"}}}
	tb, err := NewTable(rel, [][]string{
		{"ab"}, {"abc"}, {"a b"}, {"xaby"}, {"AB"}, {"Ω"}, {"ωmega"},
		{"b"}, {"!!"}, {""}, {"a"}, {"ba"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kw   string
		want []string // matching values, in output order (nil = no hits)
	}{
		{"", nil},
		{"   ", nil},
		{"!?", nil}, // punctuation-only: normalises to ""
		// Hits sort by raw value bytes: uppercase before lowercase, and
		// "ωmega" matches "a" (its final rune).
		{"a", []string{"AB", "a", "a b", "ab", "abc", "ba", "xaby", "ωmega"}},
		{"b", []string{"AB", "a b", "ab", "abc", "b", "ba", "xaby"}},
		{"ab", []string{"AB", "ab", "abc", "xaby"}},
		{"a b", []string{"a b"}},
		{"ω", []string{"Ω", "ωmega"}}, // unicode, one rune, case-folded
		{"abc", []string{"abc"}},      // exactly trigram width
		{"zz", nil},
	}
	for _, tc := range cases {
		idx := c.IndexFindValues(tc.kw)
		scan := c.ScanFindValues(tc.kw)
		if !reflect.DeepEqual(idx, scan) {
			t.Errorf("kw %q: index %v != scan %v", tc.kw, idx, scan)
			continue
		}
		var got []string
		for _, h := range idx {
			got = append(got, h.Value)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("kw %q: values = %v, want %v", tc.kw, got, tc.want)
		}
	}
	// Determinism: repeated calls are identical.
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(c.IndexFindValues("a"), c.IndexFindValues("a")) {
			t.Fatal("short-keyword fallback is nondeterministic")
		}
	}
}

// TestIndexRowCounts pins the Rows field through the index path: a value
// appearing in several rows reports its multiplicity, matching the scan.
func TestIndexRowCounts(t *testing.T) {
	c := testCatalog(t)
	hits := c.IndexFindValues("GO:0005886")
	found := false
	for _, h := range hits {
		if h.Ref.Relation == "ip.interpro2go" {
			found = true
			if h.Rows != 2 {
				t.Errorf("GO:0005886 appears in 2 rows of interpro2go, got %d", h.Rows)
			}
		}
	}
	if !found {
		t.Fatalf("expected a hit in ip.interpro2go, got %v", hits)
	}
}
