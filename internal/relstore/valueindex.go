package relstore

import (
	"sort"
	"strings"
	"sync"

	"qint/internal/text"
)

// This file is the incremental inverted value index behind FindValues: a
// character-trigram (plus whole-token) index from normalised text to posting
// lists of distinct attribute values. It replaces the per-keyword full
// catalog scan — previously the dominant per-query cost on large catalogs —
// while preserving the scan's case-insensitive-substring contract exactly
// (ScanFindValues remains as the reference implementation, and the
// metamorphic suite in valueindex_test.go pins byte-identical results).
//
// Structure. The index is sharded by table: each *Table gets one immutable
// segment holding the table's distinct (attribute, value) entries — sorted
// by attribute then value — with each entry's normalised form and row
// count, plus two posting maps over entry ids: every character trigram of
// the normalised value, and every whole token. Segments are built once per
// table (tables are immutable after AddTable) and never mutated, so the
// segment cache is shared across Catalog.Clone exactly like the lazy
// ValueSet cache — a registration that clones the catalog and adds one
// table indexes ONLY that table, and every published copy-on-write
// generation keeps reading the same frozen segments. Lookups that build a
// missing segment synchronise on the cache's own mutex; losers of a racing
// build adopt the winner's segment, so concurrent readers stay race-free
// and observe one canonical segment per table.
//
// Lookup. A keyword is normalised, then:
//   - len ≥ 3 runes: candidates are the intersection of the keyword's
//     trigram posting lists (smallest first; any absent trigram short-
//     circuits to no hits). Candidates whose ids also appear on the
//     keyword's whole-token posting list are accepted outright (a token is
//     always a substring of its value — the exact-token fast path); the
//     rest are verified with one strings.Contains over the precomputed
//     normalised value.
//   - len < 3 runes (shorter than the trigram width): deterministic
//     fallback — every entry of the segment is verified directly. This
//     still touches only distinct values with precomputed normalisations,
//     never raw rows.
//
// Hits from all segments are merged under the same final ordering as the
// reference scan, so results are deterministic and identical in both modes.

// indexEntry is one distinct (attribute, value) pair of a table: the raw
// value, its normalised form, and how many rows carry it.
type indexEntry struct {
	attr int // attribute index within the relation
	val  string
	norm string
	rows int
}

// segment is the immutable per-table shard of the value index.
type segment struct {
	rel       string   // qualified relation name
	attrs     []string // attribute names, declaration order
	entries   []indexEntry
	attrStart []int              // entries[attrStart[i]:attrStart[i+1]] belong to attribute i
	grams     map[string][]int32 // normalised-value trigram -> sorted entry ids
	tokens    map[string][]int32 // normalised-value whole token -> sorted entry ids
}

// valueIndex is one shard's segment cache, shared between a catalog and its
// clones (see Catalog.Clone): segments are keyed by table identity and
// tables are immutable, so a segment stays correct in every catalog
// generation that contains its table.
type valueIndex struct {
	mu   sync.RWMutex
	segs map[*Table]*segment
}

func newValueIndex() *valueIndex {
	return &valueIndex{segs: make(map[*Table]*segment)}
}

// segmentFor returns the table's segment, building it on first use. Safe
// for concurrent use: a racing build is resolved by adopting the winner.
func (x *valueIndex) segmentFor(t *Table) *segment {
	x.mu.RLock()
	s := x.segs[t]
	x.mu.RUnlock()
	if s != nil {
		return s
	}
	s = buildSegment(t)
	x.mu.Lock()
	if won, ok := x.segs[t]; ok {
		s = won
	} else {
		x.segs[t] = s
	}
	x.mu.Unlock()
	return s
}

// built returns the table's segment only if it has already been built —
// the "derive, don't rebuild" path ValueSet uses.
func (x *valueIndex) built(t *Table) *segment {
	x.mu.RLock()
	s := x.segs[t]
	x.mu.RUnlock()
	return s
}

// buildSegment indexes one table: distinct values with row counts per
// attribute, sorted by (attribute, value), plus trigram and token postings
// over the normalised forms. Posting lists come out sorted because entry
// ids are assigned in final entry order.
func buildSegment(t *Table) *segment {
	nAttr := len(t.Relation.Attributes)
	s := &segment{
		rel:       t.Relation.QualifiedName(),
		attrs:     make([]string, nAttr),
		attrStart: make([]int, nAttr+1),
		grams:     make(map[string][]int32),
		tokens:    make(map[string][]int32),
	}
	counts := make([]map[string]int, nAttr)
	for i, a := range t.Relation.Attributes {
		s.attrs[i] = a.Name
		counts[i] = make(map[string]int)
	}
	for _, row := range t.Rows {
		for ai := 0; ai < nAttr; ai++ {
			if v := row[ai]; v != "" {
				counts[ai][v]++
			}
		}
	}
	for ai := 0; ai < nAttr; ai++ {
		s.attrStart[ai] = len(s.entries)
		vals := make([]string, 0, len(counts[ai]))
		for v := range counts[ai] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			s.entries = append(s.entries, indexEntry{
				attr: ai,
				val:  v,
				norm: text.Normalize(v),
				rows: counts[ai][v],
			})
		}
	}
	s.attrStart[nAttr] = len(s.entries)
	for id, e := range s.entries {
		postEntry(s, int32(id), e.norm)
	}
	return s
}

// postEntry adds one entry's distinct trigrams and tokens to the posting
// maps. Ids arrive in increasing order, so each list stays sorted.
func postEntry(s *segment, id int32, norm string) {
	seen := make(map[string]struct{})
	r := []rune(norm)
	for i := 0; i+3 <= len(r); i++ {
		g := string(r[i : i+3])
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		s.grams[g] = append(s.grams[g], id)
	}
	for _, tok := range strings.Fields(norm) {
		key := "\x00" + tok // token namespace, cannot collide with trigrams
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		s.tokens[tok] = append(s.tokens[tok], id)
	}
}

// find appends this segment's hits for the (already normalised, non-empty)
// keyword to out, in (attribute, value) order. trigrams is the keyword's
// deduplicated trigram list, computed once per lookup by the caller; nil
// means the keyword is below the trigram width.
func (s *segment) find(nkw string, trigrams []string, out []ValueHit) []ValueHit {
	if trigrams == nil {
		// Short-keyword fallback: verify every distinct value directly.
		for _, e := range s.entries {
			if strings.Contains(e.norm, nkw) {
				out = append(out, s.hit(e))
			}
		}
		return out
	}
	cand := s.trigramCandidates(trigrams)
	if len(cand) == 0 {
		return out
	}
	// Exact-token fast path: candidate ids on the keyword's whole-token
	// posting list are matches by construction — skip verification.
	exact := s.tokens[nkw]
	ei := 0
	for _, id := range cand {
		for ei < len(exact) && exact[ei] < id {
			ei++
		}
		e := s.entries[id]
		if ei < len(exact) && exact[ei] == id {
			out = append(out, s.hit(e))
			continue
		}
		if strings.Contains(e.norm, nkw) {
			out = append(out, s.hit(e))
		}
	}
	return out
}

func (s *segment) hit(e indexEntry) ValueHit {
	return ValueHit{
		Ref:   AttrRef{Relation: s.rel, Attr: s.attrs[e.attr]},
		Value: e.val,
		Rows:  e.rows,
	}
}

// keywordTrigrams returns the deduplicated trigram list of an
// already-normalised keyword, or nil when it is below the trigram width.
// Computed once per IndexFindValues call and shared by every segment.
func keywordTrigrams(nkw string) []string {
	r := []rune(nkw)
	if len(r) < 3 {
		return nil
	}
	seen := make(map[string]struct{}, len(r))
	grams := make([]string, 0, len(r)-2)
	for i := 0; i+3 <= len(r); i++ {
		g := string(r[i : i+3])
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		grams = append(grams, g)
	}
	return grams
}

// trigramCandidates intersects the posting lists of the keyword's distinct
// trigrams, smallest list first. Any absent trigram means no value can
// contain the keyword.
func (s *segment) trigramCandidates(trigrams []string) []int32 {
	lists := make([][]int32, 0, len(trigrams))
	for _, g := range trigrams {
		l, ok := s.grams[g]
		if !ok {
			return nil
		}
		lists = append(lists, l)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cand := lists[0]
	for _, l := range lists[1:] {
		cand = intersectSorted(cand, l)
		if len(cand) == 0 {
			return nil
		}
	}
	return cand
}

// intersectSorted intersects two ascending id lists. The result aliases
// neither input.
func intersectSorted(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// valueSet materialises the distinct-value set of one attribute from the
// segment's entries — the index-backed ValueSet derivation.
func (s *segment) valueSet(attrIdx int) map[string]struct{} {
	if attrIdx < 0 || attrIdx >= len(s.attrs) {
		return nil
	}
	span := s.entries[s.attrStart[attrIdx]:s.attrStart[attrIdx+1]]
	vs := make(map[string]struct{}, len(span))
	for _, e := range span {
		vs[e.val] = struct{}{}
	}
	return vs
}

// sortHits puts hits into the canonical FindValues order: by relation, then
// attribute, then value. The comparison is field-wise — Ref.String() is not
// injective (a relation name may itself contain dots), and a non-total
// comparator would let sort.Slice leave ties in input order, which now
// varies with the shard count. Both FindValues implementations share this
// total order, so the two are byte-identical — across shard counts too.
func sortHits(hits []ValueHit) {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.Ref.Relation != b.Ref.Relation {
			return a.Ref.Relation < b.Ref.Relation
		}
		if a.Ref.Attr != b.Ref.Attr {
			return a.Ref.Attr < b.Ref.Attr
		}
		return a.Value < b.Value
	})
}

// IndexFindValues answers FindValues from the inverted value index, fanning
// one worker per shard (bounded by the catalog's parallelism) and building
// any missing table segments on the way (each table indexes exactly once;
// registrations therefore only ever index their own new tables). Per-shard
// hits are merged under the canonical (attribute, value) total order, so
// results are identical to ScanFindValues — and across every shard count —
// in content and order.
func (c *Catalog) IndexFindValues(keyword string) []ValueHit {
	kw := text.Normalize(keyword)
	if kw == "" {
		return nil
	}
	trigrams := keywordTrigrams(kw)
	perShard := make([][]ValueHit, len(c.shards))
	c.fanShards(func(si int) {
		sh := c.shards[si]
		var hits []ValueHit
		for _, qn := range sh.order {
			hits = sh.index.segmentFor(sh.tables[qn]).find(kw, trigrams, hits)
		}
		perShard[si] = hits
	})
	var hits []ValueHit
	for _, sh := range perShard {
		hits = append(hits, sh...)
	}
	sortHits(hits)
	return hits
}

// EnsureIndexed builds the value-index segment for one relation if it is
// missing, in the shard the relation hashes into. It is the unit of
// incremental index maintenance: callers registering new tables fan
// EnsureIndexed over their worker pool (one task per table) instead of
// rebuilding anything global.
func (c *Catalog) EnsureIndexed(qualified string) {
	sh := c.shardFor(qualified)
	if t := sh.tables[qualified]; t != nil {
		sh.index.segmentFor(t)
	}
}

// BuildValueIndex builds every missing table segment, fanning one worker
// per shard across at most workers goroutines (workers <= 1 builds
// serially). Tools and benchmarks use it to pre-warm the index; query paths
// build lazily.
func (c *Catalog) BuildValueIndex(workers int) {
	fanIndexed(len(c.shards), workers, func(si int) {
		sh := c.shards[si]
		for _, qn := range sh.order {
			sh.index.segmentFor(sh.tables[qn])
		}
	})
}

// IndexedRelations reports how many of the catalog's relations currently
// have a built index segment (for tests and stats).
func (c *Catalog) IndexedRelations() int {
	n := 0
	for _, sh := range c.shards {
		sh.index.mu.RLock()
		for _, qn := range sh.order {
			if _, ok := sh.index.segs[sh.tables[qn]]; ok {
				n++
			}
		}
		sh.index.mu.RUnlock()
	}
	return n
}
