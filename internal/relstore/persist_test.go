package relstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestCatalogSaveLoadRoundTrip(t *testing.T) {
	c := testCatalog(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumRelations() != c.NumRelations() || c2.NumAttributes() != c.NumAttributes() {
		t.Fatalf("shape mismatch: %d/%d relations, %d/%d attributes",
			c2.NumRelations(), c.NumRelations(), c2.NumAttributes(), c.NumAttributes())
	}
	// Registration order preserved.
	a, b := c.RelationNames(), c2.RelationNames()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Data and foreign keys survive.
	tb := c2.Table("go.term")
	if tb == nil || len(tb.Rows) != 3 {
		t.Fatalf("go.term data lost: %+v", tb)
	}
	rel := c2.Relation("ip.interpro2go")
	if rel == nil || len(rel.ForeignKeys) != 1 {
		t.Errorf("foreign keys lost: %+v", rel)
	}
	// Value indexes work on the loaded catalog.
	ov := c2.ValueOverlap(
		AttrRef{Relation: "go.term", Attr: "acc"},
		AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	if ov != 2 {
		t.Errorf("overlap = %d, want 2", ov)
	}
}

// TestShardedPersistRoundTrip pins the persistence half of the sharding
// contract: a catalog saved at one shard count reloads at ANY shard count
// (the wire form is shard-agnostic) to an equivalent catalog — identical
// registration order, identical FindValues answers through both paths —
// with value-index segments rebuilt lazily on first use rather than eagerly
// at load time.
func TestShardedPersistRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	tables := randomIndexTables(r, 16)
	orig := catalogAt(t, 5, tables)
	orig.BuildValueIndex(4)

	kws := indexKeywords(r, orig)
	fingerprint := func(c *Catalog) string {
		var b strings.Builder
		fmt.Fprintf(&b, "order=%v\n", c.RelationNames())
		for _, kw := range kws {
			fmt.Fprintf(&b, "find %q = %v\n", kw, c.FindValues(kw))
		}
		refs := c.AttrRefs()
		for i := 0; i+1 < len(refs); i += 3 {
			fmt.Fprintf(&b, "overlap %v~%v = %d jac=%.12f\n", refs[i], refs[i+1],
				c.ValueOverlap(refs[i], refs[i+1]), c.ValueJaccard(refs[i], refs[i+1]))
		}
		return b.String()
	}
	want := fingerprint(orig)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 7} {
		loaded, err := LoadCatalogSharded(bytes.NewReader(buf.Bytes()), shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := loaded.ShardCount(); got != shards {
			t.Fatalf("loaded ShardCount = %d, want %d", got, shards)
		}
		// Segments are NOT rebuilt at load time…
		if got := loaded.IndexedRelations(); got != 0 {
			t.Errorf("shards=%d: %d segments built eagerly at load, want lazy rebuild", shards, got)
		}
		if got := fingerprint(loaded); got != want {
			t.Errorf("shards=%d: reloaded catalog diverged from the original\ngot:\n%s\nwant:\n%s", shards, got, want)
		}
		// …but the fingerprint's lookups built them all on the way.
		if got := loaded.IndexedRelations(); got != loaded.NumRelations() {
			t.Errorf("shards=%d: IndexedRelations after lookups = %d, want %d", shards, got, loaded.NumRelations())
		}
		// Saving the reloaded catalog reproduces the original bytes: the
		// wire form is canonical under resharding.
		var buf2 bytes.Buffer
		if err := loaded.Save(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != buf.String() {
			t.Errorf("shards=%d: save/load/save is not byte-stable", shards)
		}
	}
}

func TestLoadCatalogRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nope",
		`{"version": 9}`,
		`{"version":1,"tables":[{"source":"s","name":"r","attributes":[{"Name":"a"}],"rows":[["x","too-wide"]]}]}`,
		`{"version":1,"tables":[{"source":"s","name":"r","attributes":[{"Name":"a"}]},{"source":"s","name":"r","attributes":[{"Name":"a"}]}]}`,
	}
	for i, c := range cases {
		if _, err := LoadCatalog(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
