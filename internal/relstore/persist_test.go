package relstore

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogSaveLoadRoundTrip(t *testing.T) {
	c := testCatalog(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumRelations() != c.NumRelations() || c2.NumAttributes() != c.NumAttributes() {
		t.Fatalf("shape mismatch: %d/%d relations, %d/%d attributes",
			c2.NumRelations(), c.NumRelations(), c2.NumAttributes(), c.NumAttributes())
	}
	// Registration order preserved.
	a, b := c.RelationNames(), c2.RelationNames()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Data and foreign keys survive.
	tb := c2.Table("go.term")
	if tb == nil || len(tb.Rows) != 3 {
		t.Fatalf("go.term data lost: %+v", tb)
	}
	rel := c2.Relation("ip.interpro2go")
	if rel == nil || len(rel.ForeignKeys) != 1 {
		t.Errorf("foreign keys lost: %+v", rel)
	}
	// Value indexes work on the loaded catalog.
	ov := c2.ValueOverlap(
		AttrRef{Relation: "go.term", Attr: "acc"},
		AttrRef{Relation: "ip.interpro2go", Attr: "go_id"})
	if ov != 2 {
		t.Errorf("overlap = %d, want 2", ov)
	}
}

func TestLoadCatalogRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nope",
		`{"version": 9}`,
		`{"version":1,"tables":[{"source":"s","name":"r","attributes":[{"Name":"a"}],"rows":[["x","too-wide"]]}]}`,
		`{"version":1,"tables":[{"source":"s","name":"r","attributes":[{"Name":"a"}]},{"source":"s","name":"r","attributes":[{"Name":"a"}]}]}`,
	}
	for i, c := range cases {
		if _, err := LoadCatalog(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
