package relstore

import (
	"encoding/json"
	"fmt"
	"io"
)

// catalogSnapshot is the JSON wire form of a catalog. Table order is
// preserved (registration order matters to consumers that iterate).
type catalogSnapshot struct {
	Version int         `json:"version"`
	Tables  []tableSnap `json:"tables"`
}

type tableSnap struct {
	Source      string       `json:"source"`
	Name        string       `json:"name"`
	Attributes  []Attribute  `json:"attributes"`
	ForeignKeys []ForeignKey `json:"foreign_keys,omitempty"`
	Rows        [][]string   `json:"rows"`
}

const catalogSnapshotVersion = 1

// Save writes the catalog (schemas and data) as JSON.
func (c *Catalog) Save(w io.Writer) error {
	s := catalogSnapshot{Version: catalogSnapshotVersion}
	for _, qn := range c.order {
		t := c.lookup(qn)
		s.Tables = append(s.Tables, tableSnap{
			Source:      t.Relation.Source,
			Name:        t.Relation.Name,
			Attributes:  t.Relation.Attributes,
			ForeignKeys: t.Relation.ForeignKeys,
			Rows:        t.Rows,
		})
	}
	return json.NewEncoder(w).Encode(s)
}

// LoadCatalog reconstructs a catalog saved with Save, at the default shard
// count. Tables are validated on the way in, so a corrupted snapshot fails
// loudly rather than producing a half-loaded catalog.
func LoadCatalog(r io.Reader) (*Catalog, error) { return LoadCatalogSharded(r, 0) }

// LoadCatalogSharded is LoadCatalog with an explicit shard count (<= 0 means
// the default). The wire form is shard-agnostic — tables are hash-partitioned
// afresh on the way in — so a catalog saved at any shard count reloads at any
// other with byte-identical answers; value-index segments are rebuilt lazily
// on first use, exactly as for a freshly built catalog.
func LoadCatalogSharded(r io.Reader, shards int) (*Catalog, error) {
	var s catalogSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("relstore: load catalog: %w", err)
	}
	if s.Version != catalogSnapshotVersion {
		return nil, fmt.Errorf("relstore: unsupported catalog snapshot version %d", s.Version)
	}
	c := NewCatalogSharded(shards)
	for i, ts := range s.Tables {
		rel := &Relation{
			Source:      ts.Source,
			Name:        ts.Name,
			Attributes:  ts.Attributes,
			ForeignKeys: ts.ForeignKeys,
		}
		t, err := NewTable(rel, ts.Rows)
		if err != nil {
			return nil, fmt.Errorf("relstore: load catalog table %d: %w", i, err)
		}
		if err := c.AddTable(t); err != nil {
			return nil, fmt.Errorf("relstore: load catalog table %d: %w", i, err)
		}
	}
	return c, nil
}
