package relstore

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the sharding layer of the catalog: tables are hash-partitioned
// by qualified relation name into a fixed number of shards, each owning its
// own table map, registration-order slice, lazy ValueSet cache and immutable
// value-index segments. Catalog-wide operations — FindValues, index builds,
// value-overlap pair generation, batch query execution — fan out one worker
// per shard (bounded by the catalog's parallelism) and merge with
// deterministic post-passes, so every shard count produces byte-identical
// results (the metamorphic suite in shard_test.go pins this).
//
// Sharding also shrinks the write-side critical section of the copy-on-write
// protocol: Clone copies only the shard-pointer slice, and the first AddTable
// into a shard after a Clone copies just that shard's table map and order —
// a registration therefore touches only the shards its new tables hash into,
// while every other shard stays physically shared with the published
// generations (shard_test.go pins the pointer identity of untouched shards).

// catShard is one hash partition of the catalog: the tables whose qualified
// names hash here, in their registration order, plus this shard's lazy
// distinct-value cache and inverted value-index segment cache. The caches
// are shared across catalog clones (tables are immutable, so cached sets and
// segments stay correct in every generation containing their table); the
// table map and order are copy-on-write per shard.
type catShard struct {
	tables map[string]*Table
	order  []string
	values *valueCache
	index  *valueIndex
}

func newCatShard() *catShard {
	return &catShard{
		tables: make(map[string]*Table),
		values: &valueCache{sets: make(map[AttrRef]map[string]struct{})},
		index:  newValueIndex(),
	}
}

// NewCatalogSharded returns an empty catalog hash-partitioned into shards
// partitions. shards <= 0 selects the default, runtime.GOMAXPROCS(0). The
// shard count is fixed for the catalog's lifetime (clones inherit it); any
// count produces byte-identical results on every operation, so it is purely
// a parallelism/locality knob.
func NewCatalogSharded(shards int) *Catalog {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	c := &Catalog{
		shards: make([]*catShard, shards),
		owned:  make([]bool, shards),
		par:    runtime.GOMAXPROCS(0),
	}
	for i := range c.shards {
		c.shards[i] = newCatShard()
		c.owned[i] = true
	}
	return c
}

// ShardCount returns the number of hash partitions.
func (c *Catalog) ShardCount() int { return len(c.shards) }

// SetParallelism bounds the catalog's internal per-shard fan-outs (FindValues,
// BuildValueIndex, OverlappingAttrPairs). n <= 0 restores the default,
// runtime.GOMAXPROCS(0). Writer-side: set it before the catalog is shared
// with concurrent readers (like UseScanFindValues); Clone copies it.
func (c *Catalog) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.par = n
}

// shardOf maps a qualified relation name to its shard index (FNV-1a).
func (c *Catalog) shardOf(qualified string) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(qualified); i++ {
		h ^= uint32(qualified[i])
		h *= 16777619
	}
	return int(h % uint32(len(c.shards)))
}

// ShardOf reports which shard the qualified relation name hashes into —
// for tests (e.g. asserting a registration spans several shards without
// duplicating the partitioner), stats and ops tooling.
func (c *Catalog) ShardOf(qualified string) int { return c.shardOf(qualified) }

// shardFor returns the shard owning the qualified name.
func (c *Catalog) shardFor(qualified string) *catShard { return c.shards[c.shardOf(qualified)] }

// lookup returns the table registered under the qualified name, or nil.
func (c *Catalog) lookup(qualified string) *Table { return c.shardFor(qualified).tables[qualified] }

// ownShard returns the shard at index si, first detaching it from any clones
// that share it: the table map and order are copied, the value-set and
// index caches stay shared. Writer-side only (see the Catalog concurrency
// contract) — this is what confines a registration's writes to the shards
// its new tables hash into.
func (c *Catalog) ownShard(si int) *catShard {
	sh := c.shards[si]
	if c.owned[si] {
		return sh
	}
	ns := &catShard{
		tables: make(map[string]*Table, len(sh.tables)+1),
		order:  append([]string(nil), sh.order...),
		values: sh.values,
		index:  sh.index,
	}
	for k, v := range sh.tables {
		ns.tables[k] = v
	}
	c.shards[si] = ns
	c.owned[si] = true
	return ns
}

// fanThreshold is the catalog size (tables) below which per-shard fan-outs
// run serially: on a handful of tables the per-shard work is microseconds
// and goroutine spawn would dominate, and FindValues sits on the per-keyword
// query hot path. Results are identical either way (indexed collection).
const fanThreshold = 16

// fanShards runs fn(si) for every shard index, across at most the catalog's
// parallelism bound in workers (serially for small catalogs — see
// fanThreshold). Safe on read paths: it spawns plain worker goroutines and
// each shard index is claimed exactly once, so callers collect into
// per-shard slots race-free.
func (c *Catalog) fanShards(fn func(si int)) {
	workers := c.par
	if len(c.order) < fanThreshold {
		workers = 1
	}
	fanIndexed(len(c.shards), workers, fn)
}

// fanIndexed runs fn(0), …, fn(n-1) across at most workers goroutines.
// Every index runs exactly once at every worker count, so indexed collection
// into pre-sized slices is race-free and results are order-independent.
func fanIndexed(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// OverlappingAttrPairs returns the attribute pairs between two relations
// that share at least one distinct value — the Value Overlap Filter of
// Figure 7, used to prune alignment comparisons at registration time. The
// per-attribute overlap checks fan across the catalog's parallelism bound
// (each resolves its value sets from the owning shard's cache) and merge
// into the map in declaration order, so the result is identical at any
// parallelism and shard count.
func (c *Catalog) OverlappingAttrPairs(a, b *Relation) map[[2]AttrRef]bool {
	aq, bq := a.QualifiedName(), b.QualifiedName()
	overlaps := make([][]AttrRef, len(a.Attributes))
	fanIndexed(len(a.Attributes), c.par, func(i int) {
		ra := AttrRef{Relation: aq, Attr: a.Attributes[i].Name}
		for _, bb := range b.Attributes {
			rb := AttrRef{Relation: bq, Attr: bb.Name}
			if c.ValueOverlap(ra, rb) > 0 {
				overlaps[i] = append(overlaps[i], rb)
			}
		}
	})
	out := make(map[[2]AttrRef]bool)
	for i, list := range overlaps {
		ra := AttrRef{Relation: aq, Attr: a.Attributes[i].Name}
		for _, rb := range list {
			out[[2]AttrRef{ra, rb}] = true
		}
	}
	return out
}

// ExecuteBatch executes a batch of conjunctive queries — the branches of one
// view materialisation — across at most workers goroutines, collecting
// results by query index so the output order matches a serial loop exactly.
// With the planner on (the default) the batch is planned as a unit: branches
// stream through PlanBatch's shared-subtree subplan cache, so a join prefix
// common to several branches executes once. Otherwise each query runs
// through Execute's dispatch: the streaming iterator pipeline, or the
// reference materialised executor under UseMaterialisedExec — results are
// byte-identical on every path, at every worker and shard count. Every query
// executes at every worker count; the returned error is the one the
// lowest-indexed failing query produced, matching serial semantics. For the
// top-k-bounded variant that can skip whole branches, see ExecuteTopKUnion.
func ExecuteBatch(c *Catalog, queries []*ConjunctiveQuery, workers int) ([]*ResultSet, error) {
	if !c.noPlan && !c.matExec {
		bp, err := PlanBatch(c, queries)
		if err != nil {
			return nil, err
		}
		results := make([]*ResultSet, len(queries))
		errs := make([]error, len(queries))
		fanIndexed(len(queries), workers, func(i int) {
			results[i], errs[i] = bp.Execute(i)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	results := make([]*ResultSet, len(queries))
	errs := make([]error, len(queries))
	fanIndexed(len(queries), workers, func(i int) {
		results[i], errs[i] = Execute(c, queries[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
