package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// The property under test: sharding is invisible. A catalog hash-partitioned
// into ANY number of shards must answer every operation — FindValues (index
// and scan), value sets and their derived similarities, overlap pair
// generation, batch execution — byte-identically to the single-shard
// reference, under any parallelism, including concurrent readers racing
// lazy index builds. The shard count is purely a parallelism/locality knob.

// shardCounts is the battery every equivalence test runs at: the degenerate
// single shard, a count below and above typical table counts (so some
// shards hold several tables and others none), and the default.
func shardCounts() []int {
	counts := []int{1, 2, 7}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 7 {
		counts = append(counts, g)
	}
	return counts
}

// catalogAt builds a catalog over the given tables at an explicit shard
// count, with internal fan-outs enabled (parallelism 4) so multi-worker
// merge paths are exercised even on single-core machines.
func catalogAt(t *testing.T, shards int, tables []*Table) *Catalog {
	t.Helper()
	c := NewCatalogSharded(shards)
	c.SetParallelism(4)
	for _, tb := range tables {
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestShardedFindValuesEquivalence is the core metamorphic suite: across
// randomised catalogs, every shard count must produce FindValues answers
// deep-equal to the single-shard reference scan — content, row counts,
// order and nil-ness — through both the index and the scan path.
func TestShardedFindValuesEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			tables := randomIndexTables(r, 16) // wide enough to span 7 shards
			ref := catalogAt(t, 1, tables)
			kws := indexKeywords(r, ref)
			want := make([][]ValueHit, len(kws))
			for i, kw := range kws {
				want[i] = ref.ScanFindValues(kw)
			}
			for _, n := range shardCounts() {
				c := catalogAt(t, n, tables)
				for i, kw := range kws {
					if got := c.IndexFindValues(kw); !reflect.DeepEqual(got, want[i]) {
						t.Fatalf("shards=%d: IndexFindValues(%q) diverged\ngot:  %v\nwant: %v", n, kw, got, want[i])
					}
					if got := c.ScanFindValues(kw); !reflect.DeepEqual(got, want[i]) {
						t.Fatalf("shards=%d: ScanFindValues(%q) diverged\ngot:  %v\nwant: %v", n, kw, got, want[i])
					}
				}
			}
		})
	}
}

// TestShardedValueDerivationsEquivalence pins everything derived from value
// sets across shard counts: ValueSet contents, ValueOverlap counts,
// bit-identical ValueJaccard, and the fanned OverlappingAttrPairs against a
// serial double-loop reference.
func TestShardedValueDerivationsEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	tables := randomIndexTables(r, 16)
	ref := catalogAt(t, 1, tables)
	refs := ref.AttrRefs()
	rels := ref.Relations()

	// Serial reference for OverlappingAttrPairs.
	serialPairs := func(c *Catalog, a, b *Relation) map[[2]AttrRef]bool {
		out := make(map[[2]AttrRef]bool)
		for _, aa := range a.Attributes {
			ra := AttrRef{Relation: a.QualifiedName(), Attr: aa.Name}
			for _, bb := range b.Attributes {
				rb := AttrRef{Relation: b.QualifiedName(), Attr: bb.Name}
				if c.ValueOverlap(ra, rb) > 0 {
					out[[2]AttrRef{ra, rb}] = true
				}
			}
		}
		return out
	}

	for _, n := range shardCounts() {
		c := catalogAt(t, n, tables)
		c.BuildValueIndex(4) // segment-derived value sets on this side
		for _, ar := range refs {
			if got, want := c.ValueSet(ar), ref.ValueSet(ar); !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d: ValueSet(%v) diverged", n, ar)
			}
		}
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				if got, want := c.ValueOverlap(refs[i], refs[j]), ref.ValueOverlap(refs[i], refs[j]); got != want {
					t.Fatalf("shards=%d: ValueOverlap(%v, %v) = %d, want %d", n, refs[i], refs[j], got, want)
				}
				if got, want := c.ValueJaccard(refs[i], refs[j]), ref.ValueJaccard(refs[i], refs[j]); got != want {
					t.Fatalf("shards=%d: ValueJaccard(%v, %v) = %v, want %v", n, refs[i], refs[j], got, want)
				}
			}
		}
		for i := 0; i < len(rels); i++ {
			for j := 0; j < len(rels); j++ {
				if i == j {
					continue
				}
				got := c.OverlappingAttrPairs(rels[i], rels[j])
				want := serialPairs(ref, rels[i], rels[j])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: OverlappingAttrPairs(%s, %s) diverged\ngot:  %v\nwant: %v",
						n, rels[i].QualifiedName(), rels[j].QualifiedName(), got, want)
				}
			}
		}
	}
}

// TestShardedConcurrentReaders hammers a multi-shard catalog whose segments
// have NOT been pre-built from many goroutines, so per-shard lazy builds
// race with each other, with the per-shard fan-out workers, and with
// ValueSet derivations. Run under -race; every answer must equal the
// quiesced single-shard reference.
func TestShardedConcurrentReaders(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tables := randomIndexTables(r, 16)
	ref := catalogAt(t, 1, tables)
	kws := []string{"membrane", "GO:0005886", "ab", "é", "plasma membrane", "005886", "zzqqx", "", "Kringle domain"}
	want := make([][]ValueHit, len(kws))
	for i, kw := range kws {
		want[i] = ref.ScanFindValues(kw)
	}
	refs := ref.AttrRefs()

	for _, n := range shardCounts()[1:] { // multi-shard counts only
		c := catalogAt(t, n, tables)
		const readers = 8
		const rounds = 16
		var wg sync.WaitGroup
		errc := make(chan error, readers)
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					k := (g + i) % len(kws)
					if got := c.IndexFindValues(kws[k]); !reflect.DeepEqual(got, want[k]) {
						errc <- fmt.Errorf("shards=%d reader %d: FindValues(%q) = %v, want %v", n, g, kws[k], got, want[k])
						return
					}
					ar := refs[(g*rounds+i)%len(refs)]
					if got := c.ValueSet(ar); !reflect.DeepEqual(got, ref.ValueSet(ar)) {
						errc <- fmt.Errorf("shards=%d reader %d: ValueSet(%v) diverged", n, g, ar)
						return
					}
				}
				errc <- nil
			}(g)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedCloneWriteLocality pins the write-side point of sharding: a
// registration (Clone + AddTable) copies ONLY the shards its new tables
// hash into — every other shard stays pointer-identical with the original —
// and shares built index segments, so the original's answers never change
// and the clone indexes only its own additions.
func TestShardedCloneWriteLocality(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tables := randomIndexTables(r, 16)
	c := catalogAt(t, 7, tables)
	c.BuildValueIndex(4)
	if got := c.IndexedRelations(); got != c.NumRelations() {
		t.Fatalf("IndexedRelations = %d, want %d", got, c.NumRelations())
	}
	wantOrig := c.IndexFindValues("membrane")

	clone := c.Clone()
	if got := clone.IndexedRelations(); got != clone.NumRelations() {
		t.Fatalf("clone should inherit built segments: %d of %d", got, clone.NumRelations())
	}

	rel := &Relation{Source: "new", Name: "notes", Attributes: []Attribute{{Name: "body"}}}
	tb, err := NewTable(rel, [][]string{{"membrane transport"}, {"unrelated"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	clone.EnsureIndexed("new.notes")

	touched := clone.shardOf("new.notes")
	for si := range clone.shards {
		same := clone.shards[si] == c.shards[si]
		if si == touched && same {
			t.Errorf("shard %d was written but is still shared with the original", si)
		}
		if si != touched && !same {
			t.Errorf("shard %d was not written but was copied", si)
		}
		// Caches are shared even for the copied shard: segments build once.
		if clone.shards[si].index != c.shards[si].index || clone.shards[si].values != c.shards[si].values {
			t.Errorf("shard %d caches were not shared across the clone", si)
		}
	}

	if got := clone.IndexedRelations(); got != clone.NumRelations() {
		t.Fatalf("clone IndexedRelations = %d, want %d (exactly the new segment added)", got, clone.NumRelations())
	}
	if got, want := clone.IndexFindValues("membrane"), clone.ScanFindValues("membrane"); !reflect.DeepEqual(got, want) {
		t.Fatalf("clone index diverged from scan after AddTable\nindex: %v\nscan:  %v", got, want)
	}
	if !reflect.DeepEqual(c.IndexFindValues("membrane"), wantOrig) {
		t.Fatal("original catalog's answer changed under the clone's write")
	}

	// The original keeps its own copy-on-write independence too: adding a
	// table to IT (after the clone detached) must not appear in the clone.
	rel2 := &Relation{Source: "orig", Name: "extra", Attributes: []Attribute{{Name: "v"}}}
	tb2, err := NewTable(rel2, [][]string{{"membrane fusion"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tb2); err != nil {
		t.Fatal(err)
	}
	if clone.Table("orig.extra") != nil {
		t.Fatal("clone sees a table added to the original after Clone")
	}
	if c.Table("new.notes") != nil {
		t.Fatal("original sees the clone's table")
	}
}

// TestExecuteBatchEquivalence pins the batch executor against a serial
// Execute loop: identical results in index order at any worker count, and
// serial error semantics (the lowest failing index wins).
func TestExecuteBatchEquivalence(t *testing.T) {
	c := testCatalog(t)
	mkq := func(rel, attr, val string) *ConjunctiveQuery {
		return &ConjunctiveQuery{
			Atoms:   []Atom{{Relation: rel, Alias: "t0"}},
			Selects: []SelCond{{Alias: "t0", Attr: attr, Op: OpContains, Value: val}},
			Project: []ProjCol{{Alias: "t0", Attr: attr, As: attr}},
		}
	}
	queries := []*ConjunctiveQuery{
		mkq("go.term", "name", "membrane"),
		mkq("ip.entry", "name", "domain"),
		mkq("ip.entry", "entry_ac", "IPR"),
		mkq("go.term", "acc", "GO"),
		mkq("ip.interpro2go", "go_id", "0005886"),
	}
	want := make([]*ResultSet, len(queries))
	for i, q := range queries {
		rs, err := Execute(c, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rs
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := ExecuteBatch(c, queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch diverged from serial execution", workers)
		}
	}
	// Error semantics: two failing queries, the lower index's error surfaces.
	bad := append([]*ConjunctiveQuery{}, queries...)
	bad[1] = mkq("no.such", "a", "x")
	bad[3] = mkq("also.missing", "b", "y")
	wantErr := ""
	for _, q := range bad {
		if _, err := Execute(c, q); err != nil {
			wantErr = err.Error()
			break
		}
	}
	for _, workers := range []int{1, 4} {
		if _, err := ExecuteBatch(c, bad, workers); err == nil || err.Error() != wantErr {
			t.Fatalf("workers=%d: error = %v, want %q", workers, err, wantErr)
		}
	}
}

// TestShardCountFixedAcrossClones pins that clones inherit the shard count
// and parallelism knob.
func TestShardCountFixedAcrossClones(t *testing.T) {
	c := NewCatalogSharded(5)
	c.SetParallelism(3)
	clone := c.Clone()
	if clone.ShardCount() != 5 {
		t.Errorf("clone ShardCount = %d, want 5", clone.ShardCount())
	}
	if clone.par != 3 {
		t.Errorf("clone parallelism = %d, want 3", clone.par)
	}
	if NewCatalogSharded(0).ShardCount() != runtime.GOMAXPROCS(0) {
		t.Errorf("default shard count should be GOMAXPROCS")
	}
}
