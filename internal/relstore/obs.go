package relstore

import "qint/internal/obs"

// ExecCounters are the executor's registry hooks: totals across every
// execution path (streaming, materialised, planned batches, top-k union).
// Branches counts completed branch-query executions; Rows counts the rows
// those executions produced (the union's input volume, before top-k
// truncation). core wires one instance per engine via InstrumentExec; an
// un-instrumented catalog pays a single nil check per branch.
type ExecCounters struct {
	Branches *obs.Counter
	Rows     *obs.Counter
}

// InstrumentExec attaches executor counters to the catalog. Writer-side
// setup: call it before the catalog is shared with concurrent readers.
// Clone propagates the attachment, so every copy-on-write generation of
// one engine reports into the same counters.
func (c *Catalog) InstrumentExec(ec *ExecCounters) { c.execObs = ec }

// countExec records one completed branch execution that produced rows
// result rows. Nil-safe on an un-instrumented catalog.
func (c *Catalog) countExec(rows int) {
	if ec := c.execObs; ec != nil {
		ec.Branches.Inc()
		ec.Rows.Add(int64(rows))
	}
}
