package relstore

import (
	"fmt"
	"sort"

	"qint/internal/text"
)

// ResultSet holds the rows produced by executing one conjunctive query.
// Columns follow the query's projection list.
type ResultSet struct {
	Columns []string
	Rows    [][]string
}

// Execute evaluates a conjunctive query against the catalog. By default it
// streams through the composed iterator pipeline of stream.go — scan with
// pushed-down selections, pre-sized hash-join probes, similarity filters,
// projection/dedup — so no intermediate relation is materialised;
// UseMaterialisedExec(true) routes it through ExecuteMaterialised, the
// reference implementation below. Both paths — and every shard count —
// return byte-identical ResultSets (stream_test.go pins this).
func Execute(c *Catalog, q *ConjunctiveQuery) (*ResultSet, error) {
	if c.matExec {
		return ExecuteMaterialised(c, q)
	}
	return ExecuteStream(c, q)
}

// ExecuteMaterialised evaluates a conjunctive query by materialising every
// intermediate relation in full: selection push-down, then one hash or
// nested-loop join per atom, each producing a complete intermediate row set,
// then projection with set-semantics dedup. It is kept as the executable
// specification the streaming executor is verified against (the metamorphic
// suite in stream_test.go and the FuzzExecuteEquivalence target), and as the
// implementation behind UseMaterialisedExec — the same pattern as
// ScanFindValues. It shares the length-prefixed row-identity encoding with
// the streaming path, so join keys and dedup keys are collision-free for
// values containing NUL bytes, embedded spaces or empty strings.
func ExecuteMaterialised(c *Catalog, q *ConjunctiveQuery) (*ResultSet, error) {
	if err := q.Validate(c); err != nil {
		return nil, err
	}

	// Per-alias selection conditions for push-down.
	selByAlias := make(map[string][]SelCond)
	for _, s := range q.Selects {
		selByAlias[s.Alias] = append(selByAlias[s.Alias], s)
	}

	// Load and filter each atom's rows. Attribute indexes are resolved once
	// per condition, before the row loop, and a missing attribute is an
	// error, not an index-out-of-range panic.
	type boundAtom struct {
		alias string
		rel   *Relation
		rows  [][]string
	}
	atoms := make([]boundAtom, len(q.Atoms))
	for i, a := range q.Atoms {
		t := c.Table(a.Relation)
		rows := t.Rows
		if sels := selByAlias[a.Alias]; len(sels) > 0 {
			bound, err := bindSels(t.Relation, sels)
			if err != nil {
				return nil, err
			}
			var kept [][]string
			for _, row := range rows {
				if matchesBound(row, bound) {
					kept = append(kept, row)
				}
			}
			rows = kept
		}
		atoms[i] = boundAtom{alias: a.Alias, rel: t.Relation, rows: rows}
	}

	// Join order: traverse the join graph from atom 0, always joining the
	// next atom connected to the already-joined set; fall back to cross
	// product for disconnected components.
	joined := map[string]bool{atoms[0].alias: true}
	order := []int{0}
	remaining := make(map[int]bool)
	for i := 1; i < len(atoms); i++ {
		remaining[i] = true
	}
	for len(remaining) > 0 {
		next := -1
		for i := range remaining {
			if connectsTo(q.Joins, atoms[i].alias, joined) {
				if next == -1 || i < next {
					next = i
				}
			}
		}
		if next == -1 { // disconnected: take the lowest-index remaining atom
			for i := range remaining {
				if next == -1 || i < next {
					next = i
				}
			}
		}
		order = append(order, next)
		joined[atoms[next].alias] = true
		delete(remaining, next)
	}

	// Incrementally build tuples. colOf maps alias.attr -> column index in
	// the intermediate row.
	colOf := make(map[string]int)
	width := 0
	bind := func(a boundAtom) {
		for _, attr := range a.rel.Attributes {
			colOf[a.alias+"."+attr.Name] = width
			width++
		}
	}

	first := atoms[order[0]]
	bind(first)
	current := make([][]string, len(first.rows))
	for i, r := range first.rows {
		row := make([]string, len(r))
		copy(row, r)
		current[i] = row
	}

	for _, oi := range order[1:] {
		a := atoms[oi]
		// Find join conditions between a and the already-bound aliases,
		// split into equi-joins (hash) and similarity joins (filtered).
		var pairs []joinPair
		var simPairs []simJoinPair
		for _, j := range q.Joins {
			var lc, ri int
			var ok bool
			if j.LeftAlias == a.alias {
				lc, ok = colOf[j.RightAlias+"."+j.RightAttr]
				ri = a.rel.AttrIndex(j.LeftAttr)
			} else if j.RightAlias == a.alias {
				lc, ok = colOf[j.LeftAlias+"."+j.LeftAttr]
				ri = a.rel.AttrIndex(j.RightAttr)
			} else {
				continue
			}
			if !ok {
				continue
			}
			if j.Op == JoinSimilar {
				simPairs = append(simPairs, simJoinPair{
					joinPair:  joinPair{leftCol: lc, rightAttrIdx: ri},
					threshold: j.Threshold,
				})
			} else {
				pairs = append(pairs, joinPair{leftCol: lc, rightAttrIdx: ri})
			}
		}

		simOK := func(cur, row []string) bool {
			for _, p := range simPairs {
				if text.TrigramSimilarity(
					text.Normalize(cur[p.leftCol]),
					text.Normalize(row[p.rightAttrIdx])) < p.threshold {
					return false
				}
			}
			return true
		}

		var next [][]string
		if len(pairs) > 0 {
			// Hash join on the concatenated equi-join values; similarity
			// conditions filter the matches.
			build := make(map[string][][]string)
			for _, row := range a.rows {
				key := joinKeyRight(row, pairs)
				build[key] = append(build[key], row)
			}
			for _, cur := range current {
				key := joinKeyLeft(cur, pairs)
				for _, m := range build[key] {
					if !simOK(cur, m) {
						continue
					}
					merged := make([]string, 0, len(cur)+len(m))
					merged = append(merged, cur...)
					merged = append(merged, m...)
					next = append(next, merged)
				}
			}
		} else {
			// Nested loop: a pure similarity join, or a cross product when
			// no conditions connect the atom.
			for _, cur := range current {
				for _, row := range a.rows {
					if !simOK(cur, row) {
						continue
					}
					merged := make([]string, 0, len(cur)+len(row))
					merged = append(merged, cur...)
					merged = append(merged, row...)
					next = append(next, merged)
				}
			}
		}
		bind(a)
		current = next
	}

	// Project.
	cols := make([]string, len(q.Project))
	idx := make([]int, len(q.Project))
	for i, p := range q.Project {
		cols[i] = p.As
		ci, ok := colOf[p.Alias+"."+p.Attr]
		if !ok {
			return nil, fmt.Errorf("relstore: projection %s.%s not bound", p.Alias, p.Attr)
		}
		idx[i] = ci
	}
	out := &ResultSet{Columns: cols}
	seen := make(map[string]struct{})
	for _, row := range current {
		proj := make([]string, len(idx))
		for i, ci := range idx {
			proj[i] = row[ci]
		}
		// Length-prefixed identity key: fmt.Sprint collided distinct rows
		// like ["a b","c"] and ["a","b c"] and silently dropped one.
		key := rowKey(proj)
		if _, dup := seen[key]; dup {
			continue // set semantics on projected output
		}
		seen[key] = struct{}{}
		out.Rows = append(out.Rows, proj)
	}
	sortRows(out.Rows)
	return out, nil
}

func connectsTo(joins []JoinCond, alias string, joined map[string]bool) bool {
	for _, j := range joins {
		if j.LeftAlias == alias && joined[j.RightAlias] {
			return true
		}
		if j.RightAlias == alias && joined[j.LeftAlias] {
			return true
		}
	}
	return false
}

// joinPair relates a column of the accumulated intermediate row to an
// attribute index of the relation being joined in.
type joinPair struct{ leftCol, rightAttrIdx int }

// simJoinPair is a joinPair with a similarity threshold (JoinSimilar).
type simJoinPair struct {
	joinPair
	threshold float64
}

// joinKeyLeft and joinKeyRight build the hash-join key from the two sides'
// join-column values, length-prefixed: the old "\x00"-separator encoding
// collided values containing NUL across column boundaries (["a\x00","b"] vs
// ["a","\x00b"]) and emitted wrong matches.
func joinKeyLeft(row []string, pairs []joinPair) string {
	var key []byte
	for _, p := range pairs {
		key = appendLenPrefixed(key, row[p.leftCol])
	}
	return string(key)
}

func joinKeyRight(row []string, pairs []joinPair) string {
	var key []byte
	for _, p := range pairs {
		key = appendLenPrefixed(key, row[p.rightAttrIdx])
	}
	return string(key)
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
