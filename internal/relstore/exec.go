package relstore

import (
	"fmt"
	"sort"

	"qint/internal/text"
)

// ResultSet holds the rows produced by executing one conjunctive query.
// Columns follow the query's projection list.
type ResultSet struct {
	Columns []string
	Rows    [][]string
}

// Execute evaluates a conjunctive query against the catalog. By default it
// streams through the composed iterator pipeline of stream.go — scan with
// pushed-down selections, pre-sized hash-join probes, similarity filters,
// projection/dedup — so no intermediate relation is materialised;
// UseMaterialisedExec(true) routes it through ExecuteMaterialised, the
// reference implementation below. Both paths — and every shard count —
// return byte-identical ResultSets (stream_test.go pins this).
func Execute(c *Catalog, q *ConjunctiveQuery) (*ResultSet, error) {
	var rs *ResultSet
	var err error
	if c.matExec {
		rs, err = ExecuteMaterialised(c, q)
	} else {
		rs, err = ExecuteStream(c, q)
	}
	if err == nil {
		c.countExec(len(rs.Rows))
	}
	return rs, err
}

// ExecuteMaterialised evaluates a conjunctive query by materialising every
// intermediate relation in full: selection and self-filter push-down, then
// one hash or nested-loop join per atom, each producing a complete
// intermediate row set, then projection with set-semantics dedup. It is kept
// as the executable specification the streaming executor is verified against
// (the metamorphic suite in stream_test.go and the FuzzExecuteEquivalence
// target), and as the implementation behind UseMaterialisedExec — the same
// pattern as ScanFindValues. It shares the length-prefixed row-identity
// encoding with the streaming path, so join keys and dedup keys are
// collision-free for values containing NUL bytes, embedded spaces or empty
// strings. Join order follows the catalog's planner knob (see planner.go);
// the hash build side is whichever input is smaller — neither choice can
// change a byte of the sorted, deduplicated output.
func ExecuteMaterialised(c *Catalog, q *ConjunctiveQuery) (*ResultSet, error) {
	p, err := planQuery(c, q)
	if err != nil {
		return nil, err
	}
	atoms := p.atoms

	// Materialise each atom's filtered rows: pushed-down selections plus
	// self-filter join conditions (t.a = t.b), which are per-row predicates
	// on the atom itself. The old join-binding loop could never apply them —
	// an alias's columns bind only after its own join step, so the colOf
	// lookup failed and the condition was silently dropped.
	filtered := make([][][]string, len(atoms))
	for i, a := range atoms {
		if len(a.sels) == 0 && len(a.selfs) == 0 {
			filtered[i] = a.rows
			continue
		}
		var kept [][]string
		for _, row := range a.rows {
			if rowAdmits(row, a.sels, a.selfs) {
				kept = append(kept, row)
			}
		}
		filtered[i] = kept
	}

	// Incrementally build tuples. colOf maps alias.attr -> column index in
	// the intermediate row.
	colOf := make(map[string]int)
	width := 0
	bind := func(a planAtom) {
		for _, attr := range a.rel.Attributes {
			colOf[a.alias+"."+attr.Name] = width
			width++
		}
	}

	order := p.order
	first := atoms[order[0]]
	bind(first)
	current := make([][]string, len(filtered[order[0]]))
	for i, r := range filtered[order[0]] {
		row := make([]string, len(r))
		copy(row, r)
		current[i] = row
	}

	for _, oi := range order[1:] {
		a := atoms[oi]
		rows := filtered[oi]
		// Find join conditions between a and the already-bound aliases,
		// split into equi-joins (hash) and similarity joins (filtered).
		// Self-filters were already applied above; a condition whose other
		// endpoint binds later in join order applies when THAT atom joins
		// in (unknown aliases cannot reach here — Validate rejects them).
		var pairs []joinPair
		var simPairs []simJoinPair
		for _, j := range q.Joins {
			if j.LeftAlias == j.RightAlias {
				continue
			}
			var lc, ri int
			var ok bool
			if j.LeftAlias == a.alias {
				lc, ok = colOf[j.RightAlias+"."+j.RightAttr]
				ri = a.rel.AttrIndex(j.LeftAttr)
			} else if j.RightAlias == a.alias {
				lc, ok = colOf[j.LeftAlias+"."+j.LeftAttr]
				ri = a.rel.AttrIndex(j.RightAttr)
			} else {
				continue
			}
			if !ok {
				continue
			}
			if j.Op == JoinSimilar {
				simPairs = append(simPairs, simJoinPair{
					joinPair:  joinPair{leftCol: lc, rightAttrIdx: ri},
					threshold: j.Threshold,
				})
			} else {
				pairs = append(pairs, joinPair{leftCol: lc, rightAttrIdx: ri})
			}
		}

		simOK := func(cur, row []string) bool {
			for _, p := range simPairs {
				if text.TrigramSimilarity(
					text.Normalize(cur[p.leftCol]),
					text.Normalize(row[p.rightAttrIdx])) < p.threshold {
					return false
				}
			}
			return true
		}

		var next [][]string
		switch {
		case len(pairs) > 0 && len(rows) <= len(current):
			// Hash join, building on the atom's rows (the smaller input);
			// similarity conditions filter the matches.
			build := make(map[string][][]string)
			for _, row := range rows {
				key := joinKeyRight(row, pairs)
				build[key] = append(build[key], row)
			}
			for _, cur := range current {
				key := joinKeyLeft(cur, pairs)
				for _, m := range build[key] {
					if !simOK(cur, m) {
						continue
					}
					merged := make([]string, 0, len(cur)+len(m))
					merged = append(merged, cur...)
					merged = append(merged, m...)
					next = append(next, merged)
				}
			}
		case len(pairs) > 0:
			// The accumulated intermediate is the smaller input: build the
			// hash on it instead and probe with the atom's rows. The merged
			// column layout is unchanged (intermediate columns first), and
			// the different match order washes out in the final sort+dedup.
			build := make(map[string][][]string)
			for _, cur := range current {
				key := joinKeyLeft(cur, pairs)
				build[key] = append(build[key], cur)
			}
			for _, row := range rows {
				key := joinKeyRight(row, pairs)
				for _, cur := range build[key] {
					if !simOK(cur, row) {
						continue
					}
					merged := make([]string, 0, len(cur)+len(row))
					merged = append(merged, cur...)
					merged = append(merged, row...)
					next = append(next, merged)
				}
			}
		default:
			// Nested loop: a pure similarity join, or a cross product when
			// no conditions connect the atom.
			for _, cur := range current {
				for _, row := range rows {
					if !simOK(cur, row) {
						continue
					}
					merged := make([]string, 0, len(cur)+len(row))
					merged = append(merged, cur...)
					merged = append(merged, row...)
					next = append(next, merged)
				}
			}
		}
		bind(a)
		current = next
	}

	// Project.
	cols := make([]string, len(q.Project))
	idx := make([]int, len(q.Project))
	for i, p := range q.Project {
		cols[i] = p.As
		ci, ok := colOf[p.Alias+"."+p.Attr]
		if !ok {
			return nil, fmt.Errorf("relstore: projection %s.%s not bound", p.Alias, p.Attr)
		}
		idx[i] = ci
	}
	out := &ResultSet{Columns: cols}
	seen := make(map[string]struct{})
	for _, row := range current {
		proj := make([]string, len(idx))
		for i, ci := range idx {
			proj[i] = row[ci]
		}
		// Length-prefixed identity key: fmt.Sprint collided distinct rows
		// like ["a b","c"] and ["a","b c"] and silently dropped one.
		key := rowKey(proj)
		if _, dup := seen[key]; dup {
			continue // set semantics on projected output
		}
		seen[key] = struct{}{}
		out.Rows = append(out.Rows, proj)
	}
	sortRows(out.Rows)
	return out, nil
}

func connectsTo(joins []JoinCond, alias string, joined map[string]bool) bool {
	for _, j := range joins {
		if j.LeftAlias == alias && joined[j.RightAlias] {
			return true
		}
		if j.RightAlias == alias && joined[j.LeftAlias] {
			return true
		}
	}
	return false
}

// joinPair relates a column of the accumulated intermediate row to an
// attribute index of the relation being joined in.
type joinPair struct{ leftCol, rightAttrIdx int }

// simJoinPair is a joinPair with a similarity threshold (JoinSimilar).
type simJoinPair struct {
	joinPair
	threshold float64
}

// joinKeyLeft and joinKeyRight build the hash-join key from the two sides'
// join-column values, length-prefixed: the old "\x00"-separator encoding
// collided values containing NUL across column boundaries (["a\x00","b"] vs
// ["a","\x00b"]) and emitted wrong matches.
func joinKeyLeft(row []string, pairs []joinPair) string {
	var key []byte
	for _, p := range pairs {
		key = appendLenPrefixed(key, row[p.leftCol])
	}
	return string(key)
}

func joinKeyRight(row []string, pairs []joinPair) string {
	var key []byte
	for _, p := range pairs {
		key = appendLenPrefixed(key, row[p.rightAttrIdx])
	}
	return string(key)
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
