package relstore

import (
	"fmt"
	"sort"
	"strings"

	"qint/internal/text"
)

// This file is the cost-based join planner: a per-query planning pass that
// binds every condition once, estimates each atom's post-selection
// cardinality from the value index's per-segment statistics (distinct-value
// entries with row counts — already maintained per table for FindValues),
// and orders joins greedily by estimated intermediate cardinality. Both
// executors consume the resulting queryPlan; the naive "first-connected,
// lowest-index" traversal survives as the unplanned executable spec behind
// UsePlanner(false), and join order provably cannot change a single result
// byte — every ResultSet is sorted under one total order with set-semantics
// dedup — so the planner is verified byte-identical against the spec
// (planner_test.go, FuzzPlanEquivalence) exactly like ScanFindValues and
// ExecuteMaterialised.
//
// The planner also canonicalises each query's physical join prefixes
// (prefixSignature) so subtrees shared across a view's branch queries are
// detected structurally — plan.go builds the per-materialisation subplan
// cache on top of these signatures.

// selfFilter is a bound join condition whose two sides name the SAME alias
// (`t.a = t.b`): not a join at all but a per-row filter on that atom,
// pushed down next to its selections. Before the planner these conditions
// were silently dropped by both executors — the join-binding loops only
// looked columns up among previously-bound aliases, so a condition whose
// other endpoint was the atom itself never matched anything.
type selfFilter struct {
	li, ri    int // attribute indexes within the atom's own relation
	op        JoinOp
	threshold float64
}

func (f selfFilter) matches(row []string) bool {
	if f.op == JoinSimilar {
		return text.TrigramSimilarity(
			text.Normalize(row[f.li]),
			text.Normalize(row[f.ri])) >= f.threshold
	}
	return row[f.li] == row[f.ri]
}

// bindSelfs collects the query's self-filter conditions on one alias.
// Callers run it after Validate, so attribute resolution cannot fail.
func bindSelfs(rel *Relation, alias string, joins []JoinCond) []selfFilter {
	var out []selfFilter
	for _, j := range joins {
		if j.LeftAlias != alias || j.RightAlias != alias {
			continue
		}
		out = append(out, selfFilter{
			li:        rel.AttrIndex(j.LeftAttr),
			ri:        rel.AttrIndex(j.RightAttr),
			op:        j.Op,
			threshold: j.Threshold,
		})
	}
	return out
}

// rowAdmits reports whether a base-table row passes an atom's pushed-down
// selections and self-filters.
func rowAdmits(row []string, sels []boundSel, selfs []selfFilter) bool {
	if !matchesBound(row, sels) {
		return false
	}
	for _, f := range selfs {
		if !f.matches(row) {
			return false
		}
	}
	return true
}

// planAtom is one atom with every per-atom decision made: conditions bound
// to attribute indexes, statistics resolved, and a canonical tie-break key.
type planAtom struct {
	alias string
	rel   *Relation
	rows  [][]string
	sels  []boundSel
	selfs []selfFilter

	seg *segment // statistics source (planned mode only)
	est float64  // estimated post-selection row count (planned mode only)
	key string   // canonical identity for deterministic tie-breaks
}

// queryPlan is a validated, bound, ordered conjunctive query — the shared
// input of both executors (compileStream, ExecuteMaterialised) and of the
// cross-branch subplan cache (plan.go).
type queryPlan struct {
	q     *ConjunctiveQuery
	atoms []planAtom
	order []int
	// est[i] is the estimated intermediate cardinality after joining
	// order[:i+1]; nil when the plan uses the naive spec order.
	est       []float64
	planned   bool
	reordered bool // planned order differs from the naive spec order
}

// planQuery validates and binds a query and chooses its join order: the
// greedy cost-based order by default, the naive first-connected traversal
// when the catalog's planner is off (the executable spec).
func planQuery(c *Catalog, q *ConjunctiveQuery) (*queryPlan, error) {
	if err := q.Validate(c); err != nil {
		return nil, err
	}
	selByAlias := make(map[string][]SelCond)
	for _, s := range q.Selects {
		selByAlias[s.Alias] = append(selByAlias[s.Alias], s)
	}
	atoms := make([]planAtom, len(q.Atoms))
	for i, a := range q.Atoms {
		t := c.Table(a.Relation)
		sels, err := bindSels(t.Relation, selByAlias[a.Alias])
		if err != nil {
			return nil, err
		}
		atoms[i] = planAtom{
			alias: a.Alias,
			rel:   t.Relation,
			rows:  t.Rows,
			sels:  sels,
			selfs: bindSelfs(t.Relation, a.Alias, q.Joins),
		}
	}
	p := &queryPlan{q: q, atoms: atoms}
	naive := naiveJoinOrder(q, atoms)
	if c.noPlan {
		p.order = naive
		return p, nil
	}
	for i := range p.atoms {
		estimateAtom(c, &p.atoms[i])
	}
	p.order, p.est = plannedJoinOrder(p)
	p.planned = true
	for i := range p.order {
		if p.order[i] != naive[i] {
			p.reordered = true
			break
		}
	}
	return p, nil
}

// naiveJoinOrder is the unplanned executable spec: traverse the join graph
// from atom 0, always joining the lowest-index atom connected to the
// already-joined set; fall back to the lowest-index remaining atom (cross
// product) for disconnected components.
func naiveJoinOrder(q *ConjunctiveQuery, atoms []planAtom) []int {
	joined := map[string]bool{atoms[0].alias: true}
	order := []int{0}
	remaining := make(map[int]bool)
	for i := 1; i < len(atoms); i++ {
		remaining[i] = true
	}
	for len(remaining) > 0 {
		next := -1
		for i := range remaining {
			if connectsTo(q.Joins, atoms[i].alias, joined) {
				if next == -1 || i < next {
					next = i
				}
			}
		}
		if next == -1 { // disconnected: take the lowest-index remaining atom
			for i := range remaining {
				if next == -1 || i < next {
					next = i
				}
			}
		}
		order = append(order, next)
		joined[atoms[next].alias] = true
		delete(remaining, next)
	}
	return order
}

// estimateAtom resolves the atom's statistics segment and estimates its
// post-selection cardinality: exact match counts per selection from the
// segment's distinct-value entries (assumed independent when conjoined),
// 1/max(distinct) for an equi self-filter, a fixed ½ for a similarity one.
// Segment entries cover non-empty values only, so rows holding empty strings
// are invisible to the estimate — an estimation error, never a result error.
func estimateAtom(c *Catalog, a *planAtom) {
	a.seg = c.statsSegment(a.rel.QualifiedName())
	a.key = atomPlanKey(a)
	base := float64(len(a.rows))
	a.est = base
	if base == 0 || a.seg == nil {
		return
	}
	for _, s := range a.sels {
		a.est *= float64(segSelRows(a.seg, s)) / base
	}
	for _, f := range a.selfs {
		if f.op == JoinSimilar {
			a.est *= 0.5
			continue
		}
		d := segDistinct(a.seg, f.li)
		if r := segDistinct(a.seg, f.ri); r > d {
			d = r
		}
		if d < 1 {
			d = 1
		}
		a.est /= float64(d)
	}
}

// segDistinct returns the segment's distinct non-empty value count for one
// attribute.
func segDistinct(seg *segment, attrIdx int) int {
	if seg == nil || attrIdx < 0 || attrIdx+1 >= len(seg.attrStart) {
		return 0
	}
	return seg.attrStart[attrIdx+1] - seg.attrStart[attrIdx]
}

// segSelRows counts the rows one selection matches, exactly, from the
// segment's per-attribute entries: a binary search for OpEq, a pass over the
// attribute's distinct values (precomputed normalisations) for OpContains.
func segSelRows(seg *segment, s boundSel) int {
	if s.attrIdx < 0 || s.attrIdx+1 >= len(seg.attrStart) {
		return 0
	}
	span := seg.entries[seg.attrStart[s.attrIdx]:seg.attrStart[s.attrIdx+1]]
	if s.op == OpContains {
		n := 0
		for _, e := range span {
			if strings.Contains(e.norm, s.norm) {
				n += e.rows
			}
		}
		return n
	}
	i := sort.Search(len(span), func(i int) bool { return span[i].val >= s.value })
	if i < len(span) && span[i].val == s.value {
		return span[i].rows
	}
	return 0
}

// atomPlanKey is the atom's canonical identity for tie-breaks: relation plus
// sorted bound conditions. Breaking estimate ties on this key (before the
// atom's index) makes branches that share a subtree choose the same relative
// order for it regardless of how their aliases are numbered, which maximises
// the shared physical prefixes the subplan cache can exploit.
func atomPlanKey(a *planAtom) string {
	parts := make([]string, 0, len(a.sels)+len(a.selfs))
	for _, s := range a.sels {
		parts = append(parts, fmt.Sprintf("s:%d:%d:%s", s.attrIdx, s.op, s.value))
	}
	for _, f := range a.selfs {
		parts = append(parts, fmt.Sprintf("f:%d:%d:%d:%g", f.li, f.ri, f.op, f.threshold))
	}
	sort.Strings(parts)
	return string(appendLenPrefixed(nil, append([]string{a.rel.QualifiedName()}, parts...)...))
}

// joinSelectivity estimates the combined selectivity of every join condition
// between the candidate atom and the already-placed set: 1/max(distinct) per
// equi-join (classic System-R), a fixed ½ per similarity join.
func joinSelectivity(p *queryPlan, placed []bool, aliasIdx map[string]int, cand int) float64 {
	sel := 1.0
	a := &p.atoms[cand]
	for _, j := range p.q.Joins {
		if j.LeftAlias == j.RightAlias {
			continue // self-filter, already in the atom estimate
		}
		var otherAlias, thisAttr, otherAttr string
		switch a.alias {
		case j.LeftAlias:
			otherAlias, thisAttr, otherAttr = j.RightAlias, j.LeftAttr, j.RightAttr
		case j.RightAlias:
			otherAlias, thisAttr, otherAttr = j.LeftAlias, j.RightAttr, j.LeftAttr
		default:
			continue
		}
		oi, ok := aliasIdx[otherAlias]
		if !ok || !placed[oi] {
			continue
		}
		if j.Op == JoinSimilar {
			sel *= 0.5
			continue
		}
		other := &p.atoms[oi]
		d := segDistinct(a.seg, a.rel.AttrIndex(thisAttr))
		if r := segDistinct(other.seg, other.rel.AttrIndex(otherAttr)); r > d {
			d = r
		}
		if d < 1 {
			d = 1
		}
		sel /= float64(d)
	}
	return sel
}

// plannedJoinOrder orders the atoms greedily by estimated intermediate
// cardinality: start with the smallest estimated atom, then repeatedly join
// the connected atom minimising the estimated result of the next join
// (disconnected atoms — a cross product — only when nothing connects). Ties
// break on (estimate, canonical atom key, atom index), so the order is fully
// deterministic and aligned across branches sharing a subtree. Join order
// never changes a ResultSet byte — the output is sorted and deduplicated
// under one total order — so any estimation error costs time, not answers.
func plannedJoinOrder(p *queryPlan) ([]int, []float64) {
	n := len(p.atoms)
	aliasIdx := make(map[string]int, n)
	for i := range p.atoms {
		aliasIdx[p.atoms[i].alias] = i
	}
	placed := make([]bool, n)
	order := make([]int, 0, n)
	ests := make([]float64, 0, n)

	better := func(estI float64, i, best int, estBest float64) bool {
		if best == -1 || estI != estBest {
			return best == -1 || estI < estBest
		}
		if ki, kb := p.atoms[i].key, p.atoms[best].key; ki != kb {
			return ki < kb
		}
		return i < best
	}

	best, bestEst := -1, 0.0
	for i := range p.atoms {
		if better(p.atoms[i].est, i, best, bestEst) {
			best, bestEst = i, p.atoms[i].est
		}
	}
	order = append(order, best)
	placed[best] = true
	cur := bestEst
	ests = append(ests, cur)

	for len(order) < n {
		anyConnected := false
		for i := 0; i < n && !anyConnected; i++ {
			if !placed[i] {
				anyConnected = connectedToPlaced(p, placed, aliasIdx, i)
			}
		}
		best, bestEst = -1, 0.0
		for i := 0; i < n; i++ {
			if placed[i] || (anyConnected && !connectedToPlaced(p, placed, aliasIdx, i)) {
				continue
			}
			e := cur * p.atoms[i].est * joinSelectivity(p, placed, aliasIdx, i)
			if better(e, i, best, bestEst) {
				best, bestEst = i, e
			}
		}
		order = append(order, best)
		placed[best] = true
		cur = bestEst
		ests = append(ests, cur)
	}
	return order, ests
}

// connectedToPlaced reports whether the atom has a non-self join condition to
// any already-placed atom.
func connectedToPlaced(p *queryPlan, placed []bool, aliasIdx map[string]int, i int) bool {
	alias := p.atoms[i].alias
	for _, j := range p.q.Joins {
		if j.LeftAlias == j.RightAlias {
			continue
		}
		var other string
		switch alias {
		case j.LeftAlias:
			other = j.RightAlias
		case j.RightAlias:
			other = j.LeftAlias
		default:
			continue
		}
		if oi, ok := aliasIdx[other]; ok && placed[oi] {
			return true
		}
	}
	return false
}

// prefixSignature canonicalises the physical identity of the plan's first n
// atoms in join order: relation names, bound selections and self-filters,
// and every join condition whose endpoints both fall inside the prefix —
// each condition anchored to the other endpoint's *position*, so the
// signature is independent of alias naming. Two branches with equal
// signatures compile byte-identical prefix pipelines over the same immutable
// tables, which is what lets the subplan cache substitute one's rows for the
// other's execution (plan.go).
func (p *queryPlan) prefixSignature(n int) string {
	pos := make(map[string]int, n)
	var b []byte
	for i := 0; i < n; i++ {
		a := &p.atoms[p.order[i]]
		b = appendLenPrefixed(b, a.rel.QualifiedName())
		parts := make([]string, 0, len(a.sels)+len(a.selfs))
		for _, s := range a.sels {
			parts = append(parts, fmt.Sprintf("s:%d:%d:%s", s.attrIdx, s.op, s.value))
		}
		for _, f := range a.selfs {
			parts = append(parts, fmt.Sprintf("f:%d:%d:%d:%g", f.li, f.ri, f.op, f.threshold))
		}
		var joins []string
		for _, j := range p.q.Joins {
			if j.LeftAlias == j.RightAlias {
				continue
			}
			var otherAlias, thisAttr, otherAttr string
			switch a.alias {
			case j.LeftAlias:
				otherAlias, thisAttr, otherAttr = j.RightAlias, j.LeftAttr, j.RightAttr
			case j.RightAlias:
				otherAlias, thisAttr, otherAttr = j.LeftAlias, j.RightAttr, j.LeftAttr
			default:
				continue
			}
			if op, ok := pos[otherAlias]; ok && op < i {
				joins = append(joins, fmt.Sprintf("j:%d:%s:%s:%d:%g", op, otherAttr, thisAttr, j.Op, j.Threshold))
			}
		}
		sort.Strings(parts)
		sort.Strings(joins)
		b = appendLenPrefixed(b, parts...)
		b = append(b, '/')
		b = appendLenPrefixed(b, joins...)
		b = append(b, '|')
		pos[a.alias] = i
	}
	return string(b)
}

// ExplainPlan renders the join order Execute would use for the query on this
// catalog, one line per atom: the operator (scan, hash join, nested loop),
// the atom, its pushed-down condition counts, and — when the planner is on —
// the estimated intermediate cardinality after the step. The first line
// names the ordering mode, so explain output always says whether the
// cost-based planner or the naive spec order produced the plan.
func ExplainPlan(c *Catalog, q *ConjunctiveQuery) ([]string, error) {
	p, err := planQuery(c, q)
	if err != nil {
		return nil, err
	}
	lines := make([]string, 0, len(p.order)+1)
	if p.planned {
		lines = append(lines, "order: cost-based (greedy by estimated cardinality)")
	} else {
		lines = append(lines, "order: naive first-connected (planner off)")
	}
	for step, oi := range p.order {
		a := &p.atoms[oi]
		op := "scan"
		if step > 0 {
			op = "nested loop"
			if hasEquiToEarlier(p, step) {
				op = "hash join"
			}
		}
		line := fmt.Sprintf("%s %s=%s", op, a.alias, a.rel.QualifiedName())
		if len(a.sels) > 0 {
			line += fmt.Sprintf(", %d sel", len(a.sels))
		}
		if len(a.selfs) > 0 {
			line += fmt.Sprintf(", %d self-filter", len(a.selfs))
		}
		if p.planned {
			line += fmt.Sprintf(" (est %.1f rows)", p.est[step])
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// hasEquiToEarlier reports whether the atom at order position `step` has an
// equi-join condition to an atom placed earlier — i.e. whether it joins in
// through a hash join rather than a nested loop.
func hasEquiToEarlier(p *queryPlan, step int) bool {
	pos := make(map[string]int, step)
	for i := 0; i < step; i++ {
		pos[p.atoms[p.order[i]].alias] = i
	}
	alias := p.atoms[p.order[step]].alias
	for _, j := range p.q.Joins {
		if j.Op != JoinEq || j.LeftAlias == j.RightAlias {
			continue
		}
		var other string
		switch alias {
		case j.LeftAlias:
			other = j.RightAlias
		case j.RightAlias:
			other = j.LeftAlias
		default:
			continue
		}
		if _, ok := pos[other]; ok {
			return true
		}
	}
	return false
}
