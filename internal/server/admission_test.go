package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qint/internal/core"
	"qint/internal/datasets"
	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
)

// newAdmissionServer builds a server over the InterPro-GO corpus with
// explicit serving limits, returning the engine and server so tests can
// inspect both sides of the admission layer.
func newAdmissionServer(t *testing.T, cfg Config) (*core.Q, *Server, *httptest.Server) {
	t.Helper()
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	corpus := datasets.InterProGO()
	if err := q.AddTables(corpus.Tables...); err != nil {
		t.Fatal(err)
	}
	q.AlignAllPairs()
	s := NewWith(q, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return q, s, ts
}

const admissionQuery = "'GO:0001000' 'fam_0'"

// TestQueryAdmissionShedsOverLimit is the admission hammer: with the
// in-flight limit at 2, two queries are parked in flight (holding their
// admission tokens on a test barrier), a burst of further queries must ALL
// be shed with fast 429s + Retry-After — never queued, never executing —
// and the two parked queries must then complete normally. Runs under -race
// in CI.
func TestQueryAdmissionShedsOverLimit(t *testing.T) {
	_, s, ts := newAdmissionServer(t, Config{MaxInFlightQueries: 2})

	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	s.queryBarrier = func() {
		entered <- struct{}{}
		<-release
	}

	// Park two queries in flight.
	type result struct {
		status int
		body   string
	}
	parked := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"q":"`+admissionQuery+`"}`))
			if err != nil {
				parked <- result{status: -1, body: err.Error()}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			parked <- result{status: resp.StatusCode, body: string(b)}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("parked queries never reached the barrier")
		}
	}

	// Every query of an over-limit burst is shed immediately with 429.
	const burst = 8
	var wg sync.WaitGroup
	shed := make(chan result, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"q":"`+admissionQuery+`"}`))
			if err != nil {
				shed <- result{status: -1, body: err.Error()}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.Header.Get("Retry-After") == "" {
				shed <- result{status: -2, body: "missing Retry-After"}
				return
			}
			shed <- result{status: resp.StatusCode, body: string(b)}
		}()
	}
	wg.Wait()
	close(shed)
	for r := range shed {
		if r.status != http.StatusTooManyRequests {
			t.Errorf("over-limit query: status %d (%s), want 429", r.status, r.body)
		}
	}

	// The in-flight pair completes once released.
	close(release)
	for i := 0; i < 2; i++ {
		r := <-parked
		if r.status != http.StatusCreated {
			t.Errorf("parked query: status %d (%s), want 201", r.status, r.body)
		}
	}

	st := s.ServingStats()
	if st.ShedQueries != burst {
		t.Errorf("ShedQueries = %d, want %d", st.ShedQueries, burst)
	}
	if st.ServedQueries != 2 {
		t.Errorf("ServedQueries = %d, want 2", st.ServedQueries)
	}
	if st.InFlightQueries != 0 {
		t.Errorf("InFlightQueries = %d after completion, want 0", st.InFlightQueries)
	}
}

// TestWriteQueueBackpressure pins the write path: with the queue depth at
// 1, a registration parked inside a blocking matcher holds the only slot,
// so a second registration AND a feedback post are shed with 503 +
// Retry-After; after release the parked registration lands.
func TestWriteQueueBackpressure(t *testing.T) {
	bm := newBlockingMatcher()
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	q.AddMatcher(bm)
	corpus := datasets.InterProGO()
	if err := q.AddTables(corpus.Tables...); err != nil {
		t.Fatal(err)
	}
	q.AlignAllPairs()
	s := NewWith(q, Config{WriteQueueDepth: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// A view to aim feedback at.
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: admissionQuery})
	var va ViewAnswers
	decode(t, resp, &va)
	if len(va.Rows) == 0 {
		t.Fatal("seed query returned no rows")
	}

	reg := func(name string) RegisterRequest {
		return RegisterRequest{
			Source: name,
			Tables: []TableSpec{{
				Name:       "data",
				Attributes: []string{"go_id", "label"},
				Rows:       [][]string{{"GO:0001000", "x"}},
			}},
			Strategy: "preferential",
		}
	}

	bm.armed.Store(true)
	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/sources", reg("parked"))
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case <-bm.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("registration never reached the matcher")
	}

	// Queue full: both write kinds shed with 503 + Retry-After.
	r2 := postJSON(t, ts.URL+"/sources", reg("shed"))
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable || r2.Header.Get("Retry-After") == "" {
		t.Errorf("second registration: status %d Retry-After %q, want 503 + header",
			r2.StatusCode, r2.Header.Get("Retry-After"))
	}
	fb := postJSON(t, ts.URL+"/views/"+va.ID+"/feedback", FeedbackRequest{Row: 0, Kind: "valid"})
	io.Copy(io.Discard, fb.Body)
	fb.Body.Close()
	if fb.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("feedback during full queue: status %d, want 503", fb.StatusCode)
	}
	if st := s.ServingStats(); st.ShedWrites != 2 {
		t.Errorf("ShedWrites = %d, want 2", st.ShedWrites)
	}

	bm.armed.Store(false)
	close(bm.release)
	if status := <-done; status != http.StatusCreated {
		t.Errorf("parked registration: status %d, want 201", status)
	}
}

// TestEphemeralQueryLeavesRegistryUntouched pins the POST /query view-leak
// fix: ?ephemeral=1 returns answers byte-identical to a persistent query's
// but registers nothing — not in the server's id registry, not in the
// engine's maintenance set.
func TestEphemeralQueryLeavesRegistryUntouched(t *testing.T) {
	q, s, ts := newAdmissionServer(t, Config{})

	persistent := postJSON(t, ts.URL+"/query", QueryRequest{Q: admissionQuery})
	var pa ViewAnswers
	decode(t, persistent, &pa)
	baseViews := len(q.Views())

	eph := postJSON(t, ts.URL+"/query?ephemeral=1", QueryRequest{Q: admissionQuery})
	if eph.StatusCode != http.StatusOK {
		t.Fatalf("ephemeral status = %d, want 200", eph.StatusCode)
	}
	if eph.Header.Get("X-Q-Epoch") == "" {
		t.Error("ephemeral response missing X-Q-Epoch")
	}
	var ea ViewAnswers
	decode(t, eph, &ea)
	if ea.ID != "" {
		t.Errorf("ephemeral answer carries view id %q", ea.ID)
	}
	if len(ea.Rows) != len(pa.Rows) {
		t.Fatalf("ephemeral rows %d != persistent rows %d", len(ea.Rows), len(pa.Rows))
	}
	for i := range ea.Rows {
		a, _ := json.Marshal(ea.Rows[i])
		b, _ := json.Marshal(pa.Rows[i])
		if !bytes.Equal(a, b) {
			t.Errorf("row %d differs:\nephemeral:  %s\npersistent: %s", i, a, b)
		}
	}

	if got := len(q.Views()); got != baseViews {
		t.Errorf("engine views grew %d -> %d on an ephemeral query", baseViews, got)
	}
	if got := s.viewCount(); got != 1 {
		t.Errorf("server registry has %d views, want 1 (the persistent one)", got)
	}
	if st := s.ServingStats(); st.EphemeralQueries != 1 {
		t.Errorf("EphemeralQueries = %d, want 1", st.EphemeralQueries)
	}
}

// TestMaxViewsCap pins the registry bound: at the cap, non-ephemeral
// queries are shed with 429, ephemeral ones still serve, and DELETE frees
// a slot.
func TestMaxViewsCap(t *testing.T) {
	_, _, ts := newAdmissionServer(t, Config{MaxViews: 2})

	mkQuery := func(i int) QueryRequest {
		return QueryRequest{Q: fmt.Sprintf("'GO:%07d' 'fam_%d'", 1000+i, i%4)}
	}
	var firstID string
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/query", mkQuery(i))
		var va ViewAnswers
		decode(t, resp, &va)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			firstID = va.ID
		}
	}

	over := postJSON(t, ts.URL+"/query", mkQuery(2))
	io.Copy(io.Discard, over.Body)
	over.Body.Close()
	if over.StatusCode != http.StatusTooManyRequests {
		t.Errorf("query at cap: status %d, want 429", over.StatusCode)
	}

	eph := postJSON(t, ts.URL+"/query?ephemeral=1", mkQuery(2))
	io.Copy(io.Discard, eph.Body)
	eph.Body.Close()
	if eph.StatusCode != http.StatusOK {
		t.Errorf("ephemeral at cap: status %d, want 200", eph.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/views/"+firstID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d, want 204", del.StatusCode)
	}

	freed := postJSON(t, ts.URL+"/query", mkQuery(3))
	io.Copy(io.Discard, freed.Body)
	freed.Body.Close()
	if freed.StatusCode != http.StatusCreated {
		t.Errorf("query after DELETE freed a slot: status %d, want 201", freed.StatusCode)
	}
}

// TestDeleteView pins DELETE /views/{id}: the view disappears from the
// registry, the listing, and the engine's maintenance set; a second DELETE
// and subsequent GETs are 404.
func TestDeleteView(t *testing.T) {
	q, _, ts := newAdmissionServer(t, Config{})

	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: admissionQuery})
	var va ViewAnswers
	decode(t, resp, &va)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/views/"+va.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d, want 204", del.StatusCode)
	}
	if n := len(q.Views()); n != 0 {
		t.Errorf("engine still holds %d views after DELETE", n)
	}

	get, err := http.Get(ts.URL + "/views/" + va.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusNotFound {
		t.Errorf("GET after DELETE: status %d, want 404", get.StatusCode)
	}
	again, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	again.Body.Close()
	if again.StatusCode != http.StatusNotFound {
		t.Errorf("double DELETE: status %d, want 404", again.StatusCode)
	}
}

// TestTrailingSlashView pins the /views/{id}/ fix: the trailing-slash form
// serves the same answers as the canonical path instead of "unknown view
// endpoint".
func TestTrailingSlashView(t *testing.T) {
	_, _, ts := newAdmissionServer(t, Config{})
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: admissionQuery})
	var va ViewAnswers
	decode(t, resp, &va)

	canonical, err := http.Get(ts.URL + "/views/" + va.ID)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := io.ReadAll(canonical.Body)
	canonical.Body.Close()

	slashed, err := http.Get(ts.URL + "/views/" + va.ID + "/")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(slashed.Body)
	slashed.Body.Close()
	if slashed.StatusCode != http.StatusOK {
		t.Fatalf("GET /views/%s/: status %d, want 200", va.ID, slashed.StatusCode)
	}
	if !bytes.Equal(cb, sb) {
		t.Errorf("trailing-slash answers differ:\n%s\nvs\n%s", sb, cb)
	}
}

// TestBodyLimit413 pins the MaxBytesReader wrapping: oversized POST bodies
// get 413 on every body-carrying endpoint instead of being read to the
// end.
func TestBodyLimit413(t *testing.T) {
	_, _, ts := newAdmissionServer(t, Config{MaxBodyBytes: 512})

	big := strings.Repeat("x", 2048)
	for _, path := range []string{"/query", "/sources"} {
		resp, err := http.Post(ts.URL+path, "application/json",
			strings.NewReader(`{"q":"`+big+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with %d-byte body: status %d, want 413",
				path, len(big)+8, resp.StatusCode)
		}
	}

	// A within-limit body still works.
	ok := postJSON(t, ts.URL+"/query", QueryRequest{Q: admissionQuery})
	io.Copy(io.Discard, ok.Body)
	ok.Body.Close()
	if ok.StatusCode != http.StatusCreated {
		t.Errorf("within-limit query: status %d, want 201", ok.StatusCode)
	}
}

// TestParallelClamp pins the ?parallel= bound: absurd values are rejected
// with 400, values above the configured ceiling are clamped (the request
// succeeds — answers are byte-identical at any setting, pinned by
// TestParallelKnob).
func TestParallelClamp(t *testing.T) {
	_, _, ts := newAdmissionServer(t, Config{MaxParallel: 2})

	absurd := postJSON(t, ts.URL+"/query?parallel=1000000", QueryRequest{Q: admissionQuery})
	io.Copy(io.Discard, absurd.Body)
	absurd.Body.Close()
	if absurd.StatusCode != http.StatusBadRequest {
		t.Errorf("parallel=1000000: status %d, want 400", absurd.StatusCode)
	}

	clamped := postJSON(t, ts.URL+"/query?parallel=64&ephemeral=1", QueryRequest{Q: admissionQuery})
	io.Copy(io.Discard, clamped.Body)
	clamped.Body.Close()
	if clamped.StatusCode != http.StatusOK {
		t.Errorf("parallel=64 (clamped to 2): status %d, want 200", clamped.StatusCode)
	}
}
