package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"qint/internal/core"
	"qint/internal/datasets"
	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	corpus := datasets.InterProGO()
	if err := q.AddTables(corpus.Tables...); err != nil {
		t.Fatal(err)
	}
	q.AlignAllPairs()
	ts := httptest.NewServer(New(q))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, out interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAndViews(t *testing.T) {
	ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var va ViewAnswers
	decode(t, resp, &va)
	if va.ID != "v0" || len(va.Rows) == 0 {
		t.Fatalf("view answers: %+v", va)
	}
	if va.Rows[0].Cost <= 0 || va.Rows[0].Provenance == "" {
		t.Errorf("row metadata missing: %+v", va.Rows[0])
	}

	// List views.
	lresp, err := http.Get(ts.URL + "/views")
	if err != nil {
		t.Fatal(err)
	}
	var list []ViewSummary
	decode(t, lresp, &list)
	if len(list) != 1 || list[0].ID != "v0" {
		t.Fatalf("views list: %+v", list)
	}

	// Fetch by id.
	gresp, err := http.Get(ts.URL + "/views/v0")
	if err != nil {
		t.Fatal(err)
	}
	var va2 ViewAnswers
	decode(t, gresp, &va2)
	if len(va2.Rows) != len(va.Rows) {
		t.Errorf("rows differ between create and get")
	}

	// Unknown view.
	nf, err := http.Get(ts.URL + "/views/v99")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("v99 status = %d", nf.StatusCode)
	}
}

func TestFeedbackEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	var va ViewAnswers
	decode(t, resp, &va)

	fresp := postJSON(t, ts.URL+"/views/v0/feedback", FeedbackRequest{Row: 0, Kind: "valid"})
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status = %d", fresp.StatusCode)
	}
	var after ViewAnswers
	decode(t, fresp, &after)
	if len(after.Rows) == 0 {
		t.Error("view lost answers after feedback")
	}

	bad := postJSON(t, ts.URL+"/views/v0/feedback", FeedbackRequest{Row: 0, Kind: "meh"})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind status = %d", bad.StatusCode)
	}
	// Out-of-range rows are a conflict, not a bad request: the index may
	// have been valid against the materialisation the client read before
	// a concurrent write re-ranked it. 409 tells the client to re-read.
	oob := postJSON(t, ts.URL+"/views/v0/feedback", FeedbackRequest{Row: 10_000, Kind: "valid"})
	oob.Body.Close()
	if oob.StatusCode != http.StatusConflict {
		t.Errorf("out-of-range row status = %d, want %d", oob.StatusCode, http.StatusConflict)
	}
	if oob.Header.Get("X-Q-Epoch") == "" {
		t.Error("409 response missing X-Q-Epoch header")
	}
}

func TestRegisterSourceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// A view makes VIEWBASEDALIGNER meaningful.
	postJSON(t, ts.URL+"/query", QueryRequest{Q: "'PUB00001' title"}).Body.Close()

	req := RegisterRequest{
		Source:   "ext",
		Strategy: "viewbased",
		Tables: []TableSpec{{
			Name:       "citations",
			Attributes: []string{"pub_id", "cited_by"},
			Rows:       [][]string{{"PUB00001", "PUB00002"}, {"PUB00003", "PUB00001"}},
		}},
	}
	resp := postJSON(t, ts.URL+"/sources", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	var rr RegisterResponse
	decode(t, resp, &rr)
	if rr.Source != "ext" || len(rr.NewRelations) != 1 {
		t.Fatalf("register response: %+v", rr)
	}
	if len(rr.Alignments) == 0 {
		t.Error("expected discovered alignments (pub_id overlaps)")
	}

	// Duplicate registration conflicts.
	dup := postJSON(t, ts.URL+"/sources", req)
	dup.Body.Close()
	if dup.StatusCode != http.StatusConflict {
		t.Errorf("duplicate status = %d", dup.StatusCode)
	}

	// Stats reflect the new source.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	decode(t, sresp, &stats)
	if stats.Relations != 9 {
		t.Errorf("relations = %d, want 9", stats.Relations)
	}
	found := false
	for _, s := range stats.Sources {
		if s == "ext" {
			found = true
		}
	}
	if !found {
		t.Errorf("ext missing from sources: %v", stats.Sources)
	}
}

func TestRegisterValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		body interface{}
		want int
	}{
		{map[string]string{"source": ""}, http.StatusBadRequest},
		{RegisterRequest{Source: "x", Strategy: "bogus",
			Tables: []TableSpec{{Name: "t", Attributes: []string{"a"}}}}, http.StatusBadRequest},
		{RegisterRequest{Source: "x",
			Tables: []TableSpec{{Name: "t", Attributes: []string{"a"},
				Rows: [][]string{{"1", "2"}}}}}, http.StatusBadRequest}, // row width
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/sources", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, c.want)
		}
	}
}

func TestAssociationsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/associations")
	if err != nil {
		t.Fatal(err)
	}
	var list []AssociationInfo
	decode(t, resp, &list)
	if len(list) == 0 {
		t.Fatal("expected association edges")
	}
	for _, a := range list {
		if a.A == "" || a.B == "" || a.Cost <= 0 {
			t.Errorf("malformed association: %+v", a)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/query", "/sources"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/views", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /views = %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts := newTestServer(t)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp := postJSON(t, ts.URL+"/query",
				QueryRequest{Q: fmt.Sprintf("'GO:%07d' 'fam_%d'", 1000+i, i)})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	resp, err := http.Get(ts.URL + "/views")
	if err != nil {
		t.Fatal(err)
	}
	var list []ViewSummary
	decode(t, resp, &list)
	if len(list) != n {
		t.Errorf("views = %d, want %d", len(list), n)
	}
}

// Views the core already holds when the server is constructed — e.g.
// restored from a durable snapshot by core.Open — must be addressable
// over HTTP, and new queries must keep minting unique ids after them.
func TestPreexistingViewsSeeded(t *testing.T) {
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	corpus := datasets.InterProGO()
	if err := q.AddTables(corpus.Tables...); err != nil {
		t.Fatal(err)
	}
	q.AlignAllPairs()
	if _, err := q.Query("'GO:0001000' 'fam_0'"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(q))
	t.Cleanup(ts.Close)

	lresp, err := http.Get(ts.URL + "/views")
	if err != nil {
		t.Fatal(err)
	}
	var list []ViewSummary
	decode(t, lresp, &list)
	if len(list) != 1 || list[0].ID != "v0" {
		t.Fatalf("seeded views = %+v, want one entry v0", list)
	}
	gresp, err := http.Get(ts.URL + "/views/v0")
	if err != nil {
		t.Fatal(err)
	}
	var va ViewAnswers
	decode(t, gresp, &va)
	if gresp.StatusCode != http.StatusOK || len(va.Rows) == 0 {
		t.Fatalf("GET seeded view: status %d, %d rows", gresp.StatusCode, len(va.Rows))
	}

	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	var next ViewAnswers
	decode(t, resp, &next)
	if next.ID != "v1" {
		t.Fatalf("post-seed query id = %q, want v1", next.ID)
	}
}
