package server

import (
	"net/http"
	"strconv"
	"testing"

	"qint/internal/core"
)

// TestEpochHeaderOnAnswers pins the X-Q-Epoch contract: every
// answer-carrying response names the published generation its answers were
// computed at, the header matches between POST /query and GET /views/{id}
// on a quiesced instance, and a write (feedback) moves it forward.
func TestEpochHeaderOnAnswers(t *testing.T) {
	ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	queryEpoch := epochHeader(t, resp)
	if queryEpoch == 0 {
		t.Fatal("POST /query: X-Q-Epoch missing or zero")
	}
	var va ViewAnswers
	decode(t, resp, &va)

	getResp, err := http.Get(ts.URL + "/views/" + va.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := epochHeader(t, getResp); got != queryEpoch {
		t.Fatalf("GET /views/%s epoch = %d, want %d (no write in between)", va.ID, got, queryEpoch)
	}
	getResp.Body.Close()

	// Feedback is a write: its echo (and subsequent reads) must carry a
	// LATER epoch than the pre-write answers.
	fbResp := postJSON(t, ts.URL+"/views/"+va.ID+"/feedback", FeedbackRequest{Row: 0, Kind: "valid"})
	if fbResp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status = %d", fbResp.StatusCode)
	}
	fbEpoch := epochHeader(t, fbResp)
	fbResp.Body.Close()
	if fbEpoch <= queryEpoch {
		t.Fatalf("feedback epoch = %d, want > %d", fbEpoch, queryEpoch)
	}
}

func epochHeader(t *testing.T, resp *http.Response) uint64 {
	t.Helper()
	h := resp.Header.Get("X-Q-Epoch")
	if h == "" {
		return 0
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		t.Fatalf("bad X-Q-Epoch %q: %v", h, err)
	}
	return e
}

// TestStatsReportsCacheCounters pins the /stats cache block: after the
// same query twice, the materialisation cache must report at least one hit
// and one compute, and the epoch must be the published generation.
func TestStatsReportsCacheCounters(t *testing.T) {
	ts := newTestServer(t)

	// Twice the same query (a materialisation hit), then a different query
	// sharing a keyword (an expansion hit — a materialisation hit would
	// short-circuit before the expansion cache is consulted).
	for _, query := range []string{"'GO:0001000' 'fam_0'", "'GO:0001000' 'fam_0'", "'GO:0001000' 'fam_1'"} {
		resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: query})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	decode(t, resp, &stats)
	if !stats.Cache.Enabled {
		t.Fatal("cache reported disabled under default options")
	}
	m := stats.Cache.Materialization
	if m.Hits < 1 {
		t.Errorf("materialization hits = %d, want >= 1 (second identical query)", m.Hits)
	}
	if m.Computes < 1 || m.Entries < 1 {
		t.Errorf("materialization computes=%d entries=%d, want >= 1 each", m.Computes, m.Entries)
	}
	if e := stats.Cache.Expansion; e.Hits < 1 {
		t.Errorf("expansion hits = %d, want >= 1", e.Hits)
	}
	if stats.Epoch == 0 {
		t.Error("stats epoch = 0, want the published generation")
	}
	if stats.Plan.BranchesPlanned < 1 {
		t.Errorf("plan branches_planned = %d, want >= 1 (planner on by default)", stats.Plan.BranchesPlanned)
	}
}

// TestStatsCacheDisabled pins the disabled shape: a Q built with
// QueryCacheDisabled reports Enabled=false and all-zero counters.
func TestStatsCacheDisabled(t *testing.T) {
	opts := core.DefaultOptions()
	opts.QueryCacheDisabled = true
	q := core.New(opts)
	var zero core.CacheStats
	if got := q.CacheStats(); got != zero {
		t.Fatalf("disabled cache stats = %+v, want zero", got)
	}
}
