// Package server exposes Q over HTTP+JSON: the registration service of
// paper §3 ("Q includes a registration service for new tables and data
// sources: this mechanism can be manually activated by the user ... or
// could ultimately be triggered directly by a Web crawler"), plus keyword
// querying and answer feedback, so crawlers and UIs can drive a long-lived
// Q instance remotely.
//
// Endpoints (all JSON):
//
//	POST /sources            register a new source           (RegisterRequest)
//	POST /query              create a persistent view        (QueryRequest)
//	GET  /views              list views
//	GET  /views/{id}         one view's ranked answers
//	POST /views/{id}/feedback  mark an answer valid/invalid  (FeedbackRequest)
//	GET  /associations       association edges with costs
//	GET  /stats              catalog, graph and query-cache statistics
//
// Answer-carrying responses (POST /query, GET /views/{id}, and the
// feedback echo) include an X-Q-Epoch header: the immutable published
// state generation the answers were computed at. Identical queries at the
// same epoch return byte-identical answers — the engine serves them from
// its epoch-keyed cache — so HTTP clients can key their own caches by
// (epoch, query) and treat entries as immutable; a response with a higher
// epoch signals that a write has been published since.
//
// Concurrency model: POST /query is a pure READ of Q. Each query runs
// against the copy-on-write snapshot Q last published — expanding its
// keywords into a private search-graph overlay — so any number of queries
// execute fully concurrently with each other AND with an in-flight
// registration or feedback update; the server takes no lock around them.
// The true writers (POST /sources, POST /views/{id}/feedback) serialise
// inside Q on its writer mutex and commit by atomic snapshot swap, so a
// long registration never blocks a query: a query started before the
// commit answers from the pre-registration world, one started after sees
// the new source. The server's own mutex guards only the view registry
// (id ↔ view bookkeeping); view contents swap atomically per view, so GET
// endpoints read them lock-free. Inside one query, Q fans tree translation
// and branch execution across a bounded worker pool
// (core.Options.Parallelism); POST /query accepts a ?parallel=N query
// parameter to size that request's own fan-out (the ranked answers are
// byte-identical at any setting). View IDs come from an atomic counter
// assigned at creation, not from slice positions, so they stay stable no
// matter how concurrent creations interleave.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"qint/internal/core"
	"qint/internal/relstore"
)

// viewEntry binds a persistent view to its stable wire ID.
type viewEntry struct {
	id   string
	view *core.View
}

// Server wraps a Q instance and implements http.Handler. Its mutex guards
// only the id↔view registry: Q itself is snapshot-based (queries are
// lock-free reads, writers serialise internally).
type Server struct {
	mu     sync.RWMutex // guards views and byID only
	q      *core.Q
	views  []viewEntry           // creation order
	byID   map[string]*core.View // stable id -> view
	nextID atomic.Int64
	mux    *http.ServeMux
}

// New wraps q. The caller should have registered matchers and initial
// tables already. Views the instance already holds (e.g. restored from a
// durable snapshot by core.Open) are seeded into the id registry in
// creation order, so they are addressable over HTTP after a restart.
func New(q *core.Q) *Server {
	s := &Server{q: q, byID: make(map[string]*core.View)}
	for _, v := range q.Views() {
		id := fmt.Sprintf("v%d", s.nextID.Add(1)-1)
		s.views = append(s.views, viewEntry{id: id, view: v})
		s.byID[id] = v
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/sources", s.handleSources)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/views/", s.handleViewByID)
	mux.HandleFunc("/associations", s.handleAssociations)
	mux.HandleFunc("/stats", s.handleStats)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TableSpec is the wire form of one table in a registration request.
type TableSpec struct {
	Name        string                `json:"name"`
	Attributes  []string              `json:"attributes"`
	ForeignKeys []relstore.ForeignKey `json:"foreign_keys,omitempty"`
	Rows        [][]string            `json:"rows"`
}

// RegisterRequest registers one new source.
type RegisterRequest struct {
	Source   string      `json:"source"`
	Tables   []TableSpec `json:"tables"`
	Strategy string      `json:"strategy"` // exhaustive | viewbased | preferential
}

// RegisterResponse reports the outcome.
type RegisterResponse struct {
	Source          string             `json:"source"`
	NewRelations    []string           `json:"new_relations"`
	TargetsCompared []string           `json:"targets_compared"`
	AttrComparisons int                `json:"attr_comparisons"`
	Alignments      map[string]float64 `json:"alignments"`
}

// QueryRequest creates a view.
type QueryRequest struct {
	Q string `json:"q"`
}

// ViewSummary describes one persistent view.
type ViewSummary struct {
	ID       string   `json:"id"`
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	Alpha    float64  `json:"alpha"`
	Answers  int      `json:"answers"`
}

// ViewAnswers carries a view's ranked rows.
type ViewAnswers struct {
	ViewSummary
	Columns []string    `json:"columns"`
	Rows    []AnswerRow `json:"rows"`
}

// AnswerRow is one ranked tuple.
type AnswerRow struct {
	Values     []string `json:"values"`
	Cost       float64  `json:"cost"`
	Provenance string   `json:"provenance"`
}

// FeedbackRequest annotates one answer of a view.
type FeedbackRequest struct {
	Row  int    `json:"row"`
	Kind string `json:"kind"` // valid | invalid
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.Source == "" || len(req.Tables) == 0 {
		httpError(w, http.StatusBadRequest, "source and tables required")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tables := make([]*relstore.Table, 0, len(req.Tables))
	for _, ts := range req.Tables {
		rel := &relstore.Relation{Source: req.Source, Name: ts.Name, ForeignKeys: ts.ForeignKeys}
		for _, a := range ts.Attributes {
			rel.Attributes = append(rel.Attributes, relstore.Attribute{Name: a})
		}
		t, err := relstore.NewTable(rel, ts.Rows)
		if err != nil {
			httpError(w, http.StatusBadRequest, "table %s: %v", ts.Name, err)
			return
		}
		tables = append(tables, t)
	}

	// Writers serialise inside Q; queries keep flowing against the previous
	// snapshot until the registration commits.
	report, err := s.q.RegisterSource(tables, strategy)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		Source:          report.Source,
		NewRelations:    report.NewRelations,
		TargetsCompared: report.TargetsCompared,
		AttrComparisons: report.AttrComparisons,
		Alignments:      report.AlignmentsByPair,
	})
}

func parseStrategy(s string) (core.AlignStrategy, error) {
	switch strings.ToLower(s) {
	case "", "viewbased", "view-based":
		return core.ViewBased, nil
	case "exhaustive":
		return core.Exhaustive, nil
	case "preferential":
		return core.Preferential, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	parallel := 0
	if p := r.URL.Query().Get("parallel"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "parallel must be a positive integer")
			return
		}
		parallel = n
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	// The query itself is a lock-free read of Q's published snapshot; only
	// the registry append below takes the server mutex, briefly. Repeated
	// queries answer from the engine's epoch-keyed materialisation cache.
	v, err := s.q.QueryWith(req.Q, parallel)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := fmt.Sprintf("v%d", s.nextID.Add(1)-1)
	s.mu.Lock()
	s.views = append(s.views, viewEntry{id: id, view: v})
	s.byID[id] = v
	s.mu.Unlock()
	m := v.Current()
	setEpochHeader(w, m)
	writeJSON(w, http.StatusCreated, answersOfMat(id, v, m))
}

// setEpochHeader stamps the response with the published-state generation
// the answers were computed at. Epochs identify immutable generations, so
// clients can treat (epoch, query) as an immutable cache key of their own —
// the same contract the engine's internal cache is built on; a response
// carrying a new epoch is the signal that previous entries are stale.
func setEpochHeader(w http.ResponseWriter, m core.Materialization) {
	w.Header().Set("X-Q-Epoch", strconv.FormatUint(m.Epoch, 10))
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	entries := append([]viewEntry(nil), s.views...)
	s.mu.RUnlock()
	out := make([]ViewSummary, len(entries))
	for i, e := range entries {
		out[i] = summaryOf(e.id, e.view)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleViewByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/views/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.RLock()
	v, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no view %s", id)
		return
	}

	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		m := v.Current()
		setEpochHeader(w, m)
		writeJSON(w, http.StatusOK, answersOfMat(id, v, m))
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		kind := core.FeedbackValid
		switch strings.ToLower(req.Kind) {
		case "valid":
		case "invalid":
			kind = core.FeedbackInvalid
		default:
			httpError(w, http.StatusBadRequest, "kind must be valid or invalid")
			return
		}
		if err := s.q.FeedbackRow(v, req.Row, kind); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m := v.Current()
		setEpochHeader(w, m)
		writeJSON(w, http.StatusOK, answersOfMat(id, v, m))
	default:
		httpError(w, http.StatusNotFound, "unknown view endpoint")
	}
}

// summaryOf reads one coherent materialisation of the view (a single
// atomic load via Current — no lock needed, and α always matches the rows
// counted even under a concurrent Refresh).
func summaryOf(id string, v *core.View) ViewSummary {
	return summaryOfMat(id, v, v.Current())
}

func summaryOfMat(id string, v *core.View, m core.Materialization) ViewSummary {
	answers := 0
	if m.Result != nil {
		answers = len(m.Result.Rows)
	}
	return ViewSummary{
		ID:       id,
		Keywords: v.Keywords,
		K:        v.K,
		Alpha:    m.Alpha,
		Answers:  answers,
	}
}

// answersOfMat renders one already-loaded materialisation, so a handler
// that also stamps X-Q-Epoch reports the same generation in header and
// body even under a concurrent Refresh.
func answersOfMat(id string, v *core.View, m core.Materialization) ViewAnswers {
	out := ViewAnswers{ViewSummary: summaryOfMat(id, v, m)}
	if m.Result == nil {
		return out
	}
	out.Columns = m.Result.Columns
	for _, row := range m.Result.TopK(v.K) {
		out.Rows = append(out.Rows, AnswerRow{
			Values:     row.Values,
			Cost:       row.Cost,
			Provenance: row.Provenance,
		})
	}
	return out
}

// AssociationInfo is the wire form of one association edge.
type AssociationInfo struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Cost float64 `json:"cost"`
}

func (s *Server) handleAssociations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// Read the published graph snapshot — no lock, coherent by construction.
	list := s.q.CurrentGraph().AssociationList()
	out := make([]AssociationInfo, len(list))
	for i, a := range list {
		out[i] = AssociationInfo{A: a.A.String(), B: a.B.String(), Cost: a.Cost}
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse summarises the running instance. Epoch is the currently
// published state generation; Cache carries the serving-layer query-cache
// counters (hits, misses, computes, coalesced, evictions, entries, live
// epochs — per cache); Plan carries the cost-based join planner's
// accumulated counters (branches planned and reordered, shared join
// subtrees, subplans materialised, cross-branch CSE hits — all zero with
// Options.PlannerOff).
type StatsResponse struct {
	Relations  int             `json:"relations"`
	Attributes int             `json:"attributes"`
	Sources    []string        `json:"sources"`
	Nodes      map[string]int  `json:"nodes"`
	Edges      map[string]int  `json:"edges"`
	Views      int             `json:"views"`
	Epoch      uint64          `json:"epoch"`
	Cache      core.CacheStats `json:"cache"`
	Plan       core.PlanStats  `json:"plan"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	graph := s.q.CurrentGraph()
	cat := s.q.CurrentCatalog()
	sum := graph.Summary()
	s.mu.RLock()
	nViews := len(s.views)
	s.mu.RUnlock()
	resp := StatsResponse{
		Relations:  cat.NumRelations(),
		Attributes: cat.NumAttributes(),
		Sources:    cat.Sources(),
		Nodes: map[string]int{
			"relation": sum.Relations, "attribute": sum.Attributes,
			"value": sum.Values, "keyword": sum.Keywords,
		},
		Edges: make(map[string]int, len(sum.ByEdgeKind)),
		Views: nViews,
		Epoch: s.q.Epoch(),
		Cache: s.q.CacheStats(),
		Plan:  s.q.PlanStats(),
	}
	for k, n := range sum.ByEdgeKind {
		resp.Edges[k.String()] = n
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
