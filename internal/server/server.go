// Package server exposes Q over HTTP+JSON: the registration service of
// paper §3 ("Q includes a registration service for new tables and data
// sources: this mechanism can be manually activated by the user ... or
// could ultimately be triggered directly by a Web crawler"), plus keyword
// querying and answer feedback, so crawlers and UIs can drive a long-lived
// Q instance remotely.
//
// Endpoints (all JSON):
//
//	POST   /sources            register a new source           (RegisterRequest)
//	POST   /query              create a persistent view        (QueryRequest)
//	POST   /query?ephemeral=1  answers only — no view is registered
//	GET    /views              list views
//	GET    /views/{id}         one view's ranked answers
//	DELETE /views/{id}         drop a view from the registry
//	POST   /views/{id}/feedback  mark an answer valid/invalid  (FeedbackRequest)
//	GET    /associations       association edges with costs
//	GET    /stats              catalog, graph, query-cache and serving statistics
//
// # Serving limits (admission control)
//
// The server bounds its own resource usage under load instead of letting
// each request size it (Config; every knob has a qserver flag):
//
//   - At most Config.MaxInFlightQueries POST /query requests execute at
//     once. Over-limit queries are shed immediately with 429 Too Many
//     Requests + a Retry-After header — they never start engine work, so
//     an overload cannot pile up goroutines behind the executor.
//   - Writes (POST /sources, POST /views/{id}/feedback) pass a bounded
//     admission queue of depth Config.WriteQueueDepth: admitted writes
//     serialise inside Q on its writer mutex, and once the queue is full
//     further writes are shed with 503 Service Unavailable + Retry-After
//     (backpressure — the client should slow down, the work is durable so
//     429 "try the same request again" semantics would be wrong for
//     non-idempotent registrations).
//   - ?parallel= is clamped to Config.MaxParallel (default GOMAXPROCS);
//     values beyond an absurdity threshold are rejected with 400 so one
//     request can never size its own goroutine explosion.
//   - The view registry holds at most Config.MaxViews persistent views;
//     at the cap, non-ephemeral POST /query gets 429 until DELETE
//     /views/{id} (or ?ephemeral=1) is used. Ephemeral queries never
//     touch the registry.
//   - POST bodies are capped at Config.MaxBodyBytes via
//     http.MaxBytesReader; oversized bodies get 413.
//   - Feedback naming a row the view's current materialisation does not
//     have gets 409 Conflict (not 400): a concurrent weight update can
//     rematerialise the view between the client reading its rows and
//     posting feedback, so the index may simply be stale — re-read the
//     view (the response carries the current X-Q-Epoch) and resubmit.
//
// Shed/served/in-flight/queue-depth counters are served under "serving"
// on GET /stats.
//
// Answer-carrying responses (POST /query, GET /views/{id}, and the
// feedback echo) include an X-Q-Epoch header: the immutable published
// state generation the answers were computed at. Identical queries at the
// same epoch return byte-identical answers — the engine serves them from
// its epoch-keyed cache — so HTTP clients can key their own caches by
// (epoch, query) and treat entries as immutable; a response with a higher
// epoch signals that a write has been published since.
//
// Concurrency model: POST /query is a pure READ of Q. Each query runs
// against the copy-on-write snapshot Q last published — expanding its
// keywords into a private search-graph overlay — so any number of queries
// execute fully concurrently with each other AND with an in-flight
// registration or feedback update; the server takes no lock around them.
// The true writers (POST /sources, POST /views/{id}/feedback) serialise
// inside Q on its writer mutex and commit by atomic snapshot swap, so a
// long registration never blocks a query: a query started before the
// commit answers from the pre-registration world, one started after sees
// the new source. The server's own mutex guards only the view registry
// (id ↔ view bookkeeping); view contents swap atomically per view, so GET
// endpoints read them lock-free. Inside one query, Q fans tree translation
// and branch execution across a bounded worker pool
// (core.Options.Parallelism); POST /query accepts a ?parallel=N query
// parameter to size that request's own fan-out (the ranked answers are
// byte-identical at any setting). View IDs come from an atomic counter
// assigned at creation, not from slice positions, so they stay stable no
// matter how concurrent creations interleave.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qint/internal/core"
	"qint/internal/obs"
	"qint/internal/relstore"
)

// maxParallelAbsurd is the ?parallel= rejection threshold: values at or
// below it are silently clamped to Config.MaxParallel, values above it are
// a client bug (or an attack) and get 400.
const maxParallelAbsurd = 4096

// Config bounds the server's resource usage under load. The zero value of
// any field selects its default; see the package comment for the shedding
// contract each limit enforces.
type Config struct {
	// MaxInFlightQueries caps concurrent POST /query executions; further
	// queries are shed with 429 + Retry-After. Default 4×GOMAXPROCS with
	// a floor of 16 (queries block on I/O too — the limit exists to stop
	// unbounded pile-up, not to pin one request per core).
	MaxInFlightQueries int
	// WriteQueueDepth caps queued-or-running writes (POST /sources,
	// feedback); further writes are shed with 503 + Retry-After.
	// Default 8.
	WriteQueueDepth int
	// MaxParallel is the ceiling a ?parallel= request can ask for; higher
	// values (up to maxParallelAbsurd) are clamped. Default GOMAXPROCS.
	MaxParallel int
	// MaxViews caps the persistent view registry; at the cap,
	// non-ephemeral POST /query gets 429. Default 10000.
	MaxViews int
	// MaxBodyBytes caps POST request bodies (413 beyond it).
	// Default 8 MiB.
	MaxBodyBytes int64
	// SlowQueryThreshold, when positive, makes the server log every query
	// whose wall time reaches it — one entry with the query text, the
	// X-Q-Trace id and the full stage breakdown — and count it in
	// qint_slow_queries_total. Zero disables the slow-query log.
	SlowQueryThreshold time.Duration
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxInFlightQueries <= 0 {
		c.MaxInFlightQueries = max(16, 4*runtime.GOMAXPROCS(0))
	}
	if c.WriteQueueDepth <= 0 {
		c.WriteQueueDepth = 8
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = runtime.GOMAXPROCS(0)
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// viewEntry binds a persistent view to its stable wire ID.
type viewEntry struct {
	id   string
	view *core.View
}

// servingCounters are the admission-control observables served on /stats.
// They are registry-owned (resolved from the engine's obs.Registry in
// NewWith), so the same numbers appear as qint_serving_* families on
// /metrics; registration is idempotent, so a second Server over the same Q
// continues the totals rather than forking them.
type servingCounters struct {
	servedQueries    *obs.Counter // queries admitted and executed
	ephemeralQueries *obs.Counter // subset of served that skipped the registry
	shedQueries      *obs.Counter // 429s from the in-flight limit or view cap
	shedWrites       *obs.Counter // 503s from the write queue
	viewsDeleted     *obs.Counter // DELETE /views/{id} successes
}

// Server wraps a Q instance and implements http.Handler. Its mutex guards
// only the id↔view registry: Q itself is snapshot-based (queries are
// lock-free reads, writers serialise internally). Admission control
// (queryTokens/writeTokens) sits in front of the handlers — a request that
// cannot take a token is answered and gone before it touches the engine.
type Server struct {
	mu     sync.RWMutex // guards views and byID only
	q      *core.Q
	views  []viewEntry           // creation order
	byID   map[string]*core.View // stable id -> view
	nextID atomic.Int64
	mux    *http.ServeMux

	cfg         Config
	queryTokens chan struct{} // in-flight query admissions
	writeTokens chan struct{} // queued-or-running write admissions
	counters    servingCounters
	slowQueries *obs.Counter
	started     time.Time

	// queryBarrier, when non-nil, is invoked while an admitted query holds
	// its token and before engine work starts. Tests use it to park
	// admitted queries in flight deterministically.
	queryBarrier func()
}

// New wraps q with default serving limits. The caller should have
// registered matchers and initial tables already. Views the instance
// already holds (e.g. restored from a durable snapshot by core.Open) are
// seeded into the id registry in creation order, so they are addressable
// over HTTP after a restart.
func New(q *core.Q) *Server { return NewWith(q, Config{}) }

// NewWith wraps q with explicit serving limits (zero fields take their
// defaults).
func NewWith(q *core.Q, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		q:           q,
		byID:        make(map[string]*core.View),
		cfg:         cfg,
		queryTokens: make(chan struct{}, cfg.MaxInFlightQueries),
		writeTokens: make(chan struct{}, cfg.WriteQueueDepth),
		started:     time.Now(),
	}
	s.instrument()
	for _, v := range q.Views() {
		id := fmt.Sprintf("v%d", s.nextID.Add(1)-1)
		s.views = append(s.views, viewEntry{id: id, view: v})
		s.byID[id] = v
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/sources", s.handleSources)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/views/", s.handleViewByID)
	mux.HandleFunc("/associations", s.handleAssociations)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// instrument resolves the serving counters from the engine's registry and
// registers the server-level gauges. Counter resolution is idempotent
// (same name → same counter) and gauge callbacks use replacement semantics
// (the latest Server's closure wins), so building a second Server over one
// Q — common in tests and restarts — never double-registers.
func (s *Server) instrument() {
	reg := s.q.Metrics()
	s.counters = servingCounters{
		servedQueries:    reg.Counter("qint_serving_served_queries_total", "Queries admitted and executed."),
		ephemeralQueries: reg.Counter("qint_serving_ephemeral_queries_total", "Served queries that skipped the view registry."),
		shedQueries:      reg.Counter("qint_serving_shed_queries_total", "Queries shed with 429 (in-flight limit or view cap)."),
		shedWrites:       reg.Counter("qint_serving_shed_writes_total", "Writes shed with 503 (admission queue full)."),
		viewsDeleted:     reg.Counter("qint_serving_views_deleted_total", "Successful DELETE /views/{id} requests."),
	}
	s.slowQueries = reg.Counter("qint_slow_queries_total", "Queries whose wall time reached the slow-query threshold.")
	reg.GaugeFunc("qint_serving_inflight_queries", "Queries currently holding an admission token.", func() float64 {
		return float64(len(s.queryTokens))
	})
	reg.GaugeFunc("qint_serving_queued_writes", "Writes currently queued or running.", func() float64 {
		return float64(len(s.writeTokens))
	})
	reg.GaugeFunc("qint_uptime_seconds", "Seconds since this server was constructed.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	b := buildInfo()
	reg.GaugeFunc("qint_build_info", "Build information; the value is always 1.", func() float64 { return 1 },
		obs.Label{Name: "go_version", Value: b.GoVersion},
		obs.Label{Name: "module", Value: b.Module},
		obs.Label{Name: "revision", Value: b.Revision})
}

// handleMetrics serves the registry in Prometheus text exposition format
// 0.0.4 — engine and serving families together, since both register into
// the engine's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.q.Metrics().WritePrometheus(w); err != nil {
		logf("server: writing /metrics: %v", err)
	}
}

// BuildInfo identifies the running binary on /stats and as the
// qint_build_info labels.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Revision  string `json:"revision"`
}

// buildInfo reads the binary's embedded build metadata. Fields the build
// did not stamp (e.g. no VCS info under `go test`) come back "unknown".
func buildInfo() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), Module: "unknown", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Path != "" {
		b.Module = bi.Main.Path
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			b.Revision = kv.Value
		}
	}
	return b
}

// admitWrite takes one write-queue slot without blocking. The returned
// release must be called when the write finishes; ok=false means the queue
// is full and the caller should shed.
func (s *Server) admitWrite() (release func(), ok bool) {
	select {
	case s.writeTokens <- struct{}{}:
		return func() { <-s.writeTokens }, true
	default:
		return nil, false
	}
}

// shedWrite answers a write that found the admission queue full: 503 +
// Retry-After, counted. 503 (not 429) because the correct client reaction
// is backoff, and retrying a non-idempotent registration verbatim is the
// client's call to make once the queue drains.
func (s *Server) shedWrite(w http.ResponseWriter) {
	s.counters.shedWrites.Add(1)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable,
		"write queue full (depth %d); retry after backoff", s.cfg.WriteQueueDepth)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TableSpec is the wire form of one table in a registration request.
type TableSpec struct {
	Name        string                `json:"name"`
	Attributes  []string              `json:"attributes"`
	ForeignKeys []relstore.ForeignKey `json:"foreign_keys,omitempty"`
	Rows        [][]string            `json:"rows"`
}

// RegisterRequest registers one new source.
type RegisterRequest struct {
	Source   string      `json:"source"`
	Tables   []TableSpec `json:"tables"`
	Strategy string      `json:"strategy"` // exhaustive | viewbased | preferential
}

// RegisterResponse reports the outcome.
type RegisterResponse struct {
	Source          string             `json:"source"`
	NewRelations    []string           `json:"new_relations"`
	TargetsCompared []string           `json:"targets_compared"`
	AttrComparisons int                `json:"attr_comparisons"`
	Alignments      map[string]float64 `json:"alignments"`
}

// QueryRequest creates a view.
type QueryRequest struct {
	Q string `json:"q"`
}

// ViewSummary describes one persistent view.
type ViewSummary struct {
	ID       string   `json:"id"`
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	Alpha    float64  `json:"alpha"`
	Answers  int      `json:"answers"`
}

// ViewAnswers carries a view's ranked rows.
type ViewAnswers struct {
	ViewSummary
	Columns []string    `json:"columns"`
	Rows    []AnswerRow `json:"rows"`
}

// AnswerRow is one ranked tuple.
type AnswerRow struct {
	Values     []string `json:"values"`
	Cost       float64  `json:"cost"`
	Provenance string   `json:"provenance"`
}

// FeedbackRequest annotates one answer of a view.
type FeedbackRequest struct {
	Row  int    `json:"row"`
	Kind string `json:"kind"` // valid | invalid
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	release, ok := s.admitWrite()
	if !ok {
		s.shedWrite(w)
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if isBodyTooLarge(err) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.Source == "" || len(req.Tables) == 0 {
		httpError(w, http.StatusBadRequest, "source and tables required")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tables := make([]*relstore.Table, 0, len(req.Tables))
	for _, ts := range req.Tables {
		rel := &relstore.Relation{Source: req.Source, Name: ts.Name, ForeignKeys: ts.ForeignKeys}
		for _, a := range ts.Attributes {
			rel.Attributes = append(rel.Attributes, relstore.Attribute{Name: a})
		}
		t, err := relstore.NewTable(rel, ts.Rows)
		if err != nil {
			httpError(w, http.StatusBadRequest, "table %s: %v", ts.Name, err)
			return
		}
		tables = append(tables, t)
	}

	// Writers serialise inside Q; queries keep flowing against the previous
	// snapshot until the registration commits.
	report, err := s.q.RegisterSource(tables, strategy)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		Source:          report.Source,
		NewRelations:    report.NewRelations,
		TargetsCompared: report.TargetsCompared,
		AttrComparisons: report.AttrComparisons,
		Alignments:      report.AlignmentsByPair,
	})
}

func parseStrategy(s string) (core.AlignStrategy, error) {
	switch strings.ToLower(s) {
	case "", "viewbased", "view-based":
		return core.ViewBased, nil
	case "exhaustive":
		return core.Exhaustive, nil
	case "preferential":
		return core.Preferential, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Admission: take an in-flight slot or shed NOW, before any engine
	// work — an overload turns into fast 429s, not a goroutine pile-up.
	select {
	case s.queryTokens <- struct{}{}:
		defer func() { <-s.queryTokens }()
	default:
		s.counters.shedQueries.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"query admission limit reached (%d in flight); retry after backoff",
			s.cfg.MaxInFlightQueries)
		return
	}
	if s.queryBarrier != nil {
		s.queryBarrier()
	}
	parallel := 0
	if p := r.URL.Query().Get("parallel"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "parallel must be a positive integer")
			return
		}
		if n > maxParallelAbsurd {
			httpError(w, http.StatusBadRequest,
				"parallel=%d exceeds the absurdity threshold %d", n, maxParallelAbsurd)
			return
		}
		// Clamp, don't reject: the answers are byte-identical at any
		// setting, the ceiling only bounds this request's fan-out.
		if n > s.cfg.MaxParallel {
			n = s.cfg.MaxParallel
		}
		parallel = n
	}
	ephemeral := isTruthy(r.URL.Query().Get("ephemeral"))
	if !ephemeral && s.viewCount() >= s.cfg.MaxViews {
		// Cheap pre-check so a query storm at the cap sheds before doing
		// engine work; the append below re-checks authoritatively.
		s.shedViewCap(w)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if isBodyTooLarge(err) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	// The query itself is a lock-free read of Q's published snapshot; only
	// the registry append below takes the server mutex, briefly. Repeated
	// queries answer from the engine's epoch-keyed materialisation cache.
	if ephemeral {
		// Answers only: the view is never registered — in the engine or
		// in the server's id registry — so ephemeral traffic cannot grow
		// either without bound.
		v, tr, err := s.q.QueryEphemeralTraced(req.Q, parallel)
		s.observeQuery(w, req.Q, tr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.counters.servedQueries.Add(1)
		s.counters.ephemeralQueries.Add(1)
		m := v.Current()
		setEpochHeader(w, m)
		writeJSON(w, http.StatusOK, answersOfMat("", v, m))
		return
	}
	v, tr, err := s.q.QueryTraced(req.Q, parallel)
	s.observeQuery(w, req.Q, tr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := fmt.Sprintf("v%d", s.nextID.Add(1)-1)
	s.mu.Lock()
	if len(s.views) >= s.cfg.MaxViews {
		s.mu.Unlock()
		// The engine-side view must not outlive the shed response.
		s.q.DropView(v)
		s.shedViewCap(w)
		return
	}
	s.views = append(s.views, viewEntry{id: id, view: v})
	s.byID[id] = v
	s.mu.Unlock()
	s.counters.servedQueries.Add(1)
	m := v.Current()
	setEpochHeader(w, m)
	writeJSON(w, http.StatusCreated, answersOfMat(id, v, m))
}

// observeQuery stamps the response with the query's trace id (X-Q-Trace —
// the handle a client quotes when reporting a slow request) and feeds the
// slow-query log: wall time at or over the threshold logs the full stage
// breakdown and bumps qint_slow_queries_total.
func (s *Server) observeQuery(w http.ResponseWriter, query string, tr *obs.Trace) {
	if tr == nil {
		return
	}
	w.Header().Set("X-Q-Trace", tr.ID())
	if th := s.cfg.SlowQueryThreshold; th > 0 && tr.Wall() >= th {
		s.slowQueries.Inc()
		logf("server: slow query %q (wall %v >= threshold %v)\n%s", query, tr.Wall(), th, tr.String())
	}
}

// viewCount reads the registry size.
func (s *Server) viewCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

// shedViewCap answers a non-ephemeral query that hit the MaxViews cap.
func (s *Server) shedViewCap(w http.ResponseWriter) {
	s.counters.shedQueries.Add(1)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests,
		"view registry full (max %d); use ?ephemeral=1 or DELETE /views/{id}",
		s.cfg.MaxViews)
}

// isTruthy parses boolean-ish query parameters (1/true/yes).
func isTruthy(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// isBodyTooLarge reports whether a decode error came from
// http.MaxBytesReader tripping the body cap.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// setEpochHeader stamps the response with the published-state generation
// the answers were computed at. Epochs identify immutable generations, so
// clients can treat (epoch, query) as an immutable cache key of their own —
// the same contract the engine's internal cache is built on; a response
// carrying a new epoch is the signal that previous entries are stale.
func setEpochHeader(w http.ResponseWriter, m core.Materialization) {
	w.Header().Set("X-Q-Epoch", strconv.FormatUint(m.Epoch, 10))
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	entries := append([]viewEntry(nil), s.views...)
	s.mu.RUnlock()
	out := make([]ViewSummary, len(entries))
	for i, e := range entries {
		out[i] = summaryOf(e.id, e.view)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleViewByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/views/")
	parts := strings.Split(rest, "/")
	// A trailing slash (/views/v0/) is the same resource as /views/v0,
	// not an "unknown view endpoint".
	if len(parts) > 1 && parts[len(parts)-1] == "" {
		parts = parts[:len(parts)-1]
	}
	id := parts[0]
	s.mu.RLock()
	v, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no view %s", id)
		return
	}

	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		m := v.Current()
		setEpochHeader(w, m)
		writeJSON(w, http.StatusOK, answersOfMat(id, v, m))
	case len(parts) == 1 && r.Method == http.MethodDelete:
		// Drop the view from the wire registry and the engine's
		// maintenance set; its id is never reused (atomic counter).
		s.mu.Lock()
		delete(s.byID, id)
		for i, e := range s.views {
			if e.id == id {
				s.views = append(s.views[:i], s.views[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		s.q.DropView(v)
		s.counters.viewsDeleted.Add(1)
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		release, admitted := s.admitWrite()
		if !admitted {
			s.shedWrite(w)
			return
		}
		defer release()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			if isBodyTooLarge(err) {
				httpError(w, http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
				return
			}
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		kind := core.FeedbackValid
		switch strings.ToLower(req.Kind) {
		case "valid":
		case "invalid":
			kind = core.FeedbackInvalid
		default:
			httpError(w, http.StatusBadRequest, "kind must be valid or invalid")
			return
		}
		if err := s.q.FeedbackRow(v, req.Row, kind); err != nil {
			if errors.Is(err, core.ErrRowOutOfRange) {
				// Not (necessarily) a malformed request: a concurrent
				// weight update can rematerialise the view between the
				// client reading its rows and posting feedback. Tell the
				// client its read is stale so it re-reads and resubmits.
				setEpochHeader(w, v.Current())
				httpError(w, http.StatusConflict, "%v; re-read the view and resubmit", err)
				return
			}
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m := v.Current()
		setEpochHeader(w, m)
		writeJSON(w, http.StatusOK, answersOfMat(id, v, m))
	default:
		httpError(w, http.StatusNotFound, "unknown view endpoint")
	}
}

// summaryOf reads one coherent materialisation of the view (a single
// atomic load via Current — no lock needed, and α always matches the rows
// counted even under a concurrent Refresh).
func summaryOf(id string, v *core.View) ViewSummary {
	return summaryOfMat(id, v, v.Current())
}

func summaryOfMat(id string, v *core.View, m core.Materialization) ViewSummary {
	answers := 0
	if m.Result != nil {
		answers = len(m.Result.Rows)
	}
	return ViewSummary{
		ID:       id,
		Keywords: v.Keywords,
		K:        v.K,
		Alpha:    m.Alpha,
		Answers:  answers,
	}
}

// answersOfMat renders one already-loaded materialisation, so a handler
// that also stamps X-Q-Epoch reports the same generation in header and
// body even under a concurrent Refresh.
func answersOfMat(id string, v *core.View, m core.Materialization) ViewAnswers {
	out := ViewAnswers{ViewSummary: summaryOfMat(id, v, m)}
	if m.Result == nil {
		return out
	}
	out.Columns = m.Result.Columns
	for _, row := range m.Result.TopK(v.K) {
		out.Rows = append(out.Rows, AnswerRow{
			Values:     row.Values,
			Cost:       row.Cost,
			Provenance: row.Provenance,
		})
	}
	return out
}

// AssociationInfo is the wire form of one association edge.
type AssociationInfo struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Cost float64 `json:"cost"`
}

func (s *Server) handleAssociations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// Read the published graph snapshot — no lock, coherent by construction.
	list := s.q.CurrentGraph().AssociationList()
	out := make([]AssociationInfo, len(list))
	for i, a := range list {
		out[i] = AssociationInfo{A: a.A.String(), B: a.B.String(), Cost: a.Cost}
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse summarises the running instance. Epoch is the currently
// published state generation; Cache carries the serving-layer query-cache
// counters (hits, misses, computes, coalesced, evictions, entries, live
// epochs — per cache); Plan carries the cost-based join planner's
// accumulated counters (branches planned and reordered, shared join
// subtrees, subplans materialised, cross-branch CSE hits — all zero with
// Options.PlannerOff).
type StatsResponse struct {
	Relations  int             `json:"relations"`
	Attributes int             `json:"attributes"`
	Sources    []string        `json:"sources"`
	Nodes      map[string]int  `json:"nodes"`
	Edges      map[string]int  `json:"edges"`
	Views      int             `json:"views"`
	Epoch      uint64          `json:"epoch"`
	EpochAge   float64         `json:"epoch_age_seconds"`
	Uptime     float64         `json:"uptime_seconds"`
	Build      BuildInfo       `json:"build"`
	Cache      core.CacheStats `json:"cache"`
	Plan       core.PlanStats  `json:"plan"`
	Serving    ServingStats    `json:"serving"`
}

// ServingStats reports the admission-control layer: configured limits,
// instantaneous gauges (in-flight queries, queued writes) and cumulative
// shed/served counters. A load driver reads ShedQueries/ShedWrites to
// know how much of its offered load the server refused.
type ServingStats struct {
	InFlightQueries    int   `json:"inflight_queries"`
	MaxInFlightQueries int   `json:"max_inflight_queries"`
	QueuedWrites       int   `json:"queued_writes"`
	WriteQueueDepth    int   `json:"write_queue_depth"`
	ServedQueries      int64 `json:"served_queries"`
	EphemeralQueries   int64 `json:"ephemeral_queries"`
	ShedQueries        int64 `json:"shed_queries"`
	ShedWrites         int64 `json:"shed_writes"`
	ViewsDeleted       int64 `json:"views_deleted"`
	MaxParallel        int   `json:"max_parallel"`
	MaxViews           int   `json:"max_views"`
	MaxBodyBytes       int64 `json:"max_body_bytes"`
}

// ServingStats samples the admission-control counters.
func (s *Server) ServingStats() ServingStats {
	return ServingStats{
		InFlightQueries:    len(s.queryTokens),
		MaxInFlightQueries: s.cfg.MaxInFlightQueries,
		QueuedWrites:       len(s.writeTokens),
		WriteQueueDepth:    s.cfg.WriteQueueDepth,
		ServedQueries:      s.counters.servedQueries.Load(),
		EphemeralQueries:   s.counters.ephemeralQueries.Load(),
		ShedQueries:        s.counters.shedQueries.Load(),
		ShedWrites:         s.counters.shedWrites.Load(),
		ViewsDeleted:       s.counters.viewsDeleted.Load(),
		MaxParallel:        s.cfg.MaxParallel,
		MaxViews:           s.cfg.MaxViews,
		MaxBodyBytes:       s.cfg.MaxBodyBytes,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	graph := s.q.CurrentGraph()
	cat := s.q.CurrentCatalog()
	sum := graph.Summary()
	s.mu.RLock()
	nViews := len(s.views)
	s.mu.RUnlock()
	resp := StatsResponse{
		Relations:  cat.NumRelations(),
		Attributes: cat.NumAttributes(),
		Sources:    cat.Sources(),
		Nodes: map[string]int{
			"relation": sum.Relations, "attribute": sum.Attributes,
			"value": sum.Values, "keyword": sum.Keywords,
		},
		Edges:   make(map[string]int, len(sum.ByEdgeKind)),
		Views:   nViews,
		Epoch:   s.q.Epoch(),
		Uptime:  time.Since(s.started).Seconds(),
		Build:   buildInfo(),
		Cache:   s.q.CacheStats(),
		Plan:    s.q.PlanStats(),
		Serving: s.ServingStats(),
	}
	if at := s.q.EpochTime(); !at.IsZero() {
		resp.EpochAge = time.Since(at).Seconds()
	}
	for k, n := range sum.ByEdgeKind {
		resp.Edges[k.String()] = n
	}
	writeJSON(w, http.StatusOK, resp)
}

// logf is the server's error logger; tests swap it to assert (or silence)
// logging.
var logf = log.Printf

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Usually a client that hung up mid-response; either way the
		// error must not vanish silently — the status line already went
		// out, so logging is all that's left.
		logf("server: encoding %T response: %v", v, err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
