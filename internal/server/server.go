// Package server exposes Q over HTTP+JSON: the registration service of
// paper §3 ("Q includes a registration service for new tables and data
// sources: this mechanism can be manually activated by the user ... or
// could ultimately be triggered directly by a Web crawler"), plus keyword
// querying and answer feedback, so crawlers and UIs can drive a long-lived
// Q instance remotely.
//
// Endpoints (all JSON):
//
//	POST /sources            register a new source           (RegisterRequest)
//	POST /query              create a persistent view        (QueryRequest)
//	GET  /views              list views
//	GET  /views/{id}         one view's ranked answers
//	POST /views/{id}/feedback  mark an answer valid/invalid  (FeedbackRequest)
//	GET  /associations       association edges with costs
//	GET  /stats              catalog and graph statistics
//
// Concurrency model: Q is single-writer, so the mutating endpoints
// (POST /sources, /query, /views/{id}/feedback) hold the server's write
// lock, while all GET endpoints take only the read lock and serve
// concurrently — a query storm no longer blocks view listings or stats.
// Inside one query, Q fans tree translation and branch execution across a
// bounded worker pool (core.Options.Parallelism); POST /query accepts a
// ?parallel=N query parameter to size that pool per request (the ranked
// answers are byte-identical at any setting). View IDs come from an atomic
// counter assigned at creation, not from slice positions, so they stay
// stable no matter how concurrent creations interleave.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"qint/internal/core"
	"qint/internal/relstore"
)

// viewEntry binds a persistent view to its stable wire ID.
type viewEntry struct {
	id   string
	view *core.View
}

// Server wraps a Q instance behind an RWMutex (Q itself is single-writer;
// reads of materialised views are safe to share) and implements
// http.Handler.
type Server struct {
	mu     sync.RWMutex
	q      *core.Q
	views  []viewEntry           // creation order
	byID   map[string]*core.View // stable id -> view
	nextID atomic.Int64
	mux    *http.ServeMux
}

// New wraps q. The caller should have registered matchers and initial
// tables already.
func New(q *core.Q) *Server {
	s := &Server{q: q, byID: make(map[string]*core.View)}
	mux := http.NewServeMux()
	mux.HandleFunc("/sources", s.handleSources)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/views/", s.handleViewByID)
	mux.HandleFunc("/associations", s.handleAssociations)
	mux.HandleFunc("/stats", s.handleStats)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TableSpec is the wire form of one table in a registration request.
type TableSpec struct {
	Name        string                `json:"name"`
	Attributes  []string              `json:"attributes"`
	ForeignKeys []relstore.ForeignKey `json:"foreign_keys,omitempty"`
	Rows        [][]string            `json:"rows"`
}

// RegisterRequest registers one new source.
type RegisterRequest struct {
	Source   string      `json:"source"`
	Tables   []TableSpec `json:"tables"`
	Strategy string      `json:"strategy"` // exhaustive | viewbased | preferential
}

// RegisterResponse reports the outcome.
type RegisterResponse struct {
	Source          string             `json:"source"`
	NewRelations    []string           `json:"new_relations"`
	TargetsCompared []string           `json:"targets_compared"`
	AttrComparisons int                `json:"attr_comparisons"`
	Alignments      map[string]float64 `json:"alignments"`
}

// QueryRequest creates a view.
type QueryRequest struct {
	Q string `json:"q"`
}

// ViewSummary describes one persistent view.
type ViewSummary struct {
	ID       string   `json:"id"`
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	Alpha    float64  `json:"alpha"`
	Answers  int      `json:"answers"`
}

// ViewAnswers carries a view's ranked rows.
type ViewAnswers struct {
	ViewSummary
	Columns []string    `json:"columns"`
	Rows    []AnswerRow `json:"rows"`
}

// AnswerRow is one ranked tuple.
type AnswerRow struct {
	Values     []string `json:"values"`
	Cost       float64  `json:"cost"`
	Provenance string   `json:"provenance"`
}

// FeedbackRequest annotates one answer of a view.
type FeedbackRequest struct {
	Row  int    `json:"row"`
	Kind string `json:"kind"` // valid | invalid
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.Source == "" || len(req.Tables) == 0 {
		httpError(w, http.StatusBadRequest, "source and tables required")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tables := make([]*relstore.Table, 0, len(req.Tables))
	for _, ts := range req.Tables {
		rel := &relstore.Relation{Source: req.Source, Name: ts.Name, ForeignKeys: ts.ForeignKeys}
		for _, a := range ts.Attributes {
			rel.Attributes = append(rel.Attributes, relstore.Attribute{Name: a})
		}
		t, err := relstore.NewTable(rel, ts.Rows)
		if err != nil {
			httpError(w, http.StatusBadRequest, "table %s: %v", ts.Name, err)
			return
		}
		tables = append(tables, t)
	}

	s.mu.Lock()
	report, err := s.q.RegisterSource(tables, strategy)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		Source:          report.Source,
		NewRelations:    report.NewRelations,
		TargetsCompared: report.TargetsCompared,
		AttrComparisons: report.AttrComparisons,
		Alignments:      report.AlignmentsByPair,
	})
}

func parseStrategy(s string) (core.AlignStrategy, error) {
	switch strings.ToLower(s) {
	case "", "viewbased", "view-based":
		return core.ViewBased, nil
	case "exhaustive":
		return core.Exhaustive, nil
	case "preferential":
		return core.Preferential, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	parallel := 0
	if p := r.URL.Query().Get("parallel"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "parallel must be a positive integer")
			return
		}
		parallel = n
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	s.mu.Lock()
	prev := 0
	if parallel > 0 {
		prev = s.q.Options().Parallelism
		s.q.SetParallelism(parallel)
	}
	v, err := s.q.Query(req.Q)
	if prev > 0 {
		s.q.SetParallelism(prev)
	}
	var resp ViewAnswers
	if err == nil {
		entry := viewEntry{id: fmt.Sprintf("v%d", s.nextID.Add(1)-1), view: v}
		s.views = append(s.views, entry)
		s.byID[entry.id] = v
		resp = s.answersLocked(entry.id, v)
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	out := make([]ViewSummary, len(s.views))
	for i, e := range s.views {
		out[i] = s.summaryLocked(e.id, e.view)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleViewByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/views/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.RLock()
	v, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no view %s", id)
		return
	}

	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		s.mu.RLock()
		resp := s.answersLocked(id, v)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, resp)
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		kind := core.FeedbackValid
		switch strings.ToLower(req.Kind) {
		case "valid":
		case "invalid":
			kind = core.FeedbackInvalid
		default:
			httpError(w, http.StatusBadRequest, "kind must be valid or invalid")
			return
		}
		s.mu.Lock()
		err := s.q.FeedbackRow(v, req.Row, kind)
		var resp ViewAnswers
		if err == nil {
			resp = s.answersLocked(id, v)
		}
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		httpError(w, http.StatusNotFound, "unknown view endpoint")
	}
}

func (s *Server) summaryLocked(id string, v *core.View) ViewSummary {
	return ViewSummary{
		ID:       id,
		Keywords: v.Keywords,
		K:        v.K,
		Alpha:    v.Alpha,
		Answers:  len(v.Result.Rows),
	}
}

func (s *Server) answersLocked(id string, v *core.View) ViewAnswers {
	out := ViewAnswers{ViewSummary: s.summaryLocked(id, v), Columns: v.Result.Columns}
	for _, row := range v.Result.TopK(v.K) {
		out.Rows = append(out.Rows, AnswerRow{
			Values:     row.Values,
			Cost:       row.Cost,
			Provenance: row.Provenance,
		})
	}
	return out
}

// AssociationInfo is the wire form of one association edge.
type AssociationInfo struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Cost float64 `json:"cost"`
}

func (s *Server) handleAssociations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	list := s.q.Graph.AssociationList()
	s.mu.RUnlock()
	out := make([]AssociationInfo, len(list))
	for i, a := range list {
		out[i] = AssociationInfo{A: a.A.String(), B: a.B.String(), Cost: a.Cost}
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse summarises the running instance.
type StatsResponse struct {
	Relations  int            `json:"relations"`
	Attributes int            `json:"attributes"`
	Sources    []string       `json:"sources"`
	Nodes      map[string]int `json:"nodes"`
	Edges      map[string]int `json:"edges"`
	Views      int            `json:"views"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	sum := s.q.Graph.Summary()
	resp := StatsResponse{
		Relations:  s.q.Catalog.NumRelations(),
		Attributes: s.q.Catalog.NumAttributes(),
		Sources:    s.q.Catalog.Sources(),
		Nodes: map[string]int{
			"relation": sum.Relations, "attribute": sum.Attributes,
			"value": sum.Values, "keyword": sum.Keywords,
		},
		Edges: make(map[string]int, len(sum.ByEdgeKind)),
		Views: len(s.views),
	}
	for k, n := range sum.ByEdgeKind {
		resp.Edges[k.String()] = n
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
