// Package server exposes Q over HTTP+JSON: the registration service of
// paper §3 ("Q includes a registration service for new tables and data
// sources: this mechanism can be manually activated by the user ... or
// could ultimately be triggered directly by a Web crawler"), plus keyword
// querying and answer feedback, so crawlers and UIs can drive a long-lived
// Q instance remotely.
//
// Endpoints (all JSON):
//
//	POST /sources            register a new source           (RegisterRequest)
//	POST /query              create a persistent view        (QueryRequest)
//	GET  /views              list views
//	GET  /views/{id}         one view's ranked answers
//	POST /views/{id}/feedback  mark an answer valid/invalid  (FeedbackRequest)
//	GET  /associations       association edges with costs
//	GET  /stats              catalog and graph statistics
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"qint/internal/core"
	"qint/internal/relstore"
)

// Server wraps a Q instance behind a mutex (Q itself is single-writer) and
// implements http.Handler.
type Server struct {
	mu    sync.Mutex
	q     *core.Q
	views []*core.View
	mux   *http.ServeMux
}

// New wraps q. The caller should have registered matchers and initial
// tables already.
func New(q *core.Q) *Server {
	s := &Server{q: q}
	mux := http.NewServeMux()
	mux.HandleFunc("/sources", s.handleSources)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/views/", s.handleViewByID)
	mux.HandleFunc("/associations", s.handleAssociations)
	mux.HandleFunc("/stats", s.handleStats)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TableSpec is the wire form of one table in a registration request.
type TableSpec struct {
	Name        string                `json:"name"`
	Attributes  []string              `json:"attributes"`
	ForeignKeys []relstore.ForeignKey `json:"foreign_keys,omitempty"`
	Rows        [][]string            `json:"rows"`
}

// RegisterRequest registers one new source.
type RegisterRequest struct {
	Source   string      `json:"source"`
	Tables   []TableSpec `json:"tables"`
	Strategy string      `json:"strategy"` // exhaustive | viewbased | preferential
}

// RegisterResponse reports the outcome.
type RegisterResponse struct {
	Source          string             `json:"source"`
	NewRelations    []string           `json:"new_relations"`
	TargetsCompared []string           `json:"targets_compared"`
	AttrComparisons int                `json:"attr_comparisons"`
	Alignments      map[string]float64 `json:"alignments"`
}

// QueryRequest creates a view.
type QueryRequest struct {
	Q string `json:"q"`
}

// ViewSummary describes one persistent view.
type ViewSummary struct {
	ID       string   `json:"id"`
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	Alpha    float64  `json:"alpha"`
	Answers  int      `json:"answers"`
}

// ViewAnswers carries a view's ranked rows.
type ViewAnswers struct {
	ViewSummary
	Columns []string    `json:"columns"`
	Rows    []AnswerRow `json:"rows"`
}

// AnswerRow is one ranked tuple.
type AnswerRow struct {
	Values     []string `json:"values"`
	Cost       float64  `json:"cost"`
	Provenance string   `json:"provenance"`
}

// FeedbackRequest annotates one answer of a view.
type FeedbackRequest struct {
	Row  int    `json:"row"`
	Kind string `json:"kind"` // valid | invalid
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.Source == "" || len(req.Tables) == 0 {
		httpError(w, http.StatusBadRequest, "source and tables required")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tables := make([]*relstore.Table, 0, len(req.Tables))
	for _, ts := range req.Tables {
		rel := &relstore.Relation{Source: req.Source, Name: ts.Name, ForeignKeys: ts.ForeignKeys}
		for _, a := range ts.Attributes {
			rel.Attributes = append(rel.Attributes, relstore.Attribute{Name: a})
		}
		t, err := relstore.NewTable(rel, ts.Rows)
		if err != nil {
			httpError(w, http.StatusBadRequest, "table %s: %v", ts.Name, err)
			return
		}
		tables = append(tables, t)
	}

	s.mu.Lock()
	report, err := s.q.RegisterSource(tables, strategy)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		Source:          report.Source,
		NewRelations:    report.NewRelations,
		TargetsCompared: report.TargetsCompared,
		AttrComparisons: report.AttrComparisons,
		Alignments:      report.AlignmentsByPair,
	})
}

func parseStrategy(s string) (core.AlignStrategy, error) {
	switch strings.ToLower(s) {
	case "", "viewbased", "view-based":
		return core.ViewBased, nil
	case "exhaustive":
		return core.Exhaustive, nil
	case "preferential":
		return core.Preferential, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	s.mu.Lock()
	v, err := s.q.Query(req.Q)
	if err == nil {
		s.views = append(s.views, v)
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	resp := s.answersLocked(len(s.views)-1, v)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	out := make([]ViewSummary, len(s.views))
	for i, v := range s.views {
		out[i] = s.summaryLocked(i, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleViewByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/views/")
	parts := strings.Split(rest, "/")
	idx, err := parseViewID(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	ok := idx >= 0 && idx < len(s.views)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no view %s", parts[0])
		return
	}

	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		s.mu.Lock()
		resp := s.answersLocked(idx, s.views[idx])
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		kind := core.FeedbackValid
		switch strings.ToLower(req.Kind) {
		case "valid":
		case "invalid":
			kind = core.FeedbackInvalid
		default:
			httpError(w, http.StatusBadRequest, "kind must be valid or invalid")
			return
		}
		s.mu.Lock()
		err := s.q.FeedbackRow(s.views[idx], req.Row, kind)
		var resp ViewAnswers
		if err == nil {
			resp = s.answersLocked(idx, s.views[idx])
		}
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		httpError(w, http.StatusNotFound, "unknown view endpoint")
	}
}

func parseViewID(s string) (int, error) {
	if !strings.HasPrefix(s, "v") {
		return 0, fmt.Errorf("view ids look like v0, v1, …")
	}
	return strconv.Atoi(s[1:])
}

func (s *Server) summaryLocked(idx int, v *core.View) ViewSummary {
	return ViewSummary{
		ID:       fmt.Sprintf("v%d", idx),
		Keywords: v.Keywords,
		K:        v.K,
		Alpha:    v.Alpha,
		Answers:  len(v.Result.Rows),
	}
}

func (s *Server) answersLocked(idx int, v *core.View) ViewAnswers {
	out := ViewAnswers{ViewSummary: s.summaryLocked(idx, v), Columns: v.Result.Columns}
	for _, row := range v.Result.TopK(v.K) {
		out.Rows = append(out.Rows, AnswerRow{
			Values:     row.Values,
			Cost:       row.Cost,
			Provenance: row.Provenance,
		})
	}
	return out
}

// AssociationInfo is the wire form of one association edge.
type AssociationInfo struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Cost float64 `json:"cost"`
}

func (s *Server) handleAssociations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	list := s.q.Graph.AssociationList()
	s.mu.Unlock()
	out := make([]AssociationInfo, len(list))
	for i, a := range list {
		out[i] = AssociationInfo{A: a.A.String(), B: a.B.String(), Cost: a.Cost}
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse summarises the running instance.
type StatsResponse struct {
	Relations  int            `json:"relations"`
	Attributes int            `json:"attributes"`
	Sources    []string       `json:"sources"`
	Nodes      map[string]int `json:"nodes"`
	Edges      map[string]int `json:"edges"`
	Views      int            `json:"views"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	sum := s.q.Graph.Summary()
	resp := StatsResponse{
		Relations:  s.q.Catalog.NumRelations(),
		Attributes: s.q.Catalog.NumAttributes(),
		Sources:    s.q.Catalog.Sources(),
		Nodes: map[string]int{
			"relation": sum.Relations, "attribute": sum.Attributes,
			"value": sum.Values, "keyword": sum.Keywords,
		},
		Edges: make(map[string]int, len(sum.ByEdgeKind)),
		Views: len(s.views),
	}
	for k, n := range sum.ByEdgeKind {
		resp.Edges[k.String()] = n
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
