package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qint/internal/core"
	"qint/internal/datasets"
	"qint/internal/matcher/mad"
	"qint/internal/matcher/meta"
	"qint/internal/obs"
)

// newObsServer builds a test server over a fresh InterPro-GO engine with
// an explicit Config, returning both ends so tests can reach the engine.
func newObsServer(t *testing.T, cfg Config) (*httptest.Server, *core.Q) {
	t.Helper()
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	q.AddMatcher(mad.New())
	corpus := datasets.InterProGO()
	if err := q.AddTables(corpus.Tables...); err != nil {
		t.Fatal(err)
	}
	q.AlignAllPairs()
	ts := httptest.NewServer(NewWith(q, cfg))
	t.Cleanup(ts.Close)
	return ts, q
}

func scrape(t *testing.T, base string) (*obs.Exposition, *http.Response) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}
	return exp, resp
}

// TestMetricsEndpoint is the exposition smoke: after one served query,
// GET /metrics must return valid Prometheus text carrying the engine and
// serving families with values that reflect the request.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObsServer(t, Config{})

	resp := postJSON(t, ts.URL+"/query", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	exp, mresp := scrape(t, ts.URL)
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	required := []string{
		// Query pipeline.
		"qint_queries_total", "qint_query_errors_total", "qint_query_duration_seconds",
		"qint_query_stage_seconds_total", "qint_query_stage_ops_total",
		// Alignment, planner, executor.
		"qint_align_base_matcher_calls_total", "qint_align_attr_comparisons_total",
		"qint_plan_branches_planned_total", "qint_plan_explain_errors_total",
		"qint_topk_branches_skipped_total", "qint_exec_branches_total", "qint_exec_rows_total",
		// Caches.
		"qint_cache_hits_total", "qint_cache_misses_total", "qint_cache_evictions_total",
		"qint_cache_computes_total", "qint_cache_coalesced_total",
		// State and serving layer.
		"qint_epoch", "qint_epoch_age_seconds", "qint_views",
		"qint_serving_served_queries_total", "qint_serving_shed_queries_total",
		"qint_serving_inflight_queries", "qint_serving_queued_writes",
		"qint_slow_queries_total", "qint_uptime_seconds", "qint_build_info",
	}
	if missing := exp.MissingFamilies(required); len(missing) != 0 {
		t.Errorf("exposition missing families: %v", missing)
	}
	if v, _ := exp.Value("qint_serving_served_queries_total"); v != 1 {
		t.Errorf("served queries = %v, want 1", v)
	}
	if v, _ := exp.Value("qint_queries_total"); v != 1 {
		t.Errorf("engine queries = %v, want 1", v)
	}
	if v, _ := exp.Value("qint_query_duration_seconds_count"); v != 1 {
		t.Errorf("duration summary count = %v, want 1", v)
	}

	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /metrics status = %d, want 405", resp.StatusCode)
		}
	}
}

// TestQueryTraceHeader checks every query response carries its trace id.
func TestQueryTraceHeader(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	for _, path := range []string{"/query", "/query?ephemeral=1"} {
		resp := postJSON(t, ts.URL+path, QueryRequest{Q: "'GO:0001000' 'fam_0'"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s status = %d", path, resp.StatusCode)
		}
		if id := resp.Header.Get("X-Q-Trace"); id == "" {
			t.Errorf("POST %s: no X-Q-Trace header", path)
		}
	}
}

// TestSlowQueryLog drops the threshold to 1ns so every query is slow, and
// checks the log line carries the query, the trace id and the per-stage
// breakdown.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	orig := logf
	logf = func(format string, args ...interface{}) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	defer func() { logf = orig }()

	ts, _ := newObsServer(t, Config{SlowQueryThreshold: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/query?ephemeral=1", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	traceID := resp.Header.Get("X-Q-Trace")
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	var slow string
	for _, l := range logs {
		if strings.Contains(l, "slow query") {
			slow = l
			break
		}
	}
	if slow == "" {
		t.Fatalf("no slow-query log line; logs: %v", logs)
	}
	for _, want := range []string{"'GO:0001000' 'fam_0'", traceID, "expand", "steiner"} {
		if !strings.Contains(slow, want) {
			t.Errorf("slow-query line missing %q:\n%s", want, slow)
		}
	}

	exp, _ := scrape(t, ts.URL)
	if v, _ := exp.Value("qint_slow_queries_total"); v != 1 {
		t.Errorf("qint_slow_queries_total = %v, want 1", v)
	}
}

// TestStatsUptimeAndBuild checks the /stats additions: uptime, epoch age
// and build identification.
func TestStatsUptimeAndBuild(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	decode(t, resp, &st)
	if st.Uptime <= 0 {
		t.Errorf("uptime = %v, want > 0", st.Uptime)
	}
	if st.EpochAge <= 0 {
		t.Errorf("epoch age = %v, want > 0", st.EpochAge)
	}
	if st.Build.GoVersion == "" || st.Build.Module == "" {
		t.Errorf("build info incomplete: %+v", st.Build)
	}
}

// TestConcurrentScrapeWhileQuerying hammers /metrics, /stats and /query
// together — the lock-free-registry contract under -race, and exposition
// must stay parseable mid-load.
func TestConcurrentScrapeWhileQuerying(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, 3*rounds)
	for g := 0; g < 3; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			body := `{"q":"'GO:0001000' 'fam_0'"}`
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/query?ephemeral=1", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query status %d", resp.StatusCode)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errc <- err
					continue
				}
				_, perr := obs.ParseExposition(resp.Body)
				resp.Body.Close()
				if perr != nil {
					errc <- perr
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(ts.URL + "/stats")
				if err != nil {
					errc <- err
					continue
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
