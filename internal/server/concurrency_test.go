package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qint/internal/core"
	"qint/internal/datasets"
	"qint/internal/matcher"
	"qint/internal/matcher/meta"
	"qint/internal/relstore"
)

// TestHammerMixedLoad fires many goroutines of mixed reads and writes at one
// server under the race detector: keyword queries (some with the ?parallel=
// knob), view listings and fetches, association and stats reads, and
// feedback posts. It then checks the server's bookkeeping survived — every
// created view has a unique stable ID and shows up in the listing.
func TestHammerMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	ts := newTestServer(t)

	const writers = 6
	const readers = 12
	const perWriter = 3

	var mu sync.Mutex
	var created []string
	errc := make(chan error, writers+readers)
	var wg sync.WaitGroup

	// Writers: POST /query, alternating the per-request parallelism knob,
	// plus a feedback post against the view each one just created.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				url := ts.URL + "/query"
				if i%2 == 1 {
					url += "?parallel=4"
				}
				resp := postJSON(t, url, QueryRequest{
					Q: fmt.Sprintf("'GO:%07d' 'fam_%d'", 1000+w, (w+i)%4),
				})
				if resp.StatusCode != http.StatusCreated {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					errc <- fmt.Errorf("writer %d: query status %d: %s", w, resp.StatusCode, body)
					return
				}
				var va ViewAnswers
				if err := json.NewDecoder(resp.Body).Decode(&va); err != nil {
					resp.Body.Close()
					errc <- fmt.Errorf("writer %d: decode: %v", w, err)
					return
				}
				resp.Body.Close()
				mu.Lock()
				created = append(created, va.ID)
				mu.Unlock()
				if len(va.Rows) > 0 {
					// A concurrent writer's feedback rematerialises every
					// view, so our row index can go stale between reading
					// the rows and posting — the server answers 409 and we
					// re-read and retry, like a real client. Any other
					// non-OK status is a failure.
					for attempt := 0; ; attempt++ {
						fb := postJSON(t, ts.URL+"/views/"+va.ID+"/feedback",
							FeedbackRequest{Row: 0, Kind: "valid"})
						io.Copy(io.Discard, fb.Body)
						fb.Body.Close()
						if fb.StatusCode == http.StatusOK {
							break
						}
						if fb.StatusCode != http.StatusConflict || attempt >= 5 {
							errc <- fmt.Errorf("writer %d: feedback on %s: status %d (attempt %d)",
								w, va.ID, fb.StatusCode, attempt)
							return
						}
						cur, err := http.Get(ts.URL + "/views/" + va.ID)
						if err != nil {
							errc <- fmt.Errorf("writer %d: re-read %s: %v", w, va.ID, err)
							return
						}
						var now ViewAnswers
						if err := json.NewDecoder(cur.Body).Decode(&now); err != nil {
							cur.Body.Close()
							errc <- fmt.Errorf("writer %d: re-read %s: decode: %v", w, va.ID, err)
							return
						}
						cur.Body.Close()
						if len(now.Rows) == 0 {
							// Re-ranked to an empty view: nothing left to
							// mark valid. The conflict answer was correct.
							break
						}
					}
				}
			}
			errc <- nil
		}(w)
	}

	// Readers: hit every GET endpoint in a loop while the writers churn.
	paths := []string{"/views", "/associations", "/stats", "/views/v0"}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				path := paths[(r+i)%len(paths)]
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errc <- fmt.Errorf("reader %d: GET %s: %v", r, path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// /views/v0 may 404 until the first writer lands; every
				// other read must succeed.
				if resp.StatusCode != http.StatusOK &&
					!(path == "/views/v0" && resp.StatusCode == http.StatusNotFound) {
					errc <- fmt.Errorf("reader %d: GET %s: status %d", r, path, resp.StatusCode)
					return
				}
			}
			errc <- nil
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}

	// Stable IDs: no duplicates despite concurrent creation, and the final
	// listing contains exactly the IDs handed out.
	if len(created) != writers*perWriter {
		t.Fatalf("created %d views, want %d", len(created), writers*perWriter)
	}
	seen := make(map[string]bool)
	for _, id := range created {
		if seen[id] {
			t.Errorf("duplicate view id %s", id)
		}
		seen[id] = true
	}
	resp, err := http.Get(ts.URL + "/views")
	if err != nil {
		t.Fatal(err)
	}
	var list []ViewSummary
	decode(t, resp, &list)
	if len(list) != len(created) {
		t.Fatalf("listing has %d views, want %d", len(list), len(created))
	}
	for _, s := range list {
		if !seen[s.ID] {
			t.Errorf("listing contains unknown id %s", s.ID)
		}
		// Each listed view must be fetchable under its stable ID.
		g, err := http.Get(ts.URL + "/views/" + s.ID)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, g.Body)
		g.Body.Close()
		if g.StatusCode != http.StatusOK {
			t.Errorf("GET /views/%s = %d", s.ID, g.StatusCode)
		}
	}
}

// TestParallelKnob pins the ?parallel= contract: identical ranked answers at
// any setting, the Q instance's configured pool restored afterwards, and 400
// on malformed values.
func TestParallelKnob(t *testing.T) {
	ts := newTestServer(t)

	serial := postJSON(t, ts.URL+"/query?parallel=1", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	if serial.StatusCode != http.StatusCreated {
		t.Fatalf("serial status = %d", serial.StatusCode)
	}
	var vs ViewAnswers
	decode(t, serial, &vs)

	par := postJSON(t, ts.URL+"/query?parallel=8", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	if par.StatusCode != http.StatusCreated {
		t.Fatalf("parallel status = %d", par.StatusCode)
	}
	var vp ViewAnswers
	decode(t, par, &vp)

	if vs.Alpha != vp.Alpha || len(vs.Rows) != len(vp.Rows) {
		t.Fatalf("serial and parallel answers diverge: alpha %v vs %v, rows %d vs %d",
			vs.Alpha, vp.Alpha, len(vs.Rows), len(vp.Rows))
	}
	for i := range vs.Rows {
		a, _ := json.Marshal(vs.Rows[i])
		b, _ := json.Marshal(vp.Rows[i])
		if string(a) != string(b) {
			t.Errorf("row %d differs:\nserial:   %s\nparallel: %s", i, a, b)
		}
	}

	for _, bad := range []string{"0", "-2", "x"} {
		resp := postJSON(t, ts.URL+"/query?parallel="+bad, QueryRequest{Q: "'GO:0001000'"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("parallel=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// blockingMatcher is a schema matcher that, once armed, parks inside Match
// until released — standing in for an expensively slow registration (a
// huge source, a slow matcher) so the test can hold a registration
// in flight for as long as it likes.
type blockingMatcher struct {
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingMatcher() *blockingMatcher {
	return &blockingMatcher{entered: make(chan struct{}), release: make(chan struct{})}
}

func (m *blockingMatcher) Name() string { return "blocking" }

func (m *blockingMatcher) Match(cat *relstore.Catalog, a, b *relstore.Relation) []matcher.Alignment {
	if m.armed.Load() {
		m.once.Do(func() { close(m.entered) })
		<-m.release
	}
	return nil
}

// TestQueryCompletesDuringSlowRegistration pins the tentpole contract at
// the HTTP layer: POST /query no longer blocks behind POST /sources. A
// registration is parked mid-alignment (holding Q's writer path), and a
// query — plus every GET endpoint — must complete while it is in flight,
// answering from the pre-registration snapshot.
func TestQueryCompletesDuringSlowRegistration(t *testing.T) {
	q := core.New(core.DefaultOptions())
	q.AddMatcher(meta.New())
	blocker := newBlockingMatcher()
	q.AddMatcher(blocker)
	corpus := datasets.InterProGO()
	if err := q.AddTables(corpus.Tables...); err != nil {
		t.Fatal(err)
	}
	q.AlignAllPairs() // blocker not armed yet: instant
	ts := httptest.NewServer(New(q))
	t.Cleanup(ts.Close)

	// Park a registration inside the blocking matcher.
	blocker.armed.Store(true)
	regDone := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/sources", RegisterRequest{
			Source:   "slow",
			Strategy: "exhaustive",
			Tables: []TableSpec{{
				Name:       "data",
				Attributes: []string{"pub_id", "label"},
				Rows:       [][]string{{"PUB00001", "x"}},
			}},
		})
		resp.Body.Close()
		regDone <- resp.StatusCode
	}()
	select {
	case <-blocker.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("registration never reached the matcher")
	}

	// The registration is now in flight and parked. Queries and reads must
	// complete against the pre-registration snapshot within the deadline.
	client := &http.Client{Timeout: 10 * time.Second}
	qb, _ := json.Marshal(QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	start := time.Now()
	resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(qb))
	if err != nil {
		t.Fatalf("query blocked behind the in-flight registration: %v", err)
	}
	var va ViewAnswers
	decode(t, resp, &va)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("query during registration: status %d", resp.StatusCode)
	}
	if len(va.Rows) == 0 {
		t.Error("query during registration returned no answers")
	}
	t.Logf("query completed in %v with %d rows while registration was parked", time.Since(start), len(va.Rows))

	for _, path := range []string{"/views", "/associations", "/stats"} {
		getResp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s blocked behind the in-flight registration: %v", path, err)
		}
		io.Copy(io.Discard, getResp.Body)
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusOK {
			t.Errorf("GET %s during registration: status %d", path, getResp.StatusCode)
		}
	}

	// Release the parked registration and let it commit.
	close(blocker.release)
	select {
	case status := <-regDone:
		if status != http.StatusCreated {
			t.Fatalf("slow registration finished with status %d", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("released registration never finished")
	}
}
