package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestHammerMixedLoad fires many goroutines of mixed reads and writes at one
// server under the race detector: keyword queries (some with the ?parallel=
// knob), view listings and fetches, association and stats reads, and
// feedback posts. It then checks the server's bookkeeping survived — every
// created view has a unique stable ID and shows up in the listing.
func TestHammerMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	ts := newTestServer(t)

	const writers = 6
	const readers = 12
	const perWriter = 3

	var mu sync.Mutex
	var created []string
	errc := make(chan error, writers+readers)
	var wg sync.WaitGroup

	// Writers: POST /query, alternating the per-request parallelism knob,
	// plus a feedback post against the view each one just created.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				url := ts.URL + "/query"
				if i%2 == 1 {
					url += "?parallel=4"
				}
				resp := postJSON(t, url, QueryRequest{
					Q: fmt.Sprintf("'GO:%07d' 'fam_%d'", 1000+w, (w+i)%4),
				})
				if resp.StatusCode != http.StatusCreated {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					errc <- fmt.Errorf("writer %d: query status %d: %s", w, resp.StatusCode, body)
					return
				}
				var va ViewAnswers
				if err := json.NewDecoder(resp.Body).Decode(&va); err != nil {
					resp.Body.Close()
					errc <- fmt.Errorf("writer %d: decode: %v", w, err)
					return
				}
				resp.Body.Close()
				mu.Lock()
				created = append(created, va.ID)
				mu.Unlock()
				if len(va.Rows) > 0 {
					fb := postJSON(t, ts.URL+"/views/"+va.ID+"/feedback",
						FeedbackRequest{Row: 0, Kind: "valid"})
					fb.Body.Close()
					if fb.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("writer %d: feedback on %s: status %d", w, va.ID, fb.StatusCode)
						return
					}
				}
			}
			errc <- nil
		}(w)
	}

	// Readers: hit every GET endpoint in a loop while the writers churn.
	paths := []string{"/views", "/associations", "/stats", "/views/v0"}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				path := paths[(r+i)%len(paths)]
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errc <- fmt.Errorf("reader %d: GET %s: %v", r, path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// /views/v0 may 404 until the first writer lands; every
				// other read must succeed.
				if resp.StatusCode != http.StatusOK &&
					!(path == "/views/v0" && resp.StatusCode == http.StatusNotFound) {
					errc <- fmt.Errorf("reader %d: GET %s: status %d", r, path, resp.StatusCode)
					return
				}
			}
			errc <- nil
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}

	// Stable IDs: no duplicates despite concurrent creation, and the final
	// listing contains exactly the IDs handed out.
	if len(created) != writers*perWriter {
		t.Fatalf("created %d views, want %d", len(created), writers*perWriter)
	}
	seen := make(map[string]bool)
	for _, id := range created {
		if seen[id] {
			t.Errorf("duplicate view id %s", id)
		}
		seen[id] = true
	}
	resp, err := http.Get(ts.URL + "/views")
	if err != nil {
		t.Fatal(err)
	}
	var list []ViewSummary
	decode(t, resp, &list)
	if len(list) != len(created) {
		t.Fatalf("listing has %d views, want %d", len(list), len(created))
	}
	for _, s := range list {
		if !seen[s.ID] {
			t.Errorf("listing contains unknown id %s", s.ID)
		}
		// Each listed view must be fetchable under its stable ID.
		g, err := http.Get(ts.URL + "/views/" + s.ID)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, g.Body)
		g.Body.Close()
		if g.StatusCode != http.StatusOK {
			t.Errorf("GET /views/%s = %d", s.ID, g.StatusCode)
		}
	}
}

// TestParallelKnob pins the ?parallel= contract: identical ranked answers at
// any setting, the Q instance's configured pool restored afterwards, and 400
// on malformed values.
func TestParallelKnob(t *testing.T) {
	ts := newTestServer(t)

	serial := postJSON(t, ts.URL+"/query?parallel=1", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	if serial.StatusCode != http.StatusCreated {
		t.Fatalf("serial status = %d", serial.StatusCode)
	}
	var vs ViewAnswers
	decode(t, serial, &vs)

	par := postJSON(t, ts.URL+"/query?parallel=8", QueryRequest{Q: "'GO:0001000' 'fam_0'"})
	if par.StatusCode != http.StatusCreated {
		t.Fatalf("parallel status = %d", par.StatusCode)
	}
	var vp ViewAnswers
	decode(t, par, &vp)

	if vs.Alpha != vp.Alpha || len(vs.Rows) != len(vp.Rows) {
		t.Fatalf("serial and parallel answers diverge: alpha %v vs %v, rows %d vs %d",
			vs.Alpha, vp.Alpha, len(vs.Rows), len(vp.Rows))
	}
	for i := range vs.Rows {
		a, _ := json.Marshal(vs.Rows[i])
		b, _ := json.Marshal(vp.Rows[i])
		if string(a) != string(b) {
			t.Errorf("row %d differs:\nserial:   %s\nparallel: %s", i, a, b)
		}
	}

	for _, bad := range []string{"0", "-2", "x"} {
		resp := postJSON(t, ts.URL+"/query?parallel="+bad, QueryRequest{Q: "'GO:0001000'"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("parallel=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
