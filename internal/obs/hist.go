package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is an HdrHistogram-style log-linear latency recorder: values
// (nanoseconds) bucket into 64 linear sub-buckets per power of two, giving
// a fixed relative error of at most 1/64 (~1.6%) across the whole dynamic
// range — the same layout Gil Tene's HdrHistogram uses, sized here for
// durations from 1ns to ~4.6h in a flat 3.8k-bucket array. Recording is an
// atomic increment, so any number of load workers share one histogram with
// no lock and no per-worker merge step.
//
// The flat layout works because for values v >= 128 with e = len(v)-7, the
// shifted mantissa v>>e lies in [64,128), so index e*64 + v>>e tiles the
// integers contiguously: [1,128) for e=0, then 64 buckets per further
// power of two.
//
// The histogram started life in internal/loadgen (which still aliases it)
// and now also backs the registry's latency summaries.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	// histSubBits is log2 of the linear sub-bucket count per power of two.
	histSubBits = 6
	histSub     = 1 << histSubBits // 64
	// histMaxExp caps the exponent so the array stays small; values above
	// ~2^62ns saturate into the top bucket.
	histMaxExp  = 56
	histBuckets = (histMaxExp + 2) * histSub // e in [0,histMaxExp], plus the e=0 double-width base
)

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	u := uint64(v)
	e := bits.Len64(u) - (histSubBits + 1)
	if e <= 0 {
		return int(u) // [1,128): exact
	}
	if e > histMaxExp {
		e = histMaxExp
		u = 1<<uint(histMaxExp+histSubBits+1) - 1
	}
	return e*histSub + int(u>>uint(e))
}

// bucketUpperEdge is the largest value mapping to bucket i — quantiles
// report this edge, so a reported percentile never understates the
// recorded latency (mirrors HdrHistogram's highestEquivalentValue).
func bucketUpperEdge(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	e := i/histSub - 1
	m := int64(i%histSub + histSub)
	return m<<uint(e) + (1 << uint(e)) - 1
}

// Record adds one value. Safe for concurrent use. A nil receiver is a
// no-op, so callers can wire an optional histogram straight through.
func (h *Histogram) Record(v time.Duration) {
	if h == nil {
		return
	}
	n := int64(v)
	if n < 0 {
		n = 0
	}
	h.counts[bucketIndex(n)].Add(1)
	h.total.Add(1)
	h.sum.Add(n)
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the total of all recorded values (exact, not quantised).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest recorded value exactly (tracked outside the
// buckets, so it has no quantisation error).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the value at quantile q in [0,1]: the upper edge of the
// first bucket at which the cumulative count reaches ceil(q*total). The
// exact Max is returned for q high enough to select the last recorded
// value.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			if cum == total {
				// This bucket holds the maximum; report it exactly.
				upper := bucketUpperEdge(i)
				if m := h.max.Load(); m < upper {
					return time.Duration(m)
				}
			}
			return time.Duration(bucketUpperEdge(i))
		}
	}
	return h.Max()
}
