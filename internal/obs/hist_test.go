package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketLayoutContiguous pins the log-linear index scheme: every value
// maps into a valid bucket, indexes are monotone in the value, and the
// upper edge of a value's bucket is never below the value and never more
// than 1/64 above it (the histogram's advertised relative error).
func TestBucketLayoutContiguous(t *testing.T) {
	prev := -1
	for _, v := range []int64{1, 2, 63, 64, 127, 128, 129, 255, 256, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1, 1 << 62} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("value %d: bucket %d below previous %d (not monotone)", v, i, prev)
		}
		prev = i
		upper := bucketUpperEdge(i)
		if upper < v {
			t.Errorf("value %d: upper edge %d below value", v, upper)
		}
		if float64(upper) > float64(v)*(1+1.0/64)+1 {
			t.Errorf("value %d: upper edge %d exceeds 1/64 relative error", v, upper)
		}
	}

	// Exhaustive contiguity over the first few exponents: consecutive
	// values never skip backwards and every bucket's upper edge bounds
	// its members.
	last := 0
	for v := int64(1); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, last)
		}
		last = i
		if e := bucketUpperEdge(i); e < v {
			t.Fatalf("upper edge %d < member %d (bucket %d)", e, v, i)
		}
	}
}

// TestHistogramQuantiles drives the histogram with a known distribution
// and checks every reported quantile against the exact sorted answer
// within the 1/64 relative-error bound, with Max exact.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Mixed magnitudes: microseconds to seconds.
		v := int64(rng.ExpFloat64() * float64(time.Duration(1+rng.Intn(500))*time.Millisecond))
		if v < 1 {
			v = 1
		}
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if got, want := int64(h.Max()), sorted[n-1]; got != want {
		t.Errorf("Max = %d, want exact %d", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		idx := int(q*float64(n)+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		exact := sorted[idx]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("Quantile(%g) = %d understates exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/64)+1 {
			t.Errorf("Quantile(%g) = %d exceeds error bound over exact %d", q, got, exact)
		}
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines (the
// production access pattern) — run under -race in CI — and checks the
// total survives.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != time.Duration((workers-1)*1000+per-1) {
		t.Fatalf("Max = %v", h.Max())
	}
}

// TestHistogramNilSafe pins the nil-receiver contract the optional
// instrumentation wiring depends on.
func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second) // must not panic
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reported non-zero values")
	}
}
