package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition text for the deterministic
// instrument kinds: family ordering (by name), series ordering (by label
// string), HELP/TYPE lines, integer counters, scaled counters and callback
// gauges. Summaries are exercised separately (their quantile estimates are
// bucket midpoints, not stable constants).
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "Operations.", Label{Name: "kind", Value: "write"}).Add(3)
	r.Counter("test_ops_total", "Operations.", Label{Name: "kind", Value: "read"}).Add(7)
	r.ScaledCounter("test_busy_seconds_total", "Busy time.", 1e-9).Add(int64(1500 * time.Millisecond))
	r.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 4 })
	r.Counter("test_alpha_total", "Sorts first.").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP test_alpha_total Sorts first.
# TYPE test_alpha_total counter
test_alpha_total 1
# HELP test_busy_seconds_total Busy time.
# TYPE test_busy_seconds_total counter
test_busy_seconds_total 1.5
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 4
# HELP test_ops_total Operations.
# TYPE test_ops_total counter
test_ops_total{kind="read"} 7
test_ops_total{kind="write"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent checks the re-registration contract: same
// name+labels returns the same *Counter / *Histogram, and GaugeFunc
// replaces the callback (latest closure wins) instead of duplicating the
// series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	l := Label{Name: "cache", Value: "mat"}
	c1 := r.Counter("test_hits_total", "h", l)
	c1.Add(5)
	c2 := r.Counter("test_hits_total", "h", l)
	if c1 != c2 {
		t.Fatalf("re-registered counter is a different pointer")
	}
	if c2.Load() != 5 {
		t.Fatalf("re-registered counter lost its value: %d", c2.Load())
	}
	if h1, h2 := r.Histogram("test_lat", "l"), r.Histogram("test_lat", "l"); h1 != h2 {
		t.Fatalf("re-registered histogram is a different pointer")
	}

	r.GaugeFunc("test_gauge", "g", func() float64 { return 1 })
	r.GaugeFunc("test_gauge", "g", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "test_gauge 2\n") {
		t.Errorf("replaced gauge callback not used:\n%s", out)
	}
	if strings.Contains(out, "test_gauge 1\n") {
		t.Errorf("stale gauge series still exposed:\n%s", out)
	}
}

// TestExpositionRoundTrip feeds the writer's output (including a summary
// family) back through the parser: it must parse cleanly and report the
// same families and values.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_queries_total", "q").Add(42)
	r.Counter("rt_cache_hits_total", "h", Label{Name: "cache", Value: `we"ird\`}).Add(9)
	h := r.Histogram("rt_latency_seconds", "lat")
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	r.GaugeFunc("rt_depth", "d", func() float64 { return 3.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseExposition of own output: %v", err)
	}
	for name, typ := range map[string]string{
		"rt_queries_total":    "counter",
		"rt_cache_hits_total": "counter",
		"rt_latency_seconds":  "summary",
		"rt_depth":            "gauge",
	} {
		if got := exp.Types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}
	if missing := exp.MissingFamilies([]string{"rt_queries_total", "rt_latency_seconds", "rt_depth"}); len(missing) != 0 {
		t.Errorf("MissingFamilies reported %v", missing)
	}
	if v, ok := exp.Value("rt_queries_total"); !ok || v != 42 {
		t.Errorf("rt_queries_total = %v, %v; want 42, true", v, ok)
	}
	if v, ok := exp.Value(`rt_cache_hits_total{cache="we\"ird\\"}`); !ok || v != 9 {
		t.Errorf("escaped-label series = %v, %v; want 9, true", v, ok)
	}
	if v, ok := exp.Value("rt_latency_seconds_count"); !ok || v != 100 {
		t.Errorf("summary count = %v, %v; want 100, true", v, ok)
	}
	if v, ok := exp.Value("rt_latency_seconds_sum"); !ok || v < 0.09 || v > 0.11 {
		t.Errorf("summary sum = %v (ok=%v); want ~0.1s", v, ok)
	}
}

// TestParseExpositionRejectsMalformed checks the parser actually validates
// (the CI smoke depends on a parse error meaning a broken endpoint).
func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"9leading_digit 1\n",
		"no_value\n",
		`unterminated{a="b 1` + "\n",
		"too many fields 1 2 3\n",
		"bad_value NaNaN\n",
		"# TYPE short\n",
		"# TYPE name enum\n",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition(%q) accepted malformed input", bad)
		}
	}
}

// TestNilInstruments checks every disabled-instrument fast path: a nil
// counter, trace or histogram must be safe on all methods.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(10)
	c.Store(5)
	if c.Load() != 0 {
		t.Errorf("nil counter Load = %d", c.Load())
	}

	var tr *Trace
	if !tr.Now().IsZero() {
		t.Errorf("nil trace Now is not zero time")
	}
	tr.Record(StageExpand, time.Now())
	tr.Finish()
	if tr.ID() != "" || tr.Wall() != 0 || tr.Spans() != nil || tr.StageSum() != 0 {
		t.Errorf("nil trace accessors not zero")
	}
	if tr.String() != "(no trace)" {
		t.Errorf("nil trace String = %q", tr.String())
	}

	// A live trace must also ignore a zero from (a Now() captured via a
	// nil trace that later became live would otherwise record a bogus span).
	live := NewTrace()
	live.Record(StageExpand, time.Time{})
	if n := len(live.Spans()); n != 0 {
		t.Errorf("zero-from Record appended %d spans", n)
	}
}

// TestTraceBreakdown exercises the live-trace path: spans accumulate per
// stage, Finish freezes wall, String renders every recorded stage.
func TestTraceBreakdown(t *testing.T) {
	tr := NewTrace()
	if tr.ID() == "" {
		t.Fatalf("empty trace id")
	}
	for i := 0; i < 3; i++ {
		from := tr.Now()
		time.Sleep(time.Millisecond)
		tr.Record(StageExecute, from)
	}
	from := tr.Now()
	tr.Record(StagePlan, from)
	tr.Finish()

	totals := tr.StageTotals()
	if totals[StageExecute] < 3*time.Millisecond {
		t.Errorf("execute total %v, want >= 3ms", totals[StageExecute])
	}
	if tr.StageSum() > tr.Wall() {
		t.Errorf("stage sum %v exceeds wall %v for sequential spans", tr.StageSum(), tr.Wall())
	}
	wall := tr.Wall()
	time.Sleep(2 * time.Millisecond)
	if tr.Wall() != wall {
		t.Errorf("Wall moved after Finish: %v -> %v", wall, tr.Wall())
	}
	out := tr.String()
	for _, want := range []string{tr.ID(), "execute", "plan", "x3"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, out)
		}
	}
}

// TestTraceConcurrentRecord hammers Record from many goroutines (parallel
// branch execution records from workers) — run under -race.
func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(StageExecute, tr.Now())
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Spans()); got != 8*200 {
		t.Errorf("recorded %d spans, want %d", got, 8*200)
	}
}
