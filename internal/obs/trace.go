package obs

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one phase of query processing. The values are the Prometheus
// label values of the qint_query_stage_* families and the row labels of a
// trace breakdown, so they are part of the wire surface.
type Stage string

// The query pipeline's stages, in execution order. cache_lookup and
// coalesced_wait are serving-layer stages (the epoch-keyed materialisation
// cache in front of the pipeline); the rest are the pipeline itself —
// keyword expansion, Steiner search, tree→query translation, join
// planning, branch execution, and the final materialisation assembly
// (α computation and result packaging).
const (
	StageCacheLookup   Stage = "cache_lookup"
	StageCoalescedWait Stage = "coalesced_wait"
	StageExpand        Stage = "expand"
	StageSteiner       Stage = "steiner"
	StageTranslate     Stage = "translate"
	StagePlan          Stage = "plan"
	StageExecute       Stage = "execute"
	StageMaterialize   Stage = "materialize"
)

// Stages returns every stage in canonical pipeline order — the iteration
// order metric registration and breakdown rendering use.
func Stages() []Stage {
	return []Stage{
		StageCacheLookup, StageCoalescedWait, StageExpand, StageSteiner,
		StageTranslate, StagePlan, StageExecute, StageMaterialize,
	}
}

// Span is one recorded stage interval, offset-relative to the trace start.
type Span struct {
	Stage Stage
	Start time.Duration // offset from the trace's begin time
	Dur   time.Duration
}

// traceBase randomises the id prefix per process so ids from a restarted
// server never collide with the previous incarnation's.
var traceBase = rand.Uint32()

// traceSeq numbers traces within the process.
var traceSeq atomic.Uint64

// Trace is one query's stage breakdown: an id, a start time, and the spans
// the pipeline recorded while running under it. A nil *Trace is the
// disabled fast path — every method no-ops (Now returns the zero time,
// Record does nothing), so the engine threads a trace pointer through its
// hot path at the cost of one nil check per stage, and pays for clock
// reads only when a caller actually asked for tracing.
//
// Record is safe for concurrent use (parallel pipeline stages may record
// from worker goroutines); the accessors are meant for after Finish.
type Trace struct {
	id    string
	begin time.Time

	mu    sync.Mutex
	spans []Span
	wall  time.Duration
	done  bool
}

// NewTrace starts a trace now, with a fresh process-unique id.
func NewTrace() *Trace {
	return &Trace{
		id:    fmt.Sprintf("%08x-%08x", traceBase, uint32(traceSeq.Add(1))),
		begin: time.Now(),
	}
}

// ID returns the trace id ("" on a nil trace) — the X-Q-Trace header value.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Now returns the current time, or the zero time on a nil trace — the
// start-of-stage capture that makes an untraced stage cost one nil check
// instead of a clock read.
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Record appends a span for stage, spanning from (a Now() capture) to the
// current time. No-op on a nil trace or a zero from.
func (t *Trace) Record(stage Stage, from time.Time) {
	if t == nil || from.IsZero() {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Start: from.Sub(t.begin), Dur: now.Sub(from)})
	t.mu.Unlock()
}

// Finish freezes the trace's wall-clock time. Idempotent; later Record
// calls still append but Wall stays fixed at the first Finish.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if !t.done {
		t.wall = now.Sub(t.begin)
		t.done = true
	}
	t.mu.Unlock()
}

// Wall returns the traced query's wall-clock time (Finish must have run;
// before that it returns the time elapsed so far).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.wall
	}
	return time.Since(t.begin)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// StageTotals sums span durations per stage.
func (t *Trace) StageTotals() map[Stage]time.Duration {
	totals := make(map[Stage]time.Duration)
	for _, s := range t.Spans() {
		totals[s.Stage] += s.Dur
	}
	return totals
}

// StageSum is the sum of all span durations — the quantity the acceptance
// bound compares against Wall.
func (t *Trace) StageSum() time.Duration {
	var sum time.Duration
	for _, s := range t.Spans() {
		sum += s.Dur
	}
	return sum
}

// String renders the breakdown for terminals and the slow-query log: one
// header line (id, wall, stage-sum coverage) and one line per stage in
// canonical order, with its total, share of wall and span count.
func (t *Trace) String() string {
	if t == nil {
		return "(no trace)"
	}
	spans := t.Spans()
	wall := t.Wall()
	totals := make(map[Stage]time.Duration)
	counts := make(map[Stage]int)
	for _, s := range spans {
		totals[s.Stage] += s.Dur
		counts[s.Stage]++
	}
	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: wall %v, %d spans covering %v", t.ID(), wall, len(spans), sum)
	if wall > 0 {
		fmt.Fprintf(&b, " (%.0f%%)", 100*float64(sum)/float64(wall))
	}
	b.WriteByte('\n')
	ordered := Stages()
	seen := make(map[Stage]bool, len(ordered))
	for _, st := range ordered {
		seen[st] = true
	}
	// Unknown stages (future layers) sort after the canonical ones.
	var extra []Stage
	for st := range totals {
		if !seen[st] {
			extra = append(extra, st)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	for _, st := range append(ordered, extra...) {
		d, ok := totals[st]
		if !ok {
			continue
		}
		pct := 0.0
		if wall > 0 {
			pct = 100 * float64(d) / float64(wall)
		}
		fmt.Fprintf(&b, "  %-14s %12v  %5.1f%%  x%d\n", st, d, pct, counts[st])
	}
	return b.String()
}
