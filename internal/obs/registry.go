// Package obs is the unified observability layer: a lock-free metrics
// registry (atomic counters, callback gauges, log-linear latency
// summaries) with a Prometheus text-exposition writer and parser, plus a
// per-query stage tracer (trace.go). It is a leaf package — standard
// library only — so every layer of the engine (core, relstore, qcache,
// server, the commands) can hook into one registry without import cycles.
//
// Hot-path cost is the design constraint throughout: recording is one
// atomic add, every instrument is valid as a nil pointer (a nil *Counter,
// *Histogram or *Trace no-ops on its write methods), and the registry's
// mutex is touched only at registration and exposition time — never on a
// metric update.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (by convention) int64 metric. The
// zero value is ready to use; a nil *Counter is a valid disabled counter
// whose methods all no-op or return zero, so optional instrumentation
// costs exactly one nil check on the hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Store sets the value (counter resets; gauges used writer-side).
func (c *Counter) Store(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Label is one metric label pair.
type Label struct {
	Name, Value string
}

// sample is one labelled series within a family.
type sample struct {
	labels string // rendered {a="b",...} suffix, "" when unlabelled

	c     *Counter
	scale float64        // multiplies c.Load() at exposition; 0 means 1
	fn    func() float64 // callback gauges/counters
	h     *Histogram     // summary families
}

// family is one metric name with its help text, type and series.
type family struct {
	name, help, typ string
	samples         []*sample
	byLabels        map[string]*sample
}

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. All methods are safe for concurrent use; the
// internal mutex guards registration and exposition only — updating a
// registered instrument never touches it.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// familyLocked finds or creates a family, first registration fixing help
// and type.
func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*sample)}
		r.fams[name] = f
	}
	return f
}

// renderLabels renders a sorted, escaped {a="b",c="d"} suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter registers (or returns the already-registered) counter series
// under name+labels. Re-registration with the same name and labels returns
// the same *Counter, so stat structs migrated onto the registry can be
// re-wired idempotently.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.scaledCounter(name, help, 0, labels...)
}

// ScaledCounter is Counter with a value scale applied at exposition time:
// the counter accumulates raw int64 units (e.g. nanoseconds) and the
// exposed sample is Load()*scale (e.g. seconds with scale 1e-9). The
// internal representation stays an atomic integer — no float math on the
// record path.
func (r *Registry) ScaledCounter(name, help string, scale float64, labels ...Label) *Counter {
	return r.scaledCounter(name, help, scale, labels...)
}

func (r *Registry) scaledCounter(name, help string, scale float64, labels ...Label) *Counter {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	if s, ok := f.byLabels[ls]; ok && s.c != nil {
		return s.c
	}
	s := &sample{labels: ls, c: &Counter{}, scale: scale}
	f.byLabels[ls] = s
	f.samples = append(f.samples, s)
	return s.c
}

// GaugeFunc registers a callback gauge: fn is called at exposition time.
// Re-registration under the same name+labels replaces the callback (the
// latest closure wins), so a layer torn down and rebuilt over one engine —
// e.g. a new Server over an existing Q — never double-registers.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, "gauge", fn, labels...)
}

// CounterFunc registers a callback counter — for totals owned by another
// subsystem (sharded sums, snapshot walks) that are cheap to compute on
// scrape but not worth mirroring on every update. Replacement semantics as
// GaugeFunc.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, "counter", fn, labels...)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels ...Label) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	if s, ok := f.byLabels[ls]; ok {
		s.fn = fn
		return
	}
	s := &sample{labels: ls, fn: fn}
	f.byLabels[ls] = s
	f.samples = append(f.samples, s)
}

// Histogram registers a latency summary under name+labels and returns its
// recorder. Durations are recorded in nanoseconds and exposed as a
// Prometheus summary in SECONDS: quantile series at 0.5/0.9/0.99/0.999
// plus _sum and _count. Idempotent like Counter.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "summary")
	if s, ok := f.byLabels[ls]; ok && s.h != nil {
		return s.h
	}
	s := &sample{labels: ls, h: &Histogram{}}
	f.byLabels[ls] = s
	f.samples = append(f.samples, s)
	return s.h
}

// summaryQuantiles are the quantile series every Histogram family exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// WritePrometheus renders every family in text exposition format 0.0.4:
// families sorted by name, series sorted by label string, one # HELP and
// # TYPE line per family. Counter and gauge values are exact integers
// unless scaled; summaries are seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	// Snapshot the sample lists so exposition can run without the lock
	// (callbacks may themselves take other locks).
	type famSnap struct {
		name, help, typ string
		samples         []*sample
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		ss := append([]*sample(nil), f.samples...)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		snaps[i] = famSnap{name: f.name, help: f.help, typ: f.typ, samples: ss}
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range snaps {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			switch {
			case s.h != nil:
				writeSummary(&b, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.scale != 0:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(float64(s.c.Load())*s.scale))
			default:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Load())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSummary renders one histogram series as a summary in seconds.
func writeSummary(b *strings.Builder, name string, s *sample) {
	for _, q := range summaryQuantiles {
		labels := s.labels
		qt := `quantile="` + strconv.FormatFloat(q, 'g', -1, 64) + `"`
		if labels == "" {
			labels = "{" + qt + "}"
		} else {
			labels = labels[:len(labels)-1] + "," + qt + "}"
		}
		fmt.Fprintf(b, "%s%s %s\n", name, labels, formatFloat(s.h.Quantile(q).Seconds()))
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(s.h.Sum().Seconds()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, s.h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}
