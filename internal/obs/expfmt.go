package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exposition is a parsed Prometheus text-format scrape: the family types
// declared by # TYPE lines and every sample keyed by its full series name
// (metric name plus rendered label set, exactly as exposed). The parser
// accepts the 0.0.4 text format subset the registry emits — which is also
// what real Prometheus servers scrape — and rejects malformed lines, so
// qload and the CI smoke can gate on "the endpoint serves valid
// exposition" rather than just "the endpoint returned 200".
type Exposition struct {
	// Types maps family name to declared type (counter, gauge, summary...).
	Types map[string]string
	// Samples maps the full series key (name{labels}) to its value.
	Samples map[string]float64
}

// Value returns the sample for an exact series key (name with rendered
// labels, e.g. `qint_cache_hits_total{cache="materialization"}`).
func (e *Exposition) Value(series string) (float64, bool) {
	v, ok := e.Samples[series]
	return v, ok
}

// HasFamily reports whether any sample of the named family was scraped
// (the name alone, ignoring labels and the _sum/_count suffixes of
// summaries).
func (e *Exposition) HasFamily(name string) bool {
	if _, ok := e.Types[name]; ok {
		return true
	}
	for series := range e.Samples {
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name || base == name+"_sum" || base == name+"_count" {
			return true
		}
	}
	return false
}

// MissingFamilies returns the subset of names not present in the scrape,
// in input order.
func (e *Exposition) MissingFamilies(names []string) []string {
	var missing []string
	for _, n := range names {
		if !e.HasFamily(n) {
			missing = append(missing, n)
		}
	}
	return missing
}

// ParseExposition parses Prometheus text exposition format 0.0.4. It
// validates metric-name syntax, label quoting, and numeric values
// (including NaN/+Inf/-Inf), and returns an error naming the first
// malformed line.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Types:   make(map[string]string),
		Samples: make(map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, exp); err != nil {
				return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
			}
			continue
		}
		if err := parseSample(line, exp); err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return exp, nil
}

// parseComment handles # TYPE declarations; # HELP and free comments pass.
func parseComment(line string, exp *Exposition) error {
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "summary", "histogram", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		exp.Types[name] = typ
	}
	return nil
}

// parseSample handles one `name{labels} value [timestamp]` line.
func parseSample(line string, exp *Exposition) error {
	name, rest, err := splitSeries(line)
	if err != nil {
		return err
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return fmt.Errorf("sample %q: %w", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp: %w", line, err)
		}
	}
	exp.Samples[name] = v
	return nil
}

// splitSeries splits a sample line into the series key (name + optional
// label braces) and the remainder, honouring quotes and escapes inside
// label values.
func splitSeries(line string) (series, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if i >= len(line) {
		return "", "", fmt.Errorf("sample %q has no value", line)
	}
	if line[i] != '{' {
		return name, line[i:], nil
	}
	// Scan the label block, tracking quoted strings and escapes.
	inQuote, escaped := false, false
	for j := i + 1; j < len(line); j++ {
		c := line[j]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return line[:j+1], line[j+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}

// parseValue parses a sample value; ParseFloat covers the format's
// NaN/+Inf/-Inf spellings as well as plain and scientific notation.
func parseValue(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
