package datasets

import (
	"strings"
	"testing"

	"qint/internal/relstore"
)

func TestInterProGOShape(t *testing.T) {
	c := InterProGO()
	if len(c.Tables) != 8 {
		t.Fatalf("tables = %d, want 8 (Figure 9)", len(c.Tables))
	}
	attrs := 0
	for _, tb := range c.Tables {
		attrs += len(tb.Relation.Attributes)
		if len(tb.Relation.ForeignKeys) != 0 {
			t.Errorf("%s declares foreign keys; §5.2 removes them from metadata",
				tb.Relation.QualifiedName())
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no data", tb.Relation.QualifiedName())
		}
	}
	if attrs != 28 {
		t.Errorf("attributes = %d, want 28", attrs)
	}
	if len(c.GoldPairs) != 8 || len(c.Gold) != 8 {
		t.Errorf("gold edges = %d/%d, want 8", len(c.GoldPairs), len(c.Gold))
	}
	if len(c.Queries) != 10 {
		t.Errorf("queries = %d, want 10", len(c.Queries))
	}
}

func TestInterProGOGoldEdgesHaveValueOverlap(t *testing.T) {
	c := InterProGO()
	cat := relstore.NewCatalog()
	for _, tb := range c.Tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range c.GoldPairs {
		if ov := cat.ValueOverlap(p[0], p[1]); ov == 0 {
			t.Errorf("gold edge %s~%s has zero value overlap; MAD cannot find it",
				p[0], p[1])
		}
	}
}

func TestInterProGOGoldRefsExist(t *testing.T) {
	c := InterProGO()
	cat := relstore.NewCatalog()
	for _, tb := range c.Tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range c.GoldPairs {
		for _, ref := range p {
			rel := cat.Relation(ref.Relation)
			if rel == nil || !rel.HasAttr(ref.Attr) {
				t.Errorf("gold reference %s does not exist", ref)
			}
		}
	}
}

func TestInterProGODeterministic(t *testing.T) {
	a, b := InterProGO(), InterProGO()
	for i := range a.Tables {
		if len(a.Tables[i].Rows) != len(b.Tables[i].Rows) {
			t.Fatalf("nondeterministic row count in %s", a.Tables[i].Relation.Name)
		}
		for j := range a.Tables[i].Rows {
			if strings.Join(a.Tables[i].Rows[j], "|") != strings.Join(b.Tables[i].Rows[j], "|") {
				t.Fatalf("nondeterministic row %d of %s", j, a.Tables[i].Relation.Name)
			}
		}
	}
}

func TestInterProGOMethodEntryNameOverlap(t *testing.T) {
	// The paper (§5.2.1) points out method.name and entry.name share
	// hundreds of distinct values — a "wrong but useful" alignment. Our
	// generation preserves that property.
	c := InterProGO()
	cat := relstore.NewCatalog()
	for _, tb := range c.Tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	ov := cat.ValueOverlap(
		relstore.AttrRef{Relation: "interpro.method", Attr: "name"},
		relstore.AttrRef{Relation: "interpro.entry", Attr: "name"})
	if ov == 0 {
		t.Error("method.name and entry.name should share values")
	}
}

func TestGBCOShape(t *testing.T) {
	c := GBCO()
	if len(c.Tables) != NumGBCORelations {
		t.Fatalf("relations = %d, want %d", len(c.Tables), NumGBCORelations)
	}
	attrs := 0
	sources := make(map[string]bool)
	for _, tb := range c.Tables {
		attrs += len(tb.Relation.Attributes)
		sources[tb.Relation.Source] = true
		if err := tb.Relation.Validate(); err != nil {
			t.Errorf("invalid relation: %v", err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no data", tb.Relation.QualifiedName())
		}
	}
	if attrs != NumGBCOAttributes {
		t.Errorf("attributes = %d, want %d", attrs, NumGBCOAttributes)
	}
	if len(sources) != NumGBCORelations {
		t.Errorf("each relation should be its own source, got %d sources", len(sources))
	}
}

func TestGBCOForeignKeysResolve(t *testing.T) {
	c := GBCO()
	cat := relstore.NewCatalog()
	for _, tb := range c.Tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range c.Tables {
		for _, fk := range tb.Relation.ForeignKeys {
			target := cat.Relation(fk.ToRelation)
			if target == nil {
				t.Errorf("%s: FK target %s missing", tb.Relation.QualifiedName(), fk.ToRelation)
				continue
			}
			if !target.HasAttr(fk.ToAttr) {
				t.Errorf("%s: FK target attr %s.%s missing",
					tb.Relation.QualifiedName(), fk.ToRelation, fk.ToAttr)
			}
			// Keys must overlap for joins to produce rows.
			from := relstore.AttrRef{Relation: tb.Relation.QualifiedName(), Attr: fk.FromAttr}
			to := relstore.AttrRef{Relation: fk.ToRelation, Attr: fk.ToAttr}
			if cat.ValueOverlap(from, to) == 0 {
				t.Errorf("FK %s -> %s has zero value overlap", from, to)
			}
		}
	}
}

func TestGBCOTrials(t *testing.T) {
	c := GBCO()
	if len(c.Trials) != 16 {
		t.Fatalf("trials = %d, want 16", len(c.Trials))
	}
	total := 0
	rels := make(map[string]bool)
	for _, tb := range c.Tables {
		rels[tb.Relation.QualifiedName()] = true
	}
	srcs := make(map[string]bool)
	for _, tb := range c.Tables {
		srcs[tb.Relation.Source] = true
	}
	for i, tr := range c.Trials {
		total += len(tr.NewSources)
		if tr.Keywords == "" {
			t.Errorf("trial %d has no keywords", i)
		}
		for _, br := range tr.BaseRelations {
			if !rels[br] {
				t.Errorf("trial %d: unknown base relation %s", i, br)
			}
		}
		for _, ns := range tr.NewSources {
			if !srcs[ns] {
				t.Errorf("trial %d: unknown new source %s", i, ns)
			}
		}
		// New sources must not appear among base relations.
		for _, ns := range tr.NewSources {
			for _, br := range tr.BaseRelations {
				if strings.HasPrefix(br, ns+".") {
					t.Errorf("trial %d: new source %s also in base", i, ns)
				}
			}
		}
	}
	if total != 40 {
		t.Errorf("total source introductions = %d, want 40 (§5.1)", total)
	}
}

func TestSyntheticRelations(t *testing.T) {
	rels := SyntheticRelations(20, 7)
	if len(rels) != 20 {
		t.Fatalf("got %d relations", len(rels))
	}
	seen := make(map[string]bool)
	for _, tb := range rels {
		if len(tb.Relation.Attributes) != 2 {
			t.Errorf("%s: %d attributes, want 2", tb.Relation.QualifiedName(),
				len(tb.Relation.Attributes))
		}
		if seen[tb.Relation.QualifiedName()] {
			t.Errorf("duplicate source %s", tb.Relation.QualifiedName())
		}
		seen[tb.Relation.QualifiedName()] = true
	}
	// Deterministic per seed.
	again := SyntheticRelations(20, 7)
	for i := range rels {
		if rels[i].Relation.Attributes[0].Name != again[i].Relation.Attributes[0].Name {
			t.Error("same seed should reproduce the same schemas")
		}
	}
}

func TestCanonicalPairSorts(t *testing.T) {
	a := relstore.AttrRef{Relation: "z.r", Attr: "x"}
	b := relstore.AttrRef{Relation: "a.r", Attr: "y"}
	if CanonicalPair(a, b) != CanonicalPair(b, a) {
		t.Error("CanonicalPair should be order-insensitive")
	}
	if !strings.HasPrefix(CanonicalPair(a, b), "a.r.y~") {
		t.Errorf("pair not sorted: %s", CanonicalPair(a, b))
	}
}

func TestInterProGOScaled(t *testing.T) {
	small := InterProGOScaled(1)
	big := InterProGOScaled(4)
	rows := func(c *InterProGOCorpus) int {
		n := 0
		for _, tb := range c.Tables {
			n += len(tb.Rows)
		}
		return n
	}
	if rows(big) < 3*rows(small) {
		t.Errorf("scale 4 should roughly quadruple rows: %d vs %d", rows(big), rows(small))
	}
	// Schema, gold and queries are scale-invariant.
	if len(big.Tables) != len(small.Tables) || len(big.Gold) != len(small.Gold) ||
		len(big.Queries) != len(small.Queries) {
		t.Error("scale must not change schema, gold standard or workload")
	}
	// Gold edges still have value overlap at scale.
	cat := relstore.NewCatalog()
	for _, tb := range big.Tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range big.GoldPairs {
		if cat.ValueOverlap(p[0], p[1]) == 0 {
			t.Errorf("gold edge %s~%s lost overlap at scale", p[0], p[1])
		}
	}
	// Degenerate scale clamps to 1.
	if rows(InterProGOScaled(0)) != rows(small) {
		t.Error("scale 0 should clamp to 1")
	}
}
