package datasets

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"qint/internal/relstore"
)

// GBCOCorpus stands in for the GBCO beta-cell genomics database of §5.1
// (18 relations modelled as separate sources, 187 attributes) together with
// the query-log-derived trial workload: 16 trials that introduce 40 new
// sources in total, each trial pairing a base query with an expanded query
// that joins or unions additional relations.
type GBCOCorpus struct {
	// Tables holds all 18 relations; each relation is its own source.
	Tables []*relstore.Table
	// Trials are the base-vs-expanded query-log pairs.
	Trials []Trial
}

// Trial encodes one query-log pair of §5.1: a base query answerable from
// BaseRelations, and an expansion that requires the NewSources. Keywords is
// the keyword query constructed so that the base query's relations appear
// in its Steiner trees.
type Trial struct {
	// BaseRelations are qualified names of the relations in the base query.
	BaseRelations []string
	// NewSources are the source names introduced by the expanded query.
	NewSources []string
	// Keywords is the two-keyword query for the trial.
	Keywords string
}

// gbcoSpec defines one relation: its name, attributes, and foreign keys
// (attr -> "relation.attr", relation names are unqualified here and both
// source and relation share the name).
type gbcoSpec struct {
	name  string
	attrs []string
	fks   map[string]string
}

// gbcoSpecs is the full 18-relation schema; attribute counts sum to 187.
var gbcoSpecs = []gbcoSpec{
	{name: "gene", attrs: []string{
		"gene_id", "symbol", "name", "chromosome", "start_pos", "end_pos",
		"strand", "biotype", "description", "organism", "ensembl_id",
		"refseq_id", "locus_tag", "synonym", "map_location", "gene_family"}},
	{name: "transcript", attrs: []string{
		"transcript_id", "gene_id", "name", "length", "biotype",
		"is_canonical", "cds_start", "cds_end", "exon_count",
		"support_level", "tss_distance", "utr5_len", "utr3_len", "polya_site"},
		fks: map[string]string{"gene_id": "gene.gene_id"}},
	{name: "protein", attrs: []string{
		"protein_id", "transcript_id", "uniprot_ac", "sequence_len", "mass",
		"description", "family", "domain_count", "signal_peptide",
		"localization", "pdb_id", "isoform", "ec_number", "pi_value"},
		fks: map[string]string{"transcript_id": "transcript.transcript_id"}},
	{name: "exon", attrs: []string{
		"exon_id", "transcript_id", "exon_number", "start_pos", "end_pos", "phase"},
		fks: map[string]string{"transcript_id": "transcript.transcript_id"}},
	{name: "probe", attrs: []string{
		"probe_id", "array_id", "gene_id", "sequence", "position",
		"gc_content", "mismatch_count", "probe_set", "tm_value", "strand"},
		fks: map[string]string{"gene_id": "gene.gene_id", "array_id": "array.array_id"}},
	{name: "array", attrs: []string{
		"array_id", "platform", "name", "vendor", "probe_count",
		"annotation_version", "release_date", "rows", "cols", "feature_count"}},
	{name: "experiment", attrs: []string{
		"experiment_id", "name", "description", "array_id", "lab", "protocol",
		"date_run", "condition", "replicate_count", "pubmed_id",
		"quality_score", "normalization", "platform_version", "submitter",
		"contact", "series_id"},
		fks: map[string]string{"array_id": "array.array_id", "pubmed_id": "publication.pubmed_id"}},
	{name: "sample", attrs: []string{
		"sample_id", "experiment_id", "tissue_id", "donor_age", "donor_sex",
		"treatment", "dosage", "time_point", "rna_quality", "batch",
		"barcode", "collection_date", "storage", "prep_method", "operator"},
		fks: map[string]string{"experiment_id": "experiment.experiment_id", "tissue_id": "tissue.tissue_id"}},
	{name: "tissue", attrs: []string{
		"tissue_id", "name", "organ", "species", "ontology_term",
		"description", "development_stage", "cell_type"}},
	{name: "expression", attrs: []string{
		"expression_id", "sample_id", "probe_id", "intensity", "log_ratio",
		"p_value", "fold_change", "detection_call", "rank", "background",
		"flag", "normalized_intensity"},
		fks: map[string]string{"sample_id": "sample.sample_id", "probe_id": "probe.probe_id"}},
	{name: "pathway", attrs: []string{
		"pathway_id", "name", "source_db", "category", "gene_count",
		"description", "curation_status", "url", "version", "organism"}},
	{name: "pathway_member", attrs: []string{
		"pathway_id", "gene_id", "role", "evidence"},
		fks: map[string]string{"pathway_id": "pathway.pathway_id", "gene_id": "gene.gene_id"}},
	{name: "go_annotation", attrs: []string{
		"annotation_id", "gene_id", "go_id", "evidence_code", "aspect",
		"assigned_by", "qualifier", "with_from"},
		fks: map[string]string{"gene_id": "gene.gene_id"}},
	{name: "publication", attrs: []string{
		"pubmed_id", "title", "journal", "year", "volume", "pages",
		"first_author", "abstract", "doi", "issue", "language", "citation_count"}},
	{name: "author", attrs: []string{
		"author_id", "name", "affiliation", "email", "orcid", "initials"}},
	{name: "gene2pub", attrs: []string{
		"gene_id", "pubmed_id", "mention_count", "curated"},
		fks: map[string]string{"gene_id": "gene.gene_id", "pubmed_id": "publication.pubmed_id"}},
	{name: "ortholog", attrs: []string{
		"ortholog_id", "gene_id", "target_gene_id", "target_species",
		"identity_pct", "alignment_len"},
		fks: map[string]string{"gene_id": "gene.gene_id"}},
	{name: "variant", attrs: []string{
		"variant_id", "gene_id", "chromosome", "position", "ref_allele",
		"alt_allele", "consequence", "rs_id", "maf", "clinical_significance",
		"validation_status", "source_db", "genotype_freq", "study", "phase",
		"assembly"},
		fks: map[string]string{"gene_id": "gene.gene_id"}},
}

// gbcoEntities is the number of key entities per entity table; relations
// with foreign keys get gbcoFanout rows per referenced entity so that key
// lookups fan out — the property that keeps the top query producing at
// least k tuples (and hence the α radius tight) as in real FK data.
const (
	gbcoEntities = 40
	gbcoFanout   = 8
)

// gbcoRowCount returns the generated row count for a relation.
func gbcoRowCount(spec gbcoSpec) int {
	if len(spec.fks) > 0 {
		return gbcoEntities * gbcoFanout
	}
	return gbcoEntities
}

// GBCO builds the corpus deterministically.
func GBCO() *GBCOCorpus {
	r := rand.New(rand.NewSource(424242))
	idPools := make(map[string][]string) // "relation.attr" -> generated key values

	// Pre-generate key pools so foreign keys can draw from them. Every pool
	// has gbcoEntities distinct keys regardless of the owning table's row
	// count, so any table referencing another gets ~gbcoFanout matching
	// rows per key — the fanout that keeps keyword views' k result slots
	// full and their α pruning radii meaningful.
	for _, spec := range gbcoSpecs {
		pk := spec.attrs[0]
		pool := make([]string, gbcoEntities)
		prefix := strings.ToUpper(spec.name[:3])
		for i := range pool {
			pool[i] = fmt.Sprintf("%s%05d", prefix, i+1)
		}
		idPools[spec.name+"."+pk] = pool
	}
	// publication's PK is pubmed_id; author's name pool doubles as the
	// first_author domain, creating value overlap without a declared FK.
	authorNames := make([]string, gbcoEntities)
	for i := range authorNames {
		authorNames[i] = fmt.Sprintf("Researcher %c. %s", 'A'+i%26, geneWords[i%len(geneWords)])
	}

	var tables []*relstore.Table
	for _, spec := range gbcoSpecs {
		rel := &relstore.Relation{Source: spec.name, Name: spec.name}
		for _, a := range spec.attrs {
			rel.Attributes = append(rel.Attributes, relstore.Attribute{Name: a})
		}
		froms := make([]string, 0, len(spec.fks))
		for from := range spec.fks {
			froms = append(froms, from)
		}
		sort.Strings(froms) // map order would make FK (and graph edge) order vary per run
		for _, from := range froms {
			parts := strings.SplitN(spec.fks[from], ".", 2)
			rel.ForeignKeys = append(rel.ForeignKeys, relstore.ForeignKey{
				FromAttr: from, ToRelation: parts[0] + "." + parts[0], ToAttr: parts[1],
			})
		}
		rows := gbcoRows(r, spec, idPools, authorNames)
		t, err := relstore.NewTable(rel, rows)
		if err != nil {
			panic(fmt.Sprintf("datasets: GBCO table %s: %v", spec.name, err))
		}
		tables = append(tables, t)
	}

	return &GBCOCorpus{Tables: tables, Trials: gbcoTrials()}
}

var geneWords = []string{
	"insulin", "glucagon", "somatostatin", "amylin", "pdx1", "nkx6", "mafa",
	"glut2", "kir6", "sur1", "gck", "foxo1", "neurod1", "pax6", "isl1",
	"hnf4a", "ngn3", "ptf1a", "sox9", "arx",
}

// gbcoRows generates one relation's rows: the primary key walks its pool;
// foreign-key columns draw from the target pool (full overlap); remaining
// columns get type-flavoured filler.
func gbcoRows(r *rand.Rand, spec gbcoSpec, idPools map[string][]string, authorNames []string) [][]string {
	pk := spec.attrs[0]
	pkPool := idPools[spec.name+"."+pk]
	n := gbcoRowCount(spec)
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(spec.attrs))
		for j, attr := range spec.attrs {
			switch {
			case attr == pk:
				row[j] = pkPool[i%len(pkPool)]
			case spec.fks[attr] != "":
				pool := idPools[spec.fks[attr]]
				row[j] = pool[r.Intn(len(pool))]
			case attr == "name" || attr == "symbol":
				row[j] = fmt.Sprintf("%s %s", geneWords[(i+j)%len(geneWords)], spec.name)
			case attr == "first_author":
				row[j] = authorNames[i%len(authorNames)]
			case spec.name == "author" && attr == "name":
				row[j] = authorNames[i%len(authorNames)]
			case strings.Contains(attr, "description") || strings.Contains(attr, "abstract") || attr == "title":
				row[j] = fmt.Sprintf("study of %s in beta cells %d", geneWords[i%len(geneWords)], i)
			case strings.HasSuffix(attr, "_id") || strings.HasSuffix(attr, "_ac"):
				row[j] = fmt.Sprintf("X%s%04d", strings.ToUpper(attr[:2]), r.Intn(500))
			default:
				row[j] = fmt.Sprint(r.Intn(1000))
			}
		}
		rows[i] = row
	}
	return rows
}

// gbcoTrials returns the 16 query-log trials (40 source introductions in
// total). Keywords reference generated key values so the Steiner trees pass
// through the base relations.
func gbcoTrials() []Trial {
	t := []Trial{
		{BaseRelations: []string{"gene.gene", "transcript.transcript"},
			NewSources: []string{"protein", "exon", "variant"}, Keywords: "'GEN00001' transcript"},
		{BaseRelations: []string{"experiment.experiment", "sample.sample"},
			NewSources: []string{"tissue", "expression"}, Keywords: "'EXP00002' sample"},
		{BaseRelations: []string{"gene.gene", "pathway_member.pathway_member"},
			NewSources: []string{"pathway", "go_annotation"}, Keywords: "'GEN00003' pathway"},
		{BaseRelations: []string{"publication.publication", "gene2pub.gene2pub"},
			NewSources: []string{"author", "gene"}, Keywords: "'PUB00004' gene"},
		{BaseRelations: []string{"probe.probe", "array.array"},
			NewSources: []string{"expression", "experiment", "sample"}, Keywords: "'PRO00005' array"},
		{BaseRelations: []string{"gene.gene", "go_annotation.go_annotation"},
			NewSources: []string{"pathway", "pathway_member"}, Keywords: "'GEN00006' annotation"},
		{BaseRelations: []string{"transcript.transcript", "protein.protein"},
			NewSources: []string{"exon", "gene"}, Keywords: "'TRA00007' protein"},
		{BaseRelations: []string{"sample.sample", "tissue.tissue"},
			NewSources: []string{"expression", "probe"}, Keywords: "'SAM00008' tissue"},
		{BaseRelations: []string{"gene.gene", "variant.variant"},
			NewSources: []string{"ortholog", "transcript", "protein"}, Keywords: "'GEN00009' variant"},
		{BaseRelations: []string{"experiment.experiment", "publication.publication"},
			NewSources: []string{"author", "gene2pub"}, Keywords: "'EXP00010' publication"},
		{BaseRelations: []string{"pathway.pathway", "pathway_member.pathway_member"},
			NewSources: []string{"go_annotation", "gene"}, Keywords: "'PAT00011' member"},
		{BaseRelations: []string{"gene.gene", "ortholog.ortholog"},
			NewSources: []string{"variant", "transcript", "go_annotation"}, Keywords: "'GEN00012' ortholog"},
		{BaseRelations: []string{"expression.expression", "probe.probe"},
			NewSources: []string{"array", "sample", "experiment"}, Keywords: "'EXP00013' probe"},
		{BaseRelations: []string{"publication.publication", "author.author"},
			NewSources: []string{"gene2pub", "experiment", "gene"}, Keywords: "'PUB00014' author"},
		{BaseRelations: []string{"tissue.tissue", "sample.sample"},
			NewSources: []string{"experiment", "expression", "array"}, Keywords: "'TIS00015' sample"},
		{BaseRelations: []string{"gene.gene", "gene2pub.gene2pub"},
			NewSources: []string{"publication", "author", "variant"}, Keywords: "'GEN00016' publication"},
	}
	return t
}

// NumGBCORelations and NumGBCOAttributes document the corpus shape the
// paper reports (18 relations, 187 attributes); tests assert them.
const (
	NumGBCORelations  = 18
	NumGBCOAttributes = 187
)
