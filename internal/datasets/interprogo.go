// Package datasets builds the evaluation corpora of the paper's §5:
//
//   - InterProGO: the 8-table InterPro + GO schema of Figure 9 (28
//     attributes), with generated instance data whose cross-table value
//     overlap mirrors the real databases' link structure, the 8-edge gold
//     standard, and the documented two-keyword query workload.
//   - GBCO: an 18-relation / 187-attribute beta-cell-genomics-flavoured
//     corpus standing in for the proprietary GBCO database, with the
//     base-vs-expanded query-log trials of §5.1 (16 trials introducing 40
//     sources in total).
//   - Synthetic graph expansion for the Figure 8 scaling experiment.
//
// All data is generated deterministically from fixed seeds so experiments
// reproduce bit-for-bit.
package datasets

import (
	"fmt"
	"math/rand"

	"qint/internal/relstore"
)

// InterProGOCorpus bundles the InterPro-GO evaluation inputs.
type InterProGOCorpus struct {
	// Tables are the 8 relations of Figure 9. Their foreign keys are NOT
	// declared in the metadata: the paper removes that information so the
	// matchers must rediscover it (§5.2).
	Tables []*relstore.Table
	// Gold holds the 8 semantically meaningful alignment edges as
	// canonical "a~b" pairs (sorted attribute-reference strings).
	Gold map[string]bool
	// GoldPairs lists the same edges as attribute-reference pairs.
	GoldPairs [][2]relstore.AttrRef
	// Queries are 10 two-keyword queries drawn from the documented usage
	// patterns of the GO and InterPro databases (§5.2).
	Queries []string
}

// interproGOSizes control generated instance cardinalities (at Scale 1).
const (
	nGoTerms  = 120
	nEntries  = 80
	nMethods  = 160
	nPubs     = 60
	nJournals = 15
)

// cellularComponents seed GO term names (and the keyword workload).
var cellularComponents = []string{
	"plasma membrane", "nucleus", "cytoplasm", "ribosome", "mitochondrion",
	"golgi apparatus", "vacuole", "chloroplast", "lysosome", "endosome",
	"cytoskeleton", "cell wall", "peroxisome", "centrosome", "nucleolus",
	"spindle", "chromatin", "kinetochore", "proteasome", "spliceosome",
}

var proteinFamilies = []string{
	"kringle domain", "zinc finger", "membrane protein", "helicase",
	"protein kinase", "homeobox", "immunoglobulin fold", "leucine zipper",
	"beta barrel", "coiled coil", "ankyrin repeat", "ww domain",
	"sh3 domain", "pleckstrin homology", "ring finger", "f-box",
}

var journalNames = []string{
	"Nature", "Science", "Cell", "Nucleic Acids Research",
	"Journal of Molecular Biology", "Bioinformatics", "Genome Research",
	"Proteins", "FEBS Letters", "EMBO Journal", "PLoS Biology",
	"Molecular Cell", "Structure", "Protein Science", "Genome Biology",
}

// InterProGO builds the corpus at the default (unit) scale. Generation is
// deterministic.
func InterProGO() *InterProGOCorpus {
	return InterProGOScaled(1)
}

// InterProGOScaled builds the corpus with instance cardinalities multiplied
// by scale (schema, gold standard and query workload are scale-invariant).
// The paper's real InterPro+GO instance produced an 87K-node MAD graph;
// scale ≈ 100 reaches that order of magnitude for stress benchmarks.
func InterProGOScaled(scale int) *InterProGOCorpus {
	if scale < 1 {
		scale = 1
	}
	nGoTerms := nGoTerms * scale
	nEntries := nEntries * scale
	nMethods := nMethods * scale
	nPubs := nPubs * scale
	nJournals := nJournals * scale

	r := rand.New(rand.NewSource(20100611)) // SIGMOD 2010 conference date

	goAcc := make([]string, nGoTerms)
	var goRows [][]string
	for i := range goAcc {
		goAcc[i] = fmt.Sprintf("GO:%07d", 1000+i)
		name := cellularComponents[i%len(cellularComponents)]
		if i >= len(cellularComponents) {
			name = fmt.Sprintf("%s part %d", name, i/len(cellularComponents))
		}
		goRows = append(goRows, []string{
			goAcc[i], name, pick(r, "cellular_component", "molecular_function", "biological_process"),
			pick(r, "f", "t"),
			fmt.Sprintf("definition of %s", name),
		})
	}

	entryAcc := make([]string, nEntries)
	var entryRows [][]string
	entryNames := make([]string, nEntries)
	for i := range entryAcc {
		entryAcc[i] = fmt.Sprintf("IPR%06d", 1+i)
		entryNames[i] = fmt.Sprintf("%s family %d", proteinFamilies[i%len(proteinFamilies)], i)
		entryRows = append(entryRows, []string{
			entryAcc[i], entryNames[i],
			fmt.Sprintf("fam_%d", i),
			pick(r, "Family", "Domain", "Repeat", "Active_site"),
			fmt.Sprintf("abstract for %s", entryNames[i]),
		})
	}

	// interpro2go: roughly two thirds of entries map to 1–2 GO terms. Link
	// tables referencing SUBSETS of the referenced key domain mirror real
	// FK data and let MAD rank the true parent table (entry) above sibling
	// link tables when choosing top-Y partners.
	var i2gRows [][]string
	for i, ac := range entryAcc {
		if i%3 == 2 {
			continue
		}
		i2gRows = append(i2gRows, []string{ac, goAcc[i%nGoTerms]})
		if i%3 == 0 {
			i2gRows = append(i2gRows, []string{ac, goAcc[(i*7+13)%nGoTerms]})
		}
	}

	pubIDs := make([]string, nPubs)
	journalIDs := make([]string, nJournals)
	var journalRows [][]string
	for j := range journalIDs {
		journalIDs[j] = fmt.Sprintf("JRN%03d", j+1)
		journalRows = append(journalRows, []string{
			journalIDs[j], journalNames[j%len(journalNames)],
			fmt.Sprintf("%04d-%04d", 1000+j, 2000+j),
			pick(r, "Elsevier", "Springer", "OUP", "CSHL"),
		})
	}
	var pubRows [][]string
	for i := range pubIDs {
		pubIDs[i] = fmt.Sprintf("PUB%05d", i+1)
		pubRows = append(pubRows, []string{
			pubIDs[i],
			fmt.Sprintf("Structural analysis of %s", entryNames[i%nEntries]),
			fmt.Sprint(1995 + i%15),
			journalIDs[i%nJournals],
		})
	}

	// methods: grouped under entries; method names partially overlap entry
	// names — the "wrongly induced but useful" MAD edge the paper discusses.
	var methodRows [][]string
	methodAcc := make([]string, nMethods)
	for i := range methodAcc {
		methodAcc[i] = fmt.Sprintf("PF%05d", i+1)
		name := fmt.Sprintf("motif_%d", i)
		if i%5 == 0 {
			name = entryNames[i%nEntries] // shared distinct values
		}
		methodRows = append(methodRows, []string{
			methodAcc[i], name,
			pick(r, "PFAM", "PROSITE", "PRINTS", "SMART"),
			entryAcc[i%nEntries],
		})
	}

	// entry2pub references half of the entries (subset property, as above).
	var e2pRows, m2pRows [][]string
	for i, ac := range entryAcc {
		if i%2 != 0 {
			continue
		}
		e2pRows = append(e2pRows, []string{ac, pubIDs[i%nPubs]})
		e2pRows = append(e2pRows, []string{ac, pubIDs[(i*3+7)%nPubs]})
	}
	for i, ac := range methodAcc {
		if i%2 == 0 {
			m2pRows = append(m2pRows, []string{ac, pubIDs[(i*5+3)%nPubs]})
		}
	}

	attrs := func(names ...string) []relstore.Attribute {
		out := make([]relstore.Attribute, len(names))
		for i, n := range names {
			out[i] = relstore.Attribute{Name: n}
		}
		return out
	}
	mk := func(source, name string, attributes []relstore.Attribute, rows [][]string) *relstore.Table {
		t, err := relstore.NewTable(&relstore.Relation{
			Source: source, Name: name, Attributes: attributes,
		}, rows)
		if err != nil {
			panic(fmt.Sprintf("datasets: InterProGO table %s.%s: %v", source, name, err))
		}
		return t
	}

	// 28 attributes across 8 tables; no foreign keys declared (§5.2).
	tables := []*relstore.Table{
		mk("go", "term",
			attrs("acc", "name", "term_type", "is_obsolete", "definition"), goRows),
		mk("interpro", "interpro2go", attrs("entry_ac", "go_id"), i2gRows),
		mk("interpro", "entry",
			attrs("entry_ac", "name", "short_name", "entry_type", "abstract"), entryRows),
		mk("interpro", "entry2pub", attrs("entry_ac", "pub_id"), e2pRows),
		mk("interpro", "pub", attrs("pub_id", "title", "year", "journal_id"), pubRows),
		mk("interpro", "method",
			attrs("method_ac", "name", "method_db", "entry_ac"), methodRows),
		mk("interpro", "method2pub", attrs("method_ac", "pub_id"), m2pRows),
		mk("interpro", "journal",
			attrs("journal_id", "journal_name", "issn", "publisher"), journalRows),
	}

	ref := func(rel, attr string) relstore.AttrRef {
		return relstore.AttrRef{Relation: rel, Attr: attr}
	}
	goldPairs := [][2]relstore.AttrRef{
		{ref("go.term", "acc"), ref("interpro.interpro2go", "go_id")},
		{ref("interpro.interpro2go", "entry_ac"), ref("interpro.entry", "entry_ac")},
		{ref("interpro.entry2pub", "entry_ac"), ref("interpro.entry", "entry_ac")},
		{ref("interpro.entry2pub", "pub_id"), ref("interpro.pub", "pub_id")},
		{ref("interpro.method2pub", "method_ac"), ref("interpro.method", "method_ac")},
		{ref("interpro.method2pub", "pub_id"), ref("interpro.pub", "pub_id")},
		{ref("interpro.method", "entry_ac"), ref("interpro.entry", "entry_ac")},
		{ref("interpro.pub", "journal_id"), ref("interpro.journal", "journal_id")},
	}
	gold := make(map[string]bool, len(goldPairs))
	for _, p := range goldPairs {
		gold[CanonicalPair(p[0], p[1])] = true
	}

	// Each query pairs a value unique to one relation with a value unique to
	// another, so answering it REQUIRES joining across one of the gold
	// alignment edges (the documented usage patterns of §5.2 are exactly
	// such cross-database lookups). Together the ten queries exercise all 8
	// gold edges:
	//   q0,q9 edge go.term.acc~interpro2go.go_id
	//   q1    edge interpro2go.entry_ac~entry.entry_ac
	//   q2    edge entry2pub.entry_ac~entry.entry_ac
	//   q3    edge entry2pub.pub_id~pub.pub_id
	//   q4    edge method2pub.method_ac~method.method_ac
	//   q5    edge method2pub.pub_id~pub.pub_id
	//   q6    edge method.entry_ac~entry.entry_ac
	//   q7    edge pub.journal_id~journal.journal_id
	//   q8    the interpro2go→entry→entry2pub gold chain, pitted against the
	//         spurious link-table bridge interpro2go.entry_ac~entry2pub.entry_ac
	//   q9    the entry2pub→pub→method2pub gold chain, pitted against the
	//         spurious bridge entry2pub.pub_id~method2pub.pub_id
	queries := []string{
		"'plasma membrane' 'IPR000001'",
		"'GO:0001000' 'fam_0'",
		"'fam_4' 'PUB00005'",
		"'Structural analysis of kringle' 'IPR000005'",
		"'motif_2' 'PUB00014'",
		"'PF00001' 'Structural analysis of helicase'",
		"'motif_1' 'fam_1'",
		"'Nature' 'Structural analysis of kringle'",
		"'GO:0001004' 'PUB00009'",
		"'fam_2' 'PF00003'",
	}

	return &InterProGOCorpus{Tables: tables, Gold: gold, GoldPairs: goldPairs, Queries: queries}
}

// CanonicalPair renders an unordered attribute pair as "a~b" with sorted
// endpoints — the gold-standard key format shared with package core.
func CanonicalPair(a, b relstore.AttrRef) string {
	sa, sb := a.String(), b.String()
	if sb < sa {
		sa, sb = sb, sa
	}
	return sa + "~" + sb
}

func pick(r *rand.Rand, choices ...string) string {
	return choices[r.Intn(len(choices))]
}
