package datasets

import (
	"fmt"
	"math/rand"

	"qint/internal/relstore"
)

// SyntheticRelations generates n additional two-attribute sources for the
// Figure 8 scaling experiment (§5.1.2: "we randomly generated new sources
// with two attributes, and then connected them to two random nodes in the
// search graph"). Each table is its own source ("synN") with no instance
// data — the scaling experiment counts column comparisons only.
func SyntheticRelations(n int, seed int64) []*relstore.Table {
	r := rand.New(rand.NewSource(seed))
	out := make([]*relstore.Table, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("syn%d", i)
		rel := &relstore.Relation{
			Source: src,
			Name:   "data",
			Attributes: []relstore.Attribute{
				{Name: fmt.Sprintf("col_%d_a", r.Intn(1_000_000))},
				{Name: fmt.Sprintf("col_%d_b", r.Intn(1_000_000))},
			},
		}
		t, err := relstore.NewTable(rel, nil)
		if err != nil {
			panic(fmt.Sprintf("datasets: synthetic relation %d: %v", i, err))
		}
		out[i] = t
	}
	return out
}
