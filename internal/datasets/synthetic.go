package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"qint/internal/relstore"
)

// SyntheticRelations generates n additional two-attribute sources for the
// Figure 8 scaling experiment (§5.1.2: "we randomly generated new sources
// with two attributes, and then connected them to two random nodes in the
// search graph"). Each table is its own source ("synN") with no instance
// data — the scaling experiment counts column comparisons only.
// valueSyllables compose the pseudo-words of the synthetic value corpus.
var valueSyllables = []string{
	"ka", "ro", "mi", "ta", "len", "vor", "shi", "gan", "pel", "dru",
	"os", "in", "ter", "pro", "mem", "bra", "nuc", "zym", "gly", "fer",
}

// SyntheticValueCorpus generates a catalog-sized workload WITH instance
// data for the value-index experiments: `tables` single-relation sources of
// three string attributes each — an accession identifier, a short name and
// a multi-word description — whose text is drawn from one shared
// pseudo-word vocabulary, so a keyword's matches spread across many tables
// the way GO/InterPro terms do. It returns the tables plus a keyword
// workload mixing frequent words, rare words, identifier fragments,
// multi-word phrases, sub-token substrings, below-trigram-width shorts and
// absent terms — the realistic mix FindValues sees from query expansion.
func SyntheticValueCorpus(tables, rowsPerTable int, seed int64) ([]*relstore.Table, []string) {
	r := rand.New(rand.NewSource(seed))
	word := func() string {
		n := 2 + r.Intn(3)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(valueSyllables[r.Intn(len(valueSyllables))])
		}
		return b.String()
	}
	vocab := make([]string, 400)
	for i := range vocab {
		vocab[i] = word()
	}
	phrase := func(maxWords int) string {
		n := 1 + r.Intn(maxWords)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[r.Intn(len(vocab))]
		}
		return strings.Join(parts, " ")
	}

	out := make([]*relstore.Table, tables)
	for ti := 0; ti < tables; ti++ {
		rel := &relstore.Relation{
			Source: fmt.Sprintf("vsyn%d", ti),
			Name:   "data",
			Attributes: []relstore.Attribute{
				{Name: "acc"}, {Name: "name"}, {Name: "description"},
			},
		}
		rows := make([][]string, rowsPerTable)
		for i := range rows {
			rows[i] = []string{
				fmt.Sprintf("ACC%d:%07d", ti, r.Intn(10*rowsPerTable)),
				phrase(2),
				phrase(4),
			}
		}
		t, err := relstore.NewTable(rel, rows)
		if err != nil {
			panic(fmt.Sprintf("datasets: synthetic value table %d: %v", ti, err))
		}
		out[ti] = t
	}

	keywords := make([]string, 0, 48)
	for i := 0; i < 16; i++ {
		keywords = append(keywords, vocab[r.Intn(len(vocab))]) // whole words
	}
	for i := 0; i < 8; i++ {
		w := vocab[r.Intn(len(vocab))]
		keywords = append(keywords, w[1:len(w)-1]) // inner substrings of tokens
	}
	for i := 0; i < 8; i++ {
		keywords = append(keywords, phrase(2)) // multi-word phrases
	}
	for i := 0; i < 8; i++ {
		keywords = append(keywords, fmt.Sprintf("%07d", r.Intn(10*rowsPerTable))) // id fragments
	}
	keywords = append(keywords,
		"ka", "ro", // below trigram width
		"zzzqqqxxx", "not here at all", // absent
	)
	return out, keywords
}

func SyntheticRelations(n int, seed int64) []*relstore.Table {
	r := rand.New(rand.NewSource(seed))
	out := make([]*relstore.Table, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("syn%d", i)
		rel := &relstore.Relation{
			Source: src,
			Name:   "data",
			Attributes: []relstore.Attribute{
				{Name: fmt.Sprintf("col_%d_a", r.Intn(1_000_000))},
				{Name: fmt.Sprintf("col_%d_b", r.Intn(1_000_000))},
			},
		}
		t, err := relstore.NewTable(rel, nil)
		if err != nil {
			panic(fmt.Sprintf("datasets: synthetic relation %d: %v", i, err))
		}
		out[i] = t
	}
	return out
}
