package steiner

import (
	"math"
	"sort"
)

// ApproxTopKSteiner returns up to k low-cost Steiner trees using a
// BANKS-style approximation: shortest paths are computed from every
// terminal, each graph node is considered as a potential "root", and the
// candidate tree rooted at r is the union of the shortest paths from r to
// each terminal. Candidates are ranked by the cost of their (deduplicated)
// edge union and the k best distinct trees are returned.
//
// The approximation guarantee is the classical shortest-path-heuristic
// factor (≤ number of terminals); in practice on Q's search graphs it finds
// the optimum for most queries. This is the "approximation algorithm at
// larger scales" of paper §2.2.
func (g *Graph) ApproxTopKSteiner(terminals []NodeID, k int) []Tree {
	return ApproxTopKSteinerOn(g, terminals, k)
}

// ApproxTopKSteinerOn is ApproxTopKSteiner over an arbitrary graph view
// (base graph or base∪overlay).
func ApproxTopKSteinerOn(g GraphView, terminals []NodeID, k int) []Tree {
	if k <= 0 {
		return nil
	}
	terms := dedupNodes(terminals)
	if len(terms) == 0 {
		return nil
	}
	if len(terms) == 1 {
		return []Tree{{Cost: 0, Nodes: []NodeID{terms[0]}}}
	}

	dists := make([]Dist, len(terms))
	for i, t := range terms {
		dists[i] = DijkstraOn(g, t)
	}

	type cand struct {
		root  NodeID
		bound float64 // sum of path costs; ≥ true union cost
	}
	var cands []cand
	for v := 0; v < g.NumNodes(); v++ {
		total := 0.0
		reachable := true
		for i := range terms {
			d := dists[i].D[v]
			if math.IsInf(d, 1) {
				reachable = false
				break
			}
			total += d
		}
		if reachable {
			cands = append(cands, cand{root: NodeID(v), bound: total})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bound != cands[j].bound {
			return cands[i].bound < cands[j].bound
		}
		return cands[i].root < cands[j].root
	})

	// Materialise candidate trees best-bound-first; keep k distinct.
	var out []Tree
	seen := make(map[string]struct{})
	// Examine more candidates than k since several roots can yield the same
	// tree; 4k+16 is a pragmatic cut-off.
	limit := 4*k + 16
	for i, c := range cands {
		if i >= limit && len(out) >= k {
			break
		}
		t, ok := unionPathsTree(g, dists, terms, c.root)
		if !ok {
			continue
		}
		if _, dup := seen[t.Key()]; dup {
			continue
		}
		seen[t.Key()] = struct{}{}
		out = append(out, t)
		if len(out) >= limit {
			break
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// unionPathsTree builds the union of shortest paths from root to each
// terminal and verifies it is a tree (the union can contain a cycle when
// paths from different terminals interleave; such candidates are dropped).
func unionPathsTree(g GraphView, dists []Dist, terms []NodeID, root NodeID) (Tree, bool) {
	edgeSet := make(map[EdgeID]struct{})
	nodeSet := map[NodeID]struct{}{root: {}}
	for i := range terms {
		v := root
		for dists[i].Prev[v] != -1 {
			eid := dists[i].Prev[v]
			edgeSet[eid] = struct{}{}
			v = g.Other(eid, v)
			nodeSet[v] = struct{}{}
		}
	}
	if len(edgeSet) != len(nodeSet)-1 {
		return Tree{}, false // cycle in the union
	}
	t := Tree{Edges: make([]EdgeID, 0, len(edgeSet)), Nodes: make([]NodeID, 0, len(nodeSet))}
	for e := range edgeSet {
		t.Edges = append(t.Edges, e)
		t.Cost += g.Edge(e).Cost
	}
	for n := range nodeSet {
		t.Nodes = append(t.Nodes, n)
	}
	sort.Slice(t.Edges, func(i, j int) bool { return t.Edges[i] < t.Edges[j] })
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	return t, true
}
