package steiner

import (
	"container/heap"
	"math"
)

// Dist holds single-source shortest-path results. Unreachable nodes have
// distance +Inf and Prev == -1.
type Dist struct {
	D    []float64
	Prev []EdgeID // edge used to reach the node; -1 for source/unreachable
}

// Dijkstra computes shortest path costs from src to every node.
func (g *Graph) Dijkstra(src NodeID) Dist { return DijkstraOn(g, src) }

// DijkstraOn computes shortest path costs from src to every node of an
// arbitrary graph view (base graph or base∪overlay).
func DijkstraOn(g GraphView, src NodeID) Dist {
	n := g.NumNodes()
	d := Dist{D: make([]float64, n), Prev: make([]EdgeID, n)}
	for i := range d.D {
		d.D[i] = math.Inf(1)
		d.Prev[i] = -1
	}
	d.D[src] = 0
	pq := &nodePQ{{node: src, cost: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.cost > d.D[it.node] {
			continue
		}
		for _, eid := range g.Incident(it.node) {
			e := g.Edge(eid)
			to := g.Other(eid, it.node)
			nd := it.cost + e.Cost
			if nd < d.D[to] {
				d.D[to] = nd
				d.Prev[to] = eid
				heap.Push(pq, nodeItem{node: to, cost: nd})
			}
		}
	}
	return d
}

// PathTo reconstructs the edges of the shortest path from the Dijkstra
// source to node v (in reverse order of traversal). Returns nil when v is
// the source or unreachable.
func (g *Graph) PathTo(d Dist, v NodeID) []EdgeID { return PathToOn(g, d, v) }

// PathToOn is PathTo over an arbitrary graph view.
func PathToOn(g GraphView, d Dist, v NodeID) []EdgeID {
	if math.IsInf(d.D[v], 1) {
		return nil
	}
	var path []EdgeID
	for d.Prev[v] != -1 {
		eid := d.Prev[v]
		path = append(path, eid)
		v = g.Other(eid, v)
	}
	return path
}

// Neighborhood returns the set of nodes whose shortest-path distance from
// any of the given source nodes is at most alpha. This is the α-cost
// neighbourhood GETCOSTNEIGHBORHOOD of Algorithm 2: any new-source node that
// could join a Steiner tree of cost ≤ α must align with a node inside it.
func (g *Graph) Neighborhood(sources []NodeID, alpha float64) map[NodeID]struct{} {
	return NeighborhoodOn(g, sources, alpha)
}

// NeighborhoodOn is Neighborhood over an arbitrary graph view.
func NeighborhoodOn(g GraphView, sources []NodeID, alpha float64) map[NodeID]struct{} {
	out := make(map[NodeID]struct{})
	for _, s := range sources {
		d := DijkstraOn(g, s)
		for v, dist := range d.D {
			if dist <= alpha {
				out[NodeID(v)] = struct{}{}
			}
		}
	}
	return out
}

// NeighborhoodIntersect returns the nodes within alpha of EVERY source — a
// strictly tighter (and still sound) pruning region than Neighborhood:
// every node of a Steiner tree of cost ≤ α lies, along tree paths of cost
// ≤ α, within distance α of each terminal, so any node that could join
// such a tree is in the intersection. Algorithm 2 as written unions
// per-keyword neighbourhoods; the intersection refinement preserves its
// same-top-k guarantee while pruning far more aggressively on large graphs.
func (g *Graph) NeighborhoodIntersect(sources []NodeID, alpha float64) map[NodeID]struct{} {
	return NeighborhoodIntersectOn(g, sources, alpha)
}

// NeighborhoodIntersectOn is NeighborhoodIntersect over an arbitrary view.
func NeighborhoodIntersectOn(g GraphView, sources []NodeID, alpha float64) map[NodeID]struct{} {
	out := make(map[NodeID]struct{})
	for i, s := range sources {
		d := DijkstraOn(g, s)
		if i == 0 {
			for v, dist := range d.D {
				if dist <= alpha {
					out[NodeID(v)] = struct{}{}
				}
			}
			continue
		}
		for v := range out {
			if d.D[v] > alpha {
				delete(out, v)
			}
		}
	}
	return out
}

type nodeItem struct {
	node NodeID
	cost float64
}

type nodePQ []nodeItem

func (p nodePQ) Len() int            { return len(p) }
func (p nodePQ) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p nodePQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x interface{}) { *p = append(*p, x.(nodeItem)) }
func (p *nodePQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}
