package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDijkstraQuickProperties verifies triangle-style consistency on random
// connected graphs: d(s,v) ≤ d(s,u) + w(u,v) for every edge (u,v), and the
// path reconstructed by PathTo has exactly cost d(s,v).
func TestDijkstraQuickProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := randomConnectedGraph(r, 12+r.Intn(10), 10+r.Intn(15), 2)
		src := NodeID(r.Intn(g.NumNodes()))
		d := g.Dijkstra(src)
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(EdgeID(e))
			if d.D[edge.U]+edge.Cost < d.D[edge.V]-1e-9 ||
				d.D[edge.V]+edge.Cost < d.D[edge.U]-1e-9 {
				return false // relaxation not at fixpoint
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			if math.IsInf(d.D[v], 1) {
				continue
			}
			cost := 0.0
			for _, eid := range g.PathTo(d, NodeID(v)) {
				cost += g.Edge(eid).Cost
			}
			if math.Abs(cost-d.D[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNeighborhoodIntersectSubsetOfUnion: the intersection region is always
// contained in the union region, and both contain every terminal.
func TestNeighborhoodIntersectSubsetOfUnion(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, terms := randomConnectedGraph(r, 15, 20, 2+r.Intn(2))
		alpha := 0.5 + r.Float64()*3
		union := g.Neighborhood(terms, alpha)
		inter := g.NeighborhoodIntersect(terms, alpha)
		for v := range inter {
			if _, ok := union[v]; !ok {
				return false
			}
		}
		for _, term := range terms {
			if _, ok := union[term]; !ok {
				return false
			}
			// terminals are within 0 of themselves but may exceed alpha of
			// others; the intersection need not contain them — no check.
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSteinerTreeContainmentInvariant: every node of every top-k tree lies
// within tree-cost of every terminal — the exact property that justifies
// NeighborhoodIntersect as a pruning region.
func TestSteinerTreeContainmentInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, terms := randomConnectedGraph(r, 12, 15, 2+r.Intn(2))
		trees := g.TopKSteiner(terms, 4)
		for _, tr := range trees {
			region := g.NeighborhoodIntersect(terms, tr.Cost+1e-9)
			for _, n := range tr.Nodes {
				if _, ok := region[n]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTopKSubsetMonotone: the top-j trees are a prefix of the top-k trees
// for j < k.
func TestTopKSubsetMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 10; trial++ {
		g, terms := randomConnectedGraph(r, 14, 18, 3)
		k5 := g.TopKSteiner(terms, 5)
		k2 := g.TopKSteiner(terms, 2)
		if len(k2) > len(k5) {
			t.Fatalf("trial %d: |top2| > |top5|", trial)
		}
		for i := range k2 {
			if math.Abs(k2[i].Cost-k5[i].Cost) > 1e-9 {
				t.Errorf("trial %d: prefix cost mismatch at %d: %v vs %v",
					trial, i, k2[i].Cost, k5[i].Cost)
			}
		}
	}
}
