// Package steiner provides the weighted-graph machinery behind Q's ranked
// keyword views: an undirected graph with mutable edge costs, Dijkstra
// shortest paths and α-cost neighbourhoods (the pruning region of
// VIEWBASEDALIGNER, paper §3.3), an exact top-k group Steiner tree algorithm
// (DPBF dynamic programming with k-best lists per state), and a BANKS-style
// backward-expansion approximation for larger graphs.
package steiner

import "fmt"

// NodeID indexes a node within a Graph.
type NodeID int

// EdgeID indexes an edge within a Graph.
type EdgeID int

// Edge is one undirected, non-negatively weighted edge.
type Edge struct {
	ID   EdgeID
	U, V NodeID
	Cost float64
}

// Graph is an undirected multigraph with non-negative edge costs. Costs are
// mutable (SetCost) because Q's learner continually re-weights edges; the
// topology is append-only.
type Graph struct {
	edges []Edge
	adj   [][]EdgeID // per node, incident edge ids
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode creates a node and returns its id.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts an undirected edge between u and v with the given cost and
// returns its id. It panics on out-of-range nodes or negative cost — both
// indicate programmer error, not runtime conditions.
func (g *Graph) AddEdge(u, v NodeID, cost float64) EdgeID {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) || u < 0 || v < 0 {
		panic(fmt.Sprintf("steiner: AddEdge(%d,%d) out of range (n=%d)", u, v, len(g.adj)))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative edge cost %v", cost))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, Cost: cost})
	g.adj[u] = append(g.adj[u], id)
	if v != u {
		g.adj[v] = append(g.adj[v], id)
	}
	return id
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// SetCost updates an edge's cost. Negative costs panic: Q's learner pins
// costs positive (Algorithm 4 constraint w·f > 0) precisely because Steiner
// computation requires it.
func (g *Graph) SetCost(id EdgeID, cost float64) {
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative edge cost %v for edge %d", cost, id))
	}
	g.edges[id].Cost = cost
}

// Incident returns the ids of edges incident to v. Callers must not mutate
// the returned slice.
func (g *Graph) Incident(v NodeID) []EdgeID { return g.adj[v] }

// Other returns the endpoint of edge e that is not v (for self-loops it
// returns v).
func (g *Graph) Other(id EdgeID, v NodeID) NodeID {
	e := g.edges[id]
	if e.U == v {
		return e.V
	}
	return e.U
}

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }
