package steiner

import "fmt"

// GraphView is the read interface the Steiner algorithms run against. Both
// *Graph and *Overlay implement it, so view construction can work over an
// immutable base graph extended with per-query nodes and edges without ever
// mutating the base (Q's copy-on-write search-graph snapshots depend on
// this: many queries traverse one shared base concurrently, each through its
// own private overlay).
type GraphView interface {
	// NumNodes returns the number of nodes (base plus overlay).
	NumNodes() int
	// NumEdges returns the number of edges (base plus overlay).
	NumEdges() int
	// Incident returns the ids of edges incident to v. Callers must not
	// mutate the returned slice.
	Incident(v NodeID) []EdgeID
	// Edge returns the edge with the given id.
	Edge(id EdgeID) Edge
	// Other returns the endpoint of the edge that is not v.
	Other(id EdgeID, v NodeID) NodeID
}

var (
	_ GraphView = (*Graph)(nil)
	_ GraphView = (*Overlay)(nil)
)

// Clone returns a deep-enough copy of the graph for copy-on-write use: the
// edge slice (whose costs SetCost mutates) and the outer adjacency slice
// (whose inner headers AddEdge replaces) are copied, while the inner
// adjacency arrays are shared — appends on the clone only ever write at
// indexes beyond every older header's length, so frozen readers of the
// original never observe them.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		edges: append([]Edge(nil), g.edges...),
		adj:   append([][]EdgeID(nil), g.adj...),
	}
	return ng
}

// Overlay extends an immutable base graph with extra nodes and edges. Ids
// continue the base's id spaces: overlay node i is NodeID(base.NumNodes()+i)
// and overlay edge j is EdgeID(base.NumEdges()+j), so base ids stay valid in
// trees computed over the view. The base must not be mutated while the
// overlay is alive. Construction (AddNode/AddEdge/SetCost) belongs to one
// goroutine; once built, every method is a pure read, so any number of
// goroutines may run searches over the same overlay concurrently (Q's
// retained view materialisations depend on this: lock-free k-best pages
// and writer-side feedback traverse one shared overlay).
type Overlay struct {
	base       *Graph
	baseNodes  int
	baseEdges  int
	extraNodes int
	extraEdges []Edge
	// overlayAdj holds incident lists for overlay NODES; merged holds the
	// full base+overlay incident list of every base node that gained an
	// overlay edge. Both are maintained eagerly by AddEdge, so Incident
	// never mutates the overlay.
	overlayAdj map[NodeID][]EdgeID
	merged     map[NodeID][]EdgeID
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{
		base:       base,
		baseNodes:  base.NumNodes(),
		baseEdges:  base.NumEdges(),
		overlayAdj: make(map[NodeID][]EdgeID),
		merged:     make(map[NodeID][]EdgeID),
	}
}

// Base returns the base graph the overlay extends.
func (o *Overlay) Base() *Graph { return o.base }

// BaseNodes returns the number of base nodes visible through the overlay.
func (o *Overlay) BaseNodes() int { return o.baseNodes }

// BaseEdges returns the number of base edges visible through the overlay.
func (o *Overlay) BaseEdges() int { return o.baseEdges }

// IsOverlayNode reports whether id names an overlay-added node.
func (o *Overlay) IsOverlayNode(id NodeID) bool { return int(id) >= o.baseNodes }

// IsOverlayEdge reports whether id names an overlay-added edge.
func (o *Overlay) IsOverlayEdge(id EdgeID) bool { return int(id) >= o.baseEdges }

// AddNode creates an overlay node and returns its id.
func (o *Overlay) AddNode() NodeID {
	id := NodeID(o.baseNodes + o.extraNodes)
	o.extraNodes++
	return id
}

// AddEdge inserts an undirected overlay edge between u and v (either may be
// a base or overlay node) and returns its id.
func (o *Overlay) AddEdge(u, v NodeID, cost float64) EdgeID {
	if int(u) >= o.NumNodes() || int(v) >= o.NumNodes() || u < 0 || v < 0 {
		panic(fmt.Sprintf("steiner: overlay AddEdge(%d,%d) out of range (n=%d)", u, v, o.NumNodes()))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative overlay edge cost %v", cost))
	}
	id := EdgeID(o.baseEdges + len(o.extraEdges))
	o.extraEdges = append(o.extraEdges, Edge{ID: id, U: u, V: v, Cost: cost})
	o.noteIncident(u, id)
	if v != u {
		o.noteIncident(v, id)
	}
	return id
}

// noteIncident records an overlay edge in its endpoint's incident list —
// the overlay-node list, or the eagerly merged base+overlay list.
func (o *Overlay) noteIncident(v NodeID, id EdgeID) {
	if int(v) >= o.baseNodes {
		o.overlayAdj[v] = append(o.overlayAdj[v], id)
		return
	}
	m, ok := o.merged[v]
	if !ok {
		m = append([]EdgeID(nil), o.base.Incident(v)...)
	}
	o.merged[v] = append(m, id)
}

// SetCost updates an overlay edge's cost. Base edges are immutable through
// the overlay; attempting to re-cost one panics.
func (o *Overlay) SetCost(id EdgeID, cost float64) {
	if int(id) < o.baseEdges {
		panic(fmt.Sprintf("steiner: overlay SetCost on base edge %d", id))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative overlay edge cost %v", cost))
	}
	o.extraEdges[int(id)-o.baseEdges].Cost = cost
}

// NumNodes returns the total node count (base plus overlay).
func (o *Overlay) NumNodes() int { return o.baseNodes + o.extraNodes }

// NumEdges returns the total edge count (base plus overlay).
func (o *Overlay) NumEdges() int { return o.baseEdges + len(o.extraEdges) }

// Edge returns the edge with the given id, base or overlay.
func (o *Overlay) Edge(id EdgeID) Edge {
	if int(id) < o.baseEdges {
		return o.base.Edge(id)
	}
	return o.extraEdges[int(id)-o.baseEdges]
}

// Other returns the endpoint of edge id that is not v.
func (o *Overlay) Other(id EdgeID, v NodeID) NodeID {
	e := o.Edge(id)
	if e.U == v {
		return e.V
	}
	return e.U
}

// Incident returns the edges incident to v across base and overlay. It is
// a pure read (the merged lists are maintained at AddEdge time), so
// concurrent searches over one frozen overlay are safe.
func (o *Overlay) Incident(v NodeID) []EdgeID {
	if int(v) >= o.baseNodes {
		return o.overlayAdj[v]
	}
	if m, ok := o.merged[v]; ok {
		return m
	}
	return o.base.Incident(v)
}
