package steiner

import (
	"math"
	"math/rand"
	"testing"
)

// lineGraph builds 0-1-2-...-(n-1) with unit edge costs.
func lineGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a, b := g.AddNode(), g.AddNode()
	e := g.AddEdge(a, b, 2.5)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(e).Cost != 2.5 {
		t.Errorf("cost = %v", g.Edge(e).Cost)
	}
	g.SetCost(e, 1.5)
	if g.Edge(e).Cost != 1.5 {
		t.Errorf("after SetCost: %v", g.Edge(e).Cost)
	}
	if g.Other(e, a) != b || g.Other(e, b) != a {
		t.Error("Other broken")
	}
	if g.Degree(a) != 1 {
		t.Errorf("Degree = %d", g.Degree(a))
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph()
	g.AddNode()
	assertPanics(t, "out of range", func() { g.AddEdge(0, 5, 1) })
	assertPanics(t, "negative cost", func() { g.AddEdge(0, 0, -1) })
	e := g.AddEdge(0, 0, 1)
	assertPanics(t, "negative SetCost", func() { g.SetCost(e, -0.5) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	d := g.Dijkstra(0)
	for i := 0; i < 5; i++ {
		if d.D[i] != float64(i) {
			t.Errorf("dist[%d] = %v, want %d", i, d.D[i], i)
		}
	}
	path := g.PathTo(d, 4)
	if len(path) != 4 {
		t.Errorf("path to 4 has %d edges, want 4", len(path))
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddNode()
	g.AddNode() // isolated
	d := g.Dijkstra(0)
	if !math.IsInf(d.D[1], 1) {
		t.Errorf("isolated node distance = %v, want +Inf", d.D[1])
	}
	if g.PathTo(d, 1) != nil {
		t.Error("path to unreachable node should be nil")
	}
}

func TestDijkstraPrefersCheaperMultiEdge(t *testing.T) {
	g := NewGraph()
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 5)
	cheap := g.AddEdge(a, b, 1)
	d := g.Dijkstra(a)
	if d.D[b] != 1 {
		t.Errorf("dist = %v, want 1", d.D[b])
	}
	if d.Prev[b] != cheap {
		t.Errorf("should use cheap edge")
	}
}

func TestNeighborhood(t *testing.T) {
	g := lineGraph(6)
	nb := g.Neighborhood([]NodeID{0}, 2)
	if len(nb) != 3 { // nodes 0,1,2
		t.Errorf("α=2 neighbourhood = %v, want {0,1,2}", nb)
	}
	nb = g.Neighborhood([]NodeID{0, 5}, 1)
	if len(nb) != 4 { // 0,1 and 4,5
		t.Errorf("two-source neighbourhood = %v, want 4 nodes", nb)
	}
	nb = g.Neighborhood(nil, 10)
	if len(nb) != 0 {
		t.Errorf("no sources should give empty set")
	}
}

func TestTopKSteinerTwoTerminalsIsShortestPath(t *testing.T) {
	// Diamond: 0-1-3 (cost 1+1) and 0-2-3 (cost 2+2); direct 0-3 cost 5.
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(0, 3, 5)
	trees := g.TopKSteiner([]NodeID{0, 3}, 3)
	if len(trees) != 3 {
		t.Fatalf("got %d trees, want 3", len(trees))
	}
	wantCosts := []float64{2, 4, 5}
	for i, w := range wantCosts {
		if trees[i].Cost != w {
			t.Errorf("tree %d cost = %v, want %v", i, trees[i].Cost, w)
		}
	}
}

func TestTopKSteinerStar(t *testing.T) {
	// Star: hub 0 connects terminals 1,2,3. The only tree covering all three
	// terminals uses all three spokes, cost 6.
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(0, 3, 3)
	trees := g.TopKSteiner([]NodeID{1, 2, 3}, 5)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	if trees[0].Cost != 6 {
		t.Errorf("cost = %v, want 6", trees[0].Cost)
	}
	if len(trees[0].Nodes) != 4 {
		t.Errorf("nodes = %v, want hub + 3 terminals", trees[0].Nodes)
	}
}

func TestTopKSteinerEdgeCases(t *testing.T) {
	g := lineGraph(3)
	if got := g.TopKSteiner([]NodeID{1}, 3); len(got) != 1 || got[0].Cost != 0 {
		t.Errorf("single terminal: %v", got)
	}
	if got := g.TopKSteiner(nil, 3); got != nil {
		t.Errorf("no terminals: %v", got)
	}
	if got := g.TopKSteiner([]NodeID{0, 2}, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	// duplicate terminals collapse
	if got := g.TopKSteiner([]NodeID{1, 1}, 2); len(got) != 1 || got[0].Cost != 0 {
		t.Errorf("duplicate terminals: %v", got)
	}
	// disconnected terminals yield nothing
	g2 := NewGraph()
	g2.AddNode()
	g2.AddNode()
	if got := g2.TopKSteiner([]NodeID{0, 1}, 2); len(got) != 0 {
		t.Errorf("disconnected: %v", got)
	}
}

func TestTopKSteinerCostsNonDecreasing(t *testing.T) {
	g, terms := randomConnectedGraph(rand.New(rand.NewSource(7)), 20, 40, 3)
	trees := g.TopKSteiner(terms, 8)
	if len(trees) == 0 {
		t.Fatal("expected trees on a connected graph")
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Cost < trees[i-1].Cost-1e-9 {
			t.Errorf("costs decrease at %d: %v < %v", i, trees[i].Cost, trees[i-1].Cost)
		}
	}
	seen := make(map[string]struct{})
	for _, tr := range trees {
		if _, dup := seen[tr.Key()]; dup {
			t.Errorf("duplicate tree %s", tr.Key())
		}
		seen[tr.Key()] = struct{}{}
		assertValidTree(t, g, tr, terms)
	}
}

// assertValidTree checks connectivity, acyclicity and terminal coverage.
func assertValidTree(t *testing.T, g *Graph, tr Tree, terms []NodeID) {
	t.Helper()
	nodeSet := make(map[NodeID]struct{}, len(tr.Nodes))
	for _, n := range tr.Nodes {
		nodeSet[n] = struct{}{}
	}
	for _, term := range terms {
		if _, ok := nodeSet[term]; !ok {
			t.Errorf("tree %s misses terminal %d", tr.Key(), term)
		}
	}
	if len(tr.Edges) != len(tr.Nodes)-1 {
		t.Errorf("tree %s: |E|=%d |V|=%d violates tree property", tr.Key(), len(tr.Edges), len(tr.Nodes))
	}
	// connectivity via union-find
	parent := make(map[NodeID]NodeID, len(tr.Nodes))
	var find func(NodeID) NodeID
	find = func(x NodeID) NodeID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, n := range tr.Nodes {
		parent[n] = n
	}
	for _, eid := range tr.Edges {
		e := g.Edge(eid)
		parent[find(e.U)] = find(e.V)
	}
	root := find(tr.Nodes[0])
	for _, n := range tr.Nodes[1:] {
		if find(n) != root {
			t.Errorf("tree %s disconnected at node %d", tr.Key(), n)
		}
	}
	// cost consistency
	sum := 0.0
	for _, eid := range tr.Edges {
		sum += g.Edge(eid).Cost
	}
	if math.Abs(sum-tr.Cost) > 1e-9 {
		t.Errorf("tree %s cost %v != edge sum %v", tr.Key(), tr.Cost, sum)
	}
}

// bruteForceSteiner finds the optimal Steiner cost by enumerating all edge
// subsets (tiny graphs only).
func bruteForceSteiner(g *Graph, terms []NodeID) float64 {
	best := math.Inf(1)
	m := g.NumEdges()
	for mask := 0; mask < 1<<uint(m); mask++ {
		cost := 0.0
		parent := make([]int, g.NumNodes())
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		for e := 0; e < m; e++ {
			if mask&(1<<uint(e)) != 0 {
				edge := g.Edge(EdgeID(e))
				cost += edge.Cost
				parent[find(int(edge.U))] = find(int(edge.V))
			}
		}
		if cost >= best {
			continue
		}
		r := find(int(terms[0]))
		ok := true
		for _, t := range terms[1:] {
			if find(int(t)) != r {
				ok = false
				break
			}
		}
		if ok {
			best = cost
		}
	}
	return best
}

func randomConnectedGraph(r *rand.Rand, n, extraEdges, numTerms int) (*Graph, []NodeID) {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	// spanning chain guarantees connectivity
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(r.Intn(i)), NodeID(i), 0.5+r.Float64()*2)
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(NodeID(u), NodeID(v), 0.5+r.Float64()*2)
		}
	}
	perm := r.Perm(n)
	terms := make([]NodeID, numTerms)
	for i := range terms {
		terms[i] = NodeID(perm[i])
	}
	return g, terms
}

func TestTopKSteinerMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g, terms := randomConnectedGraph(r, 6, 4, 2+r.Intn(2))
		want := bruteForceSteiner(g, terms)
		trees := g.TopKSteiner(terms, 1)
		if len(trees) == 0 {
			t.Fatalf("trial %d: no tree found, brute force found %v", trial, want)
		}
		if math.Abs(trees[0].Cost-want) > 1e-9 {
			t.Errorf("trial %d: DPBF best %v != brute force %v", trial, trees[0].Cost, want)
		}
	}
}

func TestApproxTopKSteinerNeverBeatsExact(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g, terms := randomConnectedGraph(r, 15, 20, 3)
		exact := g.TopKSteiner(terms, 1)
		approx := g.ApproxTopKSteiner(terms, 1)
		if len(exact) == 0 || len(approx) == 0 {
			t.Fatalf("trial %d: missing results", trial)
		}
		if approx[0].Cost < exact[0].Cost-1e-9 {
			t.Errorf("trial %d: approx %v beats exact %v", trial, approx[0].Cost, exact[0].Cost)
		}
		// approximation ratio bound: ≤ #terminals
		if approx[0].Cost > exact[0].Cost*float64(len(terms))+1e-9 {
			t.Errorf("trial %d: approx %v exceeds %d× exact %v", trial, approx[0].Cost, len(terms), exact[0].Cost)
		}
		for _, tr := range approx {
			assertValidTree(t, g, tr, terms)
		}
	}
}

func TestApproxTopKSteinerEdgeCases(t *testing.T) {
	g := lineGraph(4)
	if got := g.ApproxTopKSteiner([]NodeID{2}, 3); len(got) != 1 || got[0].Cost != 0 {
		t.Errorf("single terminal: %v", got)
	}
	if got := g.ApproxTopKSteiner(nil, 3); got != nil {
		t.Errorf("no terminals: %v", got)
	}
	trees := g.ApproxTopKSteiner([]NodeID{0, 3}, 2)
	if len(trees) == 0 || trees[0].Cost != 3 {
		t.Errorf("line 0-3: %v", trees)
	}
}

func TestTreeHasEdgeAndKey(t *testing.T) {
	tr := Tree{Edges: []EdgeID{1, 3, 5}, Nodes: []NodeID{0, 1, 2, 3}}
	if !tr.HasEdge(3) || tr.HasEdge(2) {
		t.Error("HasEdge broken")
	}
	edgeless := Tree{Nodes: []NodeID{7}}
	if edgeless.Key() != "n7" {
		t.Errorf("edgeless key = %q", edgeless.Key())
	}
	if tr.Key() != "1,3,5" {
		t.Errorf("key = %q", tr.Key())
	}
}
