package steiner

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Tree is one group Steiner tree: a connected, acyclic edge set spanning all
// terminals. Cost is the sum of edge costs. Trees with no edges (a single
// terminal node that matches every keyword) have an empty Edges slice and a
// single node.
type Tree struct {
	Cost  float64
	Edges []EdgeID // sorted ascending
	Nodes []NodeID // sorted ascending
}

// Key returns a canonical identity for the tree (its sorted edge set, or the
// sole node for edgeless trees). Two trees with equal keys span the same
// subgraph regardless of the DP root they were discovered from.
func (t Tree) Key() string {
	if len(t.Edges) == 0 {
		return fmt.Sprintf("n%d", t.Nodes[0])
	}
	parts := make([]string, len(t.Edges))
	for i, e := range t.Edges {
		parts[i] = fmt.Sprint(e)
	}
	return strings.Join(parts, ",")
}

// HasEdge reports whether the tree uses the given edge.
func (t Tree) HasEdge(id EdgeID) bool {
	i := sort.Search(len(t.Edges), func(i int) bool { return t.Edges[i] >= id })
	return i < len(t.Edges) && t.Edges[i] == id
}

// maxDPBFPops bounds the priority-queue work of one TopKSteiner call, a
// safety valve against pathological inputs (the algorithm is exponential in
// the number of terminals, which Q keeps small — one per keyword).
const maxDPBFPops = 2_000_000

// TopKSteiner returns up to k lowest-cost Steiner trees connecting all
// terminal nodes, in non-decreasing cost order, using the DPBF dynamic
// program (state = ⟨root, terminal subset⟩) extended with k-best lists per
// state. Trees are deduplicated by edge set. With ≤1 terminals it returns a
// single zero-cost tree. Duplicate terminals are collapsed.
//
// This is the "exact algorithm at small scales" of paper §2.2.
func (g *Graph) TopKSteiner(terminals []NodeID, k int) []Tree {
	return TopKSteinerOn(g, terminals, k)
}

// TopKSteinerOn is TopKSteiner over an arbitrary graph view (base graph or
// base∪overlay).
func TopKSteinerOn(g GraphView, terminals []NodeID, k int) []Tree {
	if k <= 0 {
		return nil
	}
	terms := dedupNodes(terminals)
	if len(terms) == 0 {
		return nil
	}
	if len(terms) == 1 {
		return []Tree{{Cost: 0, Nodes: []NodeID{terms[0]}}}
	}
	if len(terms) > 20 {
		// 2^t states explode; callers should use ApproxTopKSteiner.
		panic(fmt.Sprintf("steiner: TopKSteiner with %d terminals; use ApproxTopKSteiner", len(terms)))
	}
	full := uint32(1)<<uint(len(terms)) - 1

	type state struct {
		v    NodeID
		mask uint32
	}
	// Recorded k-best trees per state, with canonical-key dedup.
	recorded := make(map[state][]*dpTree)
	seen := make(map[state]map[string]struct{})

	pq := &dpPQ{}
	for i, t := range terms {
		dt := &dpTree{cost: 0, v: t, mask: 1 << uint(i), nodes: map[NodeID]struct{}{t: {}}}
		heap.Push(pq, dt)
	}

	var answers []Tree
	answerKeys := make(map[string]struct{})
	pops := 0

	for pq.Len() > 0 && len(answers) < k && pops < maxDPBFPops {
		cur := heap.Pop(pq).(*dpTree)
		pops++
		st := state{v: cur.v, mask: cur.mask}
		key := cur.key()
		if seen[st] == nil {
			seen[st] = make(map[string]struct{})
		}
		if _, dup := seen[st][key]; dup {
			continue
		}
		if len(recorded[st]) >= k {
			continue
		}
		seen[st][key] = struct{}{}
		recorded[st] = append(recorded[st], cur)

		if cur.mask == full {
			t := cur.toTree()
			if _, dup := answerKeys[t.Key()]; !dup {
				answerKeys[t.Key()] = struct{}{}
				answers = append(answers, t)
			}
			// A full-mask tree still participates in nothing further.
			continue
		}

		// Grow: extend the tree across one incident edge of its root.
		for _, eid := range g.Incident(cur.v) {
			u := g.Other(eid, cur.v)
			if _, inTree := cur.nodes[u]; inTree {
				continue // would create a cycle
			}
			nt := cur.extend(g, eid, u)
			heap.Push(pq, nt)
		}

		// Merge: combine with recorded trees rooted at the same node whose
		// terminal sets are disjoint and whose node sets share only the root.
		for otherMask := uint32(1); otherMask <= full; otherMask++ {
			if otherMask&cur.mask != 0 {
				continue
			}
			for _, other := range recorded[state{v: cur.v, mask: otherMask}] {
				if mt, ok := cur.merge(other); ok {
					heap.Push(pq, mt)
				}
			}
		}
	}
	return answers
}

// dpTree is an intermediate DP tree rooted at v covering terminal set mask.
type dpTree struct {
	cost  float64
	v     NodeID
	mask  uint32
	edges []EdgeID // sorted
	nodes map[NodeID]struct{}
}

func (t *dpTree) key() string {
	if len(t.edges) == 0 {
		return fmt.Sprintf("n%d", t.v)
	}
	parts := make([]string, len(t.edges))
	for i, e := range t.edges {
		parts[i] = fmt.Sprint(e)
	}
	return strings.Join(parts, ",")
}

func (t *dpTree) extend(g GraphView, eid EdgeID, newRoot NodeID) *dpTree {
	nt := &dpTree{
		cost:  t.cost + g.Edge(eid).Cost,
		v:     newRoot,
		mask:  t.mask,
		edges: insertSorted(t.edges, eid),
		nodes: make(map[NodeID]struct{}, len(t.nodes)+1),
	}
	for n := range t.nodes {
		nt.nodes[n] = struct{}{}
	}
	nt.nodes[newRoot] = struct{}{}
	return nt
}

// merge unions two same-rooted trees. It fails (ok=false) when the node sets
// overlap anywhere besides the shared root, which would introduce a cycle or
// double-count cost.
func (t *dpTree) merge(o *dpTree) (*dpTree, bool) {
	small, large := t, o
	if len(small.nodes) > len(large.nodes) {
		small, large = large, small
	}
	for n := range small.nodes {
		if n == t.v {
			continue
		}
		if _, shared := large.nodes[n]; shared {
			return nil, false
		}
	}
	nt := &dpTree{
		cost:  t.cost + o.cost,
		v:     t.v,
		mask:  t.mask | o.mask,
		edges: mergeSorted(t.edges, o.edges),
		nodes: make(map[NodeID]struct{}, len(t.nodes)+len(o.nodes)),
	}
	for n := range t.nodes {
		nt.nodes[n] = struct{}{}
	}
	for n := range o.nodes {
		nt.nodes[n] = struct{}{}
	}
	return nt, true
}

func (t *dpTree) toTree() Tree {
	out := Tree{Cost: t.cost, Edges: make([]EdgeID, len(t.edges)), Nodes: make([]NodeID, 0, len(t.nodes))}
	copy(out.Edges, t.edges)
	for n := range t.nodes {
		out.Nodes = append(out.Nodes, n)
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i] < out.Nodes[j] })
	return out
}

func insertSorted(s []EdgeID, e EdgeID) []EdgeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	out := make([]EdgeID, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, e)
	out = append(out, s[i:]...)
	return out
}

func mergeSorted(a, b []EdgeID) []EdgeID {
	out := make([]EdgeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func dedupNodes(nodes []NodeID) []NodeID {
	seen := make(map[NodeID]struct{}, len(nodes))
	var out []NodeID
	for _, n := range nodes {
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

type dpPQ []*dpTree

func (p dpPQ) Len() int            { return len(p) }
func (p dpPQ) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p dpPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *dpPQ) Push(x interface{}) { *p = append(*p, x.(*dpTree)) }
func (p *dpPQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}
