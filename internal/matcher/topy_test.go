package matcher

import (
	"testing"

	"qint/internal/relstore"
)

// scriptedMatcher is a deterministic fake black box: it aligns attributes
// with equal names at the given confidence, preferring earlier attributes
// on ties — and, like a real top-1 matcher, callers only see its raw list.
type scriptedMatcher struct {
	// conf maps "aAttr~bAttr" to a confidence; pairs absent score 0.
	conf map[string]float64
}

func (s *scriptedMatcher) Name() string { return "scripted" }

func (s *scriptedMatcher) Match(_ *relstore.Catalog, a, b *relstore.Relation) []Alignment {
	var out []Alignment
	for _, aa := range a.Attributes {
		for _, bb := range b.Attributes {
			if c, ok := s.conf[aa.Name+"~"+bb.Name]; ok {
				out = append(out, Alignment{
					A:          relstore.AttrRef{Relation: a.QualifiedName(), Attr: aa.Name},
					B:          relstore.AttrRef{Relation: b.QualifiedName(), Attr: bb.Name},
					Confidence: c,
				})
			}
		}
	}
	SortByConfidence(out)
	return out
}

func rel2(source, name string, attrs ...string) *relstore.Relation {
	r := &relstore.Relation{Source: source, Name: name}
	for _, a := range attrs {
		r.Attributes = append(r.Attributes, relstore.Attribute{Name: a})
	}
	return r
}

func TestTopYExtractorRevealsAlternatives(t *testing.T) {
	// a.x aligns with b.p (0.6) and b.q (0.5); a.y aligns with b.p (0.4).
	// A top-1 view shows only x→p and y→p. Removing x must reveal y as p's
	// next-best; removing p must reveal x→q.
	base := &scriptedMatcher{conf: map[string]float64{
		"x~p": 0.6, "x~q": 0.5, "y~p": 0.4,
	}}
	a := rel2("s", "a", "x", "y")
	b := rel2("s", "b", "p", "q")

	x := NewTopYExtractor(base)
	got := x.Match(nil, a, b)

	want := map[string]bool{"x~p": true, "x~q": true, "y~p": true}
	for _, al := range got {
		key := al.A.Attr + "~" + al.B.Attr
		if !want[key] {
			t.Errorf("unexpected alignment %s", key)
		}
		delete(want, key)
	}
	for missing := range want {
		t.Errorf("missing alignment %s", missing)
	}
}

func TestTopYExtractorSkipsHighConfidence(t *testing.T) {
	base := &scriptedMatcher{conf: map[string]float64{
		"x~p": 0.99, "x~q": 0.5,
	}}
	a := rel2("s", "a", "x")
	b := rel2("s", "b", "p", "q")
	x := NewTopYExtractor(base)
	got := x.Match(nil, a, b)
	if len(got) != 1 || got[0].B.Attr != "p" {
		t.Errorf("high-confidence top alignment should stand alone: %v", got)
	}
}

func TestTopYExtractorYOne(t *testing.T) {
	base := &scriptedMatcher{conf: map[string]float64{"x~p": 0.6, "x~q": 0.5}}
	x := &TopYExtractor{Base: base, Y: 1, HighConfidence: 0.95}
	got := x.Match(nil, rel2("s", "a", "x"), rel2("s", "b", "p", "q"))
	if len(got) != 1 {
		t.Errorf("Y=1 should return only the top alignment: %v", got)
	}
}

func TestTopYExtractorBudget(t *testing.T) {
	// Chain of decreasing alternatives for one attribute; budget must stop
	// at Y even though more could be extracted.
	base := &scriptedMatcher{conf: map[string]float64{
		"x~p": 0.6, "x~q": 0.5, "x~r": 0.4, "x~s": 0.3,
	}}
	a := rel2("s", "a", "x")
	b := rel2("s", "b", "p", "q", "r", "s")
	x := &TopYExtractor{Base: base, Y: 2, HighConfidence: 0.95}
	got := x.Match(nil, a, b)
	if len(got) > 2 {
		t.Errorf("Y=2 budget exceeded: %v", got)
	}
}

func TestTopYExtractorNameAndNil(t *testing.T) {
	x := NewTopYExtractor(&scriptedMatcher{})
	if x.Name() != "scripted" {
		t.Error("wrapper should be name-transparent")
	}
	if got := x.Match(nil, nil, rel2("s", "b", "p")); got != nil {
		t.Errorf("nil relation: %v", got)
	}
}
