// Package matcher defines Q's pluggable schema-matcher interface (paper
// §3.2): a matcher proposes attribute alignments, each with a confidence in
// [0,1], between a pair of relations. Q treats every matcher as a black box
// — it consumes only (attribute, attribute, confidence) triples and turns
// them into weighted association edges whose costs are then corrected
// through feedback.
//
// Two complementary matchers ship with Q, mirroring the paper:
//
//   - matcher/meta: a metadata (schema-level) matcher standing in for
//     COMA++ — name, structure and type features, pairwise per relation pair.
//   - matcher/mad: the Modified Adsorption label-propagation matcher, which
//     aggregates instance-level value overlap globally and transitively.
package matcher

import (
	"sort"

	"qint/internal/relstore"
)

// Alignment is one proposed attribute correspondence with a confidence
// score in [0,1] (higher is more confident).
type Alignment struct {
	A, B       relstore.AttrRef
	Confidence float64
}

// Matcher proposes alignments between the attributes of two relations.
// Implementations may consult the catalog for instance data (the MAD
// matcher does); metadata-only matchers ignore it beyond the schemas.
type Matcher interface {
	// Name identifies the matcher; it namespaces the confidence features on
	// association edges ("matcher:<name>:binK").
	Name() string
	// Match returns candidate alignments between attributes of a and b,
	// best-first. Implementations must return confidences in [0,1] and must
	// be deterministic for fixed inputs.
	Match(cat *relstore.Catalog, a, b *relstore.Relation) []Alignment
}

// TopYPerAttribute filters alignments to the Y most confident per distinct
// left-side attribute (paper §3.2.3: "determine the top-Y candidate
// alignments for each attribute"). Input order breaks confidence ties, so
// deterministic matchers stay deterministic.
func TopYPerAttribute(aligns []Alignment, y int) []Alignment {
	if y <= 0 {
		return nil
	}
	byAttr := make(map[relstore.AttrRef][]Alignment)
	var order []relstore.AttrRef
	for _, al := range aligns {
		if _, ok := byAttr[al.A]; !ok {
			order = append(order, al.A)
		}
		byAttr[al.A] = append(byAttr[al.A], al)
	}
	var out []Alignment
	for _, a := range order {
		group := byAttr[a]
		sort.SliceStable(group, func(i, j int) bool { return group[i].Confidence > group[j].Confidence })
		if len(group) > y {
			group = group[:y]
		}
		out = append(out, group...)
	}
	return out
}

// SortByConfidence orders alignments best-first with a deterministic
// tie-break on the attribute names.
func SortByConfidence(aligns []Alignment) {
	sort.SliceStable(aligns, func(i, j int) bool {
		if aligns[i].Confidence != aligns[j].Confidence {
			return aligns[i].Confidence > aligns[j].Confidence
		}
		ki := aligns[i].A.String() + "~" + aligns[i].B.String()
		kj := aligns[j].A.String() + "~" + aligns[j].B.String()
		return ki < kj
	})
}
