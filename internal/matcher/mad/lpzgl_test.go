package mad

import (
	"math"
	"testing"
)

func TestLPZGLClampsSeeds(t *testing.T) {
	g := NewGraph(4, 2)
	g.Seed(0, 0)
	g.Seed(1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	res := g.RunLPZGL(50, 1e-9)
	// Seeded nodes stay dominated by their own label (propagation is
	// clamped; the read-out sweep mixes in the harmonic neighbour estimate
	// so the matcher can observe foreign labels, but the seed leads).
	for _, v := range []int{0, 1} {
		top := res.TopLabels(v, 2)
		if len(top) == 0 || top[0].Label != g.seed[v] {
			t.Errorf("seed %d lost its own label: %v", v, top)
		}
		if len(top) > 1 && top[1].Score >= top[0].Score {
			t.Errorf("seed %d: foreign label should not dominate: %v", v, top)
		}
	}
	// The shared value node mixes both labels roughly evenly.
	mid := res.TopLabels(2, 2)
	if len(mid) != 2 {
		t.Fatalf("shared node labels: %v", mid)
	}
	if math.Abs(mid[0].Score-mid[1].Score) > 0.2 {
		t.Errorf("symmetric neighbours should mix evenly: %v", mid)
	}
}

func TestLPZGLDriftVsMAD(t *testing.T) {
	// A hub (high-degree value node) connects one source column to many
	// distant columns. With LP-ZGL the source label floods through the hub
	// undamped; MAD's abandonment keeps distant mass lower. This is the
	// paper's §3.2.2 motivation for the abandonment probability.
	const fanout = 12
	n := 2 + fanout // src col, hub value, fanout distant cols
	g := NewGraph(n, 1+fanout)
	g.Seed(0, 0)
	g.AddEdge(0, 1, 1) // src - hub
	for i := 0; i < fanout; i++ {
		g.AddEdge(1, 2+i, 1) // hub - distant col
		g.Seed(2+i, 1+i)     // each distant col has its own label
	}

	lp := g.RunLPZGL(50, 1e-9)
	madRes := g.Run(DefaultParams())

	massAtDistance := func(r *Result) float64 {
		total := 0.0
		for i := 0; i < fanout; i++ {
			for _, ls := range r.TopLabels(2+i, 20) {
				if ls.Label == 0 {
					total += ls.Score
				}
			}
		}
		return total
	}
	lpMass, madMass := massAtDistance(lp), massAtDistance(madRes)
	if madMass >= lpMass {
		t.Errorf("MAD should damp propagation through the hub: MAD %v vs LP-ZGL %v",
			madMass, lpMass)
	}
}

func TestUseLPZGLSwitchesMatcher(t *testing.T) {
	c := overlapCatalog(t)
	m := New()
	m.UseLPZGL(25)
	got := m.Match(c, c.Relation("go.term"), c.Relation("ip.interpro2go"))
	if len(got) == 0 {
		t.Fatal("LP-ZGL matcher should still find the value-overlap alignment")
	}
	pair := map[string]bool{got[0].A.String(): true, got[0].B.String(): true}
	if !pair["go.term.acc"] || !pair["ip.interpro2go.go_id"] {
		t.Errorf("best alignment should be acc↔go_id, got %v", got[0])
	}
}
