package mad

import (
	"sort"
	"sync"

	"qint/internal/matcher"
	"qint/internal/relstore"
	"qint/internal/text"
)

// Matcher adapts MAD label propagation to Q's matcher.Matcher interface.
// Propagation is global — it runs once over the whole catalog (plus the new
// relation, which is part of the same catalog by registration time) and is
// cached; Match then answers per relation pair by filtering each attribute's
// label distribution. From Q's perspective it remains a black box emitting
// (attribute, attribute, confidence) triples (paper §3.2.3).
type Matcher struct {
	Params Params
	// TopY bounds how many candidate labels per attribute are considered.
	TopY int
	// MinConfidence suppresses candidates below this normalised score.
	MinConfidence float64

	mu      sync.Mutex
	cache   *propagation
	cacheOn *relstore.Catalog
	cacheN  int // relations in catalog at cache time; registration grows it

	// runOverride replaces the MAD propagation (ablations; see UseLPZGL).
	runOverride func(*Graph) *Result
}

// New returns a MAD matcher with the paper's hyper-parameters.
func New() *Matcher {
	return &Matcher{Params: DefaultParams(), TopY: 5, MinConfidence: 0.01}
}

// Name implements matcher.Matcher.
func (m *Matcher) Name() string { return "mad" }

// propagation is the cached outcome of one global MAD run.
type propagation struct {
	attrNode map[relstore.AttrRef]int
	attrOf   []relstore.AttrRef // label id -> attribute (labels are attrs)
	result   *Result
}

// Match implements matcher.Matcher: alignments between attributes of a and b
// read off the propagated label distributions in both directions.
func (m *Matcher) Match(cat *relstore.Catalog, a, b *relstore.Relation) []matcher.Alignment {
	if cat == nil || a == nil || b == nil {
		return nil
	}
	p := m.propagate(cat)
	y := m.TopY
	if y <= 0 {
		y = 5
	}

	type key struct{ a, b relstore.AttrRef }
	best := make(map[key]float64)
	// scan reads label distributions of `from`'s attributes restricted to
	// labels owned by `to`; flip orients every alignment with its A side in
	// relation a, as the Matcher contract requires.
	scan := func(from, to *relstore.Relation, flip bool) {
		for _, attr := range from.Attributes {
			ref := relstore.AttrRef{Relation: from.QualifiedName(), Attr: attr.Name}
			node, ok := p.attrNode[ref]
			if !ok {
				continue // pruned (e.g. all-numeric or degree-1 column)
			}
			for _, ls := range p.result.TopLabels(node, y) {
				other := p.attrOf[ls.Label]
				if other == ref || other.Relation != to.QualifiedName() {
					continue
				}
				if ls.Score < m.MinConfidence {
					continue
				}
				k := key{a: ref, b: other}
				if flip {
					k = key{a: other, b: ref}
				}
				if ls.Score > best[k] {
					best[k] = ls.Score
				}
			}
		}
	}
	scan(a, b, false)
	scan(b, a, true)

	out := make([]matcher.Alignment, 0, len(best))
	for k, conf := range best {
		// Confidence is a normalised label share; clamp defensively.
		if conf > 1 {
			conf = 1
		}
		out = append(out, matcher.Alignment{A: k.a, B: k.b, Confidence: conf})
	}
	matcher.SortByConfidence(out)
	return out
}

// Invalidate drops the cached propagation; Q calls this after the catalog
// gains a new source so the next Match re-propagates.
func (m *Matcher) Invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache = nil
}

func (m *Matcher) propagate(cat *relstore.Catalog) *propagation {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cache != nil && m.cacheOn == cat && m.cacheN == cat.NumRelations() {
		return m.cache
	}
	run := m.runOverride
	if run == nil {
		params := m.Params
		run = func(g *Graph) *Result { return g.Run(params) }
	}
	p := buildAndRun(cat, run)
	m.cache, m.cacheOn, m.cacheN = p, cat, cat.NumRelations()
	return p
}

// buildAndRun constructs the column-value graph of §3.2.2 and runs MAD:
//   - one node per attribute, seeded with its own (qualified) name label;
//   - one node per distinct non-numeric value, linked weight-1 to every
//     attribute containing it;
//   - degree-1 value nodes pruned (they cannot propagate anything);
//   - attribute nodes with no surviving values dropped from the graph.
func buildAndRun(cat *relstore.Catalog, run func(*Graph) *Result) *propagation {
	refs := cat.AttrRefs()

	// First pass: which attributes contain each usable value?
	valueAttrs := make(map[string][]int) // value -> attr ordinals
	for ai, ref := range refs {
		for v := range cat.ValueSet(ref) {
			if text.IsNumeric(v) {
				continue // numeric values induce spurious associations (§5.2.1)
			}
			valueAttrs[v] = append(valueAttrs[v], ai)
		}
	}

	// Prune degree-1 value nodes: values held by a single attribute are
	// unlikely to contribute to propagation (§5.2.1).
	values := make([]string, 0, len(valueAttrs))
	for v, attrs := range valueAttrs {
		if len(attrs) >= 2 {
			values = append(values, v)
		}
	}
	sort.Strings(values) // deterministic node numbering

	// Attribute nodes that touch at least one surviving value.
	used := make(map[int]struct{})
	for _, v := range values {
		for _, ai := range valueAttrs[v] {
			used[ai] = struct{}{}
		}
	}
	attrNode := make(map[relstore.AttrRef]int)
	attrOf := make([]relstore.AttrRef, 0, len(used))
	nodeOfAttr := make(map[int]int)
	for ai, ref := range refs {
		if _, ok := used[ai]; !ok {
			continue
		}
		nodeOfAttr[ai] = len(attrOf)
		attrNode[ref] = len(attrOf)
		attrOf = append(attrOf, ref)
	}

	n := len(attrOf) + len(values)
	g := NewGraph(n, len(attrOf))
	for i := range attrOf {
		g.Seed(i, i) // label i == attribute i's canonical name
	}
	for vi, v := range values {
		vnode := len(attrOf) + vi
		for _, ai := range valueAttrs[v] {
			g.AddEdge(nodeOfAttr[ai], vnode, 1.0)
		}
	}

	return &propagation{attrNode: attrNode, attrOf: attrOf, result: run(g)}
}

// GraphSize reports the node count of the propagation graph MAD would build
// for the catalog — exposed for experiments and logs (the paper reports an
// 87K-node graph for InterPro-GO).
func GraphSize(cat *relstore.Catalog) (attrNodes, valueNodes int) {
	refs := cat.AttrRefs()
	valueAttrs := make(map[string]int)
	attrSeen := make(map[int]struct{})
	perValue := make(map[string][]int)
	for ai, ref := range refs {
		for v := range cat.ValueSet(ref) {
			if text.IsNumeric(v) {
				continue
			}
			valueAttrs[v]++
			perValue[v] = append(perValue[v], ai)
		}
	}
	for v, n := range valueAttrs {
		if n >= 2 {
			valueNodes++
			for _, ai := range perValue[v] {
				attrSeen[ai] = struct{}{}
			}
		}
	}
	return len(attrSeen), valueNodes
}
